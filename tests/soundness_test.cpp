//===-- tests/soundness_test.cpp - Theorem 2.6.4 as a property -*- C++ -*-===//
///
/// Soundness of the analysis against the evaluator: if P ↦* E[V^l] then
/// V ∈ sba(P)(l) (Theorem 2.6.4). The machine's trace hook reports every
/// (label, value) pair it produces; we assert that the abstraction of each
/// value is predicted at its label, across analysis configurations, over
/// hand-written programs covering every language feature, the corpus, and
/// generated programs.
///
/// Additionally: every run-time fault must occur at a site the debugger
/// flags as unsafe (no false negatives).
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

/// Runs the program under every analysis configuration and checks each
/// traced observation against the prediction.
void checkSoundness(const std::vector<SourceFile> &Files,
                    const std::string &Input, const char *What) {
  Parsed R = parseFiles(Files);
  ASSERT_TRUE(R.Ok) << What << "\n" << R.Diags.str();

  struct Config {
    const char *Name;
    AnalysisOptions Opts;
  };
  std::vector<Config> Configs;
  Configs.push_back({"mono+split", {}});
  {
    AnalysisOptions O;
    O.IfSplitting = false;
    Configs.push_back({"mono", O});
  }
  {
    AnalysisOptions O;
    O.Poly = PolyMode::Copy;
    Configs.push_back({"copy+split", O});
  }

  for (const Config &C : Configs) {
    Analysis A = analyzeProgram(*R.Prog, C.Opts);
    const ConstantTable &Consts = A.Ctx->Constants;

    Machine M(*R.Prog);
    M.setInput(Input);
    M.setFuel(5'000'000);
    size_t Violations = 0, Observations = 0;
    std::ostringstream FirstViolation;
    M.Trace = [&](ExprId E, const Value &V) {
      ++Observations;
      ConstKind Want = valueAbstractKind(V);
      for (Constant K : A.sba(E))
        if (Consts.kind(K) == Want)
          return;
      if (Violations++ == 0)
        FirstViolation << What << " [" << C.Name << "]: label "
                       << R.Prog->exprToString(E) << " produced "
                       << constKindName(Want) << " but sba predicts only {"
                       << [&] {
                            std::string S;
                            for (Constant K : A.sba(E))
                              S += std::string(constKindName(
                                       Consts.kind(K))) +
                                   " ";
                            return S;
                          }()
                       << "}";
    };
    RunResult Out = M.runProgram();
    EXPECT_EQ(Violations, 0u) << FirstViolation.str();
    EXPECT_GT(Observations, 0u) << What;

    // Faults must land on flagged check sites.
    if (Out.St == RunResult::Status::Fault) {
      DebugReport Rep = runChecks(*R.Prog, A.Maps, *A.System);
      bool Flagged = false;
      for (const CheckResult &CR : Rep.Results)
        if (CR.Site == Out.FaultSite && !CR.Safe)
          Flagged = true;
      EXPECT_TRUE(Flagged)
          << What << " [" << C.Name << "]: fault at "
          << R.Prog->exprToString(Out.FaultSite)
          << " not flagged as unsafe (" << Out.Message << ")";
    }
  }
}

void checkSoundnessSrc(const std::string &Source, const char *What,
                       const std::string &Input = "") {
  checkSoundness({{"test.ss", Source}}, Input, What);
}

} // namespace

TEST(Soundness, CoreForms) {
  checkSoundnessSrc("(define (f x y) (if (< x y) (cons x y) '()))"
                    "(f 1 2) (f 2 1)"
                    "(let ([g (lambda (h) (h 5))]) (g (lambda (n) (* n n))))",
                    "core");
}

TEST(Soundness, MutationAndBoxes) {
  checkSoundnessSrc("(define counter (box 0))"
                    "(define (bump!) (set-box! counter (+ (unbox counter) 1)))"
                    "(bump!) (bump!)"
                    "(define cell 'init)"
                    "(set! cell (vector 1 2))"
                    "(if (vector? cell) (vector-ref cell 0) 0)",
                    "mutation");
}

TEST(Soundness, HigherOrderAndRecursion) {
  checkSoundnessSrc(
      "(define (fold f acc l)"
      "  (if (pair? l) (fold f (f acc (car l)) (cdr l)) acc))"
      "(fold (lambda (a b) (+ a b)) 0 (list 1 2 3))"
      "(fold (lambda (a b) (cons b a)) '() (list 'x 'y))",
      "higher-order");
}

TEST(Soundness, Continuations) {
  checkSoundnessSrc(
      "(define (find-first p l)"
      "  (call/cc (lambda (return)"
      "    (letrec ([scan (lambda (l)"
      "                     (if (pair? l)"
      "                         (begin (if (p (car l)) (return (car l))"
      "                                    (void))"
      "                                (scan (cdr l)))"
      "                         'not-found))])"
      "      (scan l)))))"
      "(find-first (lambda (x) (> x 10)) (list 3 14 15))"
      "(find-first (lambda (x) (> x 100)) (list 3 14 15))",
      "continuations");
}

TEST(Soundness, AbortDiscardsContext) {
  checkSoundnessSrc("(+ 1 (abort 'done))", "abort");
}

TEST(Soundness, UnitsAndClasses) {
  checkSoundnessSrc(
      "(define z 3)"
      "(define u (unit (import w) (export f)"
      "            (define f (lambda (x) (+ x w)))))"
      "(define g (invoke u z))"
      "(g 4)"
      "(define c (class object% () [count 0] [tag 'obj]))"
      "(define o (make-obj c))"
      "(set-ivar! o count (+ (ivar o count) 1))"
      "(ivar o tag)",
      "units-classes");
}

TEST(Soundness, LinkedUnits) {
  checkSoundness(interpreterTowerFiles(), "", "interpreter-tower");
}

TEST(Soundness, PredicatesAndNarrowing) {
  checkSoundnessSrc(
      "(define (describe v)"
      "  (cond [(number? v) (+ v 1)]"
      "        [(pair? v) (car v)]"
      "        [(string? v) (string-length v)]"
      "        [(null? v) 0]"
      "        [else -1]))"
      "(describe 5) (describe (cons 1 2)) (describe \"abc\")"
      "(describe '()) (describe 'sym)",
      "narrowing");
}

TEST(Soundness, EofHandling) {
  checkSoundnessSrc("(define (drain n)"
                    "  (let ([line (read-line)])"
                    "    (if (eof-object? line) n (drain (+ n 1)))))"
                    "(drain 0)",
                    "eof", "one\ntwo\n");
}

TEST(Soundness, FaultingProgramsAreFlagged) {
  checkSoundnessSrc("(car 5)", "car-fault");
  checkSoundnessSrc("(define (f x) x) (f 1 2)", "arity-fault");
  checkSoundnessSrc("(define (g) (string-length (read-line))) (g)",
                    "eof-fault");
  checkSoundnessSrc("(unbox '())", "unbox-fault");
}

TEST(Soundness, CorpusPrograms) {
  struct Case {
    const char *Name;
    const char *Input;
  };
  const Case Cases[] = {
      {"map", ""},        {"reverse", ""},     {"substring", ""},
      {"qsort", ""},      {"unify", ""},       {"hopcroft", ""},
      {"check", ""},      {"escher-fish", ""}, {"scanner", ""},
      {"sum", ""},        {"webserver", "GET /\n\n"},
      {"inflate", "xyzw"}, {"hhl", "a&b\n"},
      {"webserver-buggy", "GET /\n"},
      {"inflate-buggy", "xyzw"},
      {"meta-eval", ""},
      {"matrix", ""},
  };
  for (const Case &C : Cases) {
    const CorpusEntry &E = corpusProgram(C.Name);
    checkSoundness({{std::string(C.Name) + ".ss", E.Source}}, C.Input,
                   C.Name);
  }
}

class GeneratedSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedSoundnessTest, GeneratedProgramsAreSound) {
  GeneratorConfig Config;
  Config.Seed = static_cast<unsigned>(GetParam());
  Config.NumComponents = 1 + GetParam() % 4;
  Config.TargetLines = 120 + 30 * (GetParam() % 5);
  Config.PolyReusePercent = 20 * (GetParam() % 5);
  Config.CrossComponentPercent = 25;
  checkSoundness(generateProgram(Config), "",
                 ("generated-" + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratedSoundnessTest,
                         ::testing::Range(0, 20));
