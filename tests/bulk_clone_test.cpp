//===-- tests/bulk_clone_test.cpp - Derive fast path tests -----*- C++ -*-===//
//
// The bulk-clone instantiation path (compiled schema images replayed into
// a bulk-reserved variable range, DESIGN.md §10) must be observationally
// indistinguishable from the classic per-constraint substitution walk:
// same systems byte for byte, same variable numbering, same statistics.
// The classic path stays available behind AnalysisOptions::BulkClone as
// the differential oracle exercised here.
//
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "corpus/corpus.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

/// Sources with let/define polymorphism shapes that stress the image
/// compiler: nested schemas, recursion knots, checks inside schema
/// bodies, filters, structures, and duplicated bindings.
const char *PolySources[] = {
    "(define (id x) x) (id 'a) (id 1) (id #t)",
    "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))"
    "(len (list 1 2 3)) (len (list 'a 'b))",
    "(let ([id (lambda (x) x)]) (begin (id 'a) (id 1)))",
    "(let ([f (lambda (x) (let ([g (lambda (y) y)]) (g x)))])"
    "  (begin (f 1) (f 'a)))",
    "(define (first p) (car p)) (first (cons 1 2)) (first (cons 'a 'b))",
    "(define (sel p a b) (if (pair? p) a b)) (sel (cons 1 2) 'x \"y\")",
    "(define-struct pt (x y))"
    "(define (get-x p) (pt-x p)) (get-x (make-pt 1 2))",
    "(let ([one 1] [two 1] [three 1]) (+ one (+ two three)))",
};

/// Whole-program analysis under both instantiation paths; returns the
/// rendered systems (their text embeds every bound and variable number).
std::pair<std::string, std::string> bothPaths(const Program &P,
                                              AnalysisOptions Opts,
                                              DeriveStats *NewStats = nullptr) {
  Opts.BulkClone = false;
  Analysis Old = analyzeProgram(P, Opts);
  Opts.BulkClone = true;
  Analysis New = analyzeProgram(P, Opts);
  EXPECT_EQ(Old.Stats.SchemasCreated, New.Stats.SchemasCreated);
  EXPECT_EQ(Old.Stats.Instantiations, New.Stats.Instantiations);
  EXPECT_EQ(Old.Stats.InstantiatedConstraints,
            New.Stats.InstantiatedConstraints);
  if (NewStats)
    *NewStats = New.Stats;
  return {Old.System->str(), New.System->str()};
}

} // namespace

TEST(BulkClone, ByteIdenticalOnPolySources) {
  for (const char *Src : PolySources) {
    Parsed R = parseOk(Src);
    ASSERT_TRUE(R.Ok);
    for (PolyMode Mode : {PolyMode::Copy, PolyMode::Smart}) {
      AnalysisOptions Opts =
          polyAnalysisOptions(Mode, SimplifyAlgorithm::EpsilonRemoval);
      auto [OldStr, NewStr] = bothPaths(*R.Prog, Opts);
      EXPECT_EQ(OldStr, NewStr) << "source: " << Src;
    }
  }
}

TEST(BulkClone, ByteIdenticalOnGeneratedProgram) {
  // A multi-component corpus program: schemas with cross-component
  // references, filters, and every derivation shape the generator emits.
  Parsed R = parseFiles(generateProgram(benchmarkConfig("scanner")));
  ASSERT_TRUE(R.Ok);
  for (PolyMode Mode : {PolyMode::Copy, PolyMode::Smart}) {
    AnalysisOptions Opts =
        polyAnalysisOptions(Mode, SimplifyAlgorithm::EpsilonRemoval);
    auto [OldStr, NewStr] = bothPaths(*R.Prog, Opts);
    EXPECT_EQ(OldStr, NewStr);
  }
}

TEST(BulkClone, CombinedSystemByteIdenticalComponential) {
  // The per-component derive runs in private contexts; the renumbered
  // combined system must not depend on the instantiation path either.
  Parsed R = parseFiles(generateProgram(benchmarkConfig("scanner")));
  ASSERT_TRUE(R.Ok);
  ComponentialOptions Opts;
  Opts.Derive =
      polyAnalysisOptions(PolyMode::Smart, SimplifyAlgorithm::EpsilonRemoval);
  Opts.Threads = 1;
  Opts.Derive.BulkClone = false;
  ComponentialAnalyzer Old(*R.Prog, Opts);
  Old.run();
  Opts.Derive.BulkClone = true;
  ComponentialAnalyzer New(*R.Prog, Opts);
  New.run();
  EXPECT_EQ(Old.combined().str(), New.combined().str());
  EXPECT_EQ(New.runInfo().Derive.SchemasCreated,
            Old.runInfo().Derive.SchemasCreated);
  EXPECT_GT(New.runInfo().Derive.BulkClonedConstraints, 0u);
  EXPECT_EQ(Old.runInfo().Derive.BulkClonedConstraints, 0u);
}

TEST(BulkClone, InternHitsOnDuplicatedBindings) {
  // Literal-valued bindings compile to identical images (their records
  // mention only interned basic constants and the dense quantified
  // numbering), so duplicates share one image.
  Parsed R = parseOk("(let ([one 1] [two 1] [three 1] [sym 'a] [sym2 'a])"
                     "  (begin one two three sym sym2))");
  ASSERT_TRUE(R.Ok);
  AnalysisOptions Opts =
      polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::EpsilonRemoval);
  Analysis A = analyzeProgram(*R.Prog, Opts);
  EXPECT_EQ(A.Stats.SchemasCreated, 5u);
  // one/two/three share an image (2 hits), sym/sym2 share another (1 hit).
  EXPECT_EQ(A.Stats.SchemaInternHits, 3u);
}

TEST(BulkClone, InternHitsAcrossComponents) {
  // Duplicated library bindings in different files: one Deriver handles
  // the whole program, so structurally identical schemas from different
  // components share an image. (Lambdas carry site tags with source
  // locations and never collide; location-free values do.)
  std::vector<SourceFile> Files = {
      {"a.ss", "(define lib-a (let ([default 1]) default))"},
      {"b.ss", "(define lib-b (let ([default 1]) default))"},
  };
  Parsed R = parseFiles(Files);
  ASSERT_TRUE(R.Ok);
  AnalysisOptions Opts =
      polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::EpsilonRemoval);
  Analysis A = analyzeProgram(*R.Prog, Opts);
  EXPECT_GE(A.Stats.SchemasCreated, 2u);
  EXPECT_GE(A.Stats.SchemaInternHits, 1u);
}

TEST(BulkClone, RederivationByteIdentical) {
  // Re-deriving a component with the same Deriver (the serve loop's warm
  // path does this) reuses cached expression variables, so the second
  // pass generalizes nothing. Both instantiation paths must agree on
  // that shape too.
  Parsed R = parseOk("(define (id x) x) (id 'a) (id 1)");
  ASSERT_TRUE(R.Ok);
  AnalysisOptions Opts =
      polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::EpsilonRemoval);
  std::string Strs[2];
  for (bool Bulk : {false, true}) {
    Opts.BulkClone = Bulk;
    ConstraintContext Ctx;
    AnalysisMaps Maps;
    Deriver D(*R.Prog, Ctx, Maps, Opts);
    ConstraintSystem S1(Ctx), S2(Ctx);
    D.deriveComponent(0, S1);
    D.deriveComponent(0, S2);
    Strs[Bulk] = S1.str() + "====\n" + S2.str();
  }
  EXPECT_EQ(Strs[0], Strs[1]);
}

TEST(BulkClone, MonoUnaffected) {
  // Mono mode creates no schemas; the flag must be inert.
  Parsed R = parseOk("(define (id x) x) (id 'a) (id 1)");
  ASSERT_TRUE(R.Ok);
  AnalysisOptions Opts; // Mono
  auto [OldStr, NewStr] = bothPaths(*R.Prog, Opts);
  EXPECT_EQ(OldStr, NewStr);
  Analysis A = analyzeProgram(*R.Prog, Opts);
  EXPECT_EQ(A.Stats.SchemasCreated, 0u);
  EXPECT_EQ(A.Stats.BulkClonedConstraints, 0u);
}
