//===-- tests/test_util.h - Shared test helpers ----------------*- C++ -*-===//

#ifndef SPIDEY_TESTS_TEST_UTIL_H
#define SPIDEY_TESTS_TEST_UTIL_H

#include "analysis/analysis.h"
#include "interp/machine.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace spidey::test {

/// A parsed single- or multi-file program plus its diagnostics.
struct Parsed {
  std::unique_ptr<Program> Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  bool Ok = false;
};

inline Parsed parse(std::string_view Source) {
  Parsed R;
  R.Ok = parseSource(*R.Prog, R.Diags, Source);
  return R;
}

inline Parsed parseFiles(const std::vector<SourceFile> &Files) {
  Parsed R;
  R.Ok = parseProgram(*R.Prog, R.Diags, Files);
  return R;
}

/// Parses and asserts success.
inline Parsed parseOk(std::string_view Source) {
  Parsed R = parse(Source);
  EXPECT_TRUE(R.Ok) << R.Diags.str();
  return R;
}

/// Runs a program to completion, asserting it parses.
inline RunResult runSource(std::string_view Source,
                           std::string Input = std::string()) {
  Parsed R = parseOk(Source);
  if (!R.Ok)
    return RunResult{RunResult::Status::UserError, Value(), "parse failed",
                     NoExpr};
  Machine M(*R.Prog);
  M.setInput(std::move(Input));
  return M.runProgram();
}

/// Renders the final value of a program (for compact assertions).
inline std::string evalToString(std::string_view Source,
                                std::string Input = std::string()) {
  Parsed R = parseOk(Source);
  if (!R.Ok)
    return "<parse error>";
  Machine M(*R.Prog);
  M.setInput(std::move(Input));
  RunResult Out = M.runProgram();
  switch (Out.St) {
  case RunResult::Status::Ok:
    return Out.Result.str(R.Prog->Syms);
  case RunResult::Status::Fault:
    return "<fault: " + Out.Message + ">";
  case RunResult::Status::UserError:
    return "<error: " + Out.Message + ">";
  case RunResult::Status::OutOfFuel:
    return "<out of fuel>";
  }
  return "<?>";
}

/// Returns the set of abstract-constant kind names predicted for the
/// program's final top-level expression... helpers for analysis tests.
inline std::vector<std::string> kindsOf(const Analysis &A, ExprId E) {
  std::vector<std::string> Names;
  for (Constant C : A.sba(E))
    Names.push_back(constKindName(A.Ctx->Constants.kind(C)));
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  return Names;
}

/// The ExprId of the last top-level form of the program.
inline ExprId lastTopExpr(const Program &P) {
  const Component &C = P.Components.back();
  return C.Forms.back().Body;
}

} // namespace spidey::test

#endif // SPIDEY_TESTS_TEST_UTIL_H
