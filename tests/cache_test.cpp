//===-- tests/cache_test.cpp - Constraint-cache hardening ------*- C++ -*-===//
///
/// \file
/// Regressions for the constraint-file cache: analysis-options
/// fingerprinting, atomic writes under concurrent analyzers, collision-
/// proof cache file names, external-set (interface) invalidation of
/// dependents, and name-based relinking when a definition moves between
/// components.
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "test_util.h"

#include <filesystem>
#include <fstream>
#include <thread>

using namespace spidey;
using namespace spidey::test;

namespace {

namespace fs = std::filesystem;

/// A scratch cache directory, wiped on construction and destruction.
struct ScratchDir {
  explicit ScratchDir(const char *Tag)
      : Path((fs::temp_directory_path() / Tag).string()) {
    fs::remove_all(Path);
  }
  ~ScratchDir() { fs::remove_all(Path); }
  std::string Path;
};

/// Kind names of the constants reaching a top-level define's variable.
std::vector<std::string> kindsAt(const Program &P, const AnalysisMaps &Maps,
                                 const ConstraintSystem &S,
                                 const std::string &Name) {
  Symbol Sym = const_cast<Program &>(P).Syms.intern(Name);
  for (VarId V = 0; V < P.numVars(); ++V) {
    if (!P.var(V).TopLevel || P.var(V).Name != Sym)
      continue;
    std::vector<std::string> Out;
    for (Constant C : S.constantsOf(Maps.varVar(V)))
      Out.push_back(constKindName(S.context().Constants.kind(C)));
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
  return {"<no such define>"};
}

const std::vector<SourceFile> TwoFiles = {
    {"lib.ss", "(define (twice f) (lambda (x) (f (f x))))"
               "(define inc (lambda (n) (+ n 1)))"},
    {"main.ss", "(define go ((twice inc) 1))"},
};

} // namespace

//===----------------------------------------------------------------------===//
// Satellite 1: the cache key must include the analysis options.
//===----------------------------------------------------------------------===//

TEST(Cache, FingerprintSeparatesConfigs) {
  std::string A = componentialFingerprint(SimplifyAlgorithm::EpsilonRemoval,
                                          AnalysisOptions{});
  std::string B =
      componentialFingerprint(SimplifyAlgorithm::Hopcroft, AnalysisOptions{});
  EXPECT_NE(A, B);
  std::string C = componentialFingerprint(
      SimplifyAlgorithm::EpsilonRemoval,
      polyAnalysisOptions(PolyMode::Smart, SimplifyAlgorithm::EpsilonRemoval));
  EXPECT_NE(A, C);
  // Fingerprints are whitespace-free (they live on one header line).
  for (char Ch : A + B + C)
    EXPECT_FALSE(std::isspace(static_cast<unsigned char>(Ch)));
}

TEST(Cache, OptionsMismatchForcesRederivation) {
  ScratchDir Dir("spidey_cache_opts_test");

  ComponentialOptions Simple;
  Simple.CacheDir = Dir.Path;
  Simple.Simplify = SimplifyAlgorithm::EpsilonRemoval;
  {
    Parsed R = parseFiles(TwoFiles);
    ASSERT_TRUE(R.Ok) << R.Diags.str();
    ComponentialAnalyzer CA(*R.Prog, Simple);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_FALSE(CS.ReusedFile);
  }
  // Same sources, same cache dir, different simplifier: every file must
  // be rejected with an options mismatch, not silently reused.
  {
    ComponentialOptions Other = Simple;
    Other.Simplify = SimplifyAlgorithm::Hopcroft;
    Parsed R = parseFiles(TwoFiles);
    ComponentialAnalyzer CA(*R.Prog, Other);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats()) {
      EXPECT_FALSE(CS.ReusedFile);
      EXPECT_EQ(CS.Cache, CacheOutcome::MissOptions);
    }
  }
  // Different derivation options (polymorphic analysis) likewise.
  {
    ComponentialOptions Poly = Simple;
    Poly.Derive =
        polyAnalysisOptions(PolyMode::Smart, SimplifyAlgorithm::EpsilonRemoval);
    Parsed R = parseFiles(TwoFiles);
    ComponentialAnalyzer CA(*R.Prog, Poly);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_EQ(CS.Cache, CacheOutcome::MissOptions);
  }
  // The poly run overwrote the files under its own fingerprint, so the
  // original configuration rederives rather than trusting them.
  {
    Parsed R = parseFiles(TwoFiles);
    ComponentialAnalyzer CA(*R.Prog, Simple);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_EQ(CS.Cache, CacheOutcome::MissOptions);
  }
}

//===----------------------------------------------------------------------===//
// Satellite 2: cache writes are atomic (temp file + rename).
//===----------------------------------------------------------------------===//

TEST(Cache, ConcurrentAnalyzersShareOneCacheDir) {
  ScratchDir Dir("spidey_cache_race_test");
  ComponentialOptions Opts;
  Opts.CacheDir = Dir.Path;

  // Two analyzers over the same sources race on the same cache dir. Each
  // thread parses its own Program (the analyzer interns symbols into it).
  auto Racer = [&]() {
    for (int Round = 0; Round < 4; ++Round) {
      Parsed R = parseFiles(TwoFiles);
      ASSERT_TRUE(R.Ok);
      ComponentialAnalyzer CA(*R.Prog, Opts);
      CA.run();
      auto Full = CA.reconstruct(1);
      EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "go"),
                std::vector<std::string>{"num"});
    }
  };
  std::thread T1(Racer), T2(Racer);
  T1.join();
  T2.join();

  // Readers never see a torn file, and no temp files are left behind.
  size_t Files = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir.Path)) {
    EXPECT_EQ(E.path().string().find(".tmp."), std::string::npos)
        << "leftover temp file " << E.path();
    ++Files;
  }
  EXPECT_EQ(Files, TwoFiles.size());

  Parsed R = parseFiles(TwoFiles);
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  for (const ComponentRunStats &CS : CA.componentStats())
    EXPECT_EQ(CS.Cache, CacheOutcome::Hit);
}

TEST(Cache, TornFileIsRederivedAndRepaired) {
  ScratchDir Dir("spidey_cache_torn_test");
  ComponentialOptions Opts;
  Opts.CacheDir = Dir.Path;
  {
    Parsed R = parseFiles(TwoFiles);
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
  }
  // Simulate a torn write (the bug this PR fixes could produce one):
  // truncate lib.ss's constraint file mid-body.
  std::string Torn = Dir.Path + "/" + componentCacheFileName("lib.ss");
  {
    std::ifstream In(Torn, std::ios::binary);
    ASSERT_TRUE(In.good());
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(Text.size(), 40u);
    std::ofstream Out(Torn, std::ios::binary | std::ios::trunc);
    Out << Text.substr(0, Text.size() / 2);
  }
  Parsed R = parseFiles(TwoFiles);
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_EQ(CA.componentStats()[0].Cache, CacheOutcome::MissCorrupt);
  EXPECT_EQ(CA.componentStats()[1].Cache, CacheOutcome::Hit);
  auto Full = CA.reconstruct(1);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "go"),
            std::vector<std::string>{"num"});

  // The rederivation repaired the file in place.
  Parsed R2 = parseFiles(TwoFiles);
  ComponentialAnalyzer CA2(*R2.Prog, Opts);
  CA2.run();
  EXPECT_EQ(CA2.componentStats()[0].Cache, CacheOutcome::Hit);
}

//===----------------------------------------------------------------------===//
// Satellite 3: cache file names must not collide across component names.
//===----------------------------------------------------------------------===//

TEST(Cache, FileNamesDifferForPunctuationVariants) {
  EXPECT_NE(componentCacheFileName("a-b.ss"), componentCacheFileName("a_b.ss"));
  EXPECT_NE(componentCacheFileName("a.b.ss"), componentCacheFileName("a-b.ss"));
  // Deterministic across calls (the name is the cache key).
  EXPECT_EQ(componentCacheFileName("lib/util.ss"),
            componentCacheFileName("lib/util.ss"));
}

TEST(Cache, CollidingNamesKeepSeparateEntries) {
  ScratchDir Dir("spidey_cache_collide_test");
  const std::vector<SourceFile> Files = {
      {"a-b.ss", "(define from-dash 'dash)"},
      {"a_b.ss", "(define from-under \"under\")"},
      {"main.ss", "(define d from-dash)(define u from-under)"},
  };
  ComponentialOptions Opts;
  Opts.CacheDir = Dir.Path;
  {
    Parsed R = parseFiles(Files);
    ASSERT_TRUE(R.Ok) << R.Diags.str();
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
  }
  // Before the fix both components mapped to a_b_ss.scf: the second write
  // clobbered the first, so one of them could never cache-hit (worse, a
  // hash match against the wrong component's file was possible). Now both
  // must hit, and with the right contents.
  Parsed R = parseFiles(Files);
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_EQ(CA.componentStats()[0].Cache, CacheOutcome::Hit);
  EXPECT_EQ(CA.componentStats()[1].Cache, CacheOutcome::Hit);
  auto Full = CA.reconstruct(2);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "d"),
            std::vector<std::string>{"sym"});
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "u"),
            std::vector<std::string>{"str"});
}

//===----------------------------------------------------------------------===//
// Dependent invalidation: a cached file is only valid for the external
// set the current program requires of its component.
//===----------------------------------------------------------------------===//

TEST(Cache, NewForeignReferenceInvalidatesProvider) {
  ScratchDir Dir("spidey_cache_dependent_test");
  ComponentialOptions Opts;
  Opts.CacheDir = Dir.Path;

  const std::vector<SourceFile> Before = {
      {"provider.ss", "(define f 1)(define g 'gee)"},
      {"client.ss", "(define use-f f)"},
  };
  {
    Parsed R = parseFiles(Before);
    ASSERT_TRUE(R.Ok) << R.Diags.str();
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    // g is component-internal here, so provider.ss's constraint file was
    // simplified with externals {f} and may know nothing about g.
  }
  // The client starts referencing g. provider.ss's own source is
  // unchanged (same hash), but its required interface grew, so its
  // cached file must be invalidated — reusing it would silently lose
  // g's value flow.
  std::vector<SourceFile> After = Before;
  After[1].Text = "(define use-f f)(define use-g g)";
  Parsed R = parseFiles(After);
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_EQ(CA.componentStats()[0].Cache, CacheOutcome::MissExternals);
  EXPECT_EQ(CA.componentStats()[1].Cache, CacheOutcome::MissStaleHash);
  auto Full = CA.reconstruct(1);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "use-g"),
            std::vector<std::string>{"sym"});

  // And the refreshed files serve the new program on a rerun.
  Parsed R2 = parseFiles(After);
  ComponentialAnalyzer CA2(*R2.Prog, Opts);
  CA2.run();
  EXPECT_EQ(CA2.componentStats()[0].Cache, CacheOutcome::Hit);
  EXPECT_EQ(CA2.componentStats()[1].Cache, CacheOutcome::Hit);
  auto Full2 = CA2.reconstruct(1);
  EXPECT_EQ(kindsAt(*R2.Prog, CA2.maps(), *Full2, "use-g"),
            std::vector<std::string>{"sym"});
}

//===----------------------------------------------------------------------===//
// Satellite 4: duplicate top-level definitions across components.
//===----------------------------------------------------------------------===//

TEST(Cache, DuplicateTopLevelAcrossComponentsIsRejected) {
  // Top-level defines share one program-wide letrec scope, so a second
  // component redefining f is a scoping error, not a shadow.
  Parsed R = parseFiles({{"one.ss", "(define f 1)"},
                         {"two.ss", "(define f 'two)"},
                         {"main.ss", "(define r f)"}});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags.str().find("duplicate top-level definition"),
            std::string::npos)
      << R.Diags.str();
}

TEST(Cache, RelinkBindsTheCurrentPrograms) {
  // A cached client file names its external `f`. When f's definition
  // moves to a different component between runs, the name-based relink
  // must bind the *current* program's f, and the result must agree with
  // a fresh no-cache derivation.
  ScratchDir Dir("spidey_cache_relink_test");
  ComponentialOptions Opts;
  Opts.CacheDir = Dir.Path;

  {
    Parsed R = parseFiles({{"alpha.ss", "(define f 1)"},
                           {"beta.ss", "(define unrelated 'be)"},
                           {"client.ss", "(define r f)"}});
    ASSERT_TRUE(R.Ok) << R.Diags.str();
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    auto Full = CA.reconstruct(2);
    EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "r"),
              std::vector<std::string>{"num"});
  }
  // f moves from alpha.ss to beta.ss and changes kind. client.ss is
  // untouched: same hash, same external set {f}, so its file is reused —
  // and must pick up the new f.
  const std::vector<SourceFile> Moved = {
      {"alpha.ss", "(define was-f 0)"},
      {"beta.ss", "(define unrelated 'be)(define f \"now a string\")"},
      {"client.ss", "(define r f)"}};
  Parsed R = parseFiles(Moved);
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_EQ(CA.componentStats()[2].Cache, CacheOutcome::Hit);

  Parsed Fresh = parseFiles(Moved);
  ComponentialAnalyzer FreshCA(*Fresh.Prog, {});
  FreshCA.run();
  auto Full = CA.reconstruct(2);
  auto FreshFull = FreshCA.reconstruct(2);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "r"),
            kindsAt(*Fresh.Prog, FreshCA.maps(), *FreshFull, "r"));
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "r"),
            std::vector<std::string>{"str"});
}
