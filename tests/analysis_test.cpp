//===-- tests/analysis_test.cpp - Derivation & sba tests -------*- C++ -*-===//

#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

/// Analyzes a program and returns the predicted constant-kind names for
/// the last top-level expression.
std::vector<std::string> sbaKinds(const std::string &Source,
                                  AnalysisOptions Opts = {}) {
  Parsed R = parseOk(Source);
  if (!R.Ok)
    return {"<parse error>"};
  Analysis A = analyzeProgram(*R.Prog, Opts);
  return kindsOf(A, lastTopExpr(*R.Prog));
}

std::vector<std::string> Kinds(std::initializer_list<const char *> Names) {
  std::vector<std::string> V(Names.begin(), Names.end());
  std::sort(V.begin(), V.end());
  return V;
}

} // namespace

TEST(Analysis, Literals) {
  EXPECT_EQ(sbaKinds("42"), Kinds({"num"}));
  EXPECT_EQ(sbaKinds("#t"), Kinds({"true"}));
  EXPECT_EQ(sbaKinds("#f"), Kinds({"false"}));
  EXPECT_EQ(sbaKinds("\"s\""), Kinds({"str"}));
  EXPECT_EQ(sbaKinds("'x"), Kinds({"sym"}));
  EXPECT_EQ(sbaKinds("'()"), Kinds({"nil"}));
  EXPECT_EQ(sbaKinds("#\\a"), Kinds({"char"}));
}

TEST(Analysis, LambdaGetsFunctionTag) {
  EXPECT_EQ(sbaKinds("(lambda (x) x)"), Kinds({"fn"}));
}

TEST(Analysis, ApplicationFlowsResult) {
  EXPECT_EQ(sbaKinds("((lambda (x) x) 1)"), Kinds({"num"}));
  EXPECT_EQ(sbaKinds("((lambda (x) 'sym) 1)"), Kinds({"sym"}));
}

TEST(Analysis, ArgumentFlowsToParameter) {
  // The identity applied to #t: parameter x may be #t.
  Parsed R = parseOk("(define (id x) x) (id #t)");
  Analysis A = analyzeProgram(*R.Prog);
  // Find the lambda body expression (the Var node for x).
  const Expr &Lam = R.Prog->expr(R.Prog->Components[0].Forms[0].Body);
  ASSERT_EQ(Lam.K, ExprKind::Lambda);
  EXPECT_EQ(kindsOf(A, Lam.Kids[0]), Kinds({"true"}));
}

TEST(Analysis, IfMergesBranches) {
  EXPECT_EQ(sbaKinds("(if #t 1 'a)"), Kinds({"num", "sym"}));
}

TEST(Analysis, PairsCarCdr) {
  EXPECT_EQ(sbaKinds("(cons 1 2)"), Kinds({"pair"}));
  EXPECT_EQ(sbaKinds("(car (cons 1 'a))"), Kinds({"num"}));
  EXPECT_EQ(sbaKinds("(cdr (cons 1 'a))"), Kinds({"sym"}));
}

TEST(Analysis, GenericPrimResults) {
  EXPECT_EQ(sbaKinds("(+ 1 2)"), Kinds({"num"}));
  EXPECT_EQ(sbaKinds("(pair? 5)"), Kinds({"false", "true"}));
  EXPECT_EQ(sbaKinds("(read-line)"), Kinds({"eof", "str"}));
  EXPECT_EQ(sbaKinds("(string->number \"1\")"), Kinds({"false", "num"}));
}

TEST(Analysis, ListShape) {
  EXPECT_EQ(sbaKinds("(list 1 2)"), Kinds({"nil", "pair"}));
  EXPECT_EQ(sbaKinds("(car (list 1 2))"), Kinds({"num"}));
  // cdr of a list includes the list itself (spine) — so pair and nil.
  EXPECT_EQ(sbaKinds("(cdr (list 1 2))"), Kinds({"nil", "pair"}));
}

TEST(Analysis, BoxFlow) {
  EXPECT_EQ(sbaKinds("(box 1)"), Kinds({"box"}));
  EXPECT_EQ(sbaKinds("(unbox (box 1))"), Kinds({"num"}));
  // Assigned values flow backward into all aliases of the box (§3.5).
  EXPECT_EQ(sbaKinds("(let ([b (box 1)])"
                     "  (begin (set-box! b 'sym) (unbox b)))"),
            Kinds({"num", "sym"}));
}

TEST(Analysis, SplitBoxesAreDirectional) {
  // Two distinct boxes that never meet do not exchange contents.
  EXPECT_EQ(sbaKinds("(let ([a (box 1)] [b (box 'x)]) (unbox a))"),
            Kinds({"num"}));
}

TEST(Analysis, VectorFlow) {
  EXPECT_EQ(sbaKinds("(vector 1 'a)"), Kinds({"vec"}));
  EXPECT_EQ(sbaKinds("(vector-ref (vector 1 'a) 0)"), Kinds({"num", "sym"}));
  EXPECT_EQ(sbaKinds("(let ([v (make-vector 3 0)])"
                     "  (begin (vector-set! v 0 \"s\") (vector-ref v 1)))"),
            Kinds({"num", "str"}));
}

TEST(Analysis, AssignableVariables) {
  EXPECT_EQ(sbaKinds("(define x 1) (set! x 'a) x"), Kinds({"num", "sym"}));
}

TEST(Analysis, LetrecFunctionFlow) {
  EXPECT_EQ(sbaKinds("(letrec ([f (lambda (n) (if (zero? n) 'done"
                     "                            (f (sub1 n))))])"
                     "  (f 3))"),
            Kinds({"sym"}));
}

TEST(Analysis, CallccResultIncludesBothPaths) {
  // Normal return and continuation invocation both flow into the result.
  EXPECT_EQ(sbaKinds("(call/cc (lambda (k) (if #t (k 1) 'x)))"),
            Kinds({"num", "sym"}));
}

TEST(Analysis, ContinuationIsFnLike) {
  // The captured continuation flows into the parameter k.
  Parsed R = parseOk("(call/cc (lambda (k) (k 1)))");
  Analysis A = analyzeProgram(*R.Prog);
  const Expr &CC = R.Prog->expr(lastTopExpr(*R.Prog));
  const Expr &Lam = R.Prog->expr(CC.Kids[0]);
  SetVar KVar = A.Maps.varVar(Lam.Params[0]);
  auto Consts = A.System->constantsOf(KVar);
  ASSERT_EQ(Consts.size(), 1u);
  EXPECT_EQ(A.Ctx->Constants.kind(Consts[0]), ConstKind::ContTag);
}

TEST(Analysis, AbortHasEmptyResult) {
  EXPECT_EQ(sbaKinds("(+ 1 (abort 'x))"), Kinds({"num"}));
  Parsed R = parseOk("(abort 5)");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_TRUE(A.sba(lastTopExpr(*R.Prog)).empty());
}

TEST(Analysis, ErrorPrimHasEmptyResult) {
  Parsed R = parseOk("(error \"x\")");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_TRUE(A.sba(lastTopExpr(*R.Prog)).empty());
}

TEST(Analysis, UnitsFlowThroughInvoke) {
  EXPECT_EQ(sbaKinds("(define z 10)"
                     "(invoke (unit (import w) (export v)"
                     "              (define v (cons w w)))"
                     "        z)"),
            Kinds({"pair"}));
}

TEST(Analysis, UnitsImportFlows) {
  // The invoked variable's values flow into the unit's import.
  EXPECT_EQ(sbaKinds("(define z 'sym)"
                     "(invoke (unit (import w) (export v)"
                     "              (define v w))"
                     "        z)"),
            Kinds({"sym"}));
}

TEST(Analysis, LinkedUnitsCompose) {
  EXPECT_EQ(sbaKinds(
                "(define z 1)"
                "(invoke"
                "  (link (unit (import a) (export x) (define x (cons a a)))"
                "        (unit (import b) (export y) (define y b)))"
                "  z)"),
            Kinds({"pair"}));
}

TEST(Analysis, ClassIvarFlow) {
  EXPECT_EQ(sbaKinds("(ivar (make-obj (class object% () [x 1])) x)"),
            Kinds({"num"}));
}

TEST(Analysis, ClassInheritanceFlow) {
  EXPECT_EQ(sbaKinds("(define c1 (class object% () [x 'a]))"
                     "(define c2 (class c1 (x) [y x]))"
                     "(ivar (make-obj c2) y)"),
            Kinds({"sym"}));
}

TEST(Analysis, SetIvarFlowsBack) {
  EXPECT_EQ(sbaKinds("(define o (make-obj (class object% () [x 1])))"
                     "(begin (set-ivar! o x 'a) (ivar o x))"),
            Kinds({"num", "sym"}));
}

TEST(Analysis, MultiArityFunctionsKeepPositions) {
  EXPECT_EQ(sbaKinds("((lambda (a b) a) 1 'x)"), Kinds({"num"}));
  EXPECT_EQ(sbaKinds("((lambda (a b) b) 1 'x)"), Kinds({"sym"}));
}

TEST(Analysis, HigherOrderFlow) {
  EXPECT_EQ(sbaKinds("(define (apply-to-5 f) (f 5))"
                     "(apply-to-5 (lambda (n) (cons n n)))"),
            Kinds({"pair"}));
}

TEST(Analysis, ChecksRecorded) {
  Parsed R = parseOk("(car (cons 1 2)) ((lambda (x) x) 1) (+ 1 2)");
  Analysis A = analyzeProgram(*R.Prog);
  // car, application, and + are check sites; cons and literals are not.
  EXPECT_EQ(A.Maps.Checks.size(), 3u);
}

TEST(Analysis, MonoMergesCallSites) {
  // Monomorphic analysis merges the two calls of id.
  EXPECT_EQ(sbaKinds("(define (id x) x) (id 'a) (id 1)"),
            Kinds({"num", "sym"}));
}

TEST(Analysis, CopyPolymorphismSeparatesCallSites) {
  AnalysisOptions Opts;
  Opts.Poly = PolyMode::Copy;
  EXPECT_EQ(sbaKinds("(define (id x) x) (id 'a) (id 1)", Opts),
            Kinds({"num"}));
}

TEST(Analysis, LetPolymorphism) {
  AnalysisOptions Opts;
  Opts.Poly = PolyMode::Copy;
  EXPECT_EQ(sbaKinds("(let ([id (lambda (x) x)])"
                     "  (begin (id 'a) (id 1)))",
                     Opts),
            Kinds({"num"}));
}

TEST(Analysis, PolyRecursionStillSound) {
  AnalysisOptions Opts;
  Opts.Poly = PolyMode::Copy;
  EXPECT_EQ(sbaKinds("(define (len l)"
                     "  (if (null? l) 0 (+ 1 (len (cdr l)))))"
                     "(len (list 1 2 3))",
                     Opts),
            Kinds({"num"}));
}

TEST(Analysis, PolyChecksStillVisible) {
  // A check inside a polymorphic function still sees instance data.
  AnalysisOptions Opts;
  Opts.Poly = PolyMode::Copy;
  Parsed R = parseOk("(define (first p) (car p)) (first 5)");
  Analysis A = analyzeProgram(*R.Prog, Opts);
  // Find the car check and confirm its scrutinee includes num.
  bool Found = false;
  for (const CheckSite &C : A.Maps.Checks) {
    if (C.What != "car")
      continue;
    Found = true;
    auto Consts = A.System->constantsOf(C.Scrutinees[0].V);
    bool HasNum = false;
    for (Constant K : Consts)
      HasNum |= A.Ctx->Constants.kind(K) == ConstKind::Num;
    EXPECT_TRUE(HasNum);
  }
  EXPECT_TRUE(Found);
}

TEST(Analysis, SumSsInvariant) {
  // The running example of chapters 1 and 5: the argument `tree` of sum
  // may be nil (from the ill-formed input tree), so car is unsafe.
  Parsed R = parseOk("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  Analysis A = analyzeProgram(*R.Prog);
  const Expr &Sum = R.Prog->expr(R.Prog->Components[0].Forms[0].Body);
  ASSERT_EQ(Sum.K, ExprKind::Lambda);
  SetVar Tree = A.Maps.varVar(Sum.Params[0]);
  std::vector<std::string> Names;
  for (Constant C : A.System->constantsOf(Tree))
    Names.push_back(constKindName(A.Ctx->Constants.kind(C)));
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  // tree : (union (cons ...) nil num) — pair, nil and num reach it.
  EXPECT_EQ(Names, Kinds({"nil", "num", "pair"}));
}

TEST(Analysis, StableAcrossRederivation) {
  // Deriving a component twice (componential step 3) into a fresh system
  // yields the same label variables and predictions.
  Parsed R = parseOk("(define (f x) (cons x x)) (f 1)");
  auto Ctx = std::make_unique<ConstraintContext>();
  AnalysisMaps Maps;
  Deriver D(*R.Prog, *Ctx, Maps, {});
  ConstraintSystem S1{*Ctx};
  D.deriveComponent(0, S1);
  ConstraintSystem S2{*Ctx};
  D.deriveComponent(0, S2);
  ExprId Last = lastTopExpr(*R.Prog);
  EXPECT_EQ(S1.constantsOf(Maps.exprVar(Last)),
            S2.constantsOf(Maps.exprVar(Last)));
}
