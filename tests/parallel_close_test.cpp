//===-- tests/parallel_close_test.cpp - Sharded close fixpoint -*- C++ -*-===//
///
/// \file
/// Property suite for ConstraintSystem::closeSharded (DESIGN.md §11): the
/// sharded parallel close must produce a combined system — and serialized
/// .scf bytes — identical to the sequential engine for every shard and
/// thread count, on the corpus programs, the fuzz-generator corpus, and
/// table-driven micro systems engineered around the cross-shard edge
/// cases (ε-cycles discovered mid-close, selector handoffs whose products
/// target remote shards, filters across shard boundaries).
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "componential/parallel.h"
#include "constraints/reference_closure.h"
#include "constraints/serialize.h"
#include "corpus/corpus.h"
#include "fuzz/fuzzgen.h"
#include "test_util.h"

#include <functional>

using namespace spidey;
using namespace spidey::test;

namespace {

const unsigned ShardCounts[] = {1, 2, 4, 7};
const unsigned ThreadCounts[] = {1, 2, 4};

Parsed corpusProgramFor(const char *Name) {
  Parsed R = parseFiles(generateProgram(benchmarkConfig(Name)));
  EXPECT_TRUE(R.Ok) << R.Diags.str();
  return R;
}

/// One componential run; returns the combined system's rendering and its
/// serialized constraint-file bytes (the serve/cache output surface).
struct RunOutput {
  std::string Str;
  std::string Scf;
  size_t Size = 0;
  ClosureStats Closure;
};

RunOutput runCombined(const Parsed &R, bool ParallelClose, unsigned Shards,
                      unsigned Threads) {
  ComponentialOptions Opts;
  Opts.Threads = Threads;
  Opts.ParallelClose = ParallelClose;
  Opts.CloseShards = Shards;
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  RunOutput Out;
  Out.Str = CA.combined().str();
  Out.Scf = serializeConstraints(CA.combined(), {}, R.Prog->Syms, "testhash",
                                 "testopts");
  Out.Size = CA.combined().size();
  Out.Closure = CA.combined().stats();
  return Out;
}

void expectShardMatrixMatchesSequential(const Parsed &R, const char *Tag) {
  const RunOutput Ref = runCombined(R, /*ParallelClose=*/false, 0, 1);
  ASSERT_FALSE(Ref.Str.empty()) << Tag;
  for (unsigned Shards : ShardCounts)
    for (unsigned Threads : ThreadCounts) {
      const RunOutput Got = runCombined(R, true, Shards, Threads);
      EXPECT_EQ(Got.Str, Ref.Str)
          << Tag << " shards=" << Shards << " threads=" << Threads;
      EXPECT_EQ(Got.Scf, Ref.Scf)
          << Tag << " shards=" << Shards << " threads=" << Threads;
      EXPECT_EQ(Got.Size, Ref.Size)
          << Tag << " shards=" << Shards << " threads=" << Threads;
    }
}

} // namespace

//===----------------------------------------------------------------------===
// Corpus programs: full shard × thread matrix against the sequential
// engine, byte-for-byte on both the rendering and the serialized file.
//===----------------------------------------------------------------------===

TEST(ShardedClose, ByteIdenticalOnScanner) {
  Parsed R = corpusProgramFor("scanner");
  expectShardMatrixMatchesSequential(R, "scanner");
}

TEST(ShardedClose, ByteIdenticalOnZodiac) {
  Parsed R = corpusProgramFor("zodiac");
  expectShardMatrixMatchesSequential(R, "zodiac");
}

TEST(ShardedClose, ByteIdenticalOnFuzzCorpus) {
  for (unsigned Seed : {1u, 7u, 23u, 101u}) {
    FuzzGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.MaxComponents = 3;
    Parsed R = parseFiles(generateFuzzProgram(Cfg));
    ASSERT_TRUE(R.Ok) << "fuzz seed " << Seed;
    expectShardMatrixMatchesSequential(
        R, ("fuzz-seed-" + std::to_string(Seed)).c_str());
  }
}

/// The sharded telemetry must actually reflect a sharded run.
TEST(ShardedClose, ReportsShardTelemetry) {
  Parsed R = corpusProgramFor("scanner");
  const RunOutput Got = runCombined(R, true, 4, 2);
  EXPECT_EQ(Got.Closure.ShardsUsed, 4u);
  EXPECT_GE(Got.Closure.CloseRounds, 1u);
  EXPECT_EQ(Got.Closure.ShardDrained.size(), 4u);
  EXPECT_GT(Got.Closure.BoundaryLowsSent + Got.Closure.BoundaryUpsSent, 0u)
      << "scanner's combined system should have cross-shard constraints";
  const RunOutput Seq = runCombined(R, false, 0, 1);
  EXPECT_EQ(Seq.Closure.ShardsUsed, 0u);
  EXPECT_EQ(Seq.Closure.CloseRounds, 0u);
}

//===----------------------------------------------------------------------===
// Fixpoint property: re-closing a sharded-closed system under the naive
// reference engine must add nothing (constantsOf agrees everywhere).
//===----------------------------------------------------------------------===

TEST(ShardedClose, ShardedResultIsAFixpointOfTheReference) {
  for (unsigned Seed : {3u, 11u}) {
    FuzzGenConfig Cfg;
    Cfg.Seed = Seed;
    Parsed R = parseFiles(generateFuzzProgram(Cfg));
    ASSERT_TRUE(R.Ok) << "fuzz seed " << Seed;
    ComponentialOptions Opts;
    Opts.Threads = 2;
    Opts.ParallelClose = true;
    Opts.CloseShards = 5;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    const ConstraintSystem &S = CA.combined();
    ReferenceClosure Ref(S.context());
    Ref.absorb(S);
    Ref.close();
    for (SetVar V : S.variables())
      EXPECT_EQ(S.constantsOf(V), Ref.constantsOf(V))
          << "seed " << Seed << " var a" << V;
  }
}

//===----------------------------------------------------------------------===
// Table-driven micro systems: raw constraint graphs engineered around the
// cross-shard edge cases. Each builds in a fresh context, closes once
// sequentially and once per shard count (inline and over a real worker
// pool), and must render byte-identically.
//===----------------------------------------------------------------------===

namespace {

struct MicroCase {
  const char *Name;
  /// Builds the raw (unclosed) system; returns nothing. The var spread is
  /// deliberately wide so the representative hash scatters across shards.
  std::function<void(ConstraintContext &, ConstraintSystem &)> Build;
};

std::vector<SetVar> freshVars(ConstraintContext &Ctx, unsigned N) {
  std::vector<SetVar> V(N);
  for (unsigned I = 0; I < N; ++I)
    V[I] = Ctx.freshVar();
  return V;
}

const MicroCase MicroCases[] = {
    {"eps-ring-with-sources",
     [](ConstraintContext &Ctx, ConstraintSystem &S) {
       // A 23-variable ε-ring (one big SCC, collapsed before partition)
       // with constant sources at several points and a drain chain
       // hanging off one member: every low must reach every member and
       // the chain, whichever shard owns them.
       std::vector<SetVar> V = freshVars(Ctx, 23);
       for (unsigned I = 0; I < 23; ++I)
         S.addVarUpperRaw(V[I], V[(I + 1) % 23]);
       S.addConstLowerRaw(V[0], Ctx.Constants.basic(ConstKind::Num));
       S.addConstLowerRaw(V[7], Ctx.Constants.basic(ConstKind::Nil));
       S.addConstLowerRaw(V[15], Ctx.Constants.basic(ConstKind::True));
       std::vector<SetVar> Chain = freshVars(Ctx, 6);
       S.addVarUpperRaw(V[11], Chain[0]);
       for (unsigned I = 0; I + 1 < 6; ++I)
         S.addVarUpperRaw(Chain[I], Chain[I + 1]);
     }},
    {"cross-shard-derived-cycle",
     [](ConstraintContext &Ctx, ConstraintSystem &S) {
       // No raw ε-cycle exists: the cycles appear *mid-close* from rule
       // s4 products (β ≤ s⁺(α), s⁺(α) ≤ γ ⟹ β ≤ γ), whose endpoints
       // hash to arbitrary shards. The sequential engine collapses the
       // derived cycles online; shards must converge to the same bounds
       // by boundary propagation alone.
       Selector Car = Ctx.Car;
       std::vector<SetVar> B = freshVars(Ctx, 8);
       std::vector<SetVar> Mid = freshVars(Ctx, 8);
       for (unsigned I = 0; I < 8; ++I) {
         unsigned J = (I + 1) % 8;
         // B[I] ≤ car(Mid[I]) and car(Mid[I]) ≤ B[J]: derives B[I] ≤ B[J]
         // — an 8-cycle of derived ε-edges.
         S.addSelLowerRaw(Mid[I], Car, B[I]);
         S.addSelUpperRaw(Mid[I], Car, B[J]);
       }
       S.addConstLowerRaw(B[2], Ctx.Constants.basic(ConstKind::Num));
       S.addConstLowerRaw(B[5], Ctx.Constants.basic(ConstKind::Sym));
     }},
    {"anti-monotone-handoff",
     [](ConstraintContext &Ctx, ConstraintSystem &S) {
       // Rule s5 with the anti-monotone dom selector: s⁻(α) ≤ γ and
       // β ≤ s⁻(α) imply β ≤ γ, where γ and β land on different shards.
       Selector Dom = Ctx.dom(0);
       std::vector<SetVar> A = freshVars(Ctx, 5);
       std::vector<SetVar> G = freshVars(Ctx, 5);
       std::vector<SetVar> Bv = freshVars(Ctx, 5);
       for (unsigned I = 0; I < 5; ++I) {
         S.addSelLowerRaw(A[I], Dom, G[I]);   // dom(A[I]) ≤ G[I]
         S.addSelUpperRaw(A[I], Dom, Bv[I]);  // Bv[I] ≤ dom(A[I])
         S.addConstLowerRaw(Bv[I], Ctx.Constants.basic(ConstKind::Num));
       }
       // Chain the γs so propagated bounds keep crossing shards.
       for (unsigned I = 0; I + 1 < 5; ++I)
         S.addVarUpperRaw(G[I], G[I + 1]);
     }},
    {"filter-across-shards",
     [](ConstraintContext &Ctx, ConstraintSystem &S) {
       // FilterUB masks applied to lows that arrive from remote shards:
       // only the matching kinds may pass the boundary.
       std::vector<SetVar> V = freshVars(Ctx, 12);
       for (unsigned I = 0; I + 1 < 12; ++I)
         S.addFilterUpperRaw(V[I],
                             I % 2 ? kindBit(ConstKind::Num)
                                   : kindBit(ConstKind::Num) |
                                         kindBit(ConstKind::Nil),
                             V[I + 1]);
       S.addConstLowerRaw(V[0], Ctx.Constants.basic(ConstKind::Num));
       S.addConstLowerRaw(V[0], Ctx.Constants.basic(ConstKind::Nil));
       S.addConstLowerRaw(V[0], Ctx.Constants.basic(ConstKind::True));
     }},
    {"two-rings-bridged",
     [](ConstraintContext &Ctx, ConstraintSystem &S) {
       // Two ε-SCCs joined by a one-way bridge plus a derived edge back:
       // the second ring's lows must not leak into the first through the
       // forward bridge, while the derived back-edge merges them late.
       Selector Car = Ctx.Car;
       std::vector<SetVar> R1 = freshVars(Ctx, 9);
       std::vector<SetVar> R2 = freshVars(Ctx, 9);
       for (unsigned I = 0; I < 9; ++I) {
         S.addVarUpperRaw(R1[I], R1[(I + 1) % 9]);
         S.addVarUpperRaw(R2[I], R2[(I + 1) % 9]);
       }
       S.addConstLowerRaw(R1[3], Ctx.Constants.basic(ConstKind::Num));
       S.addConstLowerRaw(R2[4], Ctx.Constants.basic(ConstKind::Sym));
       S.addVarUpperRaw(R1[0], R2[0]); // forward bridge
       // Derived back-edge R2[5] ≤ R1[5] via s4.
       SetVar Mid = Ctx.freshVar();
       S.addSelLowerRaw(Mid, Car, R2[5]);
       S.addSelUpperRaw(Mid, Car, R1[5]);
     }},
};

} // namespace

TEST(ShardedCloseMicro, TableDrivenEdgeCases) {
  for (const MicroCase &C : MicroCases) {
    std::string Ref;
    size_t RefSize = 0;
    {
      ConstraintContext Ctx;
      ConstraintSystem S(Ctx);
      C.Build(Ctx, S);
      S.close();
      Ref = S.str();
      RefSize = S.size();
      ASSERT_FALSE(Ref.empty()) << C.Name;
    }
    for (unsigned Shards : ShardCounts) {
      ConstraintContext Ctx;
      ConstraintSystem S(Ctx);
      C.Build(Ctx, S);
      S.closeSharded(Shards);
      EXPECT_EQ(S.str(), Ref) << C.Name << " shards=" << Shards;
      EXPECT_EQ(S.size(), RefSize) << C.Name << " shards=" << Shards;
    }
    // Once more over a real worker pool: determinism must not depend on
    // the shards running inline.
    {
      ConstraintContext Ctx;
      ConstraintSystem S(Ctx);
      C.Build(Ctx, S);
      WorkerPool Pool(3);
      PoolRunner Runner(Pool);
      S.closeSharded(4, &Runner);
      EXPECT_EQ(S.str(), Ref) << C.Name << " (pooled)";
    }
  }
}

//===----------------------------------------------------------------------===
// Cancellation: a budget that trips mid-round leaves a degraded (partial
// but sound) system; the same input without a token closes fully.
//===----------------------------------------------------------------------===

TEST(ShardedClose, CancellationMidRoundDegradesAndRecovers) {
  auto Build = [](ConstraintContext &Ctx, ConstraintSystem &S) {
    MicroCases[0].Build(Ctx, S); // the 23-ring generates plenty of work
    MicroCases[1].Build(Ctx, S);
  };
  std::string FullStr;
  {
    ConstraintContext Ctx;
    ConstraintSystem S(Ctx);
    Build(Ctx, S);
    S.closeSharded(4);
    EXPECT_FALSE(S.closureCancelled());
    FullStr = S.str();
  }
  {
    ConstraintContext Ctx;
    ConstraintSystem S(Ctx);
    Build(Ctx, S);
    CancelToken Tok;
    Tok.cancel(); // latched before the close even starts
    S.setCancel(&Tok);
    S.closeSharded(4);
    EXPECT_TRUE(S.closureCancelled());
    // Degraded-then-rearmed: a fresh system over the same input closes
    // to the full fixpoint, byte-identically.
    ConstraintContext Ctx2;
    ConstraintSystem S2(Ctx2);
    Build(Ctx2, S2);
    S2.closeSharded(4);
    EXPECT_EQ(S2.str(), FullStr);
  }
}
