; spidey-fuzz reproducer
; oracle: soundness
; seed: 1413048094
; Let schema nested in a top-level define's schema body: the inner
; labels were quantified in the outer schema but only registered with
; the inner one, so the outer instantiation broke the label feedback.
;;; file: fuzz0.ss
(define (f2 p3) (let ((v5 0)) 0))
(f2 0)
