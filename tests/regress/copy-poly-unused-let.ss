; spidey-fuzz reproducer
; oracle: soundness
; seed: 680342256
; Unused let-bound value under copy polymorphism: the schema had zero
; instantiations, so sba predicted {} at the #f label that evaluation
; reaches.
;;; file: fuzz0.ss
(let ((v30 #f)) 0)
