; spidey-fuzz reproducer
; oracle: soundness
; seed: 1919532352
; Predicate narrowing reads the monomorphic variable, which for a
; schema-bound let binding was never inhabited: the narrowed reference
; predicted {} while evaluation produced the number.
;;; file: fuzz0.ss
(let ((v0 0)) (if (number? v0) v0))
