//===-- tests/constraints_test.cpp - Θ closure tests -----------*- C++ -*-===//
///
/// Unit tests for the constraint engine: the five closure rules of
/// fig. 2.3/3.1, incrementality, deduplication, raw-add + close, and the
/// constraint-file round trip.
///
//===----------------------------------------------------------------------===//

#include "constraints/constraint_system.h"
#include "constraints/serialize.h"

#include <gtest/gtest.h>

#include <random>

using namespace spidey;

namespace {

struct Fixture : ::testing::Test {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  Constant CNum = Ctx.Constants.basic(ConstKind::Num);
  Constant CNil = Ctx.Constants.basic(ConstKind::Nil);

  SetVar fresh() { return Ctx.freshVar(); }
};

} // namespace

TEST_F(Fixture, RuleS1PropagatesConstants) {
  // c ≤ β, β ≤ γ  ⟹  c ≤ γ
  SetVar B = fresh(), G = fresh();
  S.addConstLower(B, CNum);
  S.addVarUpper(B, G);
  EXPECT_TRUE(S.hasConstLower(G, CNum));
}

TEST_F(Fixture, RuleS1WorksInEitherOrder) {
  SetVar B = fresh(), G = fresh();
  S.addVarUpper(B, G);
  S.addConstLower(B, CNum);
  EXPECT_TRUE(S.hasConstLower(G, CNum));
}

TEST_F(Fixture, RuleS2PropagatesRangeBounds) {
  // α ≤ rng(β), β ≤ γ  ⟹  α ≤ rng(γ); then rng(γ) ≤ δ gives α ≤ δ.
  SetVar A = fresh(), B = fresh(), G = fresh(), D = fresh();
  S.addSelLower(B, Ctx.Rng, A);
  S.addVarUpper(B, G);
  S.addSelUpper(G, Ctx.Rng, D);
  S.addConstLower(A, CNum);
  EXPECT_TRUE(S.hasConstLower(D, CNum));
}

TEST_F(Fixture, RuleS3PropagatesDomainBounds) {
  // dom(β) ≤ α, β ≤ γ  ⟹  dom(γ) ≤ α; then δ ≤ dom(γ) gives δ ≤ α.
  SetVar A = fresh(), B = fresh(), G = fresh(), D = fresh();
  S.addSelLower(B, Ctx.dom(0), A);
  S.addVarUpper(B, G);
  S.addSelUpper(G, Ctx.dom(0), D);
  S.addConstLower(D, CNil);
  EXPECT_TRUE(S.hasConstLower(A, CNil));
}

TEST_F(Fixture, RuleS4ConnectsRangeToCallSite) {
  // α ≤ rng(β) and rng(β) ≤ γ  ⟹  α ≤ γ.
  SetVar A = fresh(), B = fresh(), G = fresh();
  S.addSelLower(B, Ctx.Rng, A);
  S.addSelUpper(B, Ctx.Rng, G);
  S.addConstLower(A, CNum);
  EXPECT_TRUE(S.hasConstLower(G, CNum));
}

TEST_F(Fixture, RuleS5ConnectsActualToFormal) {
  // dom(β) ≤ α and γ ≤ dom(β)  ⟹  γ ≤ α.
  SetVar A = fresh(), B = fresh(), G = fresh();
  S.addSelLower(B, Ctx.dom(0), A);
  S.addSelUpper(B, Ctx.dom(0), G);
  S.addConstLower(G, CNum);
  EXPECT_TRUE(S.hasConstLower(A, CNum));
}

TEST_F(Fixture, FullApplicationFlow) {
  // Model ((λx.x) 1): t ≤ f, dom(f) ≤ x, x ≤ rng(f),
  //                   arg ≤ dom(f), rng(f) ≤ r, num ≤ arg.
  SetVar F = fresh(), X = fresh(), Arg = fresh(), R = fresh();
  Constant T = Ctx.Constants.makeTag(ConstKind::FnTag, 1, {});
  S.addConstLower(F, T);
  S.addSelLower(F, Ctx.dom(0), X);
  S.addSelLower(F, Ctx.Rng, X); // body is x itself
  S.addSelUpper(F, Ctx.dom(0), Arg);
  S.addSelUpper(F, Ctx.Rng, R);
  S.addConstLower(Arg, CNum);
  EXPECT_TRUE(S.hasConstLower(X, CNum));
  EXPECT_TRUE(S.hasConstLower(R, CNum));
}

TEST_F(Fixture, NoSpuriousMixingOfSelectors) {
  SetVar A = fresh(), B = fresh(), G = fresh();
  S.addSelLower(B, Ctx.Rng, A);
  S.addSelUpper(B, Ctx.Car, G); // different selector: no rule applies
  S.addConstLower(A, CNum);
  EXPECT_FALSE(S.hasConstLower(G, CNum));
}

TEST_F(Fixture, TransitiveChains) {
  std::vector<SetVar> Vars;
  for (int I = 0; I < 50; ++I)
    Vars.push_back(fresh());
  for (int I = 0; I + 1 < 50; ++I)
    S.addVarUpper(Vars[I], Vars[I + 1]);
  S.addConstLower(Vars[0], CNum);
  EXPECT_TRUE(S.hasConstLower(Vars[49], CNum));
}

TEST_F(Fixture, CyclesTerminate) {
  SetVar A = fresh(), B = fresh();
  S.addVarUpper(A, B);
  S.addVarUpper(B, A);
  S.addSelLower(A, Ctx.Rng, A); // α ≤ rng(α): self-recursive structure
  S.addConstLower(A, CNum);
  EXPECT_TRUE(S.hasConstLower(B, CNum));
}

TEST_F(Fixture, DeduplicationKeepsSizeStable) {
  SetVar A = fresh(), B = fresh();
  S.addVarUpper(A, B);
  size_t Size = S.size();
  S.addVarUpper(A, B);
  EXPECT_EQ(S.size(), Size);
}

TEST_F(Fixture, RawAddThenCloseMatchesIncremental) {
  // Build the same system raw+close and incrementally; compare contents.
  ConstraintSystem Inc{Ctx};
  std::mt19937 Rng(42);
  std::vector<SetVar> Vars;
  for (int I = 0; I < 30; ++I)
    Vars.push_back(fresh());
  auto Pick = [&] { return Vars[Rng() % Vars.size()]; };
  for (int I = 0; I < 200; ++I) {
    switch (Rng() % 4) {
    case 0: {
      SetVar A = Pick();
      Constant C = Rng() % 2 ? CNum : CNil;
      S.addConstLowerRaw(A, C);
      Inc.addConstLower(A, C);
      break;
    }
    case 1: {
      SetVar A = Pick(), B = Pick();
      S.addVarUpperRaw(A, B);
      Inc.addVarUpper(A, B);
      break;
    }
    case 2: {
      SetVar A = Pick(), B = Pick();
      Selector Sel = Rng() % 2 ? Ctx.Rng : Ctx.dom(0);
      S.addSelLowerRaw(A, Sel, B);
      Inc.addSelLower(A, Sel, B);
      break;
    }
    default: {
      SetVar A = Pick(), B = Pick();
      Selector Sel = Rng() % 2 ? Ctx.Rng : Ctx.dom(0);
      S.addSelUpperRaw(A, Sel, B);
      Inc.addSelUpper(A, Sel, B);
      break;
    }
    }
  }
  S.close();
  EXPECT_EQ(S.size(), Inc.size());
  auto Lines = [](const std::string &Text) {
    std::vector<std::string> Out;
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t End = Text.find('\n', Pos);
      Out.push_back(Text.substr(Pos, End - Pos));
      Pos = End == std::string::npos ? Text.size() : End + 1;
    }
    std::sort(Out.begin(), Out.end());
    return Out;
  };
  EXPECT_EQ(Lines(S.str()), Lines(Inc.str()));
}

TEST_F(Fixture, AbsorbRawThenCloseCombinesSystems) {
  ConstraintSystem S2{Ctx};
  SetVar A = fresh(), B = fresh();
  S.addConstLower(A, CNum);
  S2.addVarUpper(A, B);
  ConstraintSystem Combined{Ctx};
  Combined.absorbRaw(S);
  Combined.absorbRaw(S2);
  Combined.close();
  EXPECT_TRUE(Combined.hasConstLower(B, CNum));
}

TEST_F(Fixture, ConstantsOfReturnsSorted) {
  SetVar A = fresh();
  S.addConstLower(A, CNil);
  S.addConstLower(A, CNum);
  auto Cs = S.constantsOf(A);
  ASSERT_EQ(Cs.size(), 2u);
  EXPECT_LE(Cs[0], Cs[1]);
}

TEST(Serialize, RoundTripPreservesSolution) {
  ConstraintContext Ctx;
  SymbolTable Syms;
  ConstraintSystem S{Ctx};
  SetVar F = Ctx.freshVar(), X = Ctx.freshVar(), R = Ctx.freshVar();
  Constant T = Ctx.Constants.makeTag(ConstKind::FnTag, 1, {0, 3, 7},
                                     Syms.intern("id"));
  S.addConstLower(F, T);
  S.addSelLower(F, Ctx.dom(0), X);
  S.addSelLower(F, Ctx.Rng, X);
  std::string Text = serializeConstraints(
      S, {{"fn", F}, {"res", R}}, Syms, hashSource("src"), "fp-test");

  ConstraintContext Ctx2;
  ConstraintSystem S2{Ctx2};
  LoadedConstraints Info;
  std::string Error;
  ASSERT_TRUE(deserializeConstraints(Text, Syms, S2, Info, Error)) << Error;
  EXPECT_EQ(Info.SourceHash, hashSource("src"));
  EXPECT_EQ(Info.OptionsFingerprint, "fp-test");
  ASSERT_EQ(Info.Externals.size(), 2u);
  EXPECT_EQ(Info.Externals[0].first, "fn");

  // Re-link: apply the function to a number and check the flow works.
  SetVar F2 = Info.Externals[0].second;
  S2.close();
  SetVar Arg = Ctx2.freshVar(), Out = Ctx2.freshVar();
  S2.addSelUpper(F2, Ctx2.dom(0), Arg);
  S2.addSelUpper(F2, Ctx2.Rng, Out);
  S2.addConstLower(Arg, Ctx2.Constants.basic(ConstKind::Num));
  EXPECT_TRUE(S2.hasConstLower(Out, Ctx2.Constants.basic(ConstKind::Num)));

  // Tag metadata survives.
  auto Consts = S2.constantsOf(F2);
  ASSERT_EQ(Consts.size(), 1u);
  const ConstantInfo &I = Ctx2.Constants.info(Consts[0]);
  EXPECT_EQ(I.K, ConstKind::FnTag);
  EXPECT_EQ(I.Arity, 1u);
  EXPECT_EQ(I.Loc.Line, 3u);
  EXPECT_EQ(Syms.name(I.Label), "id");
}

TEST(Serialize, RejectsGarbage) {
  ConstraintContext Ctx;
  SymbolTable Syms;
  ConstraintSystem S{Ctx};
  LoadedConstraints Info;
  std::string Error;
  EXPECT_FALSE(deserializeConstraints("not a file", Syms, S, Info, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Serialize, HashDiffersOnDifferentSources) {
  EXPECT_NE(hashSource("a"), hashSource("b"));
  EXPECT_EQ(hashSource("same"), hashSource("same"));
}
