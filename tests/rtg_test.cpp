//===-- tests/rtg_test.cpp - Grammar, containment, entailment --*- C++ -*-===//

#include "rtg/contain.h"
#include "rtg/entail.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

struct RtgFixture : ::testing::Test {
  ConstraintContext Ctx;
  Constant CNum = Ctx.Constants.basic(ConstKind::Num);

  ConstraintSystem closed(std::initializer_list<int>) = delete;
};

} // namespace

TEST(Grammar, ReflexProductionsForExternals) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  S.addVarUpper(A, B);
  Grammar G(S, {A});
  // αL generates "α" (external), and βL generates "α" through βL → αL.
  EXPECT_TRUE(G.nonempty(NT{A, false}));
  EXPECT_TRUE(G.nonempty(NT{B, false}));
  // βU generates nothing (β is internal with no upper structure).
  EXPECT_FALSE(G.nonempty(NT{B, true}));
  // αU generates "α".
  EXPECT_TRUE(G.nonempty(NT{A, true}));
}

TEST(Grammar, SelectorProductions) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  // [α ≤ rng(β)] gives αU → rng(βU).
  S.addSelLower(B, Ctx.Rng, A);
  Grammar G(S, {B});
  EXPECT_TRUE(G.nonempty(NT{A, true}));
  ASSERT_EQ(G.prods(NT{A, true}).size(), 1u);
  const Prod &P = G.prods(NT{A, true})[0];
  EXPECT_EQ(P.K, Prod::Kind::Sel);
  EXPECT_EQ(P.S, Ctx.Rng);
  EXPECT_EQ(P.Target.Var, B);
  EXPECT_TRUE(P.Target.Upper);
}

TEST(Contain, BasicWordLanguages) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), C = Ctx.freshVar();
  S.addVarUpper(A, B);
  S.addVarUpper(A, C);
  Grammar G(S, {B, C});
  // L(AU) = {β, γ}; L(BU) = {β}.
  Lang LA = Lang::ofNT(G, NT{A, true});
  Lang LB = Lang::ofNT(G, NT{B, true});
  EXPECT_TRUE(langContained(LB, LA));
  EXPECT_FALSE(langContained(LA, LB));
  EXPECT_TRUE(langContained(LA, LA));
}

TEST(Contain, RecursiveLanguages) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  // α ≤ rng(α) and α ≤ β gives L(αU) ⊇ rng^n(β).
  S.addSelLower(A, Ctx.Rng, A); // α ≤ rng(α)
  S.addVarUpper(A, B);
  Grammar G(S, {B});
  // The same language twice.
  Lang LA = Lang::ofNT(G, NT{A, true});
  EXPECT_TRUE(langContained(LA, LA));
  // β alone is contained in it.
  ConstraintSystem S2{Ctx};
  SetVar A2 = Ctx.freshVar();
  S2.addVarUpper(A2, B);
  Grammar G2(S2, {B});
  EXPECT_TRUE(langContained(Lang::ofNT(G2, NT{A2, true}), LA));
  EXPECT_FALSE(langContained(LA, Lang::ofNT(G2, NT{A2, true})));
}

TEST(Contain, ProductContainment) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), C = Ctx.freshVar();
  S.addVarUpper(A, B);
  S.addVarUpper(A, C);
  Grammar G(S, {B, C});
  Lang LA = Lang::ofNT(G, NT{A, true}); // {β, γ}
  Lang LB = Lang::ofNT(G, NT{B, true}); // {β}
  Lang LC = Lang::ofNT(G, NT{C, true}); // {γ}
  // {β,γ}×{β} ⊆ {β}×{β} ∪ {γ}×{β} holds.
  EXPECT_TRUE(productContained(LA, LB, {{LB, LB}, {LC, LB}}));
  // {β,γ}×{β,γ} ⊆ {β}×{β} ∪ {γ}×{γ} fails (cross pairs missing).
  EXPECT_FALSE(productContained(LA, LA, {{LB, LB}, {LC, LC}}));
  // ... but holds with the full product.
  EXPECT_TRUE(productContained(LA, LA, {{LA, LA}}));
}

namespace {

/// Derives and closes the constraint system of a source program and
/// returns it with the analysis (for external-variable selection).
struct Analyzed {
  Parsed P;
  Analysis A;
};

Analyzed analyzeSrc(const std::string &Source) {
  Analyzed R{parseOk(Source), {}};
  R.A = analyzeProgram(*R.P.Prog);
  return R;
}

} // namespace

TEST(Entail, SelfEquivalence) {
  Analyzed R = analyzeSrc("(define (f x) (cons x 1)) (f 'a)");
  std::vector<SetVar> E;
  for (const TopForm &F : R.P.Prog->Components[0].Forms)
    if (F.DefVar != NoVar)
      E.push_back(R.A.Maps.varVar(F.DefVar));
  EXPECT_EQ(observablyEquivalent(*R.A.System, *R.A.System, E),
            Decision::Yes);
}

TEST(Entail, TransitivityCollapse) {
  // {α≤β, β≤γ} ≅{α,γ} {α≤γ}: the internal β is not observable.
  ConstraintContext Ctx;
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), G = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addVarUpper(A, B);
  S1.addVarUpper(B, G);
  ConstraintSystem S2{Ctx};
  S2.addVarUpper(A, G);
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, G}), Decision::Yes);
}

TEST(Entail, MissingFlowDetected) {
  ConstraintContext Ctx;
  SetVar A = Ctx.freshVar(), G = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addVarUpper(A, G);
  ConstraintSystem S2{Ctx}; // empty
  // S1 entails S2 (S1 is stronger), but not vice versa.
  EXPECT_EQ(entails(S1, S2, {A, G}), Decision::Yes);
  EXPECT_EQ(entails(S2, S1, {A, G}), Decision::No);
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, G}), Decision::No);
}

TEST(Entail, ConstantConstraints) {
  ConstraintContext Ctx;
  Constant CNum = Ctx.Constants.basic(ConstKind::Num);
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addConstLower(A, CNum);
  S1.addVarUpper(A, B);
  ConstraintSystem S2{Ctx};
  S2.addConstLower(A, CNum);
  S2.addConstLower(B, CNum);
  S2.addVarUpper(A, B);
  // Closure makes [num ≤ β] explicit in S1 too, so they agree on {α, β}.
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, B}), Decision::Yes);
  // Dropping the constant entirely is observable.
  ConstraintSystem S3{Ctx};
  S3.addVarUpper(A, B);
  EXPECT_EQ(entails(S3, S1, {A, B}), Decision::No);
}

TEST(Entail, SelectorIndirectionCollapse) {
  // {α ≤ rng(β)} with an indirection variable ι:
  // {α ≤ ι, ι ≤ rng(β)} is observably equivalent w.r.t. {α, β}.
  ConstraintContext Ctx;
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), I = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addSelLower(B, Ctx.Rng, A); // α ≤ rng(β)
  ConstraintSystem S2{Ctx};
  S2.addVarUpper(A, I);
  S2.addSelLower(B, Ctx.Rng, I); // ι ≤ rng(β)
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, B}), Decision::Yes);
}

TEST(Entail, DomainIndirection) {
  // Anti-monotone side: {dom(β) ≤ α} vs {dom(β) ≤ ι, ι ≤ α}.
  ConstraintContext Ctx;
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), I = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addSelLower(B, Ctx.dom(0), A); // dom(β) ≤ α
  ConstraintSystem S2{Ctx};
  S2.addSelLower(B, Ctx.dom(0), I); // dom(β) ≤ ι
  S2.addVarUpper(I, A);             // ι ≤ α
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, B}), Decision::Yes);
}

TEST(Entail, DifferentSelectorsNotEquivalent) {
  ConstraintContext Ctx;
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addSelLower(B, Ctx.Rng, A); // α ≤ rng(β)
  ConstraintSystem S2{Ctx};
  S2.addSelLower(B, Ctx.Car, A); // α ≤ car(β)
  EXPECT_EQ(observablyEquivalent(S1, S2, {A, B}), Decision::No);
}

TEST(Entail, RecursiveSystems) {
  // α ≤ rng(α), num ≤ α vs the same plus a redundant chain.
  ConstraintContext Ctx;
  Constant CNum = Ctx.Constants.basic(ConstKind::Num);
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  ConstraintSystem S1{Ctx};
  S1.addSelLower(A, Ctx.Rng, A);
  S1.addConstLower(A, CNum);
  ConstraintSystem S2{Ctx};
  S2.addSelLower(A, Ctx.Rng, A);
  S2.addConstLower(A, CNum);
  S2.addVarUpper(A, B); // β internal
  EXPECT_EQ(observablyEquivalent(S1, S2, {A}), Decision::Yes);
}
