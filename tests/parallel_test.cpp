//===-- tests/parallel_test.cpp - Parallel componential tests --*- C++ -*-===//

#include "componential/componential.h"
#include "componential/parallel.h"
#include "corpus/corpus.h"
#include "test_util.h"

#include <atomic>
#include <filesystem>
#include <stdexcept>

using namespace spidey;
using namespace spidey::test;

namespace {

/// A multi-component corpus program large enough that the worker pool
/// actually interleaves components.
Parsed corpusProgramFor(const char *Name) {
  Parsed R = parseFiles(generateProgram(benchmarkConfig(Name)));
  EXPECT_TRUE(R.Ok) << R.Diags.str();
  return R;
}

/// The constants of every top-level define, as one renderable string.
std::string topLevelConstants(const Program &P, const AnalysisMaps &Maps,
                              const ConstraintSystem &S) {
  std::string Out;
  for (const Component &C : P.Components)
    for (const TopForm &F : C.Forms) {
      if (F.DefVar == NoVar || Maps.VarVar[F.DefVar] == NoSetVar)
        continue;
      Out += P.Syms.name(P.var(F.DefVar).Name);
      Out += ":";
      for (Constant K : S.constantsOf(Maps.VarVar[F.DefVar])) {
        Out += " ";
        Out += S.context().Constants.str(K, P.Syms);
      }
      Out += "\n";
    }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===
// WorkerPool
//===----------------------------------------------------------------------===

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::vector<std::atomic<int>> Hits(257);
  parallelFor(Pool, 257, [&](uint32_t I) { ++Hits[I]; });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(WorkerPool, ReusableAfterWait) {
  WorkerPool Pool(2);
  std::atomic<int> Sum{0};
  parallelFor(Pool, 10, [&](uint32_t I) { Sum += int(I); });
  EXPECT_EQ(Sum.load(), 45);
  parallelFor(Pool, 10, [&](uint32_t I) { Sum += int(I); });
  EXPECT_EQ(Sum.load(), 90);
}

TEST(WorkerPool, PropagatesJobExceptions) {
  WorkerPool Pool(3);
  EXPECT_THROW(parallelFor(Pool, 8,
                           [&](uint32_t I) {
                             if (I == 5)
                               throw std::runtime_error("job failed");
                           }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> Ran{0};
  parallelFor(Pool, 4, [&](uint32_t) { ++Ran; });
  EXPECT_EQ(Ran.load(), 4);
}

//===----------------------------------------------------------------------===
// Determinism: the combined closed system must be identical for every
// thread count (the renumbering merge is a pure function of the program).
//===----------------------------------------------------------------------===

TEST(ParallelComponential, DeterministicAcrossThreadCounts) {
  Parsed R = corpusProgramFor("scanner");
  ASSERT_GE(R.Prog->Components.size(), 4u);

  std::string Reference;
  std::string ReferenceConsts;
  for (unsigned Threads : {1u, 2u, WorkerPool::defaultThreadCount()}) {
    ComponentialOptions Opts;
    Opts.Threads = Threads;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    std::string Str = CA.combined().str();
    std::string Consts =
        topLevelConstants(*R.Prog, CA.maps(), CA.combined());
    EXPECT_FALSE(Str.empty());
    if (Reference.empty()) {
      Reference = std::move(Str);
      ReferenceConsts = std::move(Consts);
    } else {
      EXPECT_EQ(Str, Reference) << "thread count " << Threads;
      EXPECT_EQ(Consts, ReferenceConsts) << "thread count " << Threads;
    }
  }
}

TEST(ParallelComponential, DeterministicAcrossSimplifyAlgorithms) {
  // Same property per simplification algorithm: the algorithm changes the
  // combined system, but the thread count never does.
  Parsed R = corpusProgramFor("scanner");
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::None, SimplifyAlgorithm::Empty,
        SimplifyAlgorithm::EpsilonRemoval}) {
    std::string Reference;
    for (unsigned Threads : {1u, 4u}) {
      ComponentialOptions Opts;
      Opts.Simplify = Alg;
      Opts.Threads = Threads;
      ComponentialAnalyzer CA(*R.Prog, Opts);
      CA.run();
      std::string Str = CA.combined().str();
      if (Reference.empty())
        Reference = std::move(Str);
      else
        EXPECT_EQ(Str, Reference)
            << simplifyAlgorithmName(Alg) << " with " << Threads
            << " threads";
    }
  }
}

TEST(ParallelComponential, ParallelMatchesWholeProgram) {
  // Thread fan-out must not change what the analysis computes: compare a
  // 4-thread componential run against the whole-program analysis on the
  // cross-component interface.
  Parsed R = parseFiles(
      {{"lib.ss", "(define (wrap x) (cons x '()))"},
       {"use.ss", "(define boxed (wrap 7))"
                  "(define got (car boxed))"}});
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  Analysis Whole = analyzeProgram(*R.Prog);
  ComponentialOptions Opts;
  Opts.Threads = 4;
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  auto Full = CA.reconstruct(1);
  EXPECT_EQ(topLevelConstants(*R.Prog, CA.maps(), *Full),
            topLevelConstants(*R.Prog, Whole.Maps, *Whole.System));
}

//===----------------------------------------------------------------------===
// Constraint-file cache under the parallel runner.
//===----------------------------------------------------------------------===

TEST(ParallelComponential, CacheRelinkAcrossCrossReferences) {
  // Regression for the external re-link path: several components whose
  // interfaces reference each other, analyzed twice through the file
  // cache. Every file must be reused, and every cross-referenced define
  // must keep the constants of a fresh run.
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_parallel_cache_test").string();
  fs::remove_all(Dir);

  const std::vector<SourceFile> Files = {
      {"a.ss", "(define base (cons 1 'one))"
               "(define (tagof p) (cdr p))"},
      {"b.ss", "(define (reuse) (tagof base))"
               "(define picked (reuse))"},
      {"c.ss", "(define both (cons picked base))"},
  };

  std::string Fresh;
  {
    Parsed R = parseFiles(Files);
    ASSERT_TRUE(R.Ok) << R.Diags.str();
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    Opts.Threads = 4;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    Fresh = topLevelConstants(*R.Prog, CA.maps(), CA.combined());
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_FALSE(CS.ReusedFile);
  }
  {
    Parsed R = parseFiles(Files);
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    Opts.Threads = 4;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_TRUE(CS.ReusedFile);
    EXPECT_EQ(topLevelConstants(*R.Prog, CA.maps(), CA.combined()), Fresh);
  }
  fs::remove_all(Dir);
}

TEST(ParallelComponential, CacheWorksOnCorpusAcrossThreadCounts) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_parallel_corpus_cache").string();
  fs::remove_all(Dir);

  Parsed R = corpusProgramFor("scanner");
  std::string Fresh;
  {
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    Opts.Threads = 4;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    Fresh = topLevelConstants(*R.Prog, CA.maps(), CA.combined());
  }
  // Reload with a different thread count; reuse must not change results.
  {
    Parsed R2 = corpusProgramFor("scanner");
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    Opts.Threads = 2;
    ComponentialAnalyzer CA(*R2.Prog, Opts);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_TRUE(CS.ReusedFile);
    EXPECT_EQ(topLevelConstants(*R2.Prog, CA.maps(), CA.combined()), Fresh);
  }
  fs::remove_all(Dir);
}
