//===-- tests/simplify_test.cpp - §6.4 simplification tests ----*- C++ -*-===//
#include <random>
#include <map>
#include <set>
#include <sstream>

#include "rtg/entail.h"
#include "simplify/simplify.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

const SimplifyAlgorithm AllAlgs[] = {
    SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
    SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft};

/// The constants a closed system assigns to each external variable.
std::vector<std::vector<Constant>> observables(const ConstraintSystem &S,
                                               const std::vector<SetVar> &E) {
  std::vector<std::vector<Constant>> Out;
  for (SetVar V : E)
    Out.push_back(S.constantsOf(V));
  return Out;
}

/// Probes the least solution at external variables and one selector level
/// below them (monotone components).
std::vector<std::vector<Constant>>
deepObservables(const ConstraintSystem &S, const std::vector<SetVar> &E) {
  std::vector<std::vector<Constant>> Out = observables(S, E);
  const SelectorTable &Sels = S.context().Selectors;
  for (SetVar V : E) {
    std::map<Selector, std::set<Constant>> Comp;
    for (const LowerBound &L : S.lowerBounds(V)) {
      if (L.K != LowerBound::Kind::SelLB || !Sels.isMonotone(L.Sel))
        continue;
      for (Constant C : S.constantsOf(L.Other))
        Comp[L.Sel].insert(C);
    }
    for (auto &[Sel, Cs] : Comp)
      Out.emplace_back(Cs.begin(), Cs.end());
  }
  return Out;
}

struct SimplifySetup {
  Parsed P;
  Analysis A;
  std::vector<SetVar> E;
};

/// Analyzes a program; E = the set variables of its top-level defines.
SimplifySetup setup(const std::string &Source) {
  SimplifySetup R{parseOk(Source), {}, {}};
  R.A = analyzeProgram(*R.P.Prog);
  for (const TopForm &F : R.P.Prog->Components[0].Forms)
    if (F.DefVar != NoVar)
      R.E.push_back(R.A.Maps.varVar(F.DefVar));
  return R;
}

} // namespace

TEST(Simplify, ShrinksTypicalSystems) {
  SimplifySetup S = setup(
      "(define (map f l)"
      "  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))"
      "(define (double l) (map (lambda (x) (* 2 x)) l))");
  size_t Orig = S.A.System->size();
  size_t Prev = Orig + 1;
  for (SimplifyAlgorithm Alg : AllAlgs) {
    ConstraintSystem Simplified = simplifyConstraints(*S.A.System, S.E, Alg);
    EXPECT_LT(Simplified.size(), Orig)
        << simplifyAlgorithmName(Alg) << " did not shrink";
    EXPECT_LE(Simplified.size(), Prev)
        << simplifyAlgorithmName(Alg) << " weaker than its predecessor";
    Prev = Simplified.size();
  }
}

TEST(Simplify, PreservesObservablesOnDefines) {
  SimplifySetup S = setup(
      "(define (sum tree)"
      "  (if (number? tree) tree (+ (sum (car tree)) (sum (cdr tree)))))"
      "(define input (cons (cons '() 1) 2))"
      "(sum input)");
  auto Reference = deepObservables(*S.A.System, S.E);
  for (SimplifyAlgorithm Alg : AllAlgs) {
    ConstraintSystem Simplified = simplifyConstraints(*S.A.System, S.E, Alg);
    Simplified.close();
    EXPECT_EQ(deepObservables(Simplified, S.E), Reference)
        << simplifyAlgorithmName(Alg);
  }
}

TEST(Simplify, SimplifiedSystemIsObservablyEquivalent) {
  // Complete ≅E verification (§6.3) on a small system.
  SimplifySetup S = setup("(define (id x) x)"
                          "(define v (id (cons 1 '())))");
  for (SimplifyAlgorithm Alg : AllAlgs) {
    ConstraintSystem Simplified = simplifyConstraints(*S.A.System, S.E, Alg);
    Simplified.close();
    Decision D = observablyEquivalent(*S.A.System, Simplified, S.E);
    EXPECT_NE(D, Decision::No) << simplifyAlgorithmName(Alg);
  }
}

TEST(Simplify, WorkedExampleFromChapter6) {
  // P = (λ^f y.((λ^g z.1) y)) with E = {α_P} (fig. 6.2 / 6.4): the
  // simplified system must still say that applying P yields num, and
  // ε-removal should reduce the system to a handful of constraints.
  Parsed R = parseOk("(lambda (y) ((lambda (z) 1) y))");
  Analysis A = analyzeProgram(*R.Prog);
  SetVar AlphaP = A.Maps.exprVar(lastTopExpr(*R.Prog));
  std::vector<SetVar> E{AlphaP};

  size_t Orig = A.System->size();
  size_t PrevSize = Orig;
  for (SimplifyAlgorithm Alg : AllAlgs) {
    ConstraintSystem Simplified = simplifyConstraints(*A.System, E, Alg);
    EXPECT_LE(Simplified.size(), PrevSize) << simplifyAlgorithmName(Alg);
    PrevSize = Simplified.size();

    // Verify behavior: apply P to an argument; result must include num.
    ConstraintSystem Use(A.System->context());
    Use.absorbRaw(Simplified);
    Use.close();
    ConstraintContext &Ctx = A.System->context();
    SetVar Arg = Ctx.freshVar(), Res = Ctx.freshVar();
    Use.addSelUpper(AlphaP, Ctx.dom(0), Arg);
    Use.addSelUpper(AlphaP, Ctx.Rng, Res);
    Use.addConstLower(Arg, Ctx.Constants.basic(ConstKind::Sym));
    EXPECT_TRUE(
        Use.hasConstLower(Res, Ctx.Constants.basic(ConstKind::Num)))
        << simplifyAlgorithmName(Alg);
  }
  // The paper reports an order-of-magnitude reduction on this example
  // (14 closed constraints down to 3). Our derivation has a slightly
  // different constraint vocabulary but the collapse is just as dramatic.
  ConstraintSystem Eps = simplifyConstraints(
      *A.System, E, SimplifyAlgorithm::EpsilonRemoval);
  EXPECT_LE(Eps.size(), 6u) << Eps.str();
  EXPECT_LT(Eps.size() * 2, Orig);
}

TEST(Simplify, EmptyDropsUnusedStructure) {
  // A function never applied and not external: its internals are empty.
  SimplifySetup S = setup("(define used 42)"
                          "(let ([unused (lambda (q) (cons q q))]) used)");
  ConstraintSystem Simplified =
      simplifyConstraints(*S.A.System, S.E, SimplifyAlgorithm::Empty);
  EXPECT_LT(Simplified.size(), S.A.System->size());
}

TEST(Simplify, ExternalsSurviveSimplification) {
  SimplifySetup S = setup("(define x (cons 1 2))");
  for (SimplifyAlgorithm Alg : AllAlgs) {
    ConstraintSystem Simplified = simplifyConstraints(*S.A.System, S.E, Alg);
    Simplified.close();
    ASSERT_EQ(S.E.size(), 1u);
    auto Consts = Simplified.constantsOf(S.E[0]);
    ASSERT_EQ(Consts.size(), 1u);
    EXPECT_EQ(S.A.System->context().Constants.kind(Consts[0]),
              ConstKind::Pair);
  }
}

TEST(Simplify, IdempotentOnSimplifiedSystems) {
  SimplifySetup S = setup("(define (f a b) (if (< a b) a b)) (f 1 2)");
  ConstraintSystem Once = simplifyConstraints(
      *S.A.System, S.E, SimplifyAlgorithm::EpsilonRemoval);
  ConstraintSystem OnceClosed(S.A.System->context());
  OnceClosed.absorbRaw(Once);
  OnceClosed.close();
  ConstraintSystem Twice = simplifyConstraints(
      OnceClosed, S.E, SimplifyAlgorithm::EpsilonRemoval);
  // A second pass over the re-closed system may re-drop closure-derived
  // constraints but must not lose information.
  Twice.close();
  EXPECT_EQ(observables(Twice, S.E), observables(OnceClosed, S.E));
}

// Property sweep: simplification preserves deep observables across many
// random-ish programs and all algorithms.
class SimplifyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

namespace {

/// Generates a small deterministic program from a seed: chains of defines
/// mixing pairs, boxes, functions, conditionals and recursion.
std::string generatedProgram(int Seed) {
  std::mt19937 Rng(Seed);
  std::ostringstream OS;
  int NumDefs = 2 + Rng() % 4;
  for (int I = 0; I < NumDefs; ++I) {
    OS << "(define (fn" << I << " x)";
    switch (Rng() % 6) {
    case 0:
      OS << " (cons x " << (Rng() % 100) << ")";
      break;
    case 1:
      OS << " (if (pair? x) (car x) x)";
      break;
    case 2:
      OS << " (box x)";
      break;
    case 3:
      OS << " (if (number? x) (+ x 1) 0)";
      break;
    case 4:
      if (I > 0) {
        OS << " (fn" << (Rng() % I) << " (cons x x))";
        break;
      }
      [[fallthrough]];
    default:
      OS << " (lambda (y) (cons x y))";
      break;
    }
    OS << ")";
  }
  OS << "(define result (fn" << (NumDefs - 1) << " ";
  switch (Rng() % 3) {
  case 0:
    OS << "42";
    break;
  case 1:
    OS << "(cons 1 'a)";
    break;
  default:
    OS << "\"str\"";
    break;
  }
  OS << "))";
  return OS.str();
}

} // namespace

TEST_P(SimplifyPropertyTest, PreservesDeepObservables) {
  auto [Seed, AlgIndex] = GetParam();
  SimplifySetup S = setup(generatedProgram(Seed));
  SimplifyAlgorithm Alg = AllAlgs[AlgIndex];
  ConstraintSystem Simplified = simplifyConstraints(*S.A.System, S.E, Alg);
  Simplified.close();
  EXPECT_EQ(deepObservables(Simplified, S.E),
            deepObservables(*S.A.System, S.E))
      << "seed " << Seed << " alg " << simplifyAlgorithmName(Alg) << "\n"
      << generatedProgram(Seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimplifyPropertyTest,
    ::testing::Combine(::testing::Range(0, 25), ::testing::Range(0, 4)));
