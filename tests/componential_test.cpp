//===-- tests/componential_test.cpp - §7.1 componential tests --*- C++ -*-===//

#include "componential/componential.h"
#include "test_util.h"

#include <filesystem>

using namespace spidey;
using namespace spidey::test;

namespace {

const std::vector<SourceFile> ThreeFiles = {
    {"list.ss", "(define (first p) (car p))"
                "(define (second p) (car (cdr p)))"},
    {"data.ss", "(define good (cons 1 (cons 'two '())))"
                "(define bad 42)"},
    {"main.ss", "(define r1 (first good))"
                "(define r2 (second good))"
                "(define r3 (first bad))"},
};

/// Kind names of the constants reaching a top-level define's variable.
std::vector<std::string> kindsAt(const Program &P, const AnalysisMaps &Maps,
                                 const ConstraintSystem &S,
                                 const std::string &Name) {
  Symbol Sym = const_cast<Program &>(P).Syms.intern(Name);
  for (VarId V = 0; V < P.numVars(); ++V) {
    if (!P.var(V).TopLevel || P.var(V).Name != Sym)
      continue;
    std::vector<std::string> Out;
    for (Constant C : S.constantsOf(Maps.varVar(V)))
      Out.push_back(constKindName(S.context().Constants.kind(C)));
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
  return {"<no such define>"};
}

} // namespace

TEST(Componential, MatchesWholeProgramOnExports) {
  Parsed R = parseFiles(ThreeFiles);
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  Analysis Whole = analyzeProgram(*R.Prog);

  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
        SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft}) {
    ComponentialOptions Opts;
    Opts.Simplify = Alg;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    // The combined system preserves the cross-referenced interface...
    for (const char *Name : {"good", "bad", "first", "second"})
      EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), CA.combined(), Name),
                kindsAt(*R.Prog, Whole.Maps, *Whole.System, Name))
          << Name << " with " << simplifyAlgorithmName(Alg);
    // ... and reconstruction recovers component-internal definitions.
    auto Full = CA.reconstruct(2);
    for (const char *Name : {"r1", "r2", "r3"})
      EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, Name),
                kindsAt(*R.Prog, Whole.Maps, *Whole.System, Name))
          << Name << " with " << simplifyAlgorithmName(Alg);
  }
}

TEST(Componential, CombinedIsSmallerThanWhole) {
  Parsed R = parseFiles(ThreeFiles);
  Analysis Whole = analyzeProgram(*R.Prog);
  ComponentialOptions Opts;
  Opts.Simplify = SimplifyAlgorithm::EpsilonRemoval;
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_LT(CA.combined().size(), Whole.System->size());
}

TEST(Componential, ReconstructRecoversLabels) {
  Parsed R = parseFiles(ThreeFiles);
  Analysis Whole = analyzeProgram(*R.Prog);
  ComponentialOptions Opts;
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  // Reconstruct main.ss and compare every expression label against the
  // whole-program analysis.
  auto Full = CA.reconstruct(2);
  const Component &Main = R.Prog->Components[2];
  for (const TopForm &F : Main.Forms) {
    SetVar L1 = CA.maps().exprVar(F.Body);
    SetVar L2 = Whole.Maps.exprVar(F.Body);
    std::vector<std::string> A, B;
    for (Constant C : Full->constantsOf(L1))
      A.push_back(constKindName(CA.combined().context().Constants.kind(C)));
    for (Constant C : Whole.System->constantsOf(L2))
      B.push_back(constKindName(Whole.Ctx->Constants.kind(C)));
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    EXPECT_EQ(A, B);
  }
}

TEST(Componential, ConstraintFilesRoundTrip) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_cache_test").string();
  fs::remove_all(Dir);

  Parsed R1 = parseFiles(ThreeFiles);
  ComponentialOptions Opts;
  Opts.CacheDir = Dir;
  {
    ComponentialAnalyzer CA(*R1.Prog, Opts);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats()) {
      EXPECT_FALSE(CS.ReusedFile);
      EXPECT_GT(CS.FileBytes, 0u);
    }
  }
  // Second run: every component is loaded from its constraint file, and
  // the results agree with a fresh whole-program analysis.
  Parsed R2 = parseFiles(ThreeFiles);
  Analysis Whole = analyzeProgram(*R2.Prog);
  {
    ComponentialAnalyzer CA(*R2.Prog, Opts);
    CA.run();
    for (const ComponentRunStats &CS : CA.componentStats())
      EXPECT_TRUE(CS.ReusedFile);
    for (const char *Name : {"good", "first"})
      EXPECT_EQ(kindsAt(*R2.Prog, CA.maps(), CA.combined(), Name),
                kindsAt(*R2.Prog, Whole.Maps, *Whole.System, Name))
          << Name;
    auto Full = CA.reconstruct(2);
    for (const char *Name : {"r1", "r3"})
      EXPECT_EQ(kindsAt(*R2.Prog, CA.maps(), *Full, Name),
                kindsAt(*R2.Prog, Whole.Maps, *Whole.System, Name))
          << Name;
  }
  fs::remove_all(Dir);
}

TEST(Componential, EditedComponentIsReanalyzed) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_cache_edit_test").string();
  fs::remove_all(Dir);

  ComponentialOptions Opts;
  Opts.CacheDir = Dir;
  {
    Parsed R = parseFiles(ThreeFiles);
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
  }
  // Edit main.ss: add a string-valued define. The component's foreign
  // references are unchanged, so the other components' interfaces (and
  // hence their cached files) stay valid.
  std::vector<SourceFile> Edited = ThreeFiles;
  Edited[2].Text = "(define r1 (first good))"
                   "(define r2 (second good))"
                   "(define r3 (first bad))"
                   "(define r4 \"changed\")";
  Parsed R = parseFiles(Edited);
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_TRUE(CA.componentStats()[0].ReusedFile);
  EXPECT_EQ(CA.componentStats()[0].Cache, CacheOutcome::Hit);
  EXPECT_TRUE(CA.componentStats()[1].ReusedFile);
  EXPECT_FALSE(CA.componentStats()[2].ReusedFile);
  EXPECT_EQ(CA.componentStats()[2].Cache, CacheOutcome::MissStaleHash);
  auto Full = CA.reconstruct(2);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "r4"),
            std::vector<std::string>{"str"});
  fs::remove_all(Dir);
}

TEST(Componential, CrossComponentUnits) {
  Parsed R = parseFiles(
      {{"a.ss", "(define u1 (unit (import i) (export f)"
                "            (define f (lambda (x) (cons i x)))))"},
       {"b.ss", "(define seed 7)"
                "(define g (invoke u1 seed))"
                "(define out (g 'payload))"}});
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  Analysis Whole = analyzeProgram(*R.Prog);
  ComponentialAnalyzer CA(*R.Prog, {});
  CA.run();
  auto Full = CA.reconstruct(1);
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "out"),
            kindsAt(*R.Prog, Whole.Maps, *Whole.System, "out"));
  EXPECT_EQ(kindsAt(*R.Prog, CA.maps(), *Full, "out"),
            std::vector<std::string>{"pair"});
}

TEST(Componential, PolyOptionsBuildSchedules) {
  Parsed R = parseOk("(define (id x) x) (id 1) (id 'a)");
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::Empty, SimplifyAlgorithm::EpsilonRemoval}) {
    Analysis A =
        analyzeProgram(*R.Prog, polyAnalysisOptions(PolyMode::Smart, Alg));
    EXPECT_EQ(kindsOf(A, lastTopExpr(*R.Prog)),
              std::vector<std::string>{"sym"})
        << simplifyAlgorithmName(Alg);
    EXPECT_GT(A.Stats.Instantiations, 0u);
  }
}
