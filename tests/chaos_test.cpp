//===-- tests/chaos_test.cpp - Fault-injection chaos harness ---*- C++ -*-===//
///
/// \file
/// The robustness layer under seeded fault injection: the FaultInjector's
/// deterministic schedules and spec validation, CancelToken deadlines and
/// budgets, LRU eviction and wipe recovery of the in-memory constraint
/// store, graceful degradation of over-budget analyzes, and the main
/// chaos loop — 500 randomized fault schedules against one long-lived
/// ServeSession, asserting every response stays well-formed and the
/// combined system returns to fault-free cold-run bytes once injection
/// stops.
///
/// Everything here runs with Threads=1: the injector's draw stream is
/// keyed on (seed, site, per-site draw count), so single-threaded runs
/// replay the identical fault schedule for a given spec.
///
//===----------------------------------------------------------------------===//

#include "serve/serve.h"
#include "support/cancel.h"
#include "support/faultinject.h"
#include "test_util.h"

#include <chrono>
#include <filesystem>
#include <random>
#include <thread>

using namespace spidey;
using namespace spidey::test;

namespace {

namespace fs = std::filesystem;

/// A scratch cache directory, wiped on construction and destruction.
struct ScratchDir {
  explicit ScratchDir(const char *Tag)
      : Path((fs::temp_directory_path() / Tag).string()) {
    fs::remove_all(Path);
  }
  ~ScratchDir() { fs::remove_all(Path); }
  std::string Path;
};

/// Disarms the global injector when a test exits, pass or fail: armed
/// sites must never leak into the next test.
struct FaultScope {
  FaultScope() { FaultInjector::instance().reset(); }
  ~FaultScope() { FaultInjector::instance().reset(); }
};

const std::string MainA = "(define r1 (first good))"
                          "(define r2 (second good))"
                          "(define r3 (first bad))";
const std::string MainB = MainA + "(define r4 \"chaos\")";

std::vector<SourceFile> filesWith(const std::string &MainText) {
  return {
      {"list.ss", "(define (first p) (car p))"
                  "(define (second p) (car (cdr p)))"},
      {"data.ss", "(define good (cons 1 (cons 'two '())))"
                  "(define bad 42)"},
      {"main.ss", MainText},
  };
}

/// Fault-free combined text of a cold session over the given main.ss.
std::string coldText(const std::string &MainText) {
  FaultInjector::instance().reset();
  ServeOptions O;
  O.Threads = 1;
  ServeSession C(O);
  C.setFiles(filesWith(MainText));
  return C.combinedText();
}

json::Value parsedResponse(const std::string &Resp) {
  std::string Error;
  std::optional<json::Value> V = json::Value::parse(Resp, &Error);
  EXPECT_TRUE(V) << "unparseable response: " << Resp << " (" << Error << ")";
  return V ? *V : json::Value();
}

json::Value editRequest(const std::string &File, const std::string &Text) {
  json::Value R = json::Value::object();
  R.set("cmd", "edit");
  R.set("file", File);
  R.set("text", Text);
  return R;
}

double num(const json::Value &R, std::string_view Key) {
  const json::Value *M = R.find(Key);
  EXPECT_TRUE(M && M->isNumber()) << "missing number member " << Key;
  return M ? M->asNumber() : -1;
}

/// A two-component chain program big enough that its derivation runs the
/// closure far past the cancellation poll stride (the budget tests need
/// real work to interrupt).
std::vector<SourceFile> chainProgram(int Defines) {
  std::string A = "(define c0 (cons 1 2))";
  for (int I = 1; I < Defines; ++I)
    A += "(define c" + std::to_string(I) + " (cons c" + std::to_string(I - 1) +
         " c" + std::to_string(I - 1) + "))";
  std::string B = "(define top (car c" + std::to_string(Defines - 1) + "))";
  return {{"chain.ss", A}, {"top.ss", B}};
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultInjector: deterministic schedules and spec validation
//===----------------------------------------------------------------------===//

TEST(FaultInject, SameSpecReplaysIdenticalSchedule) {
  FaultScope Scope;
  FaultInjector &FI = FaultInjector::instance();
  auto draw = [&](const char *Spec) {
    std::string Error;
    EXPECT_TRUE(FI.configure(Spec, &Error)) << Error;
    std::vector<bool> Out;
    for (int I = 0; I < 200; ++I)
      Out.push_back(FI.shouldFail("cache.load"));
    return Out;
  };
  std::vector<bool> First = draw("seed=7,cache.load=0.4");
  std::vector<bool> Again = draw("seed=7,cache.load=0.4");
  EXPECT_EQ(First, Again);
  // Some decisions fire and some don't at p=0.4.
  EXPECT_NE(std::count(First.begin(), First.end(), true), 0);
  EXPECT_NE(std::count(First.begin(), First.end(), false), 0);
  // A different seed produces a different schedule.
  EXPECT_NE(draw("seed=8,cache.load=0.4"), First);
}

TEST(FaultInject, CountersAndExtremeProbabilities) {
  FaultScope Scope;
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("seed=3,cache.load=1,cache.write=0"));
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(FI.shouldFail("cache.load"));
    EXPECT_FALSE(FI.shouldFail("cache.write"));
    EXPECT_FALSE(FI.shouldFail("scf.parse")); // unarmed site never fires
  }
  EXPECT_EQ(FI.injectedAt("cache.load"), 50u);
  EXPECT_EQ(FI.injectedAt("cache.write"), 0u);
  EXPECT_EQ(FI.totalInjected(), 50u);
  FI.reset();
  EXPECT_FALSE(FI.enabled());
  EXPECT_EQ(FI.totalInjected(), 0u);
  EXPECT_FALSE(FI.shouldFail("cache.load"));
}

TEST(FaultInject, WildcardArmsEveryMatchingSite) {
  FaultScope Scope;
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("seed=1,store.*=1"));
  EXPECT_TRUE(FI.shouldFail("store.load"));
  EXPECT_TRUE(FI.shouldFail("store.store"));
  EXPECT_TRUE(FI.shouldFail("store.wipe"));
  EXPECT_FALSE(FI.shouldFail("cache.load"));
}

TEST(FaultInject, MalformedSpecsRejectedAndPreviousConfigKept) {
  FaultScope Scope;
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("seed=1,cache.load=1"));
  for (const char *Bad :
       {"no-such-site=0.5", "zzz.*=0.5", "cache.load=1.5", "cache.load=-0.1",
        "cache.load=abc", "cache.load", "seed=abc", "=0.5"}) {
    std::string Error;
    EXPECT_FALSE(FI.configure(Bad, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
    // The previous (working) configuration survives a rejected spec.
    EXPECT_TRUE(FI.enabled()) << Bad;
    EXPECT_TRUE(FI.shouldFail("cache.load")) << Bad;
  }
  ASSERT_TRUE(FI.configure(""));
  EXPECT_FALSE(FI.enabled());
}

//===----------------------------------------------------------------------===//
// CancelToken: budgets and deadlines
//===----------------------------------------------------------------------===//

TEST(CancelTok, DisarmedTokenNeverCancels) {
  CancelToken T;
  EXPECT_FALSE(T.cancelled());
  EXPECT_FALSE(T.charge(1'000'000));
  EXPECT_EQ(T.workUsed(), 1'000'000u);
}

TEST(CancelTok, WorkBudgetLatches) {
  CancelToken T;
  T.setWorkBudget(10);
  EXPECT_FALSE(T.charge(5));
  EXPECT_FALSE(T.cancelled());
  EXPECT_TRUE(T.charge(6)); // 11 > 10: over budget, latches
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.charge(0)); // stays cancelled
}

TEST(CancelTok, DeadlinePassingCancels) {
  CancelToken T;
  T.setDeadlineMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(T.charge(1));
  EXPECT_TRUE(T.cancelled());
}

TEST(CancelTok, ExplicitCancelLatches) {
  CancelToken T;
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.charge(0));
}

TEST(CancelTok, RearmClearsLatchAndWork) {
  CancelToken T;
  T.setWorkBudget(10);
  EXPECT_TRUE(T.charge(11));
  EXPECT_TRUE(T.cancelled());

  // The latch and accumulated work are gone; the new budget is live.
  T.rearm(/*DeadlineMs=*/0, /*BudgetUnits=*/5);
  EXPECT_FALSE(T.cancelled());
  EXPECT_EQ(T.workUsed(), 0u);
  EXPECT_FALSE(T.charge(5));
  EXPECT_TRUE(T.charge(1)); // 6 > 5: over the new budget

  // Rearming to disarmed limits clears everything for good.
  T.rearm(0, 0);
  EXPECT_FALSE(T.cancelled());
  EXPECT_FALSE(T.charge(1'000'000));
}

//===----------------------------------------------------------------------===//
// MemoryConstraintStore: LRU eviction under a byte cap
//===----------------------------------------------------------------------===//

TEST(ChaosStore, LruEvictionUnderByteCap) {
  FaultScope Scope;
  MemoryConstraintStore St;
  St.store("a", std::string(100, 'a'));
  St.store("b", std::string(100, 'b'));
  St.store("c", std::string(100, 'c'));
  EXPECT_EQ(St.entries(), 3u);
  EXPECT_EQ(St.bytes(), 300u);

  // Touch "a" so "b" becomes least recently used, then cap below 300:
  // exactly "b" is evicted.
  ASSERT_TRUE(St.load("a"));
  St.setMaxBytes(250);
  EXPECT_EQ(St.entries(), 2u);
  EXPECT_EQ(St.bytes(), 200u);
  EXPECT_EQ(St.evictions(), 1u);
  EXPECT_FALSE(St.load("b"));
  EXPECT_TRUE(St.load("c"));
  EXPECT_TRUE(St.load("a"));

  // An oversized insert evicts as much as needed, never wedges.
  St.store("d", std::string(200, 'd'));
  EXPECT_LE(St.bytes(), 250u);
  EXPECT_TRUE(St.load("d"));
  EXPECT_GE(St.evictions(), 2u);

  St.clear();
  EXPECT_EQ(St.entries(), 0u);
  EXPECT_EQ(St.bytes(), 0u);
}

TEST(ChaosStore, SessionStoreCapOnlyCostsRederivation) {
  FaultScope Scope;
  ServeOptions O;
  O.Threads = 1;
  O.MaxStoreBytes = 1; // every entry evicted immediately
  ServeSession S(O);
  S.setFiles(filesWith(MainA));
  std::string First = S.combinedText();
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(S.store().entries(), 0u);
  EXPECT_GT(S.store().evictions(), 0u);

  // Warm edits find nothing to reuse but still converge to the cold text.
  S.handle(editRequest("main.ss", MainB));
  json::Value R = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  EXPECT_TRUE(R.find("ok")->asBool()) << R.dump();
  EXPECT_EQ(num(R, "reused"), 0);
  EXPECT_EQ(S.combinedText(), coldText(MainB));
}

//===----------------------------------------------------------------------===//
// Degradation: over-budget analyze answers degraded, then recovers
//===----------------------------------------------------------------------===//

TEST(ChaosDegrade, OverBudgetAnalyzeDegradesThenRecoversExactly) {
  FaultScope Scope;
  std::vector<SourceFile> Files = chainProgram(150);

  ServeOptions O;
  O.Threads = 1;
  O.MaxConstraints = 1; // one combine attempt: nothing can converge
  ServeSession S(O);
  S.setFiles(Files);

  json::Value R = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(R.find("ok")->asBool()) << R.dump();
  const json::Value *Degraded = R.find("degraded");
  ASSERT_TRUE(Degraded && Degraded->asBool()) << R.dump();
  const json::Value *Unconverged = R.find("unconverged");
  ASSERT_TRUE(Unconverged && Unconverged->isArray()) << R.dump();
  EXPECT_FALSE(Unconverged->items().empty());
  EXPECT_TRUE(S.lastDegraded());

  // The session stays dirty: a degraded pass never masquerades as done.
  json::Value Stats = S.handle(parsedResponse(R"({"cmd":"stats"})"));
  EXPECT_TRUE(Stats.find("dirty")->asBool());
  EXPECT_EQ(num(Stats, "degraded"), 1);

  // Lift the budget through the protocol; the next analyze starts from
  // scratch and produces the exact cold-run system.
  json::Value Conf =
      S.handle(parsedResponse(R"({"cmd":"configure","max_constraints":0})"));
  ASSERT_TRUE(Conf.find("ok")->asBool()) << Conf.dump();
  json::Value Full = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(Full.find("ok")->asBool()) << Full.dump();
  EXPECT_EQ(Full.find("degraded"), nullptr) << Full.dump();
  EXPECT_FALSE(S.lastDegraded());

  ServeOptions Unlimited;
  Unlimited.Threads = 1;
  ServeSession Cold(Unlimited);
  Cold.setFiles(Files);
  std::string Want = Cold.combinedText();
  ASSERT_FALSE(Want.empty());
  EXPECT_EQ(S.combinedText(), Want);
}

// The sharded parallel close under a work budget: the shared token latches
// across shards mid-round, the answer degrades with every component derived
// (the budget fell in the close phase, not in step 1), the session stays
// dirty, and the next in-budget pass reproduces the exact cold bytes — the
// same bytes the sequential engine produces.
TEST(ChaosDegrade, ShardedCloseBudgetTripsMidRoundThenRecovers) {
  FaultScope Scope;
  // One define per file: every chain link crosses a component boundary,
  // so after per-component simplification the propagation work lives in
  // the *combined* close — exactly the phase the budget must interrupt.
  // (chainProgram's two fat components would spend the budget in derive.)
  // 300 links keep every shard's per-round drain past the forced-poll
  // stride, so the close phase actually charges the shared token.
  std::vector<SourceFile> Files;
  Files.push_back({"c000.ss", "(define c0 (cons 1 2))"});
  for (int I = 1; I < 300; ++I) {
    std::string N = std::to_string(I), P = std::to_string(I - 1);
    Files.push_back({"c" + N + ".ss", "(define c" + N + " (cons c" + P +
                                          " (car c" + P + ")))"});
  }
  Files.push_back({"top.ss", "(define top (car c299))"});

  ServeOptions Base;
  Base.Threads = 1; // shards run inline: deterministic charge counts
  Base.ParallelClose = true;
  Base.CloseShards = 4;

  std::string Want;
  {
    ServeSession Cold(Base);
    Cold.setFiles(Files);
    Want = Cold.combinedText();
    ASSERT_FALSE(Want.empty());
  }
  // Cross-engine identity: the sharded cold text is the sequential text.
  {
    ServeOptions Seq;
    Seq.Threads = 1;
    ServeSession SeqS(Seq);
    SeqS.setFiles(Files);
    EXPECT_EQ(Want, SeqS.combinedText());
  }

  // Classify a budget: where in the pass did it trip? The charge sequence
  // is deterministic at Threads=1, so classification is monotone in the
  // budget — binary-search the window where derive completes but the
  // sharded close does not.
  enum class Trip { Derive, Close, None };
  auto classify = [&](uint64_t Budget, ServeSession *&Out) {
    ServeOptions O = Base;
    O.MaxConstraints = Budget;
    Out = new ServeSession(O);
    Out->setFiles(Files);
    json::Value R = Out->handle(parsedResponse(R"({"cmd":"analyze"})"));
    EXPECT_TRUE(R.find("ok")->asBool()) << R.dump();
    const json::Value *Degraded = R.find("degraded");
    if (!Degraded || !Degraded->asBool())
      return Trip::None;
    const json::Value *U = R.find("unconverged");
    EXPECT_TRUE(U && U->isArray()) << R.dump();
    if (U && !U->items().empty())
      return Trip::Derive;
    const json::Value *CC = R.find("close_converged");
    EXPECT_TRUE(CC) << R.dump();
    EXPECT_FALSE(CC && CC->asBool()) << R.dump();
    return Trip::Close;
  };

  uint64_t Lo = 1, Hi = 1;
  std::unique_ptr<ServeSession> MidClose;
  // Grow Hi until the pass completes, then bisect.
  for (; Hi < (uint64_t(1) << 30); Hi *= 2) {
    ServeSession *S = nullptr;
    Trip T = classify(Hi, S);
    if (T == Trip::Close)
      MidClose.reset(S);
    else
      delete S;
    if (T == Trip::None)
      break;
    if (MidClose)
      break;
    Lo = Hi;
  }
  while (!MidClose && Lo + 1 < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    ServeSession *S = nullptr;
    Trip T = classify(Mid, S);
    if (T == Trip::Close) {
      MidClose.reset(S);
      break;
    }
    delete S;
    (T == Trip::Derive ? Lo : Hi) = Mid;
  }
  ASSERT_TRUE(MidClose)
      << "no budget landed in the close phase (window empty?)";

  // Degraded-by-close pass: the session must stay dirty.
  json::Value Stats = MidClose->handle(parsedResponse(R"({"cmd":"stats"})"));
  EXPECT_TRUE(Stats.find("dirty")->asBool());
  EXPECT_GE(num(Stats, "degraded"), 1);

  // Lift the budget; the next pass starts from scratch and produces the
  // exact cold bytes.
  json::Value Conf = MidClose->handle(
      parsedResponse(R"({"cmd":"configure","max_constraints":0})"));
  ASSERT_TRUE(Conf.find("ok")->asBool()) << Conf.dump();
  json::Value Full = MidClose->handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(Full.find("ok")->asBool()) << Full.dump();
  EXPECT_EQ(Full.find("degraded"), nullptr) << Full.dump();
  EXPECT_EQ(MidClose->combinedText(), Want);
}

// Regression: a check-summary sweep that blows its budget or deadline
// latches the session token cancelled, and the partial path leaves the
// session clean — nothing else ever mints a fresh token. The next sweep
// must rearm the token instead of seeing the stale latch and answering
// degraded with zero components checked forever.
TEST(ChaosDegrade, CheckSummaryRecoversAfterDegradedSweep) {
  FaultScope Scope;
  std::vector<SourceFile> Files = chainProgram(150);

  ServeOptions O;
  O.Threads = 1;
  ServeSession S(O);
  S.setFiles(Files);
  ASSERT_TRUE(
      S.handle(parsedResponse(R"({"cmd":"analyze"})")).find("ok")->asBool());

  // Starve only the reconstruct sweep: the analyze above ran unlimited,
  // so the session stays clean while the sweep degrades.
  S.handle(parsedResponse(R"({"cmd":"configure","max_constraints":1})"));
  json::Value Starved = S.handle(parsedResponse(R"({"cmd":"check-summary"})"));
  ASSERT_TRUE(Starved.find("ok")->asBool()) << Starved.dump();
  const json::Value *Degraded = Starved.find("degraded");
  ASSERT_TRUE(Degraded && Degraded->asBool()) << Starved.dump();
  EXPECT_LT(num(Starved, "components_checked"), 2);

  // Unlimited again: the sweep runs fresh instead of inheriting the
  // latched cancellation, and matches a never-degraded session's summary.
  S.handle(parsedResponse(R"({"cmd":"configure","max_constraints":0})"));
  json::Value Healed = S.handle(parsedResponse(R"({"cmd":"check-summary"})"));
  ASSERT_TRUE(Healed.find("ok")->asBool()) << Healed.dump();
  EXPECT_EQ(Healed.find("degraded"), nullptr) << Healed.dump();

  ServeSession Cold(O);
  Cold.setFiles(Files);
  json::Value Want = Cold.handle(parsedResponse(R"({"cmd":"check-summary"})"));
  ASSERT_TRUE(Want.find("ok")->asBool()) << Want.dump();
  EXPECT_EQ(Healed.str("summary"), Want.str("summary"));
}

TEST(ChaosDegrade, DegradedPassNeverPoisonsTheCache) {
  FaultScope Scope;
  ScratchDir Dir("spidey-chaos-degrade-cache");
  std::vector<SourceFile> Files = chainProgram(150);

  ServeOptions O;
  O.Threads = 1;
  O.CacheDir = Dir.Path;
  O.MaxConstraints = 1;
  ServeSession S(O);
  S.setFiles(Files);
  json::Value R = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(R.find("ok")->asBool());
  ASSERT_TRUE(R.find("degraded") && R.find("degraded")->asBool());
  // No partial constraint file may have been written for a timed-out
  // component: a fresh unlimited session over the same cache dir must
  // match a cache-less cold run byte for byte.
  ServeOptions FromCache;
  FromCache.Threads = 1;
  FromCache.CacheDir = Dir.Path;
  ServeSession S2(FromCache);
  S2.setFiles(Files);
  ServeOptions NoCache;
  NoCache.Threads = 1;
  ServeSession S3(NoCache);
  S3.setFiles(Files);
  std::string Want = S3.combinedText();
  ASSERT_FALSE(Want.empty());
  EXPECT_EQ(S2.combinedText(), Want);
}

//===----------------------------------------------------------------------===//
// Crash recovery: a wiped store warms back up from the disk cache
//===----------------------------------------------------------------------===//

TEST(ChaosRecovery, StoreWipeRefillsFromCacheDir) {
  FaultScope Scope;
  ScratchDir Dir("spidey-chaos-wipe");
  ServeOptions O;
  O.Threads = 1;
  O.CacheDir = Dir.Path;
  ServeSession S(O);
  S.setFiles(filesWith(MainA));
  ASSERT_FALSE(S.combinedText().empty());
  EXPECT_EQ(S.store().entries(), 3u);

  // The "crash": every in-memory entry is lost, the disk cache survives.
  S.store().clear();
  EXPECT_EQ(S.store().entries(), 0u);

  S.handle(editRequest("main.ss", MainB));
  json::Value R = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(R.find("ok")->asBool()) << R.dump();
  // Both unchanged components come back as disk-cache hits, not fresh
  // derivations, and the hits refill the in-memory store.
  EXPECT_EQ(num(R, "reused"), 2);
  EXPECT_EQ(num(R, "cache_hits"), 2);
  EXPECT_EQ(S.store().entries(), 3u);
  EXPECT_EQ(S.combinedText(), coldText(MainB));
}

TEST(ChaosRecovery, InjectedWipeRecoversMidSession) {
  FaultScope Scope;
  ScratchDir Dir("spidey-chaos-injected-wipe");
  ServeOptions O;
  O.Threads = 1;
  O.CacheDir = Dir.Path;
  ServeSession S(O);
  S.setFiles(filesWith(MainA));
  ASSERT_FALSE(S.combinedText().empty());

  // store.wipe=1 clears the store at the head of every analyze pass;
  // every pass then rebuilds entirely from the disk cache.
  ASSERT_TRUE(FaultInjector::instance().configure("seed=5,store.wipe=1"));
  S.handle(editRequest("main.ss", MainB));
  json::Value R = S.handle(parsedResponse(R"({"cmd":"analyze"})"));
  ASSERT_TRUE(R.find("ok")->asBool()) << R.dump();
  EXPECT_EQ(num(R, "cache_hits"), 2);
  FaultInjector::instance().reset();
  EXPECT_EQ(S.combinedText(), coldText(MainB));
}

//===----------------------------------------------------------------------===//
// The chaos loop: 500 randomized fault schedules, one surviving session
//===----------------------------------------------------------------------===//

TEST(Chaos, FiveHundredRandomSchedulesNeverWedgeOrCorrupt) {
  FaultScope Scope;
  ScratchDir Dir("spidey-chaos-loop");

  std::string RefA = coldText(MainA);
  std::string RefB = coldText(MainB);
  ASSERT_FALSE(RefA.empty());
  ASSERT_FALSE(RefB.empty());
  ASSERT_NE(RefA, RefB);

  ServeOptions O;
  O.Threads = 1;
  O.CacheDir = Dir.Path;
  ServeSession S(O);
  S.setFiles(filesWith(MainA));
  bool UsingB = false;

  // Fixed-seed PRNG: the whole run — fault schedules included — replays
  // identically, so a failure here is a deterministic repro.
  std::mt19937 Rng(0xC0FFEE);
  const std::vector<std::string> &Sites = faultSiteNames();
  const char *Hostile[] = {"definitely not json", "[1,2,3]", "{\"cmd\":42}",
                           "{\"cmd\":\"no-such\"}", "{}"};
  int IdentityChecks = 0;

  for (int Iter = 0; Iter < 500; ++Iter) {
    // A random subset of sites at random probabilities, reseeded per
    // iteration.
    std::string Spec = "seed=" + std::to_string(Iter + 1);
    for (const std::string &Site : Sites)
      if (Rng() % 2)
        Spec += "," + Site + "=0." + std::to_string(1 + Rng() % 9);
    std::string Error;
    ASSERT_TRUE(FaultInjector::instance().configure(Spec, &Error)) << Error;

    unsigned Ops = 1 + Rng() % 4;
    for (unsigned J = 0; J < Ops; ++J) {
      std::string Line;
      bool WantOk = true;
      switch (Rng() % 6) {
      case 0:
        Line = R"({"cmd":"analyze"})";
        break;
      case 1:
        UsingB = !UsingB;
        Line = editRequest("main.ss", UsingB ? MainB : MainA).dump();
        break;
      case 2:
        Line = R"({"cmd":"flow","name":"good"})";
        break;
      case 3:
        Line = R"({"cmd":"stats"})";
        break;
      case 4:
        Line = R"({"cmd":"check-summary"})";
        break;
      case 5:
        Line = Hostile[Rng() % (sizeof(Hostile) / sizeof(*Hostile))];
        WantOk = false;
        break;
      }
      // Whatever the fault schedule does, the session must answer every
      // line with a JSON object carrying a boolean "ok" — and since no
      // deadline is armed, lost cache or store entries only cost
      // re-derivation, so legitimate requests must succeed outright.
      json::Value R = parsedResponse(S.handleLine(Line));
      const json::Value *Ok = R.find("ok");
      ASSERT_TRUE(Ok && Ok->isBool())
          << "iteration " << Iter << ": " << Line;
      EXPECT_EQ(Ok->asBool(), WantOk)
          << "iteration " << Iter << ": " << Line << " -> " << R.dump();
    }

    // Periodically stop injecting and demand the exact fault-free bytes.
    if (Iter % 10 == 9) {
      FaultInjector::instance().reset();
      ASSERT_EQ(S.combinedText(), UsingB ? RefB : RefA)
          << "corrupt after iteration " << Iter;
      ++IdentityChecks;
    }
  }

  FaultInjector::instance().reset();
  EXPECT_EQ(S.combinedText(), UsingB ? RefB : RefA);
  EXPECT_EQ(IdentityChecks, 50);
  // The exception barrier never had to fire: fault paths are handled
  // paths, not crashes.
  EXPECT_EQ(S.totals().InternalErrors, 0u);
}
