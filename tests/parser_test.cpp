//===-- tests/parser_test.cpp - Parser and AST tests -----------*- C++ -*-===//

#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

/// Parses a single expression and renders it back.
std::string roundTrip(const std::string &Source) {
  Parsed R = parse(Source);
  if (!R.Ok)
    return "<error>";
  return R.Prog->exprToString(lastTopExpr(*R.Prog));
}

} // namespace

TEST(Parser, Literals) {
  EXPECT_EQ(roundTrip("42"), "42");
  EXPECT_EQ(roundTrip("#t"), "#t");
  EXPECT_EQ(roundTrip("\"hi\""), "\"hi\"");
  EXPECT_EQ(roundTrip("'()"), "'()");
  EXPECT_EQ(roundTrip("'foo"), "'foo");
  EXPECT_EQ(roundTrip("(void)"), "(void)");
}

TEST(Parser, LambdaAndApplication) {
  EXPECT_EQ(roundTrip("((lambda (x) x) 1)"), "((lambda (x) x) 1)");
}

TEST(Parser, PrimitiveApplication) {
  Parsed R = parseOk("(+ 1 2)");
  const Expr &E = R.Prog->expr(lastTopExpr(*R.Prog));
  EXPECT_EQ(E.K, ExprKind::PrimApp);
  EXPECT_EQ(E.PrimOp, Prim::Add);
}

TEST(Parser, PrimitiveEtaExpansion) {
  // car in argument position becomes (lambda (x) (car x)).
  Parsed R = parseOk("((lambda (f) (f (cons 1 2))) car)");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, ShadowingPrimitiveName) {
  // A lambda-bound `car` shadows the primitive.
  Parsed R = parseOk("((lambda (car) (car 5)) (lambda (x) x))");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, LetAndBody) {
  EXPECT_EQ(roundTrip("(let ([x 1] [y 2]) (+ x y))"),
            "(let ([x 1] [y 2]) (+ x y))");
}

TEST(Parser, LetStarDesugarsToNestedLets) {
  EXPECT_EQ(roundTrip("(let* ([x 1] [y x]) y)"),
            "(let ([x 1]) (let ([y x]) y))");
}

TEST(Parser, NamedLetDesugarsToLetrec) {
  std::string S = roundTrip("(let loop ([i 0]) (if (< i 3) (loop (+ i 1)) i))");
  EXPECT_NE(S.find("letrec"), std::string::npos) << S;
  EXPECT_NE(S.find("(loop 0)"), std::string::npos) << S;
}

TEST(Parser, CondDesugarsToIf) {
  EXPECT_EQ(roundTrip("(cond [(< 1 2) 'a] [else 'b])"),
            "(if (< 1 2) 'a 'b)");
}

TEST(Parser, AndOrDesugar) {
  EXPECT_EQ(roundTrip("(and 1 2)"), "(if 1 2 #f)");
  std::string S = roundTrip("(or 1 2)");
  EXPECT_NE(S.find("(let ([or%"), std::string::npos) << S;
}

TEST(Parser, WhenUnless) {
  EXPECT_EQ(roundTrip("(when #t 1)"), "(if #t 1 (void))");
  EXPECT_EQ(roundTrip("(unless #t 1)"), "(if #t (void) 1)");
}

TEST(Parser, QuotedListBecomesConses) {
  EXPECT_EQ(roundTrip("'(1 2)"), "(cons 1 (cons 2 '()))");
}

TEST(Parser, DefineFunctionSugar) {
  Parsed R = parseOk("(define (f x y) (+ x y)) (f 1 2)");
  const Component &C = R.Prog->Components[0];
  ASSERT_EQ(C.Forms.size(), 2u);
  EXPECT_NE(C.Forms[0].DefVar, NoVar);
  EXPECT_EQ(R.Prog->expr(C.Forms[0].Body).K, ExprKind::Lambda);
}

TEST(Parser, TopLevelDefinesAreAssignable) {
  Parsed R = parseOk("(define x 1) (set! x 2) x");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, SetOfImmutableVariableFails) {
  Parsed R = parse("(let ([x 1]) (set! x 2))");
  EXPECT_FALSE(R.Ok);
}

TEST(Parser, SetOfUnboundFails) {
  EXPECT_FALSE(parse("(set! nope 1)").Ok);
}

TEST(Parser, UnboundVariableFails) { EXPECT_FALSE(parse("nope").Ok); }

TEST(Parser, DuplicateTopLevelDefineFails) {
  EXPECT_FALSE(parse("(define x 1) (define x 2)").Ok);
}

TEST(Parser, KeywordCannotBeBound) {
  EXPECT_FALSE(parse("(lambda (if) if)").Ok);
  EXPECT_FALSE(parse("(define if 1)").Ok);
}

TEST(Parser, DefineOnlyAtTopLevel) {
  EXPECT_FALSE(parse("(let ([x 1]) (define y 2) y)").Ok);
}

TEST(Parser, ForwardReferenceAcrossDefines) {
  // Top-level defines share one letrec scope.
  EXPECT_TRUE(parse("(define (f) (g)) (define (g) 1)").Ok);
}

TEST(Parser, CrossComponentReference) {
  Parsed R = parseFiles({{"a.ss", "(define (f x) (+ x 1))"},
                         {"b.ss", "(f 41)"}});
  EXPECT_TRUE(R.Ok) << R.Diags.str();
  EXPECT_EQ(R.Prog->Components.size(), 2u);
}

TEST(Parser, CallccForms) {
  Parsed R = parseOk("(call/cc (lambda (k) (k 1)))");
  EXPECT_EQ(R.Prog->expr(lastTopExpr(*R.Prog)).K, ExprKind::Callcc);
}

TEST(Parser, UnitForm) {
  Parsed R = parseOk("(unit (import in) (export out)"
                     " (define out (lambda (x) x)) (void))");
  const Expr &E = R.Prog->expr(lastTopExpr(*R.Prog));
  ASSERT_EQ(E.K, ExprKind::Unit);
  EXPECT_EQ(E.Bindings.size(), 1u);
  EXPECT_EQ(R.Prog->var(E.Params[0]).Name, R.Prog->Syms.lookup("in"));
}

TEST(Parser, UnitExportMustBeBound) {
  EXPECT_FALSE(parse("(unit (import in) (export nope) (void))").Ok);
}

TEST(Parser, LinkInvokeForms) {
  Parsed R = parseOk("(define z 1)"
                     "(invoke (link (unit (import a) (export a) (void))"
                     "              (unit (import b) (export b) (void))) z)");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, ClassForms) {
  Parsed R = parseOk("(let ([c (class object% () [x 1] [y (+ x 1)])])"
                     "  (ivar (make-obj c) y))");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, ClassInheritedIvarsInScope) {
  Parsed R = parseOk("(let* ([c1 (class object% () [x 1])]"
                     "       [c2 (class c1 (x) [y (+ x 1)])])"
                     "  (ivar (make-obj c2) y))");
  EXPECT_TRUE(R.Ok);
}

TEST(Parser, SetIvarForm) {
  Parsed R = parseOk("(define o (make-obj (class object% () [x 1])))"
                     "(set-ivar! o x 5)");
  EXPECT_EQ(R.Prog->expr(lastTopExpr(*R.Prog)).K, ExprKind::IvarSet);
}

TEST(Parser, WrongPrimArityIsError) {
  EXPECT_FALSE(parse("(car)").Ok);
  EXPECT_FALSE(parse("(cons 1)").Ok);
  EXPECT_FALSE(parse("(vector-ref (vector 1) 0 2)").Ok);
}

TEST(Parser, EmptyApplicationIsError) { EXPECT_FALSE(parse("()").Ok); }

TEST(Parser, BeginSequence) {
  EXPECT_EQ(roundTrip("(begin 1 2 3)"), "(begin 1 2 3)");
}

TEST(Parser, LocationsSurviveParsing) {
  Parsed R = parseOk("(define x\n  (cons 1\n        2))");
  const Expr &Init = R.Prog->expr(R.Prog->Components[0].Forms[0].Body);
  EXPECT_EQ(Init.Loc.Line, 2u);
}
