//===-- tests/support_test.cpp - Symbol table and reader tests -*- C++ -*-===//

#include "support/sexpr.h"
#include "support/symbol.h"

#include <gtest/gtest.h>

using namespace spidey;

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable T;
  Symbol A = T.intern("foo");
  Symbol B = T.intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(T.name(A), "foo");
}

TEST(SymbolTable, DistinctNamesDistinctSymbols) {
  SymbolTable T;
  EXPECT_NE(T.intern("foo"), T.intern("bar"));
}

TEST(SymbolTable, LookupMissingIsInvalid) {
  SymbolTable T;
  EXPECT_EQ(T.lookup("nope"), InvalidSymbol);
  T.intern("yep");
  EXPECT_NE(T.lookup("yep"), InvalidSymbol);
}

TEST(SymbolTable, FreshAvoidsCollisions) {
  SymbolTable T;
  T.intern("g%0");
  Symbol F = T.fresh("g");
  EXPECT_NE(T.name(F), "g%0");
}

TEST(SymbolTable, SurvivesManyInterns) {
  SymbolTable T;
  std::vector<Symbol> Syms;
  for (int I = 0; I < 10000; ++I)
    Syms.push_back(T.intern("sym" + std::to_string(I)));
  for (int I = 0; I < 10000; ++I) {
    EXPECT_EQ(T.name(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(T.intern("sym" + std::to_string(I)), Syms[I]);
  }
}

namespace {

std::vector<SExpr> readOk(const std::string &Text, SymbolTable &Syms) {
  DiagnosticEngine Diags;
  auto Forms = readSExprs(Text, 0, Syms, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Forms;
}

bool readFails(const std::string &Text) {
  SymbolTable Syms;
  DiagnosticEngine Diags;
  readSExprs(Text, 0, Syms, Diags);
  return Diags.hasErrors();
}

} // namespace

TEST(SExprReader, ReadsAtoms) {
  SymbolTable Syms;
  auto Forms = readOk("foo 42 -3.5 #t #f \"hi\" #\\a", Syms);
  ASSERT_EQ(Forms.size(), 7u);
  EXPECT_EQ(Forms[0].K, SExpr::Kind::Symbol);
  EXPECT_EQ(Forms[1].Num, 42);
  EXPECT_EQ(Forms[2].Num, -3.5);
  EXPECT_TRUE(Forms[3].Bool);
  EXPECT_FALSE(Forms[4].Bool);
  EXPECT_EQ(Forms[5].Str, "hi");
  EXPECT_EQ(Forms[6].Ch, 'a');
}

TEST(SExprReader, ReadsNestedLists) {
  SymbolTable Syms;
  auto Forms = readOk("(a (b c) [d (e)])", Syms);
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].str(Syms), "(a (b c) (d (e)))");
}

TEST(SExprReader, QuoteSugar) {
  SymbolTable Syms;
  auto Forms = readOk("'(1 x)", Syms);
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].str(Syms), "(quote (1 x))");
}

TEST(SExprReader, CommentsAreSkipped) {
  SymbolTable Syms;
  auto Forms = readOk("; leading\n(a ; inline\n b)\n; trailing", Syms);
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].str(Syms), "(a b)");
}

TEST(SExprReader, NamedCharacters) {
  SymbolTable Syms;
  auto Forms = readOk("#\\space #\\newline #\\tab", Syms);
  ASSERT_EQ(Forms.size(), 3u);
  EXPECT_EQ(Forms[0].Ch, ' ');
  EXPECT_EQ(Forms[1].Ch, '\n');
  EXPECT_EQ(Forms[2].Ch, '\t');
}

TEST(SExprReader, StringEscapes) {
  SymbolTable Syms;
  auto Forms = readOk("\"a\\nb\\\"c\\\\d\"", Syms);
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].Str, "a\nb\"c\\d");
}

TEST(SExprReader, SymbolsWithSigns) {
  SymbolTable Syms;
  auto Forms = readOk("- + -x +y ->foo", Syms);
  ASSERT_EQ(Forms.size(), 5u);
  for (const SExpr &F : Forms)
    EXPECT_EQ(F.K, SExpr::Kind::Symbol);
}

TEST(SExprReader, TracksLocations) {
  SymbolTable Syms;
  auto Forms = readOk("(a\n  b)", Syms);
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].Loc.Line, 1u);
  EXPECT_EQ(Forms[0].Elems[1].Loc.Line, 2u);
  EXPECT_EQ(Forms[0].Elems[1].Loc.Col, 3u);
}

TEST(SExprReader, ErrorOnUnterminatedList) { EXPECT_TRUE(readFails("(a b")); }
TEST(SExprReader, ErrorOnStrayClose) { EXPECT_TRUE(readFails(")")); }
TEST(SExprReader, ErrorOnMismatchedClose) { EXPECT_TRUE(readFails("(a]")); }
TEST(SExprReader, ErrorOnUnterminatedString) {
  EXPECT_TRUE(readFails("\"abc"));
}
TEST(SExprReader, ErrorOnBadHash) { EXPECT_TRUE(readFails("#q")); }
