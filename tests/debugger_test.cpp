//===-- tests/debugger_test.cpp - Checks, flow browser, markup -*- C++ -*-===//

#include "debugger/checks.h"
#include "debugger/flow.h"
#include "debugger/markup.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

struct Debugged {
  Parsed P;
  Analysis A;
  DebugReport Report;
};

Debugged debug(const std::string &Source) {
  Debugged D{parseOk(Source), {}, {}};
  D.A = analyzeProgram(*D.P.Prog);
  D.Report = runChecks(*D.P.Prog, D.A.Maps, *D.A.System);
  return D;
}

size_t unsafeOf(const Debugged &D, const std::string &What) {
  size_t N = 0;
  for (const CheckResult &R : D.Report.Results)
    if (!R.Safe && R.What == What)
      ++N;
  return N;
}

} // namespace

TEST(Checks, SumSsHasExactlyOneUnsafeCar) {
  // The running example (fig. 1.1): car is unsafe, everything else safe.
  Debugged D = debug("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  EXPECT_EQ(unsafeOf(D, "car"), 1u);
  // With predicate narrowing (the default, matching MrSpidey's primitive
  // filters) the then-branch sees tree:num, so + is provably safe, as in
  // fig. 1.1. cdr still sees the erroneous nil (the paper's figure calls
  // cdr safe only via an informal "car validates tree" argument the
  // analysis does not make).
  EXPECT_EQ(unsafeOf(D, "cdr"), 1u);
  EXPECT_EQ(unsafeOf(D, "+"), 0u);
  EXPECT_EQ(unsafeOf(D, "application"), 0u);
}

TEST(Checks, SumSsWithoutIfSplitting) {
  // The formal system of ch. 2 (no narrowing): + is flagged too, since
  // nil/pair flow into the then-branch's tree.
  Parsed P = parseOk("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  AnalysisOptions Opts;
  Opts.IfSplitting = false;
  Analysis A = analyzeProgram(*P.Prog, Opts);
  DebugReport Rep = runChecks(*P.Prog, A.Maps, *A.System);
  size_t PlusUnsafe = 0;
  for (const CheckResult &R : Rep.Results)
    if (!R.Safe && R.What == "+")
      ++PlusUnsafe;
  EXPECT_EQ(PlusUnsafe, 1u);
}

TEST(Checks, CleanProgramHasZeroChecks) {
  Debugged D = debug("(define (len l)"
                     "  (if (pair? l) (+ 1 (len (cdr l))) 0))"
                     "(define r (len (list 1 2 3)))");
  // cdr is guarded structurally: l is always a list... the analysis can't
  // prove that (no if-splitting), so allow cdr; but + and application are
  // safe.
  EXPECT_EQ(unsafeOf(D, "application"), 0u);
  EXPECT_EQ(unsafeOf(D, "+"), 0u);
}

TEST(Checks, AllSafeSummary) {
  Debugged D = debug("(define x (+ 1 2)) (define y (car (cons x 1)))");
  EXPECT_EQ(D.Report.numUnsafe(), 0u);
  std::string Summary = D.Report.summary(*D.P.Prog);
  EXPECT_NE(Summary.find("TOTAL CHECKS: 0"), std::string::npos) << Summary;
}

TEST(Checks, ArityMismatchFlagged) {
  Debugged D = debug("(define (f x y) x) (f 1)");
  EXPECT_EQ(unsafeOf(D, "application"), 1u);
}

TEST(Checks, ApplyNonFunctionFlagged) {
  Debugged D = debug("(define g 5) (g 1)");
  EXPECT_EQ(unsafeOf(D, "application"), 1u);
}

TEST(Checks, EofFromReadLineFlagged) {
  // The web-server scenario (§8.1): read-line may return eof, which is an
  // inappropriate argument for string-length.
  Debugged D = debug("(string-length (read-line))");
  EXPECT_EQ(unsafeOf(D, "string-length"), 1u);
  // After the paper's fix — testing for eof and substituting — the check
  // count drops to zero for the kind-level analysis when the branch
  // provides a string.
  Debugged Fixed = debug("(define line (read-line))"
                         "(define safe (if (eof-object? line) \"\" \"x\"))"
                         "(string-length safe)");
  EXPECT_EQ(Fixed.Report.numUnsafe(), 0u);
}

TEST(Checks, UnitArityStyleWarnings) {
  Debugged D = debug("(define z 1) (invoke 42 z)");
  EXPECT_EQ(unsafeOf(D, "invoke"), 1u);
}

TEST(Checks, ClassOperationsChecked) {
  Debugged D = debug("(make-obj 5)");
  EXPECT_EQ(unsafeOf(D, "make-obj"), 1u);
  Debugged D2 = debug("(ivar (make-obj (class object% () [x 1])) x)");
  EXPECT_EQ(D2.Report.numUnsafe(), 0u);
}

TEST(Checks, OffendingConstantsExplain) {
  Debugged D = debug("(car 5)");
  ASSERT_EQ(D.Report.Results.size(), 1u);
  const CheckResult &R = D.Report.Results[0];
  EXPECT_FALSE(R.Safe);
  ASSERT_EQ(R.Offending.size(), 1u);
  EXPECT_EQ(D.A.Ctx->Constants.kind(R.Offending[0]), ConstKind::Num);
  EXPECT_NE(R.Reason.find("num"), std::string::npos);
}

TEST(Checks, PerFileSummaryCoversComponents) {
  Parsed R = parseFiles({{"safe.ss", "(define a (+ 1 2))"},
                         {"buggy.ss", "(define b (car 5))"}});
  ASSERT_TRUE(R.Ok);
  Analysis A = analyzeProgram(*R.Prog);
  DebugReport Rep = runChecks(*R.Prog, A.Maps, *A.System);
  std::string Text = Rep.perFileSummary(*R.Prog);
  EXPECT_NE(Text.find("safe.ss"), std::string::npos);
  EXPECT_NE(Text.find("buggy.ss"), std::string::npos);
  EXPECT_NE(Text.find("CHECKS: 0"), std::string::npos);
  EXPECT_NE(Text.find("CHECKS: 1"), std::string::npos);
}

TEST(Flow, ParentsExplainDirectSources) {
  Debugged D = debug("(define x 1) (define y x)");
  FlowGraph FG(*D.A.System);
  // y's variable has the reference expression as a parent chain back to
  // x's variable.
  Symbol YSym = D.P.Prog->Syms.intern("y");
  Symbol XSym = D.P.Prog->Syms.intern("x");
  SetVar YVar = NoSetVar, XVar = NoSetVar;
  for (VarId V = 0; V < D.P.Prog->numVars(); ++V) {
    if (D.P.Prog->var(V).Name == YSym)
      YVar = D.A.Maps.varVar(V);
    if (D.P.Prog->var(V).Name == XSym)
      XVar = D.A.Maps.varVar(V);
  }
  ASSERT_NE(YVar, NoSetVar);
  auto Anc = FG.ancestors(YVar);
  EXPECT_NE(std::find(Anc.begin(), Anc.end(), XVar), Anc.end());
}

TEST(Flow, PathToSourceFindsNilOrigin) {
  // The fig. 5.7 interaction: where does nil in tree's invariant come
  // from? The path must start at the '() literal.
  Debugged D = debug("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  const Expr &Sum = D.P.Prog->expr(D.P.Prog->Components[0].Forms[0].Body);
  SetVar Tree = D.A.Maps.varVar(Sum.Params[0]);
  Constant Nil = D.A.Ctx->Constants.basic(ConstKind::Nil);
  FlowGraph FG(*D.A.System);
  auto Path = FG.pathToSource(Tree, Nil);
  ASSERT_TRUE(Path.has_value());
  ASSERT_GE(Path->size(), 2u);
  // The path's head introduces nil; it is the '() literal's label.
  SiteIndex Index(*D.P.Prog, D.A.Maps);
  auto Head = Index.exprOf(Path->front());
  ASSERT_TRUE(Head.has_value());
  EXPECT_EQ(D.P.Prog->expr(*Head).K, ExprKind::Nil);
  EXPECT_EQ(Path->back(), Tree);
}

TEST(Flow, FilterExcludesOtherConstants) {
  Debugged D = debug("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  const Expr &Sum = D.P.Prog->expr(D.P.Prog->Components[0].Forms[0].Body);
  SetVar Tree = D.A.Maps.varVar(Sum.Params[0]);
  FlowGraph FG(*D.A.System);
  Constant Nil = D.A.Ctx->Constants.basic(ConstKind::Nil);
  Constant Str = D.A.Ctx->Constants.basic(ConstKind::Str);
  EXPECT_FALSE(FG.ancestorEdgesCarrying(Tree, Nil).empty());
  EXPECT_TRUE(FG.ancestorEdgesCarrying(Tree, Str).empty());
  EXPECT_FALSE(FG.pathToSource(Tree, Str).has_value());
}

TEST(Flow, ChildrenAndDescendants) {
  Debugged D = debug("(define x 1) (define y x) (define z y)");
  FlowGraph FG(*D.A.System);
  Symbol XSym = D.P.Prog->Syms.intern("x");
  SetVar XVar = NoSetVar;
  for (VarId V = 0; V < D.P.Prog->numVars(); ++V)
    if (D.P.Prog->var(V).Name == XSym)
      XVar = D.A.Maps.varVar(V);
  EXPECT_FALSE(FG.children(XVar).empty());
  EXPECT_GE(FG.descendants(XVar).size(), FG.children(XVar).size());
}

TEST(Markup, UnderlinesUnsafeOperations) {
  Parsed R = parseOk("(define x\n  (car 5))\n");
  Analysis A = analyzeProgram(*R.Prog);
  DebugReport Rep = runChecks(*R.Prog, A.Maps, *A.System);
  std::string Text = annotateComponent(*R.Prog, 0, Rep);
  EXPECT_NE(Text.find("(car 5)"), std::string::npos);
  EXPECT_NE(Text.find("~~~"), std::string::npos) << Text;
  EXPECT_NE(Text.find("TOTAL CHECKS: 1"), std::string::npos);
}

TEST(Markup, SiteIndexDescribes) {
  Debugged D = debug("(define counter 41)");
  SiteIndex Index(*D.P.Prog, D.A.Maps);
  Symbol Sym = D.P.Prog->Syms.intern("counter");
  for (VarId V = 0; V < D.P.Prog->numVars(); ++V)
    if (D.P.Prog->var(V).Name == Sym) {
      std::string Desc = Index.describe(D.A.Maps.varVar(V));
      EXPECT_NE(Desc.find("counter"), std::string::npos);
    }
}
