//===-- tests/fuzz_test.cpp - Fuzzing subsystem tests ----------*- C++ -*-===//
///
/// The fuzzer itself is tested here: generator determinism and
/// parseability, seed derivation, the metamorphic oracles on a fixed
/// sweep, the delta-debugging shrinker, and the reproducer format.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/shrink.h"
#include "test_util.h"

#include <set>

using namespace spidey;
using namespace spidey::test;

namespace {

std::string flatten(const std::vector<SourceFile> &Files) {
  std::string Out;
  for (const SourceFile &F : Files)
    Out += ";;; " + F.Name + "\n" + F.Text;
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===
// Generators are deterministic: byte-identical output for a fixed seed.
//===----------------------------------------------------------------------===

TEST(FuzzGen, FuzzGeneratorIsDeterministic) {
  for (unsigned Seed : {1u, 42u, 885382510u}) {
    FuzzGenConfig Cfg;
    Cfg.Seed = Seed;
    EXPECT_EQ(flatten(generateFuzzProgram(Cfg)),
              flatten(generateFuzzProgram(Cfg)))
        << "seed " << Seed;
  }
}

TEST(FuzzGen, CorpusGeneratorIsDeterministic) {
  GeneratorConfig Cfg = benchmarkConfig("scanner");
  EXPECT_EQ(flatten(generateProgram(Cfg)), flatten(generateProgram(Cfg)));
  GeneratorConfig Small;
  Small.Seed = 7;
  Small.NumComponents = 2;
  Small.TargetLines = 80;
  EXPECT_EQ(flatten(generateProgram(Small)), flatten(generateProgram(Small)));
}

TEST(FuzzGen, GeneratedProgramsParse) {
  for (unsigned Seed = 1; Seed <= 60; ++Seed) {
    FuzzGenConfig Cfg;
    Cfg.Seed = Seed;
    std::vector<SourceFile> Files = generateFuzzProgram(Cfg);
    ASSERT_FALSE(Files.empty());
    Parsed R = parseFiles(Files);
    EXPECT_TRUE(R.Ok) << "seed " << Seed << "\n"
                      << R.Diags.str() << "\n"
                      << flatten(Files);
  }
}

TEST(FuzzGen, SeedDerivationDecorrelates) {
  // Per-iteration seeds are distinct within a run and across base seeds.
  std::set<unsigned> Seen;
  for (unsigned Base : {1u, 2u, 42u})
    for (uint64_t I = 0; I < 100; ++I)
      Seen.insert(fuzzSeedFor(Base, I));
  EXPECT_EQ(Seen.size(), 300u);
  // And stable: the same (base, iteration) always derives the same seed.
  EXPECT_EQ(fuzzSeedFor(42, 3), fuzzSeedFor(42, 3));
}

//===----------------------------------------------------------------------===
// Oracles: a fixed sweep must be violation-free, and each oracle must
// actually run.
//===----------------------------------------------------------------------===

TEST(FuzzOracles, FixedSweepIsViolationFree) {
  FuzzOptions Opts;
  Opts.Iters = 25;
  Opts.Seed = 42;
  FuzzSummary Summary = runFuzz(Opts);
  EXPECT_EQ(Summary.Iterations, 25u);
  for (unsigned I = 0; I < NumOracles; ++I)
    EXPECT_EQ(Summary.OracleRuns[I], 25u)
        << oracleName(static_cast<Oracle>(I));
  for (const FuzzViolation &V : Summary.Violations)
    ADD_FAILURE() << "[" << V.OracleName << "] seed " << V.ProgramSeed
                  << ": " << V.Message << "\n"
                  << formatReproducer(V);
}

TEST(FuzzOracles, OracleMaskSelectsSubset) {
  FuzzOptions Opts;
  Opts.Iters = 3;
  Opts.Seed = 1;
  Opts.OracleMask = 1u << static_cast<unsigned>(Oracle::Threads);
  FuzzSummary Summary = runFuzz(Opts);
  EXPECT_EQ(Summary.OracleRuns[static_cast<unsigned>(Oracle::Threads)], 3u);
  EXPECT_EQ(Summary.OracleRuns[static_cast<unsigned>(Oracle::Soundness)], 0u);
}

TEST(FuzzOracles, NamesRoundTrip) {
  for (unsigned I = 0; I < NumOracles; ++I) {
    Oracle O = static_cast<Oracle>(I), Back;
    ASSERT_TRUE(oracleFromName(oracleName(O), Back));
    EXPECT_EQ(O, Back);
  }
  Oracle Unused;
  EXPECT_FALSE(oracleFromName("nonsense", Unused));
}

TEST(FuzzOracles, UnparsableProgramIsReportedNotCrashed) {
  OracleVerdict V = checkOracle(Oracle::Soundness, {{"x.ss", "((("}},
                                OracleOptions{});
  EXPECT_FALSE(V.Parsed);
  EXPECT_FALSE(V.Message.empty());
}

//===----------------------------------------------------------------------===
// Shrinker.
//===----------------------------------------------------------------------===

TEST(FuzzShrink, RemovesIrrelevantFilesAndForms) {
  std::vector<SourceFile> Program = {
      {"a.ss", "(define pad1 1)\n(define pad2 (cons 1 2))\n"},
      {"b.ss", "(define needle (vector 1 2))\n(define pad3 'x)\n"},
      {"c.ss", "(define pad4 \"zzz\")\n"},
  };
  auto HasNeedle = [](const std::vector<SourceFile> &Files) {
    for (const SourceFile &F : Files)
      if (F.Text.find("needle") != std::string::npos)
        return true;
    return false;
  };
  std::vector<SourceFile> Min = shrinkProgram(Program, HasNeedle);
  ASSERT_TRUE(HasNeedle(Min)) << "shrinker lost the failure";
  EXPECT_EQ(Min.size(), 1u) << "irrelevant files not dropped";
  EXPECT_EQ(Min[0].Text.find("pad"), std::string::npos)
      << "irrelevant forms not dropped:\n"
      << Min[0].Text;
}

TEST(FuzzShrink, ReducesInsideForms) {
  std::vector<SourceFile> Program = {
      {"a.ss",
       "(define d (cons (car (cons 1 2)) (if #t (vector 1 2) 'pad)))\n"}};
  auto HasVector = [](const std::vector<SourceFile> &Files) {
    return !Files.empty() &&
           Files[0].Text.find("vector") != std::string::npos;
  };
  std::vector<SourceFile> Min = shrinkProgram(Program, HasVector);
  ASSERT_TRUE(HasVector(Min));
  EXPECT_LT(Min[0].Text.size(), Program[0].Text.size());
  // The minimized program must still parse standalone.
  EXPECT_TRUE(parseFiles(Min).Ok) << Min[0].Text;
}

TEST(FuzzShrink, MinimizedProgramsStillParse) {
  // Shrinking a real generated program under a trivial predicate keeps
  // every intermediate candidate parseable (the shrinker's renderer must
  // round-trip strings and characters).
  FuzzGenConfig Cfg;
  Cfg.Seed = 99;
  std::vector<SourceFile> Program = generateFuzzProgram(Cfg);
  auto Parses = [](const std::vector<SourceFile> &Files) {
    Parsed R = parseFiles(Files);
    return R.Ok;
  };
  std::vector<SourceFile> Min = shrinkProgram(Program, Parses);
  EXPECT_TRUE(Parses(Min));
}

//===----------------------------------------------------------------------===
// Reproducer format.
//===----------------------------------------------------------------------===

TEST(FuzzRepro, FormatRoundTrips) {
  FuzzViolation V;
  V.ProgramSeed = 77;
  V.OracleName = "threads";
  V.Minimized = {{"one.ss", "(define a 1)\n"},
                 {"two.ss", "(define b (cons a a))\n(car b)\n"}};
  std::string Text = formatReproducer(V);
  std::string OracleOut;
  std::vector<SourceFile> Back = parseReproducer(Text, OracleOut);
  EXPECT_EQ(OracleOut, "threads");
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0].Name, "one.ss");
  EXPECT_EQ(Back[0].Text, V.Minimized[0].Text);
  EXPECT_EQ(Back[1].Name, "two.ss");
  EXPECT_EQ(Back[1].Text, V.Minimized[1].Text);
}

TEST(FuzzRepro, PlainProgramIsOneFile) {
  std::string OracleOut = "unset";
  std::vector<SourceFile> Files =
      parseReproducer("(define x 1)\n(car x)\n", OracleOut);
  EXPECT_EQ(OracleOut, "unset"); // no directive present
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0].Text, "(define x 1)\n(car x)\n");
}
