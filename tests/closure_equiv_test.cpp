//===-- tests/closure_equiv_test.cpp - Engine vs. reference ----*- C++ -*-===//
///
/// Property test for the incremental closure engine: the least solution it
/// computes (constantsOf for every variable) must be identical to the one
/// the naive sweep-to-fixpoint ReferenceClosure computes, on
///
///  - randomly generated raw constraint systems (closing adders and the
///    raw-adds+close() path both), and
///  - systems derived from fuzz-generated and corpus-generated programs.
///
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"
#include "constraints/reference_closure.h"
#include "corpus/corpus.h"
#include "fuzz/fuzzgen.h"
#include "test_util.h"

#include <random>
#include <sstream>

using namespace spidey;
using namespace spidey::test;

namespace {

/// One random constraint, chosen over a fixed small var/selector/constant
/// universe.
struct RandomConstraint {
  enum class Kind : uint8_t { ConstLB, SelLB, VarUB, SelUB, FilterUB };
  Kind K;
  SetVar A, B;
  Constant C;
  Selector S;
  KindMask M;
};

std::vector<RandomConstraint> randomConstraints(ConstraintContext &Ctx,
                                                unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](uint32_t N) { return Rng() % N; };

  uint32_t NumVars = 4 + Pick(9);
  std::vector<SetVar> Vars;
  for (uint32_t I = 0; I < NumVars; ++I)
    Vars.push_back(Ctx.freshVar());

  // A polarity-mixed selector palette and a kind-diverse constant palette.
  std::vector<Selector> Sels = {Ctx.Car,      Ctx.Cdr, Ctx.Rng,
                                Ctx.BoxPlus,  Ctx.BoxMinus,
                                Ctx.VecMinus, Ctx.dom(0), Ctx.dom(1)};
  std::vector<Constant> Consts = {
      Ctx.Constants.basic(ConstKind::Num),
      Ctx.Constants.basic(ConstKind::Nil),
      Ctx.Constants.basic(ConstKind::True),
      Ctx.Constants.basic(ConstKind::Pair),
      Ctx.Constants.makeTag(ConstKind::FnTag, 1, SourceLoc{}),
      Ctx.Constants.makeTag(ConstKind::BoxTag, 0, SourceLoc{}),
  };
  std::vector<KindMask> Masks = {
      AnyKindMask,
      kindBit(ConstKind::Pair),
      kindBit(ConstKind::Num) | kindBit(ConstKind::True),
      kindBit(ConstKind::FnTag) | kindBit(ConstKind::BoxTag),
  };

  uint32_t NumCs = 15 + Pick(46);
  std::vector<RandomConstraint> Out;
  for (uint32_t I = 0; I < NumCs; ++I) {
    RandomConstraint C;
    C.K = static_cast<RandomConstraint::Kind>(Pick(5));
    C.A = Vars[Pick(NumVars)];
    C.B = Vars[Pick(NumVars)];
    C.C = Consts[Pick(static_cast<uint32_t>(Consts.size()))];
    C.S = Sels[Pick(static_cast<uint32_t>(Sels.size()))];
    C.M = Masks[Pick(static_cast<uint32_t>(Masks.size()))];
    Out.push_back(C);
  }
  return Out;
}

void feedEngine(ConstraintSystem &S, const std::vector<RandomConstraint> &Cs,
                bool Raw) {
  for (const RandomConstraint &C : Cs) {
    switch (C.K) {
    case RandomConstraint::Kind::ConstLB:
      Raw ? S.addConstLowerRaw(C.A, C.C) : S.addConstLower(C.A, C.C);
      break;
    case RandomConstraint::Kind::SelLB:
      Raw ? S.addSelLowerRaw(C.A, C.S, C.B) : S.addSelLower(C.A, C.S, C.B);
      break;
    case RandomConstraint::Kind::VarUB:
      Raw ? S.addVarUpperRaw(C.A, C.B) : S.addVarUpper(C.A, C.B);
      break;
    case RandomConstraint::Kind::SelUB:
      Raw ? S.addSelUpperRaw(C.A, C.S, C.B) : S.addSelUpper(C.A, C.S, C.B);
      break;
    case RandomConstraint::Kind::FilterUB:
      Raw ? S.addFilterUpperRaw(C.A, C.M, C.B) : S.addFilterUpper(C.A, C.M, C.B);
      break;
    }
  }
  if (Raw)
    S.close();
}

void feedReference(ReferenceClosure &R,
                   const std::vector<RandomConstraint> &Cs) {
  for (const RandomConstraint &C : Cs) {
    switch (C.K) {
    case RandomConstraint::Kind::ConstLB:
      R.addConstLower(C.A, C.C);
      break;
    case RandomConstraint::Kind::SelLB:
      R.addSelLower(C.A, C.S, C.B);
      break;
    case RandomConstraint::Kind::VarUB:
      R.addVarUpper(C.A, C.B);
      break;
    case RandomConstraint::Kind::SelUB:
      R.addSelUpper(C.A, C.S, C.B);
      break;
    case RandomConstraint::Kind::FilterUB:
      R.addFilterUpper(C.A, C.M, C.B);
      break;
    }
  }
  R.close();
}

/// Asserts that engine and reference agree on constantsOf for every
/// variable either side mentions.
void expectSameSolution(const ConstraintSystem &S, const ReferenceClosure &R,
                        const char *What, unsigned Seed) {
  std::vector<SetVar> Vars = S.variables();
  for (SetVar V : R.variables())
    Vars.push_back(V);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  for (SetVar V : Vars)
    EXPECT_EQ(S.constantsOf(V), R.constantsOf(V))
        << What << " seed " << Seed << ": least solutions differ at v" << V;
}

} // namespace

//===----------------------------------------------------------------------===
// Random raw systems, via the closing adders (online path).
//===----------------------------------------------------------------------===

TEST(ClosureEquiv, RandomSystemsOnline) {
  for (unsigned Seed = 1; Seed <= 25; ++Seed) {
    ConstraintContext Ctx;
    std::vector<RandomConstraint> Cs = randomConstraints(Ctx, Seed);
    ConstraintSystem S(Ctx);
    feedEngine(S, Cs, /*Raw=*/false);
    ReferenceClosure R(Ctx);
    feedReference(R, Cs);
    expectSameSolution(S, R, "online", Seed);
  }
}

//===----------------------------------------------------------------------===
// The same systems via raw adds + close() (offline Tarjan path).
//===----------------------------------------------------------------------===

TEST(ClosureEquiv, RandomSystemsOffline) {
  for (unsigned Seed = 1; Seed <= 25; ++Seed) {
    ConstraintContext Ctx;
    std::vector<RandomConstraint> Cs = randomConstraints(Ctx, Seed);
    ConstraintSystem S(Ctx);
    feedEngine(S, Cs, /*Raw=*/true);
    ReferenceClosure R(Ctx);
    feedReference(R, Cs);
    expectSameSolution(S, R, "offline", Seed);
  }
}

//===----------------------------------------------------------------------===
// Online and offline closure of the same raw system must agree with each
// other, too (the engine against itself). Bound lists keep insertion
// order, which legitimately differs between the two paths, so compare the
// closed systems as sets of rendered constraints.
//===----------------------------------------------------------------------===

namespace {
std::vector<std::string> sortedLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::istringstream In(S);
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}
} // namespace

TEST(ClosureEquiv, OnlineMatchesOffline) {
  for (unsigned Seed = 100; Seed <= 110; ++Seed) {
    ConstraintContext Ctx;
    std::vector<RandomConstraint> Cs = randomConstraints(Ctx, Seed);
    ConstraintSystem Online(Ctx), Offline(Ctx);
    feedEngine(Online, Cs, /*Raw=*/false);
    feedEngine(Offline, Cs, /*Raw=*/true);
    EXPECT_EQ(sortedLines(Online.str()), sortedLines(Offline.str()))
        << "seed " << Seed;
    EXPECT_EQ(Online.size(), Offline.size()) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===
// Derived systems: fuzz-generated programs.
//===----------------------------------------------------------------------===

TEST(ClosureEquiv, FuzzProgramSystems) {
  for (unsigned Seed = 1; Seed <= 8; ++Seed) {
    FuzzGenConfig Cfg;
    Cfg.Seed = Seed;
    Parsed P = parseFiles(generateFuzzProgram(Cfg));
    ASSERT_TRUE(P.Ok) << P.Diags.str();
    Analysis A = analyzeProgram(*P.Prog);
    ReferenceClosure R(*A.Ctx);
    R.absorb(*A.System);
    R.close();
    expectSameSolution(*A.System, R, "fuzz program", Seed);
  }
}

//===----------------------------------------------------------------------===
// Derived systems: a small corpus program.
//===----------------------------------------------------------------------===

TEST(ClosureEquiv, CorpusProgramSystem) {
  GeneratorConfig Cfg;
  Cfg.Seed = 7;
  Cfg.NumComponents = 2;
  Cfg.TargetLines = 80;
  Parsed P = parseFiles(generateProgram(Cfg));
  ASSERT_TRUE(P.Ok) << P.Diags.str();
  Analysis A = analyzeProgram(*P.Prog);
  ReferenceClosure R(*A.Ctx);
  R.absorb(*A.System);
  R.close();
  expectSameSolution(*A.System, R, "corpus program", Cfg.Seed);
}
