//===-- tests/multi_serve_test.cpp - Multi-tenant serve tests --*- C++ -*-===//
///
/// \file
/// The multi-tenant serve layer (DESIGN.md §13): SessionRegistry and
/// concurrent per-client ServeSessions over one shared content-addressed
/// constraint store.
///
/// The load-bearing properties, each pinned here and exercised under
/// TSan in CI:
///  - Isolation: every answer a concurrent client gets is byte-identical
///    to the same request sequence against a dedicated single-session
///    daemon.
///  - Cross-program reuse: two sessions analyzing different programs
///    that share a library file (at the same file slot) derive its
///    summary once — the second session's analyze reports the store hit,
///    attributed as a cross-session hit.
///  - The FaultInjector contract holds daemon-wide: a chaos spec armed
///    by any session injects into every session, and all of them keep
///    answering.
///
//===----------------------------------------------------------------------===//

#include "serve/registry.h"
#include "support/faultinject.h"
#include "test_util.h"

#include <string>
#include <thread>
#include <vector>

using namespace spidey;
using namespace spidey::test;

namespace {

struct FaultScope {
  FaultScope() { FaultInjector::instance().reset(); }
  ~FaultScope() { FaultInjector::instance().reset(); }
};

/// The shared library component. Every client program places it at file
/// slot 0 and references the same defines, so its serialized image —
/// a pure function of (source, options, externals, slot) — is identical
/// across programs and shared through the content-addressed store.
const SourceFile ListFile = {"list.ss",
                             "(define (first p) (car p))"
                             "(define (second p) (car (cdr p)))"};

/// Client programs: same library, different mains (each references both
/// library defines, keeping list.ss's external set identical).
std::vector<SourceFile> clientProgram(unsigned Client) {
  std::string Main = "(define data" + std::to_string(Client) + " (cons " +
                     std::to_string(Client + 1) + " (cons 'tag '())))";
  Main += "(define a (first data" + std::to_string(Client) + "))";
  Main += "(define b (second data" + std::to_string(Client) + "))";
  for (unsigned I = 0; I < Client; ++I)
    Main += "(define extra" + std::to_string(I) + " (cons a b))";
  return {ListFile, {"main.ss", Main}};
}

std::string req(const std::string &Line, ServeSession &S) {
  return S.handleLine(Line);
}

/// The request sequence every client drives, and the answers we compare:
/// flow, check-summary, and the combined text — the analysis results.
/// (analyze/stats responses legitimately differ between a shared and a
/// private store: the shared run reports the cross-session hits.)
std::vector<std::string> driveSession(ServeSession &S) {
  std::vector<std::string> Answers;
  EXPECT_NE(req(R"({"cmd":"analyze"})", S).find("\"ok\":true"),
            std::string::npos);
  Answers.push_back(req(R"({"cmd":"flow","name":"first"})", S));
  Answers.push_back(req(R"({"cmd":"flow","name":"a"})", S));
  Answers.push_back(req(R"({"cmd":"flow","name":"b"})", S));
  Answers.push_back(req(R"({"cmd":"check-summary"})", S));
  Answers.push_back(S.combinedText());
  EXPECT_FALSE(Answers.back().empty());
  return Answers;
}

} // namespace

TEST(MultiServe, ConcurrentClientsMatchIsolatedSessionsByteForByte) {
  constexpr unsigned Clients = 4;

  // Reference: each client's sequence against its own dedicated
  // single-session daemon (private store, session id 0).
  std::vector<std::vector<std::string>> Isolated(Clients);
  for (unsigned C = 0; C < Clients; ++C) {
    ServeSession Solo({});
    Solo.setFiles(clientProgram(C));
    Isolated[C] = driveSession(Solo);
  }

  // Multi-tenant: the same sequences, concurrently, over one registry.
  SessionRegistry Reg({}, {}, /*MaxSessions=*/Clients);
  std::vector<std::vector<std::string>> Shared(Clients);
  {
    std::vector<std::unique_ptr<ClientContext>> Handles;
    for (unsigned C = 0; C < Clients; ++C) {
      std::string Error;
      Handles.push_back(Reg.connect(Error));
      ASSERT_TRUE(Handles.back()) << Error;
      Handles.back()->session().setFiles(clientProgram(C));
    }
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        Shared[C] = driveSession(Handles[C]->session());
      });
    for (std::thread &T : Threads)
      T.join();
  }

  for (unsigned C = 0; C < Clients; ++C)
    EXPECT_EQ(Shared[C], Isolated[C]) << "client " << C;
  EXPECT_EQ(Reg.active(), 0u);
  EXPECT_EQ(Reg.opened(), Clients);
}

TEST(MultiServe, SharedComponentDerivedOnceAcrossSessions) {
  SessionRegistry Reg({}, {}, 0);
  std::string Error;
  std::unique_ptr<ClientContext> A = Reg.connect(Error);
  std::unique_ptr<ClientContext> B = Reg.connect(Error);
  ASSERT_TRUE(A && B) << Error;

  A->session().setFiles(clientProgram(0));
  std::string RespA = req(R"({"cmd":"analyze"})", A->session());
  EXPECT_NE(RespA.find("\"rederived\":2"), std::string::npos) << RespA;
  EXPECT_NE(RespA.find("\"store_cross_hits\":0"), std::string::npos) << RespA;

  // B analyzes a *different program* sharing list.ss at the same slot:
  // the library summary is served from A's derivation, so B rederives
  // only its own main and sees a cross-session store hit.
  B->session().setFiles(clientProgram(1));
  std::string RespB = req(R"({"cmd":"analyze"})", B->session());
  EXPECT_NE(RespB.find("\"rederived\":1"), std::string::npos) << RespB;
  EXPECT_NE(RespB.find("\"reused\":1"), std::string::npos) << RespB;
  EXPECT_NE(RespB.find("\"cache_hits\":1"), std::string::npos) << RespB;
  EXPECT_NE(RespB.find("\"store_hits\":1"), std::string::npos) << RespB;
  EXPECT_NE(RespB.find("\"store_cross_hits\":1"), std::string::npos) << RespB;
  EXPECT_NE(RespB.find("\"name\":\"list.ss\",\"cache\":\"hit\""),
            std::string::npos)
      << RespB;

  // Derived exactly once: one shared image for list.ss plus one main
  // each — the store never holds two copies of the shared component.
  EXPECT_EQ(Reg.store().entries(), 3u);
  EXPECT_EQ(Reg.store().crossSessionHits(), 1u);

  // The per-session attribution shows up in each tenant's stats.
  std::string StatsA = req(R"({"cmd":"stats"})", A->session());
  std::string StatsB = req(R"({"cmd":"stats"})", B->session());
  EXPECT_NE(StatsA.find("\"store_cross_session_hits\":0"), std::string::npos)
      << StatsA;
  EXPECT_NE(StatsA.find("\"store_cross_session_hits_total\":1"),
            std::string::npos)
      << StatsA;
  EXPECT_NE(StatsB.find("\"store_cross_session_hits\":1"), std::string::npos)
      << StatsB;
  EXPECT_NE(StatsB.find("\"store_shared\":true"), std::string::npos) << StatsB;
}

TEST(MultiServe, SessionLimitRefusesAndRecovers) {
  SessionRegistry Reg({}, {}, /*MaxSessions=*/2);
  std::string Error;
  std::unique_ptr<ClientContext> A = Reg.connect(Error);
  std::unique_ptr<ClientContext> B = Reg.connect(Error);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(Reg.active(), 2u);

  std::unique_ptr<ClientContext> C = Reg.connect(Error);
  EXPECT_FALSE(C);
  EXPECT_NE(Error.find("session limit"), std::string::npos) << Error;

  // A client hanging up frees its slot; ids never repeat.
  uint64_t IdA = A->id();
  A.reset();
  EXPECT_EQ(Reg.active(), 1u);
  std::unique_ptr<ClientContext> D = Reg.connect(Error);
  ASSERT_TRUE(D) << Error;
  EXPECT_NE(D->id(), IdA);
  EXPECT_EQ(Reg.opened(), 3u);
}

TEST(MultiServe, DefaultFilesPreloadedAndOpenSwitchesProgram) {
  SessionRegistry Reg({}, clientProgram(0), 0);
  std::string Error;
  std::unique_ptr<ClientContext> A = Reg.connect(Error);
  ASSERT_TRUE(A) << Error;

  // The implicit per-connection session serves the daemon's program.
  std::string Resp = A->handleLine(R"({"cmd":"analyze"})");
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("\"components\":2"), std::string::npos) << Resp;

  // Hostile "open" answers structured errors without hurting the session.
  EXPECT_NE(A->handleLine(R"({"cmd":"open"})").find("\"code\":\"bad-field\""),
            std::string::npos);
  EXPECT_NE(A->handleLine(R"({"cmd":"open","files":["/no/such.ss"]})")
                .find("\"code\":\"unknown-file\""),
            std::string::npos);
  // A failed open keeps the previous program resident and clean.
  EXPECT_NE(A->handleLine(R"({"cmd":"analyze"})")
                .find("\"reanalyzed\":false"),
            std::string::npos);
}

TEST(MultiServe, ChaosSpecArmedAcrossSessions) {
  FaultScope Scope;
  SessionRegistry Reg({}, {}, 0);
  std::string Error;
  std::unique_ptr<ClientContext> A = Reg.connect(Error);
  ASSERT_TRUE(A) << Error;
  A->session().setFiles(clientProgram(0));

  // One tenant arms a store-chaos spec; the injector is process-global,
  // so every session's probes and fills now flake — matching the
  // single-tenant SPIDEY_FAULTS semantics.
  std::string Conf = A->handleLine(
      R"({"cmd":"configure","faults":"seed=11,store.load=0.5,store.store=0.5"})");
  EXPECT_NE(Conf.find("\"faults_enabled\":true"), std::string::npos) << Conf;

  constexpr unsigned Clients = 3;
  std::vector<std::unique_ptr<ClientContext>> Handles;
  for (unsigned C = 0; C < Clients; ++C) {
    Handles.push_back(Reg.connect(Error));
    ASSERT_TRUE(Handles.back()) << Error;
    Handles.back()->session().setFiles(clientProgram(C));
  }
  std::vector<std::thread> Threads;
  std::vector<std::string> Answers(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      // Two passes each: edits force re-analysis through the flaky store.
      Handles[C]->handleLine(R"({"cmd":"analyze"})");
      Handles[C]->handleLine(
          R"js({"cmd":"edit","file":"main.ss","text":"(define a (first (cons 1 '())))"})js");
      Answers[C] = Handles[C]->handleLine(R"({"cmd":"analyze"})");
    });
  for (std::thread &T : Threads)
    T.join();

  // Dropped loads/stores cost re-derivation, never correctness: every
  // session still answers ok.
  for (unsigned C = 0; C < Clients; ++C)
    EXPECT_NE(Answers[C].find("\"ok\":true"), std::string::npos)
        << "client " << C << ": " << Answers[C];
  EXPECT_GT(FaultInjector::instance().totalInjected(), 0u);
}
