//===-- tests/corpus_test.cpp - Corpus programs parse/run/check -*- C++ -*-===//

#include "componential/componential.h"
#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

size_t unsafeCount(const Program &P) {
  Analysis A = analyzeProgram(P);
  return runChecks(P, A.Maps, *A.System).numUnsafe();
}

struct RunOutcome {
  RunResult::Status St;
  std::string Result;
};

RunOutcome runCorpus(const char *Name, std::string Input = "") {
  const CorpusEntry &E = corpusProgram(Name);
  Parsed R = parseOk(E.Source);
  if (!R.Ok)
    return {RunResult::Status::UserError, "<parse>"};
  Machine M(*R.Prog);
  M.setInput(std::move(Input));
  RunResult Out = M.runProgram();
  return {Out.St, Out.St == RunResult::Status::Ok
                      ? Out.Result.str(R.Prog->Syms)
                      : Out.Message};
}

} // namespace

TEST(Corpus, AllProgramsParseAndAnalyze) {
  for (const CorpusEntry &E : corpusPrograms()) {
    Parsed R = parse(E.Source);
    EXPECT_TRUE(R.Ok) << E.Name << ": " << R.Diags.str();
    if (!R.Ok)
      continue;
    Analysis A = analyzeProgram(*R.Prog);
    EXPECT_GT(A.System->size(), 0u) << E.Name;
  }
}

TEST(Corpus, MapRuns) {
  EXPECT_EQ(runCorpus("map").Result, "(1 4 9 16)");
}

TEST(Corpus, ReverseRuns) {
  EXPECT_EQ(runCorpus("reverse").Result, "(3 2 1)");
}

TEST(Corpus, SubstringRuns) {
  EXPECT_EQ(runCorpus("substring").Result, "(\"a\" \"b\" \"c\")");
}

TEST(Corpus, QsortRuns) {
  EXPECT_EQ(runCorpus("qsort").Result, "#t"); // qsort-ok
}

TEST(Corpus, UnifyRuns) {
  // x := a and y := b.
  RunOutcome Out = runCorpus("unify");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_NE(Out.Result.find("(y const . b)"), std::string::npos)
      << Out.Result;
  EXPECT_NE(Out.Result.find("(x const . a)"), std::string::npos)
      << Out.Result;
}

TEST(Corpus, HopcroftRuns) {
  RunOutcome Out = runCorpus("hopcroft");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  // The 6-state round-robin DFA minimizes to 3 classes.
  EXPECT_EQ(Out.Result, "3");
}

TEST(Corpus, CheckRuns) {
  RunOutcome Out = runCorpus("check");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  // (int→int)→int→int rendered as nested pairs.
  EXPECT_NE(Out.Result.find("arrow"), std::string::npos);
}

TEST(Corpus, EscherFishRuns) {
  RunOutcome Out = runCorpus("escher-fish");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  // 4 quadrants at depth 2 x 2 fish = 32 segments.
  EXPECT_EQ(Out.Result, "32");
}

TEST(Corpus, ScannerRuns) {
  RunOutcome Out = runCorpus("scanner");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result, "2"); // numbers: 10 and 99
}

TEST(Corpus, SumFaultsAtCar) {
  RunOutcome Out = runCorpus("sum");
  EXPECT_EQ(Out.St, RunResult::Status::Fault);
}

TEST(Corpus, WebServerScenario) {
  // Buggy version: unsafe checks found, and it actually crashes on eof.
  {
    const CorpusEntry &E = corpusProgram("webserver-buggy");
    Parsed R = parseOk(E.Source);
    EXPECT_GT(unsafeCount(*R.Prog), 0u);
    Machine M(*R.Prog);
    M.setInput("GET / HTTP/1.0\nHost: x\n"); // no blank line: hits eof
    EXPECT_EQ(M.runProgram().St, RunResult::Status::Fault);
  }
  // Fixed version: 0 unsafe checks (§8.1's TOTAL CHECKS: 0), runs fine.
  {
    const CorpusEntry &E = corpusProgram("webserver");
    Parsed R = parseOk(E.Source);
    EXPECT_EQ(unsafeCount(*R.Prog), 0u);
    Machine M(*R.Prog);
    M.setInput("GET / HTTP/1.0\nHost: x\n");
    RunResult Out = M.runProgram();
    EXPECT_EQ(Out.St, RunResult::Status::Ok);
    EXPECT_NE(M.output().find("disconnected temporarily"),
              std::string::npos);
  }
}

TEST(Corpus, InflateScenario) {
  // Buggy inflate: several unsafe vector operations (§8.2's initial 27).
  {
    const CorpusEntry &E = corpusProgram("inflate-buggy");
    Parsed R = parseOk(E.Source);
    EXPECT_GE(unsafeCount(*R.Prog), 2u);
  }
  // Fixed inflate: all checks verified, and it decodes input.
  {
    const CorpusEntry &E = corpusProgram("inflate");
    Parsed R = parseOk(E.Source);
    EXPECT_EQ(unsafeCount(*R.Prog), 0u);
    Machine M(*R.Prog);
    M.setInput("abcd");
    EXPECT_EQ(M.runProgram().St, RunResult::Status::Ok);
  }
  // Fixed inflate on a truncated input file: the graceful error of §8.2.
  {
    const CorpusEntry &E = corpusProgram("inflate");
    Parsed R = parseOk(E.Source);
    Machine M(*R.Prog);
    M.setInput("");
    RunResult Out = M.runProgram();
    EXPECT_EQ(Out.St, RunResult::Status::UserError);
    EXPECT_NE(Out.Message.find("unexpected end of input"),
              std::string::npos);
  }
}

TEST(Corpus, HhlScenario) {
  // The buggy prover: the paper found 9 bug-caused unsafe operations.
  const CorpusEntry &Buggy = corpusProgram("hhl-buggy");
  Parsed RB = parseOk(Buggy.Source);
  size_t BuggyUnsafe = unsafeCount(*RB.Prog);
  EXPECT_GE(BuggyUnsafe, 3u);

  // The fixed prover: bug-class checks gone; some residual checks remain
  // ("appear to be caused by limitations in the underlying analysis").
  const CorpusEntry &Fixed = corpusProgram("hhl");
  Parsed RF = parseOk(Fixed.Source);
  size_t FixedUnsafe = unsafeCount(*RF.Prog);
  EXPECT_LT(FixedUnsafe, BuggyUnsafe);

  // The fixed prover actually proves a&b from {a,b}.
  Machine M(*RF.Prog);
  M.setInput("a&b\n");
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result.str(RF.Prog->Syms), "\"hhl: proved\"");
}

TEST(Corpus, InterpreterTowerRunsAndVerifies) {
  Parsed R = parseFiles(interpreterTowerFiles());
  ASSERT_TRUE(R.Ok) << R.Diags.str();
  Machine M(*R.Prog);
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Ok) << Out.Message;
  EXPECT_EQ(Out.Result.str(R.Prog->Syms), "(42 10 7)");
  // §8.3: after fixing the unit-import bug, MrSpidey verified the whole
  // tower. Check how we fare (some residual checks from the heterogeneous
  // expression encoding are acceptable; key: no unit/link/invoke checks).
  Analysis A = analyzeProgram(*R.Prog);
  DebugReport Rep = runChecks(*R.Prog, A.Maps, *A.System);
  for (const CheckResult &C : Rep.Results) {
    if (C.What == "invoke" || C.What == "link") {
      EXPECT_TRUE(C.Safe) << C.What;
    }
  }
}

TEST(Corpus, GeneratedProgramsParseAnalyzeAndRun) {
  for (unsigned Seed : {1u, 7u, 42u}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumComponents = 3;
    Config.TargetLines = 150;
    Config.PolyReusePercent = 50;
    Config.CrossComponentPercent = 30;
    auto Files = generateProgram(Config);
    ASSERT_EQ(Files.size(), 4u);
    Parsed R = parseFiles(Files);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << "\n" << R.Diags.str();
    Machine M(*R.Prog);
    RunResult Out = M.runProgram();
    EXPECT_EQ(Out.St, RunResult::Status::Ok)
        << "seed " << Seed << ": " << Out.Message;
    // Generated programs are well-typed (no run-time faults). The
    // monomorphic analysis may still report spurious checks where the
    // generic mappers merge unrelated element types — exactly the
    // imprecision polymorphic analysis removes (§7.4). Within one
    // component, Copy polymorphism eliminates them.
    size_t MonoUnsafe = unsafeCount(*R.Prog);
    Analysis Poly = analyzeProgram(
        *R.Prog, polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::None));
    size_t PolyUnsafe =
        runChecks(*R.Prog, Poly.Maps, *Poly.System).numUnsafe();
    EXPECT_LE(PolyUnsafe, MonoUnsafe) << "seed " << Seed;
  }
}

TEST(Corpus, GeneratedProgramsAreDeterministic) {
  GeneratorConfig Config;
  Config.Seed = 5;
  Config.NumComponents = 2;
  Config.TargetLines = 80;
  auto A = generateProgram(Config);
  auto B = generateProgram(Config);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Text, B[I].Text);
}

TEST(Corpus, BenchmarkConfigsScaleRoughlyToPaperSizes) {
  for (const char *Name : {"scanner", "zodiac", "sba", "mod-poly"}) {
    GeneratorConfig Config = benchmarkConfig(Name);
    auto Files = generateProgram(Config);
    size_t Lines = 0;
    for (const SourceFile &F : Files)
      for (char C : F.Text)
        Lines += C == '\n';
    EXPECT_GT(Lines, Config.TargetLines * 7 / 10) << Name;
    EXPECT_LT(Lines, Config.TargetLines * 16 / 10) << Name;
    Parsed R = parseFiles(Files);
    EXPECT_TRUE(R.Ok) << Name << "\n" << R.Diags.str();
  }
}

TEST(Corpus, MetaEvalRuns) {
  RunOutcome Out = runCorpus("meta-eval");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result, "3"); // church 3 of add1 at 0
}

TEST(Corpus, MetaEvalFirstDemo) {
  const CorpusEntry &E = corpusProgram("meta-eval");
  Parsed R = parseOk(E.Source);
  Machine M(*R.Prog);
  ASSERT_EQ(M.runProgram().St, RunResult::Status::Ok);
  // Re-evaluate meta-demo's definition: ((λx.λy. x*x+y) 6 5) = 41.
  for (const TopForm &F : R.Prog->Components[0].Forms)
    if (F.DefVar != NoVar &&
        R.Prog->var(F.DefVar).Name == R.Prog->Syms.lookup("meta-demo")) {
      RunResult V = M.evalTop(F.Body);
      ASSERT_EQ(V.St, RunResult::Status::Ok);
      EXPECT_EQ(V.Result.str(R.Prog->Syms), "41");
    }
}

TEST(Corpus, MatrixRuns) {
  RunOutcome Out = runCorpus("matrix");
  EXPECT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result, "5"); // trace of the 5x5 identity
}

TEST(Corpus, MatrixFibDemo) {
  const CorpusEntry &E = corpusProgram("matrix");
  Parsed R = parseOk(E.Source);
  Machine M(*R.Prog);
  ASSERT_EQ(M.runProgram().St, RunResult::Status::Ok);
  for (const TopForm &F : R.Prog->Components[0].Forms)
    if (F.DefVar != NoVar &&
        R.Prog->var(F.DefVar).Name == R.Prog->Syms.lookup("matrix-demo")) {
      RunResult V = M.evalTop(F.Body);
      ASSERT_EQ(V.St, RunResult::Status::Ok);
      EXPECT_EQ(V.Result.str(R.Prog->Syms), "55");
    }
}
