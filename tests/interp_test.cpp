//===-- tests/interp_test.cpp - Evaluator tests ----------------*- C++ -*-===//

#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

TEST(Interp, Literals) {
  EXPECT_EQ(evalToString("42"), "42");
  EXPECT_EQ(evalToString("#t"), "#t");
  EXPECT_EQ(evalToString("\"hi\""), "\"hi\"");
  EXPECT_EQ(evalToString("#\\a"), "#\\a");
  EXPECT_EQ(evalToString("'sym"), "sym");
  EXPECT_EQ(evalToString("'()"), "()");
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(evalToString("(+ 1 2 3)"), "6");
  EXPECT_EQ(evalToString("(- 10 2 3)"), "5");
  EXPECT_EQ(evalToString("(- 5)"), "-5");
  EXPECT_EQ(evalToString("(* 2 3 4)"), "24");
  EXPECT_EQ(evalToString("(quotient 7 2)"), "3");
  EXPECT_EQ(evalToString("(remainder 7 2)"), "1");
  EXPECT_EQ(evalToString("(modulo -7 3)"), "2");
  EXPECT_EQ(evalToString("(min 3 1 2)"), "1");
  EXPECT_EQ(evalToString("(max 3 1 2)"), "3");
  EXPECT_EQ(evalToString("(abs -4)"), "4");
  EXPECT_EQ(evalToString("(add1 (sub1 5))"), "5");
  EXPECT_EQ(evalToString("(< 1 2 3)"), "#t");
  EXPECT_EQ(evalToString("(< 1 3 2)"), "#f");
  EXPECT_EQ(evalToString("(= 2 2)"), "#t");
  EXPECT_EQ(evalToString("(zero? 0)"), "#t");
}

TEST(Interp, Bitwise) {
  EXPECT_EQ(evalToString("(bitwise-and 12 10)"), "8");
  EXPECT_EQ(evalToString("(bitwise-ior 12 10)"), "14");
  EXPECT_EQ(evalToString("(bitwise-xor 12 10)"), "6");
  EXPECT_EQ(evalToString("(arithmetic-shift 1 4)"), "16");
  EXPECT_EQ(evalToString("(arithmetic-shift 16 -4)"), "1");
}

TEST(Interp, LambdaApplication) {
  EXPECT_EQ(evalToString("((lambda (x y) (+ x y)) 3 4)"), "7");
  EXPECT_EQ(evalToString("(((lambda (x) (lambda (y) (+ x y))) 1) 2)"), "3");
}

TEST(Interp, LexicalScope) {
  EXPECT_EQ(evalToString("(let ([x 1]) (let ([f (lambda () x)])"
                         "  (let ([x 2]) (f))))"),
            "1");
}

TEST(Interp, Pairs) {
  EXPECT_EQ(evalToString("(car (cons 1 2))"), "1");
  EXPECT_EQ(evalToString("(cdr (cons 1 2))"), "2");
  EXPECT_EQ(evalToString("(list 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(evalToString("(pair? (cons 1 2))"), "#t");
  EXPECT_EQ(evalToString("(pair? '())"), "#f");
  EXPECT_EQ(evalToString("(null? '())"), "#t");
}

TEST(Interp, Conditionals) {
  EXPECT_EQ(evalToString("(if #f 1 2)"), "2");
  EXPECT_EQ(evalToString("(if 0 1 2)"), "1"); // only #f is false
  EXPECT_EQ(evalToString("(cond [(= 1 2) 'a] [(= 1 1) 'b] [else 'c])"), "b");
  EXPECT_EQ(evalToString("(and 1 2 3)"), "3");
  EXPECT_EQ(evalToString("(and 1 #f 3)"), "#f");
  EXPECT_EQ(evalToString("(or #f 2)"), "2");
  EXPECT_EQ(evalToString("(not #f)"), "#t");
}

TEST(Interp, LetrecRecursion) {
  EXPECT_EQ(evalToString("(letrec ([fact (lambda (n)"
                         "  (if (zero? n) 1 (* n (fact (sub1 n)))))])"
                         " (fact 10))"),
            "3628800");
}

TEST(Interp, NamedLetLoop) {
  EXPECT_EQ(evalToString("(let loop ([i 0] [acc 0])"
                         "  (if (= i 5) acc (loop (+ i 1) (+ acc i))))"),
            "10");
}

TEST(Interp, TopLevelDefines) {
  EXPECT_EQ(evalToString("(define (fib n)"
                         "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
                         "(fib 15)"),
            "610");
}

TEST(Interp, MutualRecursionAcrossDefines) {
  EXPECT_EQ(evalToString("(define (even? n) (if (zero? n) #t (odd? (sub1 n))))"
                         "(define (odd? n) (if (zero? n) #f (even? (sub1 n))))"
                         "(even? 40)"),
            "#t");
}

TEST(Interp, SetBang) {
  EXPECT_EQ(evalToString("(define x 1) (set! x (+ x 1)) x"), "2");
  EXPECT_EQ(evalToString("(letrec ([c 0]"
                         "         [bump (lambda () (set! c (+ c 1)))])"
                         "  (bump) (bump) c)"),
            "2");
}

TEST(Interp, SetReturnsValue) {
  EXPECT_EQ(evalToString("(define x 0) (set! x 7)"), "7");
}

TEST(Interp, Boxes) {
  EXPECT_EQ(evalToString("(unbox (box 5))"), "5");
  EXPECT_EQ(evalToString("(let ([b (box 1)]) (set-box! b 9) (unbox b))"),
            "9");
  EXPECT_EQ(evalToString("(box? (box 1))"), "#t");
  // Boxes are shared (aliasing).
  EXPECT_EQ(evalToString("(let ([b (box 1)]) (let ([c b])"
                         "  (set-box! c 42) (unbox b)))"),
            "42");
}

TEST(Interp, Vectors) {
  EXPECT_EQ(evalToString("(vector-ref (vector 1 2 3) 1)"), "2");
  EXPECT_EQ(evalToString("(vector-length (make-vector 7 0))"), "7");
  EXPECT_EQ(evalToString("(let ([v (make-vector 3 0)])"
                         "  (vector-set! v 1 9) (vector-ref v 1))"),
            "9");
  EXPECT_EQ(evalToString("(vector? (vector))"), "#t");
}

TEST(Interp, Strings) {
  EXPECT_EQ(evalToString("(string-length \"hello\")"), "5");
  EXPECT_EQ(evalToString("(string-append \"a\" \"b\" \"c\")"), "\"abc\"");
  EXPECT_EQ(evalToString("(substring \"hello\" 1 3)"), "\"el\"");
  EXPECT_EQ(evalToString("(string-ref \"abc\" 1)"), "#\\b");
  EXPECT_EQ(evalToString("(string=? \"x\" \"x\")"), "#t");
  EXPECT_EQ(evalToString("(number->string 42)"), "\"42\"");
  EXPECT_EQ(evalToString("(string->number \"42\")"), "42");
  EXPECT_EQ(evalToString("(string->number \"nope\")"), "#f");
  EXPECT_EQ(evalToString("(symbol->string 'abc)"), "\"abc\"");
  EXPECT_EQ(evalToString("(eq? (string->symbol \"abc\") 'abc)"), "#t");
  EXPECT_EQ(evalToString("(char->integer #\\a)"), "97");
  EXPECT_EQ(evalToString("(integer->char 98)"), "#\\b");
}

TEST(Interp, Equality) {
  EXPECT_EQ(evalToString("(eq? 'a 'a)"), "#t");
  EXPECT_EQ(evalToString("(eq? (cons 1 2) (cons 1 2))"), "#f");
  EXPECT_EQ(evalToString("(equal? (list 1 2) (list 1 2))"), "#t");
  EXPECT_EQ(evalToString("(let ([p (cons 1 2)]) (eq? p p))"), "#t");
}

TEST(Interp, DisplayOutput) {
  Parsed R = parseOk("(display \"hi \") (display 42) (newline)");
  Machine M(*R.Prog);
  ASSERT_EQ(M.runProgram().St, RunResult::Status::Ok);
  EXPECT_EQ(M.output(), "hi 42\n");
}

TEST(Interp, ReadLineAndEof) {
  EXPECT_EQ(evalToString("(read-line)", "hello\nworld\n"), "\"hello\"");
  EXPECT_EQ(evalToString("(begin (read-line) (read-line))", "a\nb"),
            "\"b\"");
  EXPECT_EQ(evalToString("(eof-object? (read-line))", ""), "#t");
  EXPECT_EQ(evalToString("(read-char)", "xy"), "#\\x");
  EXPECT_EQ(evalToString("(begin (peek-char) (read-char))", "xy"), "#\\x");
}

TEST(Interp, CallccEscape) {
  EXPECT_EQ(evalToString("(+ 1 (call/cc (lambda (k) (k 10) 999)))"), "11");
}

TEST(Interp, CallccNoInvoke) {
  EXPECT_EQ(evalToString("(call/cc (lambda (k) 5))"), "5");
}

TEST(Interp, CallccReusableContinuation) {
  // Store the continuation in a box and re-enter it repeatedly. (As in
  // MzScheme, continuations are delimited by the top-level form.)
  EXPECT_EQ(evalToString(
                "(define saved (box #f))"
                "(define count (box 0))"
                "(let ([r (+ 1 (call/cc (lambda (k)"
                "                         (set-box! saved k) 0)))])"
                "  (if (< (unbox count) 3)"
                "      (begin (set-box! count (+ (unbox count) 1))"
                "             ((unbox saved) (unbox count)))"
                "      r))"),
            "4");
}

TEST(Interp, Abort) {
  EXPECT_EQ(evalToString("(+ 1 (abort 42))"), "42");
}

TEST(Interp, AbortStopsProgram) {
  EXPECT_EQ(evalToString("(define x (abort 'stopped)) (+ 1 2)"), "stopped");
}

TEST(Interp, UnitsBasic) {
  EXPECT_EQ(evalToString(
                "(define z 10)"
                "(invoke (unit (import w) (export f)"
                "              (define f (lambda () (+ w 1))))"
                "        z)"),
            "#<procedure>");
  EXPECT_EQ(evalToString(
                "(define z 10)"
                "((invoke (unit (import w) (export f)"
                "               (define f (lambda () (+ w 1))))"
                "         z))"),
            "11");
}

TEST(Interp, UnitsLink) {
  // First unit exports 5+import; second adds 100.
  EXPECT_EQ(evalToString(
                "(define z 1)"
                "(invoke"
                "  (link (unit (import a) (export x) (define x (+ a 5)))"
                "        (unit (import b) (export y) (define y (+ b 100))))"
                "  z)"),
            "106");
}

TEST(Interp, UnitBodyRunsAfterDefines) {
  EXPECT_EQ(evalToString(
                "(define z 0)"
                "(define out (box 0))"
                "(invoke (unit (import w) (export s)"
                "              (define s (box 5))"
                "              (set-box! out (unbox s)))"
                "        z)"
                "(unbox out)"),
            "5");
}

TEST(Interp, ClassesBasic) {
  EXPECT_EQ(evalToString("(ivar (make-obj (class object% () [x 41]"
                         "                                  [y (+ x 1)])) y)"),
            "42");
}

TEST(Interp, ClassesInheritance) {
  EXPECT_EQ(evalToString(
                "(define c1 (class object% () [x 10]))"
                "(define c2 (class c1 (x) [y (+ x 1)]))"
                "(ivar (make-obj c2) y)"),
            "11");
}

TEST(Interp, ClassesSetIvar) {
  EXPECT_EQ(evalToString(
                "(define o (make-obj (class object% () [x 1])))"
                "(set-ivar! o x 99)"
                "(ivar o x)"),
            "99");
}

TEST(Interp, ObjectsHaveIndependentState) {
  EXPECT_EQ(evalToString(
                "(define c (class object% () [x 0]))"
                "(define a (make-obj c))"
                "(define b (make-obj c))"
                "(set-ivar! a x 5)"
                "(ivar b x)"),
            "0");
}

// --- Faults: the run-time errors the static debugger must predict. ---

TEST(InterpFaults, CarOfNonPair) {
  RunResult R = runSource("(car 5)");
  EXPECT_EQ(R.St, RunResult::Status::Fault);
  EXPECT_NE(R.FaultSite, NoExpr);
}

TEST(InterpFaults, CdrOfNil) {
  EXPECT_EQ(runSource("(cdr '())").St, RunResult::Status::Fault);
}

TEST(InterpFaults, AddOfString) {
  EXPECT_EQ(runSource("(+ 1 \"two\")").St, RunResult::Status::Fault);
}

TEST(InterpFaults, ApplyNonFunction) {
  EXPECT_EQ(runSource("(1 2)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, ArityMismatch) {
  EXPECT_EQ(runSource("((lambda (x y) x) 1)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, UnboxNonBox) {
  EXPECT_EQ(runSource("(unbox 5)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, VectorRefNonVector) {
  EXPECT_EQ(runSource("(vector-ref 5 0)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, StringLengthOfEof) {
  EXPECT_EQ(runSource("(string-length (read-line))", "").St,
            RunResult::Status::Fault);
}

TEST(InterpFaults, IvarOfNonObject) {
  EXPECT_EQ(runSource("(ivar 5 x)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, InvokeNonUnit) {
  EXPECT_EQ(runSource("(define z 0) (invoke 5 z)").St,
            RunResult::Status::Fault);
}

TEST(InterpFaults, LinkNonUnit) {
  EXPECT_EQ(runSource("(link 1 2)").St, RunResult::Status::Fault);
}

TEST(InterpFaults, ClassOfNonClass) {
  EXPECT_EQ(runSource("(class 5 () [x 1])").St, RunResult::Status::Fault);
}

TEST(InterpFaults, MakeObjOfNonClass) {
  EXPECT_EQ(runSource("(make-obj 5)").St, RunResult::Status::Fault);
}

// --- User errors are distinct from faults (§10.2: not check sites). ---

TEST(InterpErrors, DivisionByZero) {
  EXPECT_EQ(runSource("(/ 1 0)").St, RunResult::Status::UserError);
}

TEST(InterpErrors, VectorIndexOutOfRange) {
  EXPECT_EQ(runSource("(vector-ref (vector 1) 5)").St,
            RunResult::Status::UserError);
}

TEST(InterpErrors, ErrorPrimitive) {
  RunResult R = runSource("(error \"boom\" 42)");
  EXPECT_EQ(R.St, RunResult::Status::UserError);
  EXPECT_EQ(R.Message, "boom 42");
}

TEST(InterpErrors, OutOfFuel) {
  Parsed R = parseOk("(letrec ([f (lambda () (f))]) (f))");
  Machine M(*R.Prog);
  M.setFuel(10000);
  EXPECT_EQ(M.runProgram().St, RunResult::Status::OutOfFuel);
}

TEST(Interp, TraceHookObservesValues) {
  Parsed R = parseOk("(+ 1 2)");
  Machine M(*R.Prog);
  std::vector<std::pair<ExprId, std::string>> Seen;
  M.Trace = [&](ExprId E, const Value &V) {
    Seen.emplace_back(E, V.str(R.Prog->Syms));
  };
  ASSERT_EQ(M.runProgram().St, RunResult::Status::Ok);
  // Literals 1 and 2 plus the PrimApp result 3.
  ASSERT_GE(Seen.size(), 3u);
  EXPECT_EQ(Seen.back().second, "3");
}
