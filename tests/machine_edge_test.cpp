//===-- tests/machine_edge_test.cpp - Evaluator edge cases -----*- C++ -*-===//
///
/// Edge-case coverage of the CEK machine: evaluation order, deep
/// recursion, continuation interactions with mutation/units/classes,
/// shadowing, unit composition corner cases, and class hierarchies.
///
//===----------------------------------------------------------------------===//

#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

TEST(MachineEdge, LeftToRightEvaluationOrder) {
  EXPECT_EQ(evalToString("(define trace (box '()))"
                         "(define (note! x)"
                         "  (begin (set-box! trace (cons x (unbox trace)))"
                         "         x))"
                         "((lambda (a b c) (void)) (note! 1) (note! 2)"
                         "                         (note! 3))"
                         "(unbox trace)"),
            "(3 2 1)");
}

TEST(MachineEdge, LetEvaluatesInitsInOuterScope) {
  EXPECT_EQ(evalToString("(define x 10)"
                         "(let ([x 1] [y x]) y)"),
            "10");
}

TEST(MachineEdge, LetrecInitsSeeEachOtherSequentially) {
  EXPECT_EQ(evalToString("(letrec ([a 1] [b (+ a 1)]) (+ a b))"), "3");
}

TEST(MachineEdge, DeepRecursionViaCEK) {
  // 100k-deep non-tail recursion: the explicit frame stack handles it.
  EXPECT_EQ(evalToString("(define (count n)"
                         "  (if (zero? n) 0 (+ 1 (count (sub1 n)))))"
                         "(count 100000)"),
            "100000");
}

TEST(MachineEdge, TailLoopRunsMillionsOfSteps) {
  Parsed R = parseOk("(let loop ([i 0]) (if (= i 300000) i (loop (+ i 1))))");
  Machine M(*R.Prog);
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result.str(R.Prog->Syms), "300000");
}

TEST(MachineEdge, ShadowingAcrossForms) {
  EXPECT_EQ(evalToString("(define (f car) (car 5))"
                         "(f (lambda (x) (* x 2)))"),
            "10");
}

TEST(MachineEdge, ContinuationCapturesMutableState) {
  // Invoking a continuation does not roll back mutations (store passes
  // through capture, §3.3 + §3.4 semantics).
  EXPECT_EQ(evalToString(
                "(define n (box 0))"
                "(let ([r (call/cc (lambda (k)"
                "                    (begin (set-box! n 1) (k 'jumped))))])"
                "  (cons r (unbox n)))"),
            "(jumped . 1)");
}

TEST(MachineEdge, NestedCallcc) {
  EXPECT_EQ(evalToString(
                "(call/cc (lambda (outer)"
                "  (+ 100 (call/cc (lambda (inner) (inner 1))))))"),
            "101");
  EXPECT_EQ(evalToString(
                "(call/cc (lambda (outer)"
                "  (+ 100 (call/cc (lambda (inner) (outer 1))))))"),
            "1");
}

TEST(MachineEdge, ContinuationAsFirstClassArgument) {
  EXPECT_EQ(evalToString("(define (apply-to f v) (f v))"
                         "(+ 1 (call/cc (lambda (k) (apply-to k 41) 999)))"),
            "42");
}

TEST(MachineEdge, AbortInsideDeepContext) {
  EXPECT_EQ(evalToString("(car (cons (abort 'escaped) 1))"), "escaped");
}

TEST(MachineEdge, UnitExportIsImport) {
  // A pass-through unit: export the import variable itself.
  EXPECT_EQ(evalToString("(define z 5)"
                         "(invoke (unit (import w) (export w) (void)) z)"),
            "5");
}

TEST(MachineEdge, UnitWithNoDefines) {
  EXPECT_EQ(evalToString("(define z 1)"
                         "(invoke (unit (import w) (export w)"
                         "              (display \"side\"))"
                         "        z)"),
            "1");
}

TEST(MachineEdge, ThreeWayLink) {
  EXPECT_EQ(evalToString(
                "(define z 1)"
                "(invoke"
                "  (link (link (unit (import a) (export x) (define x (+ a 1)))"
                "              (unit (import b) (export y) (define y (* b 2))))"
                "        (unit (import c) (export w) (define w (+ c 10))))"
                "  z)"),
            "14"); // ((1+1)*2)+10
}

TEST(MachineEdge, UnitValuesAreFirstClass) {
  EXPECT_EQ(evalToString(
                "(define z 3)"
                "(define (twice u) (link u u))"
                "(invoke (twice (unit (import a) (export b)"
                "                     (define b (* a a))))"
                "        z)"),
            "81");
}

TEST(MachineEdge, ClassThreeLevels) {
  EXPECT_EQ(evalToString(
                "(define a% (class object% () [x 1]))"
                "(define b% (class a% (x) [y (* x 10)]))"
                "(define c% (class b% (x y) [z (+ x y)]))"
                "(ivar (make-obj c%) z)"),
            "11");
}

TEST(MachineEdge, SubclassInitializerSeesSuperValue) {
  EXPECT_EQ(evalToString(
                "(define base (class object% () [v 7]))"
                "(define derived (class base (v) [w (+ v 1)]))"
                "(ivar (make-obj derived) w)"),
            "8");
}

TEST(MachineEdge, ClassValuesAreFirstClass) {
  EXPECT_EQ(evalToString(
                "(define (extend c) (class c () [extra 'added]))"
                "(ivar (make-obj (extend (class object% () [base 1])))"
                "      extra)"),
            "added");
}

TEST(MachineEdge, ObjectsInDataStructures) {
  EXPECT_EQ(evalToString(
                "(define objs"
                "  (list (make-obj (class object% () [n 1]))"
                "        (make-obj (class object% () [n 2]))))"
                "(+ (ivar (car objs) n) (ivar (car (cdr objs)) n))"),
            "3");
}

TEST(MachineEdge, SetReturnsAndChains) {
  EXPECT_EQ(evalToString("(define a 0) (define b 0)"
                         "(set! a (set! b 5))"
                         "(+ a b)"),
            "10");
}

TEST(MachineEdge, BeginSequencingWithEffects) {
  EXPECT_EQ(evalToString("(define b (box 0))"
                         "(begin (set-box! b 1) (set-box! b 2)"
                         "       (unbox b))"),
            "2");
}

TEST(MachineEdge, VectorAliasing) {
  EXPECT_EQ(evalToString("(define v (vector 1 2))"
                         "(define w v)"
                         "(vector-set! w 0 9)"
                         "(vector-ref v 0)"),
            "9");
}

TEST(MachineEdge, EvalTopReusesTopEnvironment) {
  Parsed R = parseOk("(define x 41) (define y (+ x 1))");
  Machine M(*R.Prog);
  ASSERT_EQ(M.runProgram().St, RunResult::Status::Ok);
  // Re-evaluate the second define's body in the final environment.
  RunResult Out = M.evalTop(R.Prog->Components[0].Forms[1].Body);
  ASSERT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result.str(R.Prog->Syms), "42");
}

TEST(MachineEdge, FreshMachinesAreIndependent) {
  Parsed R = parseOk("(define b (box 0)) (set-box! b (+ (unbox b) 1))"
                     "(unbox b)");
  Machine M1(*R.Prog), M2(*R.Prog);
  EXPECT_EQ(M1.runProgram().Result.str(R.Prog->Syms), "1");
  EXPECT_EQ(M2.runProgram().Result.str(R.Prog->Syms), "1");
}
