//===-- tests/regress_test.cpp - Fuzzer-found regressions ------*- C++ -*-===//
///
/// Replays every minimized reproducer checked into tests/regress/ through
/// the oracle named in its `; oracle:` header (or all four when the header
/// is absent) and expects a clean verdict: once a fuzzer-found bug is
/// fixed, its reproducer keeps it fixed. The table is the directory — an
/// empty directory is a passing (if vacuous) suite, and dropping a new
/// `.ss` file in adds a test without touching this file.
///
//===----------------------------------------------------------------------===//

#include "fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace spidey;

#ifndef SPIDEY_REGRESS_DIR
#define SPIDEY_REGRESS_DIR "tests/regress"
#endif

namespace {

std::vector<std::string> reproducerPaths() {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  fs::path Dir(SPIDEY_REGRESS_DIR);
  if (fs::exists(Dir))
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".ss")
        Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

void replayClean(const std::string &Text, const std::string &What) {
  std::string OracleDirective;
  std::vector<SourceFile> Files = parseReproducer(Text, OracleDirective);
  ASSERT_FALSE(Files.empty()) << What;

  std::vector<Oracle> ToRun;
  if (Oracle Single; oracleFromName(OracleDirective, Single)) {
    ToRun.push_back(Single);
  } else {
    for (unsigned I = 0; I < NumOracles; ++I)
      ToRun.push_back(static_cast<Oracle>(I));
  }
  for (Oracle O : ToRun) {
    OracleVerdict V = checkOracle(O, Files, OracleOptions{});
    EXPECT_TRUE(V.Parsed) << What << ": reproducer no longer parses\n"
                          << V.Message;
    EXPECT_FALSE(V.Violation)
        << What << " regressed under the " << oracleName(O) << " oracle:\n"
        << V.Message;
  }
}

} // namespace

TEST(Regress, CheckedInReproducersStayFixed) {
  for (const std::string &Path : reproducerPaths()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    replayClean(Buf.str(), Path);
  }
}

TEST(Regress, DirectoryIsDiscovered) {
  // The suite must actually see the checked-in corpus; if the directory
  // moves, fail loudly instead of silently testing nothing.
  EXPECT_TRUE(std::filesystem::exists(SPIDEY_REGRESS_DIR));
}

TEST(Regress, HarnessDetectsViolations) {
  // Self-test with an in-memory reproducer: the harness must be able to
  // fail. A fault at an unflagged site cannot be fabricated from healthy
  // code, so instead feed a program that does not parse and check the
  // verdict surfaces it.
  std::string OracleDirective;
  std::vector<SourceFile> Files =
      parseReproducer("; oracle: soundness\n;;; file: bad.ss\n(((\n",
                      OracleDirective);
  EXPECT_EQ(OracleDirective, "soundness");
  OracleVerdict V = checkOracle(Oracle::Soundness, Files, OracleOptions{});
  EXPECT_FALSE(V.Parsed);
}
