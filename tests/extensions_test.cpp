//===-- tests/extensions_test.cpp - App. D / §10.4 features ----*- C++ -*-===//
///
/// Tests for the appendix/future-work features: type assertions (D.5.1),
/// signature verification via the (approx) rule (§10.4), and the type
/// display preferences (D.2.2).
///
//===----------------------------------------------------------------------===//

#include "componential/signature.h"
#include "debugger/checks.h"
#include "test_util.h"
#include "types/type.h"

using namespace spidey;
using namespace spidey::test;

namespace {

DebugReport checksOf(const Parsed &R, const Analysis &A) {
  return runChecks(*R.Prog, A.Maps, *A.System);
}

size_t assertionUnsafe(const DebugReport &Rep) {
  size_t N = 0;
  for (const CheckResult &C : Rep.Results)
    if (!C.Safe && C.What == "type-assertion")
      ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===
// Type assertions (App. D.5.1).
//===----------------------------------------------------------------------===

TEST(TypeAssert, VerifiedAssertionIsSafe) {
  Parsed R = parseOk("(: (+ 1 2) num)");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R, A)), 0u);
  EXPECT_EQ(kindsOf(A, lastTopExpr(*R.Prog)),
            std::vector<std::string>{"num"});
}

TEST(TypeAssert, ViolatedAssertionIsFlagged) {
  Parsed R = parseOk("(: \"not a number\" num)");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R, A)), 1u);
}

TEST(TypeAssert, UnionTypes) {
  Parsed R = parseOk("(: (read-line) (union str eof))");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R, A)), 0u);
  Parsed R2 = parseOk("(: (read-line) str)");
  Analysis A2 = analyzeProgram(*R2.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R2, A2)), 1u);
}

TEST(TypeAssert, NarrowsDownstream) {
  // The assertion is the programmer's promise: downstream sees only the
  // asserted kinds, so string-length on an asserted string is safe.
  Parsed R = parseOk("(string-length (: (read-line) str))");
  Analysis A = analyzeProgram(*R.Prog);
  DebugReport Rep = checksOf(R, A);
  for (const CheckResult &C : Rep.Results)
    if (C.What == "string-length") {
      EXPECT_TRUE(C.Safe);
    }
  // The assertion itself remains flagged (read-line may give eof).
  EXPECT_EQ(assertionUnsafe(Rep), 1u);
}

TEST(TypeAssert, RuntimeCheckFaults) {
  // The machine enforces assertions, and the fault site is the flagged
  // check (soundness of the debugger for assertions).
  RunResult Out = runSource("(: (cons 1 2) num)");
  EXPECT_EQ(Out.St, RunResult::Status::Fault);
  EXPECT_EQ(evalToString("(: 7 num)"), "7");
  EXPECT_EQ(evalToString("(: 7 (union num str))"), "7");
  EXPECT_EQ(evalToString("(+ 1 (: (string-length \"ab\") num))"), "3");
}

TEST(TypeAssert, AnyAcceptsEverything) {
  EXPECT_EQ(evalToString("(: (vector 1) any)"), "#(1)");
  Parsed R = parseOk("(: (vector 1) any)");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R, A)), 0u);
}

TEST(TypeAssert, MalformedAssertionsRejected) {
  EXPECT_FALSE(parse("(: 1)").Ok);
  EXPECT_FALSE(parse("(: 1 nope)").Ok);
  EXPECT_FALSE(parse("(: 1 (list num))").Ok);
}

TEST(TypeAssert, FnAndStructureKinds) {
  Parsed R = parseOk("(define (f x) x)"
                     "(: f fn) (: (box 1) box) (: (vector) vec)"
                     "(: (unit (import a) (export a) (void)) unit)"
                     "(: object% class) (: (make-obj object%) obj)");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(assertionUnsafe(checksOf(R, A)), 0u);
}

//===----------------------------------------------------------------------===
// Signatures and the (approx) rule (§10.4).
//===----------------------------------------------------------------------===

TEST(Signature, CorrectSignatureVerifies) {
  // Component: inc : num -> num. Signature: the same interface, written
  // directly as constraints.
  Parsed R = parseOk("(define (inc x) (+ x 1))");
  Analysis A = analyzeProgram(*R.Prog);
  SetVar IncVar = A.Maps.varVar(R.Prog->Components[0].Forms[0].DefVar);
  std::vector<SetVar> E{IncVar};

  ConstraintContext &Ctx = *A.Ctx;
  ConstraintSystem Sig(Ctx);
  // fn-tag ≤ inc, num ≤ rng(inc). Constants are atoms of the semantic
  // domain D, so a signature must name the component's function tag (it
  // would come from the component's constraint file in practice).
  Constant Tag = A.System->constantsOf(IncVar).front();
  ASSERT_EQ(Ctx.Constants.kind(Tag), ConstKind::FnTag);
  Sig.addConstLower(IncVar, Tag);
  SetVar Rng = Ctx.freshVar();
  Sig.addSelLower(IncVar, Ctx.Rng, Rng);
  Sig.addConstLower(Rng, Ctx.Constants.basic(ConstKind::Num));

  // The signature must entail the derived system on E. The derived system
  // contains the same shape (tag, num result), so a signature carrying at
  // least that information verifies.
  SignatureCheck Check = verifySignature(Sig, *A.System, E);
  EXPECT_EQ(Check.Entails, Decision::Yes);
}

TEST(Signature, MissingBehaviorIsRejected) {
  // A signature claiming inc returns nothing does not entail the derived
  // system (which proves num ≤ rng(inc) flows at uses)? The derived
  // system's observable at E includes [fn-tag ≤ inc]; an empty signature
  // proves nothing, so entailment fails.
  Parsed R = parseOk("(define (inc x) (+ x 1))");
  Analysis A = analyzeProgram(*R.Prog);
  SetVar IncVar = A.Maps.varVar(R.Prog->Components[0].Forms[0].DefVar);
  std::vector<SetVar> E{IncVar};
  ConstraintSystem Empty(*A.Ctx);
  SignatureCheck Check = verifySignature(Empty, *A.System, E);
  EXPECT_EQ(Check.Entails, Decision::No);
}

TEST(Signature, SignatureUsableDownstream) {
  // Using the verified signature instead of the derived system gives the
  // same (or coarser, never smaller) answers at call sites.
  Parsed R = parseOk("(define (inc x) (+ x 1))");
  Analysis A = analyzeProgram(*R.Prog);
  SetVar IncVar = A.Maps.varVar(R.Prog->Components[0].Forms[0].DefVar);
  ConstraintContext &Ctx = *A.Ctx;

  ConstraintSystem Sig(Ctx);
  Constant Tag = A.System->constantsOf(IncVar).front();
  Sig.addConstLower(IncVar, Tag);
  SetVar Rng = Ctx.freshVar();
  Sig.addSelLower(IncVar, Ctx.Rng, Rng);
  Sig.addConstLower(Rng, Ctx.Constants.basic(ConstKind::Num));

  // "Client" component: apply inc to a number through the signature only.
  ConstraintSystem Client(Ctx);
  Client.absorbRaw(Sig);
  Client.close();
  SetVar Arg = Ctx.freshVar(), Res = Ctx.freshVar();
  Client.addSelUpper(IncVar, Ctx.dom(0), Arg);
  Client.addSelUpper(IncVar, Ctx.Rng, Res);
  Client.addConstLower(Arg, Ctx.Constants.basic(ConstKind::Num));
  EXPECT_TRUE(Client.hasConstLower(Res, Ctx.Constants.basic(ConstKind::Num)));
}

//===----------------------------------------------------------------------===
// Type display preferences (App. D.2.2).
//===----------------------------------------------------------------------===

TEST(TypeDisplay, ObjectFieldsSuppressed) {
  Parsed R = parseOk("(make-obj (class object% () [x 1] [y 'a]))");
  Analysis A = analyzeProgram(*R.Prog);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  SetVar V = A.Maps.exprVar(lastTopExpr(*R.Prog));
  EXPECT_NE(TB.typeString(V).find("[x num]"), std::string::npos);
  TypeDisplayOptions Opts;
  Opts.ShowObjectFields = false;
  EXPECT_EQ(TB.typeString(V, Opts), "(obj ...)");
}

TEST(TypeDisplay, DepthBound) {
  Parsed R = parseOk("(cons 1 (cons 2 (cons 3 '())))");
  Analysis A = analyzeProgram(*R.Prog);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  SetVar V = A.Maps.exprVar(lastTopExpr(*R.Prog));
  TypeDisplayOptions Opts;
  Opts.MaxDepth = 1;
  std::string T = TB.typeString(V, Opts);
  EXPECT_NE(T.find("..."), std::string::npos) << T;
  EXPECT_EQ(T.find("(cons 3"), std::string::npos) << T;
  Opts.MaxDepth = 64;
  EXPECT_EQ(TB.typeString(V, Opts), TB.typeString(V));
}

TEST(TypeDisplay, UnitInteriorSuppressed) {
  Parsed R = parseOk("(unit (import w) (export v) (define v 42))");
  Analysis A = analyzeProgram(*R.Prog);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  SetVar V = A.Maps.exprVar(lastTopExpr(*R.Prog));
  TypeDisplayOptions Opts;
  Opts.ShowUnitInterior = false;
  EXPECT_EQ(TB.typeString(V, Opts), "(unit ...)");
}
