//===-- tests/structs_test.cpp - Declared constructors (D.5.4) -*- C++ -*-===//
///
/// define-struct: per-declaration tags and field selectors, precise
/// accessor checks (including wrong-struct detection), runtime behavior,
/// predicate narrowing, type rendering, and soundness.
///
//===----------------------------------------------------------------------===//

#include "debugger/checks.h"
#include "test_util.h"
#include "types/type.h"

using namespace spidey;
using namespace spidey::test;

namespace {

size_t unsafeCount(const std::string &Source) {
  Parsed R = parseOk(Source);
  Analysis A = analyzeProgram(*R.Prog);
  return runChecks(*R.Prog, A.Maps, *A.System).numUnsafe();
}

} // namespace

TEST(Structs, ConstructAndAccess) {
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(point-y (make-point 1 2))"),
            "2");
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(make-point 1 2)"),
            "#(struct 1 2)");
}

TEST(Structs, Predicate) {
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(point? (make-point 1 2))"),
            "#t");
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(point? 5)"),
            "#f");
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(define-struct size (w h))"
                         "(point? (make-size 1 2))"),
            "#f");
}

TEST(Structs, MutationSharesState) {
  EXPECT_EQ(evalToString("(define-struct cell (v))"
                         "(define c (make-cell 1))"
                         "(define alias c)"
                         "(set-cell-v! alias 9)"
                         "(cell-v c)"),
            "9");
}

TEST(Structs, RuntimeFaultOnWrongValue) {
  EXPECT_EQ(runSource("(define-struct point (x y)) (point-x 5)").St,
            RunResult::Status::Fault);
  // Wrong struct kind is also a fault.
  EXPECT_EQ(runSource("(define-struct point (x y))"
                      "(define-struct size (w h))"
                      "(point-x (make-size 1 2))")
                .St,
            RunResult::Status::Fault);
}

TEST(Structs, AnalysisFlowsThroughFields) {
  Parsed R = parseOk("(define-struct pair2 (fst snd))"
                     "(pair2-snd (make-pair2 1 'a))");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_EQ(kindsOf(A, lastTopExpr(*R.Prog)),
            std::vector<std::string>{"sym"});
}

TEST(Structs, MutationFlowsBack) {
  Parsed R = parseOk("(define-struct cell (v))"
                     "(define c (make-cell 1))"
                     "(set-cell-v! c 'sym)"
                     "(cell-v c)");
  Analysis A = analyzeProgram(*R.Prog);
  auto Kinds = kindsOf(A, lastTopExpr(*R.Prog));
  EXPECT_EQ(Kinds, (std::vector<std::string>{"num", "sym"}));
}

TEST(Structs, AccessorChecksArePrecise) {
  // Correct use: zero checks.
  EXPECT_EQ(unsafeCount("(define-struct point (x y))"
                        "(point-x (make-point 1 2))"),
            0u);
  // Wrong kind flagged.
  EXPECT_EQ(unsafeCount("(define-struct point (x y)) (point-x 5)"), 1u);
  // Wrong *struct* flagged even though the kind matches — the per-
  // declaration tags of D.5.4, impossible with pair encodings.
  EXPECT_EQ(unsafeCount("(define-struct point (x y))"
                        "(define-struct size (w h))"
                        "(point-x (make-size 1 2))"),
            1u);
}

TEST(Structs, HuftScenarioFromGunzip) {
  // The §8.2 bug class expressed with structs: a field holding a number
  // in some situations and a struct in others.
  size_t Buggy = unsafeCount(
      "(define-struct huft (bits extra))"
      "(define t1 (make-huft 1 16))"
      "(define t2 (make-huft 2 (make-huft 3 48)))"
      "(define (deep h) (huft-bits (huft-extra h)))"
      "(deep t2) (deep t1)");
  EXPECT_EQ(Buggy, 1u); // huft-bits applied to num ∪ huft
  // Separating the fields repairs it: each construction site has its own
  // field variables, so the nil sentinel in `none`'s sub never reaches
  // the huft-bits accessor applied to t2's sub.
  size_t Fixed = unsafeCount(
      "(define-struct huft (bits base sub))"
      "(define none (make-huft 0 0 '()))"
      "(define t1 (make-huft 1 16 none))"
      "(define t2 (make-huft 2 0 (make-huft 3 48 none)))"
      "(define (deep h) (huft-bits (huft-sub h)))"
      "(deep t2)");
  EXPECT_EQ(Fixed, 0u);
  // And even when the sentinel does flow, the huft? guard narrows it out.
  size_t Clean = unsafeCount(
      "(define-struct huft (bits base sub))"
      "(define (deep h)"
      "  (let ([s (huft-sub h)])"
      "    (if (huft? s) (huft-bits s) (huft-base h))))"
      "(define none (make-huft 0 0 '()))"
      "(deep none)"
      "(deep (make-huft 2 0 (make-huft 3 48 none)))");
  EXPECT_EQ(Clean, 0u);
}

TEST(Structs, PredicateNarrowing) {
  // (point? x) narrows x to structure values in the then branch.
  size_t N = unsafeCount("(define-struct point (x y))"
                         "(define (safe-x v)"
                         "  (if (point? v) (point-x v) 0))"
                         "(safe-x (make-point 1 2)) (safe-x 'not-a-point)");
  EXPECT_EQ(N, 0u);
}

TEST(Structs, TypeRendering) {
  Parsed R = parseOk("(define-struct point (x y))"
                     "(make-point 1 'a)");
  Analysis A = analyzeProgram(*R.Prog);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  std::string T = TB.typeString(A.Maps.exprVar(lastTopExpr(*R.Prog)));
  EXPECT_NE(T.find("(struct:point"), std::string::npos) << T;
  EXPECT_NE(T.find("[x num]"), std::string::npos) << T;
  EXPECT_NE(T.find("[y sym]"), std::string::npos) << T;
}

TEST(Structs, TypeAssertionKind) {
  EXPECT_EQ(unsafeCount("(define-struct point (x y))"
                        "(: (make-point 1 2) struct)"),
            0u);
}

TEST(Structs, FirstClassOperations) {
  // Structure operations eta-expand like primitives.
  EXPECT_EQ(evalToString("(define-struct point (x y))"
                         "(define (map f l)"
                         "  (if (null? l) '() (cons (f (car l))"
                         "                          (map f (cdr l)))))"
                         "(map point-x (list (make-point 1 2)"
                         "                   (make-point 3 4)))"),
            "(1 3)");
}

TEST(Structs, ParserErrors) {
  EXPECT_FALSE(parse("(define-struct)").Ok);
  EXPECT_FALSE(parse("(define-struct p)").Ok);
  EXPECT_FALSE(parse("(define-struct p (1 2))").Ok);
  EXPECT_FALSE(parse("(define-struct point (x))"
                     "(make-point 1 2)")
                   .Ok); // wrong constructor arity is a parse error
  EXPECT_FALSE(parse("(define-struct point (x))"
                     "(define (make-point) 1)")
                   .Ok); // clash with a derived name
}

TEST(Structs, SoundnessUnderTracing) {
  // Reuse the soundness machinery shape inline: every traced observation
  // is predicted, across a struct-heavy program.
  Parsed R = parseOk("(define-struct node (val next))"
                     "(define (build n)"
                     "  (if (zero? n) '() (make-node n (build (sub1 n)))))"
                     "(define (total h)"
                     "  (if (node? h) (+ (node-val h) (total (node-next h)))"
                     "      0))"
                     "(total (build 5))");
  Analysis A = analyzeProgram(*R.Prog);
  Machine M(*R.Prog);
  size_t Violations = 0;
  M.Trace = [&](ExprId E, const Value &V) {
    ConstKind Want = valueAbstractKind(V);
    for (Constant C : A.sba(E))
      if (A.Ctx->Constants.kind(C) == Want)
        return;
    ++Violations;
  };
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Ok);
  EXPECT_EQ(Out.Result.str(R.Prog->Syms), "15");
  EXPECT_EQ(Violations, 0u);
}
