//===-- tests/serve_test.cpp - spidey-serve session tests ------*- C++ -*-===//
///
/// \file
/// The incremental re-analysis daemon: JSON protocol round-trips, warm
/// edits re-deriving only dirtied components, and byte-identity of the
/// warm combined system against a cold whole run at the same options.
///
//===----------------------------------------------------------------------===//

#include "serve/serve.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

const std::vector<SourceFile> ThreeFiles = {
    {"list.ss", "(define (first p) (car p))"
                "(define (second p) (car (cdr p)))"},
    {"data.ss", "(define good (cons 1 (cons 'two '())))"
                "(define bad 42)"},
    {"main.ss", "(define r1 (first good))"
                "(define r2 (second good))"
                "(define r3 (first bad))"},
};

json::Value request(const std::string &Text) {
  std::string Error;
  std::optional<json::Value> V = json::Value::parse(Text, &Error);
  EXPECT_TRUE(V) << Error;
  return V ? *V : json::Value();
}

double num(const json::Value &R, std::string_view Key) {
  const json::Value *M = R.find(Key);
  EXPECT_TRUE(M && M->isNumber()) << "missing number member " << Key;
  return M ? M->asNumber() : -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON plumbing
//===----------------------------------------------------------------------===//

TEST(ServeJson, ParseDumpRoundTrip) {
  const char *Text =
      R"js({"cmd":"edit","file":"a.ss","n":3,"neg":-2.5,"flag":true,)js"
      R"js("none":null,"list":[1,"two",[]],"esc":"a\"b\\c\ndA"})js";
  std::string Error;
  std::optional<json::Value> V = json::Value::parse(Text, &Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->str("cmd"), "edit");
  EXPECT_EQ(V->str("file"), "a.ss");
  EXPECT_EQ(V->find("n")->asNumber(), 3);
  EXPECT_EQ(V->find("neg")->asNumber(), -2.5);
  EXPECT_TRUE(V->find("flag")->asBool());
  EXPECT_TRUE(V->find("none")->isNull());
  EXPECT_EQ(V->find("list")->items().size(), 3u);
  EXPECT_EQ(V->find("esc")->asString(), "a\"b\\c\ndA");
  // Dump → parse is stable (insertion order is preserved).
  std::string Dumped = V->dump();
  std::optional<json::Value> Again = json::Value::parse(Dumped);
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->dump(), Dumped);
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "{\"a\":1}x", "nul",
        "\"unterminated", "{\"a\" 1}"}) {
    std::string Error;
    EXPECT_FALSE(json::Value::parse(Bad, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(ServeJson, NumbersDumpAsIntegersWhenExact) {
  json::Value V = json::Value::object();
  V.set("count", size_t(42));
  V.set("ms", 1.5);
  EXPECT_EQ(V.dump(), "{\"count\":42,\"ms\":1.5}");
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(Serve, AnalyzeEditAnalyzeRederivesOnlyDirtied) {
  ServeSession S({});
  S.setFiles(ThreeFiles);

  json::Value First = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(First.find("ok")->asBool());
  EXPECT_EQ(num(First, "components"), 3);
  EXPECT_EQ(num(First, "rederived"), 3);
  EXPECT_EQ(num(First, "reused"), 0);

  // A clean re-analyze is a no-op: everything already resident.
  json::Value Clean = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_FALSE(Clean.find("reanalyzed")->asBool());

  // Edit main.ss keeping its foreign references: only main.ss rederives.
  json::Value Edit = S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))(define r2 (second good))(define r3 (first bad))(define r4 \"warm\")"})js"));
  ASSERT_TRUE(Edit.find("ok")->asBool()) << Edit.dump();

  json::Value Warm = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(Warm.find("reanalyzed")->asBool());
  EXPECT_EQ(num(Warm, "rederived"), 1);
  EXPECT_EQ(num(Warm, "reused"), 2);
  EXPECT_EQ(num(Warm, "cache_hits"), 2);
  EXPECT_EQ(num(Warm, "cache_invalidations"), 1);
  const json::Value *Per = Warm.find("per_component");
  ASSERT_TRUE(Per && Per->isArray());
  EXPECT_EQ(Per->items()[0].str("cache"), "hit");
  EXPECT_EQ(Per->items()[2].str("cache"), "miss-stale-hash");
}

TEST(Serve, WarmEditMatchesColdRunByteForByte) {
  std::vector<SourceFile> Edited = ThreeFiles;
  Edited[2].Text = "(define r1 (first good))"
                   "(define r2 (second good))"
                   "(define r3 (first bad))"
                   "(define r4 \"warm\")";

  // Warm: analyze, edit one component, re-analyze incrementally.
  ServeSession Warm({});
  Warm.setFiles(ThreeFiles);
  ASSERT_FALSE(Warm.combinedText().empty());
  Warm.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))(define r2 (second good))(define r3 (first bad))(define r4 \"warm\")"})js"));
  std::string WarmText = Warm.combinedText();
  EXPECT_EQ(Warm.lastRun().ComponentsRederived, 1u);
  EXPECT_EQ(Warm.lastRun().ComponentsReused, 2u);

  // Cold: a fresh session over the edited sources, everything rederived.
  ServeSession Cold({});
  Cold.setFiles(Edited);
  std::string ColdText = Cold.combinedText();
  EXPECT_EQ(Cold.lastRun().ComponentsRederived, 3u);

  ASSERT_FALSE(WarmText.empty());
  EXPECT_EQ(WarmText, ColdText);
}

TEST(Serve, FlowAndCheckSummary) {
  ServeSession S({});
  S.setFiles(ThreeFiles);

  json::Value Flow = S.handle(request(R"js({"cmd":"flow","name":"good"})js"));
  ASSERT_TRUE(Flow.find("ok")->asBool()) << Flow.dump();
  const json::Value *Kinds = Flow.find("kinds");
  ASSERT_TRUE(Kinds && Kinds->isArray());
  ASSERT_EQ(Kinds->items().size(), 1u);
  EXPECT_EQ(Kinds->items()[0].asString(), "pair");
  EXPECT_GT(num(Flow, "descendants"), 0);

  json::Value Missing =
      S.handle(request(R"js({"cmd":"flow","name":"no-such"})js"));
  EXPECT_FALSE(Missing.find("ok")->asBool());

  // (first bad) applies car to a num: exactly one unsafe check.
  json::Value Checks = S.handle(request(R"js({"cmd":"check-summary"})js"));
  ASSERT_TRUE(Checks.find("ok")->asBool()) << Checks.dump();
  EXPECT_EQ(num(Checks, "unsafe"), 1);
  EXPECT_NE(Checks.str("summary").find("car check"), std::string::npos);
}

TEST(Serve, StatsAndErrors) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  S.handle(request(R"js({"cmd":"analyze"})js"));

  json::Value Stats = S.handle(request(R"js({"cmd":"stats"})js"));
  EXPECT_TRUE(Stats.find("ok")->asBool());
  EXPECT_EQ(num(Stats, "analyzes"), 1);
  EXPECT_EQ(num(Stats, "components_rederived"), 3);
  EXPECT_EQ(num(Stats, "store_entries"), 3);
  EXPECT_GT(num(Stats, "store_bytes"), 0);

  EXPECT_FALSE(
      S.handle(request(R"js({"cmd":"edit","file":"nope.ss"})js")).find("ok")->asBool());
  EXPECT_FALSE(S.handle(request(R"js({"cmd":"wat"})js")).find("ok")->asBool());
  EXPECT_FALSE(S.handle(request(R"js({"x":1})js")).find("ok")->asBool());

  // A broken edit surfaces the parse diagnostics, and the session
  // recovers once the source is fixed.
  S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (oops"})js"));
  json::Value Broken = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_FALSE(Broken.find("ok")->asBool());
  EXPECT_FALSE(Broken.str("error").empty());
  S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))"})js"));
  EXPECT_TRUE(
      S.handle(request(R"js({"cmd":"analyze"})js")).find("ok")->asBool());

  // handleLine rejects garbage without dying.
  EXPECT_NE(S.handleLine("not json").find("\"ok\":false"), std::string::npos);

  json::Value Bye = S.handle(request(R"js({"cmd":"shutdown"})js"));
  EXPECT_TRUE(Bye.find("ok")->asBool());
  EXPECT_TRUE(S.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Hostile input
//===----------------------------------------------------------------------===//

// Every hostile line gets a structured refusal with a *stable* machine-
// readable code — clients branch on these, so the table pins them down —
// and the session keeps serving afterwards.
TEST(ServeHostile, StructuredErrorCodesAreStable) {
  struct Case {
    const char *Line;
    const char *Code;
  };
  const Case Cases[] = {
      // Transport garbage.
      {"", "bad-json"},
      {"not json at all", "bad-json"},
      {"{\"cmd\":\"analyze\"", "bad-json"},
      {"{\"cmd\":\"analyze\"}trailing", "bad-json"},
      // Valid JSON, wrong shape.
      {"[1,2,3]", "bad-request"},
      {"42", "bad-request"},
      {"\"analyze\"", "bad-request"},
      {"null", "bad-request"},
      {"{}", "bad-request"},
      {"{\"verb\":\"analyze\"}", "bad-request"},
      // Mistyped or unknown commands.
      {"{\"cmd\":42}", "bad-cmd"},
      {"{\"cmd\":null}", "bad-cmd"},
      {"{\"cmd\":[\"analyze\"]}", "bad-cmd"},
      {"{\"cmd\":\"analyse\"}", "unknown-cmd"},
      {"{\"cmd\":\"\"}", "unknown-cmd"},
      // Well-formed commands with hostile fields.
      {"{\"cmd\":\"edit\"}", "bad-field"},
      {"{\"cmd\":\"edit\",\"file\":7}", "bad-field"},
      {"{\"cmd\":\"edit\",\"file\":\"nope.ss\",\"text\":\"x\"}",
       "unknown-file"},
      {"{\"cmd\":\"edit\",\"file\":\"main.ss\",\"text\":[]}", "bad-field"},
      {"{\"cmd\":\"flow\"}", "bad-field"},
      {"{\"cmd\":\"flow\",\"name\":3}", "bad-field"},
      {"{\"cmd\":\"flow\",\"name\":\"no-such\"}", "unknown-name"},
      {"{\"cmd\":\"configure\",\"deadline_ms\":\"fast\"}", "bad-field"},
      {"{\"cmd\":\"configure\",\"deadline_ms\":-5}", "bad-field"},
      // Out of uint64 range: converting would be undefined behavior.
      {"{\"cmd\":\"configure\",\"deadline_ms\":1e300}", "bad-field"},
      {"{\"cmd\":\"configure\",\"max_constraints\":2e19}", "bad-field"},
      {"{\"cmd\":\"configure\",\"faults\":\"no-such-site=1\"}", "bad-field"},
      {"{\"cmd\":\"configure\",\"faults\":17}", "bad-field"},
  };

  ServeSession S({});
  S.setFiles(ThreeFiles);
  for (const Case &C : Cases) {
    std::string Resp = S.handleLine(C.Line);
    std::string Error;
    std::optional<json::Value> R = json::Value::parse(Resp, &Error);
    ASSERT_TRUE(R) << "unparseable response to '" << C.Line << "': " << Resp;
    const json::Value *Ok = R->find("ok");
    ASSERT_TRUE(Ok && Ok->isBool()) << C.Line;
    EXPECT_FALSE(Ok->asBool()) << C.Line;
    EXPECT_EQ(R->str("code"), C.Code) << C.Line << " -> " << Resp;
    EXPECT_FALSE(R->str("error").empty()) << C.Line;
  }
  // None of it hurt the session: hostile input is an answered request,
  // not an internal error, and real work still succeeds.
  EXPECT_EQ(S.totals().InternalErrors, 0u);
  EXPECT_EQ(S.totals().Errors, sizeof(Cases) / sizeof(*Cases));
  EXPECT_TRUE(
      S.handle(request(R"js({"cmd":"analyze"})js")).find("ok")->asBool());
}

TEST(ServeHostile, LineTooLongResponseIsStructured) {
  std::string Resp = ServeSession::lineTooLongResponse(1 << 20);
  std::optional<json::Value> R = json::Value::parse(Resp);
  ASSERT_TRUE(R) << Resp;
  EXPECT_FALSE(R->find("ok")->asBool());
  EXPECT_EQ(R->str("code"), "line-too-long");
  EXPECT_NE(R->str("error").find("1048576"), std::string::npos);
}

TEST(ServeHostile, DegradedFlagAbsentOnHealthyRuns) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  json::Value R = S.handle(request(R"js({"cmd":"analyze"})js"));
  ASSERT_TRUE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("degraded"), nullptr);
  EXPECT_EQ(R.find("unconverged"), nullptr);
}
