//===-- tests/serve_test.cpp - spidey-serve session tests ------*- C++ -*-===//
///
/// \file
/// The incremental re-analysis daemon: JSON protocol round-trips, warm
/// edits re-deriving only dirtied components, and byte-identity of the
/// warm combined system against a cold whole run at the same options.
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "constraints/const_kind.h"
#include "debugger/flow.h"
#include "serve/serve.h"
#include "test_util.h"

#include <algorithm>

using namespace spidey;
using namespace spidey::test;

namespace {

const std::vector<SourceFile> ThreeFiles = {
    {"list.ss", "(define (first p) (car p))"
                "(define (second p) (car (cdr p)))"},
    {"data.ss", "(define good (cons 1 (cons 'two '())))"
                "(define bad 42)"},
    {"main.ss", "(define r1 (first good))"
                "(define r2 (second good))"
                "(define r3 (first bad))"},
};

json::Value request(const std::string &Text) {
  std::string Error;
  std::optional<json::Value> V = json::Value::parse(Text, &Error);
  EXPECT_TRUE(V) << Error;
  return V ? *V : json::Value();
}

double num(const json::Value &R, std::string_view Key) {
  const json::Value *M = R.find(Key);
  EXPECT_TRUE(M && M->isNumber()) << "missing number member " << Key;
  return M ? M->asNumber() : -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON plumbing
//===----------------------------------------------------------------------===//

TEST(ServeJson, ParseDumpRoundTrip) {
  const char *Text =
      R"js({"cmd":"edit","file":"a.ss","n":3,"neg":-2.5,"flag":true,)js"
      R"js("none":null,"list":[1,"two",[]],"esc":"a\"b\\c\ndA"})js";
  std::string Error;
  std::optional<json::Value> V = json::Value::parse(Text, &Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->str("cmd"), "edit");
  EXPECT_EQ(V->str("file"), "a.ss");
  EXPECT_EQ(V->find("n")->asNumber(), 3);
  EXPECT_EQ(V->find("neg")->asNumber(), -2.5);
  EXPECT_TRUE(V->find("flag")->asBool());
  EXPECT_TRUE(V->find("none")->isNull());
  EXPECT_EQ(V->find("list")->items().size(), 3u);
  EXPECT_EQ(V->find("esc")->asString(), "a\"b\\c\ndA");
  // Dump → parse is stable (insertion order is preserved).
  std::string Dumped = V->dump();
  std::optional<json::Value> Again = json::Value::parse(Dumped);
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->dump(), Dumped);
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "{\"a\":1}x", "nul",
        "\"unterminated", "{\"a\" 1}"}) {
    std::string Error;
    EXPECT_FALSE(json::Value::parse(Bad, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(ServeJson, NumbersDumpAsIntegersWhenExact) {
  json::Value V = json::Value::object();
  V.set("count", size_t(42));
  V.set("ms", 1.5);
  EXPECT_EQ(V.dump(), "{\"count\":42,\"ms\":1.5}");
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(Serve, AnalyzeEditAnalyzeRederivesOnlyDirtied) {
  ServeSession S({});
  S.setFiles(ThreeFiles);

  json::Value First = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(First.find("ok")->asBool());
  EXPECT_EQ(num(First, "components"), 3);
  EXPECT_EQ(num(First, "rederived"), 3);
  EXPECT_EQ(num(First, "reused"), 0);

  // A clean re-analyze is a no-op: everything already resident.
  json::Value Clean = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_FALSE(Clean.find("reanalyzed")->asBool());

  // Edit main.ss keeping its foreign references: only main.ss rederives.
  json::Value Edit = S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))(define r2 (second good))(define r3 (first bad))(define r4 \"warm\")"})js"));
  ASSERT_TRUE(Edit.find("ok")->asBool()) << Edit.dump();

  json::Value Warm = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(Warm.find("reanalyzed")->asBool());
  EXPECT_EQ(num(Warm, "rederived"), 1);
  EXPECT_EQ(num(Warm, "reused"), 2);
  EXPECT_EQ(num(Warm, "cache_hits"), 2);
  // The store is content-addressed (componentStoreKey), so the edited
  // component's probe simply misses — its new source hash forms a new
  // key; the old image is never *found* and re-validated. Stale-hash
  // invalidation still exists on the name-keyed disk-cache path.
  EXPECT_EQ(num(Warm, "cache_invalidations"), 0);
  EXPECT_EQ(num(Warm, "cache_misses"), 1);
  const json::Value *Per = Warm.find("per_component");
  ASSERT_TRUE(Per && Per->isArray());
  EXPECT_EQ(Per->items()[0].str("cache"), "hit");
  EXPECT_EQ(Per->items()[2].str("cache"), "miss-no-entry");
}

TEST(Serve, ByteIdenticalEditKeepsSessionClean) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  ASSERT_TRUE(
      S.handle(request(R"js({"cmd":"analyze"})js")).find("ok")->asBool());

  // Re-sending the file's current text is a no-op: nothing to re-derive,
  // the session stays clean, and the warm query generation survives.
  json::Value NoOp = S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))(define r2 (second good))(define r3 (first bad))"})js"));
  ASSERT_TRUE(NoOp.find("ok")->asBool()) << NoOp.dump();
  ASSERT_TRUE(NoOp.find("changed"));
  EXPECT_FALSE(NoOp.find("changed")->asBool(true));
  EXPECT_EQ(S.totals().Edits, 1u);

  json::Value After = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(After.find("ok")->asBool());
  EXPECT_FALSE(After.find("reanalyzed")->asBool(true));

  // A real edit still dirties and reports so.
  json::Value Real = S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))"})js"));
  ASSERT_TRUE(Real.find("ok")->asBool());
  EXPECT_TRUE(Real.find("changed")->asBool(false));
  json::Value Again = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_TRUE(Again.find("reanalyzed")->asBool(false));
}

TEST(Serve, WarmEditMatchesColdRunByteForByte) {
  std::vector<SourceFile> Edited = ThreeFiles;
  Edited[2].Text = "(define r1 (first good))"
                   "(define r2 (second good))"
                   "(define r3 (first bad))"
                   "(define r4 \"warm\")";

  // Warm: analyze, edit one component, re-analyze incrementally.
  ServeSession Warm({});
  Warm.setFiles(ThreeFiles);
  ASSERT_FALSE(Warm.combinedText().empty());
  Warm.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))(define r2 (second good))(define r3 (first bad))(define r4 \"warm\")"})js"));
  std::string WarmText = Warm.combinedText();
  EXPECT_EQ(Warm.lastRun().ComponentsRederived, 1u);
  EXPECT_EQ(Warm.lastRun().ComponentsReused, 2u);

  // Cold: a fresh session over the edited sources, everything rederived.
  ServeSession Cold({});
  Cold.setFiles(Edited);
  std::string ColdText = Cold.combinedText();
  EXPECT_EQ(Cold.lastRun().ComponentsRederived, 3u);

  ASSERT_FALSE(WarmText.empty());
  EXPECT_EQ(WarmText, ColdText);
}

TEST(Serve, FlowAndCheckSummary) {
  ServeSession S({});
  S.setFiles(ThreeFiles);

  json::Value Flow = S.handle(request(R"js({"cmd":"flow","name":"good"})js"));
  ASSERT_TRUE(Flow.find("ok")->asBool()) << Flow.dump();
  const json::Value *Kinds = Flow.find("kinds");
  ASSERT_TRUE(Kinds && Kinds->isArray());
  ASSERT_EQ(Kinds->items().size(), 1u);
  EXPECT_EQ(Kinds->items()[0].asString(), "pair");
  EXPECT_GT(num(Flow, "descendants"), 0);

  json::Value Missing =
      S.handle(request(R"js({"cmd":"flow","name":"no-such"})js"));
  EXPECT_FALSE(Missing.find("ok")->asBool());

  // (first bad) applies car to a num: exactly one unsafe check.
  json::Value Checks = S.handle(request(R"js({"cmd":"check-summary"})js"));
  ASSERT_TRUE(Checks.find("ok")->asBool()) << Checks.dump();
  EXPECT_EQ(num(Checks, "unsafe"), 1);
  EXPECT_NE(Checks.str("summary").find("car check"), std::string::npos);
}

TEST(Serve, StatsAndErrors) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  S.handle(request(R"js({"cmd":"analyze"})js"));

  json::Value Stats = S.handle(request(R"js({"cmd":"stats"})js"));
  EXPECT_TRUE(Stats.find("ok")->asBool());
  EXPECT_EQ(num(Stats, "analyzes"), 1);
  EXPECT_EQ(num(Stats, "components_rederived"), 3);
  EXPECT_EQ(num(Stats, "store_entries"), 3);
  EXPECT_GT(num(Stats, "store_bytes"), 0);

  EXPECT_FALSE(
      S.handle(request(R"js({"cmd":"edit","file":"nope.ss"})js")).find("ok")->asBool());
  EXPECT_FALSE(S.handle(request(R"js({"cmd":"wat"})js")).find("ok")->asBool());
  EXPECT_FALSE(S.handle(request(R"js({"x":1})js")).find("ok")->asBool());

  // A broken edit surfaces the parse diagnostics, and the session
  // recovers once the source is fixed.
  S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (oops"})js"));
  json::Value Broken = S.handle(request(R"js({"cmd":"analyze"})js"));
  EXPECT_FALSE(Broken.find("ok")->asBool());
  EXPECT_FALSE(Broken.str("error").empty());
  S.handle(request(
      R"js({"cmd":"edit","file":"main.ss","text":"(define r1 (first good))"})js"));
  EXPECT_TRUE(
      S.handle(request(R"js({"cmd":"analyze"})js")).find("ok")->asBool());

  // handleLine rejects garbage without dying.
  EXPECT_NE(S.handleLine("not json").find("\"ok\":false"), std::string::npos);

  json::Value Bye = S.handle(request(R"js({"cmd":"shutdown"})js"));
  EXPECT_TRUE(Bye.find("ok")->asBool());
  EXPECT_TRUE(S.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Hostile input
//===----------------------------------------------------------------------===//

// Every hostile line gets a structured refusal with a *stable* machine-
// readable code — clients branch on these, so the table pins them down —
// and the session keeps serving afterwards.
TEST(ServeHostile, StructuredErrorCodesAreStable) {
  struct Case {
    const char *Line;
    const char *Code;
  };
  const Case Cases[] = {
      // Transport garbage.
      {"", "bad-json"},
      {"not json at all", "bad-json"},
      {"{\"cmd\":\"analyze\"", "bad-json"},
      {"{\"cmd\":\"analyze\"}trailing", "bad-json"},
      // Valid JSON, wrong shape.
      {"[1,2,3]", "bad-request"},
      {"42", "bad-request"},
      {"\"analyze\"", "bad-request"},
      {"null", "bad-request"},
      {"{}", "bad-request"},
      {"{\"verb\":\"analyze\"}", "bad-request"},
      // Mistyped or unknown commands.
      {"{\"cmd\":42}", "bad-cmd"},
      {"{\"cmd\":null}", "bad-cmd"},
      {"{\"cmd\":[\"analyze\"]}", "bad-cmd"},
      {"{\"cmd\":\"analyse\"}", "unknown-cmd"},
      {"{\"cmd\":\"\"}", "unknown-cmd"},
      // Well-formed commands with hostile fields.
      {"{\"cmd\":\"edit\"}", "bad-field"},
      {"{\"cmd\":\"edit\",\"file\":7}", "bad-field"},
      {"{\"cmd\":\"edit\",\"file\":\"nope.ss\",\"text\":\"x\"}",
       "unknown-file"},
      {"{\"cmd\":\"edit\",\"file\":\"main.ss\",\"text\":[]}", "bad-field"},
      {"{\"cmd\":\"flow\"}", "bad-field"},
      {"{\"cmd\":\"flow\",\"name\":3}", "bad-field"},
      {"{\"cmd\":\"flow\",\"name\":\"no-such\"}", "unknown-name"},
      {"{\"cmd\":\"configure\",\"deadline_ms\":\"fast\"}", "bad-field"},
      {"{\"cmd\":\"configure\",\"deadline_ms\":-5}", "bad-field"},
      // Out of uint64 range: converting would be undefined behavior.
      {"{\"cmd\":\"configure\",\"deadline_ms\":1e300}", "bad-field"},
      {"{\"cmd\":\"configure\",\"max_constraints\":2e19}", "bad-field"},
      // Fractional limits: silently truncating 1.5ms to 1ms would honor
      // a deadline the client never asked for.
      {"{\"cmd\":\"configure\",\"deadline_ms\":1.5}", "bad-field"},
      {"{\"cmd\":\"configure\",\"max_constraints\":0.25}", "bad-field"},
      {"{\"cmd\":\"configure\",\"max_store_bytes\":99.9}", "bad-field"},
      {"{\"cmd\":\"configure\",\"faults\":\"no-such-site=1\"}", "bad-field"},
      {"{\"cmd\":\"configure\",\"faults\":17}", "bad-field"},
      // The multi-tenant "open" command's hostile shapes.
      {"{\"cmd\":\"open\"}", "bad-field"},
      {"{\"cmd\":\"open\",\"files\":\"main.ss\"}", "bad-field"},
      {"{\"cmd\":\"open\",\"files\":[42]}", "bad-field"},
      {"{\"cmd\":\"open\",\"files\":[\"/no/such/file.ss\"]}",
       "unknown-file"},
  };

  ServeSession S({});
  S.setFiles(ThreeFiles);
  for (const Case &C : Cases) {
    std::string Resp = S.handleLine(C.Line);
    std::string Error;
    std::optional<json::Value> R = json::Value::parse(Resp, &Error);
    ASSERT_TRUE(R) << "unparseable response to '" << C.Line << "': " << Resp;
    const json::Value *Ok = R->find("ok");
    ASSERT_TRUE(Ok && Ok->isBool()) << C.Line;
    EXPECT_FALSE(Ok->asBool()) << C.Line;
    EXPECT_EQ(R->str("code"), C.Code) << C.Line << " -> " << Resp;
    EXPECT_FALSE(R->str("error").empty()) << C.Line;
  }
  // None of it hurt the session: hostile input is an answered request,
  // not an internal error, and real work still succeeds.
  EXPECT_EQ(S.totals().InternalErrors, 0u);
  EXPECT_EQ(S.totals().Errors, sizeof(Cases) / sizeof(*Cases));
  EXPECT_TRUE(
      S.handle(request(R"js({"cmd":"analyze"})js")).find("ok")->asBool());
}

TEST(ServeHostile, LineTooLongResponseIsStructured) {
  std::string Resp = ServeSession::lineTooLongResponse(1 << 20);
  std::optional<json::Value> R = json::Value::parse(Resp);
  ASSERT_TRUE(R) << Resp;
  EXPECT_FALSE(R->find("ok")->asBool());
  EXPECT_EQ(R->str("code"), "line-too-long");
  EXPECT_NE(R->str("error").find("1048576"), std::string::npos);
}

TEST(ServeHostile, DegradedFlagAbsentOnHealthyRuns) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  json::Value R = S.handle(request(R"js({"cmd":"analyze"})js"));
  ASSERT_TRUE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("degraded"), nullptr);
  EXPECT_EQ(R.find("unconverged"), nullptr);
}

//===----------------------------------------------------------------------===//
// Demand-driven queries (DESIGN.md §12)
//===----------------------------------------------------------------------===//

namespace {

/// What the pre-demand-driven flow path reported: a fresh reference
/// analyzer (same deterministic numbering as the session) and a fresh
/// FlowGraph per query.
struct FlowRef {
  SetVar Var = NoSetVar;
  std::vector<std::string> Kinds;
  size_t Parents = 0, Children = 0, Ancestors = 0, Descendants = 0;
};

FlowRef flowReference(const std::vector<SourceFile> &Files,
                      const std::string &Name) {
  FlowRef F;
  Parsed PR = parseFiles(Files);
  EXPECT_TRUE(PR.Ok) << PR.Diags.str();
  if (!PR.Ok)
    return F;
  ComponentialOptions CO;
  CO.Threads = 1;
  CO.MergeViaFiles = true;
  ComponentialAnalyzer CA(*PR.Prog, CO);
  CA.run();
  for (VarId V = 0; V < PR.Prog->numVars(); ++V) {
    const VarInfo &Info = PR.Prog->var(V);
    if (!Info.TopLevel || PR.Prog->Syms.name(Info.Name) != Name)
      continue;
    const ConstraintSystem &S = CA.combined();
    F.Var = CA.maps().varVar(V);
    for (Constant C : S.constantsOf(F.Var))
      F.Kinds.push_back(constKindName(S.context().Constants.kind(C)));
    std::sort(F.Kinds.begin(), F.Kinds.end());
    F.Kinds.erase(std::unique(F.Kinds.begin(), F.Kinds.end()), F.Kinds.end());
    FlowGraph FG(S);
    F.Parents = FG.parents(F.Var).size();
    F.Children = FG.children(F.Var).size();
    F.Ancestors = FG.ancestors(F.Var).size();
    F.Descendants = FG.descendants(F.Var).size();
    break; // first definition wins, matching the serve lookup
  }
  return F;
}

/// Asserts one flow response carries exactly the reference payload.
void expectFlowMatches(const json::Value &R, const FlowRef &F,
                       const std::string &Name) {
  ASSERT_TRUE(R.find("ok")->asBool()) << Name << ": " << R.dump();
  EXPECT_EQ(R.find("degraded"), nullptr) << Name;
  EXPECT_EQ(num(R, "var"), double(F.Var)) << Name;
  EXPECT_EQ(num(R, "parents"), double(F.Parents)) << Name;
  EXPECT_EQ(num(R, "children"), double(F.Children)) << Name;
  EXPECT_EQ(num(R, "ancestors"), double(F.Ancestors)) << Name;
  EXPECT_EQ(num(R, "descendants"), double(F.Descendants)) << Name;
  const json::Value *Kinds = R.find("kinds");
  ASSERT_TRUE(Kinds && Kinds->isArray()) << Name;
  std::vector<std::string> Got;
  for (const json::Value &K : Kinds->items())
    Got.push_back(K.asString());
  EXPECT_EQ(Got, F.Kinds) << Name;
}

} // namespace

// Table-driven payloads: every top-level name of the three-file program,
// cold and memoized-warm, against the per-request FlowGraph path the
// query engine replaced.
TEST(ServeQuery, FlowPayloadsMatchReferenceAnalyzer) {
  const char *Names[] = {"first", "second", "good", "bad", "r1", "r2", "r3"};
  ServeSession S({});
  S.setFiles(ThreeFiles);
  for (const char *Name : Names) {
    FlowRef F = flowReference(ThreeFiles, std::string(Name));
    json::Value Req = json::Value::object();
    Req.set("cmd", "flow");
    Req.set("name", std::string(Name));
    json::Value Cold = S.handle(Req);
    expectFlowMatches(Cold, F, Name);
    EXPECT_EQ(Cold.find("memoized"), nullptr) << Name;
    // The warm repeat is served from the region-summary memo — and must
    // be payload-identical.
    json::Value Warm = S.handle(Req);
    expectFlowMatches(Warm, F, Name);
    ASSERT_NE(Warm.find("memoized"), nullptr) << Name;
    EXPECT_TRUE(Warm.find("memoized")->asBool()) << Name;
  }
}

// The legacy path resolved a flow name by scanning every program variable
// per request; the engine builds one Name -> VarId index per generation
// and answers even the last-defined name through it. The stats counters
// pin the regression: many queries, one name-index build, one flow-index
// build.
TEST(ServeQuery, LateBoundNameUsesOneNameIndexBuild) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  // "r3" is the last top-level definition of the last file — the worst
  // case for the old ascending scan.
  for (int I = 0; I < 8; ++I) {
    json::Value R = S.handle(request(R"js({"cmd":"flow","name":"r3"})js"));
    ASSERT_TRUE(R.find("ok")->asBool()) << R.dump();
  }
  S.handle(request(R"js({"cmd":"flow","name":"first"})js"));
  json::Value Stats = S.handle(request(R"js({"cmd":"stats"})js"));
  EXPECT_EQ(num(Stats, "name_index_builds"), 1);
  EXPECT_EQ(num(Stats, "flow_index_builds"), 1);
  EXPECT_EQ(num(Stats, "flow_queries"), 9);
  EXPECT_GE(num(Stats, "flow_memo_hits"), 7);
}

// The incremental summary: a self-contained edit to one component must
// re-check exactly that component, and the reassembled summary must be
// byte-identical to a cold session over the edited sources.
TEST(ServeQuery, SummaryRechecksExactlyTheEditedComponent) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  json::Value Cold = S.handle(request(R"js({"cmd":"check-summary"})js"));
  ASSERT_TRUE(Cold.find("ok")->asBool()) << Cold.dump();
  EXPECT_EQ(num(Cold, "components_rechecked"), 3);
  EXPECT_EQ(num(Cold, "components_reused"), 0);

  // Warm repeat: nothing changed, every verdict reused.
  json::Value Warm = S.handle(request(R"js({"cmd":"check-summary"})js"));
  EXPECT_EQ(num(Warm, "components_rechecked"), 0);
  EXPECT_EQ(num(Warm, "components_reused"), 3);
  EXPECT_EQ(Warm.str("summary"), Cold.str("summary"));

  // Append a self-contained define to main.ss: one component dirtied,
  // one component rechecked.
  std::vector<SourceFile> Edited = ThreeFiles;
  Edited[2].Text += "(define probe \"q\")";
  json::Value Req = json::Value::object();
  Req.set("cmd", "edit");
  Req.set("file", Edited[2].Name);
  Req.set("text", Edited[2].Text);
  ASSERT_TRUE(S.handle(Req).find("ok")->asBool());
  json::Value AfterEdit = S.handle(request(R"js({"cmd":"check-summary"})js"));
  ASSERT_TRUE(AfterEdit.find("ok")->asBool()) << AfterEdit.dump();
  EXPECT_EQ(num(AfterEdit, "components_rechecked"), 1);
  EXPECT_EQ(num(AfterEdit, "components_reused"), 2);

  ServeSession Fresh({});
  Fresh.setFiles(Edited);
  json::Value Ref = Fresh.handle(request(R"js({"cmd":"check-summary"})js"));
  EXPECT_EQ(AfterEdit.str("summary"), Ref.str("summary"));
  EXPECT_EQ(num(AfterEdit, "possible"), num(Ref, "possible"));
  EXPECT_EQ(num(AfterEdit, "unsafe"), num(Ref, "unsafe"));
}

// A flow query against a generation whose analyze was cut short answers
// over the partial system with degraded:true instead of failing; lifting
// the budget recovers the exact payload. The program is a long cons
// chain so a one-unit budget actually trips the closure's poll stride.
TEST(ServeQuery, FlowAfterDegradedAnalyzeRecoversExactly) {
  std::string Chain = "(define c0 (cons 1 2))";
  for (int I = 1; I < 150; ++I)
    Chain += "(define c" + std::to_string(I) + " (cons c" +
             std::to_string(I - 1) + " c" + std::to_string(I - 1) + "))";
  std::vector<SourceFile> Files = {{"chain.ss", Chain},
                                   {"top.ss", "(define top (car c149))"}};
  ServeOptions O;
  O.Threads = 1;
  ServeSession S(O);
  S.setFiles(Files);
  FlowRef F = flowReference(Files, "top");
  json::Value Exact = S.handle(request(R"js({"cmd":"flow","name":"top"})js"));
  expectFlowMatches(Exact, F, "top");

  // Dirty the session, then strangle the analyze budget: the next flow
  // rides a degraded generation. The volatile generation never reads the
  // memo, so the stale exact answer cannot leak through.
  std::vector<SourceFile> Edited = Files;
  Edited[1].Text = "(define top (car c149))(define extra (cdr c149))";
  json::Value EditReq = json::Value::object();
  EditReq.set("cmd", "edit");
  EditReq.set("file", Edited[1].Name);
  EditReq.set("text", Edited[1].Text);
  ASSERT_TRUE(S.handle(EditReq).find("ok")->asBool());
  S.handle(request(R"js({"cmd":"configure","max_constraints":1})js"));
  json::Value Degraded =
      S.handle(request(R"js({"cmd":"flow","name":"top"})js"));
  ASSERT_TRUE(Degraded.find("ok")->asBool()) << Degraded.dump();
  ASSERT_NE(Degraded.find("degraded"), nullptr) << Degraded.dump();
  EXPECT_TRUE(Degraded.find("degraded")->asBool());
  EXPECT_EQ(Degraded.find("memoized"), nullptr) << Degraded.dump();

  // Budget restored: clean re-analyze, exact answer over the edited
  // program.
  S.handle(request(R"js({"cmd":"configure","max_constraints":0})js"));
  json::Value Recovered =
      S.handle(request(R"js({"cmd":"flow","name":"top"})js"));
  expectFlowMatches(Recovered, flowReference(Edited, "top"), "top");
}

// Mid-walk cancellation: the analyze is clean and in budget, but the
// reachability walk itself trips the work budget. The response is still
// well-formed and the next in-budget query is exact.
TEST(ServeQuery, MidQueryCancellationDegradesThenRecovers) {
  ServeSession S({});
  S.setFiles(ThreeFiles);
  // Analyze (and memoize "good") with no limits armed.
  json::Value Exact = S.handle(request(R"js({"cmd":"flow","name":"good"})js"));
  expectFlowMatches(Exact, flowReference(ThreeFiles, "good"), "good");

  // A one-unit budget: the analyze is a no-op (session clean), so only
  // the walk charges it. "r2" has not been queried yet — no memo to
  // answer from — and its walk visits more than one variable, so it
  // degrades with partial counts and is not memoized.
  S.handle(request(R"js({"cmd":"configure","max_constraints":1})js"));
  json::Value Degraded = S.handle(request(R"js({"cmd":"flow","name":"r2"})js"));
  ASSERT_TRUE(Degraded.find("ok")->asBool()) << Degraded.dump();
  ASSERT_NE(Degraded.find("degraded"), nullptr) << Degraded.dump();
  EXPECT_EQ(Degraded.find("memoized"), nullptr);

  S.handle(request(R"js({"cmd":"configure","max_constraints":0})js"));
  json::Value Recovered =
      S.handle(request(R"js({"cmd":"flow","name":"r2"})js"));
  expectFlowMatches(Recovered, flowReference(ThreeFiles, "r2"), "r2");

  json::Value Stats = S.handle(request(R"js({"cmd":"stats"})js"));
  EXPECT_GE(num(Stats, "query_degraded"), 1);
}
