//===-- tests/robustness_test.cpp - Failure-injection tests ----*- C++ -*-===//
///
/// Failure injection: corrupted/truncated constraint files, stale caches,
/// entailment budget exhaustion, and parser error resilience. The library
/// must degrade gracefully (fall back to re-derivation, report Unknown,
/// collect diagnostics) rather than crash or silently mis-analyze.
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "constraints/serialize.h"
#include "rtg/entail.h"
#include "test_util.h"

#include <filesystem>
#include <fstream>

using namespace spidey;
using namespace spidey::test;

namespace {

std::string serializeSample(ConstraintContext &Ctx, SymbolTable &Syms) {
  ConstraintSystem S(Ctx);
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  S.addConstLower(A, Ctx.Constants.basic(ConstKind::Num));
  S.addVarUpper(A, B);
  S.addSelLower(B, Ctx.Rng, A);
  S.addSelUpper(B, Ctx.dom(0), A);
  S.addFilterUpper(A, kindBit(ConstKind::Num), B);
  return serializeConstraints(S, {{"a", A}, {"b", B}}, Syms, "h", "fp");
}

} // namespace

TEST(Robustness, TruncatedConstraintFilesRejected) {
  ConstraintContext Ctx;
  SymbolTable Syms;
  std::string Text = serializeSample(Ctx, Syms);
  // Every strict prefix must be rejected or parse without crashing;
  // prefixes cut before the constraint section can never yield all the
  // constraints.
  size_t ConstraintSection = Text.find("\nconstraints");
  for (size_t Cut = 0; Cut < Text.size(); Cut += 7) {
    ConstraintContext Ctx2;
    ConstraintSystem Out(Ctx2);
    LoadedConstraints Info;
    std::string Error;
    bool Ok = deserializeConstraints(Text.substr(0, Cut), Syms, Out, Info,
                                     Error);
    if (Cut < ConstraintSection) {
      EXPECT_FALSE(Ok && Out.size() > 0) << "cut at " << Cut;
    }
  }
  // The full text round-trips with every constraint intact.
  ConstraintContext Ctx3;
  ConstraintSystem Out(Ctx3);
  LoadedConstraints Info;
  std::string Error;
  EXPECT_TRUE(deserializeConstraints(Text, Syms, Out, Info, Error)) << Error;
  EXPECT_EQ(Out.size(), 6u); // 5 written + 1 closure-derived before saving
}

TEST(Robustness, CorruptedFieldsRejected) {
  ConstraintContext Ctx;
  SymbolTable Syms;
  std::string Text = serializeSample(Ctx, Syms);
  auto Expect = [&](const std::string &Mutated) {
    ConstraintContext Ctx2;
    ConstraintSystem Out(Ctx2);
    LoadedConstraints Info;
    std::string Error;
    EXPECT_FALSE(deserializeConstraints(Mutated, Syms, Out, Info, Error));
    EXPECT_FALSE(Error.empty());
  };
  Expect("wrong-magic 2\n" + Text.substr(Text.find("hash")));
  Expect("spidey-constraint-file 999\n" + Text.substr(Text.find("hash")));
  {
    // Missing options line (a version-1 file) is rejected, not misparsed.
    std::string T = Text;
    size_t P = T.find("options ");
    ASSERT_NE(P, std::string::npos);
    size_t End = T.find('\n', P);
    T.erase(P, End - P + 1);
    Expect(T);
  }
  {
    // Out-of-range variable index.
    std::string T = Text;
    size_t P = T.rfind("vu ");
    if (P != std::string::npos)
      T.replace(P, 5, "vu 99");
    Expect(T);
  }
  {
    // Bad constraint op.
    std::string T = Text;
    size_t P = T.rfind("cl ");
    if (P != std::string::npos)
      T.replace(P, 2, "zz");
    Expect(T);
  }
}

TEST(Robustness, HostileConstraintFilesRejectedWithDiagnostic) {
  ConstraintContext Ctx;
  SymbolTable Syms;
  std::string Text = serializeSample(Ctx, Syms);
  // Every mutation below must be rejected with a non-empty diagnostic —
  // and in particular must not crash (SelectorTable::intern asserts
  // polarity consistency, so a raw intern of a flipped selector aborts).
  auto Expect = [&](const std::string &Mutated, const char *What) {
    ConstraintContext Ctx2;
    ConstraintSystem Out(Ctx2);
    LoadedConstraints Info;
    std::string Error;
    EXPECT_FALSE(deserializeConstraints(Mutated, Syms, Out, Info, Error))
        << What;
    EXPECT_FALSE(Error.empty()) << What;
  };
  auto Replace = [&](const std::string &From, const std::string &To) {
    std::string T = Text;
    size_t P = T.find(From);
    EXPECT_NE(P, std::string::npos) << From;
    T.replace(P, From.size(), To);
    return T;
  };

  // Duplicate external entries.
  Expect(Replace("  a ", "  b "), "duplicate external key");
  // Out-of-range variable id in an external entry.
  {
    std::string T = Text;
    size_t P = T.find("  a ");
    ASSERT_NE(P, std::string::npos);
    T.replace(P, 5, "  a 7"); // sample has fewer than 8 vars
    Expect(T, "external var id out of range");
  }
  // Unknown selector name.
  Expect(Replace("  rng +", "  wat +"), "unknown selector");
  // Known selector with flipped polarity (would trip the intern assert).
  Expect(Replace("  rng +", "  rng -"), "selector polarity mismatch");
  Expect(Replace("  dom0 -", "  dom0 +"), "dom polarity mismatch");
  // Other format versions (past or future) are rejected, not misparsed.
  Expect(Replace("spidey-constraint-file 2", "spidey-constraint-file 1"),
         "old version");
  Expect(Replace("spidey-constraint-file 2", "spidey-constraint-file 3"),
         "future version");
  Expect(Replace("spidey-constraint-file 2", "spidey-constraint-file 999"),
         "far-future version");
}

TEST(Robustness, SelectorFamiliesRoundTrip) {
  // Every selector family the deriver can emit serializes and loads back.
  ConstraintContext Ctx;
  SymbolTable Syms;
  ConstraintSystem S(Ctx);
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  std::vector<Selector> Sels = {
      Ctx.Rng,
      Ctx.Car,
      Ctx.Cdr,
      Ctx.BoxPlus,
      Ctx.BoxMinus,
      Ctx.VecPlus,
      Ctx.VecMinus,
      Ctx.Ue,
      Ctx.Ui,
      Ctx.ClObj,
      Ctx.dom(0),
      Ctx.dom(3),
      Ctx.ivarPlus(Syms.intern("count"), Syms),
      Ctx.ivarMinus(Syms.intern("count"), Syms),
      Ctx.Selectors.intern("sfld+point.x", Polarity::Monotone,
                           kindBit(ConstKind::StructTag)),
      Ctx.Selectors.intern("sfld-point.x", Polarity::AntiMonotone,
                           kindBit(ConstKind::StructTag)),
  };
  for (Selector Sel : Sels) {
    if (Ctx.Selectors.isMonotone(Sel))
      S.addSelLowerRaw(A, Sel, B);
    else
      S.addSelUpperRaw(A, Sel, B);
  }
  std::string Text = serializeConstraints(S, {{"a", A}}, Syms, "h", "fp");
  ConstraintContext Ctx2;
  ConstraintSystem Out(Ctx2);
  LoadedConstraints Info;
  std::string Error;
  ASSERT_TRUE(deserializeConstraints(Text, Syms, Out, Info, Error)) << Error;
  EXPECT_EQ(Out.size(), S.size());
}

TEST(Robustness, GarbageCacheFileFallsBackToDerivation) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_garbage_cache").string();
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  Parsed R = parseFiles({{"only.ss", "(define v (cons 1 2))"}});
  ComponentialOptions Opts;
  Opts.CacheDir = Dir;
  // Plant a garbage cache file where the component's file would live.
  {
    std::ofstream Out(Dir + "/" + componentCacheFileName("only.ss"));
    Out << "total nonsense\n";
  }
  ComponentialAnalyzer CA(*R.Prog, Opts);
  CA.run();
  EXPECT_FALSE(CA.componentStats()[0].ReusedFile);
  // And the analysis is still right.
  SetVar V = CA.maps().varVar(R.Prog->Components[0].Forms[0].DefVar);
  auto Full = CA.reconstruct(0);
  auto Consts = Full->constantsOf(V);
  ASSERT_EQ(Consts.size(), 1u);
  EXPECT_EQ(CA.context().Constants.kind(Consts[0]), ConstKind::Pair);
  fs::remove_all(Dir);
}

TEST(Robustness, StaleHashForcesRederivation) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "spidey_stale_cache").string();
  fs::remove_all(Dir);
  {
    Parsed R = parseFiles({{"c.ss", "(define v 1)"}});
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
  }
  {
    Parsed R = parseFiles({{"c.ss", "(define v 'changed)"}});
    ComponentialOptions Opts;
    Opts.CacheDir = Dir;
    ComponentialAnalyzer CA(*R.Prog, Opts);
    CA.run();
    EXPECT_FALSE(CA.componentStats()[0].ReusedFile);
  }
  fs::remove_all(Dir);
}

TEST(Robustness, EntailmentBudgetReportsUnknown) {
  // A system large enough that a 1-node budget exhausts immediately.
  ConstraintContext Ctx;
  ConstraintSystem S(Ctx);
  std::vector<SetVar> E;
  for (int I = 0; I < 6; ++I) {
    SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
    S.addSelLower(A, Ctx.Rng, B);
    S.addSelLower(B, Ctx.Rng, A);
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Num));
    E.push_back(A);
  }
  EntailOptions Opts;
  Opts.NodeBudget = 1;
  EXPECT_EQ(entails(S, S, E, Opts), Decision::Unknown);
  // With a real budget the self-entailment holds.
  EXPECT_EQ(entails(S, S, E), Decision::Yes);
}

TEST(Robustness, ParserCollectsDiagnosticsWithoutCrashing) {
  const char *BadPrograms[] = {
      "(",
      ")",
      "(define)",
      "(lambda)",
      "(lambda x x)",
      "(let ([x]) x)",
      "(letrec x)",
      "(if)",
      "(cond [else 1] [#t 2])",
      "(unit (export nope))",
      "(invoke 1 2)",
      "(class)",
      "(ivar 1)",
      "(set-ivar! 1 2)",
      "(: 1 2 3)",
      "(quote)",
      "((()))",
      "#\\toolong",
      "\"unterminated",
  };
  for (const char *Source : BadPrograms) {
    Parsed R = parse(Source);
    EXPECT_FALSE(R.Ok) << Source;
    EXPECT_TRUE(R.Diags.hasErrors()) << Source;
  }
}

TEST(Robustness, MachineSurvivesPathologicalPrograms) {
  // Self-application and other classics terminate via fuel or faults, not
  // crashes.
  {
    Parsed R = parseOk("((lambda (f) (f f)) (lambda (f) (f f)))");
    Machine M(*R.Prog);
    M.setFuel(50'000);
    EXPECT_EQ(M.runProgram().St, RunResult::Status::OutOfFuel);
  }
  {
    Parsed R = parseOk("(define (grow l) (grow (cons 1 l))) (grow '())");
    Machine M(*R.Prog);
    M.setFuel(50'000);
    EXPECT_EQ(M.runProgram().St, RunResult::Status::OutOfFuel);
  }
}

TEST(Robustness, AnalysisOfPathologicalProgramsTerminates) {
  // The analysis is total even where evaluation diverges.
  Parsed R = parseOk("((lambda (f) (f f)) (lambda (f) (f f)))");
  Analysis A = analyzeProgram(*R.Prog);
  EXPECT_GT(A.System->size(), 0u);
  Parsed R2 = parseOk("(define (grow l) (grow (cons 1 l))) (grow '())");
  Analysis A2 = analyzeProgram(*R2.Prog);
  EXPECT_EQ(kindsOf(A2, lastTopExpr(*R2.Prog)), std::vector<std::string>{})
      << "grow never returns";
}
