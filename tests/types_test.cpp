//===-- tests/types_test.cpp - MkType and type reductions ------*- C++ -*-===//

#include "test_util.h"
#include "types/type.h"

using namespace spidey;
using namespace spidey::test;

namespace {

/// Analyzes a program and renders the type of its last top-level
/// expression.
std::string typeOfLast(const std::string &Source) {
  Parsed R = parseOk(Source);
  Analysis A = analyzeProgram(*R.Prog);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  return TB.typeString(A.Maps.exprVar(lastTopExpr(*R.Prog)));
}

} // namespace

TEST(Types, Basics) {
  EXPECT_EQ(typeOfLast("42"), "num");
  EXPECT_EQ(typeOfLast("#t"), "true");
  EXPECT_EQ(typeOfLast("'x"), "sym");
  EXPECT_EQ(typeOfLast("'()"), "nil");
}

TEST(Types, BottomForNonReturning) {
  EXPECT_EQ(typeOfLast("(error \"x\")"), "empty");
}

TEST(Types, UnionOfBranches) {
  EXPECT_EQ(typeOfLast("(if #t 1 'a)"), "(union num sym)");
}

TEST(Types, BooleanUnion) {
  EXPECT_EQ(typeOfLast("(pair? 1)"), "(union false true)");
}

TEST(Types, PairType) {
  EXPECT_EQ(typeOfLast("(cons 1 'a)"), "(cons num sym)");
  EXPECT_EQ(typeOfLast("(cons (cons 1 2) '())"), "(cons (cons num num) nil)");
}

TEST(Types, FunctionType) {
  EXPECT_EQ(typeOfLast("(define (f x) (+ x 1)) (f 3) f"), "(num -> num)");
}

TEST(Types, UnappliedFunctionHasEmptyDomain) {
  EXPECT_EQ(typeOfLast("(lambda (x) x)"), "(empty -> empty)");
}

TEST(Types, TwoArgumentFunction) {
  EXPECT_EQ(typeOfLast("(define (k a b) a) (k 1 'x) k"),
            "(num sym -> num)");
}

TEST(Types, BoxType) {
  EXPECT_EQ(typeOfLast("(box 5)"), "(box num)");
  EXPECT_EQ(typeOfLast("(let ([b (box 5)])"
                       "  (begin (set-box! b 'a) b))"),
            "(box (union num sym))");
}

TEST(Types, VectorType) {
  EXPECT_EQ(typeOfLast("(vector 1 2)"), "(vec num)");
}

TEST(Types, RecursiveListType) {
  // A recursive list type needs a rec binder.
  std::string T = typeOfLast("(define (build n)"
                             "  (if (zero? n) '() (cons n (build (sub1 n)))))"
                             "(build 5)");
  EXPECT_NE(T.find("(rec ("), std::string::npos) << T;
  EXPECT_NE(T.find("(cons num"), std::string::npos) << T;
  EXPECT_NE(T.find("nil"), std::string::npos) << T;
}

TEST(Types, SumSsTreeInvariant) {
  // The chapter-1 example: tree may be nil, num, or the ill-formed pairs.
  Parsed R = parseOk("(define (sum tree)"
                     "  (if (number? tree)"
                     "      tree"
                     "      (+ (sum (car tree)) (sum (cdr tree)))))"
                     "(sum (cons (cons '() 1) 2))");
  Analysis A = analyzeProgram(*R.Prog);
  const Expr &Sum = R.Prog->expr(R.Prog->Components[0].Forms[0].Body);
  TypeBuilder TB(*A.System, R.Prog->Syms);
  std::string T = TB.typeString(A.Maps.varVar(Sum.Params[0]));
  // The paper's figure 1.2 invariant: (union (cons (cons nil num) num)
  // (cons nil num) nil) — plus num since leaves flow through too.
  EXPECT_NE(T.find("nil"), std::string::npos) << T;
  EXPECT_NE(T.find("(cons"), std::string::npos) << T;
  EXPECT_NE(T.find("num"), std::string::npos) << T;
}

TEST(Types, ObjectType) {
  std::string T =
      typeOfLast("(make-obj (class object% () [x 1] [y 'a]))");
  EXPECT_NE(T.find("(obj"), std::string::npos) << T;
  EXPECT_NE(T.find("[x num]"), std::string::npos) << T;
  EXPECT_NE(T.find("[y sym]"), std::string::npos) << T;
}

TEST(Types, UnitType) {
  std::string T = typeOfLast("(unit (import w) (export v)"
                             "      (define v 42))");
  EXPECT_NE(T.find("(unit"), std::string::npos) << T;
  EXPECT_NE(T.find("num"), std::string::npos) << T;
}

TEST(Types, DuplicateUnionMembersMerged) {
  EXPECT_EQ(typeOfLast("(if #t 1 2)"), "num");
}

TEST(Types, SharedStructureInlinesCleanly) {
  EXPECT_EQ(typeOfLast("(let ([p (cons 1 2)]) (cons p p))"),
            "(cons (cons num num) (cons num num))");
}

TEST(Types, ContinuationShowsAsFunction) {
  std::string T = typeOfLast("(define (f k) (k 1))"
                             "(call/cc (lambda (k) (f k) 'done))");
  // k is a continuation taking num; result includes both num and sym.
  EXPECT_NE(T.find("union"), std::string::npos) << T;
}
