//===-- tests/prims_test.cpp - Primitive table coverage --------*- C++ -*-===//
///
/// Table-driven coverage of every primitive (App. E.5): each entry runs a
/// sample application, checks the produced value, and asserts the
/// analysis's prediction for the call covers the runtime result — i.e.
/// each PrimSpec's result mask and shape are consistent with the
/// evaluator.
///
//===----------------------------------------------------------------------===//

#include "debugger/checks.h"
#include "test_util.h"

using namespace spidey;
using namespace spidey::test;

namespace {

struct PrimCase {
  const char *Source;
  const char *Expected;
  const char *Input = "";
};

class PrimTableTest : public ::testing::TestWithParam<PrimCase> {};

} // namespace

TEST_P(PrimTableTest, RunsAndIsPredicted) {
  const PrimCase &Case = GetParam();
  Parsed R = parseOk(Case.Source);
  ASSERT_TRUE(R.Ok);
  Analysis A = analyzeProgram(*R.Prog);

  Machine M(*R.Prog);
  M.setInput(Case.Input);
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Ok)
      << Case.Source << ": " << Out.Message;
  EXPECT_EQ(Out.Result.str(R.Prog->Syms), Case.Expected) << Case.Source;

  // The analysis must predict the result's kind at the top expression.
  ConstKind Want = valueAbstractKind(Out.Result);
  bool Covered = false;
  for (Constant C : A.sba(lastTopExpr(*R.Prog)))
    Covered |= A.Ctx->Constants.kind(C) == Want;
  EXPECT_TRUE(Covered) << Case.Source << " result kind "
                       << constKindName(Want) << " not predicted";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrims, PrimTableTest,
    ::testing::Values(
        // Pairs.
        PrimCase{"(cons 1 2)", "(1 . 2)"},
        PrimCase{"(car (cons 1 2))", "1"},
        PrimCase{"(cdr (cons 1 2))", "2"},
        PrimCase{"(pair? (cons 1 2))", "#t"},
        PrimCase{"(null? '())", "#t"},
        PrimCase{"(list 1 'a \"s\")", "(1 a \"s\")"},
        // Boxes.
        PrimCase{"(box 1)", "#&1"},
        PrimCase{"(unbox (box 'x))", "x"},
        PrimCase{"(let ([b (box 0)]) (set-box! b 9))", "9"},
        PrimCase{"(box? 5)", "#f"},
        // Vectors.
        PrimCase{"(make-vector 2 'z)", "#(z z)"},
        PrimCase{"(vector 1 2)", "#(1 2)"},
        PrimCase{"(vector-ref (vector 7 8) 1)", "8"},
        PrimCase{"(let ([v (vector 0)]) (vector-set! v 0 5))", "#<void>"},
        PrimCase{"(vector-length (vector 1 2 3))", "3"},
        PrimCase{"(vector? (vector))", "#t"},
        // Arithmetic.
        PrimCase{"(+ 1 2 3)", "6"},
        PrimCase{"(- 9 4)", "5"},
        PrimCase{"(* 3 4)", "12"},
        PrimCase{"(/ 8 2)", "4"},
        PrimCase{"(quotient 9 2)", "4"},
        PrimCase{"(remainder 9 2)", "1"},
        PrimCase{"(modulo -9 2)", "1"},
        PrimCase{"(min 4 2 8)", "2"},
        PrimCase{"(max 4 2 8)", "8"},
        PrimCase{"(abs -3)", "3"},
        PrimCase{"(floor 3.7)", "3"},
        PrimCase{"(add1 1)", "2"},
        PrimCase{"(sub1 1)", "0"},
        PrimCase{"(zero? 0)", "#t"},
        PrimCase{"(< 1 2)", "#t"},
        PrimCase{"(> 1 2)", "#f"},
        PrimCase{"(<= 2 2)", "#t"},
        PrimCase{"(>= 1 2)", "#f"},
        PrimCase{"(= 3 3)", "#t"},
        PrimCase{"(number? 'a)", "#f"},
        PrimCase{"(bitwise-and 6 3)", "2"},
        PrimCase{"(bitwise-ior 6 3)", "7"},
        PrimCase{"(bitwise-xor 6 3)", "5"},
        PrimCase{"(arithmetic-shift 3 2)", "12"},
        PrimCase{"(< (random 10) 10)", "#t"},
        // Predicates / equality.
        PrimCase{"(not #f)", "#t"},
        PrimCase{"(boolean? #t)", "#t"},
        PrimCase{"(symbol? 'a)", "#t"},
        PrimCase{"(string? \"s\")", "#t"},
        PrimCase{"(char? #\\a)", "#t"},
        PrimCase{"(procedure? (lambda (x) x))", "#t"},
        PrimCase{"(procedure? (call/cc (lambda (k) k)))", "#t"},
        PrimCase{"(eof-object? (read-char))", "#t"},
        PrimCase{"(eq? 'a 'a)", "#t"},
        PrimCase{"(equal? (list 1) (list 1))", "#t"},
        // Strings / chars.
        PrimCase{"(string-length \"abc\")", "3"},
        PrimCase{"(string-append \"a\" \"b\")", "\"ab\""},
        PrimCase{"(substring \"hello\" 1 4)", "\"ell\""},
        PrimCase{"(string-ref \"xy\" 0)", "#\\x"},
        PrimCase{"(string=? \"a\" \"b\")", "#f"},
        PrimCase{"(number->string 12)", "\"12\""},
        PrimCase{"(string->number \"3.5\")", "3.5"},
        PrimCase{"(string->number \"zzz\")", "#f"},
        PrimCase{"(symbol->string 'hey)", "\"hey\""},
        PrimCase{"(string->symbol \"dyn\")", "dyn"},
        PrimCase{"(char->integer #\\A)", "65"},
        PrimCase{"(integer->char 66)", "#\\B"},
        // I/O.
        PrimCase{"(begin (display 1) (newline) 'done)", "done"},
        PrimCase{"(read-line)", "\"alpha\"", "alpha\nbeta"},
        PrimCase{"(read-char)", "#\\q", "q"},
        PrimCase{"(peek-char)", "#\\q", "q"}));

namespace {

/// Every checked primitive faults on its canonical bad argument, and the
/// fault site is always flagged by the debugger (exhaustive variant of the
/// soundness suite's spot checks).
struct FaultCase {
  const char *Source;
};

class PrimFaultTest : public ::testing::TestWithParam<FaultCase> {};

} // namespace

TEST_P(PrimFaultTest, FaultsAndIsFlagged) {
  const FaultCase &Case = GetParam();
  Parsed R = parseOk(Case.Source);
  Analysis A = analyzeProgram(*R.Prog);
  Machine M(*R.Prog);
  RunResult Out = M.runProgram();
  ASSERT_EQ(Out.St, RunResult::Status::Fault) << Case.Source;
  DebugReport Rep = runChecks(*R.Prog, A.Maps, *A.System);
  bool Flagged = false;
  for (const CheckResult &C : Rep.Results)
    Flagged |= C.Site == Out.FaultSite && !C.Safe;
  EXPECT_TRUE(Flagged) << Case.Source;
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, PrimFaultTest,
    ::testing::Values(FaultCase{"(car 'a)"}, FaultCase{"(cdr 1)"},
                      FaultCase{"(unbox \"s\")"},
                      FaultCase{"(set-box! 1 2)"},
                      FaultCase{"(make-vector 'n)"},
                      FaultCase{"(vector-ref '() 0)"},
                      FaultCase{"(vector-set! 'v 0 1)"},
                      FaultCase{"(vector-length 0)"},
                      FaultCase{"(+ 1 'a)"}, FaultCase{"(- \"x\")"},
                      FaultCase{"(* 1 #t)"}, FaultCase{"(/ 'a 1)"},
                      FaultCase{"(quotient #f 1)"},
                      FaultCase{"(abs 'a)"}, FaultCase{"(add1 \"1\")"},
                      FaultCase{"(zero? 'z)"}, FaultCase{"(< 1 'two)"},
                      FaultCase{"(bitwise-and 'a 1)"},
                      FaultCase{"(arithmetic-shift #t 1)"},
                      FaultCase{"(string-length 'sym)"},
                      FaultCase{"(string-append \"a\" 5)"},
                      FaultCase{"(substring 5 0 1)"},
                      FaultCase{"(string-ref 'a 0)"},
                      FaultCase{"(string=? \"a\" 'a)"},
                      FaultCase{"(number->string \"5\")"},
                      FaultCase{"(string->number 5)"},
                      FaultCase{"(symbol->string \"s\")"},
                      FaultCase{"(string->symbol 'already)"},
                      FaultCase{"(char->integer 97)"},
                      FaultCase{"(integer->char #\\a)"}));
