//===-- tests/query_test.cpp - Demand-driven query layer -----------------===//
//
// The query subsystem behind serve's flow / check-summary commands
// (DESIGN.md §12): the persistent FlowIndex must agree edge-for-edge with
// the per-request FlowGraph browser it replaced, reachability must honor
// the cancellation token, and the QueryEngine's memoized answers must be
// byte-identical to the legacy whole-program paths.
//
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "debugger/checks.h"
#include "debugger/flow.h"
#include "query/flow_index.h"
#include "query/query_engine.h"

#include "test_util.h"

#include <gtest/gtest.h>

using namespace spidey;
using namespace spidey::test;

namespace {

/// Asserts every count the index reports equals the browser's, for every
/// variable of the (closed) system — the equivalence the serve loop's
/// sublinear path rests on.
void expectIndexMatchesGraph(const ConstraintSystem &S) {
  FlowGraph FG(S);
  FlowIndex FI;
  FI.build(S);
  for (SetVar V : S.variables()) {
    EXPECT_EQ(FI.parents(V).size(), FG.parents(V).size()) << "var " << V;
    EXPECT_EQ(FI.children(V).size(), FG.children(V).size()) << "var " << V;
    FlowIndex::Reach Anc = FI.ancestors(V, nullptr);
    FlowIndex::Reach Desc = FI.descendants(V, nullptr);
    EXPECT_TRUE(Anc.Complete);
    EXPECT_TRUE(Desc.Complete);
    EXPECT_EQ(Anc.Count, FG.ancestors(V).size()) << "var " << V;
    EXPECT_EQ(Desc.Count, FG.descendants(V).size()) << "var " << V;
  }
}

TEST(FlowIndex, MatchesFlowGraphOnHandBuiltSystem) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  // A diamond with a filter edge, a self-contained pair, and an isolated
  // variable: a ≤ b, a ≤ c, b ≤ d, c ≤ d (filtered), e ≤ f.
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar(), C = Ctx.freshVar();
  SetVar D = Ctx.freshVar(), E = Ctx.freshVar(), F = Ctx.freshVar();
  Ctx.freshVar(); // isolated
  S.addConstLower(A, Ctx.Constants.basic(ConstKind::Num));
  S.addVarUpper(A, B);
  S.addVarUpper(A, C);
  S.addVarUpper(B, D);
  S.addFilterUpper(C, kindBit(ConstKind::Num), D);
  S.addVarUpper(E, F);
  expectIndexMatchesGraph(S);

  FlowIndex FI;
  FI.build(S);
  EXPECT_EQ(FI.children(A).size(), 2u);
  EXPECT_EQ(FI.parents(D).size(), 2u);
  EXPECT_EQ(FI.descendants(A, nullptr).Count, 3u); // b, c, d — not a itself
  EXPECT_EQ(FI.ancestors(D, nullptr).Count, 3u);
  EXPECT_EQ(FI.descendants(F, nullptr).Count, 0u);
  // Out-of-range probes (NoSetVar) answer empty, not UB.
  EXPECT_EQ(FI.children(NoSetVar).size(), 0u);
  EXPECT_EQ(FI.parents(NoSetVar).size(), 0u);
  FlowIndex::Reach R = FI.descendants(NoSetVar, nullptr);
  EXPECT_TRUE(R.Complete);
  EXPECT_EQ(R.Count, 0u);
}

TEST(FlowIndex, MatchesFlowGraphOnAnalyzedProgram) {
  std::vector<SourceFile> Files = {
      {"lib.ss", "(define (twice f x) (f (f x)))\n"
                 "(define (inc n) (+ n 1))\n"},
      {"main.ss", "(define four (twice inc 2))\n"
                  "(define pair (cons four '()))\n"
                  "(display (car pair))\n"}};
  Parsed PR = parseFiles(Files);
  ASSERT_TRUE(PR.Ok) << PR.Diags.str();
  ComponentialOptions CO;
  CO.Threads = 1;
  ComponentialAnalyzer CA(*PR.Prog, CO);
  CA.run();
  expectIndexMatchesGraph(CA.combined());
}

TEST(FlowIndex, RebuildAfterClearMatchesAgain) {
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  SetVar A = Ctx.freshVar(), B = Ctx.freshVar();
  S.addVarUpper(A, B);
  FlowIndex FI;
  FI.build(S);
  ASSERT_TRUE(FI.built());
  FI.clear();
  EXPECT_FALSE(FI.built());
  EXPECT_EQ(FI.children(A).size(), 0u);
  S.addVarUpper(B, A); // now a cycle
  FI.build(S);
  // The start variable is excluded even when a cycle leads back to it,
  // matching FlowGraph's ancestors/descendants contract.
  EXPECT_EQ(FI.descendants(A, nullptr).Count, FlowGraph(S).descendants(A).size());
  EXPECT_EQ(FI.descendants(A, nullptr).Count, 1u);
}

TEST(FlowIndex, CancellationReturnsPartialCountThenRecovers) {
  // A 64-node chain: a0 ≤ a1 ≤ ... ≤ a63. A tiny budget must cut the
  // walk short (Complete=false, partial count); a disarmed token must
  // then see the full chain.
  ConstraintContext Ctx;
  ConstraintSystem S{Ctx};
  constexpr unsigned N = 64;
  std::vector<SetVar> Vars;
  for (unsigned I = 0; I < N; ++I)
    Vars.push_back(Ctx.freshVar());
  for (unsigned I = 0; I + 1 < N; ++I)
    S.addVarUpper(Vars[I], Vars[I + 1]);
  FlowIndex FI;
  FI.build(S);

  CancelToken Tok;
  Tok.rearm(/*DeadlineMs=*/0, /*BudgetUnits=*/5);
  FlowIndex::Reach Partial = FI.descendants(Vars[0], &Tok);
  EXPECT_FALSE(Partial.Complete);
  EXPECT_LT(Partial.Count, N - 1);
  EXPECT_TRUE(Tok.cancelled());

  Tok.rearm(0, 0); // disarm: the same token must serve a full walk again
  FlowIndex::Reach Full = FI.descendants(Vars[0], &Tok);
  EXPECT_TRUE(Full.Complete);
  EXPECT_EQ(Full.Count, size_t(N - 1));
  EXPECT_EQ(FI.ancestors(Vars[N - 1], &Tok).Count, size_t(N - 1));
}

//===----------------------------------------------------------------------===
// QueryEngine against the legacy whole-program paths.
//===----------------------------------------------------------------------===

struct QueryEngineTest : ::testing::Test {
  std::vector<SourceFile> Files = {
      {"a.ss", "(define one 1)\n"
               "(define (add x y) (+ x y))\n"},
      {"b.ss", "(define three (add one 2))\n"
               "(define lst (cons three '()))\n"},
      {"c.ss", "(display (car lst))\n"
               "(display (car three))\n"}}; // (car three): unsafe check

  Parsed PR;
  std::unique_ptr<ComponentialAnalyzer> CA;
  QueryEngine QE;

  void analyze() {
    PR = parseFiles(Files);
    ASSERT_TRUE(PR.Ok) << PR.Diags.str();
    ComponentialOptions CO;
    CO.Threads = 1;
    CO.MergeViaFiles = true;
    CA = std::make_unique<ComponentialAnalyzer>(*PR.Prog, CO);
    CA->run();
    QE.rebind(*PR.Prog, *CA, /*Tok=*/nullptr, /*Volatile=*/false,
              /*AllowVerdictCache=*/true, CA->optionsFingerprint());
  }

  /// The pre-demand-driven summary: a full reconstruct sweep.
  DebugReport legacySweep() {
    DebugReport Report;
    for (uint32_t I = 0; I < PR.Prog->Components.size(); ++I) {
      std::unique_ptr<ConstraintSystem> Full = CA->reconstruct(I);
      DebugReport Part = runChecks(*PR.Prog, CA->maps(), *Full);
      for (CheckResult &CR : Part.Results)
        if (CR.Loc.File == I)
          Report.Results.push_back(std::move(CR));
    }
    return Report;
  }
};

TEST_F(QueryEngineTest, FlowMatchesFlowGraphForEveryTopLevelName) {
  analyze();
  const ConstraintSystem &S = CA->combined();
  FlowGraph FG(S);
  for (VarId V = 0; V < PR.Prog->numVars(); ++V) {
    const VarInfo &Info = PR.Prog->var(V);
    if (!Info.TopLevel)
      continue;
    std::string Name = PR.Prog->Syms.name(Info.Name);
    QueryEngine::FlowAnswer Ans = QE.flow(Name);
    ASSERT_TRUE(Ans.Found) << Name;
    EXPECT_FALSE(Ans.Degraded);
    SetVar A = CA->maps().varVar(V);
    if (Ans.Var != A)
      continue; // a shadowing later definition; first wins
    EXPECT_EQ(Ans.Parents, FG.parents(A).size()) << Name;
    EXPECT_EQ(Ans.Children, FG.children(A).size()) << Name;
    EXPECT_EQ(Ans.Ancestors, FG.ancestors(A).size()) << Name;
    EXPECT_EQ(Ans.Descendants, FG.descendants(A).size()) << Name;
  }
  EXPECT_FALSE(QE.flow("query-test-no-such-name").Found);
  // One index build and one name-index build served every query above.
  EXPECT_EQ(QE.stats().IndexBuilds, 1u);
  EXPECT_EQ(QE.stats().NameIndexBuilds, 1u);
}

TEST_F(QueryEngineTest, SummaryBytesMatchLegacySweep) {
  analyze();
  DebugReport Legacy = legacySweep();
  QueryEngine::SummaryAnswer Ans = QE.checkSummary();
  EXPECT_FALSE(Ans.Partial);
  EXPECT_EQ(Ans.Possible, Legacy.numPossible());
  EXPECT_EQ(Ans.Unsafe, Legacy.numUnsafe());
  EXPECT_GT(Ans.Unsafe, 0u) << "(car three) should flag";
  EXPECT_EQ(Ans.Summary, Legacy.summary(*PR.Prog));
  EXPECT_EQ(Ans.Rechecked, PR.Prog->Components.size());
  EXPECT_EQ(Ans.Reused, 0u);
}

TEST_F(QueryEngineTest, WarmSummaryReusesEveryVerdict) {
  analyze();
  QueryEngine::SummaryAnswer Cold = QE.checkSummary();
  QueryEngine::SummaryAnswer Warm = QE.checkSummary();
  EXPECT_EQ(Warm.Summary, Cold.Summary);
  EXPECT_EQ(Warm.Rechecked, 0u);
  EXPECT_EQ(Warm.Reused, PR.Prog->Components.size());
}

TEST_F(QueryEngineTest, EditRechecksExactlyTheDirtiedComponent) {
  analyze();
  QE.checkSummary();
  // Append a self-contained define to the last file: no other component's
  // source or external regions change, so exactly one recheck.
  Files.back().Text += "(define query-probe 42)\n";
  analyze(); // fresh generation, same engine — memo caches survive rebind
  QueryEngine::SummaryAnswer Ans = QE.checkSummary();
  EXPECT_EQ(Ans.Rechecked, 1u);
  EXPECT_EQ(Ans.Reused, PR.Prog->Components.size() - 1);
  EXPECT_EQ(Ans.Summary, legacySweep().summary(*PR.Prog));
}

TEST_F(QueryEngineTest, InterfaceEditInvalidatesDependentVerdicts) {
  analyze();
  QE.checkSummary();
  // Changing `one` to a pair changes the region feeding add/three/lst:
  // every dependent component must be rechecked, and the new summary must
  // still match the legacy sweep (the (car three) complaint disappears —
  // three is now built from a pair-typed operand, still a num via +, but
  // the digests over its region changed either way).
  Files[0].Text = "(define one 1)\n"
                  "(define (add x y) (+ x y))\n"
                  "(define extra (cons 1 '()))\n";
  analyze();
  QueryEngine::SummaryAnswer Ans = QE.checkSummary();
  EXPECT_GE(Ans.Rechecked, 1u);
  EXPECT_EQ(Ans.Summary, legacySweep().summary(*PR.Prog));
}

TEST_F(QueryEngineTest, FlowMemoHitsAcrossGenerations) {
  analyze();
  QueryEngine::FlowAnswer First = QE.flow("one");
  ASSERT_TRUE(First.Found);
  EXPECT_FALSE(First.FromSummary);

  // Same generation: the memo answers.
  QueryEngine::FlowAnswer Again = QE.flow("one");
  EXPECT_TRUE(Again.FromSummary);
  EXPECT_EQ(Again.Var, First.Var);
  EXPECT_EQ(Again.Ancestors, First.Ancestors);

  // A new generation with identical sources: digests are stable, so the
  // memo still answers without touching the flow index.
  analyze();
  uint64_t HitsBefore = QE.stats().FlowMemoHits;
  QueryEngine::FlowAnswer Warm = QE.flow("one");
  EXPECT_TRUE(Warm.FromSummary);
  EXPECT_EQ(QE.stats().FlowMemoHits, HitsBefore + 1);
  EXPECT_EQ(Warm.Descendants, First.Descendants);
}

TEST_F(QueryEngineTest, VolatileGenerationNeverTouchesMemo) {
  analyze();
  QE.checkSummary();
  QE.flow("one");
  uint64_t HitsBefore = QE.stats().FlowMemoHits;
  uint64_t ReusedBefore = QE.stats().VerdictsReused;
  // Rebind the same generation as volatile (the degraded-analyze path):
  // answers still flow, but no memo reads or writes.
  QE.rebind(*PR.Prog, *CA, nullptr, /*Volatile=*/true,
            /*AllowVerdictCache=*/true, CA->optionsFingerprint());
  QueryEngine::FlowAnswer Ans = QE.flow("one");
  EXPECT_TRUE(Ans.Found);
  EXPECT_FALSE(Ans.FromSummary);
  QueryEngine::SummaryAnswer Sum = QE.checkSummary();
  EXPECT_EQ(Sum.Reused, 0u);
  EXPECT_EQ(QE.stats().FlowMemoHits, HitsBefore);
  EXPECT_EQ(QE.stats().VerdictsReused, ReusedBefore);
  // Back to non-volatile: the caches are intact and answer again.
  QE.rebind(*PR.Prog, *CA, nullptr, /*Volatile=*/false,
            /*AllowVerdictCache=*/true, CA->optionsFingerprint());
  EXPECT_TRUE(QE.flow("one").FromSummary);
}

TEST_F(QueryEngineTest, CancelledFlowDegradesThenRecoversExactly) {
  PR = parseFiles(Files);
  ASSERT_TRUE(PR.Ok) << PR.Diags.str();
  ComponentialOptions CO;
  CO.Threads = 1;
  CO.MergeViaFiles = true;
  CA = std::make_unique<ComponentialAnalyzer>(*PR.Prog, CO);
  CA->run();
  CancelToken Tok;
  QE.rebind(*PR.Prog, *CA, &Tok, /*Volatile=*/false,
            /*AllowVerdictCache=*/true, CA->optionsFingerprint());

  Tok.rearm(0, 0);
  QueryEngine::FlowAnswer Exact = QE.flow("three");
  ASSERT_TRUE(Exact.Found);
  ASSERT_FALSE(Exact.Degraded);

  // A pre-cancelled token degrades the walk; the answer is not memoized.
  Tok.rearm(0, 1);
  Tok.cancel();
  QueryEngine::FlowAnswer Degraded = QE.flow("lst");
  EXPECT_TRUE(Degraded.Found);
  EXPECT_TRUE(Degraded.Degraded);
  EXPECT_FALSE(Degraded.FromSummary);
  EXPECT_GE(QE.stats().DegradedQueries, 1u);

  // Next in-budget query: exact again, and exact equals the first run.
  Tok.rearm(0, 0);
  QueryEngine::FlowAnswer Recovered = QE.flow("three");
  EXPECT_FALSE(Recovered.Degraded);
  EXPECT_EQ(Recovered.Ancestors, Exact.Ancestors);
  EXPECT_EQ(Recovered.Descendants, Exact.Descendants);

  // A cancelled summary sweep answers partial and completes next time.
  Tok.cancel();
  QueryEngine::SummaryAnswer Partial = QE.checkSummary();
  EXPECT_TRUE(Partial.Partial);
  Tok.rearm(0, 0);
  QueryEngine::SummaryAnswer Full = QE.checkSummary();
  EXPECT_FALSE(Full.Partial);
  EXPECT_EQ(Full.Summary, legacySweep().summary(*PR.Prog));
}

} // namespace
