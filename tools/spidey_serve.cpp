//===-- tools/spidey_serve.cpp - Incremental analysis daemon ---*- C++ -*-===//
///
/// \file
/// The `spidey-serve` daemon: keeps componential analysis state resident
/// and answers newline-delimited JSON requests, re-deriving only the
/// components an edit actually dirtied.
///
///   spidey-serve a.ss b.ss main.ss        # serve requests on stdin/stdout
///   spidey-serve --socket /tmp/sp.sock *.ss   # serve on a unix socket
///
/// Socket mode is multi-tenant (DESIGN.md §13): each connection gets its
/// own session (thread-per-connection, bounded by --max-sessions, excess
/// connections answered with a structured "busy" error), preloaded with
/// the command-line program and switchable per client with
/// {"cmd":"open","files":[...]}. All sessions analyze through one
/// process-wide content-addressed constraint store, so clients working
/// on different programs that share a library file derive its summary
/// once. Stdio mode serves a single session, as before.
///
/// Requests (one JSON object per line):
///   {"cmd":"open","files":[...]} {"cmd":"analyze"}
///   {"cmd":"edit","file":"f.ss","text":"..."}
///   {"cmd":"flow","name":"f"} {"cmd":"check-summary"} {"cmd":"stats"}
///   {"cmd":"configure",...} {"cmd":"shutdown"}
///
/// The transport is hardened for hostile or unlucky clients: request
/// lines are capped (a line over the cap gets a structured
/// "line-too-long" error and is discarded, not buffered), reads and
/// writes retry on EINTR, writes never raise SIGPIPE, and a
/// fault-injection spec from SPIDEY_FAULTS or --faults exercises the
/// recovery paths deterministically. SIGTERM/SIGINT — or any client's
/// shutdown request — drain gracefully: the socket file is unlinked so
/// no new clients connect, every open connection is woken from its read,
/// in-flight responses still go out, and the daemon exits once all
/// connection threads have finished.
///
/// Exit code: 0 on a clean shutdown, end of input, or signal-drain; 2 on
/// usage errors (including malformed numeric option values and a bad
/// --faults spec), 1 when a source file cannot be read or the socket
/// cannot be bound.
///
//===----------------------------------------------------------------------===//

#include "serve/registry.h"
#include "serve/serve.h"
#include "support/faultinject.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spidey;

namespace {

/// A client line longer than this is answered with a structured error and
/// discarded; it bounds per-connection memory no matter what the peer
/// sends.
constexpr size_t MaxLineBytes = 1u << 20; // 1 MiB

/// Connection threads above this many concurrent sessions are refused
/// with a "busy" answer (overridable with --max-sessions).
constexpr size_t DefaultMaxSessions = 64;

volatile std::sig_atomic_t GotSignal = 0;

/// Set when any client's shutdown request should drain the daemon; the
/// accept loop polls it between accepts.
std::atomic<bool> DrainRequested{false};

void onSignal(int Sig) { GotSignal = Sig; }

/// SIGTERM/SIGINT request a graceful drain; handlers deliberately omit
/// SA_RESTART so blocking accept()/read() wake with EINTR and observe the
/// flag. SIGPIPE is ignored: a disconnecting editor must never kill the
/// daemon.
void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: syscalls return EINTR
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

void usage() {
  std::cout <<
      R"(spidey-serve — incremental set-based analysis daemon

usage: spidey-serve [options] file.ss...
  --socket PATH        listen on a unix socket instead of stdin/stdout;
                       each connection gets its own session over one
                       shared constraint store
  --max-sessions N     refuse connections beyond N concurrent sessions
                       with a "busy" answer (socket mode; default 64,
                       0 = unbounded)
  --threads N          worker threads for the componential step 1
  --parallel-close     close the merged system with the sharded parallel
                       fixpoint (byte-identical answers either way)
  --close-shards N     shard count for the parallel close; implies
                       --parallel-close (default 0 = one per thread)
  --simplify ALG       per-component simplifier: none, empty, unreachable,
                       e-removal (default), hopcroft
  --cache-dir DIR      on-disk constraint-file cache behind the in-memory
                       store (warm-starts a fresh daemon, and rebuilds the
                       store after a crash or wipe)
  --deadline-ms N      per-request analysis deadline; an over-deadline
                       analyze answers "degraded" instead of hanging
  --max-constraints N  per-request closure-work budget (combine attempts)
  --max-store-bytes N  LRU byte cap for the in-memory constraint store
  --faults SPEC        fault-injection spec (also read from the
                       SPIDEY_FAULTS environment variable), e.g.
                       "seed=42,cache.load=0.3,store.wipe=0.05"
  --help               this text
)";
}

bool simplifyFromName(const std::string &Name, SimplifyAlgorithm &Out) {
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::None, SimplifyAlgorithm::Empty,
        SimplifyAlgorithm::Unreachable, SimplifyAlgorithm::EpsilonRemoval,
        SimplifyAlgorithm::Hopcroft})
    if (Name == simplifyAlgorithmName(Alg)) {
      Out = Alg;
      return true;
    }
  return false;
}

/// Strict decimal parse: digits only, no sign, no trailing junk, no
/// overflow — `--threads abc` must be a usage error, not thread count 0.
bool parseUint(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  uint64_t V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

/// read() with EINTR retry and the sock.read fault site (an injected
/// interruption the loop must absorb, not die on).
ssize_t readRetry(int Fd, char *Buf, size_t Len) {
  int InjectedLeft = 8; // injected interrupts per call are bounded so a
                        // probability-1.0 fault spec cannot spin forever
  while (true) {
    if (InjectedLeft > 0 && faultAt("sock.read")) {
      --InjectedLeft;
      errno = EINTR;
      if (GotSignal)
        return -1;
      continue; // behave exactly like a real EINTR retry
    }
    ssize_t N = ::read(Fd, Buf, Len);
    if (N < 0 && errno == EINTR) {
      if (GotSignal)
        return -1;
      continue;
    }
    return N;
  }
}

/// Sends all of \p Text: EINTR retried, SIGPIPE suppressed (MSG_NOSIGNAL;
/// SIGPIPE is additionally ignored process-wide for stdio mode). False
/// when the peer is gone — the caller drops the connection, nothing more.
bool writeAll(int Fd, const std::string &Text) {
  int InjectedLeft = 8;
  size_t Sent = 0;
  while (Sent < Text.size()) {
    if (InjectedLeft > 0 && faultAt("sock.write")) {
      --InjectedLeft;
      errno = EINTR;
      continue;
    }
    ssize_t W =
        ::send(Fd, Text.data() + Sent, Text.size() - Sent, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR && !GotSignal)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

/// Reads newline-delimited requests from \p Fd in chunks with the
/// pending-line buffer capped — an over-long line is answered and then
/// discarded, never buffered — and answers each via \p Respond, which
/// returns false when the peer is gone. Returns false when the daemon
/// should stop (shutdown request or drain signal), true when this peer is
/// done but serving should continue. Generic over the session: a bare
/// ServeSession (stdio mode) or a registry-backed ClientContext (one per
/// socket connection).
template <typename SessionT, typename RespondFn>
bool serveLines(SessionT &Session, int Fd, RespondFn Respond) {
  std::string Buffer;
  bool Discarding = false; // inside an over-long line, eating to '\n'
  char Chunk[4096];
  ssize_t N;
  while ((N = readRetry(Fd, Chunk, sizeof(Chunk))) > 0) {
    size_t Begin = 0;
    const size_t Got = static_cast<size_t>(N);
    while (Begin < Got) {
      const char *Nl = static_cast<const char *>(
          std::memchr(Chunk + Begin, '\n', Got - Begin));
      const size_t End = Nl ? static_cast<size_t>(Nl - Chunk) : Got;
      if (Discarding) {
        // Skip the tail of a line already answered as too long.
        if (Nl)
          Discarding = false;
        Begin = End + 1;
        continue;
      }
      if (Buffer.size() + (End - Begin) > MaxLineBytes) {
        // Cap the pending line *before* buffering it: answer now, then
        // discard until the newline shows up.
        Buffer.clear();
        Discarding = Nl == nullptr;
        if (!Respond(ServeSession::lineTooLongResponse(MaxLineBytes) + "\n"))
          return true;
        Begin = End + 1;
        continue;
      }
      Buffer.append(Chunk + Begin, End - Begin);
      Begin = End + 1;
      if (!Nl)
        break; // partial line: wait for more input
      if (!Buffer.empty()) {
        std::string Response = Session.handleLine(Buffer) + "\n";
        Buffer.clear();
        if (!Respond(Response))
          return true; // peer went away; serve the next client
        if (Session.shutdownRequested())
          return false;
      }
    }
    if (GotSignal)
      return false;
  }
  return !GotSignal;
}

/// Serves stdin → stdout until shutdown, EOF, or a drain signal. Shares
/// the capped chunked reader with the socket path so an over-long stdin
/// line is bounded too, not slurped whole by getline.
int serveStdio(ServeSession &Session) {
  serveLines(Session, STDIN_FILENO, [](const std::string &Text) {
    std::cout << Text << std::flush;
    return static_cast<bool>(std::cout);
  });
  return 0;
}

/// One live connection of the multi-tenant accept loop. The worker
/// thread owns the session handle and flags Done; the accept loop owns
/// the fd (closed only after join, so draining can safely shutdown() it)
/// and the Connection object itself.
struct Connection {
  std::thread T;
  int Fd = -1;
  std::atomic<bool> Done{false};
};

/// Joins and closes every finished connection; with \p All, first wakes
/// the rest from their blocking reads (SHUT_RD: pending responses still
/// flush, the reader then sees EOF) and waits for all of them.
void reapConnections(std::vector<std::unique_ptr<Connection>> &Conns,
                     bool All) {
  if (All)
    for (std::unique_ptr<Connection> &C : Conns)
      ::shutdown(C->Fd, SHUT_RD);
  for (auto It = Conns.begin(); It != Conns.end();) {
    if (!All && !(*It)->Done.load(std::memory_order_acquire)) {
      ++It;
      continue;
    }
    (*It)->T.join();
    ::close((*It)->Fd);
    It = Conns.erase(It);
  }
}

/// Accepts connections on a unix socket, one session thread per client
/// (SessionRegistry bounds them and shares the constraint store). Any
/// client's shutdown request — or a drain signal — stops the accept
/// loop, unlinks the socket, and drains the live connections.
int serveSocket(SessionRegistry &Registry, const std::string &Path) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::cerr << "spidey-serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "spidey-serve: socket path too long\n";
    ::close(Listener);
    return 1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 16) < 0) {
    std::cerr << "spidey-serve: bind " << Path << ": "
              << std::strerror(errno) << "\n";
    ::close(Listener);
    return 1;
  }

  int Exit = 0;
  std::vector<std::unique_ptr<Connection>> Conns;
  while (!DrainRequested.load(std::memory_order_acquire) && !GotSignal) {
    // poll() instead of a blocking accept: a worker thread's shutdown
    // request must stop the daemon even when no new client ever
    // connects, and signals are only guaranteed to interrupt the thread
    // they are delivered to.
    pollfd P{Listener, POLLIN, 0};
    int Ready = ::poll(&P, 1, /*timeout_ms=*/200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // the drain check at the top of the loop decides
      std::cerr << "spidey-serve: poll: " << std::strerror(errno) << "\n";
      Exit = 1;
      break;
    }
    reapConnections(Conns, /*All=*/false);
    if (Ready == 0)
      continue;
    int Fd = ::accept(Listener, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue; // transient: a signal poke or a client that gave up
      // Anything else (EBADF, EINVAL, EMFILE...) would busy-loop forever;
      // report and stop instead.
      std::cerr << "spidey-serve: accept: " << std::strerror(errno) << "\n";
      Exit = 1;
      break;
    }
    std::string Error;
    std::unique_ptr<ClientContext> Client = Registry.connect(Error);
    if (!Client) {
      // Refused at capacity: a structured, machine-readable last word so
      // the client can back off and retry, then the connection closes.
      json::Value R = json::Value::object();
      R.set("ok", false);
      R.set("error", Error);
      R.set("code", "busy");
      writeAll(Fd, R.dump() + "\n");
      ::close(Fd);
      continue;
    }
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *C = Conn.get();
    C->T = std::thread([C, Client = std::move(Client)]() mutable {
      bool KeepServing = serveLines(*Client, C->Fd, [&](const std::string &T) {
        return writeAll(C->Fd, T);
      });
      // Unregister the session before flagging Done: once the accept
      // loop reaps this slot, the registry no longer counts it.
      Client.reset();
      if (!KeepServing)
        DrainRequested.store(true, std::memory_order_release);
      C->Done.store(true, std::memory_order_release);
    });
    Conns.push_back(std::move(Conn));
  }
  // Drain: stop accepting first (unlink so no client half-connects to a
  // dying daemon), then finish the in-flight connections.
  ::close(Listener);
  ::unlink(Path.c_str());
  reapConnections(Conns, /*All=*/true);
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  std::string SocketPath;
  size_t MaxSessions = DefaultMaxSessions;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "spidey-serve: " << Arg << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    auto NextUint = [&]() -> uint64_t {
      const char *Text = Next();
      uint64_t V;
      if (!parseUint(Text, V)) {
        std::cerr << "spidey-serve: " << Arg
                  << " needs a non-negative integer, got '" << Text << "'\n";
        std::exit(2);
      }
      return V;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--socket") {
      SocketPath = Next();
    } else if (Arg == "--max-sessions") {
      MaxSessions = static_cast<size_t>(NextUint());
    } else if (Arg == "--threads") {
      Opts.Threads = static_cast<unsigned>(NextUint());
    } else if (Arg == "--parallel-close") {
      Opts.ParallelClose = true;
    } else if (Arg == "--close-shards") {
      Opts.ParallelClose = true;
      Opts.CloseShards = static_cast<unsigned>(NextUint());
    } else if (Arg == "--simplify") {
      std::string Name = Next();
      if (!simplifyFromName(Name, Opts.Simplify)) {
        std::cerr << "spidey-serve: unknown simplifier '" << Name
                  << "' (none, empty, unreachable, e-removal, hopcroft)\n";
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      Opts.CacheDir = Next();
    } else if (Arg == "--deadline-ms") {
      Opts.DeadlineMs = NextUint();
    } else if (Arg == "--max-constraints") {
      Opts.MaxConstraints = NextUint();
    } else if (Arg == "--max-store-bytes") {
      Opts.MaxStoreBytes = static_cast<size_t>(NextUint());
    } else if (Arg == "--faults") {
      Opts.Faults = Next();
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "spidey-serve: unknown option " << Arg << "\n";
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }

  installSignalHandlers();

  // Both fault-spec paths fail loudly before any session exists: a typo
  // must exit 2, not silently serve with the injector disarmed. The
  // session constructor re-applies an already-validated --faults spec.
  if (!Opts.Faults.empty()) {
    std::string Error;
    if (!FaultInjector::instance().configure(Opts.Faults, &Error)) {
      std::cerr << "spidey-serve: --faults: " << Error << "\n";
      return 2;
    }
  } else {
    std::string Error;
    if (!FaultInjector::instance().configureFromEnv(&Error)) {
      std::cerr << "spidey-serve: SPIDEY_FAULTS: " << Error << "\n";
      return 2;
    }
  }

  if (SocketPath.empty()) {
    ServeSession Session(Opts);
    std::string Error;
    if (!Session.loadFiles(Paths, Error)) {
      std::cerr << "spidey-serve: " << Error << "\n";
      return 1;
    }
    return serveStdio(Session);
  }

  // Multi-tenant socket mode: read the default program once; every
  // connection's session starts from it (and can switch with "open").
  std::vector<SourceFile> Files;
  for (const std::string &Path : Paths) {
    SourceFile F;
    F.Name = Path;
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::cerr << "spidey-serve: cannot read " << Path << "\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    F.Text = SS.str();
    Files.push_back(std::move(F));
  }
  SessionRegistry Registry(Opts, std::move(Files), MaxSessions);
  return serveSocket(Registry, SocketPath);
}
