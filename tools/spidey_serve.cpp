//===-- tools/spidey_serve.cpp - Incremental analysis daemon ---*- C++ -*-===//
///
/// \file
/// The `spidey-serve` daemon: keeps a program's componential analysis
/// resident and answers newline-delimited JSON requests, re-deriving only
/// the components an edit actually dirtied.
///
///   spidey-serve a.ss b.ss main.ss        # serve requests on stdin/stdout
///   spidey-serve --socket /tmp/sp.sock *.ss   # serve on a unix socket
///
/// Requests (one JSON object per line):
///   {"cmd":"analyze"} {"cmd":"edit","file":"f.ss","text":"..."}
///   {"cmd":"flow","name":"f"} {"cmd":"check-summary"} {"cmd":"stats"}
///   {"cmd":"configure",...} {"cmd":"shutdown"}
///
/// The transport is hardened for hostile or unlucky clients: request
/// lines are capped (a line over the cap gets a structured
/// "line-too-long" error and is discarded, not buffered), reads and
/// writes retry on EINTR, writes never raise SIGPIPE, SIGTERM/SIGINT
/// drain gracefully (current connection finishes, socket file unlinked),
/// and a fault-injection spec from SPIDEY_FAULTS or --faults exercises
/// the recovery paths deterministically.
///
/// Exit code: 0 on a clean shutdown, end of input, or signal-drain; 2 on
/// usage errors, 1 when a source file cannot be read or the socket cannot
/// be bound.
///
//===----------------------------------------------------------------------===//

#include "serve/serve.h"
#include "support/faultinject.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spidey;

namespace {

/// A client line longer than this is answered with a structured error and
/// discarded; it bounds per-connection memory no matter what the peer
/// sends.
constexpr size_t MaxLineBytes = 1u << 20; // 1 MiB

volatile std::sig_atomic_t GotSignal = 0;

void onSignal(int Sig) { GotSignal = Sig; }

/// SIGTERM/SIGINT request a graceful drain; handlers deliberately omit
/// SA_RESTART so blocking accept()/read() wake with EINTR and observe the
/// flag. SIGPIPE is ignored: a disconnecting editor must never kill the
/// daemon.
void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: syscalls return EINTR
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

void usage() {
  std::cout <<
      R"(spidey-serve — incremental set-based analysis daemon

usage: spidey-serve [options] file.ss...
  --socket PATH        listen on a unix socket instead of stdin/stdout
  --threads N          worker threads for the componential step 1
  --parallel-close     close the merged system with the sharded parallel
                       fixpoint (byte-identical answers either way)
  --close-shards N     shard count for the parallel close; implies
                       --parallel-close (default 0 = one per thread)
  --simplify ALG       per-component simplifier: none, empty, unreachable,
                       e-removal (default), hopcroft
  --cache-dir DIR      on-disk constraint-file cache behind the in-memory
                       store (warm-starts a fresh daemon, and rebuilds the
                       store after a crash or wipe)
  --deadline-ms N      per-request analysis deadline; an over-deadline
                       analyze answers "degraded" instead of hanging
  --max-constraints N  per-request closure-work budget (combine attempts)
  --max-store-bytes N  LRU byte cap for the in-memory constraint store
  --faults SPEC        fault-injection spec (also read from the
                       SPIDEY_FAULTS environment variable), e.g.
                       "seed=42,cache.load=0.3,store.wipe=0.05"
  --help               this text
)";
}

bool simplifyFromName(const std::string &Name, SimplifyAlgorithm &Out) {
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::None, SimplifyAlgorithm::Empty,
        SimplifyAlgorithm::Unreachable, SimplifyAlgorithm::EpsilonRemoval,
        SimplifyAlgorithm::Hopcroft})
    if (Name == simplifyAlgorithmName(Alg)) {
      Out = Alg;
      return true;
    }
  return false;
}

/// read() with EINTR retry and the sock.read fault site (an injected
/// interruption the loop must absorb, not die on).
ssize_t readRetry(int Fd, char *Buf, size_t Len) {
  int InjectedLeft = 8; // injected interrupts per call are bounded so a
                        // probability-1.0 fault spec cannot spin forever
  while (true) {
    if (InjectedLeft > 0 && faultAt("sock.read")) {
      --InjectedLeft;
      errno = EINTR;
      if (GotSignal)
        return -1;
      continue; // behave exactly like a real EINTR retry
    }
    ssize_t N = ::read(Fd, Buf, Len);
    if (N < 0 && errno == EINTR) {
      if (GotSignal)
        return -1;
      continue;
    }
    return N;
  }
}

/// Sends all of \p Text: EINTR retried, SIGPIPE suppressed (MSG_NOSIGNAL;
/// SIGPIPE is additionally ignored process-wide for stdio mode). False
/// when the peer is gone — the caller drops the connection, nothing more.
bool writeAll(int Fd, const std::string &Text) {
  int InjectedLeft = 8;
  size_t Sent = 0;
  while (Sent < Text.size()) {
    if (InjectedLeft > 0 && faultAt("sock.write")) {
      --InjectedLeft;
      errno = EINTR;
      continue;
    }
    ssize_t W =
        ::send(Fd, Text.data() + Sent, Text.size() - Sent, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR && !GotSignal)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

/// Reads newline-delimited requests from \p Fd in chunks with the
/// pending-line buffer capped — an over-long line is answered and then
/// discarded, never buffered — and answers each via \p Respond, which
/// returns false when the peer is gone. Returns false when the daemon
/// should stop (shutdown request or drain signal), true when this peer is
/// done but serving should continue.
template <typename RespondFn>
bool serveLines(ServeSession &Session, int Fd, RespondFn Respond) {
  std::string Buffer;
  bool Discarding = false; // inside an over-long line, eating to '\n'
  char Chunk[4096];
  ssize_t N;
  while ((N = readRetry(Fd, Chunk, sizeof(Chunk))) > 0) {
    size_t Begin = 0;
    const size_t Got = static_cast<size_t>(N);
    while (Begin < Got) {
      const char *Nl = static_cast<const char *>(
          std::memchr(Chunk + Begin, '\n', Got - Begin));
      const size_t End = Nl ? static_cast<size_t>(Nl - Chunk) : Got;
      if (Discarding) {
        // Skip the tail of a line already answered as too long.
        if (Nl)
          Discarding = false;
        Begin = End + 1;
        continue;
      }
      if (Buffer.size() + (End - Begin) > MaxLineBytes) {
        // Cap the pending line *before* buffering it: answer now, then
        // discard until the newline shows up.
        Buffer.clear();
        Discarding = Nl == nullptr;
        if (!Respond(ServeSession::lineTooLongResponse(MaxLineBytes) + "\n"))
          return true;
        Begin = End + 1;
        continue;
      }
      Buffer.append(Chunk + Begin, End - Begin);
      Begin = End + 1;
      if (!Nl)
        break; // partial line: wait for more input
      if (!Buffer.empty()) {
        std::string Response = Session.handleLine(Buffer) + "\n";
        Buffer.clear();
        if (!Respond(Response))
          return true; // peer went away; serve the next client
        if (Session.shutdownRequested())
          return false;
      }
    }
    if (GotSignal)
      return false;
  }
  return !GotSignal;
}

/// Serves stdin → stdout until shutdown, EOF, or a drain signal. Shares
/// the capped chunked reader with the socket path so an over-long stdin
/// line is bounded too, not slurped whole by getline.
int serveStdio(ServeSession &Session) {
  serveLines(Session, STDIN_FILENO, [](const std::string &Text) {
    std::cout << Text << std::flush;
    return static_cast<bool>(std::cout);
  });
  return 0;
}

/// One connection: a stream of request lines answered in order. Returns
/// false when the daemon should stop (shutdown request or drain signal).
bool serveConnection(ServeSession &Session, int Conn) {
  return serveLines(Session, Conn, [&](const std::string &Text) {
    return writeAll(Conn, Text);
  });
}

/// Accepts connections serially on a unix socket; each connection is a
/// stream of request lines answered in order. A shutdown request or a
/// drain signal stops the daemon after its connection finishes.
int serveSocket(ServeSession &Session, const std::string &Path) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::cerr << "spidey-serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "spidey-serve: socket path too long\n";
    ::close(Listener);
    return 1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 4) < 0) {
    std::cerr << "spidey-serve: bind " << Path << ": "
              << std::strerror(errno) << "\n";
    ::close(Listener);
    return 1;
  }

  int Exit = 0;
  while (!Session.shutdownRequested() && !GotSignal) {
    int Conn = ::accept(Listener, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue; // transient: a signal poke or a client that gave up
      // Anything else (EBADF, EINVAL, EMFILE...) would busy-loop forever;
      // report and stop instead.
      std::cerr << "spidey-serve: accept: " << std::strerror(errno) << "\n";
      Exit = 1;
      break;
    }
    bool KeepServing = serveConnection(Session, Conn);
    ::close(Conn);
    if (!KeepServing)
      break;
  }
  ::close(Listener);
  ::unlink(Path.c_str());
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  std::string SocketPath;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "spidey-serve: " << Arg << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--socket") {
      SocketPath = Next();
    } else if (Arg == "--threads") {
      Opts.Threads = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (Arg == "--parallel-close") {
      Opts.ParallelClose = true;
    } else if (Arg == "--close-shards") {
      Opts.ParallelClose = true;
      Opts.CloseShards =
          static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (Arg == "--simplify") {
      std::string Name = Next();
      if (!simplifyFromName(Name, Opts.Simplify)) {
        std::cerr << "spidey-serve: unknown simplifier '" << Name
                  << "' (none, empty, unreachable, e-removal, hopcroft)\n";
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      Opts.CacheDir = Next();
    } else if (Arg == "--deadline-ms") {
      Opts.DeadlineMs = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--max-constraints") {
      Opts.MaxConstraints = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--max-store-bytes") {
      Opts.MaxStoreBytes =
          static_cast<size_t>(std::strtoull(Next(), nullptr, 10));
    } else if (Arg == "--faults") {
      Opts.Faults = Next();
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "spidey-serve: unknown option " << Arg << "\n";
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }

  installSignalHandlers();

  if (Opts.Faults.empty()) {
    std::string Error;
    if (!FaultInjector::instance().configureFromEnv(&Error)) {
      std::cerr << "spidey-serve: SPIDEY_FAULTS: " << Error << "\n";
      return 2;
    }
  }

  ServeSession Session(Opts);
  std::string Error;
  if (!Session.loadFiles(Paths, Error)) {
    std::cerr << "spidey-serve: " << Error << "\n";
    return 1;
  }

  return SocketPath.empty() ? serveStdio(Session)
                            : serveSocket(Session, SocketPath);
}
