//===-- tools/spidey_serve.cpp - Incremental analysis daemon ---*- C++ -*-===//
///
/// \file
/// The `spidey-serve` daemon: keeps a program's componential analysis
/// resident and answers newline-delimited JSON requests, re-deriving only
/// the components an edit actually dirtied.
///
///   spidey-serve a.ss b.ss main.ss        # serve requests on stdin/stdout
///   spidey-serve --socket /tmp/sp.sock *.ss   # serve on a unix socket
///
/// Requests (one JSON object per line):
///   {"cmd":"analyze"} {"cmd":"edit","file":"f.ss","text":"..."}
///   {"cmd":"flow","name":"f"} {"cmd":"check-summary"} {"cmd":"stats"}
///   {"cmd":"shutdown"}
///
/// Exit code: 0 on a clean shutdown or end of input, 2 on usage errors,
/// 1 when a source file cannot be read or the socket cannot be bound.
///
//===----------------------------------------------------------------------===//

#include "serve/serve.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spidey;

namespace {

void usage() {
  std::cout <<
      R"(spidey-serve — incremental set-based analysis daemon

usage: spidey-serve [options] file.ss...
  --socket PATH      listen on a unix socket instead of stdin/stdout
  --threads N        worker threads for the componential step 1
  --simplify ALG     per-component simplifier: none, empty, unreachable,
                     e-removal (default), hopcroft
  --cache-dir DIR    on-disk constraint-file cache behind the in-memory
                     store (warm-starts a fresh daemon)
  --help             this text
)";
}

bool simplifyFromName(const std::string &Name, SimplifyAlgorithm &Out) {
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::None, SimplifyAlgorithm::Empty,
        SimplifyAlgorithm::Unreachable, SimplifyAlgorithm::EpsilonRemoval,
        SimplifyAlgorithm::Hopcroft})
    if (Name == simplifyAlgorithmName(Alg)) {
      Out = Alg;
      return true;
    }
  return false;
}

/// Serves stdin → stdout until shutdown or EOF.
int serveStdio(ServeSession &Session) {
  std::string Line;
  while (!Session.shutdownRequested() && std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    std::cout << Session.handleLine(Line) << "\n" << std::flush;
  }
  return 0;
}

/// Accepts connections serially on a unix socket; each connection is a
/// stream of request lines answered in order. A shutdown request stops the
/// daemon after its connection drains.
int serveSocket(ServeSession &Session, const std::string &Path) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::cerr << "spidey-serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "spidey-serve: socket path too long\n";
    ::close(Listener);
    return 1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 4) < 0) {
    std::cerr << "spidey-serve: bind " << Path << ": "
              << std::strerror(errno) << "\n";
    ::close(Listener);
    return 1;
  }

  while (!Session.shutdownRequested()) {
    int Conn = ::accept(Listener, nullptr, nullptr);
    if (Conn < 0)
      continue;
    std::string Buffer;
    char Chunk[4096];
    ssize_t N;
    while ((N = ::read(Conn, Chunk, sizeof(Chunk))) > 0) {
      Buffer.append(Chunk, static_cast<size_t>(N));
      size_t Eol;
      while ((Eol = Buffer.find('\n')) != std::string::npos) {
        std::string Line = Buffer.substr(0, Eol);
        Buffer.erase(0, Eol + 1);
        if (Line.empty())
          continue;
        std::string Response = Session.handleLine(Line) + "\n";
        size_t Sent = 0;
        while (Sent < Response.size()) {
          ssize_t W =
              ::write(Conn, Response.data() + Sent, Response.size() - Sent);
          if (W <= 0)
            break;
          Sent += static_cast<size_t>(W);
        }
      }
    }
    ::close(Conn);
  }
  ::close(Listener);
  ::unlink(Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  std::string SocketPath;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "spidey-serve: " << Arg << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--socket") {
      SocketPath = Next();
    } else if (Arg == "--threads") {
      Opts.Threads = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (Arg == "--simplify") {
      std::string Name = Next();
      if (!simplifyFromName(Name, Opts.Simplify)) {
        std::cerr << "spidey-serve: unknown simplifier '" << Name
                  << "' (none, empty, unreachable, e-removal, hopcroft)\n";
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      Opts.CacheDir = Next();
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "spidey-serve: unknown option " << Arg << "\n";
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }

  ServeSession Session(Opts);
  std::string Error;
  if (!Session.loadFiles(Paths, Error)) {
    std::cerr << "spidey-serve: " << Error << "\n";
    return 1;
  }

  return SocketPath.empty() ? serveStdio(Session)
                            : serveSocket(Session, SocketPath);
}
