//===-- tools/spidey_fuzz.cpp - Differential fuzzing CLI ------*- C++ -*-===//
///
/// \file
/// The `spidey-fuzz` command-line harness.
///
///   spidey-fuzz --iters 500 --seed 42            # fuzz every oracle
///   spidey-fuzz --oracles soundness,threads ...  # a subset
///   spidey-fuzz --replay repro.ss                # replay a reproducer
///   spidey-fuzz --emit 123                       # print program for seed
///
/// On a violation the tool prints the seed, the oracle, the diagnosis and
/// the minimized reproducer, writes the reproducer to --out DIR (if
/// given), and exits 1. Exit 0 means every iteration passed every oracle.
///
//===----------------------------------------------------------------------===//

#include "fuzz/fuzzer.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace spidey;

namespace {

void usage() {
  std::cout <<
      R"(spidey-fuzz — differential fuzzing of the set-based analysis

usage: spidey-fuzz [options]
  --iters N          iterations (default 100)
  --seed N           base seed (default 1; per-iteration seeds derive from it)
  --oracles LIST     comma-separated subset of: soundness,simplify,
                     componential,threads,closure,parclose,chaos,query
                     (default: all eight)
  --fuel N           machine step budget for the soundness oracle
  --threads N        thread count compared against 1 (default 4)
  --depth N          selector-path probe depth (default 4)
  --max-components N generator knob: max files per program (default 3)
  --max-violations N stop after N violations (default 5)
  --no-shrink        skip delta-debugging of violating programs
  --out DIR          write minimized reproducers to DIR
  --replay FILE      replay a reproducer (or plain .ss program) and exit
  --emit SEED        print the generated program for SEED and exit
  --quiet            suppress progress logging
)";
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(Text, &End, 10);
  return End && *End == '\0';
}

int replay(const std::string &Path, FuzzOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "spidey-fuzz: cannot read " << Path << "\n";
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string OracleDirective;
  std::vector<SourceFile> Files = parseReproducer(Buf.str(), OracleDirective);

  // A reproducer names its oracle; otherwise run every enabled one.
  uint32_t Mask = Opts.OracleMask;
  Oracle Single;
  if (!OracleDirective.empty() && oracleFromName(OracleDirective, Single))
    Mask = 1u << static_cast<unsigned>(Single);

  bool AnyViolation = false;
  for (unsigned OI = 0; OI < NumOracles; ++OI) {
    if (!(Mask & (1u << OI)))
      continue;
    Oracle O = static_cast<Oracle>(OI);
    OracleVerdict V = checkOracle(O, Files, Opts.Oracle);
    if (!V.Parsed) {
      std::cout << "[" << oracleName(O) << "] does not parse:\n"
                << V.Message << "\n";
      AnyViolation = true;
      continue;
    }
    std::cout << "[" << oracleName(O) << "] "
              << (V.Violation ? "VIOLATION: " + V.Message : "ok") << "\n";
    AnyViolation |= V.Violation;
  }
  return AnyViolation ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  std::string OutDir;
  std::string ReplayPath;
  bool Quiet = false;
  uint64_t EmitSeed = 0;
  bool Emit = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "spidey-fuzz: " << Arg << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    uint64_t N;
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--iters") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Iters = N;
    } else if (Arg == "--seed") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Seed = static_cast<unsigned>(N);
    } else if (Arg == "--fuel") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Oracle.Fuel = N;
    } else if (Arg == "--threads") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Oracle.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--depth") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Oracle.Depth = static_cast<unsigned>(N);
    } else if (Arg == "--max-components") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.Gen.MaxComponents = static_cast<unsigned>(N);
    } else if (Arg == "--max-violations") {
      if (!parseUnsigned(Next(), N))
        return 2;
      Opts.MaxViolations = N;
    } else if (Arg == "--oracles") {
      std::string List = Next();
      Opts.OracleMask = 0;
      std::istringstream LS(List);
      std::string Name;
      while (std::getline(LS, Name, ',')) {
        Oracle O;
        if (!oracleFromName(Name, O)) {
          std::cerr << "spidey-fuzz: unknown oracle '" << Name << "'\n";
          return 2;
        }
        Opts.OracleMask |= 1u << static_cast<unsigned>(O);
      }
      if (!Opts.OracleMask) {
        std::cerr << "spidey-fuzz: --oracles selected nothing\n";
        return 2;
      }
    } else if (Arg == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Arg == "--out") {
      OutDir = Next();
    } else if (Arg == "--replay") {
      ReplayPath = Next();
    } else if (Arg == "--emit") {
      if (!parseUnsigned(Next(), N))
        return 2;
      EmitSeed = N;
      Emit = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::cerr << "spidey-fuzz: unknown option '" << Arg << "'\n";
      usage();
      return 2;
    }
  }

  if (Emit) {
    FuzzGenConfig Gen = Opts.Gen;
    Gen.Seed = static_cast<unsigned>(EmitSeed);
    for (const SourceFile &F : generateFuzzProgram(Gen))
      std::cout << ";;; file: " << F.Name << "\n" << F.Text;
    return 0;
  }
  if (!ReplayPath.empty())
    return replay(ReplayPath, Opts);

  if (!Quiet)
    Opts.Log = [](const std::string &Message) {
      std::cerr << Message << "\n";
    };

  FuzzSummary Summary = runFuzz(Opts);

  std::cout << "spidey-fuzz: " << Summary.Iterations << " iteration(s), "
            << Summary.Violations.size() << " violation(s)\n";
  for (unsigned OI = 0; OI < NumOracles; ++OI)
    if (Summary.OracleRuns[OI])
      std::cout << "  " << oracleName(static_cast<Oracle>(OI)) << ": "
                << Summary.OracleRuns[OI] << " run(s)\n";

  if (!OutDir.empty() && !Summary.Violations.empty())
    std::filesystem::create_directories(OutDir);

  for (const FuzzViolation &V : Summary.Violations) {
    std::string Repro = formatReproducer(V);
    std::cout << "\n=== VIOLATION [" << V.OracleName << "] seed "
              << V.ProgramSeed << " (iteration " << V.Iteration << ")\n"
              << V.Message << "\n--- minimized reproducer (replay with "
              << "spidey-fuzz --replay FILE) ---\n"
              << Repro;
    if (!OutDir.empty()) {
      std::string Path = OutDir + "/repro-" + V.OracleName + "-seed" +
                         std::to_string(V.ProgramSeed) + ".ss";
      std::ofstream Out(Path);
      Out << Repro;
      std::cout << "--- written to " << Path << "\n";
    }
  }
  return Summary.ok() ? 0 : 1;
}
