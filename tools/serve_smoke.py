#!/usr/bin/env python3
"""Smoke test for the spidey-serve daemon.

Starts the daemon over the examples/serve demo program, then drives an
analyze → edit → analyze → stats round-trip over its newline-delimited
JSON protocol and asserts the incremental contract: the first analyze
derives every component, and after editing one file exactly that
component (and nothing else) is rederived.

With --chaos SPEC the daemon runs under the seeded fault-injection
schedule SPEC (see support/faultinject.h). Faults change *which path*
serves each component — cache hit, disk, or re-derivation — so the
exact reuse counts are no longer pinned; chaos mode instead asserts the
fault-tolerance contract: every request (hostile ones included) gets a
structured answer, analysis results stay correct, and after disarming
the faults through the protocol the incremental behavior is intact.

With --clients N the daemon runs multi-tenant on a unix socket and N
concurrent clients drive it: a first client warms the shared store, the
rest analyze the same program concurrently and must each be served
entirely from it (cross-session store hits), with flow/check-summary
answers byte-identical across every client; any client's shutdown then
drains the daemon and unlinks the socket.

Usage: serve_smoke.py path/to/spidey-serve [source dir]
       [--chaos SPEC] [--clients N]
Exit status 0 on success; 1 with a diagnostic on any violation.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time


def cli_regressions(binary, files):
    """Malformed CLI values must be usage errors (exit 2), not silent
    zeros/disarmed injectors."""
    failures = []
    for argv in ([binary, "--threads", "abc"] + files,
                 [binary, "--deadline-ms", "5x"] + files,
                 [binary, "--max-sessions", "-1"] + files,
                 [binary, "--faults", "no-such-site=1"] + files):
        r = subprocess.run(argv, stdin=subprocess.DEVNULL,
                           capture_output=True, text=True)
        if r.returncode != 2:
            failures.append(f"{' '.join(argv[1:3])!r} must exit 2, "
                            f"got {r.returncode}")
    return failures


class Client:
    """One connection to the multi-tenant daemon; requests get answers
    in order over the socket."""

    def __init__(self, sockpath):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(sockpath)
        self.reader = self.sock.makefile("r")

    def request_raw(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())
        line = self.reader.readline()
        if not line:
            raise SystemExit("serve_smoke: daemon closed a client stream")
        return line.rstrip("\n")

    def request(self, obj):
        return json.loads(self.request_raw(obj))

    def close(self):
        self.reader.close()
        self.sock.close()


def multi_client_smoke(binary, files, clients):
    """N concurrent clients over one daemon: the shared store serves all
    but the first, answers are byte-identical across clients, and any
    client's shutdown drains the daemon."""
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    sockpath = os.path.join(tempfile.mkdtemp(prefix="spidey-smoke-"),
                            "serve.sock")
    proc = subprocess.Popen([binary, "--socket", sockpath,
                             "--max-sessions", str(clients + 1)] + files)
    deadline = time.monotonic() + 10
    while not os.path.exists(sockpath):
        if time.monotonic() > deadline or proc.poll() is not None:
            print("serve_smoke: daemon never bound its socket",
                  file=sys.stderr)
            return 1
        time.sleep(0.05)

    # Client 0 warms the shared store with a cold analyze.
    warmup = Client(sockpath)
    cold = warmup.request({"cmd": "analyze"})
    check(cold.get("ok") and cold.get("rederived") == 3,
          f"cold analyze must derive all: {cold}")
    check(cold.get("store_cross_hits") == 0,
          f"first session has nobody to share with: {cold}")

    # N concurrent clients: every component is served from the warm
    # shared store — derived once, reused by every later session.
    answers = [None] * clients

    def drive(idx):
        c = Client(sockpath)
        a = c.request({"cmd": "analyze"})
        check(a.get("ok") and a.get("rederived") == 0
              and a.get("reused") == 3,
              f"client {idx} must be served from the shared store: {a}")
        check(a.get("store_cross_hits", 0) >= 3,
              f"client {idx} hits must be cross-session: {a}")
        answers[idx] = [c.request_raw({"cmd": "flow", "name": "good"}),
                        c.request_raw({"cmd": "check-summary"})]
        c.close()

    threads = [threading.Thread(target=drive, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for idx in range(1, clients):
        check(answers[idx] == answers[0],
              f"client {idx} answers diverge:"
              f" {answers[idx]} vs {answers[0]}")

    stats = warmup.request({"cmd": "stats"})
    check(stats.get("store_cross_session_hits_total", 0) >= 3 * clients,
          f"daemon-wide cross-session reuse must be visible: {stats}")
    check(stats.get("store_entries") == 3, f"one image per component: {stats}")

    # Any client's shutdown drains the whole daemon: socket unlinked,
    # in-flight connections finished, clean exit.
    bye = warmup.request({"cmd": "shutdown"})
    check(bye.get("ok"), f"shutdown failed: {bye}")
    warmup.close()
    check(proc.wait(timeout=30) == 0, "daemon exited non-zero")
    check(not os.path.exists(sockpath), "socket file must be unlinked")

    if failures:
        for f in failures:
            print(f"serve_smoke: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"serve_smoke: OK multi-tenant ({clients} concurrent clients"
          " served from one shared store, byte-identical answers)")
    return 0


def main():
    args = sys.argv[1:]
    chaos = None
    clients = 0
    if "--chaos" in args:
        at = args.index("--chaos")
        if at + 1 >= len(args):
            print("serve_smoke: --chaos needs a fault spec", file=sys.stderr)
            return 2
        chaos = args[at + 1]
        del args[at:at + 2]
    if "--clients" in args:
        at = args.index("--clients")
        if at + 1 >= len(args):
            print("serve_smoke: --clients needs a count", file=sys.stderr)
            return 2
        clients = int(args[at + 1])
        del args[at:at + 2]
    if len(args) < 1:
        print("usage: serve_smoke.py path/to/spidey-serve [source dir]"
              " [--chaos SPEC] [--clients N]", file=sys.stderr)
        return 2
    # A schedule in the environment reaches the daemon on its own; the
    # script just has to know to apply the chaos-mode assertions.
    via_env = False
    if chaos is None and os.environ.get("SPIDEY_FAULTS"):
        chaos = os.environ["SPIDEY_FAULTS"]
        via_env = True
    binary = args[0]
    srcdir = args[1] if len(args) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "examples", "serve")
    files = [os.path.join(srcdir, name)
             for name in ("list.ss", "data.ss", "main.ss")]
    for path in files:
        if not os.path.exists(path):
            print(f"serve_smoke: missing source file {path}",
                  file=sys.stderr)
            return 1

    cli_failures = cli_regressions(binary, files)
    if cli_failures:
        for f in cli_failures:
            print(f"serve_smoke: FAIL: {f}", file=sys.stderr)
        return 1

    if clients:
        return multi_client_smoke(binary, files, clients)

    cmdline = [binary] + files
    if chaos:
        # Threads=1 keeps the injector's draw stream — and therefore the
        # whole fault schedule — deterministic for a given spec.
        cmdline += ["--threads", "1"]
        if not via_env:
            cmdline += ["--faults", chaos]
    proc = subprocess.Popen(cmdline, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)

    def request(obj):
        proc.stdin.write(json.dumps(obj) + "\n")
        proc.stdin.flush()
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("serve_smoke: daemon closed the stream")
        return json.loads(line)

    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    # Cold analyze: every component derived, none reused. Under chaos the
    # reuse split depends on the fault schedule; only ok-ness and the
    # component count are pinned.
    cold = request({"cmd": "analyze"})
    check(cold.get("ok"), f"cold analyze failed: {cold}")
    check(cold.get("components") == 3, f"expected 3 components: {cold}")
    if not chaos:
        check(cold.get("rederived") == 3, f"cold run must derive all: {cold}")
        check(cold.get("reused") == 0, f"cold run must reuse none: {cold}")

    # Edit main.ss, keeping its foreign references so the other
    # components' interfaces are untouched.
    main_path = files[2]
    with open(main_path) as f:
        edited_text = f.read() + '(define smoke-probe "edited")\n'
    edit = request({"cmd": "edit", "file": main_path, "text": edited_text})
    check(edit.get("ok"), f"edit failed: {edit}")

    # Warm analyze: only the edited component is rederived. A fault
    # schedule may turn store hits into re-derivations, so chaos mode
    # only demands success here — correctness is asserted below.
    warm = request({"cmd": "analyze"})
    check(warm.get("ok"), f"warm analyze failed: {warm}")
    if not chaos:
        check(warm.get("rederived") == 1,
              f"warm run must rederive exactly the edited component: {warm}")
        check(warm.get("reused") == 2, f"warm run must reuse the rest: {warm}")
        per = {c["name"]: c["cache"] for c in warm.get("per_component", [])}
        # The store is content-addressed: the edited component's new
        # source hash forms a new key, so its probe misses outright.
        check(per.get(main_path) == "miss-no-entry",
              f"edited component must miss under its new hash: {per}")
        check(all(outcome == "hit" for name, outcome in per.items()
                  if name != main_path),
              f"untouched components must hit the store: {per}")

    if chaos:
        # Hostile lines mid-stream: each gets a structured refusal and
        # the daemon keeps serving.
        for bad in ("definitely not json", "[1,2,3]", '{"cmd":42}',
                    '{"cmd":"no-such"}'):
            proc.stdin.write(bad + "\n")
            proc.stdin.flush()
            resp = json.loads(proc.stdout.readline())
            check(resp.get("ok") is False and resp.get("code"),
                  f"hostile line {bad!r} must get a structured error: {resp}")

    # The flow browser and check summary answer over the warm state.
    flow = request({"cmd": "flow", "name": "good"})
    check(flow.get("ok") and flow.get("kinds") == ["pair"],
          f"flow(good) must see a pair: {flow}")
    checks = request({"cmd": "check-summary"})
    check(checks.get("ok") and checks.get("unsafe") == 1,
          f"expected exactly one unsafe check: {checks}")

    # Stats reflect both passes and the store contents.
    stats = request({"cmd": "stats"})
    if chaos:
        check(stats.get("ok"), f"stats failed: {stats}")
        check(stats.get("internal_errors") == 0,
              f"the exception barrier must never fire: {stats}")
        # Disarm injection through the protocol; the incremental contract
        # must be fully restored for a fresh edit.
        conf = request({"cmd": "configure", "faults": ""})
        check(conf.get("ok") and conf.get("faults_enabled") is False,
              f"disarming faults failed: {conf}")
        # One fault-free pass refills whatever the schedule knocked out of
        # the store (dropped writes, wipes) ...
        edit2 = request({"cmd": "edit", "file": main_path,
                         "text": edited_text + '(define probe-2 "calm")\n'})
        check(edit2.get("ok"), f"post-chaos edit failed: {edit2}")
        refill = request({"cmd": "analyze"})
        check(refill.get("ok"), f"post-chaos analyze failed: {refill}")
        # ... after which the incremental contract is fully restored.
        edit3 = request({"cmd": "edit", "file": main_path,
                         "text": edited_text + '(define probe-3 "calm")\n'})
        check(edit3.get("ok"), f"post-chaos edit failed: {edit3}")
        calm = request({"cmd": "analyze"})
        check(calm.get("ok") and calm.get("rederived") == 1
              and calm.get("reused") == 2,
              f"incremental contract must hold once faults stop: {calm}")
    else:
        check(stats.get("analyzes") == 2, f"expected 2 analyzes: {stats}")
        check(stats.get("edits") == 1, f"expected 1 edit: {stats}")
        check(stats.get("components_rederived") == 4,
              f"expected 3 cold + 1 warm rederivations: {stats}")
        check(stats.get("components_reused") == 2,
              f"expected 2 reuses: {stats}")
        # 4 entries under content-addressed keys: the edited component's
        # pre-edit image lingers under its old hash until LRU eviction.
        check(stats.get("store_entries") == 4,
              f"expected 4 entries: {stats}")

    bye = request({"cmd": "shutdown"})
    check(bye.get("ok"), f"shutdown failed: {bye}")
    proc.stdin.close()
    check(proc.wait(timeout=30) == 0, "daemon exited non-zero")

    if failures:
        for f in failures:
            print(f"serve_smoke: FAIL: {f}", file=sys.stderr)
        return 1
    if chaos:
        print(f"serve_smoke: OK under chaos schedule '{chaos}'"
              " (correct results, structured errors, clean recovery)")
    else:
        print("serve_smoke: OK (cold=3 derived, warm=1 rederived/2 reused)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
