#!/usr/bin/env python3
"""Smoke test for the spidey-serve daemon.

Starts the daemon over the examples/serve demo program, then drives an
analyze → edit → analyze → stats round-trip over its newline-delimited
JSON protocol and asserts the incremental contract: the first analyze
derives every component, and after editing one file exactly that
component (and nothing else) is rederived.

With --chaos SPEC the daemon runs under the seeded fault-injection
schedule SPEC (see support/faultinject.h). Faults change *which path*
serves each component — cache hit, disk, or re-derivation — so the
exact reuse counts are no longer pinned; chaos mode instead asserts the
fault-tolerance contract: every request (hostile ones included) gets a
structured answer, analysis results stay correct, and after disarming
the faults through the protocol the incremental behavior is intact.

Usage: serve_smoke.py path/to/spidey-serve [source dir] [--chaos SPEC]
Exit status 0 on success; 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys


def main():
    args = sys.argv[1:]
    chaos = None
    if "--chaos" in args:
        at = args.index("--chaos")
        if at + 1 >= len(args):
            print("serve_smoke: --chaos needs a fault spec", file=sys.stderr)
            return 2
        chaos = args[at + 1]
        del args[at:at + 2]
    if len(args) < 1:
        print("usage: serve_smoke.py path/to/spidey-serve [source dir]"
              " [--chaos SPEC]", file=sys.stderr)
        return 2
    # A schedule in the environment reaches the daemon on its own; the
    # script just has to know to apply the chaos-mode assertions.
    via_env = False
    if chaos is None and os.environ.get("SPIDEY_FAULTS"):
        chaos = os.environ["SPIDEY_FAULTS"]
        via_env = True
    binary = args[0]
    srcdir = args[1] if len(args) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "examples", "serve")
    files = [os.path.join(srcdir, name)
             for name in ("list.ss", "data.ss", "main.ss")]
    for path in files:
        if not os.path.exists(path):
            print(f"serve_smoke: missing source file {path}",
                  file=sys.stderr)
            return 1

    cmdline = [binary] + files
    if chaos:
        # Threads=1 keeps the injector's draw stream — and therefore the
        # whole fault schedule — deterministic for a given spec.
        cmdline += ["--threads", "1"]
        if not via_env:
            cmdline += ["--faults", chaos]
    proc = subprocess.Popen(cmdline, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)

    def request(obj):
        proc.stdin.write(json.dumps(obj) + "\n")
        proc.stdin.flush()
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("serve_smoke: daemon closed the stream")
        return json.loads(line)

    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    # Cold analyze: every component derived, none reused. Under chaos the
    # reuse split depends on the fault schedule; only ok-ness and the
    # component count are pinned.
    cold = request({"cmd": "analyze"})
    check(cold.get("ok"), f"cold analyze failed: {cold}")
    check(cold.get("components") == 3, f"expected 3 components: {cold}")
    if not chaos:
        check(cold.get("rederived") == 3, f"cold run must derive all: {cold}")
        check(cold.get("reused") == 0, f"cold run must reuse none: {cold}")

    # Edit main.ss, keeping its foreign references so the other
    # components' interfaces are untouched.
    main_path = files[2]
    with open(main_path) as f:
        edited_text = f.read() + '(define smoke-probe "edited")\n'
    edit = request({"cmd": "edit", "file": main_path, "text": edited_text})
    check(edit.get("ok"), f"edit failed: {edit}")

    # Warm analyze: only the edited component is rederived. A fault
    # schedule may turn store hits into re-derivations, so chaos mode
    # only demands success here — correctness is asserted below.
    warm = request({"cmd": "analyze"})
    check(warm.get("ok"), f"warm analyze failed: {warm}")
    if not chaos:
        check(warm.get("rederived") == 1,
              f"warm run must rederive exactly the edited component: {warm}")
        check(warm.get("reused") == 2, f"warm run must reuse the rest: {warm}")
        per = {c["name"]: c["cache"] for c in warm.get("per_component", [])}
        check(per.get(main_path) == "miss-stale-hash",
              f"edited component must miss on its hash: {per}")
        check(all(outcome == "hit" for name, outcome in per.items()
                  if name != main_path),
              f"untouched components must hit the store: {per}")

    if chaos:
        # Hostile lines mid-stream: each gets a structured refusal and
        # the daemon keeps serving.
        for bad in ("definitely not json", "[1,2,3]", '{"cmd":42}',
                    '{"cmd":"no-such"}'):
            proc.stdin.write(bad + "\n")
            proc.stdin.flush()
            resp = json.loads(proc.stdout.readline())
            check(resp.get("ok") is False and resp.get("code"),
                  f"hostile line {bad!r} must get a structured error: {resp}")

    # The flow browser and check summary answer over the warm state.
    flow = request({"cmd": "flow", "name": "good"})
    check(flow.get("ok") and flow.get("kinds") == ["pair"],
          f"flow(good) must see a pair: {flow}")
    checks = request({"cmd": "check-summary"})
    check(checks.get("ok") and checks.get("unsafe") == 1,
          f"expected exactly one unsafe check: {checks}")

    # Stats reflect both passes and the store contents.
    stats = request({"cmd": "stats"})
    if chaos:
        check(stats.get("ok"), f"stats failed: {stats}")
        check(stats.get("internal_errors") == 0,
              f"the exception barrier must never fire: {stats}")
        # Disarm injection through the protocol; the incremental contract
        # must be fully restored for a fresh edit.
        conf = request({"cmd": "configure", "faults": ""})
        check(conf.get("ok") and conf.get("faults_enabled") is False,
              f"disarming faults failed: {conf}")
        # One fault-free pass refills whatever the schedule knocked out of
        # the store (dropped writes, wipes) ...
        edit2 = request({"cmd": "edit", "file": main_path,
                         "text": edited_text + '(define probe-2 "calm")\n'})
        check(edit2.get("ok"), f"post-chaos edit failed: {edit2}")
        refill = request({"cmd": "analyze"})
        check(refill.get("ok"), f"post-chaos analyze failed: {refill}")
        # ... after which the incremental contract is fully restored.
        edit3 = request({"cmd": "edit", "file": main_path,
                         "text": edited_text + '(define probe-3 "calm")\n'})
        check(edit3.get("ok"), f"post-chaos edit failed: {edit3}")
        calm = request({"cmd": "analyze"})
        check(calm.get("ok") and calm.get("rederived") == 1
              and calm.get("reused") == 2,
              f"incremental contract must hold once faults stop: {calm}")
    else:
        check(stats.get("analyzes") == 2, f"expected 2 analyzes: {stats}")
        check(stats.get("edits") == 1, f"expected 1 edit: {stats}")
        check(stats.get("components_rederived") == 4,
              f"expected 3 cold + 1 warm rederivations: {stats}")
        check(stats.get("components_reused") == 2,
              f"expected 2 reuses: {stats}")
        check(stats.get("store_entries") == 3,
              f"expected 3 entries: {stats}")

    bye = request({"cmd": "shutdown"})
    check(bye.get("ok"), f"shutdown failed: {bye}")
    proc.stdin.close()
    check(proc.wait(timeout=30) == 0, "daemon exited non-zero")

    if failures:
        for f in failures:
            print(f"serve_smoke: FAIL: {f}", file=sys.stderr)
        return 1
    if chaos:
        print(f"serve_smoke: OK under chaos schedule '{chaos}'"
              " (correct results, structured errors, clean recovery)")
    else:
        print("serve_smoke: OK (cold=3 derived, warm=1 rederived/2 reused)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
