#!/usr/bin/env python3
"""Smoke test for the spidey-serve daemon.

Starts the daemon over the examples/serve demo program, then drives an
analyze → edit → analyze → stats round-trip over its newline-delimited
JSON protocol and asserts the incremental contract: the first analyze
derives every component, and after editing one file exactly that
component (and nothing else) is rederived.

Usage: serve_smoke.py path/to/spidey-serve [source dir]
Exit status 0 on success; 1 with a diagnostic on any violation.
"""

import json
import os
import subprocess
import sys


def main():
    if len(sys.argv) < 2:
        print("usage: serve_smoke.py path/to/spidey-serve [source dir]",
              file=sys.stderr)
        return 2
    binary = sys.argv[1]
    srcdir = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        os.path.dirname(__file__), "..", "examples", "serve")
    files = [os.path.join(srcdir, name)
             for name in ("list.ss", "data.ss", "main.ss")]
    for path in files:
        if not os.path.exists(path):
            print(f"serve_smoke: missing source file {path}",
                  file=sys.stderr)
            return 1

    proc = subprocess.Popen([binary] + files, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)

    def request(obj):
        proc.stdin.write(json.dumps(obj) + "\n")
        proc.stdin.flush()
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("serve_smoke: daemon closed the stream")
        return json.loads(line)

    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    # Cold analyze: every component derived, none reused.
    cold = request({"cmd": "analyze"})
    check(cold.get("ok"), f"cold analyze failed: {cold}")
    check(cold.get("components") == 3, f"expected 3 components: {cold}")
    check(cold.get("rederived") == 3, f"cold run must derive all: {cold}")
    check(cold.get("reused") == 0, f"cold run must reuse none: {cold}")

    # Edit main.ss, keeping its foreign references so the other
    # components' interfaces are untouched.
    main_path = files[2]
    with open(main_path) as f:
        edited_text = f.read() + '(define smoke-probe "edited")\n'
    edit = request({"cmd": "edit", "file": main_path, "text": edited_text})
    check(edit.get("ok"), f"edit failed: {edit}")

    # Warm analyze: only the edited component is rederived.
    warm = request({"cmd": "analyze"})
    check(warm.get("ok"), f"warm analyze failed: {warm}")
    check(warm.get("rederived") == 1,
          f"warm run must rederive exactly the edited component: {warm}")
    check(warm.get("reused") == 2, f"warm run must reuse the rest: {warm}")
    per = {c["name"]: c["cache"] for c in warm.get("per_component", [])}
    check(per.get(main_path) == "miss-stale-hash",
          f"edited component must miss on its hash: {per}")
    check(all(outcome == "hit" for name, outcome in per.items()
              if name != main_path),
          f"untouched components must hit the store: {per}")

    # The flow browser and check summary answer over the warm state.
    flow = request({"cmd": "flow", "name": "good"})
    check(flow.get("ok") and flow.get("kinds") == ["pair"],
          f"flow(good) must see a pair: {flow}")
    checks = request({"cmd": "check-summary"})
    check(checks.get("ok") and checks.get("unsafe") == 1,
          f"expected exactly one unsafe check: {checks}")

    # Stats reflect both passes and the store contents.
    stats = request({"cmd": "stats"})
    check(stats.get("analyzes") == 2, f"expected 2 analyzes: {stats}")
    check(stats.get("edits") == 1, f"expected 1 edit: {stats}")
    check(stats.get("components_rederived") == 4,
          f"expected 3 cold + 1 warm rederivations: {stats}")
    check(stats.get("components_reused") == 2, f"expected 2 reuses: {stats}")
    check(stats.get("store_entries") == 3, f"expected 3 entries: {stats}")

    bye = request({"cmd": "shutdown"})
    check(bye.get("ok"), f"shutdown failed: {bye}")
    proc.stdin.close()
    check(proc.wait(timeout=30) == 0, "daemon exited non-zero")

    if failures:
        for f in failures:
            print(f"serve_smoke: FAIL: {f}", file=sys.stderr)
        return 1
    print("serve_smoke: OK (cold=3 derived, warm=1 rederived/2 reused)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
