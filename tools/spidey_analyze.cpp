//===-- tools/spidey_analyze.cpp - Analysis CLI ---------------*- C++ -*-===//
///
/// \file
/// The `spidey-analyze` command line: run the componential (default) or
/// whole-program set-based analysis over a list of .ss source files — one
/// component per file — and print the MrSpidey-style check summary, plus
/// solver telemetry with --stats.
///
///   spidey-analyze a.ss b.ss main.ss             # componential
///   spidey-analyze --whole main.ss               # standard whole-program
///   spidey-analyze --threads 8 --stats *.ss      # parallel + telemetry
///   spidey-analyze --cache-dir .spidey *.ss      # reuse constraint files
///
/// Exit code: 0 on success (even with unsafe checks), 2 on usage errors,
/// 1 when a file cannot be read or the program does not parse.
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "debugger/checks.h"
#include "lang/parser.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace spidey;

namespace {

void usage() {
  std::cout <<
      R"(spidey-analyze — set-based analysis over Scheme source files

usage: spidey-analyze [options] file.ss...
  --whole            whole-program analysis (default: componential)
  --threads N        worker threads for the componential step 1
                     (default 0 = hardware concurrency; 1 = sequential)
  --parallel-close   close the merged system with the sharded parallel
                     fixpoint (byte-identical output; shards default to
                     the worker-thread count)
  --close-shards N   shard count for the parallel close; implies
                     --parallel-close (1 = sequential engine)
  --simplify ALG     per-component simplifier: none, empty, unreachable,
                     e-removal (default), hopcroft
  --cache-dir DIR    constraint-file cache directory (default: disabled)
  --stats            print solver telemetry (ClosureStats, phase times)
  --help             this text
)";
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool simplifyFromName(const std::string &Name, SimplifyAlgorithm &Out) {
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::None, SimplifyAlgorithm::Empty,
        SimplifyAlgorithm::Unreachable, SimplifyAlgorithm::EpsilonRemoval,
        SimplifyAlgorithm::Hopcroft})
    if (Name == simplifyAlgorithmName(Alg)) {
      Out = Alg;
      return true;
    }
  return false;
}

/// Strict decimal parse: digits only, no sign, no trailing junk, no
/// overflow — `--threads abc` must be a usage error, not thread count 0.
bool parseUint(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  uint64_t V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Whole = false;
  bool Stats = false;
  ComponentialOptions Opts;
  Opts.Threads = 0;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "spidey-analyze: " << Arg << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    auto NextUint = [&]() -> uint64_t {
      const char *Text = Next();
      uint64_t V;
      if (!parseUint(Text, V)) {
        std::cerr << "spidey-analyze: " << Arg
                  << " needs a non-negative integer, got '" << Text << "'\n";
        std::exit(2);
      }
      return V;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--whole") {
      Whole = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--threads") {
      Opts.Threads = static_cast<unsigned>(NextUint());
    } else if (Arg == "--parallel-close") {
      Opts.ParallelClose = true;
    } else if (Arg == "--close-shards") {
      Opts.ParallelClose = true;
      Opts.CloseShards = static_cast<unsigned>(NextUint());
    } else if (Arg == "--simplify") {
      std::string Name = Next();
      if (!simplifyFromName(Name, Opts.Simplify)) {
        std::cerr << "spidey-analyze: unknown simplifier '" << Name
                  << "' (none, empty, unreachable, e-removal, hopcroft)\n";
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      Opts.CacheDir = Next();
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "spidey-analyze: unknown option " << Arg << "\n";
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }

  std::vector<SourceFile> Files;
  for (const std::string &Path : Paths) {
    SourceFile F;
    F.Name = Path;
    if (!readFile(Path, F.Text)) {
      std::cerr << "spidey-analyze: cannot read " << Path << "\n";
      return 1;
    }
    Files.push_back(std::move(F));
  }

  Program P;
  DiagnosticEngine Diags;
  if (!parseProgram(P, Diags, Files)) {
    std::cerr << Diags.str();
    return 1;
  }

  if (Whole) {
    Analysis A = analyzeProgram(P);
    DebugReport Report = runChecks(P, A.Maps, *A.System);
    std::cout << Report.summary(P);
    std::cout << "constraints: " << A.System->size() << " over "
              << A.System->numTouchedVars() << " variables\n";
    if (Stats) {
      std::cout << "closure stats:\n" << A.System->stats().str();
      std::printf("derive stats: schemas %llu, instantiations %llu, "
                  "instantiated constraints %llu, intern hits %llu, "
                  "bulk-cloned constraints %llu\n",
                  (unsigned long long)A.Stats.SchemasCreated,
                  (unsigned long long)A.Stats.Instantiations,
                  (unsigned long long)A.Stats.InstantiatedConstraints,
                  (unsigned long long)A.Stats.SchemaInternHits,
                  (unsigned long long)A.Stats.BulkClonedConstraints);
    }
    return 0;
  }

  ComponentialAnalyzer CA(P, Opts);
  CA.run();

  // Step 3 per component: reconstruct full precision and collect the
  // component's own check results (the focused-component view of §7.1,
  // swept over every component).
  DebugReport Report;
  for (uint32_t I = 0; I < P.Components.size(); ++I) {
    std::unique_ptr<ConstraintSystem> Full = CA.reconstruct(I);
    DebugReport Part = runChecks(P, CA.maps(), *Full);
    for (CheckResult &R : Part.Results)
      if (R.Loc.File == I)
        Report.Results.push_back(std::move(R));
  }
  std::cout << Report.summary(P);

  size_t Reused = 0, FileBytes = 0;
  for (const ComponentRunStats &CS : CA.componentStats()) {
    Reused += CS.ReusedFile ? 1 : 0;
    FileBytes += CS.FileBytes;
  }
  std::cout << "components: " << P.Components.size() << " (" << Reused
            << " from cache), combined constraints: " << CA.combined().size()
            << ", max system: " << CA.maxConstraints() << "\n";
  if (!Opts.CacheDir.empty())
    std::cout << "constraint files: " << FileBytes << " bytes in "
              << Opts.CacheDir << "\n";
  if (Stats) {
    const ComponentialRunInfo &Info = CA.runInfo();
    std::printf("phases: derive %.1f ms, merge %.1f ms, close %.1f ms\n",
                Info.DeriveMs, Info.MergeMs, Info.CloseMs);
    std::cout << "closure stats:\n" << Info.Closure.str();
    std::printf("derive stats: schemas %llu, instantiations %llu, "
                "instantiated constraints %llu, intern hits %llu, "
                "bulk-cloned constraints %llu\n",
                (unsigned long long)Info.Derive.SchemasCreated,
                (unsigned long long)Info.Derive.Instantiations,
                (unsigned long long)Info.Derive.InstantiatedConstraints,
                (unsigned long long)Info.Derive.SchemaInternHits,
                (unsigned long long)Info.Derive.BulkClonedConstraints);
  }
  return 0;
}
