//===-- bench/bench_simplify.cpp - Fig. 6.4 & 6.6 reproduction -*- C++ -*-===//
///
/// \file
/// Reproduces the simplification experiments of chapter 6:
///
///  - the worked example of figs. 6.2/6.4 (the constraint system of
///    P = (λy.((λz.1) y)) shrinking under empty / unreachable / ε-removal),
///  - fig. 6.6: for each benchmark component, the closed constraint-system
///    size and the reduction factor + time of the four simplification
///    algorithms (empty, unreachable, ε-removal, Hopcroft), each level
///    including its predecessors.
///
/// Absolute sizes/times differ from the 1997 MzScheme implementation; the
/// reproduction target is the shape: order-of-magnitude reductions, each
/// algorithm at least as strong as its predecessor, modest costs.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "corpus/corpus.h"
#include "simplify/simplify.h"

using namespace spidey;
using namespace spidey::bench;

namespace {

const SimplifyAlgorithm Algs[] = {
    SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
    SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft};

void workedExample() {
  std::printf("== Worked example (figs. 6.2/6.4): P = (lambda (y) ((lambda "
              "(z) 1) y)) ==\n");
  Program P = parseOrDie("(lambda (y) ((lambda (z) 1) y))");
  Analysis A = analyzeProgram(P);
  ExprId Root = P.Components[0].Forms.back().Body;
  std::vector<SetVar> E{A.Maps.exprVar(Root)};
  std::printf("  closed system: %zu constraints, E = {alpha_P}\n",
              A.System->size());
  for (SimplifyAlgorithm Alg : Algs) {
    ConstraintSystem S = simplifyConstraints(*A.System, E, Alg);
    std::printf("  %-12s -> %3zu constraints\n", simplifyAlgorithmName(Alg),
                S.size());
  }
  std::printf("  (paper: 14 closed constraints -> 8 non-empty -> 5 "
              "reachable -> 3 after e-removal)\n\n");
}

void figure66() {
  std::printf("== Figure 6.6: behavior of the constraint simplification "
              "algorithms ==\n");
  std::printf("%-12s %6s %8s |", "definition", "lines", "size");
  for (SimplifyAlgorithm Alg : Algs)
    std::printf(" %11s factor time(ms) |", simplifyAlgorithmName(Alg));
  std::printf("\n");

  const char *Names[] = {"map",  "reverse", "substring",   "qsort",  "unify",
                         "hopcroft", "check", "escher-fish", "scanner"};
  for (const char *Name : Names) {
    const CorpusEntry &Entry = corpusProgram(Name);
    std::string Source = Entry.Source;
    size_t Lines = 0;
    for (char C : Source)
      Lines += C == '\n';
    Program P = parseOrDie(Source, std::string(Name) + ".ss");
    Analysis A = analyzeProgram(P);
    // The component's interface: its final (demo/export) definition, as
    // for a module exporting one value — the paper simplifies each
    // component with respect to its external interface only.
    std::vector<SetVar> AllDefs = topLevelExternals(P, A.Maps);
    std::vector<SetVar> E;
    if (!AllDefs.empty())
      E.push_back(AllDefs.back());
    size_t Orig = A.System->size();
    std::printf("%-12s %6zu %8zu |", Name, Lines, Orig);
    for (SimplifyAlgorithm Alg : Algs) {
      size_t After = 0;
      double Ms = timeMs([&] {
        ConstraintSystem S = simplifyConstraints(*A.System, E, Alg);
        After = S.size();
      });
      double Factor = After == 0 ? 0 : double(Orig) / double(After);
      std::printf(" %11s %6.1f %8.2f |", "", Factor, Ms);
    }
    std::printf("\n");
  }
  std::printf("\n(paper's shape: factors grow monotonically across the "
              "algorithms,\n typically 3x-680x, at millisecond costs per "
              "component)\n");
}

} // namespace

int main() {
  workedExample();
  figure66();
  return 0;
}
