//===-- bench/bench_query.cpp - Demand-driven query latency ----*- C++ -*-===//
///
/// \file
/// Measures the serve loop's demand-driven query layer (DESIGN.md §12) on
/// multi-component corpus programs, against the whole-program paths it
/// replaced:
///
///  - baseline flow: a fresh FlowGraph over the entire combined system
///    per request (what cmdFlow used to build), answering one name's full
///    payload;
///  - cold index: one FlowIndex build over the same system — the
///    per-generation cost the persistent index pays once;
///  - walk flow: a warm serve session answering a name's *first* query —
///    name-index lookup plus an index-backed reachability walk;
///  - warm flow: the same name again — the region-summary memo path;
///  - summary: the first check-summary (full reconstruct sweep) vs the
///    sweep after a one-component probe edit, which must re-check exactly
///    one component.
///
/// Answers are verified against the baseline payload as they are timed;
/// a divergence or an over-wide recheck fails the benchmark. With --json
/// the numbers are emitted as machine-readable JSON (consumed by
/// bench/run_benches.sh to produce BENCH_query.json; the sba flow
/// speedup is gated in CI by bench/check_perf_floor.py).
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "componential/componential.h"
#include "constraints/const_kind.h"
#include "corpus/corpus.h"
#include "debugger/flow.h"
#include "query/flow_index.h"
#include "serve/serve.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

using namespace spidey;
using namespace spidey::bench;

namespace {

constexpr int Repeats = 3;
/// Memoized-path repeats: the warm query is microseconds, so a few more
/// samples cost nothing and stabilize the minimum.
constexpr int WarmRepeats = 10;

struct Result {
  std::string Name;
  size_t Components = 0;
  size_t Lines = 0;
  double BaselineFlowMs = 1e300; ///< FlowGraph rebuild + one payload
  double IndexBuildMs = 1e300;   ///< one FlowIndex build (per generation)
  double WalkFlowMs = 1e300;     ///< first query of a name, warm session
  double WarmFlowMs = 1e300;     ///< repeat query: memoized summary path
  double ColdSummaryMs = 1e300;  ///< first check-summary: full sweep
  double EditSummaryMs = 1e300;  ///< sweep after a 1-component probe edit
  uint64_t Rechecked = 0;        ///< of the timed edit sweep
  uint64_t Reused = 0;
  bool AnswersMatch = true;
  bool RecheckedExactlyOne = false;
};

/// The legacy flow payload, computed the pre-demand-driven way.
struct FlowPayload {
  SetVar Var = NoSetVar;
  size_t Parents = 0, Children = 0, Ancestors = 0, Descendants = 0;
};

json::Value flowRequest(const std::string &Name) {
  json::Value R = json::Value::object();
  R.set("cmd", "flow");
  R.set("name", Name);
  return R;
}

double num(const json::Value &R, std::string_view Key) {
  const json::Value *M = R.find(Key);
  return M && M->isNumber() ? M->asNumber() : -1.0;
}

Result benchProgram(const char *Name) {
  std::vector<SourceFile> Files = generateProgram(benchmarkConfig(Name));

  Result Res;
  Res.Name = Name;
  Res.Components = Files.size();
  Res.Lines = lineCount(Files);

  // Reference analyzer: same deterministic numbering as the session.
  Program P = parseOrDie(Files);
  ComponentialOptions CO;
  CO.Threads = 1;
  CO.MergeViaFiles = true;
  ComponentialAnalyzer CA(P, CO);
  CA.run();
  const ConstraintSystem &S = CA.combined();

  // Top-level names in definition order, first definition winning (the
  // session's name-index contract); the last one is the legacy name
  // scan's worst case and our probe query.
  std::vector<std::pair<std::string, SetVar>> Names;
  std::unordered_set<std::string> Seen;
  for (VarId V = 0; V < P.numVars(); ++V) {
    const VarInfo &Info = P.var(V);
    if (Info.TopLevel && Seen.insert(P.Syms.name(Info.Name)).second)
      Names.emplace_back(P.Syms.name(Info.Name), CA.maps().varVar(V));
  }
  if (Names.empty()) {
    std::fprintf(stderr, "bench_query: %s has no top-level names\n", Name);
    std::exit(1);
  }
  const std::string &QueryName = Names.back().first;
  SetVar QueryVar = Names.back().second;

  // Baseline: what every flow request used to cost — a FlowGraph over the
  // whole combined system, then the payload.
  FlowPayload Ref;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    double Ms = timeMs([&] {
      FlowGraph FG(S);
      Ref.Var = QueryVar;
      Ref.Parents = FG.parents(QueryVar).size();
      Ref.Children = FG.children(QueryVar).size();
      Ref.Ancestors = FG.ancestors(QueryVar).size();
      Ref.Descendants = FG.descendants(QueryVar).size();
    });
    Res.BaselineFlowMs = std::min(Res.BaselineFlowMs, Ms);
  }

  // The per-generation cost the persistent index pays once.
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    FlowIndex FI;
    double Ms = timeMs([&] { FI.build(S); });
    Res.IndexBuildMs = std::min(Res.IndexBuildMs, Ms);
  }

  // One warm session serves every query below.
  ServeOptions SO;
  SO.Threads = 1;
  ServeSession Session(SO);
  Session.setFiles(Files);
  json::Value Analyze = json::Value::object();
  Analyze.set("cmd", "analyze");
  Session.handle(Analyze);

  auto checkAnswer = [&](const json::Value &R) {
    bool Ok = R.find("ok") && R.find("ok")->asBool() &&
              num(R, "var") == double(Ref.Var) &&
              num(R, "parents") == double(Ref.Parents) &&
              num(R, "children") == double(Ref.Children) &&
              num(R, "ancestors") == double(Ref.Ancestors) &&
              num(R, "descendants") == double(Ref.Descendants);
    if (!Ok) {
      std::fprintf(stderr, "bench_query: %s flow(%s) diverged: %s\n", Name,
                   QueryName.c_str(), R.dump().c_str());
      Res.AnswersMatch = false;
    }
  };

  // Walk: the first query of a name on a warm session — one index-backed
  // exploration, no memo. Distinct names so every sample really walks;
  // the probe name is sampled first so its payload check stays valid.
  {
    json::Value R;
    double Ms = timeMs([&] { R = Session.handle(flowRequest(QueryName)); });
    Res.WalkFlowMs = Ms;
    checkAnswer(R);
    size_t Extra = Names.size() > 1 ? Names.size() - 1 : 0;
    for (size_t I = 0; I < std::min<size_t>(Extra, Repeats - 1); ++I) {
      const std::string &N = Names[Names.size() - 2 - I].first;
      json::Value RN;
      double MsN = timeMs([&] { RN = Session.handle(flowRequest(N)); });
      if (RN.find("memoized") == nullptr)
        Res.WalkFlowMs = std::min(Res.WalkFlowMs, MsN);
    }
  }

  // Warm: the same name again — the memoized region-summary path.
  for (int Rep = 0; Rep < WarmRepeats; ++Rep) {
    json::Value R;
    double Ms = timeMs([&] { R = Session.handle(flowRequest(QueryName)); });
    Res.WarmFlowMs = std::min(Res.WarmFlowMs, Ms);
    checkAnswer(R);
  }

  // Summary: full sweep cold, then after a one-component probe edit.
  json::Value SummaryReq = json::Value::object();
  SummaryReq.set("cmd", "check-summary");
  {
    json::Value R;
    double Ms = timeMs([&] { R = Session.handle(SummaryReq); });
    Res.ColdSummaryMs = Ms;
    if (!R.find("ok") || !R.find("ok")->asBool()) {
      std::fprintf(stderr, "bench_query: %s cold summary failed\n", Name);
      Res.AnswersMatch = false;
    }
  }
  const SourceFile &Target = Files.back();
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    json::Value Edit = json::Value::object();
    Edit.set("cmd", "edit");
    Edit.set("file", Target.Name);
    Edit.set("text", Target.Text + "\n(define query-bench-probe-" +
                         std::to_string(Rep) + " 42)");
    Session.handle(Edit);
    json::Value R;
    double Ms = timeMs([&] { R = Session.handle(SummaryReq); });
    if (Ms < Res.EditSummaryMs) {
      Res.EditSummaryMs = Ms;
      Res.Rechecked = uint64_t(num(R, "components_rechecked"));
      Res.Reused = uint64_t(num(R, "components_reused"));
    }
  }
  Res.RecheckedExactlyOne =
      Res.Rechecked == 1 && Res.Reused == Res.Components - 1;
  return Res;
}

void printTable(const std::vector<Result> &Results) {
  std::printf("== demand-driven queries: FlowGraph rebuild vs persistent "
              "index + memo (best of %d) ==\n",
              Repeats);
  std::printf("%-10s %6s %7s %10s %10s %10s %10s %8s %11s %11s %9s\n",
              "program", "comps", "lines", "base ms", "index ms", "walk ms",
              "warm ms", "speedup", "sweep ms", "edit ms", "recheck");
  for (const Result &R : Results)
    std::printf("%-10s %6zu %7zu %10.3f %10.3f %10.3f %10.4f %7.0fx %11.1f "
                "%11.1f %4llu/%-4zu\n",
                R.Name.c_str(), R.Components, R.Lines, R.BaselineFlowMs,
                R.IndexBuildMs, R.WalkFlowMs, R.WarmFlowMs,
                R.WarmFlowMs > 0 ? R.BaselineFlowMs / R.WarmFlowMs : 0.0,
                R.ColdSummaryMs, R.EditSummaryMs,
                static_cast<unsigned long long>(R.Rechecked), R.Components);
}

void printJson(const std::vector<Result> &Results) {
  json::Value Programs = json::Value::array();
  for (const Result &R : Results) {
    json::Value P = json::Value::object();
    P.set("name", R.Name);
    P.set("components", R.Components);
    P.set("lines", R.Lines);
    P.set("baseline_flow_ms", R.BaselineFlowMs);
    P.set("index_build_ms", R.IndexBuildMs);
    P.set("walk_flow_ms", R.WalkFlowMs);
    P.set("warm_flow_ms", R.WarmFlowMs);
    P.set("flow_speedup",
          R.WarmFlowMs > 0 ? R.BaselineFlowMs / R.WarmFlowMs : 0.0);
    P.set("cold_summary_ms", R.ColdSummaryMs);
    P.set("edit_summary_ms", R.EditSummaryMs);
    P.set("rechecked_after_edit", R.Rechecked);
    P.set("reused_after_edit", R.Reused);
    P.set("answers_match", R.AnswersMatch);
    Programs.push(std::move(P));
  }
  json::Value Doc = json::Value::object();
  Doc.set("repeats", Repeats);
  Doc.set("programs", std::move(Programs));
  std::printf("%s\n", Doc.dump().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;

  std::vector<Result> Results;
  bool Ok = true;
  for (const char *Name : {"scanner", "zodiac", "sba"}) {
    Results.push_back(benchProgram(Name));
    Ok &= Results.back().AnswersMatch && Results.back().RecheckedExactlyOne;
  }

  if (Json)
    printJson(Results);
  else
    printTable(Results);
  if (!Ok) {
    std::fprintf(stderr, "bench_query: answer divergence or an over-wide "
                         "recheck (see rows above)\n");
    return 1;
  }
  return 0;
}
