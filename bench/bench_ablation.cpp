//===-- bench/bench_ablation.cpp - Design-choice ablations -----*- C++ -*-===//
///
/// \file
/// Ablations for the repository's design choices:
///
///  A. Predicate narrowing (MrSpidey's primitive filters, App. E.5) on/off:
///     its effect on check precision across the chapter-8 case studies.
///  B. Polymorphism mode (mono / copy / smart): spurious checks from
///     merging unrelated calls on reuse-heavy generated programs (§7.4's
///     motivation), and the constraint volume each mode pays.
///  C. Schema-interface precision (PreciseSchemaChecks) for the smart
///     analyses: duplicated-constraint volume vs debugger-grade precision.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "componential/componential.h"
#include "corpus/corpus.h"
#include "debugger/checks.h"

using namespace spidey;
using namespace spidey::bench;

namespace {

size_t unsafeWith(const Program &P, const AnalysisOptions &Opts,
                  size_t *Constraints = nullptr) {
  Analysis A = analyzeProgram(P, Opts);
  if (Constraints)
    *Constraints = A.System->size();
  return runChecks(P, A.Maps, *A.System).numUnsafe();
}

void narrowingAblation() {
  std::printf("== A. Predicate narrowing on/off (unsafe checks) ==\n");
  std::printf("  %-16s %10s %10s\n", "program", "narrowing", "without");
  for (const char *Name : {"sum", "webserver", "webserver-buggy", "inflate",
                           "inflate-buggy", "hhl", "scanner", "check"}) {
    Program P = parseOrDie(corpusProgram(Name).Source,
                           std::string(Name) + ".ss");
    AnalysisOptions On, Off;
    Off.IfSplitting = false;
    std::printf("  %-16s %10zu %10zu\n", Name, unsafeWith(P, On),
                unsafeWith(P, Off));
  }
  std::printf("  (narrowing never loses precision; the repaired case "
              "studies reach 0 only with it)\n\n");
}

void polymorphismAblation() {
  std::printf("== B. Polymorphism mode vs spurious checks ==\n");
  std::printf("  %-10s %6s | %10s %12s | %10s %12s\n", "seed", "lines",
              "mono bad", "mono constr", "copy bad", "copy constr");
  for (unsigned Seed : {3u, 11u, 29u}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumComponents = 1;
    Config.TargetLines = 300;
    Config.PolyReusePercent = 70;
    Config.CrossComponentPercent = 0;
    auto Files = generateProgram(Config);
    Program P = parseOrDie(Files);
    size_t MonoConstr = 0, CopyConstr = 0;
    AnalysisOptions Mono;
    size_t MonoBad = unsafeWith(P, Mono, &MonoConstr);
    size_t CopyBad = unsafeWith(
        P, polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::None),
        &CopyConstr);
    std::printf("  %-10u %6zu | %10zu %12zu | %10zu %12zu\n", Seed,
                lineCount(Files), MonoBad, MonoConstr, CopyBad, CopyConstr);
  }
  std::printf("  (copy removes the merge-induced spurious checks at the "
              "price of a larger system)\n\n");
}

void schemaPrecisionAblation() {
  std::printf("== C. Smart-poly schema interface: precise checks vs "
              "interface-only ==\n");
  std::printf("  %-10s %14s %14s %12s %12s\n", "program", "precise constr",
              "interface constr", "precise ms", "interface ms");
  for (const char *Name : {"check", "boyer", "maze"}) {
    auto Files = generateProgram(benchmarkConfig(Name));
    for (int Precise = 1; Precise >= 0; --Precise) {
      (void)Precise;
    }
    Program P1 = parseOrDie(Files);
    AnalysisOptions Precise =
        polyAnalysisOptions(PolyMode::Smart, SimplifyAlgorithm::EpsilonRemoval);
    Analysis A1;
    double Ms1 = timeMs([&] { A1 = analyzeProgram(P1, Precise); });

    Program P2 = parseOrDie(Files);
    AnalysisOptions Interface = Precise;
    Interface.PreciseSchemaChecks = false;
    Analysis A2;
    double Ms2 = timeMs([&] { A2 = analyzeProgram(P2, Interface); });

    std::printf("  %-10s %14zu %14zu %12.1f %12.1f\n", Name,
                A1.System->size(), A2.System->size(), Ms1, Ms2);
  }
  std::printf("  (interface-only schemas duplicate far less; the debugger "
              "needs the precise mode\n   or per-component reconstruction "
              "for checks inside polymorphic functions)\n");
}

} // namespace

int main() {
  narrowingAblation();
  polymorphismAblation();
  schemaPrecisionAblation();
  return 0;
}
