//===-- bench/bench_checks.cpp - Ch. 1/5/8 check-count tables --*- C++ -*-===//
///
/// \file
/// Reproduces the static-debugging evaluations:
///
///  - the sum.ss session of figs. 1.1/5.1 (annotated program + CHECKS
///    summary),
///  - §8.1 (web server), §8.2 (gunzip/inflate) and §8.4 (HHL) in their
///    buggy and repaired variants,
///  - §8.3 (the extended-direct-semantics interpreter tower) with its
///    per-file summary.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "debugger/markup.h"

using namespace spidey;
using namespace spidey::bench;

namespace {

DebugReport analyzeAndCheck(const Program &P, Analysis &A) {
  A = analyzeProgram(P);
  return runChecks(P, A.Maps, *A.System);
}

void sumSession() {
  std::printf("== sum.ss (figs. 1.1/5.1) ==\n");
  Program P = parseOrDie(corpusProgram("sum").Source, "sum.ss");
  Analysis A;
  DebugReport Rep = analyzeAndCheck(P, A);
  std::printf("%s\n", annotateComponent(P, 0, Rep).c_str());
}

void caseStudy(const char *Title, const char *BuggyName,
               const char *FixedName) {
  std::printf("== %s ==\n", Title);
  {
    Program P = parseOrDie(corpusProgram(BuggyName).Source,
                           std::string(BuggyName) + ".ss");
    Analysis A;
    DebugReport Rep = analyzeAndCheck(P, A);
    std::printf("before the fixes:\n%s", Rep.summary(P).c_str());
  }
  {
    Program P = parseOrDie(corpusProgram(FixedName).Source,
                           std::string(FixedName) + ".ss");
    Analysis A;
    DebugReport Rep = analyzeAndCheck(P, A);
    std::printf("after the fixes:\n%s\n", Rep.summary(P).c_str());
  }
}

void interpreterTower() {
  std::printf("== Extended direct semantics interpreter (§8.3) ==\n");
  Program P = parseOrDie(interpreterTowerFiles());
  Analysis A;
  DebugReport Rep = analyzeAndCheck(P, A);
  std::printf("%s\n", Rep.perFileSummary(P).c_str());
}

} // namespace

int main() {
  sumSession();
  caseStudy("Verifying a web server (§8.1)", "webserver-buggy", "webserver");
  caseStudy("Verifying gunzip (§8.2)", "inflate-buggy", "inflate");
  caseStudy("Statically debugging HHL (§8.4)", "hhl-buggy", "hhl");
  interpreterTower();
  std::printf("(paper's shape: each case study's bug-class checks vanish "
              "after the repairs;\n the web server reaches TOTAL CHECKS: 0, "
              "gunzip reaches 0, HHL retains a few\n analysis-limitation "
              "checks, as in §8.4)\n");
  return 0;
}
