//===-- bench/bench_closure.cpp - Θ-closure scaling (E7) -------*- C++ -*-===//
///
/// \file
/// Micro-benchmarks for the constraint engine: the super-linear growth of
/// whole-program analysis with program size (§1.3.1's O(n³) worst case and
/// the motivation of chapter 6), and the core closure operations.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "corpus/corpus.h"

#include <benchmark/benchmark.h>

using namespace spidey;
using namespace spidey::bench;

namespace {

void BM_WholeProgramAnalysis(benchmark::State &State) {
  GeneratorConfig Config;
  Config.Seed = 9;
  Config.NumComponents = 4;
  Config.TargetLines = static_cast<unsigned>(State.range(0));
  Config.PolyReusePercent = 30;
  std::vector<SourceFile> Files = generateProgram(Config);
  Program P = parseOrDie(Files);
  size_t Constraints = 0;
  for (auto _ : State) {
    Analysis A = analyzeProgram(P);
    Constraints = A.System->size();
    benchmark::DoNotOptimize(Constraints);
  }
  State.counters["constraints"] = static_cast<double>(Constraints);
  State.counters["lines"] = static_cast<double>(lineCount(Files));
}
BENCHMARK(BM_WholeProgramAnalysis)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_ClosureTransitiveChain(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    ConstraintContext Ctx;
    ConstraintSystem S(Ctx);
    std::vector<SetVar> Vars;
    for (int I = 0; I < N; ++I)
      Vars.push_back(Ctx.freshVar());
    for (int I = 0; I + 1 < N; ++I)
      S.addVarUpperRaw(Vars[I], Vars[I + 1]);
    for (int I = 0; I < 8; ++I)
      S.addConstLowerRaw(Vars[0], Ctx.Constants.basic(
                                      static_cast<ConstKind>(I)));
    S.close();
    benchmark::DoNotOptimize(S.size());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_ClosureTransitiveChain)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

void BM_ClosureCallGraph(benchmark::State &State) {
  // A dense call pattern: K functions, each applied at K sites.
  const int K = static_cast<int>(State.range(0));
  for (auto _ : State) {
    ConstraintContext Ctx;
    ConstraintSystem S(Ctx);
    std::vector<SetVar> Fns;
    for (int I = 0; I < K; ++I) {
      SetVar F = Ctx.freshVar(), X = Ctx.freshVar();
      Constant T = Ctx.Constants.makeTag(ConstKind::FnTag, 1, {});
      S.addConstLower(F, T);
      S.addSelLower(F, Ctx.dom(0), X);
      S.addSelLower(F, Ctx.Rng, X);
      Fns.push_back(F);
    }
    SetVar Merge = Ctx.freshVar();
    for (SetVar F : Fns)
      S.addVarUpper(F, Merge);
    for (int I = 0; I < K; ++I) {
      SetVar Arg = Ctx.freshVar(), Res = Ctx.freshVar();
      S.addConstLower(Arg, Ctx.Constants.basic(ConstKind::Num));
      S.addSelUpper(Merge, Ctx.dom(0), Arg);
      S.addSelUpper(Merge, Ctx.Rng, Res);
    }
    benchmark::DoNotOptimize(S.size());
  }
  State.SetComplexityN(K);
}
BENCHMARK(BM_ClosureCallGraph)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
