#!/usr/bin/env python3
"""CI perf-smoke gate: compare bench_parallel --json output against the
checked-in throughput floors in perf_floor.json.

Usage: check_perf_floor.py <bench_parallel.json> <perf_floor.json> \
           [bench_query.json]

Fails (exit 1) when a program's derive throughput at the pinned thread
count has regressed more than `regression_factor` times below its
floor, and likewise for the sharded close-phase throughput when the
floor entry carries `close_constraints_per_sec_floor` (gated against
the `close` block's runs). The floor file deliberately sits far under a
healthy run so the gate only trips on algorithmic regressions, not
runner noise.

When bench_query.json is given, the floor file's `query` block is also
enforced: warm memoized flow must beat the FlowGraph-rebuild baseline by
at least `flow_speedup_floor` (the acceptance bar — no extra allowance;
healthy runs clear it by orders of magnitude), the edit-sweep must
re-check exactly `rechecked_after_edit` components, and every payload
must have matched the reference analyzer.
"""

import json
import sys


def check_query(results: dict, floors: dict) -> bool:
    """Gates bench_query output; returns True when something failed."""
    failed = False
    by_name = {p["name"]: p for p in results.get("programs", [])}
    for name, floor in floors.get("query", {}).get("programs", {}).items():
        prog = by_name.get(name)
        if prog is None:
            print(f"FAIL query {name}: missing from benchmark output")
            failed = True
            continue
        speedup = prog.get("flow_speedup", 0.0)
        speedup_floor = floor.get("flow_speedup_floor", 0.0)
        verdict = "FAIL" if speedup < speedup_floor else "OK"
        print(
            f"{verdict} query {name}: warm flow {speedup:.0f}x faster than "
            f"FlowGraph rebuild (floor {speedup_floor}x)"
        )
        failed = failed or speedup < speedup_floor
        want = floor.get("rechecked_after_edit")
        if want is not None:
            got = prog.get("rechecked_after_edit")
            rverdict = "FAIL" if got != want else "OK"
            print(
                f"{rverdict} query {name}: edit sweep re-checked {got} "
                f"component(s) (must be exactly {want})"
            )
            failed = failed or got != want
        if not prog.get("answers_match", False):
            print(f"FAIL query {name}: payload diverged from reference")
            failed = True
    return failed


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        results = json.load(f)
    with open(sys.argv[2]) as f:
        floors = json.load(f)

    factor = float(floors.get("regression_factor", 2.0))
    by_name = {p["name"]: p for p in results.get("programs", [])}
    failed = False
    for name, floor in floors["programs"].items():
        prog = by_name.get(name)
        if prog is None:
            print(f"FAIL {name}: missing from benchmark output")
            failed = True
            continue
        threads = floor["threads"]
        run = next((r for r in prog["runs"] if r["threads"] == threads), None)
        if run is None:
            print(f"FAIL {name}: no run at threads={threads}")
            failed = True
            continue
        cps = run["constraints_per_sec"]
        minimum = floor["constraints_per_sec_floor"] / factor
        verdict = "FAIL" if cps < minimum else "OK"
        print(
            f"{verdict} {name} threads={threads}: "
            f"{cps:.0f} constraints/sec "
            f"(floor {floor['constraints_per_sec_floor']}, "
            f"minimum after {factor}x allowance {minimum:.0f})"
        )
        failed = failed or cps < minimum
        close_floor = floor.get("close_constraints_per_sec_floor")
        if close_floor is not None:
            close_runs = prog.get("close", {}).get("runs", [])
            crun = next(
                (r for r in close_runs if r["threads"] == threads), None
            )
            if crun is None:
                print(f"FAIL {name}: no close run at threads={threads}")
                failed = True
            else:
                ccps = crun["close_constraints_per_sec"]
                cmin = close_floor / factor
                cverdict = "FAIL" if ccps < cmin else "OK"
                print(
                    f"{cverdict} {name} close threads={threads}: "
                    f"{ccps:.0f} constraints/sec "
                    f"(floor {close_floor}, "
                    f"minimum after {factor}x allowance {cmin:.0f})"
                )
                failed = failed or ccps < cmin
        if not prog.get("deterministic_across_threads", True):
            print(f"FAIL {name}: combined system differed across threads")
            failed = True
    if len(sys.argv) == 4:
        with open(sys.argv[3]) as f:
            query_results = json.load(f)
        failed = check_query(query_results, floors) or failed
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
