//===-- bench/bench_entailment.cpp - Entailment cost (E8) ------*- C++ -*-===//
///
/// \file
/// Micro-benchmarks for the observable-equivalence decision procedure of
/// §6.3.4 (fig. 6.3). The problem is PSPACE-hard; these curves show the
/// exponential growth that makes the complete algorithm impractical for
/// minimization, motivating the heuristic algorithms of §6.4.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "rtg/entail.h"
#include "simplify/simplify.h"

#include <benchmark/benchmark.h>

using namespace spidey;
using namespace spidey::bench;

namespace {

/// Builds the analysis of a K-function program and its ε-simplified form;
/// decides observable equivalence between them.
void BM_ObservableEquivalence(benchmark::State &State) {
  const int K = static_cast<int>(State.range(0));
  std::string Source;
  for (int I = 0; I < K; ++I) {
    Source += "(define (f" + std::to_string(I) + " x) (cons x " +
              std::to_string(I) + "))";
    Source += "(define d" + std::to_string(I) + " (f" + std::to_string(I) +
              " 'a))";
  }
  Program P = parseOrDie(Source);
  Analysis A = analyzeProgram(P);
  std::vector<SetVar> E = topLevelExternals(P, A.Maps);
  ConstraintSystem Simplified = simplifyConstraints(
      *A.System, E, SimplifyAlgorithm::EpsilonRemoval);
  Simplified.close();
  Decision D = Decision::Unknown;
  for (auto _ : State) {
    D = observablyEquivalent(*A.System, Simplified, E);
    benchmark::DoNotOptimize(D);
  }
  State.counters["decision"] = D == Decision::Yes    ? 1
                               : D == Decision::No ? 0
                                                     : -1;
  State.counters["constraints"] = static_cast<double>(A.System->size());
  State.SetComplexityN(K);
}
BENCHMARK(BM_ObservableEquivalence)->DenseRange(1, 6)->Complexity();

void BM_EntailmentSelfCheck(benchmark::State &State) {
  // S |= S on a recursive system of growing depth.
  const int N = static_cast<int>(State.range(0));
  ConstraintContext Ctx;
  ConstraintSystem S(Ctx);
  std::vector<SetVar> E;
  SetVar Prev = Ctx.freshVar();
  E.push_back(Prev);
  S.addConstLower(Prev, Ctx.Constants.basic(ConstKind::Num));
  for (int I = 0; I < N; ++I) {
    SetVar Next = Ctx.freshVar();
    S.addSelLower(Next, Ctx.Rng, Prev); // prev ≤ rng(next)
    Prev = Next;
  }
  S.addSelLower(Prev, Ctx.Rng, Prev); // recursive knot
  E.push_back(Prev);
  for (auto _ : State) {
    Decision D = entails(S, S, E);
    benchmark::DoNotOptimize(D);
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_EntailmentSelfCheck)->RangeMultiplier(2)->Range(2, 32);

} // namespace

BENCHMARK_MAIN();
