//===-- bench/bench_componential.cpp - Fig. 7.1 reproduction ---*- C++ -*-===//
///
/// \file
/// Reproduces fig. 7.1 ("behavior of the modular analyses"): for each
/// multi-file benchmark and each analysis (standard whole-program, then
/// componential with empty / unreachable / ε-removal / Hopcroft
/// simplification), reports:
///   - the maximum constraint-system size materialized,
///   - the from-scratch analysis time (no constraint files),
///   - the re-analysis time after editing one randomly chosen component
///     (constraint files reused for the unchanged components),
///   - the total size of the constraint files.
///
/// The benchmark programs are generated analogues calibrated to the
/// paper's line counts (the original Scheme sources are not archived; see
/// DESIGN.md). The reproduction target is the shape: componential maximum
/// sizes a small fraction of standard, and order-of-magnitude re-analysis
/// speedups.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "componential/componential.h"
#include "corpus/corpus.h"

#include <filesystem>

using namespace spidey;
using namespace spidey::bench;

namespace {

struct Row {
  std::string Analysis;
  size_t MaxConstraints = 0;
  double AnalysisMs = 0;
  double ReanalysisMs = 0;
  size_t FileBytes = 0;
};

Row runComponential(const std::vector<SourceFile> &Files,
                    SimplifyAlgorithm Alg, const std::string &CacheDir) {
  namespace fs = std::filesystem;
  Row R;
  R.Analysis = simplifyAlgorithmName(Alg);
  fs::remove_all(CacheDir);

  // From-scratch run (writes constraint files).
  {
    Program P = parseOrDie(Files);
    ComponentialOptions Opts;
    Opts.Simplify = Alg;
    Opts.CacheDir = CacheDir;
    ComponentialAnalyzer CA(P, Opts);
    R.AnalysisMs = timeMs([&] { CA.run(); });
    R.MaxConstraints = CA.maxConstraints();
    for (const ComponentRunStats &CS : CA.componentStats())
      R.FileBytes += CS.FileBytes;
  }

  // Edit one component (deterministically: the middle one) and re-run.
  std::vector<SourceFile> Edited = Files;
  Edited[Edited.size() / 2].Text += "\n(define bench-edit-marker 1)\n";
  {
    Program P = parseOrDie(Edited);
    ComponentialOptions Opts;
    Opts.Simplify = Alg;
    Opts.CacheDir = CacheDir;
    ComponentialAnalyzer CA(P, Opts);
    R.ReanalysisMs = timeMs([&] { CA.run(); });
  }
  fs::remove_all(CacheDir);
  return R;
}

void benchProgram(const char *Name) {
  GeneratorConfig Config = benchmarkConfig(Name);
  std::vector<SourceFile> Files = generateProgram(Config);
  std::printf("-- %s: %zu lines, %zu components --\n", Name,
              lineCount(Files), Files.size());

  std::vector<Row> Rows;
  // Standard whole-program analysis.
  {
    Program P = parseOrDie(Files);
    Row R;
    R.Analysis = "standard";
    Analysis A;
    R.AnalysisMs = timeMs([&] { A = analyzeProgram(P); });
    R.MaxConstraints = A.System->size();
    // Re-analysis = full re-analysis for the standard analysis.
    Program P2 = parseOrDie(Files);
    R.ReanalysisMs = timeMs([&] { Analysis B = analyzeProgram(P2); });
    Rows.push_back(R);
  }
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
        SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft})
    Rows.push_back(runComponential(
        Files, Alg, "/tmp/spidey_bench_cache_" + std::string(Name)));

  std::printf("  %-12s %12s %12s %14s %12s\n", "analysis", "max constr",
              "analysis ms", "re-analysis ms", "file bytes");
  size_t StdMax = Rows[0].MaxConstraints;
  for (const Row &R : Rows) {
    std::printf("  %-12s %12zu %12.1f %14.1f %12zu", R.Analysis.c_str(),
                R.MaxConstraints, R.AnalysisMs, R.ReanalysisMs, R.FileBytes);
    if (&R != &Rows[0] && StdMax > 0)
      std::printf("   (%.0f%% of standard)",
                  100.0 * R.MaxConstraints / StdMax);
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("== Figure 7.1: behavior of the modular (componential) "
              "analyses ==\n\n");
  for (const char *Name :
       {"scanner", "zodiac", "nucleic", "sba", "mod-poly"})
    benchProgram(Name);
  std::printf("(paper's shape: componential max sizes are 1%%-39%% of the "
              "standard analysis,\n re-analysis after a one-component edit "
              "is an order of magnitude faster,\n and constraint files are "
              "within a small factor of the sources)\n");
  return 0;
}
