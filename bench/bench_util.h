//===-- bench/bench_util.h - Shared benchmark helpers ----------*- C++ -*-===//

#ifndef SPIDEY_BENCH_BENCH_UTIL_H
#define SPIDEY_BENCH_BENCH_UTIL_H

#include "analysis/analysis.h"
#include "lang/parser.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace spidey::bench {

/// Wall-clock milliseconds of a callable.
template <typename Fn> double timeMs(Fn &&F) {
  auto Start = std::chrono::steady_clock::now();
  F();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

inline Program parseOrDie(const std::vector<SourceFile> &Files) {
  Program P;
  DiagnosticEngine Diags;
  if (!parseProgram(P, Diags, Files)) {
    std::fprintf(stderr, "benchmark program failed to parse:\n%s\n",
                 Diags.str().c_str());
    std::exit(1);
  }
  return P;
}

inline Program parseOrDie(const std::string &Source,
                          const std::string &Name = "bench.ss") {
  return parseOrDie(std::vector<SourceFile>{{Name, Source}});
}

inline size_t lineCount(const std::vector<SourceFile> &Files) {
  size_t Lines = 0;
  for (const SourceFile &F : Files)
    for (char C : F.Text)
      Lines += C == '\n';
  return Lines;
}

/// The set variables of all top-level defines (the usual external set).
inline std::vector<SetVar> topLevelExternals(const Program &P,
                                             const AnalysisMaps &Maps) {
  std::vector<SetVar> E;
  for (const Component &C : P.Components)
    for (const TopForm &F : C.Forms)
      if (F.DefVar != NoVar && Maps.VarVar[F.DefVar] != NoSetVar)
        E.push_back(Maps.VarVar[F.DefVar]);
  return E;
}

} // namespace spidey::bench

#endif // SPIDEY_BENCH_BENCH_UTIL_H
