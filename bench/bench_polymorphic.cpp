//===-- bench/bench_polymorphic.cpp - Fig. 7.6 reproduction ----*- C++ -*-===//
///
/// \file
/// Reproduces fig. 7.6 ("times for the smart polymorphic analyses"): for
/// each benchmark, the `copy` polymorphic analysis (duplicate the raw
/// constraint system at every polymorphic reference) is the baseline;
/// the four smart analyses simplify each definition's system once with
/// empty / unreachable / ε-removal / Hopcroft before duplicating; the
/// monomorphic analysis closes the table.
///
/// Benchmarks are generated analogues calibrated to the paper's line
/// counts and reuse degrees. Shape target: smart analyses consistently
/// faster than copy (factors 1.2x-4x where reuse is heavy), monomorphic
/// cheapest but least precise.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "componential/componential.h"
#include "corpus/corpus.h"

using namespace spidey;
using namespace spidey::bench;

namespace {

double analyzeWith(const std::vector<SourceFile> &Files,
                   const AnalysisOptions &Opts, size_t &Constraints,
                   uint64_t &Copied) {
  Program P = parseOrDie(Files);
  double Ms = 0;
  Analysis A;
  Ms = timeMs([&] { A = analyzeProgram(P, Opts); });
  Constraints = A.System->size();
  Copied = A.Stats.InstantiatedConstraints;
  return Ms;
}

} // namespace

int main() {
  std::printf("== Figure 7.6: times for the smart polymorphic analyses "
              "(relative to copy) ==\n\n");
  std::printf("%-13s %6s %9s |%8s %8s %8s %8s |%8s\n", "program", "lines",
              "copy(ms)", "empty", "unreach", "e-rem", "hopcroft", "mono");

  const char *Names[] = {"lattice", "browse", "splay",  "check",
                         "graphs",  "boyer",  "matrix", "maze",
                         "nbody",   "nucleic-poly"};
  for (const char *Name : Names) {
    GeneratorConfig Config = benchmarkConfig(Name);
    std::vector<SourceFile> Files = generateProgram(Config);

    size_t Constraints;
    uint64_t Copied;
    double CopyMs = analyzeWith(
        Files, polyAnalysisOptions(PolyMode::Copy, SimplifyAlgorithm::None),
        Constraints, Copied);

    std::printf("%-13s %6zu %9.1f |", Name, lineCount(Files), CopyMs);
    for (SimplifyAlgorithm Alg :
         {SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
          SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft}) {
      AnalysisOptions SmartOpts = polyAnalysisOptions(PolyMode::Smart, Alg);
      // The fig. 7.6 experiment measures pure analysis time: definitions
      // simplify down to their data-flow interfaces.
      SmartOpts.PreciseSchemaChecks = false;
      double Ms = analyzeWith(Files, SmartOpts, Constraints, Copied);
      std::printf(" %6.0f%%", CopyMs > 0 ? 100.0 * Ms / CopyMs : 0.0);
    }
    {
      AnalysisOptions Mono;
      double Ms = analyzeWith(Files, Mono, Constraints, Copied);
      std::printf(" | %6.0f%%", CopyMs > 0 ? 100.0 * Ms / CopyMs : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\n(paper's shape: smart analyses at 14%%-87%% of copy; "
              "e-removal the best trade-off;\n mono comparable to the "
              "smart analyses but context-insensitive)\n");
  return 0;
}
