//===-- bench/bench_serve.cpp - Incremental re-analysis latency -*- C++ -*-===//
///
/// \file
/// Measures the spidey-serve loop on multi-component corpus programs:
/// cold whole-program analyze latency vs the warm latency of editing a
/// single component and re-analyzing, where every untouched component is
/// served from the in-memory constraint store. Also verifies the daemon's
/// core contract — the warm combined system is byte-identical to a cold
/// run over the same sources — and reports how many components each warm
/// pass rederived vs reused.
///
/// A third configuration re-runs the cold analyze with a far-future
/// deadline armed, measuring what the cancellation polling (the closure
/// drain's CancelToken charges) costs when it never fires.
///
/// With --json the numbers are emitted as machine-readable JSON (consumed
/// by bench/run_benches.sh to produce BENCH_serve.json).
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "corpus/corpus.h"
#include "serve/serve.h"

#include <cstring>
#include <string>
#include <vector>

using namespace spidey;
using namespace spidey::bench;

namespace {

struct Result {
  std::string Name;
  size_t Components = 0;
  size_t Lines = 0;
  double ColdMs = 1e300;
  double WarmMs = 1e300;
  double GuardedMs = 1e300; ///< cold analyze with a deadline armed
  uint64_t Rederived = 0; ///< of the timed warm pass
  uint64_t Reused = 0;
  bool ByteIdentical = false;
};

constexpr int Repeats = 3;

json::Value analyzeRequest() {
  json::Value R = json::Value::object();
  R.set("cmd", "analyze");
  return R;
}

/// An edit of component \p File that appends an unreferenced define: the
/// component's hash changes but no other component's interface does, so a
/// correct daemon rederives exactly this one component.
json::Value editRequest(const std::string &File, const std::string &Base,
                        int Seq) {
  json::Value R = json::Value::object();
  R.set("cmd", "edit");
  R.set("file", File);
  R.set("text",
        Base + "\n(define serve-bench-probe-" + std::to_string(Seq) + " 42)");
  return R;
}

Result benchProgram(const char *Name) {
  std::vector<SourceFile> Files = generateProgram(benchmarkConfig(Name));

  Result Res;
  Res.Name = Name;
  Res.Components = Files.size();
  Res.Lines = lineCount(Files);

  // Cold: a fresh session analyzes everything from scratch.
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    ServeSession Cold({});
    Cold.setFiles(Files);
    double Ms = timeMs([&] { Cold.handle(analyzeRequest()); });
    Res.ColdMs = std::min(Res.ColdMs, Ms);
  }

  // Guarded cold: identical work with a deadline armed that never
  // fires — the difference against ColdMs is the poll overhead.
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    ServeOptions O;
    O.DeadlineMs = 3'600'000;
    ServeSession Guarded(O);
    Guarded.setFiles(Files);
    double Ms = timeMs([&] { Guarded.handle(analyzeRequest()); });
    Res.GuardedMs = std::min(Res.GuardedMs, Ms);
  }

  // Warm: one resident session; each repeat edits the last component
  // (fresh probe text each time so its hash always changes) and
  // re-analyzes with every other component served from memory.
  ServeSession Warm({});
  Warm.setFiles(Files);
  Warm.handle(analyzeRequest());
  const SourceFile &Target = Files.back();
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    Warm.handle(editRequest(Target.Name, Target.Text, Rep));
    double Ms = timeMs([&] { Warm.handle(analyzeRequest()); });
    if (Ms < Res.WarmMs) {
      Res.WarmMs = Ms;
      Res.Rederived = Warm.lastRun().ComponentsRederived;
      Res.Reused = Warm.lastRun().ComponentsReused;
    }
  }

  // Contract check: the warm session's combined system equals a cold run
  // over the same (edited) sources, byte for byte.
  std::vector<SourceFile> Edited = Files;
  Edited.back().Text = Target.Text + "\n(define serve-bench-probe-" +
                       std::to_string(Repeats - 1) + " 42)";
  ServeSession Check({});
  Check.setFiles(Edited);
  Res.ByteIdentical = Warm.combinedText() == Check.combinedText() &&
                      !Warm.combinedText().empty();
  return Res;
}

void printTable(const std::vector<Result> &Results) {
  std::printf("== spidey-serve: cold analyze vs warm single-component edit "
              "(best of %d) ==\n",
              Repeats);
  std::printf("%-10s %6s %7s %10s %10s %10s %8s %11s %6s\n", "program",
              "comps", "lines", "cold ms", "guard ms", "warm ms", "speedup",
              "rederived", "ident");
  for (const Result &R : Results)
    std::printf("%-10s %6zu %7zu %10.1f %10.1f %10.1f %7.1fx %5llu/%-5llu "
                "%6s\n",
                R.Name.c_str(), R.Components, R.Lines, R.ColdMs, R.GuardedMs,
                R.WarmMs, R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0.0,
                static_cast<unsigned long long>(R.Rederived),
                static_cast<unsigned long long>(R.Rederived + R.Reused),
                R.ByteIdentical ? "yes" : "NO");
}

void printJson(const std::vector<Result> &Results) {
  json::Value Programs = json::Value::array();
  for (const Result &R : Results) {
    json::Value P = json::Value::object();
    P.set("name", R.Name);
    P.set("components", R.Components);
    P.set("lines", R.Lines);
    P.set("cold_ms", R.ColdMs);
    P.set("guarded_cold_ms", R.GuardedMs);
    P.set("warm_edit_ms", R.WarmMs);
    P.set("speedup", R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0.0);
    P.set("rederived", R.Rederived);
    P.set("reused", R.Reused);
    P.set("byte_identical", R.ByteIdentical);
    Programs.push(std::move(P));
  }
  json::Value Doc = json::Value::object();
  Doc.set("repeats", Repeats);
  Doc.set("programs", std::move(Programs));
  std::printf("%s\n", Doc.dump().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;

  std::vector<Result> Results;
  bool AllIdentical = true;
  for (const char *Name : {"scanner", "zodiac", "sba"}) {
    Results.push_back(benchProgram(Name));
    AllIdentical &= Results.back().ByteIdentical;
  }

  if (Json)
    printJson(Results);
  else
    printTable(Results);
  if (!AllIdentical) {
    std::fprintf(stderr,
                 "bench_serve: warm combined system diverged from cold\n");
    return 1;
  }
  return 0;
}
