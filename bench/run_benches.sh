#!/usr/bin/env bash
# Runs every paper-table benchmark binary, then writes two artifacts at
# the repository root:
#
#   BENCH_componential.json  from bench_parallel's JSON output
#   BENCH_closure.json       from bench_closure's (google-benchmark)
#                            JSON output plus bench_parallel's per-run
#                            ClosureStats telemetry
#   BENCH_serve.json         from bench_serve's JSON output (cold analyze
#                            vs warm single-component edit latency)
#   BENCH_query.json         from bench_query's JSON output (demand-driven
#                            flow & check queries vs whole-system rebuild)
#
# Each emitted file has a "before" section (measured once on the
# reference machine at the commit preceding the respective optimisation
# and kept for comparison) and an "after" section refreshed from the
# current build. Set SPIDEY_BENCH_BEFORE / SPIDEY_CLOSURE_BEFORE to a
# JSON file to substitute different baseline numbers.
#
# Every bench runs even if an earlier one fails; the script exits
# non-zero if any of them did, naming the failures.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT="$REPO_ROOT/BENCH_componential.json"
OUT_CLOSURE="$REPO_ROOT/BENCH_closure.json"
OUT_SERVE="$REPO_ROOT/BENCH_serve.json"
OUT_QUERY="$REPO_ROOT/BENCH_query.json"
TMP_AFTER="$(mktemp)"
TMP_CLOSURE="$(mktemp)"
TMP_SERVE="$(mktemp)"
TMP_QUERY="$(mktemp)"
trap 'rm -f "$TMP_AFTER" "$TMP_CLOSURE" "$TMP_SERVE" "$TMP_QUERY"' EXIT

BENCHES=(bench_simplify bench_componential bench_polymorphic bench_checks
         bench_ablation bench_closure bench_parallel bench_serve bench_query)

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null || exit 1
cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}" > /dev/null || exit 1

FAILED=()
for BENCH in "${BENCHES[@]}"; do
  echo "== $BENCH =="
  if [ "$BENCH" = bench_parallel ]; then
    "$BUILD_DIR/bench/$BENCH" --json > "$TMP_AFTER" || FAILED+=("$BENCH")
  elif [ "$BENCH" = bench_closure ]; then
    "$BUILD_DIR/bench/$BENCH" --benchmark_format=json \
      --benchmark_min_time=0.2 > "$TMP_CLOSURE" || FAILED+=("$BENCH")
  elif [ "$BENCH" = bench_serve ]; then
    "$BUILD_DIR/bench/$BENCH" --json > "$TMP_SERVE" || FAILED+=("$BENCH")
  elif [ "$BENCH" = bench_query ]; then
    "$BUILD_DIR/bench/$BENCH" --json > "$TMP_QUERY" || FAILED+=("$BENCH")
  else
    "$BUILD_DIR/bench/$BENCH" || FAILED+=("$BENCH")
  fi
done

if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "FAILED: ${FAILED[*]}" >&2
  exit 1
fi

python3 - "$OUT" "$TMP_AFTER" "${SPIDEY_BENCH_BEFORE:-}" <<'EOF' || exit 1
import json, os, sys

out, after_path, before_path = sys.argv[1], sys.argv[2], sys.argv[3]
after = json.load(open(after_path))

before = None
if before_path:
    before = json.load(open(before_path))
elif os.path.exists(out):
    # Keep the committed baseline section when refreshing the numbers.
    before = json.load(open(out)).get("before")

doc = {
    "description": "Componential analysis wall time before/after the "
                   "parallel worker pool + cache-friendly constraint core "
                   "(cache disabled; best of 3). Each program also carries "
                   "a 'close' block: the sharded parallel close fixpoint "
                   "(fixed shard count, byte-identical output) timed "
                   "separately per thread count, with close_speedup "
                   "relative to the sharded threads=1 row. Thread rows "
                   "above hardware_concurrency measure oversubscription "
                   "only: speedup<1 on a 1-core runner is expected for "
                   "both the end-to-end and close-phase tables",
    "before": before,
    "after": after,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF

python3 - "$OUT_CLOSURE" "$TMP_CLOSURE" "$TMP_AFTER" \
    "${SPIDEY_CLOSURE_BEFORE:-}" <<'EOF' || exit 1
import json, os, sys

out, closure_path, parallel_path, before_path = sys.argv[1:5]
micro = json.load(open(closure_path))
par = json.load(open(parallel_path))

# bench_closure micro timings (iteration rows only; BigO/RMS aggregates
# are derived and machine-dependent, so they stay out of the artifact).
micro_rows = []
for b in micro.get("benchmarks", []):
    if b.get("run_type") != "iteration":
        continue
    row = {"name": b["name"], "real_ms": round(b["real_time"] / 1e6, 3)}
    if "constraints" in b:
        row["constraints"] = int(b["constraints"])
    micro_rows.append(row)

# The componential view: threads=1 per program (the closure engine's own
# cost, no worker-pool effects), wall time + throughput + telemetry.
comp_rows = []
for prog in par.get("programs", []):
    run = next((r for r in prog["runs"] if r["threads"] == 1), None)
    if run is None:
        continue
    row = {
        "program": prog["name"],
        "wall_ms": run["wall_ms"],
        "constraints_per_sec": run["constraints_per_sec"],
        "combined_constraints": run["combined_constraints"],
    }
    for k in ("derive_ms", "merge_ms", "close_ms", "stats"):
        if k in run:
            row[k] = run[k]
    comp_rows.append(row)

before = None
if before_path:
    before = json.load(open(before_path))
elif os.path.exists(out):
    before = json.load(open(out)).get("before")

doc = {
    "description": "Closure engine v2 (online ε-cycle collapsing, "
                   "indexed combine, exactly-once pair drain) plus the "
                   "dense grammar/ε-removal rewrite: bench_closure "
                   "micro timings and the threads=1 componential runs, "
                   "before (fa589e3) vs. after",
    "before": before,
    "after": {"micro": micro_rows, "componential": comp_rows},
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF

python3 - "$OUT_QUERY" "$TMP_QUERY" <<'EOF' || exit 1
import json, sys

out, query_path = sys.argv[1], sys.argv[2]
after = json.load(open(query_path))

doc = {
    "description": "Demand-driven flow & check queries (DESIGN.md 12): "
                   "per-request FlowGraph rebuild baseline vs the "
                   "persistent FlowIndex (cold build, first-walk, and "
                   "memoized warm flow latency) and the check-summary "
                   "sweep cold vs after a one-component probe edit "
                   "(rechecked/reused counts; payloads verified against "
                   "a reference analyzer as they are timed; best of N "
                   "repeats)",
    "after": after,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF

python3 - "$OUT_SERVE" "$TMP_SERVE" <<'EOF' || exit 1
import json, sys

out, serve_path = sys.argv[1], sys.argv[2]
after = json.load(open(serve_path))

doc = {
    "description": "spidey-serve incremental re-analysis: cold "
                   "whole-program analyze vs warm single-component edit "
                   "latency (in-memory constraint store, MergeViaFiles; "
                   "byte_identical asserts the warm combined system "
                   "equals a cold run; best of N repeats)",
    "after": after,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF
