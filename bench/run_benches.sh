#!/usr/bin/env bash
# Runs every paper-table benchmark binary, then writes
# BENCH_componential.json at the repository root from bench_parallel's
# JSON output.
#
# The emitted file has a "before" section (the sequential analyzer +
# per-variable hash-set constraint storage that predate the parallel
# runner, measured once on the reference machine and kept for comparison)
# and an "after" section refreshed from the current build. Set
# SPIDEY_BENCH_BEFORE to a JSON file to substitute different baseline
# numbers.
#
# Every bench runs even if an earlier one fails; the script exits
# non-zero if any of them did, naming the failures.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT="$REPO_ROOT/BENCH_componential.json"
TMP_AFTER="$(mktemp)"
trap 'rm -f "$TMP_AFTER"' EXIT

BENCHES=(bench_simplify bench_componential bench_polymorphic bench_checks
         bench_ablation bench_parallel)

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null || exit 1
cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}" > /dev/null || exit 1

FAILED=()
for BENCH in "${BENCHES[@]}"; do
  echo "== $BENCH =="
  if [ "$BENCH" = bench_parallel ]; then
    "$BUILD_DIR/bench/$BENCH" --json > "$TMP_AFTER" || FAILED+=("$BENCH")
  else
    "$BUILD_DIR/bench/$BENCH" || FAILED+=("$BENCH")
  fi
done

if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "FAILED: ${FAILED[*]}" >&2
  exit 1
fi

python3 - "$OUT" "$TMP_AFTER" "${SPIDEY_BENCH_BEFORE:-}" <<'EOF' || exit 1
import json, os, sys

out, after_path, before_path = sys.argv[1], sys.argv[2], sys.argv[3]
after = json.load(open(after_path))

before = None
if before_path:
    before = json.load(open(before_path))
elif os.path.exists(out):
    # Keep the committed baseline section when refreshing the numbers.
    before = json.load(open(out)).get("before")

doc = {
    "description": "Componential analysis wall time before/after the "
                   "parallel worker pool + cache-friendly constraint core "
                   "(cache disabled; best of 3)",
    "before": before,
    "after": after,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF
