#!/usr/bin/env bash
# Runs the parallel componential benchmark and writes BENCH_componential.json
# at the repository root.
#
# The emitted file has a "before" section (the sequential analyzer +
# per-variable hash-set constraint storage that predate the parallel
# runner, measured once on the reference machine and kept for comparison)
# and an "after" section refreshed from the current build. Set
# SPIDEY_BENCH_BEFORE to a JSON file to substitute different baseline
# numbers.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT="$REPO_ROOT/BENCH_componential.json"
TMP_AFTER="$(mktemp)"
trap 'rm -f "$TMP_AFTER"' EXIT

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
cmake --build "$BUILD_DIR" -j --target bench_parallel > /dev/null

"$BUILD_DIR/bench/bench_parallel" --json > "$TMP_AFTER"

python3 - "$OUT" "$TMP_AFTER" "${SPIDEY_BENCH_BEFORE:-}" <<'EOF'
import json, os, sys

out, after_path, before_path = sys.argv[1], sys.argv[2], sys.argv[3]
after = json.load(open(after_path))

before = None
if before_path:
    before = json.load(open(before_path))
elif os.path.exists(out):
    # Keep the committed baseline section when refreshing the numbers.
    before = json.load(open(out)).get("before")

doc = {
    "description": "Componential analysis wall time before/after the "
                   "parallel worker pool + cache-friendly constraint core "
                   "(cache disabled; best of 3)",
    "before": before,
    "after": after,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF
