//===-- bench/bench_parallel.cpp - Parallel componential scaling -*- C++ -*-===//
///
/// \file
/// Measures the parallel componential analysis (§7.1 step 1 fanned out
/// across a worker pool) on multi-component corpus programs: wall time,
/// derived constraints per second, and maximum constraint-system size per
/// thread count, plus the speedup relative to one thread.
///
/// With --json the numbers are emitted as machine-readable JSON (consumed
/// by bench/run_benches.sh to produce BENCH_componential.json). The
/// constraint-file cache is disabled throughout so every run measures the
/// full derive+close+simplify pipeline.
///
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "componential/componential.h"
#include "componential/parallel.h"
#include "corpus/corpus.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

using namespace spidey;
using namespace spidey::bench;

namespace {

struct Run {
  unsigned Threads = 1;
  double WallMs = 0;
  double ConstraintsPerSec = 0;
  size_t MaxConstraints = 0;
  size_t CombinedConstraints = 0;
  double Speedup = 1.0;
  ComponentialRunInfo Info; ///< solver telemetry of the best repeat
};

/// One sharded-close measurement: the close phase alone, at a fixed shard
/// count, driven by a varying worker-thread count. Shards stay constant
/// across rows so every row closes the identical partition — the speedup
/// column is thread scaling, not partition luck.
struct CloseRun {
  unsigned Threads = 1;
  double CloseMs = 0;
  double Speedup = 1.0; ///< vs. the sharded threads=1 row (same partition)
  double ClosePerSec = 0;
  uint64_t Rounds = 0;
  uint64_t BoundaryLows = 0;
  uint64_t BoundaryUps = 0;
};

struct ProgramResult {
  std::string Name;
  size_t Components = 0;
  size_t Lines = 0;
  std::vector<Run> Runs;
  bool Deterministic = true;
  /// Close-phase scaling (separate from the end-to-end rows above).
  unsigned CloseShards = 0;
  double SeqCloseMs = 0; ///< sequential engine, from the threads=1 row
  std::vector<CloseRun> CloseRuns;
};

constexpr int Repeats = 3;

ProgramResult benchProgram(const char *Name,
                           const std::vector<unsigned> &ThreadCounts) {
  std::vector<SourceFile> Files = generateProgram(benchmarkConfig(Name));
  Program P = parseOrDie(Files);

  ProgramResult Result;
  Result.Name = Name;
  Result.Components = P.Components.size();
  Result.Lines = lineCount(Files);

  std::string Reference;
  for (unsigned Threads : ThreadCounts) {
    Run R;
    R.Threads = Threads;
    R.WallMs = 1e300;
    for (int Rep = 0; Rep < Repeats; ++Rep) {
      ComponentialOptions Opts;
      Opts.Threads = Threads;
      ComponentialAnalyzer CA(P, Opts);
      double Ms = timeMs([&] { CA.run(); });
      if (Ms < R.WallMs) {
        R.WallMs = Ms;
        size_t Raw = 0;
        for (const ComponentRunStats &CS : CA.componentStats())
          Raw += CS.RawConstraints;
        R.ConstraintsPerSec = Ms > 0 ? Raw / (Ms / 1000.0) : 0;
        R.MaxConstraints = CA.maxConstraints();
        R.CombinedConstraints = CA.combined().size();
        R.Info = CA.runInfo();
      }
      if (Rep == 0) {
        // The combined system must be identical for every thread count.
        std::string Str = CA.combined().str();
        if (Reference.empty())
          Reference = std::move(Str);
        else if (Str != Reference)
          Result.Deterministic = false;
      }
    }
    R.Speedup =
        Result.Runs.empty() ? 1.0 : Result.Runs.front().WallMs / R.WallMs;
    Result.Runs.push_back(R);
  }

  // Close-phase scaling: the sharded fixpoint at a fixed shard count,
  // swept over the same thread counts. The sequential baseline comes from
  // the end-to-end threads=1 row above.
  Result.CloseShards = 8;
  Result.SeqCloseMs =
      Result.Runs.empty() ? 0 : Result.Runs.front().Info.CloseMs;
  for (unsigned Threads : ThreadCounts) {
    CloseRun CR;
    CR.Threads = Threads;
    CR.CloseMs = 1e300;
    for (int Rep = 0; Rep < Repeats; ++Rep) {
      ComponentialOptions Opts;
      Opts.Threads = Threads;
      Opts.ParallelClose = true;
      Opts.CloseShards = Result.CloseShards;
      ComponentialAnalyzer CA(P, Opts);
      CA.run();
      const ComponentialRunInfo &Info = CA.runInfo();
      if (Info.CloseMs < CR.CloseMs) {
        CR.CloseMs = Info.CloseMs;
        CR.ClosePerSec = Info.CloseMs > 0
                             ? CA.combined().size() / (Info.CloseMs / 1000.0)
                             : 0;
        CR.Rounds = Info.Closure.CloseRounds;
        CR.BoundaryLows = Info.Closure.BoundaryLowsSent;
        CR.BoundaryUps = Info.Closure.BoundaryUpsSent;
      }
      // The sharded close must reproduce the sequential bytes exactly.
      if (Rep == 0 && CA.combined().str() != Reference)
        Result.Deterministic = false;
    }
    CR.Speedup = Result.CloseRuns.empty() || CR.CloseMs <= 0
                     ? 1.0
                     : Result.CloseRuns.front().CloseMs / CR.CloseMs;
    Result.CloseRuns.push_back(CR);
  }
  return Result;
}

void printTable(const ProgramResult &R) {
  std::printf("-- %s: %zu lines, %zu components --\n", R.Name.c_str(),
              R.Lines, R.Components);
  std::printf("  %8s %10s %16s %12s %10s\n", "threads", "wall ms",
              "constraints/s", "max constr", "speedup");
  for (const Run &Run : R.Runs)
    std::printf("  %8u %10.1f %16.0f %12zu %9.2fx\n", Run.Threads,
                Run.WallMs, Run.ConstraintsPerSec, Run.MaxConstraints,
                Run.Speedup);
  if (!R.Runs.empty()) {
    const ComponentialRunInfo &Info = R.Runs.front().Info;
    std::printf("  phases (1 thread): derive %.1f ms, merge %.1f ms, "
                "close %.1f ms\n",
                Info.DeriveMs, Info.MergeMs, Info.CloseMs);
    std::printf("%s", Info.Closure.str().c_str());
  }
  if (!R.CloseRuns.empty()) {
    std::printf("  close phase (%u shards; sequential close %.1f ms):\n",
                R.CloseShards, R.SeqCloseMs);
    std::printf("  %8s %10s %10s %8s %14s\n", "threads", "close ms",
                "speedup", "rounds", "boundary l/u");
    for (const CloseRun &CR : R.CloseRuns)
      std::printf("  %8u %10.1f %9.2fx %8llu %7llu/%llu\n", CR.Threads,
                  CR.CloseMs, CR.Speedup, (unsigned long long)CR.Rounds,
                  (unsigned long long)CR.BoundaryLows,
                  (unsigned long long)CR.BoundaryUps);
  }
  if (!R.Deterministic)
    std::printf("  !! combined system differed across thread counts\n");
  std::printf("\n");
}

void printJson(const std::vector<ProgramResult> &Results) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"componential-parallel\",\n");
  std::printf("  \"hardware_concurrency\": %u,\n",
              WorkerPool::defaultThreadCount());
  std::printf("  \"repeats\": %d,\n", Repeats);
  std::printf("  \"programs\": [\n");
  for (size_t I = 0; I < Results.size(); ++I) {
    const ProgramResult &R = Results[I];
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", R.Name.c_str());
    std::printf("      \"components\": %zu,\n", R.Components);
    std::printf("      \"lines\": %zu,\n", R.Lines);
    std::printf("      \"deterministic_across_threads\": %s,\n",
                R.Deterministic ? "true" : "false");
    std::printf("      \"runs\": [\n");
    for (size_t J = 0; J < R.Runs.size(); ++J) {
      const Run &Run = R.Runs[J];
      const ClosureStats &CS = Run.Info.Closure;
      std::printf(
          "        {\"threads\": %u, \"wall_ms\": %.2f, "
          "\"constraints_per_sec\": %.0f, \"max_constraints\": %zu, "
          "\"combined_constraints\": %zu, \"speedup\": %.3f,\n"
          "         \"derive_ms\": %.2f, \"merge_ms\": %.2f, "
          "\"close_ms\": %.2f,\n"
          "         \"stats\": {\"tasks_drained\": %llu, "
          "\"combines_attempted\": %llu, \"combines_inserted\": %llu, "
          "\"dedup_hits\": %llu, \"dedup_hit_rate\": %.4f, "
          "\"eps_edges\": %llu, \"eps_sccs_collapsed\": %llu, "
          "\"vars_unified\": %llu, \"cycle_search_steps\": %llu, "
          "\"peak_worklist_depth\": %llu},\n"
          "         \"derive\": {\"schemas\": %llu, "
          "\"instantiations\": %llu, \"instantiated_constraints\": %llu, "
          "\"intern_hits\": %llu, \"bulk_cloned_constraints\": %llu}}%s\n",
          Run.Threads, Run.WallMs, Run.ConstraintsPerSec, Run.MaxConstraints,
          Run.CombinedConstraints, Run.Speedup, Run.Info.DeriveMs,
          Run.Info.MergeMs, Run.Info.CloseMs,
          (unsigned long long)CS.TasksDrained,
          (unsigned long long)CS.CombinesAttempted,
          (unsigned long long)CS.CombinesInserted,
          (unsigned long long)CS.DedupHits, CS.dedupHitRate(),
          (unsigned long long)CS.EpsEdges,
          (unsigned long long)CS.EpsSccsCollapsed,
          (unsigned long long)CS.VarsUnified,
          (unsigned long long)CS.CycleSearchSteps,
          (unsigned long long)CS.PeakWorklistDepth,
          (unsigned long long)Run.Info.Derive.SchemasCreated,
          (unsigned long long)Run.Info.Derive.Instantiations,
          (unsigned long long)Run.Info.Derive.InstantiatedConstraints,
          (unsigned long long)Run.Info.Derive.SchemaInternHits,
          (unsigned long long)Run.Info.Derive.BulkClonedConstraints,
          J + 1 < R.Runs.size() ? "," : "");
    }
    std::printf("      ],\n");
    std::printf("      \"close\": {\"shards\": %u, "
                "\"sequential_close_ms\": %.2f, \"runs\": [\n",
                R.CloseShards, R.SeqCloseMs);
    for (size_t J = 0; J < R.CloseRuns.size(); ++J) {
      const CloseRun &CR = R.CloseRuns[J];
      std::printf("        {\"threads\": %u, \"close_ms\": %.2f, "
                  "\"close_speedup\": %.3f, "
                  "\"close_constraints_per_sec\": %.0f, "
                  "\"rounds\": %llu, \"boundary_lows\": %llu, "
                  "\"boundary_ups\": %llu}%s\n",
                  CR.Threads, CR.CloseMs, CR.Speedup, CR.ClosePerSec,
                  (unsigned long long)CR.Rounds,
                  (unsigned long long)CR.BoundaryLows,
                  (unsigned long long)CR.BoundaryUps,
                  J + 1 < R.CloseRuns.size() ? "," : "");
    }
    std::printf("      ]}\n");
    std::printf("    }%s\n", I + 1 < Results.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  std::vector<std::string> Only;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--only") == 0 && I + 1 < argc)
      Only.push_back(argv[++I]); // restrict to named programs (CI smoke)
  }

  std::vector<unsigned> ThreadCounts = {1, 2, 4,
                                        WorkerPool::defaultThreadCount()};
  std::sort(ThreadCounts.begin(), ThreadCounts.end());
  ThreadCounts.erase(std::unique(ThreadCounts.begin(), ThreadCounts.end()),
                     ThreadCounts.end());

  std::vector<ProgramResult> Results;
  for (const char *Name : {"scanner", "zodiac", "sba"}) {
    if (!Only.empty() &&
        std::find(Only.begin(), Only.end(), Name) == Only.end())
      continue;
    Results.push_back(benchProgram(Name, ThreadCounts));
  }

  if (Json) {
    printJson(Results);
  } else {
    std::printf("== Parallel componential analysis: per-thread scaling "
                "(cache disabled) ==\n\n");
    for (const ProgramResult &R : Results)
      printTable(R);
  }
  bool AllDeterministic = true;
  for (const ProgramResult &R : Results)
    AllDeterministic = AllDeterministic && R.Deterministic;
  return AllDeterministic ? 0 : 1;
}
