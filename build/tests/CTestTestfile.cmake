# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/rtg_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/componential_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/prims_test[1]_include.cmake")
include("/root/repo/build/tests/machine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/structs_test[1]_include.cmake")
