# Empty dependencies file for rtg_test.
# This may be replaced when dependencies are built.
