file(REMOVE_RECURSE
  "CMakeFiles/rtg_test.dir/rtg_test.cpp.o"
  "CMakeFiles/rtg_test.dir/rtg_test.cpp.o.d"
  "rtg_test"
  "rtg_test.pdb"
  "rtg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
