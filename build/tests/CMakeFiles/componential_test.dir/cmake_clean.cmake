file(REMOVE_RECURSE
  "CMakeFiles/componential_test.dir/componential_test.cpp.o"
  "CMakeFiles/componential_test.dir/componential_test.cpp.o.d"
  "componential_test"
  "componential_test.pdb"
  "componential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/componential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
