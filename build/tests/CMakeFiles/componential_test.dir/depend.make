# Empty dependencies file for componential_test.
# This may be replaced when dependencies are built.
