file(REMOVE_RECURSE
  "CMakeFiles/prims_test.dir/prims_test.cpp.o"
  "CMakeFiles/prims_test.dir/prims_test.cpp.o.d"
  "prims_test"
  "prims_test.pdb"
  "prims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
