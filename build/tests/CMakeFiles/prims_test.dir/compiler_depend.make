# Empty compiler generated dependencies file for prims_test.
# This may be replaced when dependencies are built.
