file(REMOVE_RECURSE
  "CMakeFiles/structs_test.dir/structs_test.cpp.o"
  "CMakeFiles/structs_test.dir/structs_test.cpp.o.d"
  "structs_test"
  "structs_test.pdb"
  "structs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
