# Empty dependencies file for structs_test.
# This may be replaced when dependencies are built.
