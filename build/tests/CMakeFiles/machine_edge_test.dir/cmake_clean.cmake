file(REMOVE_RECURSE
  "CMakeFiles/machine_edge_test.dir/machine_edge_test.cpp.o"
  "CMakeFiles/machine_edge_test.dir/machine_edge_test.cpp.o.d"
  "machine_edge_test"
  "machine_edge_test.pdb"
  "machine_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
