file(REMOVE_RECURSE
  "CMakeFiles/flow_browser.dir/flow_browser.cpp.o"
  "CMakeFiles/flow_browser.dir/flow_browser.cpp.o.d"
  "flow_browser"
  "flow_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
