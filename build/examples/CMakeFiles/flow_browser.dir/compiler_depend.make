# Empty compiler generated dependencies file for flow_browser.
# This may be replaced when dependencies are built.
