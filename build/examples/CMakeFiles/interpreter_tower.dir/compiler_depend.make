# Empty compiler generated dependencies file for interpreter_tower.
# This may be replaced when dependencies are built.
