file(REMOVE_RECURSE
  "CMakeFiles/interpreter_tower.dir/interpreter_tower.cpp.o"
  "CMakeFiles/interpreter_tower.dir/interpreter_tower.cpp.o.d"
  "interpreter_tower"
  "interpreter_tower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_tower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
