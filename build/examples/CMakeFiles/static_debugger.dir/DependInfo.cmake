
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/static_debugger.cpp" "examples/CMakeFiles/static_debugger.dir/static_debugger.cpp.o" "gcc" "examples/CMakeFiles/static_debugger.dir/static_debugger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/spidey_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/componential/CMakeFiles/spidey_componential.dir/DependInfo.cmake"
  "/root/repo/build/src/debugger/CMakeFiles/spidey_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/simplify/CMakeFiles/spidey_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/rtg/CMakeFiles/spidey_rtg.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/spidey_types.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/spidey_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/spidey_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/spidey_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/spidey_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spidey_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
