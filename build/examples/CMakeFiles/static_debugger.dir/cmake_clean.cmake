file(REMOVE_RECURSE
  "CMakeFiles/static_debugger.dir/static_debugger.cpp.o"
  "CMakeFiles/static_debugger.dir/static_debugger.cpp.o.d"
  "static_debugger"
  "static_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
