# Empty compiler generated dependencies file for static_debugger.
# This may be replaced when dependencies are built.
