# Empty compiler generated dependencies file for gunzip_audit.
# This may be replaced when dependencies are built.
