file(REMOVE_RECURSE
  "CMakeFiles/gunzip_audit.dir/gunzip_audit.cpp.o"
  "CMakeFiles/gunzip_audit.dir/gunzip_audit.cpp.o.d"
  "gunzip_audit"
  "gunzip_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gunzip_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
