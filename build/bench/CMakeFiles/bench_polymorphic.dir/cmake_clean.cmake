file(REMOVE_RECURSE
  "CMakeFiles/bench_polymorphic.dir/bench_polymorphic.cpp.o"
  "CMakeFiles/bench_polymorphic.dir/bench_polymorphic.cpp.o.d"
  "bench_polymorphic"
  "bench_polymorphic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polymorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
