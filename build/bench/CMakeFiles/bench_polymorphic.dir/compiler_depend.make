# Empty compiler generated dependencies file for bench_polymorphic.
# This may be replaced when dependencies are built.
