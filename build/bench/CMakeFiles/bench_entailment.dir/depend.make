# Empty dependencies file for bench_entailment.
# This may be replaced when dependencies are built.
