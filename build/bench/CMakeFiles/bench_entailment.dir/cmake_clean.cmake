file(REMOVE_RECURSE
  "CMakeFiles/bench_entailment.dir/bench_entailment.cpp.o"
  "CMakeFiles/bench_entailment.dir/bench_entailment.cpp.o.d"
  "bench_entailment"
  "bench_entailment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_entailment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
