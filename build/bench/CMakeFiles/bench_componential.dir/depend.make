# Empty dependencies file for bench_componential.
# This may be replaced when dependencies are built.
