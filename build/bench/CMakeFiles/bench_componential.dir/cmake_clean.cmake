file(REMOVE_RECURSE
  "CMakeFiles/bench_componential.dir/bench_componential.cpp.o"
  "CMakeFiles/bench_componential.dir/bench_componential.cpp.o.d"
  "bench_componential"
  "bench_componential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_componential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
