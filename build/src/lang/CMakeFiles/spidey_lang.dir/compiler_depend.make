# Empty compiler generated dependencies file for spidey_lang.
# This may be replaced when dependencies are built.
