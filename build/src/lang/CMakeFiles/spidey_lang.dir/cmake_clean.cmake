file(REMOVE_RECURSE
  "CMakeFiles/spidey_lang.dir/ast.cpp.o"
  "CMakeFiles/spidey_lang.dir/ast.cpp.o.d"
  "CMakeFiles/spidey_lang.dir/parser.cpp.o"
  "CMakeFiles/spidey_lang.dir/parser.cpp.o.d"
  "CMakeFiles/spidey_lang.dir/prim.cpp.o"
  "CMakeFiles/spidey_lang.dir/prim.cpp.o.d"
  "libspidey_lang.a"
  "libspidey_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
