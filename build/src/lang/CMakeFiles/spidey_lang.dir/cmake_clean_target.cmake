file(REMOVE_RECURSE
  "libspidey_lang.a"
)
