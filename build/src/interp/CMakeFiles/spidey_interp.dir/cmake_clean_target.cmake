file(REMOVE_RECURSE
  "libspidey_interp.a"
)
