# Empty compiler generated dependencies file for spidey_interp.
# This may be replaced when dependencies are built.
