file(REMOVE_RECURSE
  "CMakeFiles/spidey_interp.dir/machine.cpp.o"
  "CMakeFiles/spidey_interp.dir/machine.cpp.o.d"
  "CMakeFiles/spidey_interp.dir/prims.cpp.o"
  "CMakeFiles/spidey_interp.dir/prims.cpp.o.d"
  "CMakeFiles/spidey_interp.dir/value.cpp.o"
  "CMakeFiles/spidey_interp.dir/value.cpp.o.d"
  "libspidey_interp.a"
  "libspidey_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
