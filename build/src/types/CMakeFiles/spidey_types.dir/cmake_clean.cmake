file(REMOVE_RECURSE
  "CMakeFiles/spidey_types.dir/mktype.cpp.o"
  "CMakeFiles/spidey_types.dir/mktype.cpp.o.d"
  "libspidey_types.a"
  "libspidey_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
