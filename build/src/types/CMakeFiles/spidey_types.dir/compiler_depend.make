# Empty compiler generated dependencies file for spidey_types.
# This may be replaced when dependencies are built.
