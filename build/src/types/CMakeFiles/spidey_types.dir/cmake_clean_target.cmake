file(REMOVE_RECURSE
  "libspidey_types.a"
)
