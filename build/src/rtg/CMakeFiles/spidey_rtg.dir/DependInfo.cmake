
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtg/contain.cpp" "src/rtg/CMakeFiles/spidey_rtg.dir/contain.cpp.o" "gcc" "src/rtg/CMakeFiles/spidey_rtg.dir/contain.cpp.o.d"
  "/root/repo/src/rtg/entail.cpp" "src/rtg/CMakeFiles/spidey_rtg.dir/entail.cpp.o" "gcc" "src/rtg/CMakeFiles/spidey_rtg.dir/entail.cpp.o.d"
  "/root/repo/src/rtg/grammar.cpp" "src/rtg/CMakeFiles/spidey_rtg.dir/grammar.cpp.o" "gcc" "src/rtg/CMakeFiles/spidey_rtg.dir/grammar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/spidey_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spidey_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
