# Empty compiler generated dependencies file for spidey_rtg.
# This may be replaced when dependencies are built.
