file(REMOVE_RECURSE
  "libspidey_rtg.a"
)
