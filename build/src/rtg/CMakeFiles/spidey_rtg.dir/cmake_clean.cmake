file(REMOVE_RECURSE
  "CMakeFiles/spidey_rtg.dir/contain.cpp.o"
  "CMakeFiles/spidey_rtg.dir/contain.cpp.o.d"
  "CMakeFiles/spidey_rtg.dir/entail.cpp.o"
  "CMakeFiles/spidey_rtg.dir/entail.cpp.o.d"
  "CMakeFiles/spidey_rtg.dir/grammar.cpp.o"
  "CMakeFiles/spidey_rtg.dir/grammar.cpp.o.d"
  "libspidey_rtg.a"
  "libspidey_rtg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_rtg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
