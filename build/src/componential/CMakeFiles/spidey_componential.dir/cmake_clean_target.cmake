file(REMOVE_RECURSE
  "libspidey_componential.a"
)
