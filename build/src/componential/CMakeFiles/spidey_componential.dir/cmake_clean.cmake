file(REMOVE_RECURSE
  "CMakeFiles/spidey_componential.dir/componential.cpp.o"
  "CMakeFiles/spidey_componential.dir/componential.cpp.o.d"
  "libspidey_componential.a"
  "libspidey_componential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_componential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
