# Empty compiler generated dependencies file for spidey_componential.
# This may be replaced when dependencies are built.
