file(REMOVE_RECURSE
  "libspidey_support.a"
)
