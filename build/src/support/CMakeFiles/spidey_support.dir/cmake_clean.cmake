file(REMOVE_RECURSE
  "CMakeFiles/spidey_support.dir/diagnostic.cpp.o"
  "CMakeFiles/spidey_support.dir/diagnostic.cpp.o.d"
  "CMakeFiles/spidey_support.dir/sexpr.cpp.o"
  "CMakeFiles/spidey_support.dir/sexpr.cpp.o.d"
  "CMakeFiles/spidey_support.dir/symbol.cpp.o"
  "CMakeFiles/spidey_support.dir/symbol.cpp.o.d"
  "libspidey_support.a"
  "libspidey_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
