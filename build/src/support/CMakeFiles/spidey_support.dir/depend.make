# Empty dependencies file for spidey_support.
# This may be replaced when dependencies are built.
