# Empty dependencies file for spidey_analysis.
# This may be replaced when dependencies are built.
