file(REMOVE_RECURSE
  "CMakeFiles/spidey_analysis.dir/derive.cpp.o"
  "CMakeFiles/spidey_analysis.dir/derive.cpp.o.d"
  "libspidey_analysis.a"
  "libspidey_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
