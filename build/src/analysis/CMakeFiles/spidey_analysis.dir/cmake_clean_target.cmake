file(REMOVE_RECURSE
  "libspidey_analysis.a"
)
