# Empty dependencies file for spidey_simplify.
# This may be replaced when dependencies are built.
