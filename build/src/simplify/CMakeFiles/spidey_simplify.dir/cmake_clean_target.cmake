file(REMOVE_RECURSE
  "libspidey_simplify.a"
)
