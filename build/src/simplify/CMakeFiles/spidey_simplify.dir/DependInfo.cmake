
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplify/simplify.cpp" "src/simplify/CMakeFiles/spidey_simplify.dir/simplify.cpp.o" "gcc" "src/simplify/CMakeFiles/spidey_simplify.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtg/CMakeFiles/spidey_rtg.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/spidey_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spidey_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
