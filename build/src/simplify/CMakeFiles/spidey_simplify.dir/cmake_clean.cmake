file(REMOVE_RECURSE
  "CMakeFiles/spidey_simplify.dir/simplify.cpp.o"
  "CMakeFiles/spidey_simplify.dir/simplify.cpp.o.d"
  "libspidey_simplify.a"
  "libspidey_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
