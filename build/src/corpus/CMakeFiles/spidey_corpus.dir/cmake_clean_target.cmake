file(REMOVE_RECURSE
  "libspidey_corpus.a"
)
