file(REMOVE_RECURSE
  "CMakeFiles/spidey_corpus.dir/corpus_casestudies.cpp.o"
  "CMakeFiles/spidey_corpus.dir/corpus_casestudies.cpp.o.d"
  "CMakeFiles/spidey_corpus.dir/corpus_extra.cpp.o"
  "CMakeFiles/spidey_corpus.dir/corpus_extra.cpp.o.d"
  "CMakeFiles/spidey_corpus.dir/corpus_programs.cpp.o"
  "CMakeFiles/spidey_corpus.dir/corpus_programs.cpp.o.d"
  "CMakeFiles/spidey_corpus.dir/corpus_tower.cpp.o"
  "CMakeFiles/spidey_corpus.dir/corpus_tower.cpp.o.d"
  "CMakeFiles/spidey_corpus.dir/generator.cpp.o"
  "CMakeFiles/spidey_corpus.dir/generator.cpp.o.d"
  "libspidey_corpus.a"
  "libspidey_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
