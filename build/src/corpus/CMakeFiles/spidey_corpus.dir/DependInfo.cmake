
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus_casestudies.cpp" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_casestudies.cpp.o" "gcc" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_casestudies.cpp.o.d"
  "/root/repo/src/corpus/corpus_extra.cpp" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_extra.cpp.o" "gcc" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_extra.cpp.o.d"
  "/root/repo/src/corpus/corpus_programs.cpp" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_programs.cpp.o" "gcc" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_programs.cpp.o.d"
  "/root/repo/src/corpus/corpus_tower.cpp" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_tower.cpp.o" "gcc" "src/corpus/CMakeFiles/spidey_corpus.dir/corpus_tower.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/corpus/CMakeFiles/spidey_corpus.dir/generator.cpp.o" "gcc" "src/corpus/CMakeFiles/spidey_corpus.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/spidey_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/spidey_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spidey_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
