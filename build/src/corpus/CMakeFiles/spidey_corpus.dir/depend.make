# Empty dependencies file for spidey_corpus.
# This may be replaced when dependencies are built.
