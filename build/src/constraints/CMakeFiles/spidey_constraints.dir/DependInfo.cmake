
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/const_kind.cpp" "src/constraints/CMakeFiles/spidey_constraints.dir/const_kind.cpp.o" "gcc" "src/constraints/CMakeFiles/spidey_constraints.dir/const_kind.cpp.o.d"
  "/root/repo/src/constraints/constraint_system.cpp" "src/constraints/CMakeFiles/spidey_constraints.dir/constraint_system.cpp.o" "gcc" "src/constraints/CMakeFiles/spidey_constraints.dir/constraint_system.cpp.o.d"
  "/root/repo/src/constraints/core.cpp" "src/constraints/CMakeFiles/spidey_constraints.dir/core.cpp.o" "gcc" "src/constraints/CMakeFiles/spidey_constraints.dir/core.cpp.o.d"
  "/root/repo/src/constraints/serialize.cpp" "src/constraints/CMakeFiles/spidey_constraints.dir/serialize.cpp.o" "gcc" "src/constraints/CMakeFiles/spidey_constraints.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spidey_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
