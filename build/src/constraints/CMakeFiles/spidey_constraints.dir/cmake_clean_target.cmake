file(REMOVE_RECURSE
  "libspidey_constraints.a"
)
