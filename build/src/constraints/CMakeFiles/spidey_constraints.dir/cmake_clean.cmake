file(REMOVE_RECURSE
  "CMakeFiles/spidey_constraints.dir/const_kind.cpp.o"
  "CMakeFiles/spidey_constraints.dir/const_kind.cpp.o.d"
  "CMakeFiles/spidey_constraints.dir/constraint_system.cpp.o"
  "CMakeFiles/spidey_constraints.dir/constraint_system.cpp.o.d"
  "CMakeFiles/spidey_constraints.dir/core.cpp.o"
  "CMakeFiles/spidey_constraints.dir/core.cpp.o.d"
  "CMakeFiles/spidey_constraints.dir/serialize.cpp.o"
  "CMakeFiles/spidey_constraints.dir/serialize.cpp.o.d"
  "libspidey_constraints.a"
  "libspidey_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
