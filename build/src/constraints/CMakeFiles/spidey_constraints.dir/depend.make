# Empty dependencies file for spidey_constraints.
# This may be replaced when dependencies are built.
