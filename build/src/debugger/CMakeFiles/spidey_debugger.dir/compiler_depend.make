# Empty compiler generated dependencies file for spidey_debugger.
# This may be replaced when dependencies are built.
