file(REMOVE_RECURSE
  "libspidey_debugger.a"
)
