file(REMOVE_RECURSE
  "CMakeFiles/spidey_debugger.dir/checks.cpp.o"
  "CMakeFiles/spidey_debugger.dir/checks.cpp.o.d"
  "CMakeFiles/spidey_debugger.dir/flow.cpp.o"
  "CMakeFiles/spidey_debugger.dir/flow.cpp.o.d"
  "CMakeFiles/spidey_debugger.dir/markup.cpp.o"
  "CMakeFiles/spidey_debugger.dir/markup.cpp.o.d"
  "libspidey_debugger.a"
  "libspidey_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidey_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
