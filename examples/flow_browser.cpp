//===-- examples/flow_browser.cpp - Value-flow explanations ----*- C++ -*-===//
///
/// \file
/// The §5.4 value-flow browser on the console: for every unsafe operation
/// in a program, print the offending abstract constants, the ancestors of
/// the scrutinized value filtered to each offending constant, and the
/// shortest path back to the constant's construction site (the arrows of
/// figs. 5.4–5.7).
///
/// Usage: flow_browser [corpus-name]   (default: sum)
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "debugger/flow.h"
#include "debugger/markup.h"
#include "lang/parser.h"

#include <cstdio>

using namespace spidey;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "sum";
  const CorpusEntry &Entry = corpusProgram(Name);

  Program P;
  DiagnosticEngine Diags;
  if (!parseSource(P, Diags, Entry.Source, std::string(Name) + ".ss")) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Analysis A = analyzeProgram(P);
  DebugReport Report = runChecks(P, A.Maps, *A.System);
  FlowGraph Flow(*A.System);
  SiteIndex Index(P, A.Maps);

  std::printf("%s: %zu unsafe of %zu possible checks\n\n", Name,
              Report.numUnsafe(), Report.numPossible());
  for (const CheckResult &R : Report.Results) {
    if (R.Safe)
      continue;
    std::printf("unsafe %s at line %u: %s\n", R.What.c_str(), R.Loc.Line,
                R.Reason.c_str());
    // Re-find the scrutinees for this site to browse their flow.
    for (const CheckSite &Site : A.Maps.Checks) {
      if (Site.Site != R.Site)
        continue;
      for (const CheckScrutinee &Scr : Site.Scrutinees) {
        for (Constant Bad : R.Offending) {
          auto Path = Flow.pathToSource(Scr.V, Bad);
          if (!Path)
            continue;
          std::printf("  %s reaches it along:\n",
                      A.Ctx->Constants.str(Bad, P.Syms).c_str());
          for (SetVar V : *Path)
            std::printf("    -> %s\n", Index.describe(V).c_str());
          auto Edges = Flow.ancestorEdgesCarrying(Scr.V, Bad);
          std::printf("  (%zu flow edges carry it in total)\n",
                      Edges.size());
        }
      }
    }
    std::printf("\n");
  }
  if (Report.numUnsafe() == 0)
    std::printf("nothing to browse: every operation is provably safe.\n");
  return 0;
}
