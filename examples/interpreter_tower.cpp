//===-- examples/interpreter_tower.cpp - §8.3 end to end -------*- C++ -*-===//
///
/// \file
/// The extended-direct-semantics interpreter tower (§8.3) end to end:
/// parse the 7-file unit program, *run* it under the evaluator (the tower
/// interprets three test programs through linked units and call/cc), then
/// statically verify it and print the per-file CHECKS summary the
/// dissertation shows.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "interp/machine.h"

#include <cstdio>

using namespace spidey;

int main() {
  Program P;
  DiagnosticEngine Diags;
  if (!parseProgram(P, Diags, interpreterTowerFiles())) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Run the tower: base + arith + cbv + control + store interpreters
  // linked into one compound unit.
  Machine M(P);
  RunResult Out = M.runProgram();
  if (Out.St != RunResult::Status::Ok) {
    std::fprintf(stderr, "tower failed: %s\n", Out.Message.c_str());
    return 1;
  }
  std::printf("tower test results (app, catch/throw, store): %s\n\n",
              Out.Result.str(P.Syms).c_str());

  // Statically debug it.
  Analysis A = analyzeProgram(P);
  DebugReport Report = runChecks(P, A.Maps, *A.System);
  std::printf("%s", Report.perFileSummary(P).c_str());
  return 0;
}
