//===-- examples/quickstart.cpp - The sum.ss session -----------*- C++ -*-===//
///
/// \file
/// The chapter-1 walkthrough as a library client: analyze sum.ss, list the
/// unsafe operations, display the value-set invariant for `tree`
/// (fig. 1.2), and trace the erroneous nil back to its source (fig. 1.3).
///
/// Build & run:  ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"
#include "debugger/checks.h"
#include "debugger/flow.h"
#include "debugger/markup.h"
#include "lang/parser.h"
#include "types/type.h"

#include <cstdio>

using namespace spidey;

static const char *SumSs = R"scm(
; Sums leaves in a binary tree
(define (sum tree)
  (if (number? tree)
      tree
      (+ (sum (car tree))
         (sum (cdr tree)))))

(sum (cons (cons '() 1) 2))
)scm";

int main() {
  // 1. Parse.
  Program P;
  DiagnosticEngine Diags;
  if (!parseSource(P, Diags, SumSs, "sum.ss")) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // 2. Analyze: derive constraints and close them under the Θ rules.
  Analysis A = analyzeProgram(P);
  std::printf("Welcome to spidey.\n\n");

  // 3. Identify unsafe operations and show the marked-up program.
  DebugReport Report = runChecks(P, A.Maps, *A.System);
  std::printf("%s\n", annotateComponent(P, 0, Report).c_str());

  // 4. The value-set invariant for `tree` (the fig. 1.2 pop-up).
  const Expr &Sum = P.expr(P.Components[0].Forms[0].Body);
  SetVar TreeVar = A.Maps.varVar(Sum.Params[0]);
  TypeBuilder Types(*A.System, P.Syms);
  std::printf("tree : %s\n\n", Types.typeString(TreeVar).c_str());

  // 5. Explain where the erroneous nil comes from (the fig. 1.3 arrows).
  FlowGraph Flow(*A.System);
  SiteIndex Index(P, A.Maps);
  Constant Nil = A.Ctx->Constants.basic(ConstKind::Nil);
  if (auto Path = Flow.pathToSource(TreeVar, Nil)) {
    std::printf("the nil in tree's invariant flows from:\n");
    for (SetVar V : *Path)
      std::printf("  -> %s\n", Index.describe(V).c_str());
  }
  std::printf("\nThe argument (cons (cons '() 1) 2) is not a valid binary "
              "tree: its leaf is '().\n");
  return 0;
}
