//===-- examples/gunzip_audit.cpp - The §8.2 debugging session -*- C++ -*-===//
///
/// \file
/// Replays the gunzip/inflate audit of §8.2: analyze the buggy decoder,
/// enumerate the unsafe vector operations and their offending values (the
/// paper's "non-vector values" hunt), then analyze the repaired decoder,
/// show TOTAL CHECKS: 0, and demonstrate that it now reports truncated
/// input gracefully instead of crashing.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "interp/machine.h"
#include "lang/parser.h"

#include <cstdio>

using namespace spidey;

namespace {

void audit(const char *Name, const char *Phase) {
  const CorpusEntry &Entry = corpusProgram(Name);
  Program P;
  DiagnosticEngine Diags;
  if (!parseSource(P, Diags, Entry.Source, std::string(Name) + ".ss")) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return;
  }
  Analysis A = analyzeProgram(P);
  DebugReport Report = runChecks(P, A.Maps, *A.System);
  std::printf("== %s ==\n", Phase);
  for (const CheckResult &R : Report.Results)
    if (!R.Safe)
      std::printf("  line %-3u %s\n", R.Loc.Line, R.Reason.c_str());
  std::printf("%s\n", Report.summary(P).c_str());
}

} // namespace

int main() {
  audit("inflate-buggy", "inflate.ss as translated from the gzip sources");
  audit("inflate", "inflate.ss after the repairs of section 8.2");

  // The statically debugged program handles a truncated input file
  // gracefully (the paper's closing demonstration).
  const CorpusEntry &Fixed = corpusProgram("inflate");
  Program P;
  DiagnosticEngine Diags;
  parseSource(P, Diags, Fixed.Source, "inflate.ss");
  Machine M(P);
  M.setInput(""); // a truncated (empty) input file
  RunResult Out = M.runProgram();
  std::printf("> (gunzip \"~/tmp/t\")    ; truncated input\n");
  if (Out.St == RunResult::Status::UserError)
    std::printf("gunzip: %s\n", Out.Message.c_str());
  else
    std::printf("unexpected: %s\n", Out.Message.c_str());
  return 0;
}
