(define (first p) (car p))
(define (second p) (car (cdr p)))
(define (third p) (car (cdr (cdr p))))
