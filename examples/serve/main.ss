(define r1 (first good))
(define r2 (second good))
(define r3 (third good))
(define oops (first bad))
