(define good (cons 1 (cons 'two (cons "three" '()))))
(define bad 42)
