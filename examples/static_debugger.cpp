//===-- examples/static_debugger.cpp - MrSpidey-style CLI ------*- C++ -*-===//
///
/// \file
/// A console static debugger over the public API: analyze one or more
/// source files (or a named corpus program) componentially, print the
/// annotated source of each file with unsafe operations underlined, the
/// per-file CHECKS summary, and on request the type invariant of a
/// definition.
///
/// Usage:
///   static_debugger file1.ss [file2.ss ...]      analyze files
///   static_debugger --corpus NAME                analyze a corpus program
///   static_debugger --corpus NAME --type DEFINE  also print a type
///   static_debugger --list                       list corpus programs
///
//===----------------------------------------------------------------------===//

#include "componential/componential.h"
#include "corpus/corpus.h"
#include "debugger/checks.h"
#include "debugger/markup.h"
#include "types/type.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace spidey;

namespace {

int listCorpus() {
  for (const CorpusEntry &E : corpusPrograms())
    std::printf("%s\n", E.Name);
  return 0;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<SourceFile> Files;
  std::string TypeQuery;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--list") == 0)
      return listCorpus();
    if (std::strcmp(Argv[I], "--corpus") == 0 && I + 1 < Argc) {
      const CorpusEntry &E = corpusProgram(Argv[++I]);
      Files.push_back({std::string(E.Name) + ".ss", E.Source});
      continue;
    }
    if (std::strcmp(Argv[I], "--tower") == 0) {
      for (const SourceFile &F : interpreterTowerFiles())
        Files.push_back(F);
      continue;
    }
    if (std::strcmp(Argv[I], "--type") == 0 && I + 1 < Argc) {
      TypeQuery = Argv[++I];
      continue;
    }
    std::string Text;
    if (!readFile(Argv[I], Text)) {
      std::fprintf(stderr, "cannot read %s\n", Argv[I]);
      return 1;
    }
    Files.push_back({Argv[I], Text});
  }
  if (Files.empty()) {
    std::fprintf(stderr,
                 "usage: static_debugger file.ss... | --corpus NAME "
                 "[--type DEFINE] | --tower | --list\n");
    return 1;
  }

  Program P;
  DiagnosticEngine Diags;
  if (!parseProgram(P, Diags, Files)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Componential analysis with per-component reconstruction: the same
  // pipeline MrSpidey runs on multi-file programs (§7.1/§7.3).
  ComponentialAnalyzer CA(P, {});
  CA.run();
  for (uint32_t C = 0; C < P.Components.size(); ++C) {
    auto Full = CA.reconstruct(C);
    DebugReport Report = runChecks(P, CA.maps(), *Full);
    std::printf("%s\n", annotateComponent(P, C, Report).c_str());

    if (!TypeQuery.empty()) {
      Symbol Sym = P.Syms.lookup(TypeQuery);
      for (const TopForm &F : P.Components[C].Forms) {
        if (F.DefVar == NoVar || P.var(F.DefVar).Name != Sym)
          continue;
        TypeBuilder Types(*Full, P.Syms);
        std::printf("%s : %s\n\n", TypeQuery.c_str(),
                    Types.typeString(CA.maps().varVar(F.DefVar)).c_str());
      }
    }
  }
  return 0;
}
