//===-- fuzz/fuzzer.cpp ---------------------------------------*- C++ -*-===//

#include "fuzz/fuzzer.h"

#include "fuzz/shrink.h"

#include <sstream>

using namespace spidey;

unsigned spidey::fuzzSeedFor(unsigned BaseSeed, uint64_t Iteration) {
  // splitmix64 over (base, iteration) — decorrelates neighboring seeds.
  uint64_t X = (uint64_t(BaseSeed) << 32) ^ Iteration;
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  X = X ^ (X >> 31);
  // Keep seeds nonzero and printable-small enough to paste.
  return static_cast<unsigned>(X % 0x7FFFFFFFu) + 1;
}

std::string spidey::formatReproducer(const FuzzViolation &V) {
  std::ostringstream OS;
  OS << "; spidey-fuzz reproducer\n";
  OS << "; oracle: " << V.OracleName << "\n";
  OS << "; seed: " << V.ProgramSeed << "\n";
  for (const SourceFile &F : V.Minimized) {
    OS << ";;; file: " << F.Name << "\n";
    OS << F.Text;
    if (!F.Text.empty() && F.Text.back() != '\n')
      OS << "\n";
  }
  return OS.str();
}

std::vector<SourceFile> spidey::parseReproducer(const std::string &Text,
                                                std::string &OracleOut) {
  std::vector<SourceFile> Files;
  std::istringstream In(Text);
  std::string Line;
  std::string Pending; ///< text before the first file marker
  while (std::getline(In, Line)) {
    if (Line.rfind("; oracle:", 0) == 0) {
      OracleOut = Line.substr(9);
      while (!OracleOut.empty() && OracleOut.front() == ' ')
        OracleOut.erase(OracleOut.begin());
      continue;
    }
    if (Line.rfind(";;; file:", 0) == 0) {
      std::string Name = Line.substr(9);
      while (!Name.empty() && Name.front() == ' ')
        Name.erase(Name.begin());
      Files.push_back({Name.empty() ? "repro.ss" : Name, ""});
      continue;
    }
    if (Files.empty())
      Pending += Line + "\n";
    else
      Files.back().Text += Line + "\n";
  }
  if (Files.empty())
    Files.push_back({"repro.ss", Pending});
  return Files;
}

FuzzSummary spidey::runFuzz(const FuzzOptions &Opts) {
  FuzzSummary Summary;
  auto Log = [&](const std::string &Message) {
    if (Opts.Log)
      Opts.Log(Message);
  };

  for (uint64_t Iter = 0; Iter < Opts.Iters; ++Iter) {
    if (Summary.Violations.size() >= Opts.MaxViolations) {
      Log("stopping early: violation limit reached");
      break;
    }
    ++Summary.Iterations;
    FuzzGenConfig Gen = Opts.Gen;
    Gen.Seed = fuzzSeedFor(Opts.Seed, Iter);
    std::vector<SourceFile> Program = generateFuzzProgram(Gen);

    auto Report = [&](const std::string &OracleName,
                      const std::string &Message,
                      const FailurePredicate &StillFails) {
      FuzzViolation V;
      V.Iteration = Iter;
      V.ProgramSeed = Gen.Seed;
      V.OracleName = OracleName;
      V.Message = Message;
      V.Program = Program;
      V.Minimized = Program;
      Log("VIOLATION [" + OracleName + "] seed " +
          std::to_string(Gen.Seed) + ": " + Message);
      if (Opts.Shrink) {
        V.Minimized = shrinkProgram(Program, StillFails);
        size_t Bytes = 0;
        for (const SourceFile &F : V.Minimized)
          Bytes += F.Text.size();
        Log("  minimized to " + std::to_string(V.Minimized.size()) +
            " file(s), " + std::to_string(Bytes) + " bytes");
      }
      Summary.Violations.push_back(std::move(V));
    };

    for (unsigned OI = 0; OI < NumOracles; ++OI) {
      if (!(Opts.OracleMask & (1u << OI)))
        continue;
      Oracle O = static_cast<Oracle>(OI);
      OracleVerdict Verdict = checkOracle(O, Program, Opts.Oracle);
      ++Summary.OracleRuns[OI];
      if (!Verdict.Parsed) {
        Report("generate", "generated program failed to parse:\n" +
                               Verdict.Message,
               [&](const std::vector<SourceFile> &Candidate) {
                 return !checkOracle(O, Candidate, Opts.Oracle).Parsed;
               });
        break; // no point running other oracles on an unparsable program
      }
      if (Verdict.Violation) {
        OracleOptions OOpts = Opts.Oracle;
        Report(oracleName(O), Verdict.Message,
               [O, &OOpts](const std::vector<SourceFile> &Candidate) {
                 OracleVerdict R = checkOracle(O, Candidate, OOpts);
                 return R.Parsed && R.Violation;
               });
      }
    }

    if ((Iter + 1) % 100 == 0)
      Log("iteration " + std::to_string(Iter + 1) + "/" +
          std::to_string(Opts.Iters) + ", " +
          std::to_string(Summary.Violations.size()) + " violation(s)");
  }
  return Summary;
}
