//===-- fuzz/fuzzgen.cpp --------------------------------------*- C++ -*-===//

#include "fuzz/fuzzgen.h"

#include <random>
#include <sstream>

using namespace spidey;

namespace {

/// Rough value shape a generated expression aims for. "Aims": chaos rolls
/// substitute a wrong-shaped expression on purpose.
enum class Ty : uint8_t {
  Num,
  Bool,
  Str,
  List, ///< proper list of numbers
  Pair,
  Box,  ///< box of a number
  Vec,  ///< vector of numbers
  Fn1,  ///< unary function over numbers
  Any,
};

constexpr Ty DataTys[] = {Ty::Num,  Ty::Bool, Ty::Str, Ty::List,
                          Ty::Pair, Ty::Box,  Ty::Vec, Ty::Any};

struct GVar {
  std::string Name;
  Ty T;
};

class Gen {
public:
  explicit Gen(const FuzzGenConfig &Cfg) : Cfg(Cfg), Rng(Cfg.Seed) {}

  std::vector<SourceFile> run() {
    unsigned NumComponents = 1 + Rng() % std::max(1u, Cfg.MaxComponents);
    std::vector<SourceFile> Files;
    for (unsigned C = 0; C < NumComponents; ++C) {
      std::ostringstream OS;
      OS << "; fuzz component " << C << " (seed " << Cfg.Seed << ")\n";
      unsigned Forms = 2 + Rng() % std::max(2u, Cfg.MaxFormsPerFile - 1);
      for (unsigned F = 0; F < Forms; ++F)
        emitTopForm(OS);
      Files.push_back({"fuzz" + std::to_string(C) + ".ss", OS.str()});
    }
    // Final component: drive the program so values actually flow.
    std::ostringstream OS;
    OS << "; fuzz main (seed " << Cfg.Seed << ")\n";
    unsigned Drivers = 1 + Rng() % 3;
    for (unsigned I = 0; I < Drivers; ++I)
      OS << genExpr(pickTy(), Cfg.MaxDepth) << "\n";
    Files.push_back({"fuzzmain.ss", OS.str()});
    return Files;
  }

private:
  unsigned pct() { return Rng() % 100; }
  unsigned upTo(unsigned N) { return Rng() % std::max(1u, N); }

  Ty pickTy() { return DataTys[upTo(std::size(DataTys))]; }

  std::string fresh(const char *Stem) {
    return std::string(Stem) + std::to_string(Counter++);
  }

  /// A variable of shape \p T visible here: locals first, then globals
  /// (only already-emitted ones, so evaluation order is respected).
  const GVar *pickVar(Ty T) {
    std::vector<const GVar *> Candidates;
    for (const GVar &V : Locals)
      if (V.T == T)
        Candidates.push_back(&V);
    for (const GVar &V : Globals)
      if (V.T == T)
        Candidates.push_back(&V);
    if (Candidates.empty())
      return nullptr;
    return Candidates[upTo(Candidates.size())];
  }

  const GVar *pickAnyVar() {
    size_t Total = Locals.size() + Globals.size();
    if (!Total)
      return nullptr;
    size_t I = upTo(Total);
    return I < Locals.size() ? &Locals[I] : &Globals[I - Locals.size()];
  }

  //===--------------------------------------------------------------------===
  // Top-level forms.
  //===--------------------------------------------------------------------===

  void emitTopForm(std::ostringstream &OS) {
    unsigned Roll = pct();
    if (Roll < 40)
      emitDataDefine(OS);
    else if (Roll < 70)
      emitFnDefine(OS);
    else if (Roll < 78 && !Globals.empty())
      emitUnitPair(OS);
    else if (Roll < 88 && !Globals.empty())
      emitSetStatement(OS);
    else
      OS << genExpr(pickTy(), 2 + upTo(Cfg.MaxDepth)) << "\n";
  }

  void emitDataDefine(std::ostringstream &OS) {
    Ty T = pickTy();
    std::string Name = fresh("d");
    OS << "(define " << Name << " " << genExpr(T, 1 + upTo(Cfg.MaxDepth))
       << ")\n";
    Globals.push_back({Name, T});
  }

  void emitFnDefine(std::ostringstream &OS) {
    std::string Name = fresh("f");
    std::string Param = fresh("p");
    Ty ParamT = pct() < 60 ? Ty::Num : pickTy();
    Ty RetT = pct() < 70 ? Ty::Num : pickTy();
    Locals.push_back({Param, ParamT});
    std::string Body = genExpr(RetT, 1 + upTo(Cfg.MaxDepth));
    Locals.pop_back();
    OS << "(define (" << Name << " " << Param << ") " << Body << ")\n";
    if (ParamT == Ty::Num && RetT == Ty::Num)
      Globals.push_back({Name, Ty::Fn1});
    else
      Globals.push_back({Name, Ty::Any});
    // Usually call it right away so it contributes traces.
    if (pct() < 70) {
      std::string Res = fresh("r");
      OS << "(define " << Res << " (" << Name << " " << genExpr(ParamT, 2)
         << "))\n";
      Globals.push_back({Res, RetT});
    }
  }

  /// A unit defined in one form and invoked in the next: the multi-file
  /// unit split pattern of §3.6/§7.1.
  void emitUnitPair(std::ostringstream &OS) {
    std::string UnitName = fresh("u");
    std::string Import = fresh("w");
    std::string Export = fresh("e");
    Locals.push_back({Import, Ty::Num});
    std::string Body = genExpr(Ty::Num, 2);
    Locals.pop_back();
    OS << "(define " << UnitName << " (unit (import " << Import
       << ") (export " << Export << ") (define " << Export << " (lambda (q"
       << Counter << ") (+ q" << Counter << " " << Body << ")))))\n";
    // Invoke with an existing global (any shape: type confusion across the
    // unit boundary is part of the point).
    const GVar *Feed = pickVar(Ty::Num);
    if (!Feed || pct() < 25)
      Feed = pickAnyVar();
    std::string Got = fresh("g");
    OS << "(define " << Got << " (invoke " << UnitName << " " << Feed->Name
       << "))\n";
    Globals.push_back({Got, Ty::Any});
    std::string Res = fresh("r");
    OS << "(define " << Res << " (" << Got << " " << genExpr(Ty::Num, 1)
       << "))\n";
    Globals.push_back({Res, Ty::Any});
    ++Counter;
  }

  void emitSetStatement(std::ostringstream &OS) {
    GVar Target = *pickAnyVar();
    // Usually keep the shape; sometimes flip it (the analysis must union).
    Ty NewT = pct() < 60 ? Target.T : pickTy();
    OS << "(set! " << Target.Name << " " << genExpr(NewT, 1 + upTo(3))
       << ")\n";
    for (GVar &V : Globals)
      if (V.Name == Target.Name)
        V.T = NewT == Target.T ? V.T : Ty::Any;
  }

  //===--------------------------------------------------------------------===
  // Expressions.
  //===--------------------------------------------------------------------===

  std::string genExpr(Ty Want, unsigned Depth) {
    if (Nodes > NodeBudget)
      Depth = 0;
    ++Nodes;
    if (Depth > 0 && pct() < Cfg.ChaosPercent)
      return genChaos(Depth - 1);
    if (Depth == 0 || pct() < 25)
      return genTerminal(Want);
    switch (upTo(9)) {
    case 0:
      return "(if " + genExpr(Ty::Bool, Depth - 1) + " " +
             genExpr(Want, Depth - 1) + " " + genExpr(Want, Depth - 1) + ")";
    case 1:
      return genLet(Want, Depth);
    case 2:
      return genLetrecLoop(Want, Depth);
    case 3:
      return genFilter(Want, Depth);
    case 4:
      return "(begin " + genStatement(Depth - 1) + " " +
             genExpr(Want, Depth - 1) + ")";
    case 5:
      return genCallcc(Want, Depth);
    case 6:
      return genImmediateApp(Want, Depth);
    case 7:
      if (Want == Ty::Num)
        return genNumOp(Depth);
      return genConstructor(Want, Depth);
    default:
      return genConstructor(Want, Depth);
    }
  }

  std::string genTerminal(Ty Want) {
    if (const GVar *V = pickVar(Want); V && pct() < 55)
      return V->Name;
    switch (Want) {
    case Ty::Num:
      return std::to_string(int(upTo(20)) - 5);
    case Ty::Bool:
      return pct() < 50 ? "#t" : "#f";
    case Ty::Str: {
      const char *Strs[] = {"\"\"", "\"ab\"", "\"fuzz\"", "\"xyzzy\""};
      return Strs[upTo(4)];
    }
    case Ty::List:
      return pct() < 40 ? "'()"
                        : "(list " + std::to_string(upTo(9)) + " " +
                              std::to_string(upTo(9)) + ")";
    case Ty::Pair:
      return "(cons " + std::to_string(upTo(9)) + " " +
             (pct() < 50 ? "'tag" : "'()") + ")";
    case Ty::Box:
      return "(box " + std::to_string(upTo(9)) + ")";
    case Ty::Vec:
      return "(vector " + std::to_string(upTo(9)) + " " +
             std::to_string(upTo(9)) + ")";
    case Ty::Fn1: {
      std::string P = fresh("a");
      return "(lambda (" + P + ") (+ " + P + " " + std::to_string(upTo(5)) +
             "))";
    }
    case Ty::Any: {
      const char *Atoms[] = {"'sym", "0", "#t", "'()", "#\\a", "(void)"};
      return Atoms[upTo(6)];
    }
    }
    return "0";
  }

  /// An expression of a random shape where some other shape was wanted:
  /// most land in checked-primitive argument positions downstream and
  /// become faults the debugger must flag.
  std::string genChaos(unsigned Depth) {
    switch (upTo(5)) {
    case 0:
      return "(car " + genExpr(Ty::Num, std::min(Depth, 1u)) + ")";
    case 1:
      return "(unbox " + genTerminal(pickTy()) + ")";
    case 2:
      return "(+ " + genTerminal(Ty::Num) + " " + genTerminal(pickTy()) +
             ")";
    case 3:
      return genTerminal(pickTy());
    default: {
      const GVar *V = pickAnyVar();
      return V ? V->Name : genTerminal(Ty::Any);
    }
    }
  }

  std::string genLet(Ty Want, unsigned Depth) {
    std::string Name = fresh("v");
    Ty BoundT = pickTy();
    std::string Init = genExpr(BoundT, Depth - 1);
    Locals.push_back({Name, BoundT});
    std::string Body = genExpr(Want, Depth - 1);
    Locals.pop_back();
    return "(let ([" + Name + " " + Init + "]) " + Body + ")";
  }

  /// A bounded recursive loop over a list: letrec + pair?-guard, the
  /// canonical shape that exercises recursion without guaranteed
  /// divergence (the step budget catches the rest).
  std::string genLetrecLoop(Ty Want, unsigned Depth) {
    std::string F = fresh("loop");
    std::string L = fresh("l");
    std::string AccName = fresh("acc");
    std::string Acc = Want == Ty::List
                          ? "(cons (car " + L + ") " + AccName + ")"
                          : "(+ 1 " + AccName + ")";
    std::string Init = Want == Ty::List ? "'()" : "0";
    std::string List = genExpr(Ty::List, Depth - 1);
    std::string Out = "(letrec ([" + F + " (lambda (" + L + " " + AccName +
                      ") (if (pair? " + L + ") (" + F + " (cdr " + L + ") " +
                      Acc + ") " + AccName + "))]) (" + F + " " + List + " " +
                      Init + "))";
    if (Want == Ty::Num || Want == Ty::List)
      return Out;
    // Other shapes: wrap the loop result in a begin so the loop still
    // contributes flow.
    return "(begin " + Out + " " + genExpr(Want, Depth > 1 ? Depth - 2 : 0) +
           ")";
  }

  /// Predicate-guarded access — the primitive-filter patterns of App. E.5.
  /// Scope-vector pointers don't survive the recursive genExpr calls
  /// (pushes reallocate), so the picked variable is copied out first.
  std::string genFilter(Ty Want, unsigned Depth) {
    const GVar *Picked = pickAnyVar();
    if (!Picked)
      return genTerminal(Want);
    std::string V = Picked->Name;
    std::string Fallback = genExpr(Want, Depth > 1 ? Depth - 2 : 0);
    switch (upTo(4)) {
    case 0:
      if (Want == Ty::Num)
        return "(if (number? " + V + ") (+ " + V + " 1) " + Fallback + ")";
      break;
    case 1:
      return "(if (pair? " + V + ") " +
             (Want == Ty::Num ? "(begin (car " + V + ") " + Fallback + ")"
                              : Fallback) +
             " " + Fallback + ")";
    case 2:
      if (Want == Ty::Num)
        return "(if (string? " + V + ") (string-length " + V + ") " +
               Fallback + ")";
      break;
    default:
      return "(if (null? " + V + ") " + Fallback + " " + Fallback + ")";
    }
    return "(if (boolean? " + V + ") " + Fallback + " " + Fallback + ")";
  }

  std::string genStatement(unsigned Depth) {
    const GVar *Box = pickVar(Ty::Box);
    const GVar *Vec = pickVar(Ty::Vec);
    std::string BoxName = Box ? Box->Name : "";
    std::string VecName = Vec ? Vec->Name : "";
    switch (upTo(4)) {
    case 0:
      if (Box)
        return "(set-box! " + BoxName + " " + genExpr(Ty::Num, Depth) + ")";
      [[fallthrough]];
    case 1:
      if (Vec)
        return "(vector-set! " + VecName + " " + std::to_string(upTo(2)) +
               " " + genExpr(Ty::Num, Depth) + ")";
      [[fallthrough]];
    default:
      return genExpr(pickTy(), Depth);
    }
  }

  std::string genCallcc(Ty Want, unsigned Depth) {
    std::string K = fresh("k");
    std::string Escape = genExpr(Want, Depth - 1);
    std::string Normal = genExpr(Want, Depth - 1);
    if (pct() < 15)
      return "(+ 1 (abort " + genTerminal(Ty::Any) + "))";
    return "(call/cc (lambda (" + K + ") (if " +
           genExpr(Ty::Bool, Depth > 1 ? Depth - 2 : 0) + " (" + K + " " +
           Escape + ") " + Normal + ")))";
  }

  std::string genImmediateApp(Ty Want, unsigned Depth) {
    if (const GVar *F = pickVar(Ty::Fn1); F && Want == Ty::Num && pct() < 50)
      return "(" + F->Name + " " + genExpr(Ty::Num, Depth - 1) + ")";
    std::string P = fresh("x");
    Ty ArgT = pickTy();
    std::string Arg = genExpr(ArgT, Depth - 1);
    Locals.push_back({P, ArgT});
    std::string Body = genExpr(Want, Depth - 1);
    Locals.pop_back();
    return "((lambda (" + P + ") " + Body + ") " + Arg + ")";
  }

  std::string genNumOp(unsigned Depth) {
    const char *Ops[] = {"+", "-", "*", "min", "max"};
    switch (upTo(7)) {
    case 0: {
      const GVar *B = pickVar(Ty::Box);
      if (B)
        return "(unbox " + B->Name + ")";
      return "(unbox (box " + genExpr(Ty::Num, Depth - 1) + "))";
    }
    case 1: {
      const GVar *V = pickVar(Ty::Vec);
      if (V)
        return "(vector-ref " + V->Name + " " + std::to_string(upTo(2)) +
               ")";
      return "(vector-length " + genExpr(Ty::Vec, Depth - 1) + ")";
    }
    case 2: {
      const GVar *P = pickVar(Ty::Pair);
      if (P)
        return "(car " + P->Name + ")";
      return "(car " + genExpr(Ty::Pair, Depth - 1) + ")";
    }
    case 3:
      return "(string-length " + genExpr(Ty::Str, Depth - 1) + ")";
    default:
      return "(" + std::string(Ops[upTo(std::size(Ops))]) + " " +
             genExpr(Ty::Num, Depth - 1) + " " + genExpr(Ty::Num, Depth - 1) +
             ")";
    }
  }

  std::string genConstructor(Ty Want, unsigned Depth) {
    switch (Want) {
    case Ty::List:
      return "(cons " + genExpr(Ty::Num, Depth - 1) + " " +
             genExpr(Ty::List, Depth - 1) + ")";
    case Ty::Pair:
      return "(cons " + genExpr(pickTy(), Depth - 1) + " " +
             genExpr(pickTy(), Depth - 1) + ")";
    case Ty::Box:
      return "(box " + genExpr(Ty::Num, Depth - 1) + ")";
    case Ty::Vec:
      return "(vector " + genExpr(Ty::Num, Depth - 1) + " " +
             genExpr(Ty::Num, Depth - 1) + ")";
    case Ty::Bool: {
      const char *Preds[] = {"pair?", "null?",   "number?",
                             "box?",  "vector?", "procedure?"};
      return "(" + std::string(Preds[upTo(std::size(Preds))]) + " " +
             genExpr(pickTy(), Depth - 1) + ")";
    }
    case Ty::Str:
      return "(string-append " + genExpr(Ty::Str, Depth - 1) + " " +
             genExpr(Ty::Str, Depth - 1) + ")";
    case Ty::Fn1: {
      std::string P = fresh("a");
      Locals.push_back({P, Ty::Num});
      std::string Body = genExpr(Ty::Num, Depth - 1);
      Locals.pop_back();
      return "(lambda (" + P + ") " + Body + ")";
    }
    case Ty::Num:
      return genNumOp(Depth);
    case Ty::Any:
      return genExpr(pickTy(), Depth - 1);
    }
    return genTerminal(Want);
  }

  FuzzGenConfig Cfg;
  std::mt19937 Rng;
  std::vector<GVar> Globals;
  std::vector<GVar> Locals;
  unsigned Counter = 0;
  unsigned Nodes = 0;
  static constexpr unsigned NodeBudget = 900;
};

} // namespace

std::vector<SourceFile>
spidey::generateFuzzProgram(const FuzzGenConfig &Config) {
  return Gen(Config).run();
}
