//===-- fuzz/shrink.cpp ---------------------------------------*- C++ -*-===//

#include "fuzz/shrink.h"

#include "support/sexpr.h"

#include <sstream>

using namespace spidey;

namespace {

/// Renders an SExpr back to source text that round-trips through the
/// reader (SExpr::str is a display form: it does not escape strings or
/// name special characters, so it is not safe for re-parsing).
void render(const SExpr &E, const SymbolTable &Syms, std::ostringstream &OS) {
  switch (E.K) {
  case SExpr::Kind::Symbol:
    OS << Syms.name(E.Sym);
    break;
  case SExpr::Kind::Number:
    if (E.Num == static_cast<long long>(E.Num))
      OS << static_cast<long long>(E.Num);
    else
      OS << E.Num;
    break;
  case SExpr::Kind::String:
    OS << '"';
    for (char C : E.Str) {
      if (C == '"' || C == '\\')
        OS << '\\' << C;
      else if (C == '\n')
        OS << "\\n";
      else if (C == '\t')
        OS << "\\t";
      else
        OS << C;
    }
    OS << '"';
    break;
  case SExpr::Kind::Boolean:
    OS << (E.Bool ? "#t" : "#f");
    break;
  case SExpr::Kind::Char:
    if (E.Ch == ' ')
      OS << "#\\space";
    else if (E.Ch == '\n')
      OS << "#\\newline";
    else if (E.Ch == '\t')
      OS << "#\\tab";
    else if (E.Ch == '\0')
      OS << "#\\nul";
    else
      OS << "#\\" << E.Ch;
    break;
  case SExpr::Kind::List: {
    OS << '(';
    bool First = true;
    for (const SExpr &Kid : E.Elems) {
      if (!First)
        OS << ' ';
      First = false;
      render(Kid, Syms, OS);
    }
    OS << ')';
    break;
  }
  }
}

class Shrinker {
public:
  Shrinker(const FailurePredicate &StillFails, const ShrinkOptions &Opts)
      : StillFails(StillFails), Opts(Opts) {}

  std::vector<SourceFile> run(std::vector<SourceFile> Files) {
    Best = std::move(Files);
    bool Progress = true;
    while (Progress && Checks < Opts.MaxChecks) {
      Progress = false;
      Progress |= dropFiles();
      Progress |= dropForms();
      Progress |= reduceForms();
    }
    return Best;
  }

private:
  bool accepts(const std::vector<SourceFile> &Candidate) {
    if (Checks >= Opts.MaxChecks)
      return false;
    ++Checks;
    if (!StillFails(Candidate))
      return false;
    Best = Candidate;
    return true;
  }

  bool dropFiles() {
    bool Progress = false;
    for (size_t I = 0; I < Best.size() && Best.size() > 1;) {
      std::vector<SourceFile> Candidate = Best;
      Candidate.erase(Candidate.begin() + I);
      if (accepts(Candidate))
        Progress = true; // Best shrank; retry same index
      else
        ++I;
    }
    return Progress;
  }

  /// The top-level forms of one file, or empty if it does not read back
  /// (predicate-relevant bytes may be non-sexpr; leave such files alone).
  std::vector<SExpr> formsOf(const std::string &Text, SymbolTable &Syms) {
    DiagnosticEngine Diags;
    std::vector<SExpr> Forms = readSExprs(Text, 0, Syms, Diags);
    if (Diags.hasErrors())
      return {};
    return Forms;
  }

  std::string renderForms(const std::vector<SExpr> &Forms,
                          const SymbolTable &Syms) {
    std::ostringstream OS;
    for (const SExpr &F : Forms) {
      render(F, Syms, OS);
      OS << "\n";
    }
    return OS.str();
  }

  bool dropForms() {
    bool Progress = false;
    for (size_t FI = 0; FI < Best.size(); ++FI) {
      SymbolTable Syms;
      std::vector<SExpr> Forms = formsOf(Best[FI].Text, Syms);
      for (size_t I = 0; I < Forms.size();) {
        std::vector<SExpr> Candidate = Forms;
        Candidate.erase(Candidate.begin() + I);
        std::vector<SourceFile> Files = Best;
        Files[FI].Text = renderForms(Candidate, Syms);
        if (accepts(Files)) {
          Forms = std::move(Candidate);
          Progress = true;
        } else {
          ++I;
        }
      }
    }
    return Progress;
  }

  /// Candidate replacements for one node, smallest first.
  std::vector<SExpr> replacementsFor(const SExpr &E, SymbolTable &Syms) {
    std::vector<SExpr> Out;
    auto Atom = [&](const char *Text) {
      DiagnosticEngine Diags;
      std::vector<SExpr> R = readSExprs(Text, 0, Syms, Diags);
      if (!Diags.hasErrors() && R.size() == 1)
        Out.push_back(std::move(R[0]));
    };
    if (E.K == SExpr::Kind::List) {
      Atom("0");
      Atom("#f");
      Atom("(quote ())");
      // Hoist each child.
      for (const SExpr &Kid : E.Elems)
        Out.push_back(Kid);
    } else if (E.K == SExpr::Kind::Number && E.Num != 0) {
      Atom("0");
    } else if (E.K == SExpr::Kind::String && !E.Str.empty()) {
      Atom("\"\"");
    }
    return Out;
  }

  /// One structural pass over every subtree of every form of every file.
  bool reduceForms() {
    bool Progress = false;
    for (size_t FI = 0; FI < Best.size(); ++FI) {
      SymbolTable Syms;
      std::vector<SExpr> Forms = formsOf(Best[FI].Text, Syms);
      if (Forms.empty())
        continue;
      bool Changed = true;
      while (Changed && Checks < Opts.MaxChecks) {
        Changed = false;
        for (size_t I = 0; I < Forms.size(); ++I)
          Changed |= reduceNode(Forms, I, Forms[I], FI, Syms);
        Progress |= Changed;
      }
    }
    return Progress;
  }

  /// Tries replacements and child deletions at \p Node (in place); returns
  /// true if any candidate was accepted.
  bool reduceNode(std::vector<SExpr> &Forms, size_t FormIdx, SExpr &Node,
                  size_t FI, SymbolTable &Syms) {
    auto Try = [&](SExpr Replacement) {
      SExpr Saved = Node;
      Node = std::move(Replacement);
      std::vector<SourceFile> Files = Best;
      Files[FI].Text = renderForms(Forms, Syms);
      if (accepts(Files))
        return true;
      Node = std::move(Saved);
      return false;
    };

    bool Progress = false;
    for (SExpr &R : replacementsFor(Node, Syms))
      if (Try(std::move(R))) {
        Progress = true;
        break;
      }
    if (Node.K == SExpr::Kind::List) {
      // Delete children one at a time (keep the head symbol).
      for (size_t I = Node.Elems.size(); I-- > 1;) {
        SExpr Saved = Node;
        Node.Elems.erase(Node.Elems.begin() + I);
        std::vector<SourceFile> Files = Best;
        Files[FI].Text = renderForms(Forms, Syms);
        if (accepts(Files))
          Progress = true;
        else
          Node = std::move(Saved);
      }
      // Recurse.
      for (SExpr &Kid : Node.Elems)
        Progress |= reduceNode(Forms, FormIdx, Kid, FI, Syms);
    }
    return Progress;
  }

  const FailurePredicate &StillFails;
  ShrinkOptions Opts;
  std::vector<SourceFile> Best;
  size_t Checks = 0;
};

} // namespace

std::vector<SourceFile>
spidey::shrinkProgram(std::vector<SourceFile> Files,
                      const FailurePredicate &StillFails,
                      const ShrinkOptions &Opts) {
  return Shrinker(StillFails, Opts).run(std::move(Files));
}
