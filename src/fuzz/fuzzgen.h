//===-- fuzz/fuzzgen.h - Random program generator --------------*- C++ -*-===//
///
/// \file
/// A seeded random *expression-level* program generator for differential
/// fuzzing. Unlike the calibrated corpus generator (src/corpus), which
/// emits fault-free programs shaped like the paper's benchmarks, this one
/// explores the full surface language — lambdas, let/letrec, set!, boxes,
/// vectors, pairs, call/cc and abort, checked primitives with predicate
/// filters, and multi-file unit splits — and intentionally includes
/// occasional ill-typed subexpressions so that run-time faults and their
/// check sites are exercised too.
///
/// Generated programs are always *closed* (every variable reference is
/// bound, and top-level references respect evaluation order, so no define
/// is read before its cell is initialized). They may fault, diverge (the
/// oracles run them under a step budget), or abort — those are valid
/// behaviors the metamorphic oracles must agree on.
///
/// Generation is fully deterministic: the same config yields byte-
/// identical files on every run, so a reported seed always replays.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_FUZZ_FUZZGEN_H
#define SPIDEY_FUZZ_FUZZGEN_H

#include "lang/parser.h"

#include <vector>

namespace spidey {

struct FuzzGenConfig {
  unsigned Seed = 1;
  /// Component count is drawn from [1, MaxComponents] per seed — the
  /// multi-file splits that stress the componential combiner.
  unsigned MaxComponents = 3;
  /// Top-level forms per component are drawn from [2, MaxFormsPerFile].
  unsigned MaxFormsPerFile = 8;
  /// Maximum expression nesting depth.
  unsigned MaxDepth = 5;
  /// Percentage of expression positions filled with a deliberately
  /// ill-typed subexpression (exercises check sites and fault flagging).
  unsigned ChaosPercent = 6;
};

/// Generates a deterministic random program.
std::vector<SourceFile> generateFuzzProgram(const FuzzGenConfig &Config);

} // namespace spidey

#endif // SPIDEY_FUZZ_FUZZGEN_H
