//===-- fuzz/oracles.h - Metamorphic oracles -------------------*- C++ -*-===//
///
/// \file
/// The metamorphic oracles of the differential fuzzing harness. Each
/// oracle takes a program (as source files) and checks one of the
/// repository's central correctness claims:
///
///  - Soundness (Thm 2.6.4): CEK-evaluate under a step budget; every
///    (label, value) observation must be predicted by the analysis, and
///    every run-time fault must land on a check site the debugger flags
///    as unsafe. Checked across three analysis configurations.
///  - Simplify (Lemma 6.1.1 / §6.4): the constants visible at external
///    variables — and along monotone selector paths below them, to a
///    configurable depth — agree across the none/empty/unreachable/
///    ε-removal/Hopcroft simplifiers.
///  - Componential (§7.1): the whole-program analysis and the componential
///    analysis (derive → simplify → combine → close) agree on the
///    constants of every top-level definition.
///  - Threads: the componential combined system is byte-identical
///    (ConstraintSystem::str()) for Threads=1 and Threads=N.
///  - Closure: re-closing the worklist engine's closed whole-program
///    system with the naive reference fixpoint (ReferenceClosure) must
///    not grow any variable's constant set — i.e. the incremental engine
///    reached the full Θ fixpoint.
///  - ParClose: the sharded parallel close (ComponentialOptions::
///    ParallelClose, DESIGN.md §11) yields a combined system byte-identical
///    to the sequential engine across several shard counts, including a
///    shard count that does not divide the variable space evenly.
///  - Chaos: a serve session driven with every cache/store/parse fault
///    site armed (seeded from the program text) must answer every request
///    with well-formed JSON, never fail an analyze (without a deadline,
///    lost cache entries only cost re-derivation), and — once faults are
///    disarmed — hold a combined system byte-identical to a fault-free
///    cold run.
///  - Query: the demand-driven serve answers (DESIGN.md §12) are
///    identical to the closed engine's: every top-level name's flow
///    response (var, kinds, parent/child/ancestor/descendant counts)
///    matches a per-request FlowGraph over a reference analyzer, and
///    check-summary (possible, unsafe, the summary bytes) matches a full
///    reconstruct sweep — cold, warm-repeated, and across per-file edit
///    cycles that exercise the memo invalidation. A budget-starved query
///    must degrade cleanly and the next in-budget query answer exactly.
///
/// Oracles never throw; a program that fails to parse is reported via
/// Parsed=false (for generated programs that is a generator bug).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_FUZZ_ORACLES_H
#define SPIDEY_FUZZ_ORACLES_H

#include "lang/parser.h"

#include <string>
#include <vector>

namespace spidey {

enum class Oracle : uint8_t {
  Soundness,
  Simplify,
  Componential,
  Threads,
  Closure,
  ParClose,
  Chaos,
  Query,
};
inline constexpr unsigned NumOracles = 8;

const char *oracleName(Oracle O);
/// Parses an oracle name; returns false if unknown.
bool oracleFromName(std::string_view Name, Oracle &Out);

struct OracleOptions {
  /// Machine step budget for the soundness oracle.
  uint64_t Fuel = 300'000;
  /// Thread count compared against 1 by the thread-determinism oracle.
  unsigned Threads = 4;
  /// Selector-path probe depth for the simplify/componential oracles.
  unsigned Depth = 4;
  /// Simulated stdin for the soundness oracle's evaluation.
  std::string Input;
};

struct OracleVerdict {
  bool Parsed = true;
  bool Violation = false;
  std::string Message; ///< diagnosis of the first violation (or parse error)
};

/// Runs one oracle over a program.
OracleVerdict checkOracle(Oracle O, const std::vector<SourceFile> &Files,
                          const OracleOptions &Opts);

} // namespace spidey

#endif // SPIDEY_FUZZ_ORACLES_H
