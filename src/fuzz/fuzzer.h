//===-- fuzz/fuzzer.h - Differential fuzzing driver ------------*- C++ -*-===//
///
/// \file
/// The standing correctness harness: generate a random program per
/// iteration (seed derived deterministically from the base seed), run the
/// enabled metamorphic oracles, and on any violation delta-debug the
/// program down to a minimal reproducer.
///
/// Reproducers use a single-text format so they can be checked into
/// tests/regress/ and replayed standalone:
///
///   ; spidey-fuzz reproducer
///   ; oracle: soundness
///   ; seed: 12345
///   ;;; file: fuzz0.ss
///   (define d0 ...)
///   ;;; file: fuzzmain.ss
///   ...
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_FUZZ_FUZZER_H
#define SPIDEY_FUZZ_FUZZER_H

#include "fuzz/fuzzgen.h"
#include "fuzz/oracles.h"

#include <functional>
#include <string>
#include <vector>

namespace spidey {

struct FuzzOptions {
  uint64_t Iters = 100;
  unsigned Seed = 1;
  /// Bitmask over Oracle values; all four by default.
  uint32_t OracleMask = (1u << NumOracles) - 1;
  OracleOptions Oracle;
  /// Template for per-iteration generator configs (Seed is overwritten).
  FuzzGenConfig Gen;
  bool Shrink = true;
  /// Stop after this many violations.
  size_t MaxViolations = 5;
  /// Optional progress/violation logger.
  std::function<void(const std::string &)> Log;
};

struct FuzzViolation {
  uint64_t Iteration = 0;
  unsigned ProgramSeed = 0;
  /// Oracle name, or "generate" when the generated program failed to
  /// parse (a generator bug — also worth a reproducer).
  std::string OracleName;
  std::string Message;
  std::vector<SourceFile> Program;   ///< as generated
  std::vector<SourceFile> Minimized; ///< after shrinking (== Program if off)
};

struct FuzzSummary {
  uint64_t Iterations = 0;
  uint64_t OracleRuns[NumOracles] = {};
  std::vector<FuzzViolation> Violations;
  bool ok() const { return Violations.empty(); }
};

/// Runs the fuzzing loop.
FuzzSummary runFuzz(const FuzzOptions &Opts);

/// The deterministic per-iteration program seed (splitmix64 of base+iter).
unsigned fuzzSeedFor(unsigned BaseSeed, uint64_t Iteration);

/// Renders a violation's minimized program in the reproducer format.
std::string formatReproducer(const FuzzViolation &V);

/// Splits reproducer text back into source files; also accepts plain
/// single-file programs (no ";;; file:" markers). \p OracleOut receives
/// the "; oracle:" directive if present.
std::vector<SourceFile> parseReproducer(const std::string &Text,
                                        std::string &OracleOut);

} // namespace spidey

#endif // SPIDEY_FUZZ_FUZZER_H
