//===-- fuzz/shrink.h - Delta-debugging shrinker ---------------*- C++ -*-===//
///
/// \file
/// Minimizes a multi-file program with respect to a failure predicate
/// ("this program still violates oracle X"). Three nested reduction
/// passes, iterated to a fixed point under a check budget:
///
///  1. drop whole files,
///  2. drop top-level forms within a file,
///  3. structural reduction inside each remaining form: replace a list
///     node by one of its children (hoisting), delete a child, or replace
///     a subtree by a minimal atom.
///
/// Candidates that fail to parse simply make the predicate return false —
/// the predicate must fully replay the failure — so the shrinker needs no
/// language knowledge beyond the s-expression reader.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_FUZZ_SHRINK_H
#define SPIDEY_FUZZ_SHRINK_H

#include "lang/parser.h"

#include <functional>
#include <vector>

namespace spidey {

/// Returns true if the candidate program still exhibits the failure.
using FailurePredicate =
    std::function<bool(const std::vector<SourceFile> &)>;

struct ShrinkOptions {
  /// Maximum number of predicate evaluations.
  size_t MaxChecks = 2000;
};

/// Minimizes \p Files. The input must satisfy \p StillFails; the result
/// does too.
std::vector<SourceFile> shrinkProgram(std::vector<SourceFile> Files,
                                      const FailurePredicate &StillFails,
                                      const ShrinkOptions &Opts = {});

} // namespace spidey

#endif // SPIDEY_FUZZ_SHRINK_H
