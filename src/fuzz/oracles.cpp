//===-- fuzz/oracles.cpp --------------------------------------*- C++ -*-===//

#include "fuzz/oracles.h"

#include "componential/componential.h"
#include "constraints/reference_closure.h"
#include "debugger/checks.h"
#include "debugger/flow.h"
#include "interp/machine.h"
#include "serve/serve.h"
#include "simplify/simplify.h"
#include "support/faultinject.h"

#include <algorithm>
#include <unordered_set>

#include <map>
#include <set>
#include <sstream>

using namespace spidey;

const char *spidey::oracleName(Oracle O) {
  switch (O) {
  case Oracle::Soundness:
    return "soundness";
  case Oracle::Simplify:
    return "simplify";
  case Oracle::Componential:
    return "componential";
  case Oracle::Threads:
    return "threads";
  case Oracle::Closure:
    return "closure";
  case Oracle::ParClose:
    return "parclose";
  case Oracle::Chaos:
    return "chaos";
  case Oracle::Query:
    return "query";
  }
  return "?";
}

bool spidey::oracleFromName(std::string_view Name, Oracle &Out) {
  for (unsigned I = 0; I < NumOracles; ++I)
    if (Name == oracleName(static_cast<Oracle>(I))) {
      Out = static_cast<Oracle>(I);
      return true;
    }
  return false;
}

namespace {

struct ParsedProgram {
  Program Prog;
  bool Ok = false;
  std::string Error;
};

ParsedProgram parseIt(const std::vector<SourceFile> &Files) {
  ParsedProgram R;
  DiagnosticEngine Diags;
  R.Ok = parseProgram(R.Prog, Diags, Files);
  if (!R.Ok)
    R.Error = Diags.str();
  return R;
}

/// Renders the constant set of a group of variables, canonically (sorted,
/// deduplicated, by display string — comparable across contexts).
std::string constsOf(const ConstraintSystem &S, const std::set<SetVar> &Vs,
                     const SymbolTable &Syms) {
  std::set<std::string> Names;
  for (SetVar V : Vs)
    for (Constant C : S.constantsOf(V))
      Names.insert(S.context().Constants.str(C, Syms));
  std::string Out = "{";
  for (const std::string &N : Names)
    Out += " " + N;
  return Out + " }";
}

/// Appends "<path> = {consts}" lines for \p Vs and, recursively, for the
/// variable groups one monotone selector below, to \p Depth; returns true
/// if the subtree contains any constant. Grouping by selector *name* makes
/// the profile a pure function of the observable flow, independent of
/// variable numbering — so profiles of systems in different contexts
/// (whole-program vs. componential) are comparable. Constant-free subtrees
/// are pruned: a selector edge to a provably empty set is observationally
/// identical to no edge, and simplification is free to drop it.
bool probe(const ConstraintSystem &S, const SymbolTable &Syms,
           const std::set<SetVar> &Vs, unsigned Depth, const std::string &Path,
           std::string &Out, bool Root = true) {
  std::string Line = Path + " = " + constsOf(S, Vs, Syms) + "\n";
  bool NonEmpty = Line.find('{') + 2 != Line.find('}'); // "{ }" is empty
  std::string KidsOut;
  if (Depth > 0) {
    const SelectorTable &Sels = S.context().Selectors;
    std::map<std::string, std::set<SetVar>> Kids;
    for (SetVar V : Vs)
      for (const LowerBound &L : S.lowerBounds(V))
        if (L.K == LowerBound::Kind::SelLB && Sels.isMonotone(L.Sel))
          Kids[Sels.name(L.Sel)].insert(L.Other);
    for (const auto &[Name, Group] : Kids)
      NonEmpty |=
          probe(S, Syms, Group, Depth - 1, Path + "." + Name, KidsOut, false);
  }
  if (Root || NonEmpty)
    Out += Line + KidsOut;
  return NonEmpty;
}

/// The observable profile of a closed system at one component's top-level
/// definitions: constants per define, plus selector-path constants to
/// \p Depth.
std::string profileComponent(const Program &P, const Component &C,
                             const AnalysisMaps &Maps,
                             const ConstraintSystem &S, unsigned Depth) {
  std::string Out;
  for (const TopForm &F : C.Forms) {
    if (F.DefVar == NoVar || Maps.VarVar[F.DefVar] == NoSetVar)
      continue;
    probe(S, P.Syms, {Maps.VarVar[F.DefVar]}, Depth,
          P.Syms.name(P.var(F.DefVar).Name), Out);
  }
  return Out;
}

/// Whole-program profile: every component's definitions.
std::string profile(const Program &P, const AnalysisMaps &Maps,
                    const ConstraintSystem &S, unsigned Depth) {
  std::string Out;
  for (const Component &C : P.Components)
    Out += profileComponent(P, C, Maps, S, Depth);
  return Out;
}

/// First line where two profiles disagree, for the violation message.
std::string firstDiff(const std::string &A, const std::string &B) {
  std::istringstream SA(A), SB(B);
  std::string LA, LB;
  for (;;) {
    bool HA = static_cast<bool>(std::getline(SA, LA));
    bool HB = static_cast<bool>(std::getline(SB, LB));
    if (!HA && !HB)
      return "(identical?)";
    if (!HA || !HB || LA != LB)
      return "'" + (HA ? LA : std::string("<missing>")) + "' vs '" +
             (HB ? LB : std::string("<missing>")) + "'";
  }
}

//===----------------------------------------------------------------------===
// Oracle 1: soundness against the evaluator.
//===----------------------------------------------------------------------===

OracleVerdict checkSoundness(const Program &P, const OracleOptions &Opts) {
  struct Config {
    const char *Name;
    AnalysisOptions Opts;
  };
  std::vector<Config> Configs;
  Configs.push_back({"mono+split", {}});
  {
    AnalysisOptions O;
    O.IfSplitting = false;
    Configs.push_back({"mono", O});
  }
  {
    AnalysisOptions O;
    O.Poly = PolyMode::Copy;
    Configs.push_back({"copy+split", O});
  }

  OracleVerdict V;
  for (const Config &C : Configs) {
    Analysis A = analyzeProgram(P, C.Opts);
    const ConstantTable &Consts = A.Ctx->Constants;

    Machine M(P);
    M.setInput(Opts.Input);
    M.setFuel(Opts.Fuel);
    std::ostringstream Diag;
    size_t Violations = 0;
    M.Trace = [&](ExprId E, const Value &Val) {
      ConstKind Want = valueAbstractKind(Val);
      for (Constant K : A.sba(E))
        if (Consts.kind(K) == Want)
          return;
      if (Violations++ == 0) {
        Diag << "[" << C.Name << "] label " << P.exprToString(E)
             << " produced " << constKindName(Want)
             << " but sba predicts only {";
        for (Constant K : A.sba(E))
          Diag << " " << constKindName(Consts.kind(K));
        Diag << " }";
      }
    };
    RunResult Out = M.runProgram();
    if (Violations) {
      V.Violation = true;
      V.Message = Diag.str();
      return V;
    }
    if (Out.St == RunResult::Status::Fault) {
      DebugReport Rep = runChecks(P, A.Maps, *A.System);
      bool Flagged = false;
      for (const CheckResult &CR : Rep.Results)
        if (CR.Site == Out.FaultSite && !CR.Safe)
          Flagged = true;
      if (!Flagged) {
        V.Violation = true;
        V.Message = std::string("[") + C.Name + "] fault at " +
                    P.exprToString(Out.FaultSite) + " (" + Out.Message +
                    ") not flagged as unsafe";
        return V;
      }
    }
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 2: simplification equivalence.
//===----------------------------------------------------------------------===

std::vector<SetVar> topLevelSetVars(const Program &P,
                                    const AnalysisMaps &Maps) {
  std::vector<SetVar> E;
  for (const Component &C : P.Components)
    for (const TopForm &F : C.Forms)
      if (F.DefVar != NoVar && Maps.VarVar[F.DefVar] != NoSetVar)
        E.push_back(Maps.VarVar[F.DefVar]);
  return E;
}

OracleVerdict checkSimplify(const Program &P, const OracleOptions &Opts) {
  OracleVerdict V;
  Analysis A = analyzeProgram(P);
  std::vector<SetVar> E = topLevelSetVars(P, A.Maps);
  // "None" is the identity baseline: the closed whole-program system.
  std::string Reference = profile(P, A.Maps, *A.System, Opts.Depth);
  for (SimplifyAlgorithm Alg :
       {SimplifyAlgorithm::Empty, SimplifyAlgorithm::Unreachable,
        SimplifyAlgorithm::EpsilonRemoval, SimplifyAlgorithm::Hopcroft}) {
    ConstraintSystem Simplified = simplifyConstraints(*A.System, E, Alg);
    Simplified.close();
    std::string Got = profile(P, A.Maps, Simplified, Opts.Depth);
    if (Got != Reference) {
      V.Violation = true;
      V.Message = std::string(simplifyAlgorithmName(Alg)) +
                  " changed observables: " + firstDiff(Reference, Got);
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 3: whole-program vs. componential agreement.
//===----------------------------------------------------------------------===

OracleVerdict checkComponential(const Program &P, const OracleOptions &Opts) {
  OracleVerdict V;
  Analysis Whole = analyzeProgram(P);

  // The combined system intentionally only preserves the cross-referenced
  // interface; full precision for a component's own definitions requires
  // step-3 reconstruction. Compare each component's reconstructed system
  // against the whole-program analysis at that component's definitions.
  ComponentialOptions CO;
  CO.Threads = 1;
  ComponentialAnalyzer CA(P, CO);
  CA.run();
  for (uint32_t I = 0; I < P.Components.size(); ++I) {
    const Component &C = P.Components[I];
    std::string Reference =
        profileComponent(P, C, Whole.Maps, *Whole.System, Opts.Depth);
    std::unique_ptr<ConstraintSystem> Full = CA.reconstruct(I);
    std::string Got = profileComponent(P, C, CA.maps(), *Full, Opts.Depth);
    if (Got != Reference) {
      V.Violation = true;
      V.Message = "whole-program and reconstructed component " + C.Name +
                  " disagree: " + firstDiff(Reference, Got);
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 4: thread determinism of the parallel combiner.
//===----------------------------------------------------------------------===

OracleVerdict checkThreads(const Program &P, const OracleOptions &Opts) {
  OracleVerdict V;
  std::string Systems[2];
  unsigned Threads[2] = {1, Opts.Threads < 2 ? 4 : Opts.Threads};
  for (int I = 0; I < 2; ++I) {
    ComponentialOptions CO;
    CO.Threads = Threads[I];
    ComponentialAnalyzer CA(P, CO);
    CA.run();
    Systems[I] = CA.combined().str();
  }
  if (Systems[0] != Systems[1]) {
    size_t At = 0;
    while (At < Systems[0].size() && At < Systems[1].size() &&
           Systems[0][At] == Systems[1][At])
      ++At;
    V.Violation = true;
    V.Message = "combined systems differ between Threads=1 and Threads=" +
                std::to_string(Threads[1]) + " at byte " +
                std::to_string(At);
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 7: determinism of the sharded parallel close (DESIGN.md §11).
//===----------------------------------------------------------------------===

OracleVerdict checkParClose(const Program &P, const OracleOptions &Opts) {
  OracleVerdict V;
  std::string Reference;
  {
    ComponentialOptions CO;
    CO.Threads = 1;
    ComponentialAnalyzer CA(P, CO);
    CA.run();
    Reference = CA.combined().str();
  }
  // A prime shard count stresses uneven partitions; the threaded run
  // additionally exercises the barrier rounds over a real pool.
  const unsigned ShardCounts[] = {2, 3, 5};
  for (unsigned Shards : ShardCounts) {
    ComponentialOptions CO;
    CO.Threads = Shards == 3 ? (Opts.Threads < 2 ? 2 : Opts.Threads) : 1;
    CO.ParallelClose = true;
    CO.CloseShards = Shards;
    ComponentialAnalyzer CA(P, CO);
    CA.run();
    std::string Got = CA.combined().str();
    if (Got != Reference) {
      size_t At = 0;
      while (At < Got.size() && At < Reference.size() &&
             Got[At] == Reference[At])
        ++At;
      V.Violation = true;
      V.Message = "sharded close (shards=" + std::to_string(Shards) +
                  ", threads=" + std::to_string(CO.Threads) +
                  ") diverged from the sequential engine at byte " +
                  std::to_string(At);
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 5: closure engine vs. the naive reference fixpoint.
//===----------------------------------------------------------------------===

OracleVerdict checkClosure(const Program &P, const OracleOptions &Opts) {
  (void)Opts;
  OracleVerdict V;
  Analysis A = analyzeProgram(P);
  // The reference starts from exactly the bounds the engine presents, so
  // after the naive close it can only be a superset; any growth means the
  // incremental engine stopped short of the Θ fixpoint.
  ReferenceClosure Ref(*A.Ctx);
  Ref.absorb(*A.System);
  Ref.close();
  for (SetVar Var : Ref.variables()) {
    std::vector<Constant> Got = A.System->constantsOf(Var);
    std::vector<Constant> Want = Ref.constantsOf(Var);
    if (Got != Want) {
      std::ostringstream OS;
      OS << "closure missed constants of v" << Var << ": engine {";
      for (Constant C : Got)
        OS << " " << A.Ctx->Constants.str(C, P.Syms);
      OS << " } vs reference {";
      for (Constant C : Want)
        OS << " " << A.Ctx->Constants.str(C, P.Syms);
      OS << " }";
      V.Violation = true;
      V.Message = OS.str();
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 6: chaos — the serve session under full fault injection.
//===----------------------------------------------------------------------===

/// Disarms the global injector on every exit path: a chaos run must never
/// leak armed fault sites into the next oracle or fuzz iteration.
struct FaultScope {
  ~FaultScope() { FaultInjector::instance().reset(); }
};

OracleVerdict checkChaos(const std::vector<SourceFile> &Files,
                         const OracleOptions &Opts) {
  (void)Opts;
  FaultScope Scope;
  OracleVerdict V;

  // The deterministic fault schedule assumes one worker thread.
  ServeOptions SO;
  SO.Threads = 1;

  // Fault-free cold reference. An empty text means the analysis itself
  // failed; that is the componential oracle's territory, not chaos.
  FaultInjector::instance().reset();
  ServeSession Cold(SO);
  Cold.setFiles(Files);
  std::string Reference = Cold.combinedText();
  if (Reference.empty())
    return V;

  // Seed the schedule from the program text so each fuzz iteration sees a
  // different — but replayable — fault pattern.
  uint64_t Seed = 1469598103934665603ull;
  for (const SourceFile &F : Files)
    for (unsigned char C : F.Name + "\n" + F.Text + "\n")
      Seed = (Seed ^ C) * 1099511628211ull;

  ServeSession S(SO);
  S.setFiles(Files);
  std::string Spec = "seed=" + std::to_string(Seed % 999983) +
                     ",cache.*=0.3,scf.parse=0.25,store.*=0.25";
  std::string Error;
  if (!FaultInjector::instance().configure(Spec, &Error)) {
    V.Violation = true;
    V.Message = "fault spec rejected: " + Error;
    return V;
  }

  // Every response must be a JSON object with a boolean "ok"; requests
  // that cannot legitimately fail (no deadline is armed, so lost cache or
  // store entries only cost re-derivation) must answer ok:true.
  auto answer = [&](const std::string &Line, bool WantOk) {
    std::string Resp = S.handleLine(Line);
    std::string PErr;
    std::optional<json::Value> R = json::Value::parse(Resp, &PErr);
    const json::Value *Ok = R ? R->find("ok") : nullptr;
    if (!R || !Ok || !Ok->isBool()) {
      V.Violation = true;
      V.Message = "malformed response to '" + Line + "': " + Resp;
      return false;
    }
    if (WantOk && !Ok->asBool()) {
      V.Violation = true;
      V.Message = "request failed under faults: '" + Line + "' -> " + Resp;
      return false;
    }
    return true;
  };

  if (!answer(R"({"cmd":"analyze"})", true))
    return V;
  for (const SourceFile &F : Files) {
    json::Value Req = json::Value::object();
    Req.set("cmd", "edit");
    Req.set("file", F.Name);
    Req.set("text", F.Text);
    if (!answer(Req.dump(), true))
      return V;
    if (!answer(R"({"cmd":"analyze"})", true))
      return V;
  }
  if (!answer("definitely not json", false))
    return V;
  if (!answer(R"({"cmd":"stats"})", true))
    return V;
  if (!answer(R"({"cmd":"check-summary"})", true))
    return V;

  // MergeViaFiles makes the combined system a pure function of the
  // per-component file texts, so even a session that analyzed *under*
  // faults must hold the cold-run bytes once the dust settles.
  FaultInjector::instance().reset();
  std::string Got = S.combinedText();
  if (Got != Reference) {
    size_t At = 0;
    while (At < Got.size() && At < Reference.size() && Got[At] == Reference[At])
      ++At;
    V.Violation = true;
    V.Message = "post-fault combined system diverged from the fault-free "
                "cold run at byte " +
                std::to_string(At);
  }
  return V;
}

//===----------------------------------------------------------------------===
// Oracle 8: query — demand-driven serve answers vs. the closed engine.
//===----------------------------------------------------------------------===

/// The ground-truth answers for one program state, computed the
/// pre-demand-driven way: a reference analyzer (Threads=1, MergeViaFiles —
/// the same deterministic numbering the serve session uses), a fresh
/// FlowGraph for the flow counts, and a full reconstruct sweep for the
/// summary. Variable ids are comparable raw because both sides number
/// identically.
struct QueryRefAnswers {
  struct FlowRef {
    SetVar Var = NoSetVar;
    std::vector<std::string> Kinds;
    size_t Parents = 0, Children = 0, Ancestors = 0, Descendants = 0;
  };
  bool Ok = false;
  std::vector<std::pair<std::string, FlowRef>> Flows;
  size_t Possible = 0, Unsafe = 0;
  std::string Summary;
};

QueryRefAnswers queryReference(const std::vector<SourceFile> &Files) {
  QueryRefAnswers R;
  ParsedProgram PP = parseIt(Files);
  if (!PP.Ok)
    return R;
  R.Ok = true;
  const Program &P = PP.Prog;
  ComponentialOptions CO;
  CO.Threads = 1;
  CO.MergeViaFiles = true;
  ComponentialAnalyzer CA(P, CO);
  CA.run();
  const ConstraintSystem &S = CA.combined();
  FlowGraph FG(S);
  std::unordered_set<std::string> Seen;
  for (VarId Vi = 0; Vi < P.numVars(); ++Vi) {
    const VarInfo &Info = P.var(Vi);
    if (!Info.TopLevel)
      continue;
    std::string Name = P.Syms.name(Info.Name);
    if (!Seen.insert(Name).second)
      continue; // first definition wins, matching the serve lookup
    QueryRefAnswers::FlowRef F;
    F.Var = CA.maps().varVar(Vi);
    for (Constant C : S.constantsOf(F.Var))
      F.Kinds.push_back(constKindName(S.context().Constants.kind(C)));
    std::sort(F.Kinds.begin(), F.Kinds.end());
    F.Kinds.erase(std::unique(F.Kinds.begin(), F.Kinds.end()),
                  F.Kinds.end());
    F.Parents = FG.parents(F.Var).size();
    F.Children = FG.children(F.Var).size();
    F.Ancestors = FG.ancestors(F.Var).size();
    F.Descendants = FG.descendants(F.Var).size();
    R.Flows.emplace_back(std::move(Name), F);
  }
  DebugReport Report;
  for (uint32_t I = 0; I < P.Components.size(); ++I) {
    std::unique_ptr<ConstraintSystem> Full = CA.reconstruct(I);
    DebugReport Part = runChecks(P, CA.maps(), *Full);
    for (CheckResult &CR : Part.Results)
      if (CR.Loc.File == I)
        Report.Results.push_back(std::move(CR));
  }
  R.Possible = Report.numPossible();
  R.Unsafe = Report.numUnsafe();
  R.Summary = Report.summary(P);
  return R;
}

OracleVerdict checkQuery(const std::vector<SourceFile> &Files,
                         const OracleOptions &Opts) {
  (void)Opts;
  OracleVerdict V;
  ServeOptions SO;
  SO.Threads = 1;
  ServeSession S(SO);
  std::vector<SourceFile> Cur = Files; // mirrors the session's edits
  S.setFiles(Cur);

  auto request = [&](const std::string &Line) -> std::optional<json::Value> {
    std::string Resp = S.handleLine(Line);
    std::string PErr;
    std::optional<json::Value> R = json::Value::parse(Resp, &PErr);
    if (!R) {
      V.Violation = true;
      V.Message = "malformed response to '" + Line + "': " + Resp;
    }
    return R;
  };

  auto compareFlow = [&](const std::string &Name,
                         const QueryRefAnswers::FlowRef &F,
                         const std::string &Phase) {
    json::Value Req = json::Value::object();
    Req.set("cmd", "flow");
    Req.set("name", Name);
    std::optional<json::Value> R = request(Req.dump());
    if (!R)
      return false;
    auto fail = [&](const std::string &What) {
      V.Violation = true;
      V.Message = "[" + Phase + "] flow \"" + Name + "\": " + What +
                  " -> " + R->dump();
      return false;
    };
    const json::Value *Ok = R->find("ok");
    if (!Ok || !Ok->asBool(false))
      return fail("request failed");
    if (R->find("degraded"))
      return fail("degraded answer with no limits armed");
    auto num = [&](const char *K) {
      const json::Value *M = R->find(K);
      return M && M->isNumber() ? M->asNumber() : -1.0;
    };
    std::vector<std::string> Kinds;
    const json::Value *KV = R->find("kinds");
    if (KV && KV->isArray())
      for (const json::Value &K : KV->items())
        Kinds.push_back(K.asString());
    if (num("var") != double(F.Var))
      return fail("var " + std::to_string(num("var")) + " vs reference " +
                  std::to_string(F.Var));
    if (Kinds != F.Kinds)
      return fail("kinds diverge from the closed engine");
    if (num("parents") != double(F.Parents) ||
        num("children") != double(F.Children) ||
        num("ancestors") != double(F.Ancestors) ||
        num("descendants") != double(F.Descendants))
      return fail("counts diverge: got " + std::to_string(num("parents")) +
                  "/" + std::to_string(num("children")) + "/" +
                  std::to_string(num("ancestors")) + "/" +
                  std::to_string(num("descendants")) + " vs reference " +
                  std::to_string(F.Parents) + "/" +
                  std::to_string(F.Children) + "/" +
                  std::to_string(F.Ancestors) + "/" +
                  std::to_string(F.Descendants));
    return true;
  };

  auto compareSummary = [&](const QueryRefAnswers &Ref,
                            const std::string &Phase) {
    std::optional<json::Value> R = request(R"({"cmd":"check-summary"})");
    if (!R)
      return false;
    auto fail = [&](const std::string &What) {
      V.Violation = true;
      V.Message = "[" + Phase + "] check-summary: " + What + " -> " +
                  R->dump();
      return false;
    };
    const json::Value *Ok = R->find("ok");
    if (!Ok || !Ok->asBool(false))
      return fail("request failed");
    if (R->find("degraded"))
      return fail("degraded answer with no limits armed");
    const json::Value *Pv = R->find("possible");
    const json::Value *Uv = R->find("unsafe");
    const json::Value *Sv = R->find("summary");
    if (!Pv || Pv->asNumber(-1) != double(Ref.Possible) ||
        !Uv || Uv->asNumber(-1) != double(Ref.Unsafe))
      return fail("possible/unsafe diverge from the reconstruct sweep");
    if (!Sv || !Sv->isString() || Sv->asString() != Ref.Summary)
      return fail("summary bytes diverge from the reconstruct sweep");
    return true;
  };

  // One full comparison of the demand-driven answers against the closed
  // engine at the current program state. Each flow is queried twice (the
  // repeat must hit the same answer through the memo path), and the
  // summary twice (the repeat exercises verdict reuse).
  auto compareCycle = [&](const std::string &Phase) {
    QueryRefAnswers Ref = queryReference(Cur);
    if (!Ref.Ok)
      return true; // edited program no longer parses: nothing to compare
    for (const auto &[Name, F] : Ref.Flows)
      if (!compareFlow(Name, F, Phase) ||
          !compareFlow(Name, F, Phase + "/warm"))
        return false;
    if (!compareSummary(Ref, Phase) ||
        !compareSummary(Ref, Phase + "/warm"))
      return false;
    return true;
  };

  if (!compareCycle("cold"))
    return V;

  // An unknown name must answer the legacy structured error.
  {
    std::optional<json::Value> R = request(
        R"({"cmd":"flow","name":"query-oracle-no-such-name"})");
    if (!R)
      return V;
    const json::Value *Ok = R->find("ok");
    if (!Ok || Ok->asBool(true) ||
        R->str("code", "") != "unknown-name") {
      V.Violation = true;
      V.Message = "unknown-name flow lost its error contract: " + R->dump();
      return V;
    }
  }

  // Per-file edit cycles: appending a fresh define dirties exactly one
  // component; every answer must still match a fresh reference (this is
  // where stale memo reuse — a wrong region digest or verdict key —
  // shows up as a divergence).
  for (size_t I = 0; I < Cur.size(); ++I) {
    Cur[I].Text +=
        "\n(define query-oracle-probe-" + std::to_string(I) + " 42)\n";
    json::Value Req = json::Value::object();
    Req.set("cmd", "edit");
    Req.set("file", Cur[I].Name);
    Req.set("text", Cur[I].Text);
    std::optional<json::Value> R = request(Req.dump());
    if (!R)
      return V;
    if (!compareCycle("edit-" + std::to_string(I)))
      return V;
  }

  // Degradation contract: a budget-starved query may answer degraded
  // (never malformed, never ok:false), and once the budget is lifted the
  // next query must answer exactly again.
  if (!request(R"({"cmd":"configure","max_constraints":1})"))
    return V;
  if (!Cur.empty()) {
    QueryRefAnswers Ref = queryReference(Cur);
    if (Ref.Ok && !Ref.Flows.empty()) {
      json::Value Req = json::Value::object();
      Req.set("cmd", "flow");
      Req.set("name", Ref.Flows.front().first);
      std::optional<json::Value> R = request(Req.dump());
      if (!R)
        return V;
      const json::Value *Ok = R->find("ok");
      if (!Ok || !Ok->isBool() || !Ok->asBool()) {
        V.Violation = true;
        V.Message = "budget-starved flow answered ok:false: " + R->dump();
        return V;
      }
      std::optional<json::Value> RS = request(R"({"cmd":"check-summary"})");
      if (!RS)
        return V;
      const json::Value *OkS = RS->find("ok");
      if (!OkS || !OkS->isBool() || !OkS->asBool()) {
        V.Violation = true;
        V.Message =
            "budget-starved check-summary answered ok:false: " + RS->dump();
        return V;
      }
    }
  }
  if (!request(R"({"cmd":"configure","max_constraints":0})"))
    return V;
  if (!compareCycle("recovered"))
    return V;

  return V;
}

} // namespace

OracleVerdict spidey::checkOracle(Oracle O,
                                  const std::vector<SourceFile> &Files,
                                  const OracleOptions &Opts) {
  ParsedProgram P = parseIt(Files);
  if (!P.Ok) {
    OracleVerdict V;
    V.Parsed = false;
    V.Message = P.Error;
    return V;
  }
  switch (O) {
  case Oracle::Soundness:
    return checkSoundness(P.Prog, Opts);
  case Oracle::Simplify:
    return checkSimplify(P.Prog, Opts);
  case Oracle::Componential:
    return checkComponential(P.Prog, Opts);
  case Oracle::Threads:
    return checkThreads(P.Prog, Opts);
  case Oracle::Closure:
    return checkClosure(P.Prog, Opts);
  case Oracle::ParClose:
    return checkParClose(P.Prog, Opts);
  case Oracle::Chaos:
    return checkChaos(Files, Opts);
  case Oracle::Query:
    return checkQuery(Files, Opts);
  }
  return {};
}
