//===-- debugger/checks.cpp -----------------------------------*- C++ -*-===//

#include "debugger/checks.h"

#include <map>
#include <sstream>

using namespace spidey;

namespace {

/// Evaluates one scrutinee: returns the offending constants (empty means
/// this operand is provably appropriate).
std::vector<Constant> offendingConstants(const CheckScrutinee &Scr,
                                         const ConstraintSystem &S) {
  std::vector<Constant> Bad;
  const ConstantTable &Consts = S.context().Constants;
  for (Constant C : S.constantsOf(Scr.V)) {
    const ConstantInfo &Info = Consts.info(C);
    if (!(Scr.Accept & kindBit(Info.K))) {
      Bad.push_back(C);
      continue;
    }
    if (Scr.HasRequiredTag && Info.K == ConstKind::StructTag &&
        C != Scr.RequiredTag) {
      // The right kind but the wrong declared constructor (App. D.5.4).
      Bad.push_back(C);
      continue;
    }
    if (!Scr.CheckArity)
      continue;
    // Arity checking (App. E.3): function tags must match the number of
    // arguments; continuations always take exactly one.
    if (Info.K == ConstKind::FnTag && Info.Arity != Scr.Arity)
      Bad.push_back(C);
    else if (Info.K == ConstKind::ContTag && Scr.Arity != 1)
      Bad.push_back(C);
  }
  return Bad;
}

} // namespace

DebugReport spidey::runChecks(const Program &P, const AnalysisMaps &Maps,
                              const ConstraintSystem &S) {
  DebugReport Report;
  const ConstantTable &Consts = S.context().Constants;
  for (const CheckSite &Site : Maps.Checks) {
    CheckResult R;
    R.Site = Site.Site;
    R.Loc = P.expr(Site.Site).Loc;
    R.What = Site.What;
    for (const CheckScrutinee &Scr : Site.Scrutinees) {
      std::vector<Constant> Bad = offendingConstants(Scr, S);
      if (Bad.empty())
        continue;
      R.Safe = false;
      std::ostringstream Why;
      Why << R.What << " may be applied to inappropriate value(s):";
      for (Constant C : Bad) {
        Why << ' ' << Consts.str(C, P.Syms);
        R.Offending.push_back(C);
      }
      if (!R.Reason.empty())
        R.Reason += "; ";
      R.Reason += Why.str();
    }
    Report.Results.push_back(std::move(R));
  }
  return Report;
}

std::string DebugReport::unsafeLine(const CheckResult &R, const Program &P) {
  uint32_t File = R.Loc.File < P.Components.size() ? R.Loc.File : 0;
  std::ostringstream OS;
  OS << R.What << " check in file \"" << P.Components[File].Name
     << "\" line " << R.Loc.Line << "\n";
  return OS.str();
}

std::string DebugReport::totalLine(size_t Unsafe, size_t Possible) {
  double Pct = Possible == 0 ? 0.0 : 100.0 * Unsafe / Possible;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "TOTAL CHECKS: %zu (of %zu possible checks is %.1f%%)\n",
                Unsafe, Possible, Pct);
  return Buf;
}

std::string DebugReport::summary(const Program &P) const {
  std::string Out = "CHECKS:\n";
  for (const CheckResult &R : Results)
    if (!R.Safe)
      Out += unsafeLine(R, P);
  Out += totalLine(numUnsafe(), numPossible());
  return Out;
}

std::string DebugReport::perFileSummary(const Program &P) const {
  std::map<uint32_t, std::pair<size_t, size_t>> ByFile; // unsafe, possible
  for (const CheckResult &R : Results) {
    auto &[Unsafe, Possible] = ByFile[R.Loc.File];
    ++Possible;
    if (!R.Safe)
      ++Unsafe;
  }
  std::ostringstream OS;
  for (uint32_t I = 0; I < P.Components.size(); ++I) {
    auto [Unsafe, Possible] = ByFile.count(I) ? ByFile[I]
                                              : std::make_pair(size_t(0),
                                                               size_t(0));
    double Pct = Possible == 0 ? 0.0 : 100.0 * Unsafe / Possible;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%-18s CHECKS: %zu (of %zu possible checks is %.1f%%)\n",
                  P.Components[I].Name.c_str(), Unsafe, Possible, Pct);
    OS << Buf;
  }
  return OS.str();
}
