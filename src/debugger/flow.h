//===-- debugger/flow.h - The value-flow browser ---------------*- C++ -*-===//
///
/// \file
/// The value flow browser of §5.4: the ε-constraints [α ≤ β] of the closed
/// system form a graph over set variables whose edges explain how values
/// reach each program point. This module provides the browser operations:
/// Parents, Children, Ancestors, Descendants, the constructor *filter*
/// (restrict edges to those along which a given abstract constant flows),
/// and Path-to-Source (a shortest flow path from a construction site of a
/// value to the point where it causes trouble — the arrows of figs.
/// 1.3/5.4/5.7).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_DEBUGGER_FLOW_H
#define SPIDEY_DEBUGGER_FLOW_H

#include "analysis/analysis.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace spidey {

class FlowGraph {
public:
  /// Builds the flow graph from the ε-edges of \p S (closed under Θ).
  explicit FlowGraph(const ConstraintSystem &S);

  /// Direct sources: {β | [β ≤ α] ∈ S}. Borrowed, sorted, deduplicated;
  /// valid as long as the graph is (returned by reference — the BFS in
  /// ancestors/descendants calls this per visited node, and copying a
  /// vector per node dominated the walk).
  const std::vector<SetVar> &parents(SetVar A) const;
  /// Direct sinks: {β | [α ≤ β] ∈ S}. Same contract as parents();
  /// adjacency is materialized once at construction, not re-sorted per
  /// call.
  const std::vector<SetVar> &children(SetVar A) const;
  /// Transitive sources/sinks.
  std::vector<SetVar> ancestors(SetVar A) const;
  std::vector<SetVar> descendants(SetVar A) const;

  /// Like parents/ancestors, but keeping only edges along which the
  /// constant \p Filter flows (it reaches both endpoints) — the filter
  /// facility of §5.4.
  std::vector<SetVar> parentsCarrying(SetVar A, Constant Filter) const;
  std::vector<std::pair<SetVar, SetVar>>
  ancestorEdgesCarrying(SetVar A, Constant Filter) const;

  /// A shortest flow path ending at \p Target and starting at a variable
  /// where \p C is introduced directly (a constraint [c ≤ α] of the
  /// derivation); nullopt if C does not reach Target.
  std::optional<std::vector<SetVar>> pathToSource(SetVar Target,
                                                  Constant C) const;

private:
  bool carries(SetVar V, Constant C) const;

  const ConstraintSystem &S;
  std::unordered_map<SetVar, std::vector<SetVar>> Incoming;
  std::unordered_map<SetVar, std::vector<SetVar>> Outgoing;
};

} // namespace spidey

#endif // SPIDEY_DEBUGGER_FLOW_H
