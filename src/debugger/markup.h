//===-- debugger/markup.h - Console program mark-ups -----------*- C++ -*-===//
///
/// \file
/// Console rendition of MrSpidey's program mark-ups (ch. 5): the annotated
/// program text with unsafe operations underlined, and the mapping from
/// set variables back to program points used when printing flow arrows and
/// invariants ("the GUI, minus the GUI").
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_DEBUGGER_MARKUP_H
#define SPIDEY_DEBUGGER_MARKUP_H

#include "debugger/checks.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace spidey {

/// Renders a component's source with '~' underlines beneath every unsafe
/// operation (fig. 5.1's red highlights) followed by the CHECKS summary.
std::string annotateComponent(const Program &P, uint32_t CompIdx,
                              const DebugReport &Report);

/// Maps set variables back to the expressions/variables they name, for
/// printing flow-browser output.
class SiteIndex {
public:
  SiteIndex(const Program &P, const AnalysisMaps &Maps);

  std::optional<ExprId> exprOf(SetVar V) const;
  std::optional<VarId> varOf(SetVar V) const;

  /// "variable tree (sum.ss:3:14)" / "(car tree) (sum.ss:8:12)" / "a42".
  std::string describe(SetVar V) const;

private:
  const Program &P;
  std::unordered_map<SetVar, ExprId> ExprAt;
  std::unordered_map<SetVar, VarId> VarAt;
};

} // namespace spidey

#endif // SPIDEY_DEBUGGER_MARKUP_H
