//===-- debugger/flow.cpp -------------------------------------*- C++ -*-===//

#include "debugger/flow.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace spidey;

FlowGraph::FlowGraph(const ConstraintSystem &S) : S(S) {
  for (SetVar A : S.variables())
    for (const UpperBound &U : S.upperBounds(A))
      if (U.K == UpperBound::Kind::VarUB ||
          U.K == UpperBound::Kind::FilterUB) {
        Incoming[U.Other].push_back(A);
        Outgoing[A].push_back(U.Other);
      }
  for (auto *Adj : {&Incoming, &Outgoing})
    for (auto &[V, Edges] : *Adj) {
      std::sort(Edges.begin(), Edges.end());
      Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
    }
}

const std::vector<SetVar> &FlowGraph::parents(SetVar A) const {
  static const std::vector<SetVar> Empty;
  auto It = Incoming.find(A);
  return It == Incoming.end() ? Empty : It->second;
}

const std::vector<SetVar> &FlowGraph::children(SetVar A) const {
  static const std::vector<SetVar> Empty;
  auto It = Outgoing.find(A);
  return It == Outgoing.end() ? Empty : It->second;
}

namespace {

template <typename NextFn>
std::vector<SetVar> transitive(SetVar A, NextFn &&Next) {
  std::vector<SetVar> Result;
  std::unordered_set<SetVar> Seen{A};
  std::vector<SetVar> Work{A};
  while (!Work.empty()) {
    SetVar V = Work.back();
    Work.pop_back();
    for (SetVar N : Next(V))
      if (Seen.insert(N).second) {
        Result.push_back(N);
        Work.push_back(N);
      }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

} // namespace

std::vector<SetVar> FlowGraph::ancestors(SetVar A) const {
  // The explicit reference return type keeps the lambda from deducing a
  // by-value vector and copying the adjacency list per visited node.
  return transitive(
      A, [&](SetVar V) -> const std::vector<SetVar> & { return parents(V); });
}

std::vector<SetVar> FlowGraph::descendants(SetVar A) const {
  return transitive(
      A, [&](SetVar V) -> const std::vector<SetVar> & { return children(V); });
}

bool FlowGraph::carries(SetVar V, Constant C) const {
  return S.hasConstLower(V, C);
}

std::vector<SetVar> FlowGraph::parentsCarrying(SetVar A,
                                               Constant Filter) const {
  std::vector<SetVar> Out;
  if (!carries(A, Filter))
    return Out;
  for (SetVar Parent : parents(A))
    if (carries(Parent, Filter))
      Out.push_back(Parent);
  return Out;
}

std::vector<std::pair<SetVar, SetVar>>
FlowGraph::ancestorEdgesCarrying(SetVar A, Constant Filter) const {
  std::vector<std::pair<SetVar, SetVar>> Edges;
  std::unordered_set<SetVar> Seen{A};
  std::vector<SetVar> Work{A};
  while (!Work.empty()) {
    SetVar V = Work.back();
    Work.pop_back();
    for (SetVar Parent : parentsCarrying(V, Filter)) {
      Edges.emplace_back(Parent, V);
      if (Seen.insert(Parent).second)
        Work.push_back(Parent);
    }
  }
  return Edges;
}

std::optional<std::vector<SetVar>>
FlowGraph::pathToSource(SetVar Target, Constant C) const {
  if (!carries(Target, C))
    return std::nullopt;
  // BFS backwards over carrying edges until a variable that introduces C
  // directly (in the derivation, c ≤ α was added at the construction
  // site; in the closed system, a source is a variable with no carrying
  // parent).
  std::unordered_map<SetVar, SetVar> From;
  std::deque<SetVar> Queue{Target};
  From[Target] = Target;
  while (!Queue.empty()) {
    SetVar V = Queue.front();
    Queue.pop_front();
    std::vector<SetVar> Parents = parentsCarrying(V, C);
    if (Parents.empty()) {
      // V introduces C: walk the path forward.
      std::vector<SetVar> Path{V};
      while (Path.back() != Target)
        Path.push_back(From[Path.back()]);
      return Path;
    }
    for (SetVar Parent : Parents)
      if (!From.count(Parent)) {
        From[Parent] = V;
        Queue.push_back(Parent);
      }
  }
  return std::nullopt;
}
