//===-- debugger/markup.cpp -----------------------------------*- C++ -*-===//

#include "debugger/markup.h"

#include <map>
#include <sstream>
#include <vector>

using namespace spidey;

std::string spidey::annotateComponent(const Program &P, uint32_t CompIdx,
                                      const DebugReport &Report) {
  const Component &C = P.Components[CompIdx];
  // Split source into lines.
  std::vector<std::string> Lines;
  {
    std::string Cur;
    for (char Ch : C.SourceText) {
      if (Ch == '\n') {
        Lines.push_back(Cur);
        Cur.clear();
      } else {
        Cur.push_back(Ch);
      }
    }
    Lines.push_back(Cur);
  }
  // Collect unsafe marks: line -> columns (1-based) with widths.
  std::map<uint32_t, std::vector<std::pair<uint32_t, std::string>>> Marks;
  for (const CheckResult &R : Report.Results) {
    if (R.Safe || R.Loc.File != CompIdx || !R.Loc.isValid())
      continue;
    Marks[R.Loc.Line].emplace_back(R.Loc.Col, R.What);
  }
  std::ostringstream OS;
  OS << ";; " << C.Name << " — unsafe operations underlined\n";
  for (size_t I = 0; I < Lines.size(); ++I) {
    OS << Lines[I] << "\n";
    auto It = Marks.find(static_cast<uint32_t>(I + 1));
    if (It == Marks.end())
      continue;
    std::string Underline(Lines[I].size() + 2, ' ');
    for (auto &[Col, What] : It->second) {
      size_t Start = Col > 0 ? Col - 1 : 0;
      size_t Len = std::max<size_t>(What.size() + 1, 2);
      for (size_t J = Start; J < Start + Len && J < Underline.size(); ++J)
        Underline[J] = '~';
    }
    // Trim trailing spaces.
    size_t End = Underline.find_last_not_of(' ');
    OS << Underline.substr(0, End == std::string::npos ? 0 : End + 1)
       << "\n";
  }
  OS << "\n" << Report.summary(P);
  return OS.str();
}

SiteIndex::SiteIndex(const Program &P, const AnalysisMaps &Maps) : P(P) {
  for (ExprId E = 0; E < Maps.ExprVar.size(); ++E)
    if (Maps.ExprVar[E] != NoSetVar)
      ExprAt.emplace(Maps.ExprVar[E], E);
  for (VarId V = 0; V < Maps.VarVar.size(); ++V)
    if (Maps.VarVar[V] != NoSetVar)
      VarAt.emplace(Maps.VarVar[V], V);
}

std::optional<ExprId> SiteIndex::exprOf(SetVar V) const {
  auto It = ExprAt.find(V);
  if (It == ExprAt.end())
    return std::nullopt;
  return It->second;
}

std::optional<VarId> SiteIndex::varOf(SetVar V) const {
  auto It = VarAt.find(V);
  if (It == VarAt.end())
    return std::nullopt;
  return It->second;
}

std::string SiteIndex::describe(SetVar V) const {
  auto Where = [&](SourceLoc Loc) {
    if (!Loc.isValid())
      return std::string();
    std::string File = Loc.File < P.Components.size()
                           ? P.Components[Loc.File].Name
                           : "?";
    return " (" + File + ":" + std::to_string(Loc.Line) + ":" +
           std::to_string(Loc.Col) + ")";
  };
  if (auto VId = varOf(V))
    return "variable " + P.Syms.name(P.var(*VId).Name) +
           Where(P.var(*VId).Loc);
  if (auto EId = exprOf(V)) {
    std::string Text = P.exprToString(*EId);
    if (Text.size() > 40)
      Text = Text.substr(0, 37) + "...";
    return Text + Where(P.expr(*EId).Loc);
  }
  return "a" + std::to_string(V);
}
