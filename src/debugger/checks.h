//===-- debugger/checks.h - Unsafe-operation identification ----*- C++ -*-===//
///
/// \file
/// MrSpidey's core judgment (§4.3, App. E.5): a program operation is
/// *safe* when the value-set invariants prove it is only applied to
/// appropriate arguments, and *unsafe* (a "check") otherwise. This module
/// evaluates every check site recorded during derivation against the
/// closed constraint system and produces the per-file CHECKS summary shown
/// throughout the dissertation (figs. 1.1, 5.1, ch. 8).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_DEBUGGER_CHECKS_H
#define SPIDEY_DEBUGGER_CHECKS_H

#include "analysis/analysis.h"

#include <string>
#include <vector>

namespace spidey {

/// Verdict for one check site.
struct CheckResult {
  ExprId Site = NoExpr;
  SourceLoc Loc;
  std::string What; ///< "car", "application", ...
  bool Safe = true;
  /// The constants that make the operation unsafe (inappropriate
  /// arguments), for explanation.
  std::vector<Constant> Offending;
  std::string Reason;
};

/// The static-debugging report for a whole program.
struct DebugReport {
  std::vector<CheckResult> Results;

  size_t numPossible() const { return Results.size(); }
  size_t numUnsafe() const {
    size_t N = 0;
    for (const CheckResult &R : Results)
      N += R.Safe ? 0 : 1;
    return N;
  }

  /// Renders the MrSpidey summary, e.g.
  ///   CHECKS:
  ///   car check in file "sum.ss" line 8
  ///   TOTAL CHECKS: 1 (of 10 possible checks is 10.0%)
  std::string summary(const Program &P) const;

  /// One summary line for an unsafe result (including the trailing
  /// newline). Split out so the demand-driven query engine can cache
  /// per-component verdict lines and reassemble a summary byte-identical
  /// to a monolithic render.
  static std::string unsafeLine(const CheckResult &R, const Program &P);

  /// The closing "TOTAL CHECKS: ..." line (including the newline).
  static std::string totalLine(size_t Unsafe, size_t Possible);

  /// Per-file one-line summaries (the ch. 8.3 table).
  std::string perFileSummary(const Program &P) const;
};

/// Evaluates all recorded check sites against \p S (closed under Θ).
DebugReport runChecks(const Program &P, const AnalysisMaps &Maps,
                      const ConstraintSystem &S);

} // namespace spidey

#endif // SPIDEY_DEBUGGER_CHECKS_H
