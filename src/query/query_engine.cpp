//===-- query/query_engine.cpp --------------------------------*- C++ -*-===//

#include "query/query_engine.h"

#include "constraints/const_kind.h"
#include "constraints/serialize.h"
#include "debugger/checks.h"

#include <algorithm>

using namespace spidey;

namespace {

constexpr uint64_t FnvOffset = 0xCBF29CE484222325ull;

uint64_t fnv1a(uint64_t H, uint64_t X) {
  for (int I = 0; I < 8; ++I) {
    H ^= (X >> (I * 8)) & 0xFF;
    H *= 0x100000001B3ull;
  }
  return H;
}

uint64_t fnv1aStr(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001B3ull;
  }
  return fnv1a(H, S.size());
}

} // namespace

void QueryEngine::rebind(Program &NewP, ComponentialAnalyzer &NewCA,
                         CancelToken *NewTok, bool IsVolatile,
                         bool AllowCache, std::string FP) {
  P = &NewP;
  CA = &NewCA;
  Tok = NewTok;
  Volatile = IsVolatile;
  AllowVerdictCache = AllowCache;
  OptionsFP = std::move(FP);
  Index.clear();
  IndexReady = false;
  NameIndex.clear();
  NameIndexReady = false;
  RegionParent.clear();
  RegionOrdinal.clear();
  RootDigest.clear();
  RegionsReady = false;
}

void QueryEngine::ensureIndex() {
  if (IndexReady)
    return;
  Index.build(CA->combined());
  IndexReady = true;
  ++Stats.IndexBuilds;
}

void QueryEngine::ensureNameIndex() {
  if (NameIndexReady)
    return;
  // First definition wins, matching the legacy ascending-VarId scan.
  for (VarId V = 0; V < P->numVars(); ++V) {
    const VarInfo &Info = P->var(V);
    if (Info.TopLevel)
      NameIndex.emplace(Info.Name, V);
  }
  NameIndexReady = true;
  ++Stats.NameIndexBuilds;
}

SetVar QueryEngine::regionRoot(SetVar V) const {
  while (V < RegionParent.size() && RegionParent[V] != V)
    V = RegionParent[V];
  return V;
}

uint64_t QueryEngine::regionDigest(SetVar V) const {
  auto It = RootDigest.find(regionRoot(V));
  return It == RootDigest.end() ? 0 : It->second;
}

uint32_t QueryEngine::ordinalOf(SetVar V) const {
  return V < RegionOrdinal.size() ? RegionOrdinal[V] : ~0u;
}

void QueryEngine::ensureRegions() {
  if (RegionsReady)
    return;
  ++Stats.RegionSweeps;
  const ConstraintSystem &S = CA->combined();
  const ConstraintContext &Ctx = S.context();

  // Pass 1: union-find over the undirected bound graph. Every bound kind
  // unites its endpoints — closure only ever creates facts between
  // already-connected variables, so a region fully determines every
  // closed fact about its members. Representative = lowest member, so
  // identical systems produce identical roots.
  size_t N = Ctx.numVars();
  RegionParent.resize(N);
  for (size_t I = 0; I < N; ++I)
    RegionParent[I] = static_cast<SetVar>(I);
  auto unite = [&](SetVar A, SetVar B) {
    if (A >= N || B >= N)
      return;
    SetVar Ra = regionRoot(A), Rb = regionRoot(B);
    if (Ra == Rb)
      return;
    if (Rb < Ra)
      std::swap(Ra, Rb);
    RegionParent[Rb] = Ra;
  };
  std::vector<SetVar> Vars = S.variables();
  for (SetVar A : Vars) {
    for (const LowerBound &L : S.lowerBounds(A))
      if (L.K == LowerBound::Kind::SelLB && L.Other != NoSetVar)
        unite(A, L.Other);
    for (const UpperBound &U : S.upperBounds(A))
      if (U.Other != NoSetVar)
        unite(A, U.Other);
  }

  // Region-local ordinals: each variable's rank within its region, in
  // ascending id order. The merge numbers every component's externals
  // ahead of the public blocks, so adding one top-level name anywhere
  // shifts all later ids by one; ordinals are invariant under that shift
  // (relative order within a region is preserved), which is what lets
  // digests — and the memo caches keyed on them — survive warm edits.
  RegionOrdinal.assign(N, 0);
  {
    std::unordered_map<SetVar, uint32_t> Next;
    for (size_t I = 0; I < N; ++I)
      RegionOrdinal[I] = Next[regionRoot(static_cast<SetVar>(I))]++;
  }

  // Pass 2: fold each variable's canonically-sorted bounds into its
  // region root's digest, in ascending variable order. Variables enter as
  // region-local ordinals (endpoints of any bound always share a region —
  // pass 1 united exactly those edges); constants and selectors enter by
  // content — kind, arity, location, label and selector-name spellings —
  // not by table index, so a renumbered-but-identical table entry can
  // never alias a changed one.
  RootDigest.clear();
  const ConstantTable &Consts = Ctx.Constants;
  const SelectorTable &Sels = Ctx.Selectors;
  auto foldConst = [&](uint64_t H, Constant C) {
    const ConstantInfo &Info = Consts.info(C);
    H = fnv1a(H, static_cast<uint64_t>(Info.K));
    H = fnv1a(H, Info.Arity);
    H = fnv1a(H, (uint64_t(Info.Loc.File) << 40) |
                     (uint64_t(Info.Loc.Line) << 16) | Info.Loc.Col);
    if (Info.Label != InvalidSymbol)
      H = fnv1aStr(H, P->Syms.name(Info.Label));
    return H;
  };
  auto foldSel = [&](uint64_t H, Selector Sel) {
    H = fnv1aStr(H, Sels.name(Sel));
    return fnv1a(H, static_cast<uint64_t>(Sels.polarity(Sel)));
  };
  S.forEachBoundSorted([&](SetVar A, const std::vector<LowerBound> &Lows,
                           const std::vector<UpperBound> &Ups) {
    uint64_t H = fnv1a(FnvOffset, ordinalOf(A));
    for (const LowerBound &L : Lows) {
      H = fnv1a(H, static_cast<uint64_t>(L.K));
      if (L.K == LowerBound::Kind::ConstLB)
        H = foldConst(H, L.C);
      else
        H = foldSel(H, L.Sel);
      H = fnv1a(H, ordinalOf(L.Other));
    }
    for (const UpperBound &U : Ups) {
      H = fnv1a(H, 8 + static_cast<uint64_t>(U.K));
      if (U.K == UpperBound::Kind::SelUB)
        H = foldSel(H, U.Sel);
      else
        H = fnv1a(H, U.Sel); // VarUB: 0; FilterUB: a KindMask, stable raw
      H = fnv1a(H, ordinalOf(U.Other));
    }
    uint64_t &Slot = RootDigest[regionRoot(A)];
    if (!Slot)
      Slot = FnvOffset;
    Slot = fnv1a(Slot, H);
  });
  RegionsReady = true;
}

uint64_t QueryEngine::regionKeyOf(uint32_t I) {
  ensureRegions();
  // Anchors enter as (region digest, ordinal-within-region): which
  // regions the component reads and where in them it is anchored. Raw
  // ids would re-key every component whenever the merge renumbers.
  std::vector<SetVar> Ext = CA->externalsOf(I);
  std::vector<std::pair<uint64_t, uint64_t>> Items;
  Items.reserve(Ext.size());
  for (SetVar V : Ext)
    Items.emplace_back(regionDigest(V), ordinalOf(V));
  std::sort(Items.begin(), Items.end());
  Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  uint64_t H = FnvOffset;
  for (const auto &[D, O] : Items) {
    H = fnv1a(H, D);
    H = fnv1a(H, O);
  }
  return H;
}

QueryEngine::FlowAnswer QueryEngine::flow(const std::string &Name) {
  ++Stats.FlowQueries;
  ensureNameIndex();
  FlowAnswer Ans;
  Symbol Sym = P->Syms.lookup(Name);
  auto It = Sym == InvalidSymbol ? NameIndex.end() : NameIndex.find(Sym);
  if (It == NameIndex.end())
    return Ans; // Found=false: no top-level definition of that name
  Ans.Found = true;
  SetVar A = CA->maps().varVar(It->second);
  Ans.Var = A;

  uint64_t Digest = 0;
  uint32_t Ord = 0;
  bool Memoizable = !Volatile && A != NoSetVar;
  if (Memoizable) {
    ensureRegions();
    Digest = regionDigest(A);
    Ord = ordinalOf(A);
    auto M = FlowMemo.find(Name);
    // A memo is reusable when the name still anchors at the same ordinal
    // of a structurally-unchanged region — raw ids may have been shifted
    // by the merge, so the answer's Var field is refreshed from this
    // generation's resolution.
    if (M != FlowMemo.end() && M->second.RegionDigest == Digest &&
        M->second.AnchorOrdinal == Ord) {
      ++Stats.FlowMemoHits;
      FlowAnswer Out = M->second.Answer;
      Out.Var = A;
      Out.FromSummary = true;
      return Out;
    }
  }

  const ConstraintSystem &S = CA->combined();
  for (Constant C : S.constantsOf(A))
    Ans.Kinds.push_back(constKindName(S.context().Constants.kind(C)));
  std::sort(Ans.Kinds.begin(), Ans.Kinds.end());
  Ans.Kinds.erase(std::unique(Ans.Kinds.begin(), Ans.Kinds.end()),
                  Ans.Kinds.end());

  ensureIndex();
  Ans.Parents = Index.parents(A).size();
  Ans.Children = Index.children(A).size();
  FlowIndex::Reach Anc = Index.ancestors(A, Tok);
  Ans.Ancestors = Anc.Count;
  if (Anc.Complete) {
    FlowIndex::Reach Desc = Index.descendants(A, Tok);
    Ans.Descendants = Desc.Count;
    Ans.Degraded = !Desc.Complete;
  } else {
    Ans.Degraded = true;
  }

  if (Ans.Degraded)
    ++Stats.DegradedQueries;
  else if (Memoizable)
    FlowMemo[Name] = FlowMemoEntry{Digest, Ord, Ans};
  return Ans;
}

QueryEngine::SummaryAnswer QueryEngine::checkSummary() {
  SummaryAnswer Out;
  const Program &Prog = *P;
  bool UseCache = !Volatile && AllowVerdictCache;

  struct Piece {
    bool Valid = false;
    size_t Possible = 0, Unsafe = 0;
    std::vector<std::string> Lines;
  };
  std::vector<Piece> Pieces(Prog.Components.size());

  for (uint32_t I = 0; I < Prog.Components.size(); ++I) {
    if (Tok && Tok->cancelled()) {
      Out.Partial = true;
      break;
    }
    const Component &C = Prog.Components[I];
    std::string Key, SrcHash;
    uint64_t RKey = 0;
    if (UseCache) {
      Key = std::to_string(I) + ":" + C.Name;
      SrcHash = hashSource(C.SourceText);
      RKey = regionKeyOf(I);
      auto It = Verdicts.find(Key);
      if (It != Verdicts.end() && It->second.SourceHash == SrcHash &&
          It->second.OptionsFP == OptionsFP &&
          It->second.RegionKey == RKey) {
        Piece &Pc = Pieces[I];
        Pc.Valid = true;
        Pc.Possible = It->second.Possible;
        Pc.Unsafe = It->second.Unsafe;
        Pc.Lines = It->second.UnsafeLines;
        ++Out.Reused;
        ++Stats.VerdictsReused;
        continue;
      }
    }

    std::unique_ptr<ConstraintSystem> Full = CA->reconstruct(I);
    if (Full->closureCancelled()) {
      Out.Partial = true;
      break;
    }
    DebugReport Part = runChecks(Prog, CA->maps(), *Full);
    Piece &Pc = Pieces[I];
    Pc.Valid = true;
    for (const CheckResult &CR : Part.Results) {
      if (CR.Loc.File != I)
        continue;
      ++Pc.Possible;
      if (!CR.Safe) {
        ++Pc.Unsafe;
        Pc.Lines.push_back(DebugReport::unsafeLine(CR, Prog));
      }
    }
    ++Out.Rechecked;
    ++Stats.ComponentsRechecked;
    // Completed verdicts are exact even when a later component trips the
    // token, so cache them unconditionally (under UseCache).
    if (UseCache)
      Verdicts[Key] = VerdictMemoEntry{std::move(SrcHash), OptionsFP, RKey,
                                       Pc.Possible, Pc.Unsafe, Pc.Lines};
  }

  // Assemble in component order: per-component line blocks concatenate to
  // the same byte sequence a monolithic runChecks sweep renders, because
  // within one component the verdict order is the (deterministic) check-
  // site recording order of that component's reconstruction.
  std::string Body;
  for (const Piece &Pc : Pieces) {
    if (!Pc.Valid)
      continue;
    Out.Possible += Pc.Possible;
    Out.Unsafe += Pc.Unsafe;
    for (const std::string &L : Pc.Lines)
      Body += L;
  }
  Out.Summary =
      "CHECKS:\n" + Body + DebugReport::totalLine(Out.Unsafe, Out.Possible);
  return Out;
}
