//===-- query/flow_index.h - Persistent ε-edge adjacency -------*- C++ -*-===//
///
/// \file
/// A compact, persistent adjacency index over the ε-edges (VarUB and
/// FilterUB upper bounds) of a closed constraint system, in CSR form with
/// both forward (children) and reverse (parents) directions. It answers
/// exactly the questions the §5.4 value-flow browser answers — direct
/// parents/children and transitive ancestors/descendants — but is built
/// once per analysis generation and then shared by every query, replacing
/// the per-request FlowGraph construction the serve loop used to pay.
///
/// Reachability runs as a demand-driven worklist exploration outward from
/// the query variable with epoch-stamped visit marks (no per-query
/// clearing, no hashing), and polls an optional CancelToken so an
/// over-budget query degrades instead of stalling the session.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_QUERY_FLOW_INDEX_H
#define SPIDEY_QUERY_FLOW_INDEX_H

#include "constraints/constraint_system.h"

#include <cstdint>
#include <vector>

namespace spidey {

class FlowIndex {
public:
  /// A borrowed, sorted, deduplicated neighbor list.
  struct Neighbors {
    const SetVar *Data = nullptr;
    size_t Size = 0;
    const SetVar *begin() const { return Data; }
    const SetVar *end() const { return Data + Size; }
    size_t size() const { return Size; }
  };

  /// The result of one reachability exploration.
  struct Reach {
    size_t Count = 0;      ///< variables reached, excluding the start
    bool Complete = false; ///< false: the token cancelled mid-walk
  };

  /// (Re)builds both CSR directions from the ε-edges of \p S. O(E log E);
  /// the edge set matches FlowGraph's exactly (VarUB + FilterUB, dedup'd
  /// per endpoint), so every count this index reports is identical to the
  /// per-request browser's.
  void build(const ConstraintSystem &S);

  /// Drops the index (the owning session re-binds to a new generation).
  void clear();

  bool built() const { return Built; }
  size_t numVars() const { return NumVars; }
  size_t numEdges() const { return Fwd.Edges.size(); }

  /// Direct sinks {β | [α ≤ β]} / sources {β | [β ≤ α]}; empty for
  /// variables outside the indexed range (e.g. NoSetVar).
  Neighbors children(SetVar A) const { return Fwd.row(A); }
  Neighbors parents(SetVar A) const { return Rev.row(A); }

  /// Transitive sinks/sources of \p A: worklist BFS outward from the
  /// query variable, counting every variable reached (excluding \p A
  /// itself, matching FlowGraph::ancestors/descendants). With \p Tok
  /// armed, one work unit is charged per visited variable; on
  /// cancellation the partial count is returned with Complete=false.
  Reach descendants(SetVar A, CancelToken *Tok) const {
    return reach(Fwd, A, Tok);
  }
  Reach ancestors(SetVar A, CancelToken *Tok) const {
    return reach(Rev, A, Tok);
  }

private:
  struct Csr {
    std::vector<uint32_t> Offsets; ///< NumVars + 1 entries once built
    std::vector<SetVar> Edges;

    Neighbors row(SetVar A) const {
      // size_t arithmetic: A can be NoSetVar, which would wrap A + 1.
      if (Offsets.size() < 2 || size_t(A) + 1 >= Offsets.size())
        return {};
      return {Edges.data() + Offsets[A], Offsets[A + 1] - Offsets[A]};
    }
  };

  Reach reach(const Csr &Dir, SetVar A, CancelToken *Tok) const;

  static void buildCsr(Csr &Out, std::vector<std::pair<SetVar, SetVar>> &E,
                       size_t NumVars);

  Csr Fwd, Rev;
  size_t NumVars = 0;
  bool Built = false;

  // Epoch-stamped BFS scratch, reused across queries (bumping the epoch
  // is the whole reset).
  mutable std::vector<uint64_t> VisitEpoch;
  mutable std::vector<SetVar> Work;
  mutable uint64_t Epoch = 0;
};

} // namespace spidey

#endif // SPIDEY_QUERY_FLOW_INDEX_H
