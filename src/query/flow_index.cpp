//===-- query/flow_index.cpp ----------------------------------*- C++ -*-===//

#include "query/flow_index.h"

#include <algorithm>

using namespace spidey;

void FlowIndex::clear() {
  Fwd = Csr{};
  Rev = Csr{};
  NumVars = 0;
  Built = false;
}

void FlowIndex::buildCsr(Csr &Out, std::vector<std::pair<SetVar, SetVar>> &E,
                         size_t NumVars) {
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  Out.Offsets.assign(NumVars + 1, 0);
  for (const auto &[From, To] : E)
    ++Out.Offsets[From + 1];
  for (size_t I = 1; I <= NumVars; ++I)
    Out.Offsets[I] += Out.Offsets[I - 1];
  Out.Edges.resize(E.size());
  // E is sorted by (From, To), so each row lands sorted ascending — the
  // same presentation FlowGraph's sort+unique produces.
  for (size_t I = 0; I < E.size(); ++I)
    Out.Edges[I] = E[I].second;
}

void FlowIndex::build(const ConstraintSystem &S) {
  clear();
  std::vector<std::pair<SetVar, SetVar>> Forward, Reverse;
  SetVar MaxVar = 0;
  for (SetVar A : S.variables()) {
    MaxVar = std::max(MaxVar, A);
    for (const UpperBound &U : S.upperBounds(A)) {
      if (U.K != UpperBound::Kind::VarUB &&
          U.K != UpperBound::Kind::FilterUB)
        continue;
      MaxVar = std::max(MaxVar, U.Other);
      Forward.emplace_back(A, U.Other);
      Reverse.emplace_back(U.Other, A);
    }
  }
  NumVars = Forward.empty() && S.variables().empty()
                ? 0
                : static_cast<size_t>(MaxVar) + 1;
  buildCsr(Fwd, Forward, NumVars);
  buildCsr(Rev, Reverse, NumVars);
  Built = true;
}

FlowIndex::Reach FlowIndex::reach(const Csr &Dir, SetVar A,
                                  CancelToken *Tok) const {
  Reach R;
  R.Complete = true;
  if (!Built || A >= NumVars)
    return R;
  if (VisitEpoch.size() < NumVars)
    VisitEpoch.assign(NumVars, 0);
  ++Epoch;
  VisitEpoch[A] = Epoch;
  Work.clear();
  Work.push_back(A);
  bool Armed = Tok && Tok->armed();
  while (!Work.empty()) {
    SetVar V = Work.back();
    Work.pop_back();
    if (Armed && Tok->charge(1)) {
      R.Complete = false;
      return R;
    }
    for (SetVar N : Dir.row(V)) {
      if (VisitEpoch[N] == Epoch)
        continue;
      VisitEpoch[N] = Epoch;
      ++R.Count;
      Work.push_back(N);
    }
  }
  return R;
}
