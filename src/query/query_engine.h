//===-- query/query_engine.h - Demand-driven serve queries -----*- C++ -*-===//
///
/// \file
/// The demand-driven query layer behind the serve session's `flow` and
/// `check-summary` commands (DESIGN.md §12). Instead of paying
/// whole-program cost per request — a fresh FlowGraph over the entire
/// closed combined system for every flow query, a full reconstruct sweep
/// for every check summary — the engine keeps three kinds of state:
///
///  - a persistent FlowIndex (CSR ε-edge adjacency) built once per
///    analysis generation and shared by every flow query of that
///    generation; each query is then a worklist exploration outward from
///    the query variable only;
///  - memoized per-region reachability summaries: the answer to a flow
///    query is a pure function of the query variable's *region* (the
///    undirected connected component of the constraint graph containing
///    it), so each region gets a digest — a hash of every bound of every
///    variable in it, in canonical order. Variables enter the digest as
///    region-local ordinals (their rank within the region in ascending id
///    order), not raw ids: the merge numbers all external variables ahead
///    of the per-component public blocks, so an edit that adds one
///    top-level name shifts every later id by one while changing no
///    region's structure, and the ordinal labeling keeps every untouched
///    region's digest — and its memoized answers — stable across that
///    renumbering;
///  - memoized per-component check verdicts keyed by the component's v2
///    cache identity (source hash + componential options fingerprint)
///    plus the digests of the regions its external variables inhabit:
///    `check-summary` re-runs step-3 reconstruction only for components
///    whose key changed, so a 1-component edit re-checks exactly one
///    component.
///
/// Soundness of the region key: Θ only ever combines a lower and an upper
/// bound of the same variable, so a closed fact about a variable is a
/// function of the initial constraints in its undirected connected
/// component; a component's step-3 verdicts are a function of its own
/// source (and options) plus the combined bounds of the regions its
/// externals touch. A digest mismatch is always safe — it merely forces a
/// recheck. Verdict memoization is disabled for polymorphic derivation
/// modes, where reconstruction order feeds a shared schema table.
///
/// Degradation contract: queries poll the session CancelToken. A
/// cancelled flow walk answers with partial counts and Degraded=true and
/// is never memoized; a cancelled summary sweep answers the partial
/// verdicts gathered so far (completed per-component verdicts are still
/// individually exact and are cached); the next in-budget query returns
/// exact answers.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_QUERY_QUERY_ENGINE_H
#define SPIDEY_QUERY_QUERY_ENGINE_H

#include "componential/componential.h"
#include "query/flow_index.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

/// Engine counters, accumulated for the session (reported by the serve
/// "stats" command).
struct QueryStats {
  uint64_t IndexBuilds = 0;     ///< FlowIndex (re)builds, one per generation
  uint64_t FlowQueries = 0;
  uint64_t FlowMemoHits = 0;    ///< flow answers served from a region summary
  uint64_t NameIndexBuilds = 0; ///< Name -> VarId index builds
  uint64_t RegionSweeps = 0;    ///< region digest passes, one per generation
  uint64_t ComponentsRechecked = 0;
  uint64_t VerdictsReused = 0;
  uint64_t DegradedQueries = 0; ///< flow walks cut short by the token
};

class QueryEngine {
public:
  struct FlowAnswer {
    bool Found = false;  ///< false: no top-level definition of that name
    SetVar Var = NoSetVar;
    std::vector<std::string> Kinds; ///< sorted, deduplicated kind names
    size_t Parents = 0, Children = 0, Ancestors = 0, Descendants = 0;
    bool Degraded = false;    ///< cancelled mid-walk; counts are partial
    bool FromSummary = false; ///< served from a memoized region summary
  };

  struct SummaryAnswer {
    bool Partial = false;   ///< sweep cut short by the token
    uint32_t Rechecked = 0; ///< components whose checks actually re-ran
    uint32_t Reused = 0;    ///< components served from memoized verdicts
    size_t Possible = 0, Unsafe = 0;
    std::string Summary; ///< byte-identical to DebugReport::summary
  };

  /// Binds the engine to the current analysis generation. \p Volatile
  /// marks a degraded/partial generation: queries still answer over the
  /// partial system, but the cross-generation memo caches are neither
  /// read nor written. \p AllowVerdictCache gates check-verdict
  /// memoization (off for polymorphic derivation). \p OptionsFP is the
  /// componential fingerprint folded into every verdict key.
  void rebind(Program &P, ComponentialAnalyzer &CA, CancelToken *Tok,
              bool Volatile, bool AllowVerdictCache, std::string OptionsFP);

  /// Answers one flow query by name. The caller re-arms the token first.
  FlowAnswer flow(const std::string &Name);

  /// Answers a check summary, rechecking only components whose verdict
  /// key changed. The caller re-arms the token first.
  SummaryAnswer checkSummary();

  const QueryStats &stats() const { return Stats; }
  const FlowIndex &index() const { return Index; }

private:
  struct FlowMemoEntry {
    uint64_t RegionDigest = 0;
    /// The query variable's rank within its region: pins the anchor's
    /// position renumbering-stably (two members of one region share a
    /// digest but not an ordinal).
    uint32_t AnchorOrdinal = 0;
    FlowAnswer Answer;
  };

  struct VerdictMemoEntry {
    std::string SourceHash; ///< hashSource of the component's text
    std::string OptionsFP;  ///< componentialFingerprint at memo time
    uint64_t RegionKey = 0; ///< digests of the externals' regions
    size_t Possible = 0, Unsafe = 0;
    std::vector<std::string> UnsafeLines; ///< rendered, in verdict order
  };

  void ensureIndex();
  void ensureNameIndex();
  void ensureRegions();

  SetVar regionRoot(SetVar V) const;
  /// Digest of the region containing \p V (0 for unbounded variables).
  uint64_t regionDigest(SetVar V) const;
  /// \p V's rank within its region, in ascending variable order — the
  /// renumbering-stable stand-in for its raw id.
  uint32_t ordinalOf(SetVar V) const;
  /// Verdict key for component \p I: the (digest, ordinal) pairs of its
  /// external anchors, sorted — which regions the component reads and
  /// where in them it is anchored, independent of raw numbering.
  uint64_t regionKeyOf(uint32_t I);

  // Bound-generation state (valid between rebind calls).
  Program *P = nullptr;
  ComponentialAnalyzer *CA = nullptr;
  CancelToken *Tok = nullptr;
  bool Volatile = false;
  bool AllowVerdictCache = true;
  std::string OptionsFP;

  // Per-generation lazy state, reset by rebind.
  FlowIndex Index;
  bool IndexReady = false;
  std::unordered_map<Symbol, VarId> NameIndex;
  bool NameIndexReady = false;
  std::vector<SetVar> RegionParent; ///< union-find over the bound graph
  std::vector<uint32_t> RegionOrdinal; ///< rank within region, per var
  std::unordered_map<SetVar, uint64_t> RootDigest;
  bool RegionsReady = false;

  // Cross-generation memo caches (the whole point of the engine).
  // FlowMemo is keyed by query name; Verdicts by "<index>:<name>" so two
  // components sharing a name can never alias each other's verdicts.
  std::unordered_map<std::string, FlowMemoEntry> FlowMemo;
  std::unordered_map<std::string, VerdictMemoEntry> Verdicts;

  QueryStats Stats;
};

} // namespace spidey

#endif // SPIDEY_QUERY_QUERY_ENGINE_H
