//===-- interp/machine.h - CEK evaluator -----------------------*- C++ -*-===//
///
/// \file
/// A CEK-style abstract machine implementing the reduction semantics of
/// §2.1.2 and the extensions of chapter 3: pairs, first-class
/// continuations (stack capture), assignable variables, boxes, vectors,
/// units and classes.
///
/// The machine is the repository's executable ground truth: soundness
/// tests run programs under a tracing hook and assert that every observed
/// (label, value) pair is predicted by the analysis (Theorem 2.6.4), and
/// that every run-time fault is flagged as an unsafe check site.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_INTERP_MACHINE_H
#define SPIDEY_INTERP_MACHINE_H

#include "interp/value.h"

#include <functional>
#include <optional>
#include <string>

namespace spidey {

enum class FrameKind : uint8_t {
  If,
  AppCollect,
  PrimCollect,
  LetInit,
  LetrecInit,
  SetCell,
  Begin,
  CallccWait,
  LinkCollect,
  InvokePrep,
  InvokeRun,
  ClassBuild,
  ObjPrep,
  ObjInit,
  IvarGet,
  IvarSetObj,
  TypeCheck,
  StructCollect,
};

/// One pending computation on the machine stack. A single fat struct keeps
/// continuation capture a plain vector copy.
struct Frame {
  FrameKind K;
  ExprId Site = NoExpr; ///< the expression this frame is completing
  EnvPtr Env;
  std::vector<Value> Done;
  size_t Idx = 0;
  Symbol Name = InvalidSymbol;
  Cell Target;

  // Unit invocation state (shared so that captured continuations stay
  // cheap to copy).
  struct PendingInit {
    EnvPtr Env;
    ExprId Expr;
    Cell Slot; ///< null for body expressions (results discarded)
  };
  std::shared_ptr<std::vector<PendingInit>> Pending;
  Cell ExportCell;
  Value Keep; ///< object being initialized / misc stashed value
};

/// The outcome of a run.
struct RunResult {
  enum class Status {
    Ok,        ///< normal completion
    Fault,     ///< a run-time check failed (misapplied operation, §1.1)
    UserError, ///< the program called (error ...)
    OutOfFuel, ///< step budget exhausted
  };

  Status St = Status::Ok;
  Value Result;
  std::string Message;
  ExprId FaultSite = NoExpr; ///< for Fault: the unsafe operation's site
};

/// The evaluator.
class Machine {
public:
  explicit Machine(const Program &P) : P(P) {}

  /// Called with (label, value) whenever an expression directly produces a
  /// value; used by the soundness tests.
  std::function<void(ExprId, const Value &)> Trace;

  /// Simulated standard input for read-line/read-char.
  void setInput(std::string Text) {
    Input = std::move(Text);
    InputPos = 0;
  }
  /// Everything written by display/newline.
  const std::string &output() const { return Output; }

  void setFuel(uint64_t Steps) { Fuel = Steps; }

  /// Machine steps consumed so far, across runProgram and evalTop calls.
  /// The fuzzer uses this to size its step budget against actual usage.
  uint64_t stepsUsed() const { return Steps; }

  /// Evaluates the whole program: allocates the top-level letrec cells,
  /// then runs every component's forms in order. The result is the value
  /// of the last top-level form.
  RunResult runProgram();

  /// Evaluates a single expression in the top-level environment
  /// (runProgram must have succeeded, or evalTop used standalone for
  /// programs without defines).
  RunResult evalTop(ExprId E);

private:
  RunResult run(ExprId Start, EnvPtr Env);

  // Stepping helpers; each returns true to continue, false when Final has
  // been set.
  bool stepEval();
  bool stepReturn();
  bool applyValue(const Value &Fn, std::vector<Value> Args, ExprId Site);
  bool applyPrim(Prim Op, const std::vector<Value> &Args, ExprId Site);
  bool applyStruct(ExprId Site, const std::vector<Value> &Args);
  bool finishInvoke(const Value &UnitVal, const Frame &F);
  bool finishMakeObj(const Value &ClassVal, ExprId Site);

  void evalNext(ExprId E, EnvPtr Env) {
    Mode = Evaluating;
    CurExpr = E;
    CurEnv = std::move(Env);
  }
  void returnValue(Value V) {
    Mode = Returning;
    CurValue = std::move(V);
  }
  /// returnValue + trace hook: for expressions that directly yield values.
  void produce(ExprId Site, Value V) {
    if (Trace)
      Trace(Site, V);
    returnValue(std::move(V));
  }
  bool fault(ExprId Site, std::string Message) {
    Final = RunResult{RunResult::Status::Fault, Value(), std::move(Message),
                      Site};
    return false;
  }
  bool userError(std::string Message) {
    Final = RunResult{RunResult::Status::UserError, Value(),
                      std::move(Message), NoExpr};
    return false;
  }

  const Program &P;
  EnvPtr TopEnv;
  bool TopEnvBuilt = false;
  bool Aborted = false;

  enum { Evaluating, Returning } Mode = Evaluating;
  ExprId CurExpr = NoExpr;
  EnvPtr CurEnv;
  Value CurValue;
  std::vector<Frame> Stack;
  RunResult Final;

  uint64_t Fuel = 50'000'000;
  uint64_t Steps = 0;
  uint64_t RandomState = 88172645463325252ull;
  std::string Input;
  size_t InputPos = 0;
  std::string Output;
};

/// Structural equality (the equal? primitive); exposed for tests.
bool valuesEqual(const Value &A, const Value &B);
/// Identity equality (the eq? primitive); exposed for tests.
bool valuesEq(const Value &A, const Value &B);

} // namespace spidey

#endif // SPIDEY_INTERP_MACHINE_H
