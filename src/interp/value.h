//===-- interp/value.h - Runtime values ------------------------*- C++ -*-===//
///
/// \file
/// Runtime values of the evaluator (§2.1.2 and the extensions of ch. 3).
/// Mutation (assignable variables, boxes, vectors, instance variables) is
/// modeled with shared mutable cells rather than an explicit heap: a cell
/// is a shared_ptr<Value>, environments bind variables to cells, and
/// captured continuations share cells with the program — which gives
/// exactly the (letrec (H) E[...]) store semantics of §3.4/§3.5.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_INTERP_VALUE_H
#define SPIDEY_INTERP_VALUE_H

#include "constraints/const_kind.h"
#include "lang/ast.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

struct Value;
struct Frame;

using Cell = std::shared_ptr<Value>;

/// Immutable environments: a persistent linked list of (variable, cell)
/// bindings.
struct EnvNode {
  VarId Var;
  Cell Slot;
  std::shared_ptr<const EnvNode> Parent;
};
using EnvPtr = std::shared_ptr<const EnvNode>;

/// Looks \p V up in \p Env; null if unbound (a bug — the parser resolves
/// all variables).
inline const Cell *lookupEnv(const EnvPtr &Env, VarId V) {
  for (const EnvNode *N = Env.get(); N; N = N->Parent.get())
    if (N->Var == V)
      return &N->Slot;
  return nullptr;
}

inline EnvPtr extendEnv(EnvPtr Env, VarId V, Cell Slot) {
  return std::make_shared<EnvNode>(EnvNode{V, std::move(Slot), std::move(Env)});
}

struct PairCell;
struct ClosureRep;
struct ContRep;
struct UnitRep;
struct ClassRep;
struct ObjectRep;
struct StructRep;

/// A runtime value. Small immutable payloads are stored inline; compound
/// values are shared.
struct Value {
  enum class Kind : uint8_t {
    Num,
    Bool,
    Str,
    Char,
    Nil,
    Sym,
    Void,
    Eof,
    Pair,
    Closure,
    Cont,
    Box,
    Vector,
    Unit,
    Class,
    Object,
    Struct,
  };

  Kind K = Kind::Void;
  double Num = 0;
  bool B = false;
  char Ch = 0;
  Symbol Sym = InvalidSymbol;
  std::shared_ptr<const std::string> Str;
  std::shared_ptr<const PairCell> Pair;
  std::shared_ptr<const ClosureRep> Clo;
  std::shared_ptr<const ContRep> Cont;
  Cell BoxCell;
  std::shared_ptr<std::vector<Value>> Vec;
  std::shared_ptr<const UnitRep> Unit;
  std::shared_ptr<const ClassRep> Cls;
  std::shared_ptr<const ObjectRep> Obj;
  std::shared_ptr<const StructRep> Strct;

  /// Everything except #f is true in conditionals.
  bool isTruthy() const { return !(K == Kind::Bool && !B); }

  static Value number(double N) {
    Value V;
    V.K = Kind::Num;
    V.Num = N;
    return V;
  }
  static Value boolean(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static Value character(char C) {
    Value V;
    V.K = Kind::Char;
    V.Ch = C;
    return V;
  }
  static Value string(std::string S) {
    Value V;
    V.K = Kind::Str;
    V.Str = std::make_shared<const std::string>(std::move(S));
    return V;
  }
  static Value symbol(Symbol S) {
    Value V;
    V.K = Kind::Sym;
    V.Sym = S;
    return V;
  }
  static Value nil() {
    Value V;
    V.K = Kind::Nil;
    return V;
  }
  static Value voidValue() { return Value(); }
  static Value eof() {
    Value V;
    V.K = Kind::Eof;
    return V;
  }
  static Value pair(Value Car, Value Cdr);
  static Value box(Value Contents) {
    Value V;
    V.K = Kind::Box;
    V.BoxCell = std::make_shared<Value>(std::move(Contents));
    return V;
  }
  static Value vector(std::vector<Value> Elems) {
    Value V;
    V.K = Kind::Vector;
    V.Vec = std::make_shared<std::vector<Value>>(std::move(Elems));
    return V;
  }

  /// Renders the value for test assertions and `display`.
  std::string str(const SymbolTable &Syms) const;
};

struct PairCell {
  Value Car, Cdr;
};

inline Value Value::pair(Value Car, Value Cdr) {
  Value V;
  V.K = Kind::Pair;
  V.Pair =
      std::make_shared<const PairCell>(PairCell{std::move(Car), std::move(Cdr)});
  return V;
}

struct ClosureRep {
  ExprId Lambda = NoExpr;
  EnvPtr Env;
};

/// A captured continuation: a copy of the machine's frame stack (§3.3).
struct ContRep {
  std::vector<Frame> Stack;
};

/// One textual unit in a (possibly linked) unit value (§3.6). Linking
/// concatenates segments; invoking runs defines of all segments in order,
/// then bodies in order (the β-link rule).
struct UnitSegment {
  EnvPtr Env; ///< closure environment of the unit expression
  VarId Import = NoVar;
  std::vector<Binding> Defines;
  ExprId Body = NoExpr;
  VarId Export = NoVar;
};

struct UnitRep {
  std::vector<UnitSegment> Segments;
};

/// One level of a class chain (§3.7): the instance variables this class
/// declares or inherits, with initializers for the new ones.
struct ClassRep {
  std::shared_ptr<const ClassRep> Super; ///< null for the root class
  EnvPtr Env;                            ///< closure env of the class expr
  std::vector<VarId> IvarParams;         ///< all ivars in scope (fig. 3.7)
  std::vector<Binding> NewIvars;         ///< suffix of IvarParams with inits
  ExprId Site = NoExpr;                  ///< the class expression
};

struct ObjectRep {
  std::shared_ptr<const ClassRep> Class;
  std::unordered_map<Symbol, Cell> Ivars;
};

/// An instance of a declared constructor (App. D.5.4): its declaration
/// index and one mutable cell per field.
struct StructRep {
  uint32_t Decl = 0;
  std::vector<Cell> Fields;
};

/// The abstract constant kind of a runtime value (the abstraction function
/// relating the machine to the analysis, used by type assertions and the
/// soundness tests).
ConstKind valueAbstractKind(const Value &V);

} // namespace spidey

#endif // SPIDEY_INTERP_VALUE_H
