//===-- interp/machine.cpp ------------------------------------*- C++ -*-===//

#include "interp/machine.h"

#include <cassert>
#include <cmath>

using namespace spidey;

//===----------------------------------------------------------------------===
// Equality.
//===----------------------------------------------------------------------===

bool spidey::valuesEq(const Value &A, const Value &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Value::Kind::Num:
    return A.Num == B.Num;
  case Value::Kind::Bool:
    return A.B == B.B;
  case Value::Kind::Char:
    return A.Ch == B.Ch;
  case Value::Kind::Sym:
    return A.Sym == B.Sym;
  case Value::Kind::Nil:
  case Value::Kind::Void:
  case Value::Kind::Eof:
    return true;
  case Value::Kind::Str:
    return A.Str == B.Str;
  case Value::Kind::Pair:
    return A.Pair == B.Pair;
  case Value::Kind::Closure:
    return A.Clo == B.Clo;
  case Value::Kind::Cont:
    return A.Cont == B.Cont;
  case Value::Kind::Box:
    return A.BoxCell == B.BoxCell;
  case Value::Kind::Vector:
    return A.Vec == B.Vec;
  case Value::Kind::Unit:
    return A.Unit == B.Unit;
  case Value::Kind::Class:
    return A.Cls == B.Cls;
  case Value::Kind::Object:
    return A.Obj == B.Obj;
  case Value::Kind::Struct:
    return A.Strct == B.Strct;
  }
  return false;
}

bool spidey::valuesEqual(const Value &A, const Value &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Value::Kind::Str:
    return *A.Str == *B.Str;
  case Value::Kind::Pair:
    return valuesEqual(A.Pair->Car, B.Pair->Car) &&
           valuesEqual(A.Pair->Cdr, B.Pair->Cdr);
  case Value::Kind::Vector: {
    if (A.Vec->size() != B.Vec->size())
      return false;
    for (size_t I = 0; I < A.Vec->size(); ++I)
      if (!valuesEqual((*A.Vec)[I], (*B.Vec)[I]))
        return false;
    return true;
  }
  default:
    return valuesEq(A, B);
  }
}

//===----------------------------------------------------------------------===
// Program driver.
//===----------------------------------------------------------------------===

RunResult Machine::runProgram() {
  if (!TopEnvBuilt) {
    for (const Component &C : P.Components)
      for (const TopForm &F : C.Forms)
        if (F.DefVar != NoVar)
          TopEnv = extendEnv(TopEnv, F.DefVar,
                             std::make_shared<Value>(Value::voidValue()));
    TopEnvBuilt = true;
  }
  RunResult Last;
  for (const Component &C : P.Components) {
    for (const TopForm &F : C.Forms) {
      Last = run(F.Body, TopEnv);
      if (Last.St != RunResult::Status::Ok)
        return Last;
      if (F.DefVar != NoVar) {
        const Cell *Slot = lookupEnv(TopEnv, F.DefVar);
        assert(Slot && "top-level define cell missing");
        **Slot = Last.Result;
      }
      if (Aborted)
        return Last;
    }
  }
  return Last;
}

RunResult Machine::evalTop(ExprId E) {
  if (!TopEnvBuilt) {
    RunResult R = runProgram();
    if (R.St != RunResult::Status::Ok)
      return R;
  }
  return run(E, TopEnv);
}

RunResult Machine::run(ExprId Start, EnvPtr Env) {
  Stack.clear();
  Final = RunResult{};
  Mode = Evaluating;
  CurExpr = Start;
  CurEnv = std::move(Env);
  for (;;) {
    if (Fuel-- == 0)
      return RunResult{RunResult::Status::OutOfFuel, Value(),
                       "step budget exhausted", NoExpr};
    ++Steps;
    bool Continue = Mode == Evaluating ? stepEval() : stepReturn();
    if (!Continue)
      return Final;
  }
}

//===----------------------------------------------------------------------===
// Evaluation step.
//===----------------------------------------------------------------------===

bool Machine::stepEval() {
  ExprId Id = CurExpr;
  const Expr &E = P.expr(Id);
  switch (E.K) {
  case ExprKind::Var: {
    const Cell *Slot = lookupEnv(CurEnv, E.Var);
    if (!Slot)
      return fault(Id, "internal: unbound variable at run time");
    produce(Id, **Slot);
    return true;
  }
  case ExprKind::Num:
    produce(Id, Value::number(E.Num));
    return true;
  case ExprKind::Bool:
    produce(Id, Value::boolean(E.BoolVal));
    return true;
  case ExprKind::Str:
    produce(Id, Value::string(E.Str));
    return true;
  case ExprKind::Char:
    produce(Id, Value::character(E.CharVal));
    return true;
  case ExprKind::Nil:
    produce(Id, Value::nil());
    return true;
  case ExprKind::Quote:
    produce(Id, Value::symbol(E.Name));
    return true;
  case ExprKind::Void:
    produce(Id, Value::voidValue());
    return true;
  case ExprKind::Lambda: {
    Value V;
    V.K = Value::Kind::Closure;
    V.Clo = std::make_shared<const ClosureRep>(ClosureRep{Id, CurEnv});
    produce(Id, V);
    return true;
  }
  case ExprKind::App: {
    Frame F;
    F.K = FrameKind::AppCollect;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::PrimApp: {
    if (E.Kids.empty())
      return applyPrim(E.PrimOp, {}, Id);
    Frame F;
    F.K = FrameKind::PrimCollect;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Let: {
    if (E.Bindings.empty()) {
      evalNext(E.Kids[0], CurEnv);
      return true;
    }
    Frame F;
    F.K = FrameKind::LetInit;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Bindings[0].Init, CurEnv);
    return true;
  }
  case ExprKind::Letrec: {
    EnvPtr Env = CurEnv;
    for (const Binding &B : E.Bindings)
      Env = extendEnv(Env, B.Var, std::make_shared<Value>(Value::voidValue()));
    if (E.Bindings.empty()) {
      evalNext(E.Kids[0], Env);
      return true;
    }
    Frame F;
    F.K = FrameKind::LetrecInit;
    F.Site = Id;
    F.Env = Env;
    F.Idx = 0;
    Stack.push_back(F);
    evalNext(E.Bindings[0].Init, Env);
    return true;
  }
  case ExprKind::Set: {
    const Cell *Slot = lookupEnv(CurEnv, E.Var);
    if (!Slot)
      return fault(Id, "internal: set! of unbound variable");
    Frame F;
    F.K = FrameKind::SetCell;
    F.Site = Id;
    F.Target = *Slot;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::If: {
    Frame F;
    F.K = FrameKind::If;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Begin: {
    Frame F;
    F.K = FrameKind::Begin;
    F.Site = Id;
    F.Env = CurEnv;
    F.Idx = 1; // next kid to evaluate after kids[0] returns
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Callcc: {
    Frame F;
    F.K = FrameKind::CallccWait;
    F.Site = Id;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Abort: {
    // (abort M) discards the current evaluation context (§3.3) and makes
    // M's value the result of the entire computation.
    Stack.clear();
    Aborted = true;
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Unit: {
    UnitSegment Seg;
    Seg.Env = CurEnv;
    Seg.Import = E.Params[0];
    Seg.Defines = E.Bindings;
    Seg.Body = E.Kids[0];
    Seg.Export = E.Params[1];
    auto Rep = std::make_shared<UnitRep>();
    Rep->Segments.push_back(std::move(Seg));
    Value V;
    V.K = Value::Kind::Unit;
    V.Unit = std::move(Rep);
    produce(Id, V);
    return true;
  }
  case ExprKind::Link: {
    Frame F;
    F.K = FrameKind::LinkCollect;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Invoke: {
    const Cell *Slot = lookupEnv(CurEnv, E.Var);
    if (!Slot)
      return fault(Id, "internal: invoke with unbound variable");
    Frame F;
    F.K = FrameKind::InvokePrep;
    F.Site = Id;
    F.Target = *Slot;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::StructApp: {
    if (E.Kids.empty())
      return applyStruct(Id, {});
    Frame F;
    F.K = FrameKind::StructCollect;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::TypeAssert: {
    Frame F;
    F.K = FrameKind::TypeCheck;
    F.Site = Id;
    F.Idx = E.Mask;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::Class: {
    if (E.Kids.empty()) {
      // object%: the root class.
      Value V;
      V.K = Value::Kind::Class;
      V.Cls = std::make_shared<const ClassRep>();
      produce(Id, V);
      return true;
    }
    Frame F;
    F.K = FrameKind::ClassBuild;
    F.Site = Id;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::MakeObj: {
    Frame F;
    F.K = FrameKind::ObjPrep;
    F.Site = Id;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::IvarRef: {
    Frame F;
    F.K = FrameKind::IvarGet;
    F.Site = Id;
    F.Name = E.Name;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  case ExprKind::IvarSet: {
    Frame F;
    F.K = FrameKind::IvarSetObj;
    F.Site = Id;
    F.Name = E.Name;
    F.Env = CurEnv;
    Stack.push_back(std::move(F));
    evalNext(E.Kids[0], CurEnv);
    return true;
  }
  }
  return fault(Id, "internal: unknown expression kind");
}

//===----------------------------------------------------------------------===
// Return step.
//===----------------------------------------------------------------------===

bool Machine::stepReturn() {
  if (Stack.empty()) {
    Final = RunResult{RunResult::Status::Ok, CurValue, "", NoExpr};
    return false;
  }
  Value V = std::move(CurValue);
  Frame &F = Stack.back();
  switch (F.K) {
  case FrameKind::If: {
    const Expr &E = P.expr(F.Site);
    ExprId Branch = V.isTruthy() ? E.Kids[1] : E.Kids[2];
    EnvPtr Env = F.Env;
    Stack.pop_back();
    evalNext(Branch, std::move(Env));
    return true;
  }
  case FrameKind::AppCollect: {
    F.Done.push_back(std::move(V));
    const Expr &E = P.expr(F.Site);
    if (F.Done.size() < E.Kids.size()) {
      evalNext(E.Kids[F.Done.size()], F.Env);
      return true;
    }
    std::vector<Value> Done = std::move(F.Done);
    ExprId Site = F.Site;
    Stack.pop_back();
    Value Fn = std::move(Done.front());
    Done.erase(Done.begin());
    return applyValue(Fn, std::move(Done), Site);
  }
  case FrameKind::PrimCollect: {
    F.Done.push_back(std::move(V));
    const Expr &E = P.expr(F.Site);
    if (F.Done.size() < E.Kids.size()) {
      evalNext(E.Kids[F.Done.size()], F.Env);
      return true;
    }
    std::vector<Value> Done = std::move(F.Done);
    ExprId Site = F.Site;
    Prim Op = E.PrimOp;
    Stack.pop_back();
    return applyPrim(Op, Done, Site);
  }
  case FrameKind::LetInit: {
    F.Done.push_back(std::move(V));
    const Expr &E = P.expr(F.Site);
    if (F.Done.size() < E.Bindings.size()) {
      evalNext(E.Bindings[F.Done.size()].Init, F.Env);
      return true;
    }
    EnvPtr Env = F.Env;
    for (size_t I = 0; I < E.Bindings.size(); ++I)
      Env = extendEnv(Env, E.Bindings[I].Var,
                      std::make_shared<Value>(std::move(F.Done[I])));
    ExprId Body = E.Kids[0];
    Stack.pop_back();
    evalNext(Body, std::move(Env));
    return true;
  }
  case FrameKind::LetrecInit: {
    const Expr &E = P.expr(F.Site);
    const Cell *Slot = lookupEnv(F.Env, E.Bindings[F.Idx].Var);
    assert(Slot && "letrec cell missing");
    **Slot = std::move(V);
    ++F.Idx;
    if (F.Idx < E.Bindings.size()) {
      evalNext(E.Bindings[F.Idx].Init, F.Env);
      return true;
    }
    EnvPtr Env = F.Env;
    ExprId Body = E.Kids[0];
    Stack.pop_back();
    evalNext(Body, std::move(Env));
    return true;
  }
  case FrameKind::SetCell: {
    *F.Target = V;
    ExprId Site = F.Site;
    Stack.pop_back();
    // Assignment returns the assigned value (§3.4).
    produce(Site, std::move(V));
    return true;
  }
  case FrameKind::Begin: {
    const Expr &E = P.expr(F.Site);
    // Discard V; move on.
    if (F.Idx + 1 < E.Kids.size()) {
      evalNext(E.Kids[F.Idx++], F.Env);
      return true;
    }
    ExprId Last = E.Kids[F.Idx];
    EnvPtr Env = F.Env;
    Stack.pop_back();
    evalNext(Last, std::move(Env));
    return true;
  }
  case FrameKind::CallccWait: {
    ExprId Site = F.Site;
    Stack.pop_back();
    // Capture the continuation surrounding the callcc expression.
    Value K;
    K.K = Value::Kind::Cont;
    K.Cont = std::make_shared<const ContRep>(ContRep{Stack});
    std::vector<Value> Args;
    Args.push_back(std::move(K));
    return applyValue(V, std::move(Args), Site);
  }
  case FrameKind::LinkCollect: {
    F.Done.push_back(std::move(V));
    const Expr &E = P.expr(F.Site);
    if (F.Done.size() < 2) {
      evalNext(E.Kids[1], F.Env);
      return true;
    }
    ExprId Site = F.Site;
    std::vector<Value> Done = std::move(F.Done);
    Stack.pop_back();
    if (Done[0].K != Value::Kind::Unit || Done[1].K != Value::Kind::Unit)
      return fault(Site, "link applied to a non-unit value");
    auto Rep = std::make_shared<UnitRep>();
    Rep->Segments = Done[0].Unit->Segments;
    Rep->Segments.insert(Rep->Segments.end(),
                         Done[1].Unit->Segments.begin(),
                         Done[1].Unit->Segments.end());
    Value U;
    U.K = Value::Kind::Unit;
    U.Unit = std::move(Rep);
    produce(Site, std::move(U));
    return true;
  }
  case FrameKind::InvokePrep: {
    Frame Prep = std::move(Stack.back());
    Stack.pop_back();
    if (V.K != Value::Kind::Unit)
      return fault(Prep.Site, "invoke applied to a non-unit value");
    return finishInvoke(V, Prep);
  }
  case FrameKind::InvokeRun:
  case FrameKind::ObjInit: {
    const Frame::PendingInit &Entry = (*F.Pending)[F.Idx];
    if (Entry.Slot)
      *Entry.Slot = std::move(V);
    ++F.Idx;
    if (F.Idx < F.Pending->size()) {
      const Frame::PendingInit &Next = (*F.Pending)[F.Idx];
      evalNext(Next.Expr, Next.Env);
      return true;
    }
    ExprId Site = F.Site;
    Value Result =
        F.K == FrameKind::InvokeRun ? *F.ExportCell : std::move(F.Keep);
    Stack.pop_back();
    produce(Site, std::move(Result));
    return true;
  }
  case FrameKind::ClassBuild: {
    ExprId Site = F.Site;
    EnvPtr Env = F.Env;
    Stack.pop_back();
    if (V.K != Value::Kind::Class)
      return fault(Site, "class with a non-class superclass");
    const Expr &E = P.expr(Site);
    auto Rep = std::make_shared<ClassRep>();
    Rep->Super = V.Cls;
    Rep->Env = Env;
    Rep->IvarParams = E.Params;
    for (const Binding &B : E.Bindings)
      Rep->IvarParams.push_back(B.Var);
    Rep->NewIvars = E.Bindings;
    Rep->Site = Site;
    Value C;
    C.K = Value::Kind::Class;
    C.Cls = std::move(Rep);
    produce(Site, std::move(C));
    return true;
  }
  case FrameKind::ObjPrep: {
    ExprId Site = F.Site;
    Stack.pop_back();
    if (V.K != Value::Kind::Class)
      return fault(Site, "make-obj applied to a non-class value");
    return finishMakeObj(V, Site);
  }
  case FrameKind::IvarGet: {
    ExprId Site = F.Site;
    Symbol Name = F.Name;
    Stack.pop_back();
    if (V.K != Value::Kind::Object)
      return fault(Site, "ivar access on a non-object value");
    auto It = V.Obj->Ivars.find(Name);
    if (It == V.Obj->Ivars.end())
      return fault(Site, "object has no such instance variable");
    produce(Site, *It->second);
    return true;
  }
  case FrameKind::StructCollect: {
    F.Done.push_back(std::move(V));
    const Expr &E = P.expr(F.Site);
    if (F.Done.size() < E.Kids.size()) {
      evalNext(E.Kids[F.Done.size()], F.Env);
      return true;
    }
    std::vector<Value> Done = std::move(F.Done);
    ExprId Site = F.Site;
    Stack.pop_back();
    return applyStruct(Site, Done);
  }
  case FrameKind::TypeCheck: {
    ExprId Site = F.Site;
    KindMask Mask = static_cast<KindMask>(F.Idx);
    Stack.pop_back();
    if (!(Mask & kindBit(valueAbstractKind(V))))
      return fault(Site, "value does not satisfy the type assertion");
    produce(Site, std::move(V));
    return true;
  }
  case FrameKind::IvarSetObj: {
    Frame Self = std::move(Stack.back());
    Stack.pop_back();
    if (V.K != Value::Kind::Object)
      return fault(Self.Site, "set-ivar! on a non-object value");
    auto It = V.Obj->Ivars.find(Self.Name);
    if (It == V.Obj->Ivars.end())
      return fault(Self.Site, "object has no such instance variable");
    Frame Store;
    Store.K = FrameKind::SetCell;
    Store.Site = Self.Site;
    Store.Target = It->second;
    Stack.push_back(std::move(Store));
    evalNext(P.expr(Self.Site).Kids[1], Self.Env);
    return true;
  }
  }
  return fault(NoExpr, "internal: unknown frame kind");
}

bool Machine::applyStruct(ExprId Site, const std::vector<Value> &Args) {
  const Expr &E = P.expr(Site);
  const StructDecl &D = P.Structs[E.StructId];
  auto Expect = [&](const char *What) {
    return fault(Site, std::string(What) + " applied to a value that is "
                                           "not a " +
                           P.Syms.name(D.Name) + " structure");
  };
  switch (static_cast<StructOpKind>(E.StructOp)) {
  case StructOpKind::Make: {
    auto Rep = std::make_shared<StructRep>();
    Rep->Decl = E.StructId;
    for (const Value &A : Args)
      Rep->Fields.push_back(std::make_shared<Value>(A));
    Value V;
    V.K = Value::Kind::Struct;
    V.Strct = std::move(Rep);
    produce(Site, std::move(V));
    return true;
  }
  case StructOpKind::Pred:
    produce(Site, Value::boolean(Args[0].K == Value::Kind::Struct &&
                                 Args[0].Strct->Decl == E.StructId));
    return true;
  case StructOpKind::Get: {
    if (Args[0].K != Value::Kind::Struct ||
        Args[0].Strct->Decl != E.StructId)
      return Expect("structure accessor");
    produce(Site, *Args[0].Strct->Fields[E.FieldIndex]);
    return true;
  }
  case StructOpKind::Set: {
    if (Args[0].K != Value::Kind::Struct ||
        Args[0].Strct->Decl != E.StructId)
      return Expect("structure mutator");
    *Args[0].Strct->Fields[E.FieldIndex] = Args[1];
    produce(Site, Args[1]);
    return true;
  }
  }
  return fault(Site, "internal: unknown structure operation");
}

bool Machine::applyValue(const Value &Fn, std::vector<Value> Args,
                         ExprId Site) {
  if (Fn.K == Value::Kind::Closure) {
    const Expr &Lam = P.expr(Fn.Clo->Lambda);
    if (Lam.Params.size() != Args.size())
      return fault(Site, "procedure applied to the wrong number of "
                         "arguments");
    EnvPtr Env = Fn.Clo->Env;
    for (size_t I = 0; I < Args.size(); ++I)
      Env = extendEnv(Env, Lam.Params[I],
                      std::make_shared<Value>(std::move(Args[I])));
    evalNext(Lam.Kids[0], std::move(Env));
    return true;
  }
  if (Fn.K == Value::Kind::Cont) {
    if (Args.size() != 1)
      return fault(Site, "continuation applied to the wrong number of "
                         "arguments");
    Stack = Fn.Cont->Stack;
    returnValue(std::move(Args[0]));
    return true;
  }
  return fault(Site, "application of a non-procedure value");
}

bool Machine::finishInvoke(const Value &UnitVal, const Frame &Prep) {
  auto Pending = std::make_shared<std::vector<Frame::PendingInit>>();
  std::vector<Frame::PendingInit> Bodies;
  Cell PrevExport = Prep.Target;
  for (const UnitSegment &Seg : UnitVal.Unit->Segments) {
    EnvPtr Env = extendEnv(Seg.Env, Seg.Import, PrevExport);
    for (const Binding &D : Seg.Defines)
      Env = extendEnv(Env, D.Var,
                      std::make_shared<Value>(Value::voidValue()));
    for (const Binding &D : Seg.Defines) {
      const Cell *Slot = lookupEnv(Env, D.Var);
      assert(Slot);
      Pending->push_back({Env, D.Init, *Slot});
    }
    Bodies.push_back({Env, Seg.Body, nullptr});
    const Cell *ExportSlot = lookupEnv(Env, Seg.Export);
    if (!ExportSlot)
      return fault(Prep.Site, "internal: unit export unbound");
    PrevExport = *ExportSlot;
  }
  Pending->insert(Pending->end(), Bodies.begin(), Bodies.end());
  if (Pending->empty()) {
    produce(Prep.Site, *PrevExport);
    return true;
  }
  Frame Run;
  Run.K = FrameKind::InvokeRun;
  Run.Site = Prep.Site;
  Run.Pending = Pending;
  Run.ExportCell = PrevExport;
  Run.Idx = 0;
  Stack.push_back(std::move(Run));
  evalNext((*Pending)[0].Expr, (*Pending)[0].Env);
  return true;
}

bool Machine::finishMakeObj(const Value &ClassVal, ExprId Site) {
  // Collect the class chain from root to leaf.
  std::vector<const ClassRep *> Chain;
  for (const ClassRep *C = ClassVal.Cls.get(); C; C = C->Super.get())
    Chain.push_back(C);
  std::reverse(Chain.begin(), Chain.end());

  auto Obj = std::make_shared<ObjectRep>();
  Obj->Class = ClassVal.Cls;
  auto Pending = std::make_shared<std::vector<Frame::PendingInit>>();
  for (const ClassRep *Level : Chain) {
    EnvPtr Env = Level->Env;
    for (VarId Z : Level->IvarParams) {
      Symbol Name = P.var(Z).Name;
      Cell &Slot = Obj->Ivars[Name];
      if (!Slot)
        Slot = std::make_shared<Value>(Value::voidValue());
      Env = extendEnv(Env, Z, Slot);
    }
    for (const Binding &B : Level->NewIvars)
      Pending->push_back({Env, B.Init, Obj->Ivars[P.var(B.Var).Name]});
  }
  Value V;
  V.K = Value::Kind::Object;
  V.Obj = std::move(Obj);
  if (Pending->empty()) {
    produce(Site, std::move(V));
    return true;
  }
  Frame Run;
  Run.K = FrameKind::ObjInit;
  Run.Site = Site;
  Run.Pending = Pending;
  Run.Keep = std::move(V);
  Run.Idx = 0;
  Stack.push_back(std::move(Run));
  evalNext((*Pending)[0].Expr, (*Pending)[0].Env);
  return true;
}
