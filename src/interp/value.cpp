//===-- interp/value.cpp --------------------------------------*- C++ -*-===//

#include "interp/value.h"

#include <sstream>

using namespace spidey;

namespace {

void printValue(const Value &V, const SymbolTable &Syms,
                std::ostringstream &OS, int Depth) {
  if (Depth > 32) {
    OS << "...";
    return;
  }
  switch (V.K) {
  case Value::Kind::Num:
    if (V.Num == static_cast<long long>(V.Num))
      OS << static_cast<long long>(V.Num);
    else
      OS << V.Num;
    return;
  case Value::Kind::Bool:
    OS << (V.B ? "#t" : "#f");
    return;
  case Value::Kind::Str:
    OS << '"' << *V.Str << '"';
    return;
  case Value::Kind::Char:
    OS << "#\\" << V.Ch;
    return;
  case Value::Kind::Nil:
    OS << "()";
    return;
  case Value::Kind::Sym:
    OS << Syms.name(V.Sym);
    return;
  case Value::Kind::Void:
    OS << "#<void>";
    return;
  case Value::Kind::Eof:
    OS << "#<eof>";
    return;
  case Value::Kind::Pair: {
    OS << '(';
    printValue(V.Pair->Car, Syms, OS, Depth + 1);
    const Value *Rest = &V.Pair->Cdr;
    while (Rest->K == Value::Kind::Pair) {
      OS << ' ';
      printValue(Rest->Pair->Car, Syms, OS, Depth + 1);
      Rest = &Rest->Pair->Cdr;
    }
    if (Rest->K != Value::Kind::Nil) {
      OS << " . ";
      printValue(*Rest, Syms, OS, Depth + 1);
    }
    OS << ')';
    return;
  }
  case Value::Kind::Closure:
    OS << "#<procedure>";
    return;
  case Value::Kind::Cont:
    OS << "#<continuation>";
    return;
  case Value::Kind::Box:
    OS << "#&";
    printValue(*V.BoxCell, Syms, OS, Depth + 1);
    return;
  case Value::Kind::Vector: {
    OS << "#(";
    bool First = true;
    for (const Value &E : *V.Vec) {
      if (!First)
        OS << ' ';
      First = false;
      printValue(E, Syms, OS, Depth + 1);
    }
    OS << ')';
    return;
  }
  case Value::Kind::Unit:
    OS << "#<unit>";
    return;
  case Value::Kind::Class:
    OS << "#<class>";
    return;
  case Value::Kind::Object:
    OS << "#<object>";
    return;
  case Value::Kind::Struct: {
    OS << "#(struct";
    for (const Cell &F : V.Strct->Fields) {
      OS << ' ';
      printValue(*F, Syms, OS, Depth + 1);
    }
    OS << ')';
    return;
  }
  }
}

} // namespace

std::string Value::str(const SymbolTable &Syms) const {
  std::ostringstream OS;
  printValue(*this, Syms, OS, 0);
  return OS.str();
}

ConstKind spidey::valueAbstractKind(const Value &V) {
  switch (V.K) {
  case Value::Kind::Num:
    return ConstKind::Num;
  case Value::Kind::Bool:
    return V.B ? ConstKind::True : ConstKind::False;
  case Value::Kind::Str:
    return ConstKind::Str;
  case Value::Kind::Char:
    return ConstKind::Char;
  case Value::Kind::Nil:
    return ConstKind::Nil;
  case Value::Kind::Sym:
    return ConstKind::Sym;
  case Value::Kind::Void:
    return ConstKind::Void;
  case Value::Kind::Eof:
    return ConstKind::Eof;
  case Value::Kind::Pair:
    return ConstKind::Pair;
  case Value::Kind::Closure:
    return ConstKind::FnTag;
  case Value::Kind::Cont:
    return ConstKind::ContTag;
  case Value::Kind::Box:
    return ConstKind::BoxTag;
  case Value::Kind::Vector:
    return ConstKind::VecTag;
  case Value::Kind::Unit:
    return ConstKind::UnitTag;
  case Value::Kind::Class:
    return ConstKind::ClassTag;
  case Value::Kind::Object:
    return ConstKind::ObjTag;
  case Value::Kind::Struct:
    return ConstKind::StructTag;
  }
  return ConstKind::Void;
}
