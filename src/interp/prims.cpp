//===-- interp/prims.cpp - Primitive evaluation ----------------*- C++ -*-===//
///
/// \file
/// Run-time behavior of the primitives. Faults here are exactly the
/// argument-domain violations that the static debugger's check sites
/// cover; other failures the paper's analysis does not model (division by
/// zero, index out of range, §10.2) are reported as user errors instead.
///
//===----------------------------------------------------------------------===//

#include "interp/machine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace spidey;

namespace {

long long asInt(double D) { return static_cast<long long>(D); }

} // namespace

bool Machine::applyPrim(Prim Op, const std::vector<Value> &Args,
                        ExprId Site) {
  using K = Value::Kind;
  const PrimSpec &Spec = primSpec(Op);

  auto Give = [&](Value V) {
    produce(Site, std::move(V));
    return true;
  };
  auto Fault = [&](const char *What) {
    return fault(Site, std::string(Spec.Name) + " applied to a non-" + What +
                           " value");
  };
  auto WantNums = [&]() {
    for (const Value &A : Args)
      if (A.K != K::Num)
        return false;
    return true;
  };
  auto FoldNums = [&](double Init, auto Fn, bool UseFirst) {
    double Acc = UseFirst ? Args[0].Num : Init;
    for (size_t I = UseFirst ? 1 : 0; I < Args.size(); ++I)
      Acc = Fn(Acc, Args[I].Num);
    return Acc;
  };
  auto CompareChain = [&](auto Rel) {
    for (size_t I = 0; I + 1 < Args.size(); ++I)
      if (!Rel(Args[I].Num, Args[I + 1].Num))
        return false;
    return true;
  };

  switch (Op) {
  // --- Pairs ---
  case Prim::Cons:
    return Give(Value::pair(Args[0], Args[1]));
  case Prim::Car:
    if (Args[0].K != K::Pair)
      return Fault("pair");
    return Give(Args[0].Pair->Car);
  case Prim::Cdr:
    if (Args[0].K != K::Pair)
      return Fault("pair");
    return Give(Args[0].Pair->Cdr);
  case Prim::IsPair:
    return Give(Value::boolean(Args[0].K == K::Pair));
  case Prim::IsNull:
    return Give(Value::boolean(Args[0].K == K::Nil));
  case Prim::ListOf: {
    Value Acc = Value::nil();
    for (size_t I = Args.size(); I-- > 0;)
      Acc = Value::pair(Args[I], std::move(Acc));
    return Give(std::move(Acc));
  }

  // --- Boxes ---
  case Prim::BoxNew:
    return Give(Value::box(Args[0]));
  case Prim::Unbox:
    if (Args[0].K != K::Box)
      return Fault("box");
    return Give(*Args[0].BoxCell);
  case Prim::SetBox:
    if (Args[0].K != K::Box)
      return Fault("box");
    *Args[0].BoxCell = Args[1];
    // set-box! returns the stored value (cf. the (set-box!) rule, §3.5).
    return Give(Args[1]);
  case Prim::IsBox:
    return Give(Value::boolean(Args[0].K == K::Box));

  // --- Vectors ---
  case Prim::MakeVector: {
    if (Args[0].K != K::Num)
      return Fault("number");
    long long N = asInt(Args[0].Num);
    if (N < 0)
      return userError("make-vector: negative length");
    Value Fill = Args.size() > 1 ? Args[1] : Value::number(0);
    return Give(Value::vector(std::vector<Value>(N, Fill)));
  }
  case Prim::VectorLit:
    return Give(Value::vector(Args));
  case Prim::VectorRef: {
    if (Args[0].K != K::Vector)
      return Fault("vector");
    if (Args[1].K != K::Num)
      return Fault("number");
    long long I = asInt(Args[1].Num);
    if (I < 0 || I >= static_cast<long long>(Args[0].Vec->size()))
      return userError("vector-ref: index out of range");
    return Give((*Args[0].Vec)[I]);
  }
  case Prim::VectorSet: {
    if (Args[0].K != K::Vector)
      return Fault("vector");
    if (Args[1].K != K::Num)
      return Fault("number");
    long long I = asInt(Args[1].Num);
    if (I < 0 || I >= static_cast<long long>(Args[0].Vec->size()))
      return userError("vector-set!: index out of range");
    (*Args[0].Vec)[I] = Args[2];
    return Give(Value::voidValue());
  }
  case Prim::VectorLength:
    if (Args[0].K != K::Vector)
      return Fault("vector");
    return Give(Value::number(static_cast<double>(Args[0].Vec->size())));
  case Prim::IsVector:
    return Give(Value::boolean(Args[0].K == K::Vector));

  // --- Arithmetic ---
  case Prim::Add:
  case Prim::Mul:
  case Prim::Sub:
  case Prim::Div:
  case Prim::Min:
  case Prim::Max: {
    if (!WantNums())
      return Fault("number");
    switch (Op) {
    case Prim::Add:
      return Give(Value::number(
          FoldNums(0, [](double A, double B) { return A + B; }, true)));
    case Prim::Mul:
      return Give(Value::number(
          FoldNums(1, [](double A, double B) { return A * B; }, true)));
    case Prim::Sub:
      if (Args.size() == 1)
        return Give(Value::number(-Args[0].Num));
      return Give(Value::number(
          FoldNums(0, [](double A, double B) { return A - B; }, true)));
    case Prim::Div:
      for (size_t I = 1; I < Args.size(); ++I)
        if (Args[I].Num == 0)
          return userError("division by zero");
      return Give(Value::number(
          FoldNums(1, [](double A, double B) { return A / B; }, true)));
    case Prim::Min:
      return Give(Value::number(FoldNums(
          0, [](double A, double B) { return std::min(A, B); }, true)));
    case Prim::Max:
      return Give(Value::number(FoldNums(
          0, [](double A, double B) { return std::max(A, B); }, true)));
    default:
      break;
    }
    return userError("internal: unreachable arithmetic");
  }
  case Prim::Quotient:
  case Prim::Remainder:
  case Prim::Modulo: {
    if (!WantNums())
      return Fault("number");
    long long A = asInt(Args[0].Num), B = asInt(Args[1].Num);
    if (B == 0)
      return userError("division by zero");
    if (Op == Prim::Quotient)
      return Give(Value::number(static_cast<double>(A / B)));
    long long R = A % B;
    if (Op == Prim::Modulo && R != 0 && ((R < 0) != (B < 0)))
      R += B;
    return Give(Value::number(static_cast<double>(R)));
  }
  case Prim::Abs:
    if (!WantNums())
      return Fault("number");
    return Give(Value::number(std::fabs(Args[0].Num)));
  case Prim::Floor:
    if (!WantNums())
      return Fault("number");
    return Give(Value::number(std::floor(Args[0].Num)));
  case Prim::Add1:
    if (!WantNums())
      return Fault("number");
    return Give(Value::number(Args[0].Num + 1));
  case Prim::Sub1:
    if (!WantNums())
      return Fault("number");
    return Give(Value::number(Args[0].Num - 1));
  case Prim::IsZero:
    if (!WantNums())
      return Fault("number");
    return Give(Value::boolean(Args[0].Num == 0));
  case Prim::Lt:
  case Prim::Gt:
  case Prim::Le:
  case Prim::Ge:
  case Prim::NumEq: {
    if (!WantNums())
      return Fault("number");
    bool R = false;
    switch (Op) {
    case Prim::Lt:
      R = CompareChain([](double A, double B) { return A < B; });
      break;
    case Prim::Gt:
      R = CompareChain([](double A, double B) { return A > B; });
      break;
    case Prim::Le:
      R = CompareChain([](double A, double B) { return A <= B; });
      break;
    case Prim::Ge:
      R = CompareChain([](double A, double B) { return A >= B; });
      break;
    default:
      R = CompareChain([](double A, double B) { return A == B; });
      break;
    }
    return Give(Value::boolean(R));
  }
  case Prim::IsNumber:
    return Give(Value::boolean(Args[0].K == K::Num));
  case Prim::BitAnd:
  case Prim::BitOr:
  case Prim::BitXor: {
    if (!WantNums())
      return Fault("number");
    long long Acc = asInt(Args[0].Num);
    for (size_t I = 1; I < Args.size(); ++I) {
      long long B = asInt(Args[I].Num);
      Acc = Op == Prim::BitAnd ? (Acc & B)
            : Op == Prim::BitOr ? (Acc | B)
                                : (Acc ^ B);
    }
    return Give(Value::number(static_cast<double>(Acc)));
  }
  case Prim::ArithShift: {
    if (!WantNums())
      return Fault("number");
    long long A = asInt(Args[0].Num), S = asInt(Args[1].Num);
    long long R = S >= 0 ? (A << (S & 63)) : (A >> ((-S) & 63));
    return Give(Value::number(static_cast<double>(R)));
  }
  case Prim::Random: {
    if (!WantNums())
      return Fault("number");
    long long N = asInt(Args[0].Num);
    if (N <= 0)
      return userError("random: bound must be positive");
    // Deterministic xorshift so test runs are reproducible.
    RandomState ^= RandomState << 13;
    RandomState ^= RandomState >> 7;
    RandomState ^= RandomState << 17;
    return Give(Value::number(static_cast<double>(RandomState % N)));
  }

  // --- Predicates / equality ---
  case Prim::Not:
    return Give(Value::boolean(!Args[0].isTruthy()));
  case Prim::IsBoolean:
    return Give(Value::boolean(Args[0].K == K::Bool));
  case Prim::IsSymbol:
    return Give(Value::boolean(Args[0].K == K::Sym));
  case Prim::IsString:
    return Give(Value::boolean(Args[0].K == K::Str));
  case Prim::IsChar:
    return Give(Value::boolean(Args[0].K == K::Char));
  case Prim::IsProcedure:
    return Give(
        Value::boolean(Args[0].K == K::Closure || Args[0].K == K::Cont));
  case Prim::IsEof:
    return Give(Value::boolean(Args[0].K == K::Eof));
  case Prim::Eq:
    return Give(Value::boolean(valuesEq(Args[0], Args[1])));
  case Prim::Equal:
    return Give(Value::boolean(valuesEqual(Args[0], Args[1])));

  // --- Strings and characters ---
  case Prim::StringLength:
    if (Args[0].K != K::Str)
      return Fault("string");
    return Give(Value::number(static_cast<double>(Args[0].Str->size())));
  case Prim::StringAppend: {
    std::string R;
    for (const Value &A : Args) {
      if (A.K != K::Str)
        return Fault("string");
      R += *A.Str;
    }
    return Give(Value::string(std::move(R)));
  }
  case Prim::Substring: {
    if (Args[0].K != K::Str)
      return Fault("string");
    if (Args[1].K != K::Num || Args[2].K != K::Num)
      return Fault("number");
    long long From = asInt(Args[1].Num), To = asInt(Args[2].Num);
    long long Size = static_cast<long long>(Args[0].Str->size());
    if (From < 0 || To < From || To > Size)
      return userError("substring: index out of range");
    return Give(Value::string(Args[0].Str->substr(From, To - From)));
  }
  case Prim::StringRef: {
    if (Args[0].K != K::Str)
      return Fault("string");
    if (Args[1].K != K::Num)
      return Fault("number");
    long long I = asInt(Args[1].Num);
    if (I < 0 || I >= static_cast<long long>(Args[0].Str->size()))
      return userError("string-ref: index out of range");
    return Give(Value::character((*Args[0].Str)[I]));
  }
  case Prim::StringEqual:
    if (Args[0].K != K::Str || Args[1].K != K::Str)
      return Fault("string");
    return Give(Value::boolean(*Args[0].Str == *Args[1].Str));
  case Prim::NumberToString: {
    if (Args[0].K != K::Num)
      return Fault("number");
    return Give(Value::string(Value::number(Args[0].Num).str(P.Syms)));
  }
  case Prim::StringToNumber: {
    if (Args[0].K != K::Str)
      return Fault("string");
    const std::string &S = *Args[0].Str;
    char *End = nullptr;
    double D = std::strtod(S.c_str(), &End);
    if (End == S.c_str() || (End && *End != '\0'))
      return Give(Value::boolean(false));
    return Give(Value::number(D));
  }
  case Prim::SymbolToString: {
    if (Args[0].K != K::Sym)
      return Fault("symbol");
    return Give(Value::string(P.Syms.name(Args[0].Sym)));
  }
  case Prim::StringToSymbol: {
    if (Args[0].K != K::Str)
      return Fault("string");
    // Interning into a const SymbolTable would break sharing; the machine
    // holds a non-const program reference only through Syms access, so we
    // cast deliberately here (the symbol table is append-only).
    return Give(Value::symbol(
        const_cast<SymbolTable &>(P.Syms).intern(*Args[0].Str)));
  }
  case Prim::CharToInteger:
    if (Args[0].K != K::Char)
      return Fault("char");
    return Give(
        Value::number(static_cast<double>(static_cast<unsigned char>(
            Args[0].Ch))));
  case Prim::IntegerToChar:
    if (Args[0].K != K::Num)
      return Fault("number");
    return Give(Value::character(static_cast<char>(asInt(Args[0].Num))));

  // --- Simulated I/O ---
  case Prim::Display:
    if (Args[0].K == K::Str)
      Output += *Args[0].Str;
    else
      Output += Args[0].str(P.Syms);
    return Give(Value::voidValue());
  case Prim::Newline:
    Output += '\n';
    return Give(Value::voidValue());
  case Prim::ReadLine: {
    if (InputPos >= Input.size())
      return Give(Value::eof());
    size_t End = Input.find('\n', InputPos);
    std::string Line = End == std::string::npos
                           ? Input.substr(InputPos)
                           : Input.substr(InputPos, End - InputPos);
    InputPos = End == std::string::npos ? Input.size() : End + 1;
    return Give(Value::string(std::move(Line)));
  }
  case Prim::ReadChar: {
    if (InputPos >= Input.size())
      return Give(Value::eof());
    return Give(Value::character(Input[InputPos++]));
  }
  case Prim::PeekChar: {
    if (InputPos >= Input.size())
      return Give(Value::eof());
    return Give(Value::character(Input[InputPos]));
  }

  // --- Errors ---
  case Prim::ErrorPrim: {
    std::string Message;
    for (const Value &A : Args) {
      if (!Message.empty())
        Message += ' ';
      Message += A.K == K::Str ? *A.Str : A.str(P.Syms);
    }
    return userError(Message);
  }

  case Prim::NumPrims:
    break;
  }
  return userError("internal: unimplemented primitive");
}
