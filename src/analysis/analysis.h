//===-- analysis/analysis.h - Constraint derivation ------------*- C++ -*-===//
///
/// \file
/// The specification phase of set-based analysis: syntax-directed
/// constraint derivation (fig. 2.2 and the extension rules of figs.
/// 3.2–3.7), with let-polymorphism via constraint schemas (rules let/inst)
/// and the "smart" simplify-before-copy polymorphic variants of §7.4.
///
/// Every expression is a labeled expression: ExprVar maps each ExprId to
/// its set variable, and sba(P)(l) is that variable's constant set in the
/// closed system (Theorem 2.6.5).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_ANALYSIS_ANALYSIS_H
#define SPIDEY_ANALYSIS_ANALYSIS_H

#include "constraints/constraint_system.h"
#include "lang/ast.h"
#include "support/arena.h"

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace spidey {

/// One value that a check site inspects, with the constants it accepts.
struct CheckScrutinee {
  SetVar V = NoSetVar;
  KindMask Accept = AnyKindMask;
  uint32_t Arity = 0;      ///< required FnTag arity when CheckArity
  bool CheckArity = false; ///< application sites check arity (App. E.3)
  uint8_t ArgIndex = 0;    ///< which operand this is (for messages)
  /// For structure accessors (App. D.5.4): the exact struct tag that is
  /// acceptable; other StructTag constants are inappropriate.
  Constant RequiredTag = 0;
  bool HasRequiredTag = false;
};

/// A program operation that may raise a run-time error (§4.3): an
/// application, a checked primitive, or a unit/class operation.
struct CheckSite {
  ExprId Site = NoExpr;
  std::string What; ///< e.g. "car", "application", "invoke"
  std::vector<CheckScrutinee> Scrutinees;
};

/// Side tables produced by derivation.
struct AnalysisMaps {
  std::vector<SetVar> ExprVar; ///< ExprId -> label set variable
  std::vector<SetVar> VarVar;  ///< VarId -> set variable
  std::vector<CheckSite> Checks;
  std::unordered_set<ExprId> CheckedSites; ///< dedup across derivations
  std::unordered_map<Constant, ExprId> TagSite;  ///< tag -> defining expr
  std::unordered_map<ExprId, Constant> SiteTags; ///< defining expr -> tag
  std::vector<Constant> StructTagOf; ///< StructId -> tag constant

  SetVar exprVar(ExprId E) const { return ExprVar[E]; }
  SetVar varVar(VarId V) const { return VarVar[V]; }
};

/// Polymorphism handling for let-bound values and (unassigned) top-level
/// define-bound values (§7.2/§7.4).
enum class PolyMode : uint8_t {
  Mono,  ///< context-insensitive
  Copy,  ///< duplicate the raw constraint system per reference
  Smart, ///< simplify the system once, duplicate the simplified system
};

/// Hook that simplifies a schema's system with respect to its external
/// variables; wired to a concrete §6.4 algorithm by the caller. Must
/// return a system over the same context.
using SchemaSimplifier = std::function<ConstraintSystem(
    const ConstraintSystem &, const std::vector<SetVar> &)>;

struct AnalysisOptions {
  PolyMode Poly = PolyMode::Mono;
  /// Narrow immutable variables through predicate tests, e.g. in
  /// (if (pair? x) M N) references to x in M see only pair values. This is
  /// MrSpidey's primitive-filter behavior (App. E.5); the formal system of
  /// ch. 2 corresponds to IfSplitting = false.
  bool IfSplitting = true;
  /// Treat unassigned top-level defines of syntactic values polymorphically
  /// (only meaningful when Poly != Mono).
  bool PolyTopLevel = true;
  /// Required when Poly == Smart.
  SchemaSimplifier Simplify;
  /// Whitespace-free token naming the Simplify hook for cache
  /// fingerprinting (constraint files derived under different schema
  /// simplifiers are not interchangeable). polyAnalysisOptions sets it to
  /// the algorithm name; callers installing a custom hook should pick a
  /// stable tag of their own.
  std::string SimplifyTag;
  /// Keep check-site scrutinees and labels of schema bodies observable
  /// through simplification (the static debugger needs them). Disable to
  /// reproduce the pure timing experiments of fig. 7.6, where the smart
  /// analyses simplify each definition down to its data-flow interface.
  bool PreciseSchemaChecks = true;
  /// Instantiate schemas by replaying a compiled flat image into a
  /// bulk-reserved variable range (the derive fast path, DESIGN.md §10).
  /// Off = the original per-constraint substitution walk, retained as a
  /// differential oracle; both paths build byte-identical systems, so the
  /// flag is deliberately absent from cache fingerprints.
  bool BulkClone = true;
};

/// Statistics of one derivation run.
struct DeriveStats {
  uint64_t SchemasCreated = 0;
  uint64_t Instantiations = 0;
  uint64_t InstantiatedConstraints = 0;
  /// Schemas whose compiled image was already interned (a structurally
  /// identical definition compiled it first).
  uint64_t SchemaInternHits = 0;
  /// Constraint records replayed through the bulk-clone fast path
  /// (including per-schema label/check feedback edges).
  uint64_t BulkClonedConstraints = 0;

  void merge(const DeriveStats &O) {
    SchemasCreated += O.SchemasCreated;
    Instantiations += O.Instantiations;
    InstantiatedConstraints += O.InstantiatedConstraints;
    SchemaInternHits += O.SchemaInternHits;
    BulkClonedConstraints += O.BulkClonedConstraints;
  }
};

/// Derives constraints for programs. One Deriver may process several
/// components (sharing its schema table); all constraints for a component
/// go into the caller-supplied system.
class Deriver {
public:
  Deriver(const Program &P, ConstraintContext &Ctx, AnalysisMaps &Maps,
          AnalysisOptions Opts);

  /// Derives one component's top-level forms into \p S (the componential
  /// step-1 building block, §7.1).
  void deriveComponent(uint32_t CompIdx, ConstraintSystem &S);

  /// Derives the whole program into \p S.
  void deriveAll(ConstraintSystem &S);

  /// Derives a single expression; returns its set variable. Exposed for
  /// tests.
  SetVar deriveExpr(ExprId E, ConstraintSystem &S);

  const DeriveStats &stats() const { return Stats; }

private:
  /// A schema compiled to a flat, replayable image: one BulkConstraint
  /// record per bound, in exactly the order the substitution walk of the
  /// classic instantiate() visits them, with quantified variables
  /// renumbered to dense indices 0..NumQuantified-1 (QuantifiedFlag
  /// encoding). Images are interned: structurally identical definitions
  /// share one image. Records live in the Deriver's arena.
  struct SchemaImage {
    ArenaSpan<BulkConstraint> Records;
    uint32_t NumQuantified = 0;
    SetVar EncodedResult = NoSetVar;
  };

  struct Schema {
    SetVar Result = NoSetVar;
    std::unique_ptr<ConstraintSystem> System;
    std::vector<SetVar> Quantified;
    /// Scrutinee variables of check sites inside the schema body; each
    /// instantiation links its copy back so that the (shared) check sees
    /// the union over all instances.
    std::vector<SetVar> CheckVars;
    /// Label variables (expression and program-variable variables) used in
    /// the schema body. The paper's (let) rule does not generalize labels;
    /// since we conflate each expression's result variable with its label,
    /// instantiation adds ψ(l) ≤ l sink edges instead, so sba(P)(l) is the
    /// union over all instances (soundness at labels, Thm 2.6.4).
    std::vector<SetVar> LabelVars;
    /// Compiled image (BulkClone only; shared via interning). Once set,
    /// System/Quantified/CheckVars/LabelVars are released — the image and
    /// Feedback carry everything instantiation needs.
    const SchemaImage *Image = nullptr;
    /// Per-schema ungeneralized feedback edges (labels and check
    /// scrutinees) as VarUp records: instance copy ≤ shared variable.
    /// Kept off the interned image because the shared variables differ
    /// between textually identical definitions.
    ArenaSpan<BulkConstraint> Feedback;
  };

  SetVar varOfExpr(ExprId E);
  SetVar varOfVar(VarId V);
  Constant fnTag(ExprId E, uint32_t Arity, Symbol Label);
  Constant siteTag(ConstKind K, ExprId E, Symbol Label = InvalidSymbol);
  Constant structTag(uint32_t StructId);
  SetVar deriveStructApp(ExprId E, ConstraintSystem &S);

  void addResultMask(ConstraintSystem &S, SetVar A, KindMask Mask);
  void splitTest(ExprId Test, VarId &OutVar, KindMask &ThenMask) const;
  void addPrimChecks(ExprId E, const SetVar *Args, size_t NumArgs);
  SetVar derivePrim(ExprId E, ConstraintSystem &S);
  SetVar deriveVarRef(ExprId E, ConstraintSystem &S);

  /// Derives a polymorphic binding's schema; returns nullopt if the
  /// binding does not qualify (not a syntactic value, assigned, poly
  /// disabled). The caller moves the result into the schema table — it is
  /// deliberately NOT registered during construction, so recursive
  /// references inside the body resolve monomorphically (the recursion
  /// knot), exactly as before.
  std::optional<Schema> maybeMakeSchema(VarId Var, ExprId Init,
                                        ConstraintSystem &MainS);

  /// Compiles a freshly built schema into its flat image (interned) and
  /// per-schema feedback records, then releases the creation-only state.
  void compileSchema(Schema &Sch, SetVar Watermark);
  /// Copies a schema's system into \p S with fresh quantified variables;
  /// returns the instantiated result variable.
  SetVar instantiate(const Schema &Sch, ConstraintSystem &S);

  /// Collects variables of \p S that were allocated at or after
  /// \p Watermark (the generalizable ones).
  std::vector<SetVar> quantifiedSince(const ConstraintSystem &S,
                                      SetVar Watermark) const;

  bool isSyntacticValue(ExprId E) const;
  bool isAssigned(VarId V) const { return AssignedVars.count(V) != 0; }

  const Program &P;
  ConstraintContext &Ctx;
  AnalysisMaps &Maps;
  AnalysisOptions Opts;
  DeriveStats Stats;

  std::unordered_map<VarId, Schema> Schemas;
  std::unordered_map<VarId, uint32_t> SchemaComponent;
  std::unordered_set<VarId> AssignedVars;
  /// Backing store for compiled schema records, feedback edges and other
  /// derivation-lifetime POD (see DESIGN.md §10 for the lifetime rules).
  BumpArena Arena;
  /// Interned images, keyed by structural hash (bucket holds candidates
  /// to compare on collision). Deque: pointers must stay stable.
  std::deque<SchemaImage> Images;
  std::unordered_map<uint64_t, std::vector<SchemaImage *>> ImageIntern;
  /// Scratch reused across compileSchema calls.
  std::vector<BulkConstraint> RecScratch, FeedScratch;
  std::vector<uint32_t> QIdxScratch;
  /// Argument-collection stack for derivePrim/deriveStructApp: children
  /// push below the caller's mark, so one vector serves the whole
  /// recursive walk with zero per-node allocations.
  std::vector<SetVar> ArgScratch;
  uint32_t CurrentComponent = 0;
  /// Non-null while deriving a schema body; collects check scrutinees.
  Schema *ActiveSchema = nullptr;
  /// Predicate refinements in scope: variable -> stack of narrowed set
  /// variables (innermost last).
  std::unordered_map<VarId, std::vector<SetVar>> Refined;
};

/// A complete whole-program analysis: context, closed system, maps.
struct Analysis {
  std::unique_ptr<ConstraintContext> Ctx;
  std::unique_ptr<ConstraintSystem> System;
  AnalysisMaps Maps;
  const Program *Prog = nullptr;
  DeriveStats Stats;

  /// sba(P)(l): the abstract constants the analysis predicts for label l.
  std::vector<Constant> sba(ExprId L) const {
    return System->constantsOf(Maps.exprVar(L));
  }
};

/// Runs standard (whole-program) set-based analysis.
Analysis analyzeProgram(const Program &P, const AnalysisOptions &Opts = {});

} // namespace spidey

#endif // SPIDEY_ANALYSIS_ANALYSIS_H
