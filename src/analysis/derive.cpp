//===-- analysis/derive.cpp - Constraint derivation rules -----*- C++ -*-===//

#include "analysis/analysis.h"

#include <cassert>

using namespace spidey;

namespace {

constexpr KindMask FnLikeMask =
    kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);

} // namespace

Deriver::Deriver(const Program &P, ConstraintContext &Ctx, AnalysisMaps &Maps,
                 AnalysisOptions Opts)
    : P(P), Ctx(Ctx), Maps(Maps), Opts(std::move(Opts)) {
  Maps.ExprVar.resize(P.numExprs(), NoSetVar);
  Maps.VarVar.resize(P.numVars(), NoSetVar);
  // Precompute which variables are targets of set! anywhere; those may not
  // be treated polymorphically.
  for (const Expr &E : P.Exprs)
    if (E.K == ExprKind::Set)
      AssignedVars.insert(E.Var);
  // Pre-allocate all top-level variables so forward references inside
  // schema bodies never allocate them above a schema's watermark (they
  // must stay free, not generalized).
  for (VarId V = 0; V < P.numVars(); ++V)
    if (P.var(V).TopLevel)
      varOfVar(V);
}

SetVar Deriver::varOfExpr(ExprId E) {
  SetVar &V = Maps.ExprVar[E];
  if (V == NoSetVar)
    V = Ctx.freshVar();
  if (ActiveSchema)
    ActiveSchema->LabelVars.push_back(V);
  return V;
}

SetVar Deriver::varOfVar(VarId V) {
  SetVar &SV = Maps.VarVar[V];
  if (SV == NoSetVar)
    SV = Ctx.freshVar();
  if (ActiveSchema)
    ActiveSchema->LabelVars.push_back(SV);
  return SV;
}

Constant Deriver::siteTag(ConstKind K, ExprId E, Symbol Label) {
  auto It = Maps.SiteTags.find(E);
  if (It != Maps.SiteTags.end())
    return It->second;
  uint32_t Arity = 0;
  if (K == ConstKind::FnTag)
    Arity = static_cast<uint32_t>(P.expr(E).Params.size());
  Constant Tag = Ctx.Constants.makeTag(K, Arity, P.expr(E).Loc, Label);
  Maps.SiteTags.emplace(E, Tag);
  Maps.TagSite.emplace(Tag, E);
  return Tag;
}

void Deriver::addResultMask(ConstraintSystem &S, SetVar A, KindMask Mask) {
  for (unsigned K = 0; K <= static_cast<unsigned>(ConstKind::VecTag); ++K)
    if (Mask & kindBit(static_cast<ConstKind>(K)))
      S.addConstLower(A, Ctx.Constants.basic(static_cast<ConstKind>(K)));
}

void Deriver::addPrimChecks(ExprId E, const SetVar *Args, size_t NumArgs) {
  const Expr &Node = P.expr(E);
  Prim Op = Node.PrimOp;
  if (!primIsChecked(Op))
    return;
  if (!Maps.CheckedSites.insert(E).second) {
    // Re-derivation of a component: the site is already recorded.
    if (ActiveSchema)
      for (unsigned I = 0; I < NumArgs; ++I)
        if (primArgMask(Op, I) != AnyKindMask)
          ActiveSchema->CheckVars.push_back(Args[I]);
    return;
  }
  CheckSite Check;
  Check.Site = E;
  Check.What = primSpec(Op).Name;
  for (unsigned I = 0; I < NumArgs; ++I) {
    KindMask Mask = primArgMask(Op, I);
    if (Mask == AnyKindMask)
      continue;
    CheckScrutinee Scr;
    Scr.V = Args[I];
    Scr.Accept = Mask;
    Scr.ArgIndex = static_cast<uint8_t>(I);
    Check.Scrutinees.push_back(Scr);
    if (ActiveSchema)
      ActiveSchema->CheckVars.push_back(Args[I]);
  }
  Maps.Checks.push_back(std::move(Check));
}

/// Records a non-primitive check site with a single scrutinee.
static void recordCheck(AnalysisMaps &Maps, std::vector<SetVar> *SchemaVars,
                        ExprId Site, std::string What, CheckScrutinee Scr) {
  if (SchemaVars)
    SchemaVars->push_back(Scr.V);
  if (!Maps.CheckedSites.insert(Site).second)
    return;
  CheckSite Check;
  Check.Site = Site;
  Check.What = std::move(What);
  Check.Scrutinees.push_back(Scr);
  Maps.Checks.push_back(std::move(Check));
}

/// Recognizes predicate tests that support narrowing: (pred x) for an
/// immutable variable x, and (not (pred x)) with the branches swapped.
void Deriver::splitTest(ExprId Test, VarId &OutVar,
                        KindMask &ThenMask) const {
  const Expr &T = P.expr(Test);
  if (T.K == ExprKind::StructApp &&
      static_cast<StructOpKind>(T.StructOp) == StructOpKind::Pred) {
    // (name? x): narrow to the structure kind (identity is re-checked at
    // the accessors themselves).
    const Expr &Arg = P.expr(T.Kids[0]);
    if (Arg.K == ExprKind::Var && !P.var(Arg.Var).Assignable) {
      OutVar = Arg.Var;
      ThenMask = kindBit(ConstKind::StructTag);
    }
    return;
  }
  if (T.K != ExprKind::PrimApp || T.Kids.size() != 1)
    return;
  if (T.PrimOp == Prim::Not) {
    VarId Inner = NoVar;
    KindMask InnerMask = 0;
    splitTest(T.Kids[0], Inner, InnerMask);
    if (Inner != NoVar) {
      OutVar = Inner;
      ThenMask = ValidKindMask & ~InnerMask;
    }
    return;
  }
  KindMask Mask;
  switch (T.PrimOp) {
  case Prim::IsNumber:
    Mask = kindBit(ConstKind::Num);
    break;
  case Prim::IsPair:
    Mask = kindBit(ConstKind::Pair);
    break;
  case Prim::IsNull:
    Mask = kindBit(ConstKind::Nil);
    break;
  case Prim::IsString:
    Mask = kindBit(ConstKind::Str);
    break;
  case Prim::IsSymbol:
    Mask = kindBit(ConstKind::Sym);
    break;
  case Prim::IsBoolean:
    Mask = kindBit(ConstKind::True) | kindBit(ConstKind::False);
    break;
  case Prim::IsChar:
    Mask = kindBit(ConstKind::Char);
    break;
  case Prim::IsProcedure:
    Mask = kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);
    break;
  case Prim::IsEof:
    Mask = kindBit(ConstKind::Eof);
    break;
  case Prim::IsBox:
    Mask = kindBit(ConstKind::BoxTag);
    break;
  case Prim::IsVector:
    Mask = kindBit(ConstKind::VecTag);
    break;
  default:
    return;
  }
  const Expr &Arg = P.expr(T.Kids[0]);
  if (Arg.K != ExprKind::Var || P.var(Arg.Var).Assignable)
    return;
  OutVar = Arg.Var;
  ThenMask = Mask;
}

Constant Deriver::structTag(uint32_t StructId) {
  if (Maps.StructTagOf.size() <= StructId)
    Maps.StructTagOf.resize(P.Structs.size(), 0);
  Constant &Tag = Maps.StructTagOf[StructId];
  if (Tag == 0) {
    const StructDecl &D = P.Structs[StructId];
    Tag = Ctx.Constants.makeTag(ConstKind::StructTag, 0, D.Loc, D.Name);
  }
  return Tag;
}

/// Derivation for declared-constructor operations (App. D.5.4): the
/// structure behaves like a record of split boxes, one per field, under
/// its own tag and field selectors.
SetVar Deriver::deriveStructApp(ExprId E, ConstraintSystem &S) {
  const Expr &Node = P.expr(E);
  SetVar A = varOfExpr(E);
  const StructDecl &D = P.Structs[Node.StructId];
  // Collect operand variables on the shared scratch stack (children may
  // push and pop below; the data pointer is taken only once they return).
  size_t Mark = ArgScratch.size();
  for (ExprId Kid : Node.Kids)
    ArgScratch.push_back(deriveExpr(Kid, S));
  const SetVar *Args = ArgScratch.data() + Mark;
  auto FieldSel = [&](uint32_t F, bool Plus) {
    std::string Name = std::string(Plus ? "sfld+" : "sfld-") +
                       P.Syms.name(D.Name) + "." +
                       P.Syms.name(D.Fields[F]);
    return Ctx.Selectors.intern(
        Name, Plus ? Polarity::Monotone : Polarity::AntiMonotone,
        kindBit(ConstKind::StructTag));
  };
  std::vector<SetVar> *SchemaVars =
      ActiveSchema ? &ActiveSchema->CheckVars : nullptr;
  auto StructCheck = [&](const char *What) {
    CheckScrutinee Scr;
    Scr.V = Args[0];
    Scr.Accept = kindBit(ConstKind::StructTag);
    Scr.RequiredTag = structTag(Node.StructId);
    Scr.HasRequiredTag = true;
    recordCheck(Maps, SchemaVars, E, What, Scr);
  };
  switch (static_cast<StructOpKind>(Node.StructOp)) {
  case StructOpKind::Make: {
    S.addConstLower(A, structTag(Node.StructId));
    for (uint32_t F = 0; F < D.Fields.size(); ++F) {
      SetVar Delta = Ctx.freshVar();
      S.addVarUpper(Args[F], Delta);
      S.addSelLower(A, FieldSel(F, false), Delta);
      S.addSelLower(A, FieldSel(F, true), Delta);
    }
    break;
  }
  case StructOpKind::Pred:
    addResultMask(S, A,
                  kindBit(ConstKind::True) | kindBit(ConstKind::False));
    break;
  case StructOpKind::Get:
    S.addSelUpper(Args[0], FieldSel(Node.FieldIndex, true), A);
    StructCheck((P.Syms.name(D.Name) + "-" +
                 P.Syms.name(D.Fields[Node.FieldIndex]))
                    .c_str());
    break;
  case StructOpKind::Set:
    S.addSelUpper(Args[0], FieldSel(Node.FieldIndex, false), Args[1]);
    S.addVarUpper(Args[1], A);
    StructCheck(("set-" + P.Syms.name(D.Name) + "-" +
                 P.Syms.name(D.Fields[Node.FieldIndex]) + "!")
                    .c_str());
    break;
  }
  ArgScratch.resize(Mark);
  return A;
}

bool Deriver::isSyntacticValue(ExprId E) const {
  switch (P.expr(E).K) {
  case ExprKind::Lambda:
  case ExprKind::Num:
  case ExprKind::Bool:
  case ExprKind::Str:
  case ExprKind::Char:
  case ExprKind::Nil:
  case ExprKind::Quote:
  case ExprKind::Void:
    return true;
  default:
    return false;
  }
}

std::vector<SetVar>
Deriver::quantifiedSince(const ConstraintSystem &S, SetVar Watermark) const {
  std::vector<SetVar> Result;
  for (SetVar V : S.variables())
    if (V >= Watermark)
      Result.push_back(V);
  return Result;
}

std::optional<Deriver::Schema>
Deriver::maybeMakeSchema(VarId Var, ExprId Init, ConstraintSystem &MainS) {
  (void)MainS;
  if (Opts.Poly == PolyMode::Mono)
    return std::nullopt;
  if (P.var(Var).TopLevel && !Opts.PolyTopLevel)
    return std::nullopt;
  if (isAssigned(Var))
    return std::nullopt;
  if (!isSyntacticValue(Init))
    return std::nullopt;

  SetVar Watermark = Ctx.numVars();
  std::optional<Schema> Sch(std::in_place);
  Sch->System = std::make_unique<ConstraintSystem>(Ctx);

  Schema *SavedActive = ActiveSchema;
  ActiveSchema = &*Sch;
  SetVar Result = deriveExpr(Init, *Sch->System);
  ActiveSchema = SavedActive;
  // A schema nested in another schema's body: its labels and check
  // scrutinees are quantified in the *enclosing* schema too, so the
  // enclosing instantiation must also add their sink edges — otherwise
  // copies made by the outer instantiation never feed the shared label.
  if (SavedActive) {
    SavedActive->LabelVars.insert(SavedActive->LabelVars.end(),
                                  Sch->LabelVars.begin(),
                                  Sch->LabelVars.end());
    SavedActive->CheckVars.insert(SavedActive->CheckVars.end(),
                                  Sch->CheckVars.begin(),
                                  Sch->CheckVars.end());
  }

  // Recursion knot for top-level defines: recursive references inside the
  // body go through the (monomorphic) variable; every instance also feeds
  // it so the recursive data flow is complete.
  if (P.var(Var).TopLevel)
    Sch->System->addVarUpper(Result, varOfVar(Var));
  Sch->Result = Result;

  if (Opts.Poly == PolyMode::Smart && Opts.Simplify) {
    std::vector<SetVar> Externals;
    Externals.push_back(Result);
    for (SetVar V : Sch->System->variables())
      if (V < Watermark)
        Externals.push_back(V);
    if (Opts.PreciseSchemaChecks)
      for (SetVar V : Sch->CheckVars)
        Externals.push_back(V);
    ConstraintSystem Simplified = Opts.Simplify(*Sch->System, Externals);
    *Sch->System = std::move(Simplified);
  }
  Sch->Quantified = quantifiedSince(*Sch->System, Watermark);
  ++Stats.SchemasCreated;
  if (Opts.BulkClone)
    compileSchema(*Sch, Watermark);
  return Sch;
}

void Deriver::compileSchema(Schema &Sch, SetVar Watermark) {
  // Dense renumbering of the quantified variables: Quantified is sorted
  // ascending (it comes from variables()), so position-in-list order is
  // exactly the order the classic instantiate() hands out fresh variables
  // — Base + index reproduces its numbering bit for bit.
  const std::vector<SetVar> &Q = Sch.Quantified;
  constexpr uint32_t NoIdx = ~0u;
  size_t Window = Q.empty() ? 0 : size_t(Q.back()) - Watermark + 1;
  std::vector<uint32_t> &Lookup = QIdxScratch;
  Lookup.assign(Window, NoIdx);
  for (uint32_t I = 0; I < Q.size(); ++I)
    Lookup[Q[I] - Watermark] = I;
  auto Encode = [&](SetVar V) -> SetVar {
    if (V >= Watermark && V - Watermark < Window) {
      uint32_t I = Lookup[V - Watermark];
      if (I != NoIdx)
        return BulkConstraint::QuantifiedFlag | I;
    }
    assert(!(V & BulkConstraint::QuantifiedFlag) &&
           "free set variable collides with the quantified-index tag");
    return V;
  };

  // Flatten the schema system into records in exactly the iteration
  // order of the substitution walk: variables ascending, lower bounds in
  // list order, then upper bounds in list order.
  using BK = BulkConstraint::Kind;
  std::vector<BulkConstraint> &Recs = RecScratch;
  Recs.clear();
  Recs.reserve(Sch.System->size());
  for (SetVar A : Sch.System->variables()) {
    SetVar EA = Encode(A);
    for (const LowerBound &L : Sch.System->lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB)
        Recs.push_back({BK::ConstLow, EA, L.C, 0});
      else
        Recs.push_back({BK::SelLow, EA, Encode(L.Other), L.Sel});
    }
    for (const UpperBound &U : Sch.System->upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB)
        Recs.push_back({BK::VarUp, EA, Encode(U.Other), 0});
      else if (U.K == UpperBound::Kind::FilterUB)
        Recs.push_back({BK::FilterUp, EA, Encode(U.Other), U.Sel});
      else
        Recs.push_back({BK::SelUp, EA, Encode(U.Other), U.Sel});
    }
  }

  SetVar EncodedResult = Encode(Sch.Result);
  uint32_t NumQ = static_cast<uint32_t>(Q.size());

  // Intern: structurally identical definitions (same records under the
  // dense renumbering, same arity, same result) share one image.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t X) { H = (H ^ X) * 1099511628211ull; };
  Mix(NumQ);
  Mix(EncodedResult);
  for (const BulkConstraint &R : Recs) {
    Mix(static_cast<uint32_t>(R.K));
    Mix(R.A);
    Mix(R.B);
    Mix(R.Sel);
  }
  const SchemaImage *Img = nullptr;
  for (SchemaImage *Cand : ImageIntern[H]) {
    if (Cand->NumQuantified != NumQ || Cand->EncodedResult != EncodedResult ||
        Cand->Records.size() != Recs.size())
      continue;
    bool Same = true;
    for (uint32_t I = 0; I < Recs.size() && Same; ++I) {
      const BulkConstraint &X = Cand->Records[I], &Y = Recs[I];
      Same = X.K == Y.K && X.A == Y.A && X.B == Y.B && X.Sel == Y.Sel;
    }
    if (Same) {
      Img = Cand;
      ++Stats.SchemaInternHits;
      break;
    }
  }
  if (!Img) {
    Images.push_back(SchemaImage{
        {Arena.copy(Recs), static_cast<uint32_t>(Recs.size())},
        NumQ,
        EncodedResult});
    ImageIntern[H].push_back(&Images.back());
    Img = &Images.back();
  }
  Sch.Image = Img;

  // Per-schema feedback edges (ψ(l) ≤ l): only quantified labels and
  // scrutinees get an edge — for free ones the copy IS the shared
  // variable, exactly the old MV != V test. The shared side stays a raw
  // (untagged) variable, so it survives the remap unchanged.
  std::vector<BulkConstraint> &Feed = FeedScratch;
  Feed.clear();
  for (SetVar V : Sch.LabelVars)
    if (SetVar EV = Encode(V); EV != V)
      Feed.push_back({BK::VarUp, EV, V, 0});
  for (SetVar V : Sch.CheckVars)
    if (SetVar EV = Encode(V); EV != V)
      Feed.push_back({BK::VarUp, EV, V, 0});
  Sch.Feedback = {Arena.copy(Feed), static_cast<uint32_t>(Feed.size())};

  // The image and feedback records now carry everything instantiation
  // needs; drop the creation-only state (per-schema system, vectors).
  Sch.System.reset();
  Sch.Quantified = {};
  Sch.CheckVars = {};
  Sch.LabelVars = {};
}

SetVar Deriver::instantiate(const Schema &Sch, ConstraintSystem &S) {
  if (Sch.Image) {
    // Fast path: replay the compiled image into a bulk-reserved variable
    // block. Identical call sequence to the walk below, so the built
    // system is byte-identical.
    const SchemaImage &Img = *Sch.Image;
    SetVar Base = Ctx.freshVarRange(Img.NumQuantified);
    S.addBulk(Img.Records.begin(), Img.Records.size(), Base);
    S.addBulk(Sch.Feedback.begin(), Sch.Feedback.size(), Base);
    ++Stats.Instantiations;
    Stats.InstantiatedConstraints += Img.Records.size();
    Stats.BulkClonedConstraints += Img.Records.size() + Sch.Feedback.size();
    return BulkConstraint::decode(Img.EncodedResult, Base);
  }
  std::unordered_map<SetVar, SetVar> Subst;
  Subst.reserve(Sch.Quantified.size());
  for (SetVar Q : Sch.Quantified)
    Subst.emplace(Q, Ctx.freshVar());
  auto M = [&](SetVar V) {
    auto It = Subst.find(V);
    return It == Subst.end() ? V : It->second;
  };
  for (SetVar A : Sch.System->variables()) {
    SetVar MA = M(A);
    for (const LowerBound &L : Sch.System->lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB)
        S.addConstLower(MA, L.C);
      else
        S.addSelLower(MA, L.Sel, M(L.Other));
    }
    for (const UpperBound &U : Sch.System->upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB)
        S.addVarUpper(MA, M(U.Other));
      else if (U.K == UpperBound::Kind::FilterUB)
        S.addFilterUpper(MA, U.Sel, M(U.Other));
      else
        S.addSelUpper(MA, U.Sel, M(U.Other));
    }
  }
  // Feed each label's and check scrutinee's copy back into the shared
  // variable (the paper's ungeneralized labels).
  for (SetVar V : Sch.LabelVars)
    if (SetVar MV = M(V); MV != V)
      S.addVarUpper(MV, V);
  for (SetVar V : Sch.CheckVars)
    if (SetVar MV = M(V); MV != V)
      S.addVarUpper(MV, V);
  ++Stats.Instantiations;
  Stats.InstantiatedConstraints += Sch.System->size();
  return M(Sch.Result);
}

void Deriver::deriveComponent(uint32_t CompIdx, ConstraintSystem &S) {
  CurrentComponent = CompIdx;
  const Component &C = P.Components[CompIdx];
  for (const TopForm &F : C.Forms) {
    if (F.DefVar == NoVar) {
      deriveExpr(F.Body, S);
      continue;
    }
    if (auto Sch = maybeMakeSchema(F.DefVar, F.Body, S)) {
      Schema &Slot = Schemas[F.DefVar] = std::move(*Sch);
      SchemaComponent[F.DefVar] = CompIdx;
      // One default instance so monomorphic fallbacks, re-exports and the
      // recursion knot have a concrete inhabitant.
      SetVar Inst = instantiate(Slot, S);
      S.addVarUpper(Inst, varOfVar(F.DefVar));
      continue;
    }
    SetVar B = deriveExpr(F.Body, S);
    S.addVarUpper(B, varOfVar(F.DefVar));
  }
}

void Deriver::deriveAll(ConstraintSystem &S) {
  for (uint32_t I = 0; I < P.Components.size(); ++I)
    deriveComponent(I, S);
}

SetVar Deriver::deriveVarRef(ExprId E, ConstraintSystem &S) {
  const Expr &Node = P.expr(E);
  SetVar A = varOfExpr(E);
  // Predicate-narrowed variables read through their refinement.
  if (auto RIt = Refined.find(Node.Var);
      RIt != Refined.end() && !RIt->second.empty()) {
    S.addVarUpper(RIt->second.back(), A);
    return A;
  }
  auto It = Schemas.find(Node.Var);
  bool UseSchema = It != Schemas.end();
  if (UseSchema && P.var(Node.Var).TopLevel &&
      SchemaComponent[Node.Var] != CurrentComponent) {
    // Cross-component references are monomorphic so that a component's
    // constraint file does not embed copies of other components (§7.1).
    UseSchema = false;
  }
  if (UseSchema) {
    SetVar Inst = instantiate(It->second, S);
    S.addVarUpper(Inst, A);
  } else {
    S.addVarUpper(varOfVar(Node.Var), A);
  }
  return A;
}

SetVar Deriver::derivePrim(ExprId E, ConstraintSystem &S) {
  const Expr &Node = P.expr(E);
  SetVar A = varOfExpr(E);
  size_t Mark = ArgScratch.size();
  for (ExprId Kid : Node.Kids)
    ArgScratch.push_back(deriveExpr(Kid, S));
  const SetVar *Args = ArgScratch.data() + Mark;
  size_t NumArgs = ArgScratch.size() - Mark;
  addPrimChecks(E, Args, NumArgs);

  const PrimSpec &Spec = primSpec(Node.PrimOp);
  switch (Spec.Shape) {
  case PrimShape::Generic:
    addResultMask(S, A, Spec.ResultMask);
    break;
  case PrimShape::ConsShape:
    // (cons M1 M2): pair ≤ α, α1 ≤ car(α), α2 ≤ cdr(α)  (fig. 3.2)
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Pair));
    S.addSelLower(A, Ctx.Car, Args[0]);
    S.addSelLower(A, Ctx.Cdr, Args[1]);
    break;
  case PrimShape::CarShape:
    S.addSelUpper(Args[0], Ctx.Car, A);
    break;
  case PrimShape::CdrShape:
    S.addSelUpper(Args[0], Ctx.Cdr, A);
    break;
  case PrimShape::BoxShape: {
    // Split boxes (fig. 3.5): α0 ≤ δ, box⁻(α) ≤ δ, δ ≤ box⁺(α).
    SetVar Delta = Ctx.freshVar();
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::BoxTag));
    S.addVarUpper(Args[0], Delta);
    S.addSelLower(A, Ctx.BoxMinus, Delta);
    S.addSelLower(A, Ctx.BoxPlus, Delta);
    break;
  }
  case PrimShape::UnboxShape:
    S.addSelUpper(Args[0], Ctx.BoxPlus, A);
    break;
  case PrimShape::SetBoxShape:
    S.addSelUpper(Args[0], Ctx.BoxMinus, Args[1]);
    S.addVarUpper(Args[1], A);
    break;
  case PrimShape::VectorShape: {
    // Vectors analyzed like boxes with one element component.
    SetVar Delta = Ctx.freshVar();
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::VecTag));
    if (Node.PrimOp == Prim::MakeVector) {
      if (NumArgs > 1)
        S.addVarUpper(Args[1], Delta);
      else
        S.addConstLower(Delta, Ctx.Constants.basic(ConstKind::Num));
    } else {
      for (size_t I = 0; I < NumArgs; ++I)
        S.addVarUpper(Args[I], Delta);
    }
    S.addSelLower(A, Ctx.VecMinus, Delta);
    S.addSelLower(A, Ctx.VecPlus, Delta);
    break;
  }
  case PrimShape::VecRefShape:
    S.addSelUpper(Args[0], Ctx.VecPlus, A);
    break;
  case PrimShape::VecSetShape:
    S.addSelUpper(Args[0], Ctx.VecMinus, Args[2]);
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Void));
    break;
  case PrimShape::ListShape:
    // A proper list: nil plus a self-referential pair spine.
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Nil));
    if (NumArgs != 0) {
      S.addConstLower(A, Ctx.Constants.basic(ConstKind::Pair));
      for (size_t I = 0; I < NumArgs; ++I)
        S.addSelLower(A, Ctx.Car, Args[I]);
      S.addSelLower(A, Ctx.Cdr, A);
    }
    break;
  case PrimShape::BottomShape:
    // (error ...) never returns; α stays empty (least solution ⊥).
    break;
  }
  ArgScratch.resize(Mark);
  return A;
}

SetVar Deriver::deriveExpr(ExprId E, ConstraintSystem &S) {
  const Expr &Node = P.expr(E);
  SetVar A = varOfExpr(E);
  std::vector<SetVar> *SchemaVars =
      ActiveSchema ? &ActiveSchema->CheckVars : nullptr;

  switch (Node.K) {
  case ExprKind::Var:
    return deriveVarRef(E, S);
  case ExprKind::Num:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Num));
    return A;
  case ExprKind::Bool:
    S.addConstLower(A, Ctx.Constants.basic(Node.BoolVal ? ConstKind::True
                                                        : ConstKind::False));
    return A;
  case ExprKind::Str:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Str));
    return A;
  case ExprKind::Char:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Char));
    return A;
  case ExprKind::Nil:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Nil));
    return A;
  case ExprKind::Quote:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Sym));
    return A;
  case ExprKind::Void:
    S.addConstLower(A, Ctx.Constants.basic(ConstKind::Void));
    return A;
  case ExprKind::Lambda: {
    // (abs): t ≤ α, dom_i(α) ≤ α_xi, α_body ≤ rng(α).
    Constant Tag = siteTag(ConstKind::FnTag, E);
    S.addConstLower(A, Tag);
    for (size_t I = 0; I < Node.Params.size(); ++I)
      S.addSelLower(A, Ctx.dom(static_cast<unsigned>(I)),
                    varOfVar(Node.Params[I]));
    SetVar Body = deriveExpr(Node.Kids[0], S);
    S.addSelLower(A, Ctx.Rng, Body);
    return A;
  }
  case ExprKind::App: {
    // (app): β_i ≤ dom_i(β_f), rng(β_f) ≤ α.
    SetVar Fn = deriveExpr(Node.Kids[0], S);
    for (size_t I = 1; I < Node.Kids.size(); ++I) {
      SetVar Arg = deriveExpr(Node.Kids[I], S);
      S.addSelUpper(Fn, Ctx.dom(static_cast<unsigned>(I - 1)), Arg);
    }
    S.addSelUpper(Fn, Ctx.Rng, A);
    CheckScrutinee Scr;
    Scr.V = Fn;
    Scr.Accept = FnLikeMask;
    Scr.Arity = static_cast<uint32_t>(Node.Kids.size() - 1);
    Scr.CheckArity = true;
    recordCheck(Maps, SchemaVars, E, "application", Scr);
    return A;
  }
  case ExprKind::PrimApp:
    return derivePrim(E, S);
  case ExprKind::StructApp:
    return deriveStructApp(E, S);
  case ExprKind::Let: {
    for (const Binding &B : Node.Bindings) {
      if (auto Sch = maybeMakeSchema(B.Var, B.Init, S)) {
        Schema &Slot = Schemas[B.Var] = std::move(*Sch);
        SchemaComponent[B.Var] = CurrentComponent;
        // Call-by-value evaluates the init once regardless of uses: one
        // evaluation instance keeps labels and check sites inside the
        // init sound even for never-referenced bindings. Its result also
        // inhabits the monomorphic variable so filter-based narrowing
        // (which reads varOfVar) sees the binding's value.
        SetVar Inst = instantiate(Slot, S);
        S.addVarUpper(Inst, varOfVar(B.Var));
        continue;
      }
      SetVar Init = deriveExpr(B.Init, S);
      S.addVarUpper(Init, varOfVar(B.Var));
    }
    SetVar Body = deriveExpr(Node.Kids[0], S);
    S.addVarUpper(Body, A);
    return A;
  }
  case ExprKind::Letrec: {
    // (letrec): β_i ≤ α_zi for each definition (fig. 3.4).
    for (const Binding &B : Node.Bindings) {
      SetVar Init = deriveExpr(B.Init, S);
      S.addVarUpper(Init, varOfVar(B.Var));
    }
    SetVar Body = deriveExpr(Node.Kids[0], S);
    S.addVarUpper(Body, A);
    return A;
  }
  case ExprKind::Set: {
    // (set!): the assigned value flows into the variable and is the
    // expression's result (fig. 3.4).
    SetVar Rhs = deriveExpr(Node.Kids[0], S);
    S.addVarUpper(Rhs, varOfVar(Node.Var));
    S.addVarUpper(Rhs, A);
    return A;
  }
  case ExprKind::If: {
    deriveExpr(Node.Kids[0], S);
    // Predicate-based narrowing (MrSpidey's filters): for a test
    // (pred x) on an immutable variable, references to x in the branches
    // see only the matching (resp. non-matching) kinds.
    VarId TestVar = NoVar;
    KindMask ThenMask = 0;
    if (Opts.IfSplitting)
      splitTest(Node.Kids[0], TestVar, ThenMask);
    if (TestVar != NoVar) {
      SetVar Base;
      if (auto RIt = Refined.find(TestVar);
          RIt != Refined.end() && !RIt->second.empty())
        Base = RIt->second.back();
      else
        Base = varOfVar(TestVar);
      SetVar ThenV = Ctx.freshVar(), ElseV = Ctx.freshVar();
      S.addFilterUpper(Base, ThenMask, ThenV);
      S.addFilterUpper(Base, ValidKindMask & ~ThenMask, ElseV);
      Refined[TestVar].push_back(ThenV);
      SetVar Then = deriveExpr(Node.Kids[1], S);
      Refined[TestVar].back() = ElseV;
      SetVar Else = deriveExpr(Node.Kids[2], S);
      Refined[TestVar].pop_back();
      S.addVarUpper(Then, A);
      S.addVarUpper(Else, A);
      return A;
    }
    SetVar Then = deriveExpr(Node.Kids[1], S);
    SetVar Else = deriveExpr(Node.Kids[2], S);
    S.addVarUpper(Then, A);
    S.addVarUpper(Else, A);
    return A;
  }
  case ExprKind::Begin: {
    SetVar Last = NoSetVar;
    for (ExprId Kid : Node.Kids)
      Last = deriveExpr(Kid, S);
    S.addVarUpper(Last, A);
    return A;
  }
  case ExprKind::Callcc: {
    // (callcc), fig. 3.3: t ≤ δ, δ ≤ dom(β), rng(β) ≤ α, dom(δ) ≤ α,
    // γ ≤ rng(δ).
    SetVar Fn = deriveExpr(Node.Kids[0], S);
    SetVar Delta = Ctx.freshVar();
    Constant Tag = siteTag(ConstKind::ContTag, E);
    S.addConstLower(Delta, Tag);
    S.addSelUpper(Fn, Ctx.dom(0), Delta);
    S.addSelUpper(Fn, Ctx.Rng, A);
    S.addSelLower(Delta, Ctx.dom(0), A);
    SetVar Gamma = Ctx.freshVar();
    S.addSelLower(Delta, Ctx.Rng, Gamma);
    CheckScrutinee Scr;
    Scr.V = Fn;
    Scr.Accept = FnLikeMask;
    Scr.Arity = 1;
    Scr.CheckArity = true;
    recordCheck(Maps, SchemaVars, E, "call/cc", Scr);
    return A;
  }
  case ExprKind::Abort:
    // (abort): the expression never returns normally; α stays free.
    deriveExpr(Node.Kids[0], S);
    return A;
  case ExprKind::Unit: {
    // (unit), fig. 3.6.
    Constant Tag = siteTag(ConstKind::UnitTag, E);
    S.addConstLower(A, Tag);
    SetVar ImportV = varOfVar(Node.Params[0]);
    SetVar ExportV = varOfVar(Node.Params[1]);
    S.addSelLower(A, Ctx.Ui, ImportV);  // ui(α) ≤ γ1
    S.addSelLower(A, Ctx.Ue, ExportV);  // γ2 ≤ ue(α)
    for (const Binding &B : Node.Bindings) {
      SetVar Init = deriveExpr(B.Init, S);
      S.addVarUpper(Init, varOfVar(B.Var));
    }
    deriveExpr(Node.Kids[0], S);
    return A;
  }
  case ExprKind::Link: {
    // (link), fig. 3.6, with intermediate variables to stay within the
    // simple constraint language:
    //   ui(α) ≤ ι ≤ ui(β1), ue(β1) ≤ ε1 ≤ ui(β2), ue(β2) ≤ ε2 ≤ ue(α).
    SetVar B1 = deriveExpr(Node.Kids[0], S);
    SetVar B2 = deriveExpr(Node.Kids[1], S);
    Constant Tag = siteTag(ConstKind::UnitTag, E);
    S.addConstLower(A, Tag);
    SetVar Iota = Ctx.freshVar();
    S.addSelLower(A, Ctx.Ui, Iota);   // ui(α) ≤ ι
    S.addSelUpper(B1, Ctx.Ui, Iota);  // ι ≤ ui(β1)
    SetVar Eps1 = Ctx.freshVar();
    S.addSelUpper(B1, Ctx.Ue, Eps1);  // ue(β1) ≤ ε1
    S.addSelUpper(B2, Ctx.Ui, Eps1);  // ε1 ≤ ui(β2)
    SetVar Eps2 = Ctx.freshVar();
    S.addSelUpper(B2, Ctx.Ue, Eps2);  // ue(β2) ≤ ε2
    S.addSelLower(A, Ctx.Ue, Eps2);   // ε2 ≤ ue(α)
    CheckScrutinee S1;
    S1.V = B1;
    S1.Accept = kindBit(ConstKind::UnitTag);
    CheckScrutinee S2;
    S2.V = B2;
    S2.Accept = kindBit(ConstKind::UnitTag);
    S2.ArgIndex = 1;
    if (SchemaVars) {
      SchemaVars->push_back(B1);
      SchemaVars->push_back(B2);
    }
    if (Maps.CheckedSites.insert(E).second) {
      CheckSite Check;
      Check.Site = E;
      Check.What = "link";
      Check.Scrutinees = {S1, S2};
      Maps.Checks.push_back(std::move(Check));
    }
    return A;
  }
  case ExprKind::Invoke: {
    // (invoke), fig. 3.6: Γ(z) ≤ ui(β), ue(β) ≤ α.
    SetVar B = deriveExpr(Node.Kids[0], S);
    S.addSelUpper(B, Ctx.Ui, varOfVar(Node.Var));
    S.addSelUpper(B, Ctx.Ue, A);
    CheckScrutinee Scr;
    Scr.V = B;
    Scr.Accept = kindBit(ConstKind::UnitTag);
    recordCheck(Maps, SchemaVars, E, "invoke", Scr);
    return A;
  }
  case ExprKind::TypeAssert: {
    // (: e T), App. D.5.1: the asserted kinds are checked against e's
    // value set, and the assertion's result is narrowed to them (the
    // programmer's promise is usable downstream, like a filter).
    SetVar B = deriveExpr(Node.Kids[0], S);
    S.addFilterUpper(B, Node.Mask, A);
    CheckScrutinee Scr;
    Scr.V = B;
    Scr.Accept = Node.Mask;
    recordCheck(Maps, SchemaVars, E, "type-assertion", Scr);
    return A;
  }
  case ExprKind::Class: {
    if (Node.Kids.empty()) {
      // object%: a class with no instance variables.
      Constant Tag = siteTag(ConstKind::ClassTag, E);
      S.addConstLower(A, Tag);
      SetVar Obj = Ctx.freshVar();
      Constant ObjTag = Ctx.Constants.makeTag(ConstKind::ObjTag, 0, Node.Loc);
      Maps.TagSite.emplace(ObjTag, E);
      S.addConstLower(Obj, ObjTag);
      S.addSelLower(A, Ctx.ClObj, Obj);
      return A;
    }
    // (class), fig. 3.7.
    SetVar Super = deriveExpr(Node.Kids[0], S);
    Constant Tag = siteTag(ConstKind::ClassTag, E);
    S.addConstLower(A, Tag);
    SetVar Obj = Ctx.freshVar(); // α_o: objects of the new class
    Constant ObjTag =
        Ctx.Constants.makeTag(ConstKind::ObjTag, 0, Node.Loc);
    Maps.TagSite.emplace(ObjTag, E);
    S.addConstLower(Obj, ObjTag);
    S.addSelUpper(Super, Ctx.ClObj, Obj); // cl-obj(α_s) ≤ α_o
    S.addSelLower(A, Ctx.ClObj, Obj);     // α_o ≤ cl-obj(α)
    auto ConnectIvar = [&](VarId Z) {
      Symbol Name = P.var(Z).Name;
      SetVar BZ = varOfVar(Z);
      // ivar⁻_z(α_o) ≤ β_z : assignments to z flow into the scope variable;
      // β_z ≤ ivar⁺_z(α_o) : the scope variable feeds reads of z;
      // ivar⁺_z(α_o) ≤ β_z : inherited/previous values of z are visible to
      //                      the initializers that mention z (fig. 3.7:
      //                      "the values in β reflect the values from α_o").
      S.addSelLower(Obj, Ctx.ivarMinus(Name, P.Syms), BZ);
      S.addSelLower(Obj, Ctx.ivarPlus(Name, P.Syms), BZ);
      S.addSelUpper(Obj, Ctx.ivarPlus(Name, P.Syms), BZ);
    };
    for (VarId Z : Node.Params)
      ConnectIvar(Z);
    for (const Binding &B : Node.Bindings)
      ConnectIvar(B.Var);
    for (const Binding &B : Node.Bindings) {
      SetVar Init = deriveExpr(B.Init, S);
      S.addVarUpper(Init, varOfVar(B.Var)); // γ ≤ β_z
    }
    CheckScrutinee Scr;
    Scr.V = Super;
    Scr.Accept = kindBit(ConstKind::ClassTag);
    recordCheck(Maps, SchemaVars, E, "class", Scr);
    return A;
  }
  case ExprKind::MakeObj: {
    // (make-obj): cl-obj(β) ≤ α.
    SetVar B = deriveExpr(Node.Kids[0], S);
    S.addSelUpper(B, Ctx.ClObj, A);
    CheckScrutinee Scr;
    Scr.V = B;
    Scr.Accept = kindBit(ConstKind::ClassTag);
    recordCheck(Maps, SchemaVars, E, "make-obj", Scr);
    return A;
  }
  case ExprKind::IvarRef: {
    // (ivar): ivar⁺_z(β) ≤ α.
    SetVar B = deriveExpr(Node.Kids[0], S);
    S.addSelUpper(B, Ctx.ivarPlus(Node.Name, P.Syms), A);
    CheckScrutinee Scr;
    Scr.V = B;
    Scr.Accept = kindBit(ConstKind::ObjTag);
    recordCheck(Maps, SchemaVars, E, "ivar", Scr);
    return A;
  }
  case ExprKind::IvarSet: {
    SetVar B = deriveExpr(Node.Kids[0], S);
    SetVar Val = deriveExpr(Node.Kids[1], S);
    // γ ≤ ivar⁻_z(β); the assigned value is the result.
    S.addSelUpper(B, Ctx.ivarMinus(Node.Name, P.Syms), Val);
    S.addVarUpper(Val, A);
    CheckScrutinee Scr;
    Scr.V = B;
    Scr.Accept = kindBit(ConstKind::ObjTag);
    recordCheck(Maps, SchemaVars, E, "set-ivar!", Scr);
    return A;
  }
  }
  assert(false && "unknown expression kind");
  return A;
}

Analysis spidey::analyzeProgram(const Program &P,
                                const AnalysisOptions &Opts) {
  Analysis Result;
  Result.Ctx = std::make_unique<ConstraintContext>();
  Result.System = std::make_unique<ConstraintSystem>(*Result.Ctx);
  Result.Prog = &P;
  Deriver D(P, *Result.Ctx, Result.Maps, Opts);
  D.deriveAll(*Result.System);
  Result.Stats = D.stats();
  return Result;
}
