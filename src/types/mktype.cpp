//===-- types/mktype.cpp - MkType and type reductions ----------*- C++ -*-===//
///
/// \file
/// Implements MkType/MkType' of §4.2. For a closed system S and variable
/// α, the open type of α is the union of:
///   - its basic constants {b | S ⊢Θ b ≤ α},
///   - a constructed type per tag family present (functions, pairs, boxes,
///     vectors, units, classes, objects), whose components are:
///       * for a monotone selector s:  {β | [β ≤ s(α)] ∈ S}
///       * for an anti-monotone s:     {β | S ⊢Θ α ≤* δ, [β ≤ s(δ)] ∈ S}
///     (the asymmetry mirrors Θ, which propagates monotone components
///     forward but leaves anti-monotone bounds at the use sites).
/// The open types are then tied into one rec-type and reduced: ⊥ members
/// dropped, duplicate union members merged, non-recursive bindings
/// inlined, unused bindings removed (§4.2 step 3).
///
//===----------------------------------------------------------------------===//

#include "types/type.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace spidey;

TypePtr Type::bottom() {
  static const TypePtr B = std::make_shared<Type>();
  return B;
}

TypePtr Type::basic(ConstKind K) {
  auto T = std::make_shared<Type>();
  T->K = Kind::Basic;
  T->Basic = K;
  return T;
}

TypePtr Type::var(SetVar V) {
  auto T = std::make_shared<Type>();
  T->K = Kind::Var;
  T->Var = V;
  return T;
}

namespace {

/// Groups tag kinds into constructed-type families.
ConstKind familyOf(ConstKind K) {
  switch (K) {
  case ConstKind::FnTag:
  case ConstKind::ContTag:
    return ConstKind::FnTag;
  default:
    return K;
  }
}

class Builder {
public:
  Builder(const ConstraintSystem &S, const SymbolTable &Syms)
      : S(S), Syms(Syms), Ctx(S.context()) {}

  TypePtr build(SetVar Root) {
    // Phase 1: build open types for all variables reachable from Root
    // through type components.
    std::vector<SetVar> Work{Root};
    while (!Work.empty()) {
      SetVar A = Work.back();
      Work.pop_back();
      if (Open.count(A))
        continue;
      TypePtr T = openTypeOf(A);
      Open.emplace(A, T);
      for (SetVar Dep : DepsOf[A])
        if (!Open.count(Dep))
          Work.push_back(Dep);
    }

    // Phase 2: find variables on reference cycles; they stay as rec
    // bindings, everything else is inlined.
    computeRecursive();

    // Phase 3: produce the closed type.
    std::unordered_map<SetVar, TypePtr> Memo;
    TypePtr Body = inlineVars(Open.at(Root), Root, Memo);
    // Collect rec-bound variables actually referenced.
    std::set<SetVar> Used;
    collectVars(Body, Used);
    std::vector<std::pair<SetVar, TypePtr>> Bindings;
    std::set<SetVar> Done;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (SetVar V : Used) {
        if (Done.count(V))
          continue;
        Done.insert(V);
        Changed = true;
        TypePtr Def = inlineVars(Open.at(V), V, Memo);
        Bindings.emplace_back(V, Def);
        collectVars(Def, Used);
      }
    }
    if (Bindings.empty())
      return Body;
    auto Rec = std::make_shared<Type>();
    Rec->K = Type::Kind::Rec;
    std::sort(Bindings.begin(), Bindings.end(),
              [](auto &A, auto &B) { return A.first < B.first; });
    Rec->Bindings = std::move(Bindings);
    Rec->Body = Body;
    return Rec;
  }

private:
  /// ε-reachability: all δ with S ⊢ α ≤* δ.
  std::vector<SetVar> epsReachable(SetVar A) const {
    std::vector<SetVar> Result{A};
    std::unordered_set<SetVar> Seen{A};
    for (size_t I = 0; I < Result.size(); ++I)
      for (const UpperBound &U : S.upperBounds(Result[I]))
        if (U.K == UpperBound::Kind::VarUB && Seen.insert(U.Other).second)
          Result.push_back(U.Other);
    return Result;
  }

  /// The component variables of α under selector \p Sel.
  std::vector<SetVar> componentOf(SetVar A, Selector Sel) const {
    std::set<SetVar> Members;
    if (Ctx.Selectors.isMonotone(Sel)) {
      for (const LowerBound &L : S.lowerBounds(A))
        if (L.K == LowerBound::Kind::SelLB && L.Sel == Sel)
          Members.insert(L.Other);
    } else {
      // Anti-monotone components read two sources: the binder-side lower
      // bounds s(a) <= b (e.g. the parameter variables, which rule s3
      // propagates to every alias of the function), and the use-site upper
      // bounds b <= s(d) on eps-reachable d (the actual arguments).
      for (const LowerBound &L : S.lowerBounds(A))
        if (L.K == LowerBound::Kind::SelLB && L.Sel == Sel)
          Members.insert(L.Other);
      for (SetVar D : epsReachable(A))
        for (const UpperBound &U : S.upperBounds(D))
          if (U.K == UpperBound::Kind::SelUB && U.Sel == Sel)
            Members.insert(U.Other);
    }
    return std::vector<SetVar>(Members.begin(), Members.end());
  }

  TypePtr unionOfVars(const std::vector<SetVar> &Vars, SetVar Self) {
    std::vector<TypePtr> Members;
    for (SetVar V : Vars) {
      DepsOf[Self].push_back(V);
      Members.push_back(Type::var(V));
    }
    return makeUnion(std::move(Members));
  }

  TypePtr openTypeOf(SetVar A) {
    std::vector<TypePtr> Members;
    // Basic constants and tag grouping.
    std::map<ConstKind, std::vector<Constant>> Families;
    for (Constant C : S.constantsOf(A)) {
      ConstKind K = Ctx.Constants.kind(C);
      if (K <= ConstKind::Eof)
        Members.push_back(Type::basic(K));
      else
        Families[familyOf(K)].push_back(C);
    }
    for (auto &[Family, Tags] : Families) {
      auto T = std::make_shared<Type>();
      T->K = Type::Kind::Ctor;
      T->CtorKind = Family;
      T->Tags = Tags;
      auto AddField = [&](Selector Sel) {
        T->Fields.emplace_back(Sel, unionOfVars(componentOf(A, Sel), A));
      };
      switch (Family) {
      case ConstKind::FnTag: {
        uint32_t MaxArity = 0;
        bool HasCont = false;
        for (Constant C : Tags) {
          const ConstantInfo &I = Ctx.Constants.info(C);
          if (I.K == ConstKind::ContTag)
            HasCont = true;
          else
            MaxArity = std::max(MaxArity, I.Arity);
        }
        if (HasCont)
          MaxArity = std::max(MaxArity, 1u);
        for (uint32_t I = 0; I < MaxArity; ++I)
          AddField(Ctx.dom(I));
        AddField(Ctx.Rng);
        break;
      }
      case ConstKind::Pair:
        AddField(Ctx.Car);
        AddField(Ctx.Cdr);
        break;
      case ConstKind::BoxTag:
        AddField(Ctx.BoxPlus);
        break;
      case ConstKind::VecTag:
        AddField(Ctx.VecPlus);
        break;
      case ConstKind::UnitTag:
        AddField(Ctx.Ui);
        AddField(Ctx.Ue);
        break;
      case ConstKind::ClassTag:
        AddField(Ctx.ClObj);
        break;
      case ConstKind::ObjTag: {
        // Every ivar⁺ selector with a component on this variable.
        std::set<Selector> Sels;
        for (const LowerBound &L : S.lowerBounds(A))
          if (L.K == LowerBound::Kind::SelLB &&
              Ctx.Selectors.name(L.Sel).rfind("ivar+", 0) == 0)
            Sels.insert(L.Sel);
        for (Selector Sel : Sels)
          AddField(Sel);
        break;
      }
      case ConstKind::StructTag: {
        std::set<Selector> Sels;
        for (const LowerBound &L : S.lowerBounds(A))
          if (L.K == LowerBound::Kind::SelLB &&
              Ctx.Selectors.name(L.Sel).rfind("sfld+", 0) == 0)
            Sels.insert(L.Sel);
        for (Selector Sel : Sels)
          AddField(Sel);
        break;
      }
      default:
        break;
      }
      Members.push_back(T);
    }
    return makeUnion(std::move(Members));
  }

  TypePtr makeUnion(std::vector<TypePtr> Members) {
    // Flatten, drop ⊥, dedupe structurally (by rendered key).
    std::vector<TypePtr> Flat;
    std::set<std::string> Seen;
    std::function<void(const TypePtr &)> Add = [&](const TypePtr &T) {
      if (T->K == Type::Kind::Bottom)
        return;
      if (T->K == Type::Kind::Union) {
        for (const TypePtr &M : T->Members)
          Add(M);
        return;
      }
      std::string Key = render(T);
      if (Seen.insert(std::move(Key)).second)
        Flat.push_back(T);
    };
    for (const TypePtr &M : Members)
      Add(M);
    if (Flat.empty())
      return Type::bottom();
    if (Flat.size() == 1)
      return Flat[0];
    auto U = std::make_shared<Type>();
    U->K = Type::Kind::Union;
    // Deterministic member order.
    std::sort(Flat.begin(), Flat.end(),
              [&](const TypePtr &A, const TypePtr &B) {
                return render(A) < render(B);
              });
    U->Members = std::move(Flat);
    return U;
  }

  void computeRecursive() {
    // A variable is recursive if it can reach itself in the dependency
    // graph. Simple DFS per variable (systems after reduction are small).
    for (auto &[V, Deps] : DepsOf) {
      (void)Deps;
      std::unordered_set<SetVar> Seen;
      std::vector<SetVar> Work(DepsOf[V].begin(), DepsOf[V].end());
      bool Found = false;
      while (!Work.empty() && !Found) {
        SetVar X = Work.back();
        Work.pop_back();
        if (X == V) {
          Found = true;
          break;
        }
        if (!Seen.insert(X).second)
          continue;
        auto It = DepsOf.find(X);
        if (It != DepsOf.end())
          Work.insert(Work.end(), It->second.begin(), It->second.end());
      }
      if (Found)
        Recursive.insert(V);
    }
  }

  /// Replaces non-recursive Var leaves by their (recursively inlined)
  /// definitions; recursive variables stay symbolic.
  TypePtr inlineVars(const TypePtr &T, SetVar Self,
                     std::unordered_map<SetVar, TypePtr> &Memo) {
    switch (T->K) {
    case Type::Kind::Bottom:
    case Type::Kind::Basic:
      return T;
    case Type::Kind::Var: {
      SetVar V = T->Var;
      if (V == Self || Recursive.count(V))
        return T;
      auto It = Memo.find(V);
      if (It != Memo.end())
        return It->second;
      // Guard against indirect revisits during construction.
      Memo.emplace(V, T);
      TypePtr R = inlineVars(Open.at(V), V, Memo);
      Memo[V] = R;
      return R;
    }
    case Type::Kind::Ctor: {
      auto R = std::make_shared<Type>(*T);
      for (auto &[Sel, Field] : R->Fields)
        Field = inlineVars(Field, Self, Memo);
      return R;
    }
    case Type::Kind::Union: {
      std::vector<TypePtr> Members;
      for (const TypePtr &M : T->Members)
        Members.push_back(inlineVars(M, Self, Memo));
      return makeUnion(std::move(Members));
    }
    case Type::Kind::Rec:
      return T; // not produced before phase 3
    }
    return T;
  }

  void collectVars(const TypePtr &T, std::set<SetVar> &Out) const {
    switch (T->K) {
    case Type::Kind::Var:
      Out.insert(T->Var);
      return;
    case Type::Kind::Ctor:
      for (auto &[Sel, Field] : T->Fields)
        collectVars(Field, Out);
      return;
    case Type::Kind::Union:
      for (const TypePtr &M : T->Members)
        collectVars(M, Out);
      return;
    case Type::Kind::Rec:
      for (auto &[V, Def] : T->Bindings)
        collectVars(Def, Out);
      collectVars(T->Body, Out);
      return;
    default:
      return;
    }
  }

public:
  std::string render(const TypePtr &T) const {
    std::ostringstream OS;
    renderTo(T, OS);
    return OS.str();
  }

  std::string render(const TypePtr &T, const TypeDisplayOptions &Opts) const {
    std::ostringstream OS;
    renderTo(T, OS, &Opts, 0);
    return OS.str();
  }

private:
  void renderTo(const TypePtr &T, std::ostringstream &OS,
                const TypeDisplayOptions *Opts = nullptr,
                unsigned Depth = 0) const {
    if (Opts && Depth > Opts->MaxDepth) {
      OS << "...";
      return;
    }
    switch (T->K) {
    case Type::Kind::Bottom:
      OS << "empty";
      return;
    case Type::Kind::Basic:
      OS << constKindName(T->Basic);
      return;
    case Type::Kind::Var:
      OS << "a" << T->Var;
      return;
    case Type::Kind::Union: {
      OS << "(union";
      for (const TypePtr &M : T->Members) {
        OS << ' ';
        renderTo(M, OS, Opts, Depth);
      }
      OS << ')';
      return;
    }
    case Type::Kind::Rec: {
      OS << "(rec (";
      bool First = true;
      for (auto &[V, Def] : T->Bindings) {
        if (!First)
          OS << ' ';
        First = false;
        OS << "[a" << V << ' ';
        renderTo(Def, OS, Opts, Depth);
        OS << ']';
      }
      OS << ") ";
      renderTo(T->Body, OS, Opts, Depth);
      OS << ')';
      return;
    }
    case Type::Kind::Ctor:
      renderCtor(T, OS, Opts, Depth);
      return;
    }
  }

  void renderCtor(const TypePtr &T, std::ostringstream &OS,
                  const TypeDisplayOptions *Opts, unsigned Depth) const {
    auto Field = [&](size_t I) { return T->Fields[I].second; };
    auto Sub = [&](const TypePtr &F) { renderTo(F, OS, Opts, Depth + 1); };
    switch (T->CtorKind) {
    case ConstKind::FnTag: {
      OS << "(";
      for (size_t I = 0; I + 1 < T->Fields.size(); ++I) {
        Sub(Field(I));
        OS << ' ';
      }
      OS << "-> ";
      Sub(T->Fields.back().second);
      OS << ')';
      return;
    }
    case ConstKind::Pair:
      OS << "(cons ";
      Sub(Field(0));
      OS << ' ';
      Sub(Field(1));
      OS << ')';
      return;
    case ConstKind::BoxTag:
      OS << "(box ";
      Sub(Field(0));
      OS << ')';
      return;
    case ConstKind::VecTag:
      OS << "(vec ";
      Sub(Field(0));
      OS << ')';
      return;
    case ConstKind::UnitTag:
      if (Opts && !Opts->ShowUnitInterior) {
        OS << "(unit ...)";
        return;
      }
      OS << "(unit ";
      Sub(Field(0));
      OS << ' ';
      Sub(Field(1));
      OS << ')';
      return;
    case ConstKind::ClassTag:
      OS << "(class ";
      Sub(Field(0));
      OS << ')';
      return;
    case ConstKind::StructTag: {
      OS << "(struct";
      if (!T->Tags.empty()) {
        Symbol Label = Ctx.Constants.info(T->Tags[0]).Label;
        if (Label != InvalidSymbol)
          OS << ':' << Syms.name(Label);
      }
      if (Opts && !Opts->ShowObjectFields) {
        OS << " ...)";
        return;
      }
      const SelectorTable &Sels = Ctx.Selectors;
      for (auto &[Sel, F] : T->Fields) {
        const std::string &SelName = Sels.name(Sel);
        size_t Dot = SelName.find('.');
        OS << " [" << SelName.substr(Dot + 1) << ' ';
        Sub(F);
        OS << ']';
      }
      OS << ')';
      return;
    }
    case ConstKind::ObjTag: {
      if (Opts && !Opts->ShowObjectFields) {
        OS << "(obj ...)";
        return;
      }
      OS << "(obj";
      const SelectorTable &Sels = Ctx.Selectors;
      for (auto &[Sel, F] : T->Fields) {
        OS << " [" << Sels.name(Sel).substr(5) << ' ';
        Sub(F);
        OS << ']';
      }
      OS << ')';
      return;
    }
    default:
      OS << "(?ctor)";
      return;
    }
  }

  const ConstraintSystem &S;
  const SymbolTable &Syms;
  ConstraintContext &Ctx;
  std::unordered_map<SetVar, TypePtr> Open;
  std::unordered_map<SetVar, std::vector<SetVar>> DepsOf;
  std::unordered_set<SetVar> Recursive;
};

} // namespace

TypePtr TypeBuilder::typeOf(SetVar A) const { return Builder(S, Syms).build(A); }

std::string TypeBuilder::typeString(SetVar A) const {
  Builder B(S, Syms);
  TypePtr T = B.build(A);
  return B.render(T);
}

std::string TypeBuilder::str(const TypePtr &T) const {
  return Builder(S, Syms).render(T);
}

std::string TypeBuilder::typeString(SetVar A,
                                    const TypeDisplayOptions &Opts) const {
  Builder B(S, Syms);
  TypePtr T = B.build(A);
  return B.render(T, Opts);
}

std::string TypeBuilder::str(const TypePtr &T,
                             const TypeDisplayOptions &Opts) const {
  return Builder(S, Syms).render(T, Opts);
}
