//===-- types/type.h - The type language -----------------------*- C++ -*-===//
///
/// \file
/// The type language of §4.1 (fig. 4.1), generalized over the selector
/// signature of chapter 3: constants, set variables, ⊥, constructed types
/// (functions, pairs, boxes, vectors, units, classes, objects), unions,
/// and recursive rec-types. MkType (§4.2) converts a solved constraint
/// system into a compact closed type for presentation to the programmer,
/// followed by the meaning-preserving reductions of §4.2 step 3.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_TYPES_TYPE_H
#define SPIDEY_TYPES_TYPE_H

#include "constraints/constraint_system.h"

#include <memory>
#include <string>
#include <vector>

namespace spidey {

struct Type;
using TypePtr = std::shared_ptr<const Type>;

/// A (possibly open) type. Immutable and shared.
struct Type {
  enum class Kind : uint8_t {
    Bottom, ///< ⊥ — the empty value set
    Basic,  ///< a basic-constant kind (num, nil, true, ...)
    Var,    ///< a set-variable reference (inside rec)
    Ctor,   ///< a constructed type: tags + selector components
    Union,  ///< ω1 ∪ ω2 ∪ ...
    Rec,    ///< (rec ([α ω] ...) ω)
  };

  Kind K = Kind::Bottom;
  ConstKind Basic = ConstKind::Num;                 ///< Kind::Basic
  SetVar Var = NoSetVar;                            ///< Kind::Var
  ConstKind CtorKind = ConstKind::FnTag;            ///< Kind::Ctor family
  std::vector<Constant> Tags;                       ///< Kind::Ctor
  std::vector<std::pair<Selector, TypePtr>> Fields; ///< Kind::Ctor
  std::vector<TypePtr> Members;                     ///< Kind::Union
  std::vector<std::pair<SetVar, TypePtr>> Bindings; ///< Kind::Rec
  TypePtr Body;                                     ///< Kind::Rec

  static TypePtr bottom();
  static TypePtr basic(ConstKind K);
  static TypePtr var(SetVar V);
};

/// Type-display preferences (App. D.2.2): MrSpidey lets the programmer
/// suppress structure/object field types and bound the displayed depth to
/// keep invariants readable (§10.1).
struct TypeDisplayOptions {
  unsigned MaxDepth = 64;       ///< deeper structure renders as "..."
  bool ShowObjectFields = true; ///< render (obj ...) without fields if off
  bool ShowUnitInterior = true; ///< render (unit ...) without io if off
};

/// Computes compact types from a closed constraint system (MkType, §4.2).
class TypeBuilder {
public:
  /// \p S must be closed under Θ.
  TypeBuilder(const ConstraintSystem &S, const SymbolTable &Syms)
      : S(S), Syms(Syms) {}

  /// The reduced closed type describing LeastSoln(S)(A).
  TypePtr typeOf(SetVar A) const;

  /// Renders typeOf(A) in MrSpidey-style concrete syntax, e.g.
  /// "(union (cons nil num) nil)".
  std::string typeString(SetVar A) const;
  std::string typeString(SetVar A, const TypeDisplayOptions &Opts) const;

  /// Renders an arbitrary type.
  std::string str(const TypePtr &T) const;
  std::string str(const TypePtr &T, const TypeDisplayOptions &Opts) const;

private:
  const ConstraintSystem &S;
  const SymbolTable &Syms;
};

} // namespace spidey

#endif // SPIDEY_TYPES_TYPE_H
