//===-- componential/componential.cpp -------------------------*- C++ -*-===//

#include "componential/componential.h"

#include "constraints/serialize.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_set>

using namespace spidey;

ComponentialAnalyzer::ComponentialAnalyzer(const Program &P,
                                           ComponentialOptions Opts)
    : P(P), Opts(std::move(Opts)) {
  Ctx = std::make_unique<ConstraintContext>();
  Combined = std::make_unique<ConstraintSystem>(*Ctx);
  D = std::make_unique<Deriver>(P, *Ctx, Maps, this->Opts.Derive);
  Stats.resize(P.Components.size());
}

void ComponentialAnalyzer::computeCrossReferences() {
  // A top-level variable is part of a component's interface only if some
  // *other* component references it (§6.1: the externals are the
  // variables through which the component interacts with the rest of the
  // program). References are collected in one pass.
  for (uint32_t C = 0; C < P.Components.size(); ++C) {
    std::function<void(ExprId)> Walk = [&](ExprId Id) {
      const Expr &E = P.expr(Id);
      auto Note = [&](VarId V) {
        if (V == NoVar || !P.var(V).TopLevel)
          return;
        ReferencedBy[C].insert(V);
        if (P.var(V).Component != C)
          CrossReferenced.insert(V);
      };
      if (E.K == ExprKind::Var)
        Note(E.Var);
      if (E.K == ExprKind::Set || E.K == ExprKind::Invoke)
        Note(E.Var);
      for (ExprId Kid : E.Kids)
        Walk(Kid);
      for (const Binding &B : E.Bindings)
        Walk(B.Init);
    };
    for (const TopForm &F : P.Components[C].Forms)
      Walk(F.Body);
  }
}

std::vector<SetVar> ComponentialAnalyzer::externalsOf(uint32_t CompIdx) {
  if (ReferencedBy.empty() && !P.Components.empty())
    computeCrossReferences();
  std::unordered_set<VarId> Tops;
  const Component &C = P.Components[CompIdx];
  // Defines of this component that some other component references.
  for (const TopForm &F : C.Forms)
    if (F.DefVar != NoVar && CrossReferenced.count(F.DefVar))
      Tops.insert(F.DefVar);
  // Foreign top-level variables this component references.
  for (VarId V : ReferencedBy[CompIdx])
    if (P.var(V).Component != CompIdx)
      Tops.insert(V);

  std::vector<SetVar> E;
  E.reserve(Tops.size());
  for (VarId V : Tops) {
    // The deriver allocates set variables lazily; mirror that here.
    if (Maps.VarVar[V] == NoSetVar)
      Maps.VarVar[V] = Ctx->freshVar();
    E.push_back(Maps.VarVar[V]);
  }
  return E;
}

std::string ComponentialAnalyzer::cachePathFor(const Component &C) const {
  std::string Name;
  for (char Ch : C.Name)
    Name.push_back(std::isalnum(static_cast<unsigned char>(Ch)) ? Ch : '_');
  return Opts.CacheDir + "/" + Name + ".scf";
}

bool ComponentialAnalyzer::tryLoadComponent(uint32_t CompIdx,
                                            ConstraintSystem &Target,
                                            ComponentRunStats &CS) {
  if (Opts.CacheDir.empty())
    return false;
  const Component &C = P.Components[CompIdx];
  std::ifstream In(cachePathFor(C));
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  ConstraintSystem Loaded(*Ctx);
  LoadedConstraints Info;
  std::string Error;
  // The loader interns into the program's symbol table; Program is shared
  // state of the analysis, so the const_cast is confined here.
  SymbolTable &Syms = const_cast<Program &>(P).Syms;
  if (!deserializeConstraints(Text, Syms, Loaded, Info, Error))
    return false;
  if (Info.SourceHash != hashSource(C.SourceText))
    return false;

  // Re-link the file's external variables with this run's top-level
  // variables (two ε-constraints identify them).
  for (const auto &[Key, FileVar] : Info.Externals) {
    Symbol Name = Syms.lookup(Key);
    if (Name == InvalidSymbol)
      return false;
    SetVar Global = NoSetVar;
    for (VarId V = 0; V < P.numVars(); ++V)
      if (P.var(V).TopLevel && P.var(V).Name == Name) {
        if (Maps.VarVar[V] == NoSetVar)
          Maps.VarVar[V] = Ctx->freshVar();
        Global = Maps.VarVar[V];
        break;
      }
    if (Global == NoSetVar)
      return false;
    Loaded.addVarUpperRaw(FileVar, Global);
    Loaded.addVarUpperRaw(Global, FileVar);
  }
  Target.absorbRaw(Loaded);
  CS.ReusedFile = true;
  CS.SimplifiedConstraints = Loaded.size();
  CS.FileBytes = Text.size();
  return true;
}

void ComponentialAnalyzer::run() {
  for (uint32_t I = 0; I < P.Components.size(); ++I) {
    ComponentRunStats &CS = Stats[I];
    if (tryLoadComponent(I, *Combined, CS))
      continue;

    // Step 1: derive and close the component system, then simplify it
    // with respect to the component's externals.
    ConstraintSystem Local(*Ctx);
    D->deriveComponent(I, Local);
    CS.RawConstraints = Local.size();
    MaxConstraints = std::max(MaxConstraints, Local.size());
    std::vector<SetVar> E = externalsOf(I);
    ConstraintSystem Simplified =
        Opts.Simplify == SimplifyAlgorithm::None
            ? std::move(Local)
            : simplifyConstraints(Local, E, Opts.Simplify);
    CS.SimplifiedConstraints = Simplified.size();

    // Save the constraint file for later runs.
    if (!Opts.CacheDir.empty()) {
      std::vector<std::pair<std::string, SetVar>> Externals;
      std::unordered_set<SetVar> Seen;
      for (VarId V = 0; V < P.numVars(); ++V) {
        if (!P.var(V).TopLevel || Maps.VarVar[V] == NoSetVar)
          continue;
        SetVar SV = Maps.VarVar[V];
        if (std::find(E.begin(), E.end(), SV) == E.end())
          continue;
        if (Seen.insert(SV).second)
          Externals.emplace_back(P.Syms.name(P.var(V).Name), SV);
      }
      std::filesystem::create_directories(Opts.CacheDir);
      std::ofstream Out(cachePathFor(P.Components[I]));
      std::string Text = serializeConstraints(
          Simplified, Externals, P.Syms,
          hashSource(P.Components[I].SourceText));
      Out << Text;
      CS.FileBytes = Text.size();
    }

    Combined->absorbRaw(Simplified);
  }
  // Step 2: close the combined system.
  Combined->close();
  MaxConstraints = std::max(MaxConstraints, Combined->size());
}

std::unique_ptr<ConstraintSystem>
ComponentialAnalyzer::reconstruct(uint32_t CompIdx) {
  auto Full = std::make_unique<ConstraintSystem>(*Ctx);
  Full->absorbRaw(*Combined);
  Full->close();
  D->deriveComponent(CompIdx, *Full);
  MaxConstraints = std::max(MaxConstraints, Full->size());
  return Full;
}

AnalysisOptions spidey::polyAnalysisOptions(PolyMode Mode,
                                            SimplifyAlgorithm Alg) {
  AnalysisOptions Opts;
  Opts.Poly = Mode;
  if (Mode == PolyMode::Smart)
    Opts.Simplify = [Alg](const ConstraintSystem &S,
                          const std::vector<SetVar> &E) {
      return simplifyConstraints(S, E, Alg);
    };
  return Opts;
}
