//===-- componential/componential.cpp -------------------------*- C++ -*-===//

#include "componential/componential.h"

#include "componential/parallel.h"
#include "constraints/serialize.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_set>

using namespace spidey;

/// One component's step-1 result. Derivation output lives in a private
/// ConstraintContext (workers share no mutable state); merge() renumbers
/// it into the analyzer's shared context.
struct ComponentialAnalyzer::ComponentWork {
  std::unique_ptr<ConstraintContext> Ctx;
  AnalysisMaps Maps;
  std::unique_ptr<ConstraintSystem> Simplified;
  size_t RawConstraints = 0;
  ClosureStats Closure;  ///< derive + simplify solver counters
  std::string FileText;  ///< serialized constraint file (save path)
  std::string CacheText; ///< raw file text when the source hash matched
  bool CacheHit = false;
};

namespace {

/// Extracts the source hash from a constraint file's header without
/// deserializing the body (workers use this to decide whether the file is
/// reusable; the full parse happens on the combining thread).
std::string peekFileHash(const std::string &Text) {
  std::istringstream In(Text);
  std::string Magic, Version, Key, Hash;
  if (!(In >> Magic >> Version >> Key >> Hash) ||
      Magic != "spidey-constraint-file" || Version != "1" || Key != "hash")
    return {};
  return Hash;
}

} // namespace

ComponentialAnalyzer::ComponentialAnalyzer(const Program &P,
                                           ComponentialOptions Opts)
    : P(P), Opts(std::move(Opts)) {
  Ctx = std::make_unique<ConstraintContext>();
  Combined = std::make_unique<ConstraintSystem>(*Ctx);
  D = std::make_unique<Deriver>(P, *Ctx, Maps, this->Opts.Derive);
  // The Deriver constructor pre-allocates every top-level variable, so the
  // shared context and each job's private context agree on this prefix.
  SharedVarWatermark = Ctx->numVars();
  Stats.resize(P.Components.size());
}

ComponentialAnalyzer::~ComponentialAnalyzer() = default;

void ComponentialAnalyzer::computeCrossReferences() {
  // A top-level variable is part of a component's interface only if some
  // *other* component references it (§6.1: the externals are the
  // variables through which the component interacts with the rest of the
  // program). References are collected in one pass.
  for (uint32_t C = 0; C < P.Components.size(); ++C) {
    std::function<void(ExprId)> Walk = [&](ExprId Id) {
      const Expr &E = P.expr(Id);
      auto Note = [&](VarId V) {
        if (V == NoVar || !P.var(V).TopLevel)
          return;
        ReferencedBy[C].insert(V);
        if (P.var(V).Component != C)
          CrossReferenced.insert(V);
      };
      if (E.K == ExprKind::Var)
        Note(E.Var);
      if (E.K == ExprKind::Set || E.K == ExprKind::Invoke)
        Note(E.Var);
      for (ExprId Kid : E.Kids)
        Walk(Kid);
      for (const Binding &B : E.Bindings)
        Walk(B.Init);
    };
    for (const TopForm &F : P.Components[C].Forms)
      Walk(F.Body);
  }
  CrossRefsComputed = true;
}

std::vector<VarId>
ComponentialAnalyzer::externalVarIdsOf(uint32_t CompIdx) const {
  std::vector<VarId> Tops;
  std::unordered_set<VarId> Seen;
  const Component &C = P.Components[CompIdx];
  // Defines of this component that some other component references.
  for (const TopForm &F : C.Forms)
    if (F.DefVar != NoVar && CrossReferenced.count(F.DefVar) &&
        Seen.insert(F.DefVar).second)
      Tops.push_back(F.DefVar);
  // Foreign top-level variables this component references.
  if (auto It = ReferencedBy.find(CompIdx); It != ReferencedBy.end())
    for (VarId V : It->second)
      if (P.var(V).Component != CompIdx && Seen.insert(V).second)
        Tops.push_back(V);
  std::sort(Tops.begin(), Tops.end());
  return Tops;
}

std::vector<SetVar> ComponentialAnalyzer::externalsOf(uint32_t CompIdx) {
  if (!CrossRefsComputed && !P.Components.empty())
    computeCrossReferences();
  std::vector<SetVar> E;
  for (VarId V : externalVarIdsOf(CompIdx)) {
    if (Maps.VarVar[V] == NoSetVar)
      Maps.VarVar[V] = Ctx->freshVar();
    E.push_back(Maps.VarVar[V]);
  }
  return E;
}

VarId ComponentialAnalyzer::topLevelByName(Symbol Name) {
  if (!TopLevelIndexBuilt) {
    // First definition wins, matching the scan order replaced by this map.
    for (VarId V = 0; V < P.numVars(); ++V)
      if (P.var(V).TopLevel)
        TopLevelIndex.emplace(P.var(V).Name, V);
    TopLevelIndexBuilt = true;
  }
  auto It = TopLevelIndex.find(Name);
  return It == TopLevelIndex.end() ? NoVar : It->second;
}

std::string ComponentialAnalyzer::cachePathFor(const Component &C) const {
  std::string Name;
  for (char Ch : C.Name)
    Name.push_back(std::isalnum(static_cast<unsigned char>(Ch)) ? Ch : '_');
  return Opts.CacheDir + "/" + Name + ".scf";
}

bool ComponentialAnalyzer::loadFromText(uint32_t CompIdx,
                                        const std::string &Text,
                                        ComponentRunStats &CS) {
  ConstraintSystem Loaded(*Ctx);
  LoadedConstraints Info;
  std::string Error;
  // The loader interns into the program's symbol table; Program is shared
  // state of the analysis, so the const_cast is confined here.
  SymbolTable &Syms = const_cast<Program &>(P).Syms;
  if (!deserializeConstraints(Text, Syms, Loaded, Info, Error))
    return false;
  if (Info.SourceHash != hashSource(P.Components[CompIdx].SourceText))
    return false;

  // Re-link the file's external variables with this run's top-level
  // variables (two ε-constraints identify them).
  for (const auto &[Key, FileVar] : Info.Externals) {
    Symbol Name = Syms.lookup(Key);
    if (Name == InvalidSymbol)
      return false;
    VarId V = topLevelByName(Name);
    if (V == NoVar || Maps.VarVar[V] == NoSetVar)
      return false;
    SetVar Global = Maps.VarVar[V];
    Loaded.addVarUpperRaw(FileVar, Global);
    Loaded.addVarUpperRaw(Global, FileVar);
  }
  Combined->absorbRaw(Loaded);
  CS.ReusedFile = true;
  CS.SimplifiedConstraints = Loaded.size();
  CS.FileBytes = Text.size();
  return true;
}

ComponentialAnalyzer::ComponentWork
ComponentialAnalyzer::deriveIsolated(uint32_t CompIdx,
                                     bool AllowCache) const {
  ComponentWork W;
  const Component &C = P.Components[CompIdx];

  if (AllowCache && !Opts.CacheDir.empty()) {
    std::ifstream In(cachePathFor(C));
    if (In) {
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      std::string Text = Buffer.str();
      if (peekFileHash(Text) == hashSource(C.SourceText)) {
        W.CacheHit = true;
        W.CacheText = std::move(Text);
        return W;
      }
    }
  }

  // Step 1: derive and close the component system in a private context,
  // then simplify it with respect to the component's externals.
  W.Ctx = std::make_unique<ConstraintContext>();
  Deriver Private(P, *W.Ctx, W.Maps, Opts.Derive);
  assert(W.Ctx->numVars() == SharedVarWatermark &&
         "private contexts must allocate the top-level prefix identically");
  ConstraintSystem Local(*W.Ctx);
  Private.deriveComponent(CompIdx, Local);
  W.RawConstraints = Local.size();
  W.Closure = Local.stats();

  std::vector<VarId> ExternalVars = externalVarIdsOf(CompIdx);
  std::vector<SetVar> E;
  E.reserve(ExternalVars.size());
  for (VarId V : ExternalVars)
    E.push_back(W.Maps.VarVar[V]);

  W.Simplified = std::make_unique<ConstraintSystem>(*W.Ctx);
  if (Opts.Simplify == SimplifyAlgorithm::None) {
    // Local's counters move with it; don't double count.
    W.Closure = ClosureStats{};
    *W.Simplified = std::move(Local);
  } else {
    *W.Simplified = simplifyConstraints(Local, E, Opts.Simplify);
  }
  W.Closure.merge(W.Simplified->stats());

  // Save the constraint file for later runs.
  if (!Opts.CacheDir.empty()) {
    std::vector<std::pair<std::string, SetVar>> Externals;
    std::unordered_set<SetVar> SeenVars;
    for (VarId V : ExternalVars) {
      SetVar SV = W.Maps.VarVar[V];
      if (SeenVars.insert(SV).second)
        Externals.emplace_back(P.Syms.name(P.var(V).Name), SV);
    }
    W.FileText = serializeConstraints(*W.Simplified, Externals, P.Syms,
                                      hashSource(C.SourceText));
    std::ofstream Out(cachePathFor(C));
    Out << W.FileText;
  }
  return W;
}

void ComponentialAnalyzer::merge(uint32_t CompIdx, ComponentWork &W) {
  ComponentRunStats &CS = Stats[CompIdx];
  if (W.CacheHit) {
    if (loadFromText(CompIdx, W.CacheText, CS))
      return;
    // Matching hash but unusable body (corrupt file, unknown external):
    // fall back to a fresh derivation, skipping the cache.
    W = deriveIsolated(CompIdx, /*AllowCache=*/false);
  }

  // Renumber the private context into the shared one. Variables below the
  // watermark are the identically-allocated top-level prefix; the rest are
  // appended as one dense block, so the shared numbering is a pure
  // function of the program and the component order — independent of the
  // thread count.
  const SetVar NumPrivVars = W.Ctx->numVars();
  assert(NumPrivVars >= SharedVarWatermark);
  std::vector<SetVar> VarMap(NumPrivVars);
  for (SetVar V = 0; V < SharedVarWatermark; ++V)
    VarMap[V] = V;
  for (SetVar V = SharedVarWatermark; V < NumPrivVars; ++V)
    VarMap[V] = Ctx->freshVar();

  // Constants: basic kinds are pre-interned identically; per-site tags are
  // appended in private interning order. Struct tags are identified by
  // their StructId so that two components using the same structure agree
  // on one shared tag.
  const ConstantTable &PrivConsts = W.Ctx->Constants;
  const Constant NumBasics =
      static_cast<Constant>(ConstKind::VecTag) + 1;
  std::unordered_map<Constant, uint32_t> PrivStructOf;
  for (uint32_t S = 0; S < W.Maps.StructTagOf.size(); ++S)
    if (W.Maps.StructTagOf[S] != 0)
      PrivStructOf.emplace(W.Maps.StructTagOf[S], S);
  std::vector<Constant> ConstMap(PrivConsts.size());
  for (Constant C = 0; C < PrivConsts.size(); ++C) {
    if (C < NumBasics) {
      ConstMap[C] = C;
      continue;
    }
    const ConstantInfo &Info = PrivConsts.info(C);
    if (auto It = PrivStructOf.find(C); It != PrivStructOf.end()) {
      if (Maps.StructTagOf.size() <= It->second)
        Maps.StructTagOf.resize(P.Structs.size(), 0);
      Constant &Global = Maps.StructTagOf[It->second];
      if (Global == 0)
        Global =
            Ctx->Constants.makeTag(Info.K, Info.Arity, Info.Loc, Info.Label);
      ConstMap[C] = Global;
      continue;
    }
    ConstMap[C] =
        Ctx->Constants.makeTag(Info.K, Info.Arity, Info.Loc, Info.Label);
  }

  // Selectors: re-intern by name (idempotent), in private interning order.
  const SelectorTable &PrivSels = W.Ctx->Selectors;
  std::vector<Selector> SelMap(PrivSels.size());
  for (Selector S = 0; S < PrivSels.size(); ++S)
    SelMap[S] = Ctx->Selectors.intern(PrivSels.name(S), PrivSels.polarity(S),
                                      PrivSels.ownerKinds(S));

  // Fold the private side tables into the shared maps. Expression ids and
  // non-top-level variable ids are disjoint across components, so first
  // write wins without conflicts.
  for (ExprId E = 0; E < W.Maps.ExprVar.size(); ++E)
    if (W.Maps.ExprVar[E] != NoSetVar && Maps.ExprVar[E] == NoSetVar)
      Maps.ExprVar[E] = VarMap[W.Maps.ExprVar[E]];
  for (VarId V = 0; V < W.Maps.VarVar.size(); ++V)
    if (W.Maps.VarVar[V] != NoSetVar && Maps.VarVar[V] == NoSetVar)
      Maps.VarVar[V] = VarMap[W.Maps.VarVar[V]];
  for (const CheckSite &Check : W.Maps.Checks) {
    if (!Maps.CheckedSites.insert(Check.Site).second)
      continue;
    CheckSite Copy = Check;
    for (CheckScrutinee &Scr : Copy.Scrutinees) {
      Scr.V = VarMap[Scr.V];
      if (Scr.HasRequiredTag)
        Scr.RequiredTag = ConstMap[Scr.RequiredTag];
    }
    Maps.Checks.push_back(std::move(Copy));
  }
  for (const auto &[Site, Tag] : W.Maps.SiteTags)
    Maps.SiteTags.emplace(Site, ConstMap[Tag]);
  for (const auto &[Tag, Site] : W.Maps.TagSite)
    Maps.TagSite.emplace(ConstMap[Tag], Site);

  Combined->absorbMapped(*W.Simplified, VarMap, ConstMap, SelMap);
  Info.Closure.merge(W.Closure);
  CS.RawConstraints = W.RawConstraints;
  CS.SimplifiedConstraints = W.Simplified->size();
  CS.FileBytes = W.FileText.size();
  MaxConstraints = std::max(MaxConstraints, W.RawConstraints);
}

void ComponentialAnalyzer::run() {
  const uint32_t NumComponents =
      static_cast<uint32_t>(P.Components.size());
  if (NumComponents && !CrossRefsComputed)
    computeCrossReferences();
  if (!Opts.CacheDir.empty())
    std::filesystem::create_directories(Opts.CacheDir);

  unsigned Threads =
      Opts.Threads ? Opts.Threads : WorkerPool::defaultThreadCount();
  if (NumComponents)
    Threads = std::min(Threads, NumComponents);

  using Clock = std::chrono::steady_clock;
  auto MsSince = [](Clock::time_point From) {
    return std::chrono::duration<double, std::milli>(Clock::now() - From)
        .count();
  };

  // Step 1, fanned out: every component derives into a private context.
  auto DeriveStart = Clock::now();
  std::vector<ComponentWork> Work(NumComponents);
  if (Threads <= 1 || NumComponents <= 1) {
    for (uint32_t I = 0; I < NumComponents; ++I)
      Work[I] = deriveIsolated(I, /*AllowCache=*/true);
  } else {
    WorkerPool Pool(Threads);
    parallelFor(Pool, NumComponents, [&](uint32_t I) {
      Work[I] = deriveIsolated(I, /*AllowCache=*/true);
    });
  }
  Info.DeriveMs = MsSince(DeriveStart);

  // Step 2, sequential: combine in component order, then close.
  auto MergeStart = Clock::now();
  for (uint32_t I = 0; I < NumComponents; ++I)
    merge(I, Work[I]);
  Info.MergeMs = MsSince(MergeStart);
  auto CloseStart = Clock::now();
  Combined->close();
  Info.CloseMs = MsSince(CloseStart);
  Info.Closure.merge(Combined->stats());
  MaxConstraints = std::max(MaxConstraints, Combined->size());
}

std::unique_ptr<ConstraintSystem>
ComponentialAnalyzer::reconstruct(uint32_t CompIdx) {
  auto Full = std::make_unique<ConstraintSystem>(*Ctx);
  Full->absorbRaw(*Combined);
  Full->close();
  D->deriveComponent(CompIdx, *Full);
  Info.Closure.merge(Full->stats());
  MaxConstraints = std::max(MaxConstraints, Full->size());
  return Full;
}

AnalysisOptions spidey::polyAnalysisOptions(PolyMode Mode,
                                            SimplifyAlgorithm Alg) {
  AnalysisOptions Opts;
  Opts.Poly = Mode;
  if (Mode == PolyMode::Smart)
    Opts.Simplify = [Alg](const ConstraintSystem &S,
                          const std::vector<SetVar> &E) {
      return simplifyConstraints(S, E, Alg);
    };
  return Opts;
}
