//===-- componential/componential.cpp -------------------------*- C++ -*-===//

#include "componential/componential.h"

#include "componential/parallel.h"
#include "constraints/serialize.h"
#include "support/faultinject.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <unordered_set>

using namespace spidey;

ConstraintStore::~ConstraintStore() = default;

const char *spidey::cacheOutcomeName(CacheOutcome O) {
  switch (O) {
  case CacheOutcome::Disabled:
    return "disabled";
  case CacheOutcome::Hit:
    return "hit";
  case CacheOutcome::MissNoEntry:
    return "miss-no-entry";
  case CacheOutcome::MissStaleHash:
    return "miss-stale-hash";
  case CacheOutcome::MissOptions:
    return "miss-options";
  case CacheOutcome::MissExternals:
    return "miss-externals";
  case CacheOutcome::MissCorrupt:
    return "miss-corrupt";
  }
  return "?";
}

std::string spidey::componentialFingerprint(SimplifyAlgorithm Simplify,
                                            const AnalysisOptions &Derive) {
  std::ostringstream OS;
  OS << "v2;simplify=" << simplifyAlgorithmName(Simplify)
     << ";poly=" << static_cast<unsigned>(Derive.Poly)
     << ";ifsplit=" << Derive.IfSplitting
     << ";polytop=" << Derive.PolyTopLevel
     << ";precise=" << Derive.PreciseSchemaChecks << ";schema=";
  if (!Derive.Simplify)
    OS << "none";
  else if (!Derive.SimplifyTag.empty())
    OS << Derive.SimplifyTag;
  else
    OS << "custom";
  return OS.str();
}

std::string spidey::componentCacheFileName(std::string_view ComponentName) {
  std::string Name;
  for (char Ch : ComponentName)
    Name.push_back(std::isalnum(static_cast<unsigned char>(Ch)) ? Ch : '_');
  // The sanitized form is lossy (`a-b` and `a_b` collapse to one string),
  // so a short hash of the raw name keeps distinct components in distinct
  // files.
  return Name + "-" + hashSource(ComponentName).substr(0, 8) + ".scf";
}

std::string spidey::componentStoreKey(std::string_view SourceHash,
                                      std::string_view OptionsFingerprint,
                                      uint32_t FileSlot) {
  std::string Key;
  Key.reserve(SourceHash.size() + OptionsFingerprint.size() + 16);
  Key.append(SourceHash);
  Key.push_back('@');
  Key.append(OptionsFingerprint);
  Key.push_back('#');
  Key.append(std::to_string(FileSlot));
  return Key;
}

/// One component's step-1 result. Derivation output lives in a private
/// ConstraintContext (workers share no mutable state); merge() renumbers
/// it into the analyzer's shared context.
struct ComponentialAnalyzer::ComponentWork {
  std::unique_ptr<ConstraintContext> Ctx;
  AnalysisMaps Maps;
  std::unique_ptr<ConstraintSystem> Simplified;
  size_t RawConstraints = 0;
  ClosureStats Closure;  ///< derive + simplify solver counters
  DeriveStats Derive;    ///< schema/instantiation counters (fresh derives)
  std::string FileText;  ///< serialized constraint file (save path)
  std::string CacheText; ///< raw file text when the header validated
  bool CacheHit = false;
  /// The run's token cancelled before this component finished deriving;
  /// the partial results above are discarded, never merged or cached.
  bool TimedOut = false;
  CacheOutcome Outcome = CacheOutcome::Disabled;
};

namespace {

/// A constraint file's header, extracted without deserializing the body:
/// source hash, options fingerprint, and the external names the file was
/// simplified against. Workers use this to decide whether the file is
/// reusable; the full parse happens on the combining thread.
struct FilePeek {
  bool Ok = false;
  std::string Hash;
  std::string Options;
  std::vector<std::string> ExternalNames;
};

FilePeek peekFileHeader(const std::string &Text) {
  std::istringstream In(Text);
  FilePeek P;
  std::string Magic, Key;
  uint64_t Version = 0;
  if (!(In >> Magic >> Version) || Magic != "spidey-constraint-file" ||
      Version != 2)
    return P;
  if (!(In >> Key >> P.Hash) || Key != "hash")
    return P;
  if (!(In >> Key >> P.Options) || Key != "options")
    return P;
  uint64_t NumVars = 0, NumExternals = 0;
  if (!(In >> Key >> NumVars) || Key != "vars")
    return P;
  if (!(In >> Key >> NumExternals) || Key != "externals")
    return P;
  for (uint64_t I = 0; I < NumExternals; ++I) {
    std::string Name;
    uint64_t Local;
    if (!(In >> Name >> Local))
      return P;
    P.ExternalNames.push_back(std::move(Name));
  }
  std::sort(P.ExternalNames.begin(), P.ExternalNames.end());
  P.Ok = true;
  return P;
}

/// Writes \p Text to \p FinalPath atomically: stream into a uniquely-named
/// temp file in the same directory, then rename into place. A crashed or
/// concurrent writer can no longer leave a torn file at the final path —
/// readers see the old contents or the new, never a mix.
void writeFileAtomically(const std::string &FinalPath,
                         const std::string &Text) {
  static std::atomic<uint64_t> Counter{0};
  std::ostringstream Tmp;
  Tmp << FinalPath << ".tmp."
      << std::hash<std::thread::id>{}(std::this_thread::get_id()) << "."
      << Counter.fetch_add(1, std::memory_order_relaxed);
  const std::string TmpPath = Tmp.str();
  {
    std::ofstream Out(TmpPath, std::ios::binary | std::ios::trunc);
    Out << Text;
    Out.flush();
    if (!Out || faultAt("cache.write")) {
      std::error_code EC;
      std::filesystem::remove(TmpPath, EC);
      return;
    }
  }
  if (faultAt("cache.rename")) {
    // Injected crash window: the temp file was fully written but the
    // rename "never happened" — exactly what a process killed between the
    // two syscalls leaves behind. Readers must keep seeing the old entry.
    std::error_code EC;
    std::filesystem::remove(TmpPath, EC);
    return;
  }
  std::error_code EC;
  std::filesystem::rename(TmpPath, FinalPath, EC);
  if (EC)
    std::filesystem::remove(TmpPath, EC);
}

} // namespace

ComponentialAnalyzer::ComponentialAnalyzer(const Program &P,
                                           ComponentialOptions Opts)
    : P(P), Opts(std::move(Opts)) {
  OptionsFP =
      componentialFingerprint(this->Opts.Simplify, this->Opts.Derive);
  Ctx = std::make_unique<ConstraintContext>();
  Combined = std::make_unique<ConstraintSystem>(*Ctx);
  D = std::make_unique<Deriver>(P, *Ctx, Maps, this->Opts.Derive);
  // The Deriver constructor pre-allocates every top-level variable, so the
  // shared context and each job's private context agree on this prefix.
  SharedVarWatermark = Ctx->numVars();
  Stats.resize(P.Components.size());
}

ComponentialAnalyzer::~ComponentialAnalyzer() = default;

void ComponentialAnalyzer::computeCrossReferences() {
  // A top-level variable is part of a component's interface only if some
  // *other* component references it (§6.1: the externals are the
  // variables through which the component interacts with the rest of the
  // program). References are collected in one pass.
  for (uint32_t C = 0; C < P.Components.size(); ++C) {
    std::function<void(ExprId)> Walk = [&](ExprId Id) {
      const Expr &E = P.expr(Id);
      auto Note = [&](VarId V) {
        if (V == NoVar || !P.var(V).TopLevel)
          return;
        ReferencedBy[C].insert(V);
        if (P.var(V).Component != C)
          CrossReferenced.insert(V);
      };
      if (E.K == ExprKind::Var)
        Note(E.Var);
      if (E.K == ExprKind::Set || E.K == ExprKind::Invoke)
        Note(E.Var);
      for (ExprId Kid : E.Kids)
        Walk(Kid);
      for (const Binding &B : E.Bindings)
        Walk(B.Init);
    };
    for (const TopForm &F : P.Components[C].Forms)
      Walk(F.Body);
  }
  CrossRefsComputed = true;
}

std::vector<VarId>
ComponentialAnalyzer::externalVarIdsOf(uint32_t CompIdx) const {
  std::vector<VarId> Tops;
  std::unordered_set<VarId> Seen;
  const Component &C = P.Components[CompIdx];
  // Defines of this component that some other component references.
  for (const TopForm &F : C.Forms)
    if (F.DefVar != NoVar && CrossReferenced.count(F.DefVar) &&
        Seen.insert(F.DefVar).second)
      Tops.push_back(F.DefVar);
  // Foreign top-level variables this component references.
  if (auto It = ReferencedBy.find(CompIdx); It != ReferencedBy.end())
    for (VarId V : It->second)
      if (P.var(V).Component != CompIdx && Seen.insert(V).second)
        Tops.push_back(V);
  std::sort(Tops.begin(), Tops.end());
  return Tops;
}

std::vector<std::string>
ComponentialAnalyzer::externalNamesOf(uint32_t CompIdx) const {
  std::vector<std::string> Names;
  for (VarId V : externalVarIdsOf(CompIdx))
    Names.push_back(P.Syms.name(P.var(V).Name));
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  return Names;
}

std::vector<SetVar> ComponentialAnalyzer::externalsOf(uint32_t CompIdx) {
  if (!CrossRefsComputed && !P.Components.empty())
    computeCrossReferences();
  std::vector<SetVar> E;
  for (VarId V : externalVarIdsOf(CompIdx)) {
    if (Maps.VarVar[V] == NoSetVar)
      Maps.VarVar[V] = Ctx->freshVar();
    E.push_back(Maps.VarVar[V]);
  }
  return E;
}

VarId ComponentialAnalyzer::topLevelByName(Symbol Name) {
  if (!TopLevelIndexBuilt) {
    // First definition wins, matching the scan order replaced by this map.
    for (VarId V = 0; V < P.numVars(); ++V)
      if (P.var(V).TopLevel)
        TopLevelIndex.emplace(P.var(V).Name, V);
    TopLevelIndexBuilt = true;
  }
  auto It = TopLevelIndex.find(Name);
  return It == TopLevelIndex.end() ? NoVar : It->second;
}

std::string ComponentialAnalyzer::cachePathFor(const Component &C) const {
  return Opts.CacheDir + "/" + componentCacheFileName(C.Name);
}

bool ComponentialAnalyzer::loadFromText(uint32_t CompIdx,
                                        const std::string &Text,
                                        ComponentRunStats &CS) {
  ConstraintSystem Loaded(*Ctx);
  LoadedConstraints Info;
  std::string Error;
  // The loader interns into the program's symbol table; Program is shared
  // state of the analysis, so the const_cast is confined here.
  SymbolTable &Syms = const_cast<Program &>(P).Syms;
  if (faultAt("scf.parse"))
    return false; // injected: the file text fails to deserialize
  if (!deserializeConstraints(Text, Syms, Loaded, Info, Error))
    return false;
  if (Info.SourceHash != hashSource(P.Components[CompIdx].SourceText))
    return false;
  if (Info.OptionsFingerprint != OptionsFP)
    return false;

  // Re-link the file's external variables with this run's top-level
  // variables (two ε-constraints identify them).
  for (const auto &[Key, FileVar] : Info.Externals) {
    Symbol Name = Syms.lookup(Key);
    if (Name == InvalidSymbol)
      return false;
    VarId V = topLevelByName(Name);
    if (V == NoVar || Maps.VarVar[V] == NoSetVar)
      return false;
    SetVar Global = Maps.VarVar[V];
    Loaded.addVarUpperRaw(FileVar, Global);
    Loaded.addVarUpperRaw(Global, FileVar);
  }
  Combined->absorbRaw(Loaded);
  CS.ReusedFile = true;
  CS.SimplifiedConstraints = Loaded.size();
  CS.FileBytes = Text.size();
  return true;
}

ComponentialAnalyzer::ComponentWork
ComponentialAnalyzer::deriveIsolated(uint32_t CompIdx,
                                     bool AllowCache) const {
  ComponentWork W;
  const Component &C = P.Components[CompIdx];
  const bool CacheConfigured = Opts.MemStore || !Opts.CacheDir.empty();

  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    W.TimedOut = true;
    return W;
  }

  if (AllowCache && CacheConfigured) {
    // The disk cache stays keyed by component name (a readable warm-start
    // directory); the in-memory store is content-addressed so concurrent
    // sessions over different programs share identical library images.
    const std::string DiskKey = componentCacheFileName(C.Name);
    const std::string MemKey =
        componentStoreKey(hashSource(C.SourceText), OptionsFP, CompIdx);
    std::optional<std::string> Text;
    bool FromDisk = false;
    if (Opts.MemStore)
      Text = Opts.MemStore->load(MemKey);
    if (!Text && !Opts.CacheDir.empty() && !faultAt("cache.load")) {
      std::ifstream In(Opts.CacheDir + "/" + DiskKey, std::ios::binary);
      if (In) {
        std::stringstream Buffer;
        Buffer << In.rdbuf();
        Text = Buffer.str();
        FromDisk = true;
      }
    }
    if (!Text) {
      W.Outcome = CacheOutcome::MissNoEntry;
    } else {
      // A file is reusable only if the component's source is unchanged,
      // it was produced under the same analysis options, and it was
      // simplified against the same interface. The externals check is
      // what invalidates dependents: when *another* component starts or
      // stops referencing one of this component's definitions, this
      // component's external set changes and its old file — which may
      // have simplified the newly-needed definition away — is rejected.
      FilePeek Peek = peekFileHeader(*Text);
      if (!Peek.Ok)
        W.Outcome = CacheOutcome::MissCorrupt;
      else if (Peek.Hash != hashSource(C.SourceText))
        W.Outcome = CacheOutcome::MissStaleHash;
      else if (Peek.Options != OptionsFP)
        W.Outcome = CacheOutcome::MissOptions;
      else if (Peek.ExternalNames != externalNamesOf(CompIdx))
        W.Outcome = CacheOutcome::MissExternals;
      else {
        W.Outcome = CacheOutcome::Hit;
        W.CacheHit = true;
        W.CacheText = std::move(*Text);
        // Crash recovery: a hit served from the disk cache refills the
        // in-memory store, so a daemon whose resident store was wiped
        // (restart, eviction, injected fault) warms back up from
        // --cache-dir instead of re-deriving the world.
        if (FromDisk && Opts.MemStore)
          Opts.MemStore->store(MemKey, W.CacheText);
        return W;
      }
    }
  } else if (CacheConfigured) {
    W.Outcome = CacheOutcome::MissCorrupt; // retry after an unusable hit
  }

  // Step 1: derive and close the component system in a private context,
  // then simplify it with respect to the component's externals.
  W.Ctx = std::make_unique<ConstraintContext>();
  Deriver Private(P, *W.Ctx, W.Maps, Opts.Derive);
  assert(W.Ctx->numVars() == SharedVarWatermark &&
         "private contexts must allocate the top-level prefix identically");
  ConstraintSystem Local(*W.Ctx);
  Local.setCancel(Opts.Cancel);
  Private.deriveComponent(CompIdx, Local);
  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    // Deadline or budget fired mid-derivation: Local is partially closed,
    // so nothing of it may be simplified, merged, or written to a cache.
    W.TimedOut = true;
    return W;
  }
  W.RawConstraints = Local.size();
  W.Closure = Local.stats();
  W.Derive = Private.stats();

  std::vector<VarId> ExternalVars = externalVarIdsOf(CompIdx);
  std::vector<SetVar> E;
  E.reserve(ExternalVars.size());
  for (VarId V : ExternalVars)
    E.push_back(W.Maps.VarVar[V]);

  W.Simplified = std::make_unique<ConstraintSystem>(*W.Ctx);
  if (Opts.Simplify == SimplifyAlgorithm::None) {
    // Local's counters move with it; don't double count.
    W.Closure = ClosureStats{};
    *W.Simplified = std::move(Local);
  } else {
    *W.Simplified = simplifyConstraints(Local, E, Opts.Simplify);
  }
  W.Closure.merge(W.Simplified->stats());
  if (Opts.Cancel && Opts.Cancel->cancelled()) {
    W.TimedOut = true;
    return W;
  }

  // Serialize the constraint file for later runs (and, under
  // MergeViaFiles, for this run's own canonical merge).
  if (CacheConfigured || Opts.MergeViaFiles) {
    std::vector<std::pair<std::string, SetVar>> Externals;
    std::unordered_set<SetVar> SeenVars;
    for (VarId V : ExternalVars) {
      SetVar SV = W.Maps.VarVar[V];
      if (SeenVars.insert(SV).second)
        Externals.emplace_back(P.Syms.name(P.var(V).Name), SV);
    }
    W.FileText = serializeConstraints(*W.Simplified, Externals, P.Syms,
                                      hashSource(C.SourceText), OptionsFP);
    if (!Opts.CacheDir.empty())
      writeFileAtomically(cachePathFor(C), W.FileText);
    if (Opts.MemStore)
      Opts.MemStore->store(
          componentStoreKey(hashSource(C.SourceText), OptionsFP, CompIdx),
          W.FileText);
  }
  return W;
}

void ComponentialAnalyzer::merge(uint32_t CompIdx, ComponentWork &W) {
  ComponentRunStats &CS = Stats[CompIdx];
  CS.Cache = W.Outcome;
  if (W.TimedOut) {
    CS.TimedOut = true;
    Info.Cancelled = true;
    return;
  }
  if (W.CacheHit) {
    if (loadFromText(CompIdx, W.CacheText, CS))
      return;
    // Matching header but unusable body (corrupt file, unknown external):
    // fall back to a fresh derivation, skipping the cache.
    W = deriveIsolated(CompIdx, /*AllowCache=*/false);
    CS.Cache = W.Outcome;
    if (W.TimedOut) {
      CS.TimedOut = true;
      Info.Cancelled = true;
      return;
    }
  }

  // Schema/instantiation counters from the component's private Deriver
  // (zeros for a component served from the cache — nothing was derived).
  Info.Derive.merge(W.Derive);

  if (Opts.MergeViaFiles && !W.FileText.empty() &&
      loadFromText(CompIdx, W.FileText, CS)) {
    // Merged through the component's own serialized text, exactly as a
    // later cache hit would be — the combined system stays a pure
    // function of the per-component file texts.
    CS.ReusedFile = false;
    CS.RawConstraints = W.RawConstraints;
    CS.FileBytes = W.FileText.size();
    Info.Closure.merge(W.Closure);
    MaxConstraints = std::max(MaxConstraints, W.RawConstraints);
    return;
  }
  if (Opts.MergeViaFiles)
    Info.MergedOffText = true; // identity guarantee void for this run

  // Renumber the private context into the shared one. Variables below the
  // watermark are the identically-allocated top-level prefix; the rest are
  // appended as one dense block, so the shared numbering is a pure
  // function of the program and the component order — independent of the
  // thread count.
  const SetVar NumPrivVars = W.Ctx->numVars();
  assert(NumPrivVars >= SharedVarWatermark);
  std::vector<SetVar> VarMap(NumPrivVars);
  for (SetVar V = 0; V < SharedVarWatermark; ++V)
    VarMap[V] = V;
  for (SetVar V = SharedVarWatermark; V < NumPrivVars; ++V)
    VarMap[V] = Ctx->freshVar();

  // Constants: basic kinds are pre-interned identically; per-site tags are
  // appended in private interning order. Struct tags are identified by
  // their StructId so that two components using the same structure agree
  // on one shared tag.
  const ConstantTable &PrivConsts = W.Ctx->Constants;
  const Constant NumBasics =
      static_cast<Constant>(ConstKind::VecTag) + 1;
  std::unordered_map<Constant, uint32_t> PrivStructOf;
  for (uint32_t S = 0; S < W.Maps.StructTagOf.size(); ++S)
    if (W.Maps.StructTagOf[S] != 0)
      PrivStructOf.emplace(W.Maps.StructTagOf[S], S);
  std::vector<Constant> ConstMap(PrivConsts.size());
  for (Constant C = 0; C < PrivConsts.size(); ++C) {
    if (C < NumBasics) {
      ConstMap[C] = C;
      continue;
    }
    const ConstantInfo &Info = PrivConsts.info(C);
    if (auto It = PrivStructOf.find(C); It != PrivStructOf.end()) {
      if (Maps.StructTagOf.size() <= It->second)
        Maps.StructTagOf.resize(P.Structs.size(), 0);
      Constant &Global = Maps.StructTagOf[It->second];
      if (Global == 0)
        Global =
            Ctx->Constants.makeTag(Info.K, Info.Arity, Info.Loc, Info.Label);
      ConstMap[C] = Global;
      continue;
    }
    ConstMap[C] =
        Ctx->Constants.makeTag(Info.K, Info.Arity, Info.Loc, Info.Label);
  }

  // Selectors: re-intern by name (idempotent), in private interning order.
  const SelectorTable &PrivSels = W.Ctx->Selectors;
  std::vector<Selector> SelMap(PrivSels.size());
  for (Selector S = 0; S < PrivSels.size(); ++S)
    SelMap[S] = Ctx->Selectors.intern(PrivSels.name(S), PrivSels.polarity(S),
                                      PrivSels.ownerKinds(S));

  // Fold the private side tables into the shared maps. Expression ids and
  // non-top-level variable ids are disjoint across components, so first
  // write wins without conflicts.
  for (ExprId E = 0; E < W.Maps.ExprVar.size(); ++E)
    if (W.Maps.ExprVar[E] != NoSetVar && Maps.ExprVar[E] == NoSetVar)
      Maps.ExprVar[E] = VarMap[W.Maps.ExprVar[E]];
  for (VarId V = 0; V < W.Maps.VarVar.size(); ++V)
    if (W.Maps.VarVar[V] != NoSetVar && Maps.VarVar[V] == NoSetVar)
      Maps.VarVar[V] = VarMap[W.Maps.VarVar[V]];
  for (const CheckSite &Check : W.Maps.Checks) {
    if (!Maps.CheckedSites.insert(Check.Site).second)
      continue;
    CheckSite Copy = Check;
    for (CheckScrutinee &Scr : Copy.Scrutinees) {
      Scr.V = VarMap[Scr.V];
      if (Scr.HasRequiredTag)
        Scr.RequiredTag = ConstMap[Scr.RequiredTag];
    }
    Maps.Checks.push_back(std::move(Copy));
  }
  for (const auto &[Site, Tag] : W.Maps.SiteTags)
    Maps.SiteTags.emplace(Site, ConstMap[Tag]);
  for (const auto &[Tag, Site] : W.Maps.TagSite)
    Maps.TagSite.emplace(ConstMap[Tag], Site);

  Combined->absorbMapped(*W.Simplified, VarMap, ConstMap, SelMap);
  Info.Closure.merge(W.Closure);
  CS.RawConstraints = W.RawConstraints;
  CS.SimplifiedConstraints = W.Simplified->size();
  CS.FileBytes = W.FileText.size();
  MaxConstraints = std::max(MaxConstraints, W.RawConstraints);
}

void ComponentialAnalyzer::run() {
  const uint32_t NumComponents =
      static_cast<uint32_t>(P.Components.size());
  if (NumComponents && !CrossRefsComputed)
    computeCrossReferences();
  if (!Opts.CacheDir.empty())
    std::filesystem::create_directories(Opts.CacheDir);

  const unsigned Threads =
      Opts.Threads ? Opts.Threads : WorkerPool::defaultThreadCount();
  unsigned Step1Threads = Threads;
  if (NumComponents)
    Step1Threads = std::min(Step1Threads, NumComponents);
  const unsigned CloseShards =
      Opts.ParallelClose ? (Opts.CloseShards ? Opts.CloseShards : Threads)
                         : 0;
  const unsigned CloseThreads =
      CloseShards ? std::min(Threads, CloseShards) : 1;

  // One pool serves both the step-1 fan-out and the sharded close
  // rounds, sized for whichever phase needs more workers.
  std::unique_ptr<WorkerPool> Pool;
  if ((Step1Threads > 1 && NumComponents > 1) || CloseThreads > 1)
    Pool = std::make_unique<WorkerPool>(std::max(Step1Threads, CloseThreads));

  using Clock = std::chrono::steady_clock;
  auto MsSince = [](Clock::time_point From) {
    return std::chrono::duration<double, std::milli>(Clock::now() - From)
        .count();
  };

  // Step 1, fanned out: every component derives into a private context.
  auto DeriveStart = Clock::now();
  std::vector<ComponentWork> Work(NumComponents);
  if (!Pool || Step1Threads <= 1 || NumComponents <= 1) {
    for (uint32_t I = 0; I < NumComponents; ++I)
      Work[I] = deriveIsolated(I, /*AllowCache=*/true);
  } else {
    parallelFor(*Pool, NumComponents, [&](uint32_t I) {
      Work[I] = deriveIsolated(I, /*AllowCache=*/true);
    });
  }
  Info.DeriveMs = MsSince(DeriveStart);

  // Step 2, sequential: combine in component order, then close — either
  // the sequential engine or the sharded parallel fixpoint over the same
  // worker pool; the closed system is byte-identical either way.
  auto MergeStart = Clock::now();
  for (uint32_t I = 0; I < NumComponents; ++I)
    merge(I, Work[I]);
  Info.MergeMs = MsSince(MergeStart);
  auto CloseStart = Clock::now();
  Combined->setCancel(Opts.Cancel);
  if (CloseShards && Pool && CloseThreads > 1) {
    PoolRunner Runner(*Pool);
    Combined->closeSharded(CloseShards, &Runner);
  } else if (CloseShards) {
    Combined->closeSharded(CloseShards, nullptr);
  } else {
    Combined->close();
  }
  Info.CloseMs = MsSince(CloseStart);
  if (Combined->closureCancelled()) {
    Info.Cancelled = true;
    Info.CloseConverged = false;
  }
  Info.Closure.merge(Combined->stats());
  MaxConstraints = std::max(MaxConstraints, Combined->size());
}

std::unique_ptr<ConstraintSystem>
ComponentialAnalyzer::reconstruct(uint32_t CompIdx) {
  auto Full = std::make_unique<ConstraintSystem>(*Ctx);
  Full->setCancel(Opts.Cancel);
  Full->absorbRaw(*Combined);
  Full->close();
  D->deriveComponent(CompIdx, *Full);
  Info.Closure.merge(Full->stats());
  MaxConstraints = std::max(MaxConstraints, Full->size());
  return Full;
}

AnalysisOptions spidey::polyAnalysisOptions(PolyMode Mode,
                                            SimplifyAlgorithm Alg) {
  AnalysisOptions Opts;
  Opts.Poly = Mode;
  if (Mode == PolyMode::Smart) {
    Opts.Simplify = [Alg](const ConstraintSystem &S,
                          const std::vector<SetVar> &E) {
      return simplifyConstraints(S, E, Alg);
    };
    Opts.SimplifyTag = simplifyAlgorithmName(Alg);
  }
  return Opts;
}
