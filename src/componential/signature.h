//===-- componential/signature.h - Signature checking (§10.4) --*- C++ -*-===//
///
/// \file
/// The (approx) rule of §10.4: a programmer-provided *signature* — a
/// constraint system describing a component's interface — may replace the
/// component's derived constraints in the rest of the analysis, provided
/// the signature entails the derived system with respect to the
/// component's external variables:
///
///       Γ ⊢ M : α, S₁        S₂ ⊨E S₁
///       ------------------------------ (approx)
///             Γ ⊢ M : α, S₂
///
/// Since every solution of S₂ is then a solution of S₁, and S₁'s solutions
/// soundly describe M (Thm 2.6.4), analysis results computed from S₂
/// conservatively approximate M. This allows a component to be statically
/// debugged against its signature without access to its source.
///
/// The entailment premise is decided by the complete procedure of §6.3.4.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_COMPONENTIAL_SIGNATURE_H
#define SPIDEY_COMPONENTIAL_SIGNATURE_H

#include "rtg/entail.h"

namespace spidey {

/// Result of checking a signature against a component.
struct SignatureCheck {
  Decision Entails = Decision::Unknown;
  bool ok() const { return Entails == Decision::Yes; }
};

/// Verifies that \p Signature may stand in for \p Derived on the external
/// variables \p E (both systems must be closed under Θ and share one
/// context). Yes means the substitution is sound.
inline SignatureCheck verifySignature(const ConstraintSystem &Signature,
                                      const ConstraintSystem &Derived,
                                      const std::vector<SetVar> &E,
                                      EntailOptions Opts = {}) {
  return SignatureCheck{entails(Signature, Derived, E, Opts)};
}

} // namespace spidey

#endif // SPIDEY_COMPONENTIAL_SIGNATURE_H
