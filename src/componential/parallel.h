//===-- componential/parallel.h - Worker-pool scheduler --------*- C++ -*-===//
///
/// \file
/// A small fixed-size worker pool for the data-parallel step 1 of the
/// componential analysis (§7.1): each component's derive → close →
/// simplify → serialize chain is independent of every other component's,
/// so the chains fan out across N threads while the sequential combine +
/// global close (step 2) stays on the calling thread.
///
/// The pool is deliberately minimal: submit() enqueues a job, wait()
/// blocks until every submitted job has finished. Jobs must not touch
/// shared mutable state (the componential analyzer gives each job a
/// private ConstraintContext); the first exception thrown by any job is
/// captured and rethrown from wait().
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_COMPONENTIAL_PARALLEL_H
#define SPIDEY_COMPONENTIAL_PARALLEL_H

#include "constraints/constraint_system.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spidey {

class WorkerPool {
public:
  /// Spawns \p ThreadCount workers (at least 1).
  explicit WorkerPool(unsigned ThreadCount);

  /// Waits for pending jobs, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues a job. Jobs may be submitted from the owning thread only.
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has completed. Rethrows the first
  /// exception raised by a job, if any.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// hardware_concurrency with a floor of 1 (the standard permits 0).
  static unsigned defaultThreadCount();

private:
  void workerMain();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex M;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  size_t Unfinished = 0; ///< queued + running jobs
  bool Stopping = false;
  std::exception_ptr FirstError;
};

/// Runs Fn(0..N-1) across the pool and waits; Fn(I) must only touch
/// state private to iteration I.
template <typename Fn>
void parallelFor(WorkerPool &Pool, uint32_t N, Fn &&F) {
  for (uint32_t I = 0; I < N; ++I)
    Pool.submit([&F, I] { F(I); });
  Pool.wait();
}

/// Adapts the worker pool to the constraints layer's ParallelRunner so
/// ConstraintSystem::closeSharded can fan its shard rounds out over the
/// same pool that ran the per-component derive step (the constraints
/// library cannot link against this one, hence the interface).
class PoolRunner final : public ParallelRunner {
public:
  explicit PoolRunner(WorkerPool &Pool) : Pool(Pool) {}
  void run(uint32_t N, const std::function<void(uint32_t)> &Fn) override {
    parallelFor(Pool, N, Fn);
  }

private:
  WorkerPool &Pool;
};

} // namespace spidey

#endif // SPIDEY_COMPONENTIAL_PARALLEL_H
