//===-- componential/componential.h - Componential SBA ---------*- C++ -*-===//
///
/// \file
/// Componential set-based analysis (§7.1). Programs are processed in three
/// steps:
///
///  1. For each component, derive its constraint system and simplify it
///     with respect to the component's external variables (its top-level
///     definitions plus the foreign top-level variables it references),
///     excluding expression labels. The simplified system is saved to a
///     constraint file keyed by the component's source hash; unchanged
///     components are loaded from their files instead of re-derived.
///  2. Combine the simplified systems and close the union under Θ,
///     propagating data flow between components.
///  3. On demand, reconstruct full precision for the component the
///     programmer is focusing on by re-deriving it in full against the
///     combined system.
///
/// Step 1 is embarrassingly parallel and fans out across a worker pool
/// (ComponentialOptions::Threads): each component derives into a *private*
/// ConstraintContext, and the sequential combine of step 2 renumbers each
/// private system's variables, constants, and selectors into the shared
/// context in component order. The renumbering is a pure function of the
/// program, so the combined system is bit-identical for every thread
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_COMPONENTIAL_COMPONENTIAL_H
#define SPIDEY_COMPONENTIAL_COMPONENTIAL_H

#include "analysis/analysis.h"
#include "simplify/simplify.h"
#include "support/cancel.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <string>
#include <vector>

namespace spidey {

/// A keyed store of constraint-file texts layered in front of the on-disk
/// cache directory (the serve daemon keeps one in memory so warm edits
/// never touch the filesystem). Keys are content-addressed
/// (componentStoreKey: source hash + options fingerprint + file slot), so
/// one store can back many concurrent sessions over different programs —
/// identical components share one entry. Implementations must be
/// thread-safe: the step-1 workers of every session probe and fill the
/// store concurrently.
class ConstraintStore {
public:
  virtual ~ConstraintStore();
  virtual std::optional<std::string> load(const std::string &Key) = 0;
  virtual void store(const std::string &Key, const std::string &Text) = 0;
};

struct ComponentialOptions {
  /// Simplification algorithm for step 1 (None reproduces the "standard"
  /// whole-program analysis cost profile while keeping the flow).
  SimplifyAlgorithm Simplify = SimplifyAlgorithm::EpsilonRemoval;
  /// Directory for constraint files; empty disables the file cache.
  std::string CacheDir;
  /// Optional in-memory constraint-file store, probed before CacheDir and
  /// filled alongside it. Not owned.
  ConstraintStore *MemStore = nullptr;
  /// Merge every component into the combined system through its
  /// serialized constraint-file text, whether it was a cache hit or a
  /// fresh derivation. The combined system then is a pure function of the
  /// per-component file texts, so a warm re-analysis that rederives only
  /// edited components is byte-identical to a cold run at the same
  /// options (the serve loop relies on this).
  bool MergeViaFiles = false;
  /// Derivation options (polymorphism mode etc.).
  AnalysisOptions Derive;
  /// Worker threads for the per-component step 1. 0 selects
  /// hardware_concurrency; 1 runs the same code path inline (the combined
  /// result is identical for every value).
  unsigned Threads = 0;
  /// Close the merged whole-program system with the sharded parallel
  /// fixpoint (ConstraintSystem::closeSharded, DESIGN.md §11) instead of
  /// the sequential engine. The combined system — and every byte of its
  /// serialized output — is identical either way; off runs the current
  /// sequential close() verbatim.
  bool ParallelClose = false;
  /// Shard count for ParallelClose. 0 picks one shard per worker thread;
  /// 1 is exactly the sequential engine. The shard count changes only
  /// how the close-phase work is partitioned, never its result.
  unsigned CloseShards = 0;
  /// Optional cancellation token (not owned): derive, merge, and close
  /// poll it, and a cancelled run reports which components never
  /// converged (ComponentRunStats::TimedOut, ComponentialRunInfo::
  /// Cancelled). Results of a cancelled run are partial and are never
  /// written to the cache.
  CancelToken *Cancel = nullptr;
};

/// How a component's constraint-file cache probe went.
enum class CacheOutcome : uint8_t {
  Disabled,      ///< no cache configured (or probe skipped)
  Hit,           ///< valid file: hash, options, and externals all match
  MissNoEntry,   ///< nothing stored under the component's key
  MissStaleHash, ///< the component's source changed
  MissOptions,   ///< file was produced under different analysis options
  MissExternals, ///< the component's interface (external set) changed
  MissCorrupt,   ///< unreadable header or body
};

const char *cacheOutcomeName(CacheOutcome O);

/// Per-component bookkeeping for the experiments of §7.2.
struct ComponentRunStats {
  bool ReusedFile = false;
  /// The run's token cancelled before this component's derivation (or
  /// its merge) completed; its constraints are missing from the combined
  /// system.
  bool TimedOut = false;
  CacheOutcome Cache = CacheOutcome::Disabled;
  size_t RawConstraints = 0;        ///< closed, before simplification
  size_t SimplifiedConstraints = 0; ///< saved to the constraint file
  size_t FileBytes = 0;
};

/// The fingerprint folded into every constraint file's header: a file is
/// reusable only by a run whose SimplifyAlgorithm and derivation options
/// both match (a cache dir populated under `--simplify none` must not be
/// reused by a `--simplify hopcroft` run). Whitespace-free.
std::string componentialFingerprint(SimplifyAlgorithm Simplify,
                                    const AnalysisOptions &Derive);

/// The cache file name for a component: a sanitized form of the name for
/// readability plus a short hash of the raw name, so components whose
/// names differ only in non-alphanumeric characters (`a-b` vs `a_b`) get
/// distinct files.
std::string componentCacheFileName(std::string_view ComponentName);

/// The content-addressed key a component's serialized image is filed
/// under in a ConstraintStore: source hash + options fingerprint + the
/// component's file slot. The serialized text is a pure function of these
/// three (plus the external set, which the loader validates from the
/// header): variables are renumbered file-locally, but constant locations
/// embed the component's file index, so the slot must be part of the
/// identity. Keying on content rather than on the component *name* is
/// what lets concurrent serve sessions analyzing different programs share
/// one store — identical library files hit each other's derivations, and
/// same-named files with different text never thrash one entry.
std::string componentStoreKey(std::string_view SourceHash,
                              std::string_view OptionsFingerprint,
                              uint32_t FileSlot);

/// Whole-run solver telemetry: ClosureStats aggregated across every
/// per-component system, the simplifier's systems, the combined close, and
/// any reconstructs, plus per-phase wall times. Valid after run().
struct ComponentialRunInfo {
  ClosureStats Closure;
  /// Aggregated schema/instantiation counters of the step-1 private
  /// derivers (components served from the cache contribute nothing).
  DeriveStats Derive;
  double DeriveMs = 0; ///< step 1 (parallel fan-out), wall time
  double MergeMs = 0;  ///< step 2 renumbering combine
  double CloseMs = 0;  ///< closing the combined system
  /// The run's CancelToken fired: the combined system is partial (some
  /// components' stats carry TimedOut, and/or the final close stopped
  /// short of the fixpoint — see CloseConverged).
  bool Cancelled = false;
  /// False when the step-2 combined close was itself cut short.
  bool CloseConverged = true;
  /// A MergeViaFiles run had to merge at least one component through the
  /// renumbering path because its serialized text would not deserialize
  /// (an injected or real parse fault on a fresh serialization). The
  /// combined system is correct, but it is no longer a pure function of
  /// the file texts, so byte-comparisons against a cold run are void —
  /// the serve loop keeps the session dirty and rebuilds next pass.
  bool MergedOffText = false;
};

/// Drives the three-step componential analysis over one parsed program.
class ComponentialAnalyzer {
public:
  ComponentialAnalyzer(const Program &P, ComponentialOptions Opts);
  ~ComponentialAnalyzer();

  /// Steps 1 and 2.
  void run();

  /// The combined, closed constraint system (valid after run()).
  const ConstraintSystem &combined() const { return *Combined; }
  ConstraintContext &context() { return *Ctx; }

  /// Step 3: full-precision system for one component: the combined system
  /// plus the component's complete derivation, closed. Label variables for
  /// the component's expressions are valid in the result via maps().
  std::unique_ptr<ConstraintSystem> reconstruct(uint32_t CompIdx);

  const AnalysisMaps &maps() const { return Maps; }
  const std::vector<ComponentRunStats> &componentStats() const {
    return Stats;
  }

  /// The componentialFingerprint of this run's options — the same token
  /// folded into every constraint-file header. The demand-driven query
  /// layer keys its memoized per-component verdicts on it.
  const std::string &optionsFingerprint() const { return OptionsFP; }

  /// The largest constraint system materialized during the run (the
  /// "maximum size" column of fig. 7.1).
  size_t maxConstraints() const { return MaxConstraints; }

  /// Aggregated solver telemetry and phase wall times (valid after run();
  /// reconstruct() folds its closure work in as it happens).
  const ComponentialRunInfo &runInfo() const { return Info; }

  /// The external set variables of a component: its own top-level defines
  /// plus every foreign top-level variable it references.
  std::vector<SetVar> externalsOf(uint32_t CompIdx);

private:
  /// Everything one component's step-1 job produces. Derivation results
  /// live in the job's private context until merge() renumbers them.
  struct ComponentWork;

  void computeCrossReferences();
  std::string cachePathFor(const Component &C) const;

  /// The VarIds behind externalsOf, sorted ascending (deterministic).
  std::vector<VarId> externalVarIdsOf(uint32_t CompIdx) const;

  /// The external variable names of a component, sorted and deduplicated —
  /// the interface a cached constraint file must have been simplified
  /// against to be reusable.
  std::vector<std::string> externalNamesOf(uint32_t CompIdx) const;

  /// Step-1 worker body: derive+close+simplify+serialize component
  /// \p CompIdx into a private context (or detect a reusable constraint
  /// file). Reads only shared-immutable state; runs on any thread.
  ComponentWork deriveIsolated(uint32_t CompIdx, bool AllowCache) const;

  /// Sequential combine of one component's work, in component order:
  /// renumbers private vars/constants/selectors into the shared context
  /// and absorbs the simplified system into Combined.
  void merge(uint32_t CompIdx, ComponentWork &W);

  /// Deserializes a constraint-file text into the shared context,
  /// re-links its externals with this run's top-level variables, and
  /// absorbs it into Combined; returns false if unusable.
  bool loadFromText(uint32_t CompIdx, const std::string &Text,
                    ComponentRunStats &CS);

  /// Lazily built Name -> VarId index over top-level defines (first
  /// definition wins, matching lookup order).
  VarId topLevelByName(Symbol Name);

  const Program &P;
  ComponentialOptions Opts;
  std::string OptionsFP; ///< componentialFingerprint of Opts
  std::unique_ptr<ConstraintContext> Ctx;
  std::unique_ptr<ConstraintSystem> Combined;
  AnalysisMaps Maps;
  std::unique_ptr<Deriver> D;
  std::vector<ComponentRunStats> Stats;
  ComponentialRunInfo Info;
  size_t MaxConstraints = 0;
  /// Shared set-variable prefix: the top-level variables every context
  /// (shared and private) allocates identically before any derivation.
  SetVar SharedVarWatermark = 0;
  std::unordered_map<uint32_t, std::unordered_set<VarId>> ReferencedBy;
  std::unordered_set<VarId> CrossReferenced;
  bool CrossRefsComputed = false;
  std::unordered_map<Symbol, VarId> TopLevelIndex;
  bool TopLevelIndexBuilt = false;
};

/// Builds AnalysisOptions for the polymorphic analyses of §7.4/fig. 7.6:
/// "copy" duplicates raw schemas, the "smart" variants simplify the schema
/// once with the given algorithm before duplicating.
AnalysisOptions polyAnalysisOptions(PolyMode Mode, SimplifyAlgorithm Alg);

} // namespace spidey

#endif // SPIDEY_COMPONENTIAL_COMPONENTIAL_H
