//===-- componential/componential.h - Componential SBA ---------*- C++ -*-===//
///
/// \file
/// Componential set-based analysis (§7.1). Programs are processed in three
/// steps:
///
///  1. For each component, derive its constraint system and simplify it
///     with respect to the component's external variables (its top-level
///     definitions plus the foreign top-level variables it references),
///     excluding expression labels. The simplified system is saved to a
///     constraint file keyed by the component's source hash; unchanged
///     components are loaded from their files instead of re-derived.
///  2. Combine the simplified systems and close the union under Θ,
///     propagating data flow between components.
///  3. On demand, reconstruct full precision for the component the
///     programmer is focusing on by re-deriving it in full against the
///     combined system.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_COMPONENTIAL_COMPONENTIAL_H
#define SPIDEY_COMPONENTIAL_COMPONENTIAL_H

#include "analysis/analysis.h"
#include "simplify/simplify.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <string>
#include <vector>

namespace spidey {

struct ComponentialOptions {
  /// Simplification algorithm for step 1 (None reproduces the "standard"
  /// whole-program analysis cost profile while keeping the flow).
  SimplifyAlgorithm Simplify = SimplifyAlgorithm::EpsilonRemoval;
  /// Directory for constraint files; empty disables the file cache.
  std::string CacheDir;
  /// Derivation options (polymorphism mode etc.).
  AnalysisOptions Derive;
};

/// Per-component bookkeeping for the experiments of §7.2.
struct ComponentRunStats {
  bool ReusedFile = false;
  size_t RawConstraints = 0;        ///< closed, before simplification
  size_t SimplifiedConstraints = 0; ///< saved to the constraint file
  size_t FileBytes = 0;
};

/// Drives the three-step componential analysis over one parsed program.
class ComponentialAnalyzer {
public:
  ComponentialAnalyzer(const Program &P, ComponentialOptions Opts);

  /// Steps 1 and 2.
  void run();

  /// The combined, closed constraint system (valid after run()).
  const ConstraintSystem &combined() const { return *Combined; }
  ConstraintContext &context() { return *Ctx; }

  /// Step 3: full-precision system for one component: the combined system
  /// plus the component's complete derivation, closed. Label variables for
  /// the component's expressions are valid in the result via maps().
  std::unique_ptr<ConstraintSystem> reconstruct(uint32_t CompIdx);

  const AnalysisMaps &maps() const { return Maps; }
  const std::vector<ComponentRunStats> &componentStats() const {
    return Stats;
  }

  /// The largest constraint system materialized during the run (the
  /// "maximum size" column of fig. 7.1).
  size_t maxConstraints() const { return MaxConstraints; }

  /// The external set variables of a component: its own top-level defines
  /// plus every foreign top-level variable it references.
  std::vector<SetVar> externalsOf(uint32_t CompIdx);

private:
  void computeCrossReferences();
  std::string cachePathFor(const Component &C) const;
  /// Attempts to load a component's constraint file; returns true and adds
  /// the (re-linked) constraints into \p Target on success.
  bool tryLoadComponent(uint32_t CompIdx, ConstraintSystem &Target,
                        ComponentRunStats &CS);

  const Program &P;
  ComponentialOptions Opts;
  std::unique_ptr<ConstraintContext> Ctx;
  std::unique_ptr<ConstraintSystem> Combined;
  AnalysisMaps Maps;
  std::unique_ptr<Deriver> D;
  std::vector<ComponentRunStats> Stats;
  size_t MaxConstraints = 0;
  std::unordered_map<uint32_t, std::unordered_set<VarId>> ReferencedBy;
  std::unordered_set<VarId> CrossReferenced;
};

/// Builds AnalysisOptions for the polymorphic analyses of §7.4/fig. 7.6:
/// "copy" duplicates raw schemas, the "smart" variants simplify the schema
/// once with the given algorithm before duplicating.
AnalysisOptions polyAnalysisOptions(PolyMode Mode, SimplifyAlgorithm Alg);

} // namespace spidey

#endif // SPIDEY_COMPONENTIAL_COMPONENTIAL_H
