//===-- componential/parallel.cpp -----------------------------*- C++ -*-===//

#include "componential/parallel.h"

#include <algorithm>

using namespace spidey;

unsigned WorkerPool::defaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(unsigned ThreadCount) {
  ThreadCount = std::max(1u, ThreadCount);
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void WorkerPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(M);
    Queue.push_back(std::move(Job));
    ++Unfinished;
  }
  WorkReady.notify_one();
}

void WorkerPool::wait() {
  std::unique_lock<std::mutex> Lock(M);
  AllDone.wait(Lock, [this] { return Unfinished == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void WorkerPool::workerMain() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    std::exception_ptr Error;
    try {
      Job();
    } catch (...) {
      Error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Error && !FirstError)
        FirstError = Error;
      if (--Unfinished == 0)
        AllDone.notify_all();
    }
  }
}
