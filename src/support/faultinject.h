//===-- support/faultinject.h - Seeded fault injection ---------*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for the robustness layer. Every recovery
/// path in the system — cache load/store, temp-file rename, constraint-file
/// parse, store eviction/wipe, socket I/O — guards its failure branch with
/// a *named injection site*:
///
///   if (faultAt("cache.load"))
///     return std::nullopt;   // behave exactly as if the load had failed
///
/// Sites are inert (one relaxed atomic load) until a fault spec is
/// installed, either programmatically or from the SPIDEY_FAULTS
/// environment variable. A spec is a comma- or semicolon-separated list:
///
///   SPIDEY_FAULTS="seed=42,cache.load=0.3,scf.parse=0.1,store.wipe=1"
///
/// Each `site=p` entry arms one site with failure probability p in [0,1];
/// `prefix.*=p` arms every site sharing the prefix; `seed=N` seeds the
/// generator (default 1). Decisions are drawn from one global
/// splitmix-style stream keyed on (seed, site hash, per-site draw count),
/// so a single-threaded run replays the identical fault schedule for a
/// given spec — the property the chaos harness and CI smoke rely on.
///
/// The injector never throws and is thread-safe; per-site injection
/// counters are kept for telemetry (`stats` responses, test assertions).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_FAULTINJECT_H
#define SPIDEY_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace spidey {

/// The canonical injection sites, listed so tools and tests can enumerate
/// them (arming an unknown site is an error — it would silently test
/// nothing).
const std::vector<std::string> &faultSiteNames();

class FaultInjector {
public:
  /// The process-wide injector behind faultAt().
  static FaultInjector &instance();

  /// Installs a fault spec (see file comment), replacing any previous
  /// configuration. An empty spec disables injection. Returns false and
  /// sets \p Error (when given) on a malformed spec or unknown site; the
  /// previous configuration is kept in that case.
  bool configure(const std::string &Spec, std::string *Error = nullptr);

  /// Installs the spec from SPIDEY_FAULTS, if set. Returns false only on
  /// a malformed value.
  bool configureFromEnv(std::string *Error = nullptr);

  /// Disarms every site and zeroes the counters.
  void reset();

  /// True if any site is armed.
  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// Draws one decision for \p Site: true means the caller must take its
  /// failure branch now. Unarmed sites never fire.
  bool shouldFail(std::string_view Site);

  /// Faults injected at \p Site since the last configure()/reset().
  uint64_t injectedAt(std::string_view Site) const;
  /// Faults injected across all sites since the last configure()/reset().
  uint64_t totalInjected() const { return Total.load(std::memory_order_relaxed); }

private:
  struct SiteState {
    std::string Name;
    double Probability = 0;
    uint64_t Draws = 0;
    uint64_t Injected = 0;
  };

  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> Total{0};
  mutable std::mutex M;
  uint64_t Seed = 1;
  std::vector<SiteState> Sites; ///< armed sites only
};

/// The one-line site guard: false (and essentially free) unless the global
/// injector has this site armed.
inline bool faultAt(std::string_view Site) {
  FaultInjector &FI = FaultInjector::instance();
  return FI.enabled() && FI.shouldFail(Site);
}

} // namespace spidey

#endif // SPIDEY_SUPPORT_FAULTINJECT_H
