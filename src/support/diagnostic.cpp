//===-- support/diagnostic.cpp --------------------------------*- C++ -*-===//

#include "support/diagnostic.h"

#include <sstream>

using namespace spidey;

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    switch (D.Sev) {
    case Diagnostic::Severity::Error:
      OS << "error";
      break;
    case Diagnostic::Severity::Warning:
      OS << "warning";
      break;
    case Diagnostic::Severity::Note:
      OS << "note";
      break;
    }
    if (D.Loc.isValid())
      OS << " at " << D.Loc.Line << ":" << D.Loc.Col;
    OS << ": " << D.Message << "\n";
  }
  return OS.str();
}
