//===-- support/source.h - Source locations -------------------*- C++ -*-===//
///
/// \file
/// Lightweight source locations: a file name index plus 1-based line and
/// column. Locations flow from the s-expression reader through the AST into
/// diagnostics, checks, and flow-graph edges, so that the static debugger
/// can point back at program text (the paper's hyper-links and arrows).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_SOURCE_H
#define SPIDEY_SUPPORT_SOURCE_H

#include <cstdint>
#include <string>

namespace spidey {

/// A position in some source file. File is an index assigned by the client
/// (typically the component index in a multi-file program); 0 is valid.
struct SourceLoc {
  uint32_t File = 0;
  uint32_t Line = 0; ///< 1-based; 0 means "unknown".
  uint32_t Col = 0;  ///< 1-based; 0 means "unknown".

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.File == B.File && A.Line == B.Line && A.Col == B.Col;
  }
};

/// Renders "file:line:col" given a file-name resolver.
template <typename NameFn>
std::string formatLoc(const SourceLoc &Loc, NameFn &&FileName) {
  if (!Loc.isValid())
    return "<unknown>";
  return std::string(FileName(Loc.File)) + ":" + std::to_string(Loc.Line) +
         ":" + std::to_string(Loc.Col);
}

} // namespace spidey

#endif // SPIDEY_SUPPORT_SOURCE_H
