//===-- support/faultinject.cpp -------------------------------*- C++ -*-===//

#include "support/faultinject.h"

#include <cstdlib>

using namespace spidey;

const std::vector<std::string> &spidey::faultSiteNames() {
  static const std::vector<std::string> Names = {
      "cache.load",   ///< on-disk constraint-file read appears missing
      "cache.write",  ///< temp-file write fails (stream error)
      "cache.rename", ///< crash window: temp written, rename never happens
      "scf.parse",    ///< constraint-file text fails to deserialize
      "store.load",   ///< in-memory store probe loses the entry
      "store.store",  ///< in-memory store write is dropped
      "store.wipe",   ///< the whole in-memory store vanishes (daemon
                      ///< restart / OOM-kill analogue)
      "sock.read",    ///< socket read interrupted (EINTR analogue)
      "sock.write",   ///< socket write interrupted (EINTR analogue)
  };
  return Names;
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  return FI;
}

namespace {

/// FNV-1a over the site name: stable across runs, so a site's decision
/// stream depends only on (seed, name, draw index).
uint64_t hashName(std::string_view Name) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

/// splitmix64 finalizer: one decision per (seed, site, draw) triple.
double drawUnit(uint64_t Seed, uint64_t SiteHash, uint64_t Draw) {
  uint64_t X = Seed ^ (SiteHash * 0x9E3779B97F4A7C15ull) ^
               (Draw * 0xBF58476D1CE4E5B9ull);
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  X ^= X >> 31;
  // 53 random bits → [0, 1).
  return static_cast<double>(X >> 11) * (1.0 / 9007199254740992.0);
}

bool knownSite(std::string_view Name) {
  for (const std::string &S : faultSiteNames())
    if (S == Name)
      return true;
  return false;
}

/// True if \p Name arms at least one known site as a `prefix.*` pattern.
bool knownPrefix(std::string_view Pattern) {
  if (Pattern.size() < 2 || Pattern.substr(Pattern.size() - 2) != ".*")
    return false;
  std::string_view Prefix = Pattern.substr(0, Pattern.size() - 1); // keep '.'
  for (const std::string &S : faultSiteNames())
    if (S.size() > Prefix.size() && S.compare(0, Prefix.size(), Prefix) == 0)
      return true;
  return false;
}

} // namespace

bool FaultInjector::configure(const std::string &Spec, std::string *Error) {
  auto Fail = [&](std::string Message) {
    if (Error)
      *Error = std::move(Message);
    return false;
  };

  uint64_t NewSeed = 1;
  std::vector<SiteState> NewSites;
  auto arm = [&](std::string_view Name, double P) {
    for (SiteState &S : NewSites)
      if (S.Name == Name) {
        S.Probability = P;
        return;
      }
    SiteState S;
    S.Name = std::string(Name);
    S.Probability = P;
    NewSites.push_back(std::move(S));
  };

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string_view Entry(Spec.data() + Pos, End - Pos);
    Pos = End + 1;
    // Trim surrounding spaces.
    while (!Entry.empty() && Entry.front() == ' ')
      Entry.remove_prefix(1);
    while (!Entry.empty() && Entry.back() == ' ')
      Entry.remove_suffix(1);
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string_view::npos)
      return Fail("fault spec entry needs site=value: '" +
                  std::string(Entry) + "'");
    std::string_view Key = Entry.substr(0, Eq);
    std::string ValText(Entry.substr(Eq + 1));
    char *ValEnd = nullptr;
    double Val = std::strtod(ValText.c_str(), &ValEnd);
    if (ValEnd != ValText.c_str() + ValText.size() || ValText.empty())
      return Fail("fault spec value is not a number: '" + ValText + "'");
    if (Key == "seed") {
      NewSeed = static_cast<uint64_t>(Val);
      continue;
    }
    if (Val < 0 || Val > 1)
      return Fail("fault probability out of [0,1]: '" + std::string(Entry) +
                  "'");
    if (knownSite(Key)) {
      arm(Key, Val);
    } else if (knownPrefix(Key)) {
      std::string_view Prefix = Key.substr(0, Key.size() - 1);
      for (const std::string &S : faultSiteNames())
        if (S.compare(0, Prefix.size(), Prefix) == 0)
          arm(S, Val);
    } else {
      return Fail("unknown fault site '" + std::string(Key) + "'");
    }
  }

  std::lock_guard<std::mutex> Lock(M);
  Seed = NewSeed;
  Sites = std::move(NewSites);
  Total.store(0, std::memory_order_relaxed);
  bool AnyArmed = false;
  for (const SiteState &S : Sites)
    AnyArmed |= S.Probability > 0;
  Armed.store(AnyArmed, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::configureFromEnv(std::string *Error) {
  const char *Spec = std::getenv("SPIDEY_FAULTS");
  if (!Spec || !*Spec)
    return true;
  return configure(Spec, Error);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Sites.clear();
  Seed = 1;
  Total.store(0, std::memory_order_relaxed);
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::shouldFail(std::string_view Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(M);
  for (SiteState &S : Sites) {
    if (S.Name != Site)
      continue;
    double U = drawUnit(Seed, hashName(Site), S.Draws++);
    if (U >= S.Probability)
      return false;
    ++S.Injected;
    Total.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

uint64_t FaultInjector::injectedAt(std::string_view Site) const {
  std::lock_guard<std::mutex> Lock(M);
  for (const SiteState &S : Sites)
    if (S.Name == Site)
      return S.Injected;
  return 0;
}
