//===-- support/flathash.h - Flat open-addressing scratch sets -*- C++ -*-===//
///
/// \file
/// Small open-addressing hash containers for hot-loop scratch: power-of-two
/// capacity, linear probing, 64-bit mixed keys, and epoch-stamped clearing
/// (a clear is one counter bump, not a table sweep). They deliberately
/// support only the operations the solver and simplifier loops need.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_FLATHASH_H
#define SPIDEY_SUPPORT_FLATHASH_H

#include <cstdint>
#include <vector>

namespace spidey {

inline uint64_t mixHash64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdull;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ull;
  X ^= X >> 33;
  return X;
}

/// Epoch-stamped set of 64-bit keys. Used for first-occurrence dedup
/// where "contains" means "stamped with the current epoch": insert(K)
/// returns true iff K was not yet stamped this epoch. Insertion always
/// takes the first free-this-epoch slot, so a key's probe path crosses
/// only current-epoch entries — stale slots never mask a live key.
class StampedKeySet {
public:
  /// Starts a new epoch (logically clears the set).
  void clear() {
    ++Epoch;
    Size = 0;
    if (Epoch == 0) { // counter wrapped: really clear
      std::fill(Stamps.begin(), Stamps.end(), 0u);
      Epoch = 1;
    }
  }

  /// Stamps \p Key with the current epoch. Returns true if the key was not
  /// already stamped this epoch (i.e. this is its first occurrence).
  bool insert(uint64_t Key) {
    if (Size + 1 > Keys.size() / 2)
      rehash();
    size_t Mask = Keys.size() - 1;
    size_t I = mixHash64(Key) & Mask;
    for (;; I = (I + 1) & Mask) {
      if (Stamps[I] != Epoch) {
        Keys[I] = Key;
        Stamps[I] = Epoch;
        ++Size;
        return true;
      }
      if (Keys[I] == Key)
        return false;
    }
  }

private:
  void rehash() {
    size_t NewCap = Keys.empty() ? 1024 : Keys.size() * 2;
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldStamps = std::move(Stamps);
    Keys.assign(NewCap, 0);
    Stamps.assign(NewCap, 0);
    size_t OldSize = Size;
    Size = 0;
    size_t Mask = NewCap - 1;
    for (size_t I = 0; I < OldKeys.size() && Size < OldSize; ++I) {
      if (OldStamps[I] != Epoch)
        continue; // only current-epoch entries survive a rehash
      size_t J = mixHash64(OldKeys[I]) & Mask;
      while (Stamps[J] == Epoch)
        J = (J + 1) & Mask;
      Keys[J] = OldKeys[I];
      Stamps[J] = Epoch;
      ++Size;
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Stamps;
  uint32_t Epoch = 1;
  size_t Size = 0;
};

/// Epoch-stamped set of 128-bit keys (two 64-bit words), linear probing.
class StampedPairSet {
public:
  void clear() {
    ++Epoch;
    Size = 0;
    if (Epoch == 0) {
      std::fill(Stamps.begin(), Stamps.end(), 0u);
      Epoch = 1;
    }
  }

  /// Returns true iff (Hi, Lo) was not yet present this epoch.
  bool insert(uint64_t Hi, uint64_t Lo) {
    if (Size + 1 > His.size() / 2)
      rehash();
    size_t Mask = His.size() - 1;
    size_t I = (mixHash64(Hi) ^ mixHash64(Lo * 0x9e3779b97f4a7c15ull)) & Mask;
    for (;; I = (I + 1) & Mask) {
      if (Stamps[I] != Epoch) {
        His[I] = Hi;
        Los[I] = Lo;
        Stamps[I] = Epoch;
        ++Size;
        return true;
      }
      if (His[I] == Hi && Los[I] == Lo)
        return false;
    }
  }

private:
  void rehash() {
    size_t NewCap = His.empty() ? 1024 : His.size() * 2;
    std::vector<uint64_t> OldHis = std::move(His);
    std::vector<uint64_t> OldLos = std::move(Los);
    std::vector<uint32_t> OldStamps = std::move(Stamps);
    His.assign(NewCap, 0);
    Los.assign(NewCap, 0);
    Stamps.assign(NewCap, 0);
    size_t OldSize = Size;
    Size = 0;
    size_t Mask = NewCap - 1;
    for (size_t I = 0; I < OldHis.size() && Size < OldSize; ++I) {
      if (OldStamps[I] != Epoch)
        continue;
      size_t J =
          (mixHash64(OldHis[I]) ^ mixHash64(OldLos[I] * 0x9e3779b97f4a7c15ull)) &
          Mask;
      while (Stamps[J] == Epoch)
        J = (J + 1) & Mask;
      His[J] = OldHis[I];
      Los[J] = OldLos[I];
      Stamps[J] = Epoch;
      ++Size;
    }
  }

  std::vector<uint64_t> His;
  std::vector<uint64_t> Los;
  std::vector<uint32_t> Stamps;
  uint32_t Epoch = 1;
  size_t Size = 0;
};

} // namespace spidey

#endif // SPIDEY_SUPPORT_FLATHASH_H
