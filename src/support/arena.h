//===-- support/arena.h - Bump-pointer arena -------------------*- C++ -*-===//
///
/// \file
/// A bump-pointer arena for short-lived, densely-allocated objects: AST-walk
/// scratch, schema images, and other analysis-lifetime storage. Allocation
/// is a pointer bump; nothing is freed until the arena itself dies (or is
/// reset), so allocated objects must be trivially destructible.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_ARENA_H
#define SPIDEY_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace spidey {

/// Bump-pointer arena. Not thread-safe; one arena per analysis context.
class BumpArena {
public:
  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;
  BumpArena(BumpArena &&) = default;
  BumpArena &operator=(BumpArena &&) = default;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    size_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    size_t Pad = Aligned - Cur;
    if (Pad + Size > static_cast<size_t>(End - Ptr)) {
      grow(Size + Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
      Pad = Aligned - Cur;
    }
    Ptr += Pad + Size;
    Allocated += Pad + Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Allocates an uninitialized array of \p N objects of type T.
  /// T must be trivially destructible: the arena never runs destructors.
  template <typename T> T *allocate(size_t N = 1) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies [Begin, Begin+N) into the arena and returns the new base.
  template <typename T> T *copy(const T *Begin, size_t N) {
    T *Out = allocate<T>(N);
    if (N)
      std::memcpy(Out, Begin, N * sizeof(T));
    return Out;
  }

  /// Copies a vector's contents into the arena.
  template <typename T> T *copy(const std::vector<T> &V) {
    return copy(V.data(), V.size());
  }

  /// Total bytes handed out (including alignment padding).
  size_t bytesAllocated() const { return Allocated; }

  /// Drops every allocation but keeps the first block for reuse.
  void reset() {
    Blocks.resize(Blocks.empty() ? 0 : 1);
    if (!Blocks.empty()) {
      Ptr = Blocks.front().get();
      End = Ptr + FirstBlockSize;
    } else {
      Ptr = End = nullptr;
    }
    Allocated = 0;
  }

private:
  static constexpr size_t MinBlockSize = 64 * 1024;

  void grow(size_t AtLeast) {
    size_t Size = std::max(NextBlockSize, AtLeast);
    Blocks.push_back(std::make_unique<char[]>(Size));
    Ptr = Blocks.back().get();
    End = Ptr + Size;
    if (Blocks.size() == 1)
      FirstBlockSize = Size;
    NextBlockSize = std::min<size_t>(NextBlockSize * 2, 8u << 20);
  }

  std::vector<std::unique_ptr<char[]>> Blocks;
  char *Ptr = nullptr;
  char *End = nullptr;
  size_t NextBlockSize = MinBlockSize;
  size_t FirstBlockSize = 0;
  size_t Allocated = 0;
};

/// A span into arena (or any stable) storage: pointer + length. Schemas
/// store their compiled records as spans so the Schema object itself stays
/// trivially destructible.
template <typename T> struct ArenaSpan {
  const T *Data = nullptr;
  uint32_t Size = 0;

  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }
  const T &operator[](size_t I) const { return Data[I]; }
  uint32_t size() const { return Size; }
  bool empty() const { return Size == 0; }
};

} // namespace spidey

#endif // SPIDEY_SUPPORT_ARENA_H
