//===-- support/symbol.h - Interned identifiers ---------------*- C++ -*-===//
//
// Part of spidey, a reproduction of "Componential Set-Based Analysis"
// (Flanagan, PLDI 1997 / Rice dissertation 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Symbols are small integer handles into a SymbolTable;
/// comparing two symbols from the same table is an integer comparison.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_SYMBOL_H
#define SPIDEY_SUPPORT_SYMBOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace spidey {

/// A handle to an interned string. Value 0 is reserved as the invalid
/// symbol; SymbolTable never hands it out.
using Symbol = uint32_t;

inline constexpr Symbol InvalidSymbol = 0;

/// Owns interned strings and maps them to dense Symbol handles.
class SymbolTable {
public:
  SymbolTable();

  /// Returns the unique handle for \p Name, interning it if new.
  Symbol intern(std::string_view Name);

  /// Returns the spelling of \p S. \p S must have been produced by this
  /// table.
  const std::string &name(Symbol S) const;

  /// Returns the handle for \p Name if already interned, InvalidSymbol
  /// otherwise.
  Symbol lookup(std::string_view Name) const;

  /// Number of interned symbols (excluding the reserved invalid slot).
  size_t size() const { return Names.size() - 1; }

  /// Produces a symbol guaranteed to be distinct from all previously
  /// interned symbols, based on \p Prefix (used for alpha-renaming).
  Symbol fresh(std::string_view Prefix);

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Symbol> Index;
  uint64_t FreshCounter = 0;
};

} // namespace spidey

#endif // SPIDEY_SUPPORT_SYMBOL_H
