//===-- support/cancel.h - Deadlines and work budgets ----------*- C++ -*-===//
///
/// \file
/// A cooperative cancellation token carrying a wall-clock deadline and a
/// constraint-count budget. Long-running loops (the closure drain, the
/// componential derive fan-out) poll the token at coarse intervals via
/// charge(); once the deadline passes, the budget is exhausted, or
/// cancel() is called, every poll answers true and the loops unwind,
/// leaving their systems partially closed. Callers that observe a
/// cancelled token must treat their results as *degraded* — the serve
/// loop answers with a structured "degraded" response and keeps the
/// session dirty so the next request re-analyzes from scratch.
///
/// charge() is safe to call from multiple worker threads; the cancelled
/// flag latches so mid-flight workers all see the same verdict. One
/// token can therefore aggregate the work of a whole sharded close: the
/// shards of ConstraintSystem::closeSharded all charge the same token,
/// the budget counts their combined combine attempts, and the first
/// shard to trip it cancels every other shard at its next poll (each
/// shard polls per PollStride combines, so a budget can overshoot by at
/// most shards × stride). A degraded answer produced this way is still
/// exact-recoverable: the serve session stays dirty and the next
/// in-budget pass reproduces the cold bytes.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_CANCEL_H
#define SPIDEY_SUPPORT_CANCEL_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spidey {

class CancelToken {
public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms a wall-clock deadline \p Ms milliseconds from now (0 disarms).
  void setDeadlineMs(uint64_t Ms) {
    HasDeadline = Ms != 0;
    if (HasDeadline)
      Deadline = Clock::now() + std::chrono::milliseconds(Ms);
  }

  /// Arms a work budget in charge units — the closure engine charges one
  /// unit per combine attempted, so this bounds constraint work, not wall
  /// time (0 disarms).
  void setWorkBudget(uint64_t Units) { Budget = Units; }

  /// Latches the token cancelled immediately.
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// Clears a latched cancellation and the accumulated work, then re-arms
  /// the deadline and budget. For reusing one token across requests when
  /// the analyzer borrowing it outlives a single request (replacing the
  /// token would dangle that pointer). Only call between requests, with no
  /// workers charging concurrently.
  void rearm(uint64_t DeadlineMs, uint64_t BudgetUnits) {
    Cancelled.store(false, std::memory_order_relaxed);
    WorkUsed.store(0, std::memory_order_relaxed);
    setDeadlineMs(DeadlineMs);
    setWorkBudget(BudgetUnits);
  }

  bool cancelled() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// True when a deadline or budget is armed (or the token was cancelled
  /// outright); lets multi-shard drains skip polling on free runs.
  bool armed() const {
    return HasDeadline || Budget != 0 || cancelled();
  }

  /// Adds \p Units of completed work and re-checks budget and deadline.
  /// Returns true once the token is cancelled; the verdict never reverts.
  bool charge(uint64_t Units) {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    if (Budget) {
      uint64_t Used =
          WorkUsed.fetch_add(Units, std::memory_order_relaxed) + Units;
      if (Used > Budget) {
        cancel();
        return true;
      }
    } else if (Units) {
      WorkUsed.fetch_add(Units, std::memory_order_relaxed);
    }
    if (HasDeadline && Clock::now() >= Deadline) {
      cancel();
      return true;
    }
    return false;
  }

  uint64_t workUsed() const {
    return WorkUsed.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Cancelled{false};
  std::atomic<uint64_t> WorkUsed{0};
  uint64_t Budget = 0;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
};

} // namespace spidey

#endif // SPIDEY_SUPPORT_CANCEL_H
