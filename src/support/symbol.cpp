//===-- support/symbol.cpp ------------------------------------*- C++ -*-===//

#include "support/symbol.h"

#include <cassert>

using namespace spidey;

SymbolTable::SymbolTable() {
  // Reserve slot 0 for InvalidSymbol.
  Names.emplace_back("<invalid>");
}

Symbol SymbolTable::intern(std::string_view Name) {
  auto It = Index.find(std::string(Name));
  if (It != Index.end())
    return It->second;
  Symbol S = static_cast<Symbol>(Names.size());
  Names.emplace_back(Name);
  Index.emplace(std::string(Name), S);
  return S;
}

const std::string &SymbolTable::name(Symbol S) const {
  assert(S < Names.size() && "symbol out of range");
  return Names[S];
}

Symbol SymbolTable::lookup(std::string_view Name) const {
  auto It = Index.find(std::string(Name));
  return It == Index.end() ? InvalidSymbol : It->second;
}

Symbol SymbolTable::fresh(std::string_view Prefix) {
  for (;;) {
    std::string Candidate =
        std::string(Prefix) + "%" + std::to_string(FreshCounter++);
    if (lookup(Candidate) == InvalidSymbol)
      return intern(Candidate);
  }
}
