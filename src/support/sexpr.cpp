//===-- support/sexpr.cpp -------------------------------------*- C++ -*-===//

#include "support/sexpr.h"

#include <cassert>
#include <cctype>
#include <sstream>

using namespace spidey;

namespace {

/// Recursive-descent reader over a character buffer with line/column
/// tracking.
class Reader {
public:
  Reader(std::string_view Text, uint32_t FileIndex, SymbolTable &Syms,
         DiagnosticEngine &Diags)
      : Text(Text), File(FileIndex), Syms(Syms), Diags(Diags) {}

  std::vector<SExpr> readAll() {
    std::vector<SExpr> Forms;
    for (;;) {
      skipSpace();
      if (atEnd())
        break;
      if (peek() == ')' || peek() == ']') {
        Diags.error(loc(), "unexpected closing delimiter");
        get();
        continue;
      }
      Forms.push_back(readExpr());
      if (Diags.hasErrors())
        break;
    }
    return Forms;
  }

private:
  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  char get() {
    char C = Text[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc loc() const { return {File, Line, Col}; }

  void skipSpace() {
    while (!atEnd()) {
      char C = peek();
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          get();
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(C)))
        return;
      get();
    }
  }

  static bool isDelimiter(char C) {
    return std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
           C == ')' || C == '[' || C == ']' || C == '"' || C == ';';
  }

  SExpr readExpr() {
    skipSpace();
    SourceLoc Start = loc();
    if (atEnd()) {
      Diags.error(Start, "unexpected end of input");
      return makeSymbol(Start, "<error>");
    }
    char C = peek();
    if (C == '(' || C == '[')
      return readList(C == '(' ? ')' : ']');
    if (C == '\'') {
      get();
      SExpr Quoted = readExpr();
      SExpr List;
      List.K = SExpr::Kind::List;
      List.Loc = Start;
      List.Elems.push_back(makeSymbol(Start, "quote"));
      List.Elems.push_back(std::move(Quoted));
      return List;
    }
    if (C == '"')
      return readString();
    if (C == '#')
      return readHash();
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-' || C == '+' ||
        C == '.') {
      // Could be a number or a symbol like '-' or '...'; try number first.
      SExpr Num;
      if (tryReadNumber(Num))
        return Num;
    }
    return readSymbol();
  }

  SExpr readList(char Close) {
    SourceLoc Start = loc();
    get(); // consume open
    SExpr List;
    List.K = SExpr::Kind::List;
    List.Loc = Start;
    for (;;) {
      skipSpace();
      if (atEnd()) {
        Diags.error(Start, "unterminated list");
        return List;
      }
      char C = peek();
      if (C == ')' || C == ']') {
        if (C != Close)
          Diags.error(loc(), "mismatched closing delimiter");
        get();
        return List;
      }
      List.Elems.push_back(readExpr());
      if (Diags.hasErrors())
        return List;
    }
  }

  SExpr readString() {
    SourceLoc Start = loc();
    get(); // consume opening quote
    std::string Value;
    for (;;) {
      if (atEnd()) {
        Diags.error(Start, "unterminated string literal");
        break;
      }
      char C = get();
      if (C == '"')
        break;
      if (C == '\\') {
        if (atEnd()) {
          Diags.error(Start, "unterminated escape in string literal");
          break;
        }
        char E = get();
        switch (E) {
        case 'n':
          Value.push_back('\n');
          break;
        case 't':
          Value.push_back('\t');
          break;
        case '\\':
          Value.push_back('\\');
          break;
        case '"':
          Value.push_back('"');
          break;
        default:
          Diags.error(Start, std::string("unknown string escape \\") + E);
          break;
        }
        continue;
      }
      Value.push_back(C);
    }
    SExpr S;
    S.K = SExpr::Kind::String;
    S.Loc = Start;
    S.Str = std::move(Value);
    return S;
  }

  SExpr readHash() {
    SourceLoc Start = loc();
    get(); // consume '#'
    if (atEnd()) {
      Diags.error(Start, "dangling '#'");
      return makeSymbol(Start, "<error>");
    }
    char C = get();
    if (C == 't' || C == 'f') {
      SExpr S;
      S.K = SExpr::Kind::Boolean;
      S.Loc = Start;
      S.Bool = (C == 't');
      return S;
    }
    if (C == '\\') {
      std::string Name;
      while (!atEnd() && !isDelimiter(peek()))
        Name.push_back(get());
      SExpr S;
      S.K = SExpr::Kind::Char;
      S.Loc = Start;
      if (Name.size() == 1) {
        S.Ch = Name[0];
      } else if (Name == "space") {
        S.Ch = ' ';
      } else if (Name == "newline") {
        S.Ch = '\n';
      } else if (Name == "tab") {
        S.Ch = '\t';
      } else if (Name == "nul") {
        S.Ch = '\0';
      } else {
        Diags.error(Start, "unknown character literal #\\" + Name);
      }
      return S;
    }
    Diags.error(Start, std::string("unknown '#' syntax: #") + C);
    return makeSymbol(Start, "<error>");
  }

  bool tryReadNumber(SExpr &Out) {
    size_t SavedPos = Pos;
    uint32_t SavedLine = Line, SavedCol = Col;
    SourceLoc Start = loc();
    std::string Token;
    while (!atEnd() && !isDelimiter(peek()))
      Token.push_back(get());
    // A number token: optional sign, then digits with at most one '.'.
    size_t I = 0;
    if (I < Token.size() && (Token[I] == '-' || Token[I] == '+'))
      ++I;
    bool SawDigit = false, SawDot = false, Valid = I < Token.size();
    for (; I < Token.size() && Valid; ++I) {
      if (std::isdigit(static_cast<unsigned char>(Token[I])))
        SawDigit = true;
      else if (Token[I] == '.' && !SawDot)
        SawDot = true;
      else
        Valid = false;
    }
    if (!Valid || !SawDigit) {
      Pos = SavedPos;
      Line = SavedLine;
      Col = SavedCol;
      return false;
    }
    Out.K = SExpr::Kind::Number;
    Out.Loc = Start;
    Out.Num = std::stod(Token);
    return true;
  }

  SExpr readSymbol() {
    SourceLoc Start = loc();
    std::string Name;
    while (!atEnd() && !isDelimiter(peek()) && peek() != '\'')
      Name.push_back(get());
    if (Name.empty()) {
      Diags.error(Start, "expected expression");
      get();
      return makeSymbol(Start, "<error>");
    }
    return makeSymbol(Start, Name);
  }

  SExpr makeSymbol(SourceLoc Loc, std::string_view Name) {
    SExpr S;
    S.K = SExpr::Kind::Symbol;
    S.Loc = Loc;
    S.Sym = Syms.intern(Name);
    return S;
  }

  std::string_view Text;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  uint32_t File;
  SymbolTable &Syms;
  DiagnosticEngine &Diags;
};

} // namespace

std::vector<SExpr> spidey::readSExprs(std::string_view Text,
                                      uint32_t FileIndex, SymbolTable &Syms,
                                      DiagnosticEngine &Diags) {
  return Reader(Text, FileIndex, Syms, Diags).readAll();
}

std::string SExpr::str(const SymbolTable &Syms) const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Symbol:
    OS << Syms.name(Sym);
    break;
  case Kind::Number:
    if (Num == static_cast<long long>(Num))
      OS << static_cast<long long>(Num);
    else
      OS << Num;
    break;
  case Kind::String:
    OS << '"' << Str << '"';
    break;
  case Kind::Boolean:
    OS << (Bool ? "#t" : "#f");
    break;
  case Kind::Char:
    OS << "#\\" << Ch;
    break;
  case Kind::List: {
    OS << '(';
    bool First = true;
    for (const SExpr &E : Elems) {
      if (!First)
        OS << ' ';
      First = false;
      OS << E.str(Syms);
    }
    OS << ')';
    break;
  }
  }
  return OS.str();
}
