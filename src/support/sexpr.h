//===-- support/sexpr.h - S-expression reader ------------------*- C++ -*-===//
///
/// \file
/// Concrete syntax for the analyzed language: a small Scheme-style
/// s-expression reader producing location-annotated trees. The language
/// parser (src/lang) consumes these.
///
/// Supported lexemes: lists with ( ) or [ ]; exact integers and decimal
/// numbers; booleans #t/#f; characters #\x, #\space, #\newline, #\tab,
/// #\nul; strings with \\ \" \n \t escapes; ' as (quote ...); line comments
/// starting with ';'.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_SEXPR_H
#define SPIDEY_SUPPORT_SEXPR_H

#include "support/diagnostic.h"
#include "support/source.h"
#include "support/symbol.h"

#include <string>
#include <string_view>
#include <vector>

namespace spidey {

/// One node of the concrete syntax tree.
struct SExpr {
  enum class Kind { Symbol, Number, String, Boolean, Char, List };

  Kind K = Kind::List;
  SourceLoc Loc;

  Symbol Sym = InvalidSymbol; ///< Kind::Symbol
  double Num = 0;             ///< Kind::Number
  std::string Str;            ///< Kind::String
  bool Bool = false;          ///< Kind::Boolean
  char Ch = 0;                ///< Kind::Char
  std::vector<SExpr> Elems;   ///< Kind::List

  bool isList() const { return K == Kind::List; }
  bool isSymbol() const { return K == Kind::Symbol; }

  /// True if this is a list whose head is the symbol \p Head.
  bool isForm(Symbol Head) const {
    return isList() && !Elems.empty() && Elems[0].isSymbol() &&
           Elems[0].Sym == Head;
  }

  /// Renders the expression back to (nearly) its source syntax; used in
  /// reports and tests.
  std::string str(const SymbolTable &Syms) const;
};

/// Reads all top-level forms from \p Text. Reports syntax errors to
/// \p Diags; on error the returned vector holds the forms read so far.
std::vector<SExpr> readSExprs(std::string_view Text, uint32_t FileIndex,
                              SymbolTable &Syms, DiagnosticEngine &Diags);

} // namespace spidey

#endif // SPIDEY_SUPPORT_SEXPR_H
