//===-- support/diagnostic.h - Diagnostics ---------------------*- C++ -*-===//
///
/// \file
/// Diagnostics collected during reading, parsing and analysis. The library
/// never throws; fallible phases report here and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SUPPORT_DIAGNOSTIC_H
#define SPIDEY_SUPPORT_DIAGNOSTIC_H

#include "support/source.h"

#include <string>
#include <vector>

namespace spidey {

/// A single diagnostic message.
struct Diagnostic {
  enum class Severity { Note, Warning, Error };

  Severity Sev = Severity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one front-end run.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Severity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Severity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Severity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, for test assertions and CLI
  /// output.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace spidey

#endif // SPIDEY_SUPPORT_DIAGNOSTIC_H
