//===-- constraints/reference_closure.h - Naive Θ fixpoint ----*- C++ -*-===//
///
/// \file
/// A deliberately naive reference implementation of closure under Θ, used
/// only by tests and the fuzz oracles to cross-check the incremental
/// worklist engine of ConstraintSystem. It stores plain per-variable bound
/// sets (no worklist, no ε-cycle collapsing, no indexes) and closes by
/// sweeping every (lower, upper) pair of every variable until a full sweep
/// inserts nothing. Quadratic and allocation-happy by design: its value is
/// being obviously correct, not fast.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CONSTRAINTS_REFERENCE_CLOSURE_H
#define SPIDEY_CONSTRAINTS_REFERENCE_CLOSURE_H

#include "constraints/constraint_system.h"

#include <map>
#include <set>
#include <vector>

namespace spidey {

/// Naive fixpoint closure over the same constraint language as
/// ConstraintSystem. See the file comment.
class ReferenceClosure {
public:
  explicit ReferenceClosure(ConstraintContext &Ctx) : Ctx(&Ctx) {}

  void addConstLower(SetVar A, Constant C) {
    lows(A).insert(LowerBound::constant(C));
  }
  void addSelLower(SetVar A, Selector S, SetVar B) {
    lows(A).insert(LowerBound::selector(S, B));
  }
  void addVarUpper(SetVar A, SetVar B) { ups(A).insert(UpperBound::var(B)); }
  void addSelUpper(SetVar A, Selector S, SetVar B) {
    ups(A).insert(UpperBound::selector(S, B));
  }
  void addFilterUpper(SetVar A, KindMask M, SetVar B) {
    ups(A).insert(UpperBound::filter(M, B));
  }

  /// Copies every constraint \p S presents (closed or not) into this
  /// system.
  void absorb(const ConstraintSystem &S);

  /// Runs the naive sweep-to-fixpoint closure.
  void close();

  /// {c | c ≤ α}, sorted ascending — comparable with
  /// ConstraintSystem::constantsOf.
  std::vector<Constant> constantsOf(SetVar A) const;

  /// All variables with at least one bound, sorted ascending.
  std::vector<SetVar> variables() const;

private:
  struct LowerLess {
    bool operator()(const LowerBound &X, const LowerBound &Y) const {
      return std::make_tuple(static_cast<uint8_t>(X.K), X.C, X.Sel,
                             X.Other) <
             std::make_tuple(static_cast<uint8_t>(Y.K), Y.C, Y.Sel, Y.Other);
    }
  };
  struct UpperLess {
    bool operator()(const UpperBound &X, const UpperBound &Y) const {
      return std::make_tuple(static_cast<uint8_t>(X.K), X.Sel, X.Other) <
             std::make_tuple(static_cast<uint8_t>(Y.K), Y.Sel, Y.Other);
    }
  };

  std::set<LowerBound, LowerLess> &lows(SetVar A) { return Bounds[A].first; }
  std::set<UpperBound, UpperLess> &ups(SetVar A) { return Bounds[A].second; }

  ConstraintContext *Ctx;
  std::map<SetVar, std::pair<std::set<LowerBound, LowerLess>,
                             std::set<UpperBound, UpperLess>>>
      Bounds;
};

} // namespace spidey

#endif // SPIDEY_CONSTRAINTS_REFERENCE_CLOSURE_H
