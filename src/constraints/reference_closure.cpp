//===-- constraints/reference_closure.cpp ---------------------*- C++ -*-===//

#include "constraints/reference_closure.h"

#include <algorithm>

using namespace spidey;

void ReferenceClosure::absorb(const ConstraintSystem &S) {
  for (SetVar A : S.variables()) {
    for (const LowerBound &L : S.lowerBounds(A))
      lows(A).insert(L);
    for (const UpperBound &U : S.upperBounds(A))
      ups(A).insert(U);
  }
}

void ReferenceClosure::close() {
  // Sweep every (L, U) pair of every variable and apply the matching Θ
  // rule; repeat until a whole sweep changes nothing. Snapshots make each
  // sweep iterate a stable view while inserts go into the live sets.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<SetVar> Vars;
    Vars.reserve(Bounds.size());
    for (const auto &[V, B] : Bounds) {
      (void)B;
      Vars.push_back(V);
    }
    for (SetVar A : Vars) {
      std::vector<LowerBound> Ls(Bounds[A].first.begin(),
                                 Bounds[A].first.end());
      std::vector<UpperBound> Us(Bounds[A].second.begin(),
                                 Bounds[A].second.end());
      for (const UpperBound &U : Us) {
        for (const LowerBound &L : Ls) {
          switch (U.K) {
          case UpperBound::Kind::VarUB:
            // Rules s1-s3: L becomes a lower bound of the target.
            Changed |= lows(U.Other).insert(L).second;
            break;
          case UpperBound::Kind::FilterUB: {
            // Conditional propagation: constants pass when their kind is
            // in the mask, components when their selector has a matching
            // owner kind.
            KindMask M = U.Sel;
            bool Pass = L.K == LowerBound::Kind::ConstLB
                            ? (M & kindBit(Ctx->Constants.kind(L.C))) != 0
                            : (M & Ctx->Selectors.ownerKinds(L.Sel)) != 0;
            if (Pass)
              Changed |= lows(U.Other).insert(L).second;
            break;
          }
          case UpperBound::Kind::SelUB:
            if (L.K != LowerBound::Kind::SelLB || L.Sel != U.Sel)
              break;
            // Rule s4 (monotone) / s5 (anti-monotone).
            if (Ctx->Selectors.isMonotone(U.Sel))
              Changed |= ups(L.Other).insert(UpperBound::var(U.Other)).second;
            else
              Changed |= ups(U.Other).insert(UpperBound::var(L.Other)).second;
            break;
          }
        }
      }
    }
  }
}

std::vector<Constant> ReferenceClosure::constantsOf(SetVar A) const {
  std::vector<Constant> Result;
  auto It = Bounds.find(A);
  if (It == Bounds.end())
    return Result;
  for (const LowerBound &L : It->second.first)
    if (L.K == LowerBound::Kind::ConstLB)
      Result.push_back(L.C);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<SetVar> ReferenceClosure::variables() const {
  std::vector<SetVar> Result;
  Result.reserve(Bounds.size());
  for (const auto &[V, B] : Bounds) {
    (void)B;
    Result.push_back(V);
  }
  return Result;
}
