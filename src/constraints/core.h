//===-- constraints/core.h - Set variables, constants, selectors -*- C++ -*-===//
///
/// \file
/// The vocabulary of the constraint language (§2.2, generalized per §3.1):
///
///  - SetVar: set variables α, β, γ. Allocated by a ConstraintContext so
///    that the constraint systems of all components of a program share one
///    variable namespace (needed when componential analysis combines them,
///    §7.1).
///  - Constant: interned abstract constants c — basic constants collapsed
///    per kind, plus per-site tags (function, continuation, unit, class,
///    object tags).
///  - Selector: interned selectors with a polarity bit. Sel⁺ (monotone):
///    rng, car, cdr, box⁺, vec⁺, ue, cl-obj, ivar⁺ z; Sel⁻ (anti-monotone):
///    dom i, box⁻, vec⁻, ui, ivar⁻ z.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CONSTRAINTS_CORE_H
#define SPIDEY_CONSTRAINTS_CORE_H

#include "constraints/const_kind.h"
#include "support/source.h"
#include "support/symbol.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

using SetVar = uint32_t;
using Constant = uint32_t;
using Selector = uint32_t;

inline constexpr SetVar NoSetVar = ~SetVar(0);

/// Whether a selector is monotone (Sel⁺) or anti-monotone (Sel⁻) in the
/// flow ordering ⊑ (§2.3.1, §3.1).
enum class Polarity : uint8_t { Monotone, AntiMonotone };

/// Metadata for one interned constant.
struct ConstantInfo {
  ConstKind K = ConstKind::Num;
  uint32_t Arity = 0;           ///< for FnTag: the function's arity
  SourceLoc Loc;                ///< for per-site tags: the construction site
  Symbol Label = InvalidSymbol; ///< optional display name
};

/// Interns constants. Basic kinds (Num..VecTag) get exactly one constant;
/// tag kinds get one per call to makeTag.
class ConstantTable {
public:
  ConstantTable() {
    // Pre-intern the basic constants so Constant(K) == index.
    for (unsigned K = 0; K <= static_cast<unsigned>(ConstKind::VecTag); ++K) {
      ConstantInfo Info;
      Info.K = static_cast<ConstKind>(K);
      Infos.push_back(Info);
    }
  }

  /// The unique constant of a basic kind (Num through VecTag).
  Constant basic(ConstKind K) const {
    assert(K <= ConstKind::VecTag && "not a basic kind");
    return static_cast<Constant>(K);
  }

  /// Interns a fresh per-site tag.
  Constant makeTag(ConstKind K, uint32_t Arity, SourceLoc Loc,
                   Symbol Label = InvalidSymbol) {
    assert(K > ConstKind::VecTag && K < ConstKind::NumConstKinds);
    ConstantInfo Info;
    Info.K = K;
    Info.Arity = Arity;
    Info.Loc = Loc;
    Info.Label = Label;
    Infos.push_back(Info);
    return static_cast<Constant>(Infos.size() - 1);
  }

  const ConstantInfo &info(Constant C) const {
    assert(C < Infos.size());
    return Infos[C];
  }

  ConstKind kind(Constant C) const { return info(C).K; }

  size_t size() const { return Infos.size(); }

  /// Renders a constant for reports/tests, e.g. "num", "fn@3:2/1".
  std::string str(Constant C, const SymbolTable &Syms) const;

private:
  std::vector<ConstantInfo> Infos;
};

/// Interns selectors. A selector is identified by a (base name, index)
/// pair; the index distinguishes `dom 0`, `dom 1`, ... and per-instance-
/// variable selectors.
class SelectorTable {
public:
  /// \p OwnerKinds: the constant kinds whose values carry this component
  /// (pairs for car/cdr, functions for dom/rng, ...); used by conditional
  /// filters to decide which components pass a kind test.
  Selector intern(std::string Name, Polarity P,
                  KindMask OwnerKinds = AnyKindMask) {
    auto It = Index.find(Name);
    if (It != Index.end()) {
      assert(Polarities[It->second] == P && "selector polarity mismatch");
      return It->second;
    }
    Selector S = static_cast<Selector>(Names.size());
    Names.push_back(Name);
    Polarities.push_back(P);
    Owners.push_back(OwnerKinds);
    Index.emplace(std::move(Name), S);
    return S;
  }

  KindMask ownerKinds(Selector S) const {
    assert(S < Owners.size());
    return Owners[S];
  }

  Polarity polarity(Selector S) const {
    assert(S < Polarities.size());
    return Polarities[S];
  }

  bool isMonotone(Selector S) const {
    return polarity(S) == Polarity::Monotone;
  }

  const std::string &name(Selector S) const {
    assert(S < Names.size());
    return Names[S];
  }

  /// Looks up a selector by name; returns ~0u if unknown.
  Selector lookup(const std::string &Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? ~Selector(0) : It->second;
  }

  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::vector<Polarity> Polarities;
  std::vector<KindMask> Owners;
  std::unordered_map<std::string, Selector> Index;
};

/// Shared allocation context for the constraint systems of one analyzed
/// program: the set-variable namespace and the constant and selector
/// tables.
class ConstraintContext {
public:
  ConstraintContext() {
    constexpr KindMask FnKinds =
        kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);
    constexpr KindMask PairKinds = kindBit(ConstKind::Pair);
    Rng = Selectors.intern("rng", Polarity::Monotone, FnKinds);
    Car = Selectors.intern("car", Polarity::Monotone, PairKinds);
    Cdr = Selectors.intern("cdr", Polarity::Monotone, PairKinds);
    BoxPlus = Selectors.intern("box+", Polarity::Monotone,
                               kindBit(ConstKind::BoxTag));
    BoxMinus = Selectors.intern("box-", Polarity::AntiMonotone,
                                kindBit(ConstKind::BoxTag));
    VecPlus = Selectors.intern("vec+", Polarity::Monotone,
                               kindBit(ConstKind::VecTag));
    VecMinus = Selectors.intern("vec-", Polarity::AntiMonotone,
                                kindBit(ConstKind::VecTag));
    Ue = Selectors.intern("ue", Polarity::Monotone,
                          kindBit(ConstKind::UnitTag));
    Ui = Selectors.intern("ui", Polarity::AntiMonotone,
                          kindBit(ConstKind::UnitTag));
    ClObj = Selectors.intern("cl-obj", Polarity::Monotone,
                             kindBit(ConstKind::ClassTag));
  }

  SetVar freshVar() { return NextVar++; }
  /// Reserves \p N consecutive fresh variables and returns the first.
  /// The bulk-clone instantiation path numbers a schema's quantified
  /// copies Base..Base+N-1 — exactly the numbering N individual
  /// freshVar() calls would produce.
  SetVar freshVarRange(uint32_t N) {
    SetVar Base = NextVar;
    NextVar += N;
    return Base;
  }
  uint32_t numVars() const { return NextVar; }

  /// The anti-monotone selector for argument position \p I (App. E.3).
  Selector dom(unsigned I) {
    constexpr KindMask FnKinds =
        kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);
    while (Doms.size() <= I)
      Doms.push_back(Selectors.intern("dom" + std::to_string(Doms.size()),
                                      Polarity::AntiMonotone, FnKinds));
    return Doms[I];
  }

  /// Instance-variable selectors, keyed by the variable's name (§3.7).
  Selector ivarPlus(Symbol Name, const SymbolTable &Syms) {
    return Selectors.intern("ivar+" + Syms.name(Name), Polarity::Monotone,
                            kindBit(ConstKind::ObjTag));
  }
  Selector ivarMinus(Symbol Name, const SymbolTable &Syms) {
    return Selectors.intern("ivar-" + Syms.name(Name),
                            Polarity::AntiMonotone,
                            kindBit(ConstKind::ObjTag));
  }

  SelectorTable Selectors;
  ConstantTable Constants;

  // Well-known selectors.
  Selector Rng, Car, Cdr, BoxPlus, BoxMinus, VecPlus, VecMinus, Ue, Ui,
      ClObj;

private:
  SetVar NextVar = 0;
  std::vector<Selector> Doms;
};

} // namespace spidey

#endif // SPIDEY_CONSTRAINTS_CORE_H
