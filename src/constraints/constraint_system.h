//===-- constraints/constraint_system.h - Simple systems + Θ --*- C++ -*-===//
///
/// \file
/// Simple constraint systems (§2.2/§2.7) and their closure under the rules
/// Θ = {s1..s5} (fig. 2.3, generalized to arbitrary selectors per
/// fig. 3.1).
///
/// Following §2.7.1, a system is represented as per-variable lower and
/// upper bound lists:
///
///   lower bounds of α:  c ≤ α            (ConstLB)
///                       β ≤ s⁺(α)        (SelLB, monotone s)
///                       s⁻(α) ≤ β        (SelLB, anti-monotone s)
///   upper bounds of α:  α ≤ β            (VarUB, the ε-constraints)
///                       s⁺(α) ≤ β        (SelUB, monotone s)
///                       β ≤ s⁻(α)        (SelUB, anti-monotone s)
///
/// The closure rules combine a lower and an upper bound of the same
/// variable (the paper's `combine!`):
///
///   (s1–s3)  L,  α ≤ γ              ⟹  L becomes a lower bound of γ
///   (s4)     β ≤ s⁺(α), s⁺(α) ≤ γ   ⟹  β ≤ γ
///   (s5)     s⁻(α) ≤ γ, β ≤ s⁻(α)   ⟹  β ≤ γ
///
/// The system is kept closed incrementally: every public add re-closes via
/// an explicit worklist (the paper's add-lower-bound+close!).
///
/// Closure engine v2 (see DESIGN.md "Closure engine v2"):
///
///  - ε-cycle elimination: variables connected by a cycle of VarUB
///    ε-constraints provably have identical lower-bound sets in the closed
///    system, so a union-find merges each ε-SCC onto one deterministic
///    representative (the lowest SetVar) and the lower bounds are stored
///    once at the representative. Cycles are found both offline (Tarjan
///    SCC at close()) and online (bounded Fähndrich-style partial search
///    when a closing add links two representatives). Upper bounds stay on
///    their original variable, and all queries (lowerBounds, str(),
///    serialization, size()) present the system *through* the
///    representative map, so observable results are identical to a
///    per-variable engine.
///
///  - Indexed bounds: once a representative's lower-bound list is large,
///    it is bucketed by selector and by constant kind, so a SelUB combine
///    touches only the matching selector bucket and a FilterUB mask skips
///    whole non-matching kind groups.
///
///  - Exactly-once combination: per-representative and per-member
///    high-water marks (lows/ups already combined) make the drain combine
///    each (L, U) pair precisely once instead of up to twice.
///
/// Storage layout: set variables are small consecutive integers handed out
/// by one ConstraintContext, so the per-variable slot table is a dense
/// vector indexed by SetVar (no hashing on the hot path), and bound
/// deduplication goes through a single open-addressing flat set keyed on
/// (variable, packed bound) rather than two heap-allocated hash sets per
/// variable.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CONSTRAINTS_CONSTRAINT_SYSTEM_H
#define SPIDEY_CONSTRAINTS_CONSTRAINT_SYSTEM_H

#include "constraints/core.h"
#include "support/cancel.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace spidey {

/// A lower bound of some variable α.
struct LowerBound {
  enum class Kind : uint8_t { ConstLB, SelLB };
  Kind K;
  Constant C = 0;          ///< ConstLB
  Selector Sel = 0;        ///< SelLB
  SetVar Other = NoSetVar; ///< SelLB: the β above

  static LowerBound constant(Constant C) {
    return {Kind::ConstLB, C, 0, NoSetVar};
  }
  static LowerBound selector(Selector S, SetVar B) {
    return {Kind::SelLB, 0, S, B};
  }
  friend bool operator==(const LowerBound &A, const LowerBound &B) {
    return A.K == B.K && A.C == B.C && A.Sel == B.Sel && A.Other == B.Other;
  }
};

/// An upper bound of some variable α.
struct UpperBound {
  enum class Kind : uint8_t {
    VarUB,
    SelUB,
    /// FilterUB: a *conditional* ε-constraint α ≤_M β that passes only the
    /// values whose constant kinds are in the mask M (stored in Sel).
    /// Produced by the analysis for predicate-guarded branches
    /// ((if (pair? x) ...)) — MrSpidey's primitive filters (App. E.5,
    /// §5.4's filter facility).
    FilterUB,
  };
  Kind K;
  Selector Sel = 0;        ///< SelUB: selector; FilterUB: the KindMask
  SetVar Other = NoSetVar; ///< all kinds: the β/γ above

  static UpperBound var(SetVar B) { return {Kind::VarUB, 0, B}; }
  static UpperBound selector(Selector S, SetVar B) {
    return {Kind::SelUB, S, B};
  }
  static UpperBound filter(KindMask M, SetVar B) {
    return {Kind::FilterUB, M & ValidKindMask, B};
  }
  friend bool operator==(const UpperBound &A, const UpperBound &B) {
    return A.K == B.K && A.Sel == B.Sel && A.Other == B.Other;
  }
};

/// Open-addressing flat set of (variable, packed-bound) pairs: the
/// deduplication index for every bound a system stores. Linear probing,
/// power-of-two capacity, no tombstones (bounds are never removed).
class BoundKeySet {
public:
  /// Returns true if (Var, Key) was newly inserted.
  bool insert(SetVar Var, uint64_t Key) {
    if (Table.empty())
      rehash(64);
    size_t Mask = Table.size() - 1;
    size_t I = hashOf(Var, Key) & Mask;
    while (Table[I].Key != EmptyKey) {
      if (Table[I].Key == Key && Table[I].Var == Var)
        return false;
      I = (I + 1) & Mask;
    }
    Table[I] = {Key, Var};
    ++Count;
    if (Count * 4 >= Table.size() * 3)
      rehash(Table.size() * 2);
    return true;
  }

  bool contains(SetVar Var, uint64_t Key) const {
    if (Table.empty())
      return false;
    size_t Mask = Table.size() - 1;
    size_t I = hashOf(Var, Key) & Mask;
    while (Table[I].Key != EmptyKey) {
      if (Table[I].Key == Key && Table[I].Var == Var)
        return true;
      I = (I + 1) & Mask;
    }
    return false;
  }

  void reserve(size_t N) {
    size_t Cap = 64;
    while (Cap * 3 < N * 4)
      Cap *= 2;
    if (Cap > Table.size())
      rehash(Cap);
  }

  size_t size() const { return Count; }

private:
  /// Packed bounds use 3 tag bits at the top (values 0-4), so all-ones is
  /// never a valid key.
  static constexpr uint64_t EmptyKey = ~uint64_t(0);

  struct Entry {
    uint64_t Key = EmptyKey;
    SetVar Var = 0;
  };

  static size_t hashOf(SetVar Var, uint64_t Key) {
    uint64_t X = Key ^ (uint64_t(Var) * 0x9E3779B97F4A7C15ull);
    X ^= X >> 33;
    X *= 0xFF51AFD7ED558CCDull;
    X ^= X >> 33;
    X *= 0xC4CEB9FE1A85EC53ull;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }

  void rehash(size_t NewCap) {
    std::vector<Entry> Old = std::move(Table);
    Table.assign(NewCap, Entry{});
    size_t Mask = NewCap - 1;
    for (const Entry &E : Old) {
      if (E.Key == EmptyKey)
        continue;
      size_t I = hashOf(E.Var, E.Key) & Mask;
      while (Table[I].Key != EmptyKey)
        I = (I + 1) & Mask;
      Table[I] = E;
    }
    Table.shrink_to_fit();
  }

  std::vector<Entry> Table;
  size_t Count = 0;
};

/// Solver telemetry, accumulated over a system's lifetime. Aggregated
/// across per-component systems by the componential analyzer and printed
/// by the benches, spidey-analyze --stats, and spidey-fuzz.
struct ClosureStats {
  /// Dirty representatives popped off the worklist and processed.
  uint64_t TasksDrained = 0;
  /// (L, U) pairs handed to a Θ rule. With bucketed storage, SelUB and
  /// FilterUB combines only attempt pairs that can match, so this counts
  /// useful work, not scans.
  uint64_t CombinesAttempted = 0;
  /// Combines that produced a bound not already in the system.
  uint64_t CombinesInserted = 0;
  /// Insert probes (combines or adds) that found the bound already
  /// present.
  uint64_t DedupHits = 0;
  /// Cross-representative ε-edges recorded for online cycle search.
  uint64_t EpsEdges = 0;
  /// ε-SCC collapse events (each merges ≥2 representatives).
  uint64_t EpsSccsCollapsed = 0;
  /// Variables folded into another representative by collapses.
  uint64_t VarsUnified = 0;
  /// Edges examined by the bounded online cycle search.
  uint64_t CycleSearchSteps = 0;
  /// High-water mark of the representative worklist.
  uint64_t PeakWorklistDepth = 0;
  /// Sharded close (closeSharded) telemetry; all zero after a purely
  /// sequential close.
  uint64_t CloseRounds = 0;      ///< boundary-exchange rounds run
  uint64_t BoundaryLowsSent = 0; ///< lower bounds routed across shards
  uint64_t BoundaryUpsSent = 0;  ///< upper bounds routed across shards
  uint64_t ShardsUsed = 0;       ///< shard count of the last sharded close
  /// Dirty-representative tasks drained per shard (index = shard id).
  std::vector<uint64_t> ShardDrained;

  double dedupHitRate() const {
    uint64_t Probes = CombinesInserted + DedupHits;
    return Probes ? double(DedupHits) / double(Probes) : 0.0;
  }

  void merge(const ClosureStats &O) {
    TasksDrained += O.TasksDrained;
    CombinesAttempted += O.CombinesAttempted;
    CombinesInserted += O.CombinesInserted;
    DedupHits += O.DedupHits;
    EpsEdges += O.EpsEdges;
    EpsSccsCollapsed += O.EpsSccsCollapsed;
    VarsUnified += O.VarsUnified;
    CycleSearchSteps += O.CycleSearchSteps;
    if (O.PeakWorklistDepth > PeakWorklistDepth)
      PeakWorklistDepth = O.PeakWorklistDepth;
    CloseRounds += O.CloseRounds;
    BoundaryLowsSent += O.BoundaryLowsSent;
    BoundaryUpsSent += O.BoundaryUpsSent;
    if (O.ShardsUsed > ShardsUsed)
      ShardsUsed = O.ShardsUsed;
    if (ShardDrained.size() < O.ShardDrained.size())
      ShardDrained.resize(O.ShardDrained.size(), 0);
    for (size_t I = 0; I < O.ShardDrained.size(); ++I)
      ShardDrained[I] += O.ShardDrained[I];
  }

  /// Human-readable multi-line rendering ("  key: value" lines).
  std::string str() const;
};

/// One record of a compiled constraint image: a single bound in a form
/// that can be replayed into any system with an offset remap. Variables
/// carrying QuantifiedFlag are dense indices 0..Q-1 into a block of fresh
/// variables reserved at replay time; plain variables pass through
/// unchanged. All payloads are 32-bit (SetVar, Constant, Selector and
/// KindMask are all uint32_t), so a record is four words of POD.
struct BulkConstraint {
  enum class Kind : uint32_t { ConstLow, SelLow, VarUp, SelUp, FilterUp };
  Kind K = Kind::ConstLow;
  SetVar A = NoSetVar; ///< the bounded variable (encoded)
  uint32_t B = 0;      ///< partner variable (encoded) or Constant payload
  uint32_t Sel = 0;    ///< Selector, or KindMask for FilterUp

  /// Encoded-variable tag: set on quantified variables, whose low bits
  /// are the dense index into the replay block.
  static constexpr SetVar QuantifiedFlag = SetVar(1) << 31;

  static SetVar decode(SetVar V, SetVar Base) {
    return V & QuantifiedFlag ? Base + (V & ~QuantifiedFlag) : V;
  }
};

/// Abstract N-way task runner used by ConstraintSystem::closeSharded:
/// run(N, Fn) invokes Fn(0) .. Fn(N-1), possibly concurrently, and
/// returns only once every invocation has finished. The constraints
/// layer cannot depend on the componential worker pool, so the pool
/// adapts itself to this interface (componential/parallel.h PoolRunner);
/// a null runner executes the shards inline on the calling thread.
class ParallelRunner {
public:
  virtual ~ParallelRunner() = default;
  virtual void run(uint32_t N, const std::function<void(uint32_t)> &Fn) = 0;
};

/// A simple constraint system, kept closed under Θ.
///
/// Set variables are owned by the shared ConstraintContext; a system only
/// stores bounds for the variables it mentions. Multiple systems over the
/// same context can coexist (per-component systems, simplified copies).
class ConstraintSystem {
public:
  explicit ConstraintSystem(ConstraintContext &Ctx) : Ctx(&Ctx) {}

  ConstraintSystem(ConstraintSystem &&) = default;
  ConstraintSystem &operator=(ConstraintSystem &&) = default;

  ConstraintContext &context() const { return *Ctx; }

  //===------------------------------------------------------------------===
  // Closing adders (the paper's add-*-bound+close!).
  //===------------------------------------------------------------------===

  /// Adds c ≤ α.
  void addConstLower(SetVar A, Constant C) {
    if (insertLower(A, LowerBound::constant(C)))
      drain();
  }
  /// Adds β ≤ s(α) for monotone s, or s(α) ≤ β for anti-monotone s.
  void addSelLower(SetVar A, Selector S, SetVar B) {
    if (insertLower(A, LowerBound::selector(S, B)))
      drain();
  }
  /// Adds the ε-constraint α ≤ β.
  void addVarUpper(SetVar A, SetVar B) {
    if (insertUpper(A, UpperBound::var(B)))
      drain();
  }
  /// Adds s(α) ≤ β for monotone s, or β ≤ s(α) for anti-monotone s.
  void addSelUpper(SetVar A, Selector S, SetVar B) {
    if (insertUpper(A, UpperBound::selector(S, B)))
      drain();
  }
  /// Adds the conditional constraint α ≤_M β.
  void addFilterUpper(SetVar A, KindMask M, SetVar B) {
    if (insertUpper(A, UpperBound::filter(M, B)))
      drain();
  }

  /// Replays \p N compiled records with quantified variables remapped to
  /// the block starting at \p Base (see BulkConstraint). Each record goes
  /// through the same insert+drain sequence as the closing adders above,
  /// so the resulting system is bit-for-bit what per-record adds would
  /// build; the bulk path only pre-sizes the dedup table and skips the
  /// per-bound substitution machinery of the caller.
  void addBulk(const BulkConstraint *Recs, size_t N, SetVar Base);

  //===------------------------------------------------------------------===
  // Raw adders: insert without closing (for building systems to be closed
  // later, e.g. deserialized constraint files or simplified systems).
  //===------------------------------------------------------------------===

  void addConstLowerRaw(SetVar A, Constant C) {
    insertLowerRaw(A, LowerBound::constant(C));
  }
  void addSelLowerRaw(SetVar A, Selector S, SetVar B) {
    insertLowerRaw(A, LowerBound::selector(S, B));
  }
  void addVarUpperRaw(SetVar A, SetVar B) {
    insertUpperRaw(A, UpperBound::var(B));
  }
  void addSelUpperRaw(SetVar A, Selector S, SetVar B) {
    insertUpperRaw(A, UpperBound::selector(S, B));
  }
  void addFilterUpperRaw(SetVar A, KindMask M, SetVar B) {
    insertUpperRaw(A, UpperBound::filter(M, B));
  }

  /// Closes the system under Θ (needed only after raw adds).
  void close();

  /// Closes the system under Θ with the sharded parallel fixpoint (see
  /// DESIGN.md §11 "Sharded closure"): ε-SCCs are collapsed offline,
  /// representatives are partitioned into \p NumShards shards by a hash
  /// of the representative, each shard runs the ordinary worklist drain
  /// over the variables it owns, and rule products that target another
  /// shard's variable travel through per-(source, target) queues drained
  /// in deterministic barrier rounds until no shard has outbound
  /// traffic. The closed system — bounds, sizes, presented order — is
  /// identical to what close() produces for every shard count, because
  /// the Θ fixpoint is unique and the write-back inserts new bounds in
  /// canonical (variable-ascending, key-sorted) order. \p Runner may be
  /// null, which runs the shards inline; NumShards <= 1 is exactly
  /// close().
  void closeSharded(unsigned NumShards, ParallelRunner *Runner = nullptr);

  //===------------------------------------------------------------------===
  // Cooperative cancellation. With a token attached, the worklist drain
  // polls it (charging one unit per combine attempted) and unwinds once
  // the token cancels, leaving the system *partially* closed. A partially
  // closed system is internally consistent — every stored bound is real —
  // but not a fixpoint; closureCancelled() tells the caller the result is
  // degraded and must not be cached or trusted as complete.
  //===------------------------------------------------------------------===

  /// Attaches (or detaches, with nullptr) a cancellation token. Not
  /// owned; must outlive every subsequent add/close on this system.
  void setCancel(CancelToken *T) { Cancel = T; }

  /// True if any drain on this system was aborted by its token.
  bool closureCancelled() const { return CancelLatched; }

  //===------------------------------------------------------------------===
  // Queries. All queries present the closed system through the
  // representative map: members of a collapsed ε-cycle report the cycle's
  // shared lower-bound list as their own.
  //===------------------------------------------------------------------===

  /// All variables this system mentions (has any bound for, or appearing
  /// on the far side of a bound), sorted ascending.
  std::vector<SetVar> variables() const;

  const std::vector<LowerBound> &lowerBounds(SetVar A) const {
    static const std::vector<LowerBound> Empty;
    uint32_t Slot = slotOf(findConst(A));
    return Slot == NoSlot ? Empty : Storage[Slot].Lows;
  }
  const std::vector<UpperBound> &upperBounds(SetVar A) const {
    static const std::vector<UpperBound> Empty;
    uint32_t Slot = slotOf(A);
    return Slot == NoSlot ? Empty : Storage[Slot].Ups;
  }

  /// True if c ≤ α is in the (closed) system, i.e. S ⊢Θ c ≤ α.
  bool hasConstLower(SetVar A, Constant C) const {
    return Keys.contains(findConst(A), lowKey(LowerBound::constant(C)));
  }

  /// The constants of α in the closed system: {c | S ⊢Θ c ≤ α}. This is
  /// const(LeastSoln(S)(α)) by Theorem 2.6.5.
  std::vector<Constant> constantsOf(SetVar A) const;

  /// Canonical bound iteration: visits every variable the system mentions
  /// in ascending order, presenting that variable's lower and upper
  /// bounds sorted by the canonical keys (lowerBoundLess/upperBoundLess)
  /// — the same presentation str() and the serializer use, so the visit
  /// sequence is a pure function of the closed bound *set*, not of
  /// discovery order. The vectors are scratch borrowed for the duration
  /// of one callback. The demand-driven query layer builds its region
  /// digests on top of this.
  void forEachBoundSorted(
      const std::function<void(SetVar, const std::vector<LowerBound> &,
                               const std::vector<UpperBound> &)> &Fn) const;

  /// Total number of stored constraints, counting a collapsed cycle's
  /// shared lower bounds once per member (i.e. the size of the system a
  /// per-variable engine would store — each presented bound counted once).
  size_t size() const { return NumBounds; }

  /// Number of variables with at least one bound list.
  size_t numTouchedVars() const { return Storage.size(); }

  /// Solver counters accumulated so far (never reset).
  const ClosureStats &stats() const { return Stats; }

  /// Copies every constraint of \p Other into this system (raw); call
  /// close() afterwards. Used by the componential combiner (§7.1 step 2).
  /// Constraints are copied in ascending variable order, so the result is
  /// deterministic for a given \p Other.
  void absorbRaw(const ConstraintSystem &Other);

  /// Like absorbRaw, but \p Other lives in a *different* context: every
  /// variable v is renamed to VarMap[v], every constant c to ConstMap[c],
  /// and every selector s to SelMap[s] (FilterUB masks are kind masks, not
  /// selectors, and pass through unchanged). Used by the parallel
  /// componential combiner to merge per-component systems derived in
  /// private contexts.
  void absorbMapped(const ConstraintSystem &Other,
                    const std::vector<SetVar> &VarMap,
                    const std::vector<Constant> &ConstMap,
                    const std::vector<Selector> &SelMap);

  /// Renders the system for debugging/tests, one constraint per line.
  std::string str() const;

  /// Canonical presentation order for bound lists. Sorting a variable's
  /// bounds by these keys makes rendered/serialized output a pure
  /// function of the closed bound *set* (which is a unique fixpoint),
  /// not of the order the engine discovered the bounds in — the
  /// foundation of the sequential/sharded byte-identity contract.
  static bool lowerBoundLess(const LowerBound &A, const LowerBound &B) {
    return lowKey(A) < lowKey(B);
  }
  static bool upperBoundLess(const UpperBound &A, const UpperBound &B) {
    return upKey(A) < upKey(B);
  }

private:
  /// Per-selector / per-constant-kind index buckets over a
  /// representative's lower-bound list; built lazily once the list is
  /// large enough that scanning it per combine costs more than keeping
  /// the index. Each bucket holds ascending indices into Lows.
  struct LowBuckets {
    std::vector<std::pair<Selector, std::vector<uint32_t>>> BySel;
    std::vector<std::pair<uint8_t, std::vector<uint32_t>>> ByKind;
  };

  struct VarBounds {
    std::vector<LowerBound> Lows; ///< meaningful only at a representative
    std::vector<UpperBound> Ups;  ///< always per original variable
    /// Members of this representative's ε-SCC (ascending, including the
    /// representative itself); empty means the singleton {self}.
    std::vector<SetVar> Members;
    std::unique_ptr<LowBuckets> Buckets; ///< representative-only, lazy
    /// High-water marks for the exactly-once drain: lows [0, LowsDone)
    /// of the representative have been combined against ups
    /// [0, UpsDone) of each member.
    uint32_t LowsDone = 0;
    uint32_t UpsDone = 0;
    bool InWorklist = false;
    bool Dirty = false;
  };

  static constexpr uint32_t NoSlot = ~uint32_t(0);
  /// Lows list length at which the selector/kind buckets are built.
  static constexpr size_t BucketThreshold = 16;
  /// Edge budget for one online cycle search (partial search: exceeding
  /// the budget just misses the collapse; propagation stays correct).
  static constexpr uint64_t CycleSearchBudget = 128;
  /// Floor of the adaptive budget: a run of failed searches decays the
  /// per-edge budget down to this; any successful collapse restores it.
  static constexpr uint64_t CycleSearchBudgetMin = 8;

  uint32_t slotOf(SetVar A) const {
    return A < Slots.size() ? Slots[A] : NoSlot;
  }

  VarBounds &bounds(SetVar A) {
    if (A >= Slots.size())
      Slots.resize(static_cast<size_t>(A) + 1, NoSlot);
    uint32_t &Slot = Slots[A];
    if (Slot == NoSlot) {
      Slot = static_cast<uint32_t>(Storage.size());
      Storage.emplace_back();
    }
    return Storage[Slot];
  }

  //===------------------------------------------------------------------===
  // Union-find over ε-SCCs. Parent is grown lazily; a variable outside
  // the vector is its own representative. The representative of a merged
  // class is always its lowest member, which makes collapse results
  // independent of discovery order.
  //===------------------------------------------------------------------===

  SetVar find(SetVar V) {
    if (V >= Parent.size() || Parent[V] == V)
      return V;
    SetVar Root = Parent[V];
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[V] != Root) {
      SetVar Next = Parent[V];
      Parent[V] = Root;
      V = Next;
    }
    return Root;
  }

  SetVar findConst(SetVar V) const {
    while (V < Parent.size() && Parent[V] != V)
      V = Parent[V];
    return V;
  }

  size_t sccSizeOf(const VarBounds &B) const {
    return B.Members.empty() ? 1 : B.Members.size();
  }

  // Packed bound encodings for the dedup set: 3 tag bits (61-63, values
  // 0-4), 29 payload bits (32-60: constant, selector, or kind mask), and
  // the partner variable in the low 32 bits. Lower bounds are keyed under
  // the representative; upper bounds under their original variable.
  static uint64_t lowKey(const LowerBound &L) {
    return L.K == LowerBound::Kind::ConstLB
               ? (uint64_t(L.C) << 32)
               : (uint64_t(1) << 61) | (uint64_t(L.Sel) << 32) | L.Other;
  }
  static uint64_t upKey(const UpperBound &U) {
    return (uint64_t(2 + static_cast<uint8_t>(U.K)) << 61) |
           (uint64_t(U.Sel) << 32) | U.Other;
  }

  /// Returns true if newly inserted (and marks the representative dirty).
  bool insertLower(SetVar A, const LowerBound &L);
  bool insertUpper(SetVar A, const UpperBound &U);
  bool insertLowerRaw(SetVar A, const LowerBound &L);
  bool insertUpperRaw(SetVar A, const UpperBound &U);

  /// Appends L to a representative's lows, maintaining the buckets. Does
  /// not touch NumBounds or the dedup set.
  void appendLow(VarBounds &B, const LowerBound &L);
  void buildBuckets(VarBounds &B);

  /// Pushes R's representative onto the worklist if not already queued.
  void markDirty(SetVar R);

  /// Combines ups [0, UpsDone) of every member and all new ups against
  /// the representative's lows per the high-water marks, to a local fixed
  /// point (deferred collapses excepted).
  void processRep(SetVar R);

  /// Applies one Θ rule family for upper bound U of representative R
  /// against R's lows in index range [Begin, End).
  void combineRange(SetVar R, uint32_t SlotR, const UpperBound &U,
                    uint32_t Begin, uint32_t End);

  /// Resolves queued cross-representative ε-edges: bounded search for a
  /// path back to the source; collapses the cycle when one is found.
  void resolveEpsPending();

  /// Merges the ε-SCC formed by \p Roots (distinct representatives) onto
  /// its lowest member; migrates lows, members, and the virtual bound
  /// count, resets the low high-water mark, and requeues the survivor.
  void collapseCycle(std::vector<SetVar> Roots);

  /// Offline Tarjan SCC pass over the current representative ε-graph;
  /// collapses every non-trivial SCC. Run once per close().
  void collapseAllSccs();

  /// Processes dirty representatives and pending ε-edges to a fixed
  /// point.
  void drain();

  /// Charges the token for combine work done since the last poll and
  /// returns true once cancelled. Cheap when no token is attached; actual
  /// deadline checks happen at most once per PollStride combines unless
  /// \p Force.
  bool pollCancel(bool Force = false) {
    if (!Cancel)
      return false;
    if (CancelLatched)
      return true;
    uint64_t Delta = Stats.CombinesAttempted - ChargedCombines;
    if (!Force && Delta < PollStride)
      return false;
    ChargedCombines = Stats.CombinesAttempted;
    if (Cancel->charge(Delta))
      CancelLatched = true;
    return CancelLatched;
  }

  /// Combine-attempt interval between deadline checks in the inner drain
  /// loops (a deadline can overshoot by at most ~one stride of combines).
  static constexpr uint64_t PollStride = 1024;

  /// One cross-shard constraint in flight during closeSharded: a bound
  /// some shard discovered for a variable another shard owns.
  struct BoundaryMsg {
    SetVar Target = NoSetVar;
    bool IsLow = true;
    LowerBound Low{};
    UpperBound Up{};
  };

  /// Hash a representative to its owner shard (splitmix64 finalizer —
  /// deterministic across runs and platforms).
  static uint32_t shardOfRep(SetVar R, unsigned NumShards) {
    uint64_t X = uint64_t(R) + 0x9E3779B97F4A7C15ull;
    X ^= X >> 30;
    X *= 0xBF58476D1CE4E5B9ull;
    X ^= X >> 27;
    X *= 0x94D049BB133111EBull;
    X ^= X >> 31;
    return static_cast<uint32_t>(X % NumShards);
  }

  ConstraintContext *Ctx;
  std::vector<uint32_t> Slots; ///< SetVar -> index into Storage, or NoSlot
  std::vector<VarBounds> Storage;
  std::vector<SetVar> Parent; ///< union-find; identity outside the vector
  BoundKeySet Keys;
  std::vector<SetVar> Worklist; ///< dirty representatives (LIFO)
  std::vector<std::pair<SetVar, SetVar>> EpsPending;
  /// Online cycle-search scratch: epoch-stamped visit marks and DFS-tree
  /// parents, indexed by representative. Stamping makes the per-edge
  /// search O(budget) instead of O(budget x visited) and avoids clearing.
  uint64_t EpsSearchEpoch = 0;
  std::vector<uint64_t> EpsVisitEpoch;
  std::vector<SetVar> EpsVisitParent;
  /// Adaptive per-edge search budget: halved (down to CycleSearchBudgetMin)
  /// after every failed search, restored to CycleSearchBudget by a
  /// successful collapse. Dense acyclic graphs (call graphs) stop paying
  /// for searches that never find anything.
  uint64_t EpsSearchBudget = CycleSearchBudget;
  size_t NumBounds = 0;
  ClosureStats Stats;
  CancelToken *Cancel = nullptr; ///< not owned; null = never cancels
  bool CancelLatched = false;
  uint64_t ChargedCombines = 0; ///< combines charged to the token so far

  // Sharded-close plumbing, set only on the shard-local systems built by
  // closeSharded (null/0 on ordinary systems). ShardOf is the frozen
  // var → owner-shard map (indexed by SetVar, computed from the
  // partition-time representatives); inserts targeting a variable whose
  // owner is not ShardId are diverted into Outbox[owner] instead of
  // being stored locally. Sender-side dedup still goes through Keys —
  // remote variables never gain local storage or union-find edges, so
  // keying the sent bound under the target variable itself is stable —
  // which bounds cross-shard traffic by the fixpoint size.
  const std::vector<uint32_t> *ShardOf = nullptr;
  uint32_t ShardId = 0;
  std::vector<std::vector<BoundaryMsg>> *Outbox = nullptr;
};

} // namespace spidey

#endif // SPIDEY_CONSTRAINTS_CONSTRAINT_SYSTEM_H
