//===-- constraints/serialize.h - Constraint files -------------*- C++ -*-===//
///
/// \file
/// Constraint files (§7.1): the simplified constraint system of a program
/// component, saved for reuse in later runs of the analysis. A file
/// records the component's source hash (to detect changes and skip
/// re-derivation), a fingerprint of the analysis options it was derived
/// under (a file produced by one configuration is not reusable by
/// another), its external variables keyed by stable string names, and the
/// constraints themselves.
///
/// The paper uses "a straight-forward, text-based representation" whose
/// size is "typically within a factor of two or three of the corresponding
/// source file" (§7.2); we use the same approach.
///
/// Loading reallocates all variables fresh in the target context (a
/// component's internal variables must not collide across runs); external
/// variables are reported to the caller for re-linking.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CONSTRAINTS_SERIALIZE_H
#define SPIDEY_CONSTRAINTS_SERIALIZE_H

#include "constraints/constraint_system.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spidey {

/// Stable FNV-1a content hash used to detect component changes.
std::string hashSource(std::string_view Text);

/// Serializes \p S with its \p Externals (stable key -> variable) into the
/// constraint-file text format (version 2). \p OptionsFingerprint is an
/// opaque whitespace-free token identifying the analysis configuration;
/// loaders reject files whose fingerprint differs from theirs.
std::string serializeConstraints(
    const ConstraintSystem &S,
    const std::vector<std::pair<std::string, SetVar>> &Externals,
    const SymbolTable &Syms, std::string_view SourceHash,
    std::string_view OptionsFingerprint);

/// Result of loading a constraint file.
struct LoadedConstraints {
  std::string SourceHash;
  std::string OptionsFingerprint;
  std::vector<std::pair<std::string, SetVar>> Externals;
};

/// Parses \p Text, adding all constraints (raw, unclosed) into \p Out,
/// which must use the target context. Returns false with \p Error set on
/// malformed input.
bool deserializeConstraints(std::string_view Text, SymbolTable &Syms,
                            ConstraintSystem &Out, LoadedConstraints &Info,
                            std::string &Error);

} // namespace spidey

#endif // SPIDEY_CONSTRAINTS_SERIALIZE_H
