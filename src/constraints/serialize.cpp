//===-- constraints/serialize.cpp -----------------------------*- C++ -*-===//

#include "constraints/serialize.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace spidey;

std::string spidey::hashSource(std::string_view Text) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  std::ostringstream OS;
  OS << std::hex << H;
  return OS.str();
}

std::string spidey::serializeConstraints(
    const ConstraintSystem &S,
    const std::vector<std::pair<std::string, SetVar>> &Externals,
    const SymbolTable &Syms, std::string_view SourceHash,
    std::string_view OptionsFingerprint) {
  const ConstraintContext &Ctx = S.context();
  std::ostringstream OS;
  OS << "spidey-constraint-file 2\n";
  OS << "hash " << SourceHash << "\n";
  OS << "options " << (OptionsFingerprint.empty() ? "-" : OptionsFingerprint)
     << "\n";

  // Local variable numbering.
  std::unordered_map<SetVar, uint32_t> Local;
  auto LocalOf = [&](SetVar V) {
    auto [It, New] = Local.emplace(V, static_cast<uint32_t>(Local.size()));
    (void)New;
    return It->second;
  };
  std::vector<SetVar> Vars = S.variables();
  for (SetVar V : Vars)
    LocalOf(V);
  for (const auto &[Key, Var] : Externals)
    LocalOf(Var); // externals may be untouched by any constraint

  OS << "vars " << Local.size() << "\n";

  OS << "externals " << Externals.size() << "\n";
  for (const auto &[Key, Var] : Externals)
    OS << "  " << Key << " " << LocalOf(Var) << "\n";

  // Selectors used, re-internable by name.
  std::unordered_map<Selector, uint32_t> SelLocal;
  std::vector<Selector> SelList;
  auto SelOf = [&](Selector Sel) {
    auto [It, New] = SelLocal.emplace(Sel, SelList.size());
    if (New)
      SelList.push_back(Sel);
    return It->second;
  };
  // Constants used.
  std::unordered_map<Constant, uint32_t> ConstLocal;
  std::vector<Constant> ConstList;
  auto ConstOf = [&](Constant C) {
    auto [It, New] = ConstLocal.emplace(C, ConstList.size());
    if (New)
      ConstList.push_back(C);
    return It->second;
  };

  // First pass over constraints to populate tables; collect lines. Each
  // variable's bounds are emitted in canonical (key-sorted) order rather
  // than storage order, so the file bytes are a pure function of the
  // closed bound set: the sequential and sharded close engines discover
  // bounds in different orders but serialize identically.
  std::ostringstream Body;
  size_t NumConstraints = 0;
  std::vector<LowerBound> Lows;
  std::vector<UpperBound> Ups;
  for (SetVar A : Vars) {
    const std::vector<LowerBound> &RawLows = S.lowerBounds(A);
    Lows.assign(RawLows.begin(), RawLows.end());
    std::sort(Lows.begin(), Lows.end(), ConstraintSystem::lowerBoundLess);
    const std::vector<UpperBound> &RawUps = S.upperBounds(A);
    Ups.assign(RawUps.begin(), RawUps.end());
    std::sort(Ups.begin(), Ups.end(), ConstraintSystem::upperBoundLess);
    for (const LowerBound &L : Lows) {
      if (L.K == LowerBound::Kind::ConstLB)
        Body << "cl " << LocalOf(A) << " " << ConstOf(L.C) << "\n";
      else
        Body << "sl " << LocalOf(A) << " " << SelOf(L.Sel) << " "
             << LocalOf(L.Other) << "\n";
      ++NumConstraints;
    }
    for (const UpperBound &U : Ups) {
      if (U.K == UpperBound::Kind::VarUB)
        Body << "vu " << LocalOf(A) << " " << LocalOf(U.Other) << "\n";
      else if (U.K == UpperBound::Kind::FilterUB)
        Body << "fu " << LocalOf(A) << " " << U.Sel << " "
             << LocalOf(U.Other) << "\n";
      else
        Body << "su " << LocalOf(A) << " " << SelOf(U.Sel) << " "
             << LocalOf(U.Other) << "\n";
      ++NumConstraints;
    }
  }

  OS << "selectors " << SelList.size() << "\n";
  for (Selector Sel : SelList)
    OS << "  " << Ctx.Selectors.name(Sel) << " "
       << (Ctx.Selectors.isMonotone(Sel) ? "+" : "-") << "\n";

  OS << "constants " << ConstList.size() << "\n";
  for (Constant C : ConstList) {
    const ConstantInfo &I = Ctx.Constants.info(C);
    OS << "  " << static_cast<unsigned>(I.K) << " " << I.Arity << " "
       << I.Loc.File << " " << I.Loc.Line << " " << I.Loc.Col << " ";
    if (I.Label != InvalidSymbol)
      OS << Syms.name(I.Label);
    else
      OS << "-";
    OS << "\n";
  }

  OS << "constraints " << NumConstraints << "\n";
  OS << Body.str();
  return OS.str();
}

namespace {

/// Minimal whitespace-token scanner over the file text.
class TokenStream {
public:
  explicit TokenStream(std::string_view Text) : In(std::string(Text)) {}

  bool word(std::string &Out) { return static_cast<bool>(In >> Out); }

  bool number(uint64_t &Out) {
    std::string W;
    if (!word(W))
      return false;
    char *End = nullptr;
    Out = std::strtoull(W.c_str(), &End, 10);
    return End && *End == '\0';
  }

  bool expect(const char *Expected) {
    std::string W;
    return word(W) && W == Expected;
  }

private:
  std::istringstream In;
};

bool allDigits(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

/// Validates a serialized selector name against the selector families the
/// analysis can produce and reports the family's fixed polarity and owner
/// kinds. Constraint files come from a cache directory on disk, so a name
/// outside these families (or with the wrong polarity) is a corrupt or
/// hostile file and must be rejected — interning it would poison the
/// shared selector table (SelectorTable::intern asserts polarity
/// consistency).
bool selectorFamily(const std::string &Name, Polarity &P, KindMask &Owners) {
  constexpr KindMask FnKinds =
      kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);
  struct Fixed {
    const char *Name;
    Polarity P;
    KindMask Owners;
  };
  static const Fixed Table[] = {
      {"rng", Polarity::Monotone, FnKinds},
      {"car", Polarity::Monotone, kindBit(ConstKind::Pair)},
      {"cdr", Polarity::Monotone, kindBit(ConstKind::Pair)},
      {"box+", Polarity::Monotone, kindBit(ConstKind::BoxTag)},
      {"box-", Polarity::AntiMonotone, kindBit(ConstKind::BoxTag)},
      {"vec+", Polarity::Monotone, kindBit(ConstKind::VecTag)},
      {"vec-", Polarity::AntiMonotone, kindBit(ConstKind::VecTag)},
      {"ue", Polarity::Monotone, kindBit(ConstKind::UnitTag)},
      {"ui", Polarity::AntiMonotone, kindBit(ConstKind::UnitTag)},
      {"cl-obj", Polarity::Monotone, kindBit(ConstKind::ClassTag)},
  };
  for (const Fixed &F : Table)
    if (Name == F.Name) {
      P = F.P;
      Owners = F.Owners;
      return true;
    }
  std::string_view V(Name);
  if (V.substr(0, 3) == "dom" && allDigits(V.substr(3))) {
    P = Polarity::AntiMonotone;
    Owners = FnKinds;
    return true;
  }
  if (V.size() > 5 && (V.substr(0, 5) == "ivar+" || V.substr(0, 5) == "ivar-")) {
    P = V[4] == '+' ? Polarity::Monotone : Polarity::AntiMonotone;
    Owners = kindBit(ConstKind::ObjTag);
    return true;
  }
  if (V.size() > 5 && (V.substr(0, 5) == "sfld+" || V.substr(0, 5) == "sfld-")) {
    P = V[4] == '+' ? Polarity::Monotone : Polarity::AntiMonotone;
    Owners = kindBit(ConstKind::StructTag);
    return true;
  }
  return false;
}

} // namespace

bool spidey::deserializeConstraints(std::string_view Text, SymbolTable &Syms,
                                    ConstraintSystem &Out,
                                    LoadedConstraints &Info,
                                    std::string &Error) {
  ConstraintContext &Ctx = Out.context();
  TokenStream TS(Text);
  auto Fail = [&](const char *Message) {
    Error = Message;
    return false;
  };

  if (!TS.expect("spidey-constraint-file"))
    return Fail("bad magic");
  uint64_t Version;
  if (!TS.number(Version) || Version != 2)
    return Fail("unsupported version");
  if (!TS.expect("hash"))
    return Fail("missing hash");
  if (!TS.word(Info.SourceHash))
    return Fail("missing hash value");
  if (!TS.expect("options"))
    return Fail("missing options fingerprint");
  if (!TS.word(Info.OptionsFingerprint))
    return Fail("missing options fingerprint value");
  if (Info.OptionsFingerprint == "-")
    Info.OptionsFingerprint.clear();

  uint64_t NumVars;
  if (!TS.expect("vars") || !TS.number(NumVars))
    return Fail("missing vars");
  std::vector<SetVar> VarMap(NumVars);
  for (uint64_t I = 0; I < NumVars; ++I)
    VarMap[I] = Ctx.freshVar();

  uint64_t NumExternals;
  if (!TS.expect("externals") || !TS.number(NumExternals))
    return Fail("missing externals");
  std::unordered_set<std::string> SeenExternals;
  for (uint64_t I = 0; I < NumExternals; ++I) {
    std::string Key;
    uint64_t Local;
    if (!TS.word(Key) || !TS.number(Local) || Local >= NumVars)
      return Fail("malformed external");
    if (!SeenExternals.insert(Key).second)
      return Fail("duplicate external");
    Info.Externals.emplace_back(Key, VarMap[Local]);
  }

  uint64_t NumSelectors;
  if (!TS.expect("selectors") || !TS.number(NumSelectors))
    return Fail("missing selectors");
  std::vector<Selector> SelMap(NumSelectors);
  for (uint64_t I = 0; I < NumSelectors; ++I) {
    std::string Name, Pol;
    if (!TS.word(Name) || !TS.word(Pol) || (Pol != "+" && Pol != "-"))
      return Fail("malformed selector");
    Polarity Declared =
        Pol == "+" ? Polarity::Monotone : Polarity::AntiMonotone;
    Polarity FamilyP;
    KindMask Owners;
    if (!selectorFamily(Name, FamilyP, Owners))
      return Fail("unknown selector name");
    if (FamilyP != Declared)
      return Fail("selector polarity mismatch");
    SelMap[I] = Ctx.Selectors.intern(Name, FamilyP, Owners);
  }

  uint64_t NumConstants;
  if (!TS.expect("constants") || !TS.number(NumConstants))
    return Fail("missing constants");
  std::vector<Constant> ConstMap(NumConstants);
  for (uint64_t I = 0; I < NumConstants; ++I) {
    uint64_t Kind, Arity, File, Line, Col;
    std::string Label;
    if (!TS.number(Kind) || !TS.number(Arity) || !TS.number(File) ||
        !TS.number(Line) || !TS.number(Col) || !TS.word(Label))
      return Fail("malformed constant");
    if (Kind >= static_cast<uint64_t>(ConstKind::NumConstKinds))
      return Fail("bad constant kind");
    ConstKind K = static_cast<ConstKind>(Kind);
    if (K <= ConstKind::VecTag) {
      ConstMap[I] = Ctx.Constants.basic(K);
    } else {
      SourceLoc Loc{static_cast<uint32_t>(File), static_cast<uint32_t>(Line),
                    static_cast<uint32_t>(Col)};
      Symbol LabelSym =
          Label == "-" ? InvalidSymbol : Syms.intern(Label);
      ConstMap[I] = Ctx.Constants.makeTag(K, static_cast<uint32_t>(Arity),
                                          Loc, LabelSym);
    }
  }

  uint64_t NumConstraints;
  if (!TS.expect("constraints") || !TS.number(NumConstraints))
    return Fail("missing constraints");
  for (uint64_t I = 0; I < NumConstraints; ++I) {
    std::string Op;
    if (!TS.word(Op))
      return Fail("truncated constraints");
    uint64_t A, B, Sel;
    if (Op == "cl") {
      if (!TS.number(A) || !TS.number(B) || A >= NumVars ||
          B >= NumConstants)
        return Fail("malformed cl");
      Out.addConstLowerRaw(VarMap[A], ConstMap[B]);
    } else if (Op == "sl") {
      if (!TS.number(A) || !TS.number(Sel) || !TS.number(B) || A >= NumVars ||
          B >= NumVars || Sel >= NumSelectors)
        return Fail("malformed sl");
      Out.addSelLowerRaw(VarMap[A], SelMap[Sel], VarMap[B]);
    } else if (Op == "vu") {
      if (!TS.number(A) || !TS.number(B) || A >= NumVars || B >= NumVars)
        return Fail("malformed vu");
      Out.addVarUpperRaw(VarMap[A], VarMap[B]);
    } else if (Op == "fu") {
      uint64_t Mask;
      if (!TS.number(A) || !TS.number(Mask) || !TS.number(B) ||
          A >= NumVars || B >= NumVars)
        return Fail("malformed fu");
      Out.addFilterUpperRaw(VarMap[A], static_cast<KindMask>(Mask),
                            VarMap[B]);
    } else if (Op == "su") {
      if (!TS.number(A) || !TS.number(Sel) || !TS.number(B) || A >= NumVars ||
          B >= NumVars || Sel >= NumSelectors)
        return Fail("malformed su");
      Out.addSelUpperRaw(VarMap[A], SelMap[Sel], VarMap[B]);
    } else {
      return Fail("unknown constraint op");
    }
  }
  return true;
}
