//===-- constraints/core.cpp ----------------------------------*- C++ -*-===//

#include "constraints/core.h"

#include <sstream>

using namespace spidey;

std::string ConstantTable::str(Constant C, const SymbolTable &Syms) const {
  const ConstantInfo &I = info(C);
  if (I.K <= ConstKind::VecTag)
    return constKindName(I.K);
  std::ostringstream OS;
  OS << constKindName(I.K);
  if (I.Label != InvalidSymbol)
    OS << ":" << Syms.name(I.Label);
  if (I.K == ConstKind::FnTag)
    OS << "/" << I.Arity;
  if (I.Loc.isValid())
    OS << "@" << I.Loc.Line << ":" << I.Loc.Col;
  return OS.str();
}
