//===-- constraints/constraint_system.cpp ---------------------*- C++ -*-===//

#include "constraints/constraint_system.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

using namespace spidey;

bool ConstraintSystem::insertLowerRaw(SetVar A, const LowerBound &L) {
  if (!Keys.insert(A, lowKey(L)))
    return false;
  VarBounds &B = bounds(A);
  if (B.Lows.empty())
    B.Lows.reserve(4);
  B.Lows.push_back(L);
  ++NumBounds;
  return true;
}

bool ConstraintSystem::insertUpperRaw(SetVar A, const UpperBound &U) {
  if (!Keys.insert(A, upKey(U)))
    return false;
  VarBounds &B = bounds(A);
  if (B.Ups.empty())
    B.Ups.reserve(4);
  B.Ups.push_back(U);
  ++NumBounds;
  return true;
}

bool ConstraintSystem::insertLower(SetVar A, const LowerBound &L) {
  if (!insertLowerRaw(A, L))
    return false;
  VarBounds &B = Storage[Slots[A]];
  Worklist.push_back({A, static_cast<uint32_t>(B.Lows.size() - 1), true});
  return true;
}

bool ConstraintSystem::insertUpper(SetVar A, const UpperBound &U) {
  if (!insertUpperRaw(A, U))
    return false;
  VarBounds &B = Storage[Slots[A]];
  Worklist.push_back({A, static_cast<uint32_t>(B.Ups.size() - 1), false});
  return true;
}

void ConstraintSystem::combine(const LowerBound &L, const UpperBound &U) {
  if (U.K == UpperBound::Kind::VarUB) {
    // Rules s1, s2, s3: propagate the lower bound forward along α ≤ γ.
    insertLower(U.Other, L);
    return;
  }
  if (U.K == UpperBound::Kind::FilterUB) {
    // Conditional propagation along α ≤_M γ: constants pass when their
    // kind is in M; components pass when some owner kind of their
    // selector is in M (a pair's car passes a pair? filter, etc.).
    KindMask M = U.Sel;
    if (L.K == LowerBound::Kind::ConstLB) {
      if (M & kindBit(Ctx->Constants.kind(L.C)))
        insertLower(U.Other, L);
    } else if (M & Ctx->Selectors.ownerKinds(L.Sel)) {
      insertLower(U.Other, L);
    }
    return;
  }
  // U = SelUB{s, γ}; only combines with a SelLB of the same selector.
  if (L.K != LowerBound::Kind::SelLB || L.Sel != U.Sel)
    return;
  if (Ctx->Selectors.isMonotone(L.Sel)) {
    // Rule s4: β ≤ s⁺(α) and s⁺(α) ≤ γ imply β ≤ γ.
    insertUpper(L.Other, UpperBound::var(U.Other));
  } else {
    // Rule s5: s⁻(α) ≤ γ and β ≤ s⁻(α) imply β ≤ γ.
    insertUpper(U.Other, UpperBound::var(L.Other));
  }
}

void ConstraintSystem::drain() {
  while (!Worklist.empty()) {
    Task T = Worklist.back();
    Worklist.pop_back();
    // The slot index for T.Var is stable even as combine() adds slots for
    // other variables; Storage is re-indexed on every access because its
    // buffer may move. Partner bounds are copied out before combining:
    // combine may grow the bound vectors and invalidate references.
    const uint32_t Slot = Slots[T.Var];
    if (T.IsLower) {
      LowerBound L = Storage[Slot].Lows[T.Index];
      for (size_t I = 0; I < Storage[Slot].Ups.size(); ++I) {
        UpperBound U = Storage[Slot].Ups[I];
        combine(L, U);
      }
    } else {
      UpperBound U = Storage[Slot].Ups[T.Index];
      for (size_t I = 0; I < Storage[Slot].Lows.size(); ++I) {
        LowerBound L = Storage[Slot].Lows[I];
        combine(L, U);
      }
    }
  }
}

void ConstraintSystem::close() {
  // Schedule every stored lower bound once; draining reaches the fixed
  // point. Scheduling only lower bounds suffices to consider every (L, U)
  // pair that existed before closing; bounds added during draining
  // schedule themselves.
  for (SetVar A = 0; A < Slots.size(); ++A) {
    uint32_t Slot = Slots[A];
    if (Slot == NoSlot)
      continue;
    for (uint32_t I = 0; I < Storage[Slot].Lows.size(); ++I)
      Worklist.push_back({A, I, true});
  }
  drain();
}

std::vector<SetVar> ConstraintSystem::variables() const {
  std::unordered_set<SetVar> Seen;
  for (SetVar A = 0; A < Slots.size(); ++A) {
    uint32_t Slot = Slots[A];
    if (Slot == NoSlot)
      continue;
    Seen.insert(A);
    const VarBounds &B = Storage[Slot];
    for (const LowerBound &L : B.Lows)
      if (L.K == LowerBound::Kind::SelLB)
        Seen.insert(L.Other);
    for (const UpperBound &U : B.Ups)
      Seen.insert(U.Other);
  }
  std::vector<SetVar> Result(Seen.begin(), Seen.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<Constant> ConstraintSystem::constantsOf(SetVar A) const {
  std::vector<Constant> Result;
  for (const LowerBound &L : lowerBounds(A))
    if (L.K == LowerBound::Kind::ConstLB)
      Result.push_back(L.C);
  std::sort(Result.begin(), Result.end());
  return Result;
}

void ConstraintSystem::absorbRaw(const ConstraintSystem &Other) {
  Keys.reserve(Keys.size() + Other.NumBounds);
  for (SetVar A = 0; A < Other.Slots.size(); ++A) {
    uint32_t Slot = Other.Slots[A];
    if (Slot == NoSlot)
      continue;
    const VarBounds &B = Other.Storage[Slot];
    for (const LowerBound &L : B.Lows)
      insertLowerRaw(A, L);
    for (const UpperBound &U : B.Ups)
      insertUpperRaw(A, U);
  }
}

void ConstraintSystem::absorbMapped(const ConstraintSystem &Other,
                                    const std::vector<SetVar> &VarMap,
                                    const std::vector<Constant> &ConstMap,
                                    const std::vector<Selector> &SelMap) {
  Keys.reserve(Keys.size() + Other.NumBounds);
  for (SetVar A = 0; A < Other.Slots.size(); ++A) {
    uint32_t Slot = Other.Slots[A];
    if (Slot == NoSlot)
      continue;
    SetVar MA = VarMap[A];
    const VarBounds &B = Other.Storage[Slot];
    for (const LowerBound &L : B.Lows) {
      if (L.K == LowerBound::Kind::ConstLB)
        insertLowerRaw(MA, LowerBound::constant(ConstMap[L.C]));
      else
        insertLowerRaw(
            MA, LowerBound::selector(SelMap[L.Sel], VarMap[L.Other]));
    }
    for (const UpperBound &U : B.Ups) {
      if (U.K == UpperBound::Kind::VarUB)
        insertUpperRaw(MA, UpperBound::var(VarMap[U.Other]));
      else if (U.K == UpperBound::Kind::FilterUB)
        insertUpperRaw(MA, UpperBound::filter(U.Sel, VarMap[U.Other]));
      else
        insertUpperRaw(
            MA, UpperBound::selector(SelMap[U.Sel], VarMap[U.Other]));
    }
  }
}

std::string ConstraintSystem::str() const {
  std::ostringstream OS;
  const SelectorTable &Sels = Ctx->Selectors;
  for (SetVar A = 0; A < Slots.size(); ++A) {
    if (Slots[A] == NoSlot)
      continue;
    for (const LowerBound &L : lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB) {
        OS << "c" << L.C << " <= a" << A << "\n";
      } else if (Sels.isMonotone(L.Sel)) {
        OS << "a" << L.Other << " <= " << Sels.name(L.Sel) << "(a" << A
           << ")\n";
      } else {
        OS << Sels.name(L.Sel) << "(a" << A << ") <= a" << L.Other << "\n";
      }
    }
    for (const UpperBound &U : upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB) {
        OS << "a" << A << " <= a" << U.Other << "\n";
      } else if (U.K == UpperBound::Kind::FilterUB) {
        OS << "a" << A << " <=[" << std::hex << U.Sel << std::dec << "] a"
           << U.Other << "\n";
      } else if (Sels.isMonotone(U.Sel)) {
        OS << Sels.name(U.Sel) << "(a" << A << ") <= a" << U.Other << "\n";
      } else {
        OS << "a" << U.Other << " <= " << Sels.name(U.Sel) << "(a" << A
           << ")\n";
      }
    }
  }
  return OS.str();
}
