//===-- constraints/constraint_system.cpp ---------------------*- C++ -*-===//

#include "constraints/constraint_system.h"

#include <algorithm>
#include <sstream>

using namespace spidey;

bool ConstraintSystem::insertLowerRaw(SetVar A, const LowerBound &L) {
  VarBounds &B = bounds(A);
  if (!B.LowKeys.insert(lowKey(L)).second)
    return false;
  B.Lows.push_back(L);
  ++NumBounds;
  return true;
}

bool ConstraintSystem::insertUpperRaw(SetVar A, const UpperBound &U) {
  VarBounds &B = bounds(A);
  if (!B.UpKeys.insert(upKey(U)).second)
    return false;
  B.Ups.push_back(U);
  ++NumBounds;
  return true;
}

bool ConstraintSystem::insertLower(SetVar A, const LowerBound &L) {
  if (!insertLowerRaw(A, L))
    return false;
  VarBounds &B = bounds(A);
  Worklist.push_back({A, static_cast<uint32_t>(B.Lows.size() - 1), true});
  return true;
}

bool ConstraintSystem::insertUpper(SetVar A, const UpperBound &U) {
  if (!insertUpperRaw(A, U))
    return false;
  VarBounds &B = bounds(A);
  Worklist.push_back({A, static_cast<uint32_t>(B.Ups.size() - 1), false});
  return true;
}

void ConstraintSystem::combine(const LowerBound &L, const UpperBound &U) {
  if (U.K == UpperBound::Kind::VarUB) {
    // Rules s1, s2, s3: propagate the lower bound forward along α ≤ γ.
    insertLower(U.Other, L);
    return;
  }
  if (U.K == UpperBound::Kind::FilterUB) {
    // Conditional propagation along α ≤_M γ: constants pass when their
    // kind is in M; components pass when some owner kind of their
    // selector is in M (a pair's car passes a pair? filter, etc.).
    KindMask M = U.Sel;
    if (L.K == LowerBound::Kind::ConstLB) {
      if (M & kindBit(Ctx->Constants.kind(L.C)))
        insertLower(U.Other, L);
    } else if (M & Ctx->Selectors.ownerKinds(L.Sel)) {
      insertLower(U.Other, L);
    }
    return;
  }
  // U = SelUB{s, γ}; only combines with a SelLB of the same selector.
  if (L.K != LowerBound::Kind::SelLB || L.Sel != U.Sel)
    return;
  if (Ctx->Selectors.isMonotone(L.Sel)) {
    // Rule s4: β ≤ s⁺(α) and s⁺(α) ≤ γ imply β ≤ γ.
    insertUpper(L.Other, UpperBound::var(U.Other));
  } else {
    // Rule s5: s⁻(α) ≤ β and γ ≤ s⁻(α) imply γ ≤ β.
    insertUpper(U.Other, UpperBound::var(L.Other));
  }
}

void ConstraintSystem::drain() {
  while (!Worklist.empty()) {
    Task T = Worklist.back();
    Worklist.pop_back();
    // Copy the partner bound out before combining: combine may grow the
    // bound vectors and invalidate references.
    if (T.IsLower) {
      LowerBound L = bounds(T.Var).Lows[T.Index];
      for (size_t I = 0; I < bounds(T.Var).Ups.size(); ++I) {
        UpperBound U = bounds(T.Var).Ups[I];
        combine(L, U);
      }
    } else {
      UpperBound U = bounds(T.Var).Ups[T.Index];
      for (size_t I = 0; I < bounds(T.Var).Lows.size(); ++I) {
        LowerBound L = bounds(T.Var).Lows[I];
        combine(L, U);
      }
    }
  }
}

void ConstraintSystem::close() {
  // Schedule every stored bound once; draining reaches the fixed point.
  for (auto &[Var, Slot] : Slots) {
    VarBounds &B = Storage[Slot];
    for (uint32_t I = 0; I < B.Lows.size(); ++I)
      Worklist.push_back({Var, I, true});
    // Scheduling only lower bounds suffices to consider every (L, U) pair
    // that existed before closing; bounds added during draining schedule
    // themselves.
    (void)B;
  }
  drain();
}

std::vector<SetVar> ConstraintSystem::variables() const {
  std::unordered_set<SetVar> Seen;
  for (auto &[Var, Slot] : Slots) {
    Seen.insert(Var);
    const VarBounds &B = Storage[Slot];
    for (const LowerBound &L : B.Lows)
      if (L.K == LowerBound::Kind::SelLB)
        Seen.insert(L.Other);
    for (const UpperBound &U : B.Ups)
      Seen.insert(U.Other);
  }
  std::vector<SetVar> Result(Seen.begin(), Seen.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

bool ConstraintSystem::hasConstLower(SetVar A, Constant C) const {
  auto It = Slots.find(A);
  if (It == Slots.end())
    return false;
  const VarBounds &B = Storage[It->second];
  return B.LowKeys.count(lowKey(LowerBound::constant(C))) != 0;
}

std::vector<Constant> ConstraintSystem::constantsOf(SetVar A) const {
  std::vector<Constant> Result;
  for (const LowerBound &L : lowerBounds(A))
    if (L.K == LowerBound::Kind::ConstLB)
      Result.push_back(L.C);
  std::sort(Result.begin(), Result.end());
  return Result;
}

void ConstraintSystem::absorbRaw(const ConstraintSystem &Other) {
  for (auto &[Var, Slot] : Other.Slots) {
    const VarBounds &B = Other.Storage[Slot];
    for (const LowerBound &L : B.Lows)
      insertLowerRaw(Var, L);
    for (const UpperBound &U : B.Ups)
      insertUpperRaw(Var, U);
  }
}

std::string ConstraintSystem::str() const {
  std::ostringstream OS;
  std::vector<SetVar> Vars;
  for (auto &[Var, Slot] : Slots) {
    (void)Slot;
    Vars.push_back(Var);
  }
  std::sort(Vars.begin(), Vars.end());
  const SelectorTable &Sels = Ctx->Selectors;
  for (SetVar A : Vars) {
    for (const LowerBound &L : lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB) {
        OS << "c" << L.C << " <= a" << A << "\n";
      } else if (Sels.isMonotone(L.Sel)) {
        OS << "a" << L.Other << " <= " << Sels.name(L.Sel) << "(a" << A
           << ")\n";
      } else {
        OS << Sels.name(L.Sel) << "(a" << A << ") <= a" << L.Other << "\n";
      }
    }
    for (const UpperBound &U : upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB) {
        OS << "a" << A << " <= a" << U.Other << "\n";
      } else if (U.K == UpperBound::Kind::FilterUB) {
        OS << "a" << A << " <=[" << std::hex << U.Sel << std::dec << "] a"
           << U.Other << "\n";
      } else if (Sels.isMonotone(U.Sel)) {
        OS << Sels.name(U.Sel) << "(a" << A << ") <= a" << U.Other << "\n";
      } else {
        OS << "a" << U.Other << " <= " << Sels.name(U.Sel) << "(a" << A
           << ")\n";
      }
    }
  }
  return OS.str();
}
