//===-- constraints/constraint_system.cpp ---------------------*- C++ -*-===//

#include "constraints/constraint_system.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

using namespace spidey;

std::string ClosureStats::str() const {
  std::ostringstream OS;
  OS << "  tasks drained:      " << TasksDrained << "\n"
     << "  combines:           " << CombinesAttempted << " attempted, "
     << CombinesInserted << " inserted\n"
     << "  dedup hit rate:     " << std::fixed << std::setprecision(1)
     << dedupHitRate() * 100.0 << "% (" << DedupHits << " hits)\n"
     << "  eps cycles:         " << EpsEdges << " cross-rep edges, "
     << EpsSccsCollapsed << " SCCs collapsed, " << VarsUnified
     << " vars unified\n"
     << "  cycle search steps: " << CycleSearchSteps << "\n"
     << "  peak worklist:      " << PeakWorklistDepth << "\n";
  if (ShardsUsed) {
    OS << "  close rounds:       " << CloseRounds << " (" << ShardsUsed
       << " shards)\n"
       << "  boundary traffic:   " << BoundaryLowsSent << " lows, "
       << BoundaryUpsSent << " ups\n"
       << "  shard drains:       ";
    for (size_t I = 0; I < ShardDrained.size(); ++I)
      OS << (I ? " " : "") << ShardDrained[I];
    OS << "\n";
  }
  return OS.str();
}

//===--------------------------------------------------------------------===//
// Insertion.
//
// Lower bounds live once per ε-SCC, on the representative's slot, keyed in
// the dedup set under the representative. Upper bounds live (and are
// keyed) on their original variable. NumBounds counts the *presented*
// system: a representative's lower bound counts once per SCC member, so
// size() matches what a per-variable engine would store.
//===--------------------------------------------------------------------===//

void ConstraintSystem::buildBuckets(VarBounds &B) {
  B.Buckets = std::make_unique<LowBuckets>();
  for (uint32_t I = 0; I < B.Lows.size(); ++I) {
    const LowerBound &L = B.Lows[I];
    if (L.K == LowerBound::Kind::ConstLB) {
      uint8_t Kind = static_cast<uint8_t>(Ctx->Constants.kind(L.C));
      auto It = std::find_if(B.Buckets->ByKind.begin(),
                             B.Buckets->ByKind.end(),
                             [&](const auto &P) { return P.first == Kind; });
      if (It == B.Buckets->ByKind.end()) {
        B.Buckets->ByKind.push_back({Kind, {}});
        It = std::prev(B.Buckets->ByKind.end());
      }
      It->second.push_back(I);
    } else {
      auto It = std::find_if(B.Buckets->BySel.begin(), B.Buckets->BySel.end(),
                             [&](const auto &P) { return P.first == L.Sel; });
      if (It == B.Buckets->BySel.end()) {
        B.Buckets->BySel.push_back({L.Sel, {}});
        It = std::prev(B.Buckets->BySel.end());
      }
      It->second.push_back(I);
    }
  }
}

void ConstraintSystem::appendLow(VarBounds &B, const LowerBound &L) {
  uint32_t Idx = static_cast<uint32_t>(B.Lows.size());
  if (B.Lows.empty())
    B.Lows.reserve(4);
  B.Lows.push_back(L);
  if (B.Buckets) {
    if (L.K == LowerBound::Kind::ConstLB) {
      uint8_t Kind = static_cast<uint8_t>(Ctx->Constants.kind(L.C));
      auto It = std::find_if(B.Buckets->ByKind.begin(),
                             B.Buckets->ByKind.end(),
                             [&](const auto &P) { return P.first == Kind; });
      if (It == B.Buckets->ByKind.end()) {
        B.Buckets->ByKind.push_back({Kind, {}});
        It = std::prev(B.Buckets->ByKind.end());
      }
      It->second.push_back(Idx);
    } else {
      auto It = std::find_if(B.Buckets->BySel.begin(), B.Buckets->BySel.end(),
                             [&](const auto &P) { return P.first == L.Sel; });
      if (It == B.Buckets->BySel.end()) {
        B.Buckets->BySel.push_back({L.Sel, {}});
        It = std::prev(B.Buckets->BySel.end());
      }
      It->second.push_back(Idx);
    }
  } else if (B.Lows.size() >= BucketThreshold) {
    buildBuckets(B);
  }
}

bool ConstraintSystem::insertLowerRaw(SetVar A, const LowerBound &L) {
  SetVar R = find(A);
  if (!Keys.insert(R, lowKey(L)))
    return false;
  VarBounds &B = bounds(R);
  NumBounds += sccSizeOf(B);
  appendLow(B, L);
  return true;
}

bool ConstraintSystem::insertUpperRaw(SetVar A, const UpperBound &U) {
  if (!Keys.insert(A, upKey(U)))
    return false;
  VarBounds &B = bounds(A);
  if (B.Ups.empty())
    B.Ups.reserve(4);
  B.Ups.push_back(U);
  ++NumBounds;
  return true;
}

void ConstraintSystem::markDirty(SetVar R) {
  VarBounds &B = bounds(R);
  B.Dirty = true;
  if (!B.InWorklist) {
    B.InWorklist = true;
    Worklist.push_back(R);
    if (Worklist.size() > Stats.PeakWorklistDepth)
      Stats.PeakWorklistDepth = Worklist.size();
  }
}

bool ConstraintSystem::insertLower(SetVar A, const LowerBound &L) {
  if (Outbox && (*ShardOf)[A] != ShardId) {
    if (!Keys.insert(A, lowKey(L))) {
      ++Stats.DedupHits;
      return false;
    }
    (*Outbox)[(*ShardOf)[A]].push_back({A, true, L, {}});
    ++Stats.BoundaryLowsSent;
    return false; // the owner shard stores it next round
  }
  SetVar R = find(A);
  if (!Keys.insert(R, lowKey(L))) {
    ++Stats.DedupHits;
    return false;
  }
  VarBounds &B = bounds(R);
  NumBounds += sccSizeOf(B);
  appendLow(B, L);
  markDirty(R);
  return true;
}

bool ConstraintSystem::insertUpper(SetVar A, const UpperBound &U) {
  if (Outbox && (*ShardOf)[A] != ShardId) {
    if (!Keys.insert(A, upKey(U))) {
      ++Stats.DedupHits;
      return false;
    }
    (*Outbox)[(*ShardOf)[A]].push_back({A, false, {}, U});
    ++Stats.BoundaryUpsSent;
    return false; // the owner shard stores it next round
  }
  if (!Keys.insert(A, upKey(U))) {
    ++Stats.DedupHits;
    return false;
  }
  VarBounds &B = bounds(A);
  if (B.Ups.empty())
    B.Ups.reserve(4);
  B.Ups.push_back(U);
  ++NumBounds;
  if (U.K == UpperBound::Kind::VarUB && find(A) != find(U.Other)) {
    EpsPending.push_back({A, U.Other});
    ++Stats.EpsEdges;
  }
  markDirty(find(A));
  return true;
}

//===--------------------------------------------------------------------===//
// Combination.
//===--------------------------------------------------------------------===//

void ConstraintSystem::combineRange(SetVar R, uint32_t SlotR,
                                    const UpperBound &U, uint32_t Begin,
                                    uint32_t End) {
  if (Begin >= End)
    return;
  // R's lows cannot grow while combining them (inserts either target other
  // representatives or deduplicate against R), so the data pointer and the
  // bucket index vectors are stable even though Storage itself may grow.
  const LowerBound *Lows = Storage[SlotR].Lows.data();
  const LowBuckets *BK = Storage[SlotR].Buckets.get();

  switch (U.K) {
  case UpperBound::Kind::VarUB: {
    // Rules s1, s2, s3: propagate lows forward along α ≤ γ. Within a
    // collapsed SCC the lows are already shared — nothing to do.
    if (find(U.Other) == R)
      return;
    Stats.CombinesAttempted += End - Begin;
    for (uint32_t I = Begin; I < End; ++I)
      if (insertLower(U.Other, Lows[I]))
        ++Stats.CombinesInserted;
    return;
  }

  case UpperBound::Kind::FilterUB: {
    // Conditional propagation along α ≤_M γ: constants pass when their
    // kind is in M; components pass when some owner kind of their
    // selector is in M (a pair's car passes a pair? filter, etc.).
    const KindMask M = U.Sel;
    if (!BK) {
      for (uint32_t I = Begin; I < End; ++I) {
        const LowerBound &L = Lows[I];
        bool Pass = L.K == LowerBound::Kind::ConstLB
                        ? (M & kindBit(Ctx->Constants.kind(L.C))) != 0
                        : (M & Ctx->Selectors.ownerKinds(L.Sel)) != 0;
        if (!Pass)
          continue;
        ++Stats.CombinesAttempted;
        if (insertLower(U.Other, L))
          ++Stats.CombinesInserted;
      }
      return;
    }
    // Bucketed: whole non-matching kind/selector groups are skipped
    // without touching their elements.
    for (const auto &[Kind, Idxs] : BK->ByKind) {
      if (!(M & kindBit(static_cast<ConstKind>(Kind))))
        continue;
      for (auto It = std::lower_bound(Idxs.begin(), Idxs.end(), Begin);
           It != Idxs.end() && *It < End; ++It) {
        ++Stats.CombinesAttempted;
        if (insertLower(U.Other, Lows[*It]))
          ++Stats.CombinesInserted;
      }
    }
    for (const auto &[Sel, Idxs] : BK->BySel) {
      if (!(M & Ctx->Selectors.ownerKinds(Sel)))
        continue;
      for (auto It = std::lower_bound(Idxs.begin(), Idxs.end(), Begin);
           It != Idxs.end() && *It < End; ++It) {
        ++Stats.CombinesAttempted;
        if (insertLower(U.Other, Lows[*It]))
          ++Stats.CombinesInserted;
      }
    }
    return;
  }

  case UpperBound::Kind::SelUB: {
    // U = SelUB{s, γ}; only combines with a SelLB of the same selector.
    const bool Mono = Ctx->Selectors.isMonotone(U.Sel);
    auto Apply = [&](const LowerBound &L) {
      ++Stats.CombinesAttempted;
      // Rule s4: β ≤ s⁺(α) and s⁺(α) ≤ γ imply β ≤ γ.
      // Rule s5: s⁻(α) ≤ γ and β ≤ s⁻(α) imply β ≤ γ.
      bool Inserted = Mono ? insertUpper(L.Other, UpperBound::var(U.Other))
                           : insertUpper(U.Other, UpperBound::var(L.Other));
      if (Inserted)
        ++Stats.CombinesInserted;
    };
    if (!BK) {
      for (uint32_t I = Begin; I < End; ++I)
        if (Lows[I].K == LowerBound::Kind::SelLB && Lows[I].Sel == U.Sel)
          Apply(Lows[I]);
      return;
    }
    for (const auto &[Sel, Idxs] : BK->BySel) {
      if (Sel != U.Sel)
        continue;
      for (auto It = std::lower_bound(Idxs.begin(), Idxs.end(), Begin);
           It != Idxs.end() && *It < End; ++It)
        Apply(Lows[*It]);
      return;
    }
    return;
  }
  }
}

//===--------------------------------------------------------------------===//
// The exactly-once drain.
//===--------------------------------------------------------------------===//

void ConstraintSystem::processRep(SetVar R) {
  const uint32_t SlotR = Slots[R];
  // Storage may reallocate whenever a combine creates a slot, so state is
  // re-read through SlotR/Slots on every access. Collapses are deferred to
  // drain(), so R stays a representative and its member list is stable for
  // the whole call.
  while (true) {
    if (pollCancel()) {
      Storage[SlotR].InWorklist = false;
      return;
    }
    Storage[SlotR].Dirty = false;
    const uint32_t NL = static_cast<uint32_t>(Storage[SlotR].Lows.size());
    const uint32_t LD = Storage[SlotR].LowsDone;
    const size_t NumMembers = sccSizeOf(Storage[SlotR]);

    // New lows × already-combined ups of each member: each (L, U) pair
    // with U below the member's high-water mark meets exactly here.
    if (LD < NL) {
      for (size_t MI = 0; MI < NumMembers; ++MI) {
        SetVar M =
            Storage[SlotR].Members.empty() ? R : Storage[SlotR].Members[MI];
        const uint32_t SlotM = Slots[M];
        const uint32_t UD = Storage[SlotM].UpsDone;
        for (uint32_t J = 0; J < UD; ++J) {
          UpperBound U = Storage[SlotM].Ups[J];
          combineRange(R, SlotR, U, LD, NL);
          if (pollCancel()) {
            // Bail without advancing LowsDone: the combines already done
            // are deduplicated, so redoing this range later is harmless.
            Storage[SlotR].InWorklist = false;
            return;
          }
        }
      }
      Storage[SlotR].LowsDone = NL;
    }

    // New ups of each member × all lows below the (now advanced) mark.
    for (size_t MI = 0; MI < NumMembers; ++MI) {
      SetVar M =
          Storage[SlotR].Members.empty() ? R : Storage[SlotR].Members[MI];
      const uint32_t SlotM = Slots[M];
      while (Storage[SlotM].UpsDone < Storage[SlotM].Ups.size()) {
        UpperBound U = Storage[SlotM].Ups[Storage[SlotM].UpsDone];
        ++Storage[SlotM].UpsDone;
        combineRange(R, SlotR, U, 0, NL);
        if (pollCancel()) {
          Storage[SlotR].InWorklist = false;
          return;
        }
      }
    }

    if (!Storage[SlotR].Dirty)
      break;
  }
  Storage[SlotR].InWorklist = false;
}

void ConstraintSystem::drain() {
  uint32_t Iter = 0;
  while (true) {
    // Periodic forced poll: an occasional real deadline check even when
    // every worklist item is cheap (the unforced polls between them fire
    // only per PollStride combines).
    if (pollCancel(/*Force=*/(++Iter & 63) == 0))
      return;
    if (!EpsPending.empty())
      resolveEpsPending();
    if (Worklist.empty())
      break;
    SetVar R = Worklist.back();
    Worklist.pop_back();
    if (find(R) != R)
      continue; // absorbed into another representative meanwhile
    const uint32_t Slot = Slots[R];
    if (!Storage[Slot].Dirty) {
      Storage[Slot].InWorklist = false;
      continue;
    }
    ++Stats.TasksDrained;
    processRep(R);
  }
}

//===--------------------------------------------------------------------===//
// ε-cycle elimination.
//===--------------------------------------------------------------------===//

void ConstraintSystem::collapseCycle(std::vector<SetVar> Roots) {
  std::sort(Roots.begin(), Roots.end());
  const SetVar R = Roots.front();
  const uint32_t SlotR = Slots[R];

  size_t OldCounted = 0, TotalSize = 0;
  std::vector<SetVar> NewMembers;
  for (SetVar O : Roots) {
    const VarBounds &B = Storage[Slots[O]];
    OldCounted += B.Lows.size() * sccSizeOf(B);
    TotalSize += sccSizeOf(B);
    if (B.Members.empty())
      NewMembers.push_back(O);
    else
      NewMembers.insert(NewMembers.end(), B.Members.begin(), B.Members.end());
  }
  std::sort(NewMembers.begin(), NewMembers.end());
  const size_t OldRSize = sccSizeOf(Storage[SlotR]);

  // Migrate lows of the absorbed roots into R (ascending root order keeps
  // the surviving list deterministic). Their old dedup keys go stale but
  // are never queried again: every lookup routes through find().
  if (Roots.back() >= Parent.size())
    for (SetVar V = static_cast<SetVar>(Parent.size()); V <= Roots.back();
         ++V)
      Parent.push_back(V);
  for (size_t I = 1; I < Roots.size(); ++I) {
    SetVar O = Roots[I];
    VarBounds &BO = Storage[Slots[O]];
    for (const LowerBound &L : BO.Lows)
      if (Keys.insert(R, lowKey(L)))
        appendLow(Storage[SlotR], L);
    BO.Lows = {};
    BO.Buckets.reset();
    BO.Members = {};
    BO.LowsDone = 0;
    BO.Dirty = false;
    Parent[O] = R;
  }

  VarBounds &BR = Storage[SlotR];
  BR.Members = std::move(NewMembers);
  BR.LowsDone = 0; // recombine all lows against every member's done ups
  NumBounds = NumBounds - OldCounted + BR.Lows.size() * TotalSize;
  ++Stats.EpsSccsCollapsed;
  Stats.VarsUnified += TotalSize - OldRSize;
  markDirty(R);
}

void ConstraintSystem::resolveEpsPending() {
  // Bounded Fähndrich-style partial search: for each recorded edge
  // ra → rb, look for a path rb ⇝ ra in the representative ε-graph. A
  // found path closes a cycle, which is collapsed; exceeding the budget
  // just leaves the cycle to ordinary propagation (or to the offline SCC
  // pass at the next close()).
  std::vector<SetVar> Stack;
  for (size_t EI = 0; EI < EpsPending.size(); ++EI) {
    const SetVar RA = find(EpsPending[EI].first);
    const SetVar RB = find(EpsPending[EI].second);
    if (RA == RB || slotOf(RB) == NoSlot)
      continue; // same class already, or RB has no out-edges yet

    uint64_t Budget = EpsSearchBudget;
    // Stamped visit marks: a node is visited this search iff its epoch
    // matches, so membership tests and parent lookups are O(1) without
    // per-search clearing.
    ++EpsSearchEpoch;
    if (EpsVisitEpoch.size() < Slots.size()) {
      EpsVisitEpoch.resize(Slots.size(), 0);
      EpsVisitParent.resize(Slots.size(), NoSetVar);
    }
    EpsVisitEpoch[RB] = EpsSearchEpoch;
    EpsVisitParent[RB] = NoSetVar;
    Stack.assign(1, RB);
    SetVar FoundFrom = NoSetVar;

    while (!Stack.empty() && Budget && FoundFrom == NoSetVar) {
      const SetVar Cur = Stack.back();
      Stack.pop_back();
      const uint32_t SlotCur = Slots[Cur];
      const size_t NumMembers = sccSizeOf(Storage[SlotCur]);
      for (size_t MI = 0; MI < NumMembers && Budget; ++MI) {
        SetVar M = Storage[SlotCur].Members.empty()
                       ? Cur
                       : Storage[SlotCur].Members[MI];
        const VarBounds &BM = Storage[Slots[M]];
        for (const UpperBound &U : BM.Ups) {
          if (!Budget)
            break;
          --Budget;
          ++Stats.CycleSearchSteps;
          if (U.K != UpperBound::Kind::VarUB)
            continue;
          const SetVar T = find(U.Other);
          if (T == Cur)
            continue;
          if (T == RA) {
            FoundFrom = Cur;
            break;
          }
          if (slotOf(T) == NoSlot)
            continue; // no out-edges; cannot be on a cycle
          if (EpsVisitEpoch[T] != EpsSearchEpoch) {
            EpsVisitEpoch[T] = EpsSearchEpoch;
            EpsVisitParent[T] = Cur;
            Stack.push_back(T);
          }
        }
        if (FoundFrom != NoSetVar)
          break;
      }
    }

    if (FoundFrom == NoSetVar) {
      EpsSearchBudget = std::max(CycleSearchBudgetMin, EpsSearchBudget / 2);
      continue;
    }
    EpsSearchBudget = CycleSearchBudget;
    // Reconstruct the path RB ⇝ FoundFrom and collapse it with RA.
    std::vector<SetVar> Cycle{RA};
    for (SetVar V = FoundFrom; V != NoSetVar; V = EpsVisitParent[V])
      Cycle.push_back(V);
    collapseCycle(std::move(Cycle));
  }
  EpsPending.clear();
}

void ConstraintSystem::collapseAllSccs() {
  // Offline Tarjan over the representative ε-graph; run at close() where
  // raw-built systems (deserialized files, the componential combine) get
  // their cycles collapsed in one pass before any combining happens.
  std::vector<SetVar> Nodes;
  std::vector<uint32_t> NodeIdx(Slots.size(), ~uint32_t(0));
  for (SetVar A = 0; A < Slots.size(); ++A)
    if (Slots[A] != NoSlot && find(A) == A) {
      NodeIdx[A] = static_cast<uint32_t>(Nodes.size());
      Nodes.push_back(A);
    }
  if (Nodes.empty())
    return;

  std::vector<std::vector<uint32_t>> Adj(Nodes.size());
  for (uint32_t NI = 0; NI < Nodes.size(); ++NI) {
    const SetVar R = Nodes[NI];
    const uint32_t SlotR = Slots[R];
    const size_t NumMembers = sccSizeOf(Storage[SlotR]);
    for (size_t MI = 0; MI < NumMembers; ++MI) {
      SetVar M =
          Storage[SlotR].Members.empty() ? R : Storage[SlotR].Members[MI];
      for (const UpperBound &U : Storage[Slots[M]].Ups) {
        if (U.K != UpperBound::Kind::VarUB)
          continue;
        const SetVar T = find(U.Other);
        if (T == R || slotOf(T) == NoSlot)
          continue;
        Adj[NI].push_back(NodeIdx[T]);
      }
    }
  }

  constexpr uint32_t Undef = ~uint32_t(0);
  std::vector<uint32_t> Index(Nodes.size(), Undef), Low(Nodes.size(), 0);
  std::vector<uint8_t> OnStack(Nodes.size(), 0);
  std::vector<uint32_t> SccStack;
  std::vector<std::vector<SetVar>> Sccs;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t Node;
    size_t EdgeIdx;
  };
  std::vector<Frame> Dfs;
  for (uint32_t Start = 0; Start < Nodes.size(); ++Start) {
    if (Index[Start] != Undef)
      continue;
    Dfs.push_back({Start, 0});
    Index[Start] = Low[Start] = NextIndex++;
    SccStack.push_back(Start);
    OnStack[Start] = 1;
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      if (F.EdgeIdx < Adj[F.Node].size()) {
        uint32_t W = Adj[F.Node][F.EdgeIdx++];
        if (Index[W] == Undef) {
          Index[W] = Low[W] = NextIndex++;
          SccStack.push_back(W);
          OnStack[W] = 1;
          Dfs.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < Low[F.Node]) {
          Low[F.Node] = Index[W];
        }
        continue;
      }
      uint32_t V = F.Node;
      Dfs.pop_back();
      if (!Dfs.empty() && Low[V] < Low[Dfs.back().Node])
        Low[Dfs.back().Node] = Low[V];
      if (Low[V] == Index[V]) {
        std::vector<SetVar> Scc;
        while (true) {
          uint32_t W = SccStack.back();
          SccStack.pop_back();
          OnStack[W] = 0;
          Scc.push_back(Nodes[W]);
          if (W == V)
            break;
        }
        if (Scc.size() > 1)
          Sccs.push_back(std::move(Scc));
      }
    }
  }

  for (std::vector<SetVar> &Scc : Sccs)
    collapseCycle(std::move(Scc));
}

void ConstraintSystem::close() {
  collapseAllSccs();
  // Mark every representative dirty once; processRep's high-water marks
  // make this a no-op for bounds that already combined.
  for (SetVar A = 0; A < Slots.size(); ++A) {
    if (Slots[A] == NoSlot)
      continue;
    markDirty(find(A));
  }
  drain();
}

void ConstraintSystem::addBulk(const BulkConstraint *Recs, size_t N,
                               SetVar Base) {
  // Grow the dedup table once for the whole batch instead of doubling it
  // mid-replay. Capacity is unobservable, so the resulting system stays
  // identical to one built by individual adder calls.
  Keys.reserve(Keys.size() + N);
  for (size_t I = 0; I < N; ++I) {
    const BulkConstraint &R = Recs[I];
    SetVar A = BulkConstraint::decode(R.A, Base);
    switch (R.K) {
    case BulkConstraint::Kind::ConstLow:
      addConstLower(A, R.B);
      break;
    case BulkConstraint::Kind::SelLow:
      addSelLower(A, R.Sel, BulkConstraint::decode(R.B, Base));
      break;
    case BulkConstraint::Kind::VarUp:
      addVarUpper(A, BulkConstraint::decode(R.B, Base));
      break;
    case BulkConstraint::Kind::SelUp:
      addSelUpper(A, R.Sel, BulkConstraint::decode(R.B, Base));
      break;
    case BulkConstraint::Kind::FilterUp:
      addFilterUpper(A, R.Sel, BulkConstraint::decode(R.B, Base));
      break;
    }
  }
}

//===--------------------------------------------------------------------===//
// Queries and presentation.
//===--------------------------------------------------------------------===//

std::vector<SetVar> ConstraintSystem::variables() const {
  std::vector<SetVar> Result;
  Result.reserve(Storage.size());
  std::vector<SetVar> Far;
  for (SetVar A = 0; A < Slots.size(); ++A) {
    uint32_t Slot = Slots[A];
    if (Slot == NoSlot)
      continue;
    Result.push_back(A); // ascending by construction
    const VarBounds &B = Storage[Slot];
    if (findConst(A) == A)
      for (const LowerBound &L : B.Lows)
        if (L.K == LowerBound::Kind::SelLB)
          Far.push_back(L.Other);
    for (const UpperBound &U : B.Ups)
      Far.push_back(U.Other);
  }
  std::sort(Far.begin(), Far.end());
  Far.erase(std::unique(Far.begin(), Far.end()), Far.end());

  // Sorted merge of the slot owners and the far-side variables.
  std::vector<SetVar> Merged;
  Merged.reserve(Result.size() + Far.size());
  std::merge(Result.begin(), Result.end(), Far.begin(), Far.end(),
             std::back_inserter(Merged));
  Merged.erase(std::unique(Merged.begin(), Merged.end()), Merged.end());
  return Merged;
}

void ConstraintSystem::forEachBoundSorted(
    const std::function<void(SetVar, const std::vector<LowerBound> &,
                             const std::vector<UpperBound> &)> &Fn) const {
  std::vector<LowerBound> Lows;
  std::vector<UpperBound> Ups;
  for (SetVar A : variables()) {
    Lows = lowerBounds(A);
    Ups = upperBounds(A);
    std::sort(Lows.begin(), Lows.end(), lowerBoundLess);
    std::sort(Ups.begin(), Ups.end(), upperBoundLess);
    Fn(A, Lows, Ups);
  }
}

std::vector<Constant> ConstraintSystem::constantsOf(SetVar A) const {
  std::vector<Constant> Result;
  for (const LowerBound &L : lowerBounds(A))
    if (L.K == LowerBound::Kind::ConstLB)
      Result.push_back(L.C);
  std::sort(Result.begin(), Result.end());
  return Result;
}

void ConstraintSystem::absorbRaw(const ConstraintSystem &Other) {
  Keys.reserve(Keys.size() + Other.NumBounds);
  for (SetVar A = 0; A < Other.Slots.size(); ++A) {
    if (Other.Slots[A] == NoSlot)
      continue;
    for (const LowerBound &L : Other.lowerBounds(A))
      insertLowerRaw(A, L);
    for (const UpperBound &U : Other.upperBounds(A))
      insertUpperRaw(A, U);
  }
}

void ConstraintSystem::absorbMapped(const ConstraintSystem &Other,
                                    const std::vector<SetVar> &VarMap,
                                    const std::vector<Constant> &ConstMap,
                                    const std::vector<Selector> &SelMap) {
  Keys.reserve(Keys.size() + Other.NumBounds);
  for (SetVar A = 0; A < Other.Slots.size(); ++A) {
    if (Other.Slots[A] == NoSlot)
      continue;
    SetVar MA = VarMap[A];
    for (const LowerBound &L : Other.lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB)
        insertLowerRaw(MA, LowerBound::constant(ConstMap[L.C]));
      else
        insertLowerRaw(
            MA, LowerBound::selector(SelMap[L.Sel], VarMap[L.Other]));
    }
    for (const UpperBound &U : Other.upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB)
        insertUpperRaw(MA, UpperBound::var(VarMap[U.Other]));
      else if (U.K == UpperBound::Kind::FilterUB)
        insertUpperRaw(MA, UpperBound::filter(U.Sel, VarMap[U.Other]));
      else
        insertUpperRaw(
            MA, UpperBound::selector(SelMap[U.Sel], VarMap[U.Other]));
    }
  }
}

std::string ConstraintSystem::str() const {
  // Bounds print in canonical (key-sorted) order, not storage order, so
  // the rendering depends only on the closed bound set — identical for
  // the sequential and sharded engines (see lowerBoundLess).
  std::ostringstream OS;
  const SelectorTable &Sels = Ctx->Selectors;
  std::vector<LowerBound> Lows;
  std::vector<UpperBound> Ups;
  for (SetVar A = 0; A < Slots.size(); ++A) {
    if (Slots[A] == NoSlot)
      continue;
    const std::vector<LowerBound> &RawLows = lowerBounds(A);
    Lows.assign(RawLows.begin(), RawLows.end());
    std::sort(Lows.begin(), Lows.end(), lowerBoundLess);
    const std::vector<UpperBound> &RawUps = upperBounds(A);
    Ups.assign(RawUps.begin(), RawUps.end());
    std::sort(Ups.begin(), Ups.end(), upperBoundLess);
    for (const LowerBound &L : Lows) {
      if (L.K == LowerBound::Kind::ConstLB) {
        OS << "c" << L.C << " <= a" << A << "\n";
      } else if (Sels.isMonotone(L.Sel)) {
        OS << "a" << L.Other << " <= " << Sels.name(L.Sel) << "(a" << A
           << ")\n";
      } else {
        OS << Sels.name(L.Sel) << "(a" << A << ") <= a" << L.Other << "\n";
      }
    }
    for (const UpperBound &U : Ups) {
      if (U.K == UpperBound::Kind::VarUB) {
        OS << "a" << A << " <= a" << U.Other << "\n";
      } else if (U.K == UpperBound::Kind::FilterUB) {
        OS << "a" << A << " <=[" << std::hex << U.Sel << std::dec << "] a"
           << U.Other << "\n";
      } else if (Sels.isMonotone(U.Sel)) {
        OS << Sels.name(U.Sel) << "(a" << A << ") <= a" << U.Other << "\n";
      } else {
        OS << "a" << U.Other << " <= " << Sels.name(U.Sel) << "(a" << A
           << ")\n";
      }
    }
  }
  return OS.str();
}
