//===-- constraints/const_kind.h - Abstract constant kinds ----*- C++ -*-===//
///
/// \file
/// The kinds of abstract constants in the constraint language (§2.2,
/// extended in ch. 3). Basic constants are collapsed per kind (all numbers
/// become `num`, as in MrSpidey's type display); constructed values carry
/// per-site tags so the debugger can point back at the constructing
/// expression (the paper's function/continuation/unit tags).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CONSTRAINTS_CONST_KIND_H
#define SPIDEY_CONSTRAINTS_CONST_KIND_H

#include <cstdint>

namespace spidey {

enum class ConstKind : uint8_t {
  // Basic constants; one interned constant per kind.
  Num,
  True,
  False,
  Nil,
  Str,
  Char,
  Sym,
  Void,
  Eof,
  // Data-structure tags; one interned constant per kind (§3.2 `pair`).
  Pair,
  BoxTag,
  VecTag,
  // Per-site tags; one interned constant per syntactic site.
  FnTag,     ///< per lambda; carries arity (App. E.3)
  ContTag,   ///< per callcc (§3.3)
  UnitTag,   ///< per unit/link (§3.6)
  ClassTag,  ///< per class expression (§3.7)
  ObjTag,    ///< objects of a class (§3.7)
  StructTag, ///< per declared constructor (App. D.5.4)

  NumConstKinds
};

/// Bitmask over ConstKind, used for primitive argument-domain checks
/// (App. E.5) and result descriptions.
using KindMask = uint32_t;

constexpr KindMask kindBit(ConstKind K) {
  return KindMask(1) << static_cast<unsigned>(K);
}

inline constexpr KindMask AnyKindMask = ~KindMask(0);
inline constexpr KindMask NoKindMask = 0;
/// Exactly the bits of the defined kinds; complements of kind masks should
/// be taken within this universe.
inline constexpr KindMask ValidKindMask =
    (KindMask(1) << static_cast<unsigned>(ConstKind::NumConstKinds)) - 1;

/// Short printable name of a kind (matches MrSpidey's type display where
/// one exists, e.g. `num`, `nil`, `pair`).
const char *constKindName(ConstKind K);

} // namespace spidey

#endif // SPIDEY_CONSTRAINTS_CONST_KIND_H
