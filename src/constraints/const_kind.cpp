//===-- constraints/const_kind.cpp ----------------------------*- C++ -*-===//

#include "constraints/const_kind.h"

using namespace spidey;

const char *spidey::constKindName(ConstKind K) {
  switch (K) {
  case ConstKind::Num:
    return "num";
  case ConstKind::True:
    return "true";
  case ConstKind::False:
    return "false";
  case ConstKind::Nil:
    return "nil";
  case ConstKind::Str:
    return "str";
  case ConstKind::Char:
    return "char";
  case ConstKind::Sym:
    return "sym";
  case ConstKind::Void:
    return "void";
  case ConstKind::Eof:
    return "eof";
  case ConstKind::Pair:
    return "pair";
  case ConstKind::BoxTag:
    return "box";
  case ConstKind::VecTag:
    return "vec";
  case ConstKind::FnTag:
    return "fn";
  case ConstKind::ContTag:
    return "cont";
  case ConstKind::UnitTag:
    return "unit";
  case ConstKind::ClassTag:
    return "class";
  case ConstKind::ObjTag:
    return "obj";
  case ConstKind::StructTag:
    return "struct";
  case ConstKind::NumConstKinds:
    break;
  }
  return "?";
}
