//===-- constraints/sharded_close.cpp - Sharded parallel close -*- C++ -*-===//
///
/// \file
/// ConstraintSystem::closeSharded — the sharded parallel closure fixpoint
/// (DESIGN.md §11 "Sharded closure").
///
/// The combined whole-program system's close() is the sequential tail of
/// the componential pipeline. This engine partitions it:
///
///   1. Offline Tarjan pass collapses the raw system's ε-SCCs (exactly
///      what close() does first), so ownership can be assigned per
///      representative and no *initial* cycle straddles shards.
///   2. Every variable is assigned an owner shard — the splitmix64 hash
///      of its partition-time representative — and each shard is seeded
///      with a private ConstraintSystem holding the lows of its
///      representatives and the ups of its member variables.
///   3. Each shard runs the ordinary worklist drain over its own
///      variables. Rule products that target a remote variable divert
///      into a per-(source, target) outbox instead of being stored
///      (constraint_system.cpp insertLower/insertUpper). Intra-shard
///      ε-cycles collapse locally just like the sequential engine;
///      cross-shard cycles converge by plain propagation, which the
///      sender-side dedup keeps finite.
///   4. At each barrier the coordinator concatenates outboxes into
///      inboxes in ascending source-shard order and starts the next
///      round; the global fixpoint is reached when no shard has
///      outbound traffic.
///   5. New bounds write back into the main system in ascending-variable,
///      canonical-key order.
///
/// Determinism: a shard's computation is a function of its seed and its
/// inbox sequence only; inboxes are assembled in a fixed order at
/// barriers, so thread count and scheduling cannot change any shard's
/// result. Across *shard counts* the final bound set is the unique Θ
/// fixpoint and the write-back order is canonical, so the closed main
/// system is identical to close()'s — which the canonical serialization
/// order turns into byte-identical output.
///
/// Cancellation: every shard polls the shared CancelToken during its
/// drain (charge() is thread-safe; budget overshoot is bounded by one
/// PollStride per shard), and the coordinator re-checks it at each
/// barrier. On cancellation the rounds stop and the bounds discovered so
/// far still write back — a partially closed system is internally
/// consistent, and closureCancelled() reports the result as degraded
/// exactly like a cancelled sequential close.
///
//===----------------------------------------------------------------------===//

#include "constraints/constraint_system.h"

#include <algorithm>

using namespace spidey;

void ConstraintSystem::closeSharded(unsigned NumShards,
                                    ParallelRunner *Runner) {
  if (NumShards <= 1) {
    close();
    return;
  }

  // Phase 1: collapse the ε-SCCs the raw system already has, so the
  // ownership map below is per-representative and every initial cycle
  // lives entirely inside one shard.
  collapseAllSccs();
  if (pollCancel(/*Force=*/true))
    return;

  // Frozen ownership map. close() never creates variables, so sizing it
  // to the context covers every variable a rule product can mention.
  std::vector<uint32_t> ShardOfVar(Ctx->numVars());
  for (SetVar V = 0; V < ShardOfVar.size(); ++V)
    ShardOfVar[V] = shardOfRep(findConst(V), NumShards);

  // Phase 2: seed one private system per shard. Lower bounds live at
  // representatives, upper bounds at their original variables — raw
  // inserts, so no combining happens until the rounds start. The ε-edges
  // among an initial SCC's members are part of the seeded ups, so each
  // shard's own offline pass rebuilds exactly the collapsed classes it
  // owns.
  std::vector<ConstraintSystem> ShardSys;
  ShardSys.reserve(NumShards);
  std::vector<std::vector<std::vector<BoundaryMsg>>> Outboxes(NumShards);
  for (uint32_t S = 0; S < NumShards; ++S) {
    ShardSys.emplace_back(*Ctx);
    Outboxes[S].resize(NumShards);
    ShardSys[S].ShardOf = &ShardOfVar;
    ShardSys[S].ShardId = S;
    ShardSys[S].Outbox = &Outboxes[S];
    ShardSys[S].setCancel(Cancel);
    ShardSys[S].Keys.reserve(NumBounds / NumShards);
  }
  for (SetVar A = 0; A < Slots.size(); ++A) {
    const uint32_t Slot = Slots[A];
    if (Slot == NoSlot)
      continue;
    ConstraintSystem &Sys = ShardSys[ShardOfVar[A]];
    for (const UpperBound &U : Storage[Slot].Ups)
      Sys.insertUpperRaw(A, U);
    if (findConst(A) == A)
      for (const LowerBound &L : Storage[Slot].Lows)
        Sys.insertLowerRaw(A, L);
  }

  // Phase 3: barrier rounds. Round 0 is each shard's close() (offline
  // collapse + full drain); later rounds apply the inbox and re-drain.
  // Inboxes are rebuilt at each barrier by concatenating outboxes in
  // ascending source-shard order, so a shard's input sequence — and
  // therefore its entire computation — is independent of thread count.
  std::vector<std::vector<BoundaryMsg>> Inbox(NumShards);
  uint64_t Rounds = 0;
  bool First = true;
  while (true) {
    auto Work = [&](uint32_t S) {
      ConstraintSystem &Sys = ShardSys[S];
      if (First) {
        Sys.close();
        return;
      }
      for (const BoundaryMsg &M : Inbox[S]) {
        if (M.IsLow)
          Sys.insertLower(M.Target, M.Low);
        else
          Sys.insertUpper(M.Target, M.Up);
      }
      Sys.drain();
    };
    if (Runner)
      Runner->run(NumShards, Work);
    else
      for (uint32_t S = 0; S < NumShards; ++S)
        Work(S);
    First = false;
    ++Rounds;

    bool AnyCancelled = Cancel && Cancel->cancelled();
    for (ConstraintSystem &Sys : ShardSys)
      AnyCancelled |= Sys.CancelLatched;
    if (AnyCancelled) {
      CancelLatched = true;
      break;
    }

    bool AnyTraffic = false;
    for (std::vector<BoundaryMsg> &I : Inbox)
      I.clear();
    for (uint32_t Src = 0; Src < NumShards; ++Src)
      for (uint32_t Tgt = 0; Tgt < NumShards; ++Tgt) {
        std::vector<BoundaryMsg> &Out = Outboxes[Src][Tgt];
        if (Out.empty())
          continue;
        AnyTraffic = true;
        Inbox[Tgt].insert(Inbox[Tgt].end(), Out.begin(), Out.end());
        Out.clear();
      }
    if (!AnyTraffic)
      break;
  }

  // Phase 4: deterministic write-back. Every bound a shard discovered
  // enters the main system in ascending-variable order, each variable's
  // new bounds sorted by canonical key — the stored lists end up
  // identical for every shard count. Raw inserts: the main system's
  // union-find was frozen after phase 1, queries keep presenting through
  // it, and dedup drops everything the seed already had. On a cancelled
  // run this writes back the partial closure, which is sound (every
  // bound is real) just not a fixpoint.
  std::vector<LowerBound> NewLows;
  std::vector<UpperBound> NewUps;
  for (SetVar A = 0; A < ShardOfVar.size(); ++A) {
    ConstraintSystem &Sys = ShardSys[ShardOfVar[A]];
    if (Sys.slotOf(A) == NoSlot)
      continue;
    const SetVar MainRep = find(A);
    NewLows.clear();
    for (const LowerBound &L : Sys.lowerBounds(A))
      if (!Keys.contains(MainRep, lowKey(L)))
        NewLows.push_back(L);
    std::sort(NewLows.begin(), NewLows.end(), lowerBoundLess);
    for (const LowerBound &L : NewLows)
      insertLowerRaw(A, L);
    NewUps.clear();
    for (const UpperBound &U : Sys.upperBounds(A))
      if (!Keys.contains(A, upKey(U)))
        NewUps.push_back(U);
    std::sort(NewUps.begin(), NewUps.end(), upperBoundLess);
    for (const UpperBound &U : NewUps)
      insertUpperRaw(A, U);
  }

  // Telemetry: fold the shard counters into this system's stats and
  // record the round/boundary/per-shard numbers.
  std::vector<uint64_t> Drains(NumShards, 0);
  for (uint32_t S = 0; S < NumShards; ++S) {
    Drains[S] = ShardSys[S].Stats.TasksDrained;
    Stats.merge(ShardSys[S].Stats);
  }
  Stats.CloseRounds += Rounds;
  Stats.ShardsUsed = NumShards;
  Stats.ShardDrained = std::move(Drains);
}
