//===-- serve/json.h - Minimal JSON values ---------------------*- C++ -*-===//
///
/// \file
/// A small self-contained JSON representation for the spidey-serve
/// protocol: newline-delimited JSON requests and responses. Objects keep
/// their members in insertion order so responses serialize
/// deterministically. No external dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SERVE_JSON_H
#define SPIDEY_SERVE_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace spidey::json {

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Value() : V(nullptr) {}
  Value(std::nullptr_t) : V(nullptr) {}
  Value(bool B) : V(B) {}
  Value(double N) : V(N) {}
  Value(int N) : V(static_cast<double>(N)) {}
  Value(unsigned N) : V(static_cast<double>(N)) {}
  Value(long N) : V(static_cast<double>(N)) {}
  Value(unsigned long N) : V(static_cast<double>(N)) {}
  Value(long long N) : V(static_cast<double>(N)) {}
  Value(unsigned long long N) : V(static_cast<double>(N)) {}
  Value(const char *S) : V(std::string(S)) {}
  Value(std::string S) : V(std::move(S)) {}
  Value(std::string_view S) : V(std::string(S)) {}
  Value(Array A) : V(std::move(A)) {}
  Value(Object O) : V(std::move(O)) {}

  static Value object() { return Value(Object{}); }
  static Value array() { return Value(Array{}); }

  Kind kind() const { return static_cast<Kind>(V.index()); }
  bool isNull() const { return kind() == Kind::Null; }
  bool isBool() const { return kind() == Kind::Bool; }
  bool isNumber() const { return kind() == Kind::Number; }
  bool isString() const { return kind() == Kind::String; }
  bool isArray() const { return kind() == Kind::Array; }
  bool isObject() const { return kind() == Kind::Object; }

  bool asBool(bool Default = false) const {
    return isBool() ? std::get<bool>(V) : Default;
  }
  double asNumber(double Default = 0) const {
    return isNumber() ? std::get<double>(V) : Default;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return isString() ? std::get<std::string>(V) : Empty;
  }
  const Array &items() const {
    static const Array Empty;
    return isArray() ? std::get<Array>(V) : Empty;
  }
  const Object &members() const {
    static const Object Empty;
    return isObject() ? std::get<Object>(V) : Empty;
  }

  /// Object member lookup; null if absent or not an object.
  const Value *find(std::string_view Key) const {
    if (!isObject())
      return nullptr;
    for (const auto &[K, Val] : std::get<Object>(V))
      if (K == Key)
        return &Val;
    return nullptr;
  }

  /// Convenience: string member with default.
  std::string str(std::string_view Key,
                  std::string_view Default = {}) const {
    const Value *M = find(Key);
    return M && M->isString() ? M->asString() : std::string(Default);
  }

  /// Appends/overwrites an object member (this must be an object).
  void set(std::string Key, Value Val);
  /// Appends an array element (this must be an array).
  void push(Value Val);

  /// Serializes to a single line (no trailing newline).
  std::string dump() const;

  /// Parses one JSON document; nullopt (with \p Error set when given) on
  /// malformed input or trailing garbage.
  static std::optional<Value> parse(std::string_view Text,
                                    std::string *Error = nullptr);

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> V;
};

} // namespace spidey::json

#endif // SPIDEY_SERVE_JSON_H
