//===-- serve/registry.h - Multi-tenant session registry -------*- C++ -*-===//
///
/// \file
/// The multi-tenant layer of spidey-serve (DESIGN.md §13): one process
/// serves many concurrent client connections, each with its own
/// ServeSession, over one shared content-addressed constraint store.
///
/// SessionRegistry owns the per-client sessions keyed by session id and
/// the process-wide MemoryConstraintStore every session analyzes
/// through. Because store keys are content-addressed (componentStoreKey:
/// source hash + options fingerprint + file slot), two clients analyzing
/// *different programs* that share a library file derive its summary
/// once — the second session's analyze reports a store hit, attributed
/// as a cross-session hit in its `stats`.
///
/// ClientContext is the RAII handle a connection thread drives: it
/// borrows the session for the connection's lifetime and unregisters it
/// on destruction. A session is single-threaded — exactly one connection
/// thread calls handleLine() on it — while the registry and the shared
/// store are thread-safe, so connection threads never contend except on
/// open/close and store probes.
///
/// Isolation contract: every request a client sends is answered byte-
/// identically to the same request sequence against a dedicated
/// single-session daemon (pinned by multi_serve_test). Shared state is
/// limited to (a) the constraint store, whose entries are immutable
/// images keyed by content, and (b) the process-global FaultInjector —
/// a chaos spec armed by any session applies daemon-wide, matching the
/// single-tenant semantics of SPIDEY_FAULTS.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SERVE_REGISTRY_H
#define SPIDEY_SERVE_REGISTRY_H

#include "serve/serve.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

class ClientContext;

/// Owns the per-client ServeSessions and the shared constraint store.
/// Thread-safe: connection threads connect()/disconnect concurrently.
class SessionRegistry {
public:
  /// \p Base is the option template every session starts from (its
  /// SharedStore/SessionId members are overwritten per session).
  /// \p DefaultFiles is the program preloaded into each new session —
  /// the implicit per-connection session of the daemon CLI; clients
  /// switch programs with {"cmd":"open","files":[...]}. \p MaxSessions
  /// bounds concurrent sessions (0 = unbounded).
  SessionRegistry(ServeOptions Base, std::vector<SourceFile> DefaultFiles,
                  size_t MaxSessions = 0);
  ~SessionRegistry();

  /// Opens a session and returns the connection's handle; null with
  /// \p Error set when the session limit is reached. The handle must not
  /// outlive the registry.
  std::unique_ptr<ClientContext> connect(std::string &Error);

  /// The process-wide store all sessions share.
  MemoryConstraintStore &store() { return Store; }

  size_t active() const;
  uint64_t opened() const;
  size_t maxSessions() const { return MaxSessions; }

private:
  friend class ClientContext;
  void disconnect(uint64_t Id);

  ServeOptions Base;
  std::vector<SourceFile> DefaultFiles;
  size_t MaxSessions;
  /// Declared before Sessions: destroyed after every session that holds
  /// a pointer to it.
  MemoryConstraintStore Store;
  mutable std::mutex M;
  std::unordered_map<uint64_t, std::unique_ptr<ServeSession>> Sessions;
  uint64_t NextId = 1;
  uint64_t Opened = 0;
};

/// One connection's borrowed session. Drives the same line-in/line-out
/// interface as a bare ServeSession (the tool's serve loop is generic
/// over the two), and unregisters the session when destroyed — a client
/// hanging up is the normal way a session ends.
class ClientContext {
public:
  ~ClientContext() { Reg->disconnect(Id); }
  ClientContext(const ClientContext &) = delete;
  ClientContext &operator=(const ClientContext &) = delete;

  std::string handleLine(const std::string &Line) {
    return Session->handleLine(Line);
  }
  static std::string lineTooLongResponse(size_t Limit) {
    return ServeSession::lineTooLongResponse(Limit);
  }
  /// The client asked the daemon to shut down (drain).
  bool shutdownRequested() const { return Session->shutdownRequested(); }

  uint64_t id() const { return Id; }
  ServeSession &session() { return *Session; }

private:
  friend class SessionRegistry;
  ClientContext(SessionRegistry &Reg, uint64_t Id, ServeSession &Session)
      : Reg(&Reg), Id(Id), Session(&Session) {}

  SessionRegistry *Reg;
  uint64_t Id;
  ServeSession *Session;
};

} // namespace spidey

#endif // SPIDEY_SERVE_REGISTRY_H
