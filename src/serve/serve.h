//===-- serve/serve.h - Incremental re-analysis daemon ---------*- C++ -*-===//
///
/// \file
/// The spidey-serve session: a long-lived analysis state that keeps the
/// parsed program and its per-component constraint files resident and
/// answers newline-delimited JSON requests. On an edit, only the dirtied
/// components are re-derived: every other component is served from the
/// in-memory constraint store (backed by the on-disk cache directory when
/// one is configured), with the cache-hardening validation of
/// componential.h deciding what "dirtied" means — a source-hash change for
/// the edited component itself, plus an external-set change for any
/// dependent whose interface the edit altered.
///
/// Because the session runs the analyzer with MergeViaFiles, the combined
/// system after a warm edit is byte-identical to a cold whole-program run
/// at the same options.
///
/// "flow" and "check-summary" answer through the demand-driven query
/// engine (query/query_engine.h, DESIGN.md §12): a persistent per-
/// generation flow index plus cross-edit region/verdict memoization, so a
/// warm flow query is answered without rebuilding any whole-program
/// structure and a check summary after a 1-component edit re-checks
/// exactly that component. Answers are identical to the whole-program
/// paths (pinned by the `query` fuzz oracle); check-summary additionally
/// reports components_rechecked / components_reused, and stats gains the
/// engine's counters.
///
/// Protocol (one JSON object per line, "cmd" selects the operation):
///   {"cmd":"open","files":["a.ss",...]}            (re)load the program
///   {"cmd":"analyze"}
///   {"cmd":"edit","file":"main.ss","text":"..."}   text optional: re-read
///   {"cmd":"flow","name":"f"}                      from disk when absent
///   {"cmd":"check-summary"}
///   {"cmd":"stats"}
///   {"cmd":"configure","deadline_ms":N,"max_constraints":N,
///    "max_store_bytes":N,"faults":"spec"}          all members optional
///   {"cmd":"shutdown"}
/// Responses always carry "ok"; failures add "error" plus a stable
/// machine-readable "code" (bad-json, bad-request, bad-cmd, unknown-cmd,
/// bad-field, unknown-file, parse-error, analysis-error, line-too-long,
/// internal).
///
/// Fault-tolerance contract (see DESIGN.md §9):
///  - handle() never throws and never wedges: an exception anywhere in a
///    command becomes an {"ok":false,...,"code":"internal"} response and
///    the session keeps serving.
///  - With a deadline (ServeOptions::DeadlineMs / configure) or a
///    constraint budget armed, an analyze that runs over returns in
///    bounded time with "ok":true,"degraded":true and the names of the
///    components that never converged; the session stays dirty, so the
///    next analyze starts from scratch and — once within budget — yields
///    the exact cold-run combined text.
///  - The in-memory store is an LRU cache with a byte cap; eviction (or a
///    full wipe) only ever costs re-derivation, never correctness, and a
///    wiped store warms back up from CacheDir when one is configured.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SERVE_SERVE_H
#define SPIDEY_SERVE_SERVE_H

#include "componential/componential.h"
#include "lang/parser.h"
#include "query/query_engine.h"
#include "serve/json.h"
#include "support/cancel.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

/// Thread-safe in-memory constraint-file store (the step-1 workers probe
/// and fill it concurrently) with LRU eviction under an optional byte
/// cap. Losing an entry is always safe: the analyzer falls back to the
/// on-disk cache or a fresh derivation.
///
/// One store can back many concurrent serve sessions (DESIGN.md §13):
/// keys are content-addressed (componentStoreKey), and each entry
/// remembers which session wrote it, so loadFor() can report when a
/// session is served by another session's derivation — the cross-program
/// componential reuse the multi-tenant daemon exists for.
class MemoryConstraintStore : public ConstraintStore {
public:
  std::optional<std::string> load(const std::string &Key) override;
  void store(const std::string &Key, const std::string &Text) override;

  /// load()/store() with the calling session attributed. On a hit,
  /// \p CrossSession (when non-null) is set to whether the entry was last
  /// written by a *different* session; such hits also bump the store-wide
  /// crossSessionHits() counter.
  std::optional<std::string> loadFor(const std::string &Key,
                                     uint64_t Session, bool *CrossSession);
  void storeFor(const std::string &Key, const std::string &Text,
                uint64_t Session);

  /// Caps the store's total text bytes (0 = unlimited); evicts
  /// least-recently-used entries immediately if already over.
  void setMaxBytes(size_t Bytes);

  /// Drops every entry (the crash / restart analogue; also an injection
  /// target via the "store.wipe" fault site in the serve loop).
  void clear();

  size_t entries() const;
  size_t bytes() const;
  size_t maxBytes() const;
  uint64_t evictions() const;
  /// Hits across all sessions where the entry's writer was a different
  /// session — the daemon-wide cross-program reuse counter.
  uint64_t crossSessionHits() const;

private:
  /// Evicts LRU entries until TotalBytes <= MaxBytes. Caller holds M.
  void evictLocked();

  struct Entry {
    std::string Text;
    uint64_t Writer = 0; ///< session id of the last writer
    std::list<std::string>::iterator Recency;
  };

  mutable std::mutex M;
  std::unordered_map<std::string, Entry> Map;
  std::list<std::string> Recency; ///< front = most recently used
  size_t TotalBytes = 0;
  size_t MaxBytes = 0; ///< 0 = unlimited
  uint64_t Evictions = 0;
  uint64_t CrossSessionHits = 0;
};

/// A per-session lens over a (possibly shared) MemoryConstraintStore:
/// fulfills the analyzer's ConstraintStore interface while attributing
/// every probe and fill to the owning session, so `stats` can report how
/// much of a session's work was served from other sessions' derivations.
/// The counters are atomics — the session's step-1 workers drive them
/// concurrently.
class SessionStoreView final : public ConstraintStore {
public:
  SessionStoreView(MemoryConstraintStore &Backing, uint64_t Session)
      : Backing(Backing), Session(Session) {}

  std::optional<std::string> load(const std::string &Key) override {
    bool Cross = false;
    std::optional<std::string> Text = Backing.loadFor(Key, Session, &Cross);
    if (Text) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      if (Cross)
        CrossHits.fetch_add(1, std::memory_order_relaxed);
    }
    return Text;
  }
  void store(const std::string &Key, const std::string &Text) override {
    Stores.fetch_add(1, std::memory_order_relaxed);
    Backing.storeFor(Key, Text, Session);
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t crossSessionHits() const {
    return CrossHits.load(std::memory_order_relaxed);
  }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }

private:
  MemoryConstraintStore &Backing;
  uint64_t Session;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> CrossHits{0};
  std::atomic<uint64_t> Stores{0};
};

struct ServeOptions {
  SimplifyAlgorithm Simplify = SimplifyAlgorithm::EpsilonRemoval;
  AnalysisOptions Derive;
  /// Worker threads for step 1 (0 = hardware concurrency).
  unsigned Threads = 0;
  /// Close the merged system with the sharded parallel fixpoint
  /// (byte-identical output; see ComponentialOptions::ParallelClose).
  bool ParallelClose = false;
  /// Shard count for ParallelClose (0 = one per worker thread).
  unsigned CloseShards = 0;
  /// Optional on-disk constraint-file cache behind the in-memory store;
  /// lets a fresh daemon warm-start from a previous run.
  std::string CacheDir;
  /// Per-request wall-clock deadline for analysis work, in milliseconds
  /// (0 = none). An over-deadline analyze answers "degraded" instead of
  /// hanging.
  uint64_t DeadlineMs = 0;
  /// Per-request closure-work budget in combine attempts (0 = none); the
  /// deterministic twin of DeadlineMs, used by tests.
  uint64_t MaxConstraints = 0;
  /// Byte cap for the in-memory constraint store (0 = unlimited).
  size_t MaxStoreBytes = 0;
  /// Fault-injection spec installed at session construction (see
  /// support/faultinject.h); empty leaves the global injector untouched.
  std::string Faults;
  /// Process-wide constraint store shared with other sessions (not
  /// owned; the multi-tenant daemon's SessionRegistry provides it).
  /// Null makes the session own a private store — the single-tenant
  /// behavior. MaxStoreBytes and the "store.wipe" site act on whichever
  /// store is in effect, so configure/chaos semantics are daemon-wide
  /// under sharing.
  MemoryConstraintStore *SharedStore = nullptr;
  /// This session's id for store attribution (0 in single-tenant use).
  uint64_t SessionId = 0;
};

/// Counters for one analyze pass and, accumulated, for the session.
struct ServeMetrics {
  uint64_t Requests = 0;
  uint64_t Analyzes = 0; ///< passes that actually ran the analyzer
  uint64_t Edits = 0;
  uint64_t ComponentsRederived = 0;
  uint64_t ComponentsReused = 0;
  uint64_t CacheHits = 0;
  /// Misses with no usable entry (no entry, corrupt).
  uint64_t CacheMisses = 0;
  /// Entries present but rejected: stale hash, options mismatch, or a
  /// changed external set (dependent invalidation).
  uint64_t CacheInvalidations = 0;
  /// Responses answered with "ok":false (hostile input, analysis
  /// failures) — the session survived each one.
  uint64_t Errors = 0;
  /// Errors caught by the exception barrier around handle().
  uint64_t InternalErrors = 0;
  /// Analyze passes cut short by a deadline or budget.
  uint64_t Degraded = 0;
  /// This session's in-memory store hits, and the subset served from an
  /// entry last written by a *different* session (cross-program reuse).
  uint64_t StoreHits = 0;
  uint64_t StoreCrossHits = 0;
  double DeriveMs = 0;
  double MergeMs = 0;
  double CloseMs = 0;
};

class ServeSession {
public:
  explicit ServeSession(ServeOptions Opts);
  ~ServeSession();

  /// Reads \p Paths from disk as the program under analysis. False (with
  /// \p Error set) if any file is unreadable.
  bool loadFiles(const std::vector<std::string> &Paths, std::string &Error);
  /// Sets the program directly (tests, benchmarks).
  void setFiles(std::vector<SourceFile> Files);

  /// Dispatches one request and returns the response object. Never
  /// throws: anything escaping a command handler becomes a structured
  /// "internal" error response.
  json::Value handle(const json::Value &Request);
  /// Convenience: parse one request line, dispatch, dump the response.
  std::string handleLine(const std::string &Line);

  /// The structured response for a request line that exceeded the
  /// transport's line cap (the tool answers this without buffering the
  /// line).
  static std::string lineTooLongResponse(size_t Limit);

  bool shutdownRequested() const { return Shutdown; }

  /// The combined system's text at current sources (analyzing if needed);
  /// empty on analysis failure. Byte-comparable against a cold run.
  std::string combinedText();

  /// Re-arms the per-request analysis limits (also reachable through the
  /// "configure" command).
  void setLimits(uint64_t DeadlineMs, uint64_t MaxConstraints);

  const ServeMetrics &totals() const { return Totals; }
  /// The analyze/reuse counters of the most recent analyze pass.
  const ServeMetrics &lastRun() const { return LastRun; }
  /// True if the most recent analyze pass was cut short.
  bool lastDegraded() const { return LastDegraded; }

  /// The store this session analyzes against: the registry's shared
  /// store under multi-tenancy, the session's own otherwise.
  MemoryConstraintStore &store() {
    return Opts.SharedStore ? *Opts.SharedStore : OwnedStore;
  }

private:
  json::Value cmdAnalyze();
  json::Value cmdOpen(const json::Value &Request);
  json::Value cmdEdit(const json::Value &Request);
  json::Value cmdFlow(const json::Value &Request);
  json::Value cmdCheckSummary();
  json::Value cmdStats();
  json::Value cmdConfigure(const json::Value &Request);
  json::Value dispatch(const json::Value &Request);

  /// Re-parses and re-analyzes if sources changed since the last pass.
  /// False (with \p Error set) on parse failure. A deadline/budget
  /// overrun returns true with LastDegraded set and the session still
  /// dirty.
  bool ensureAnalyzed(std::string &Error);

  ServeOptions Opts;
  /// The session's private store; idle when Opts.SharedStore is set.
  MemoryConstraintStore OwnedStore;
  /// The session-attributed lens the analyzer probes through (over the
  /// shared store when one is configured, else OwnedStore). Declared
  /// after the stores it references.
  SessionStoreView StoreView;
  /// Owns the cancellation token the analyzer polls; declared before CA
  /// so it outlives the analyzer holding a pointer to it.
  std::unique_ptr<CancelToken> Token;
  std::vector<SourceFile> Files;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ComponentialAnalyzer> CA;
  /// The demand-driven query layer (DESIGN.md §12): persistent flow
  /// index, region-digest memoization, incremental check verdicts.
  /// Declared after CA — it borrows Prog/CA/Token between rebinds and
  /// must be destroyed first.
  QueryEngine Queries;
  bool Dirty = true;
  bool Shutdown = false;
  bool LastDegraded = false;
  std::vector<std::string> LastUnconverged; ///< component names
  bool LastCloseConverged = true;
  ServeMetrics Totals;
  ServeMetrics LastRun;
};

} // namespace spidey

#endif // SPIDEY_SERVE_SERVE_H
