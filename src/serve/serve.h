//===-- serve/serve.h - Incremental re-analysis daemon ---------*- C++ -*-===//
///
/// \file
/// The spidey-serve session: a long-lived analysis state that keeps the
/// parsed program and its per-component constraint files resident and
/// answers newline-delimited JSON requests. On an edit, only the dirtied
/// components are re-derived: every other component is served from the
/// in-memory constraint store (backed by the on-disk cache directory when
/// one is configured), with the cache-hardening validation of
/// componential.h deciding what "dirtied" means — a source-hash change for
/// the edited component itself, plus an external-set change for any
/// dependent whose interface the edit altered.
///
/// Because the session runs the analyzer with MergeViaFiles, the combined
/// system after a warm edit is byte-identical to a cold whole-program run
/// at the same options.
///
/// Protocol (one JSON object per line, "cmd" selects the operation):
///   {"cmd":"analyze"}
///   {"cmd":"edit","file":"main.ss","text":"..."}   text optional: re-read
///   {"cmd":"flow","name":"f"}                      from disk when absent
///   {"cmd":"check-summary"}
///   {"cmd":"stats"}
///   {"cmd":"shutdown"}
/// Responses always carry "ok"; failures add "error".
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SERVE_SERVE_H
#define SPIDEY_SERVE_SERVE_H

#include "componential/componential.h"
#include "debugger/checks.h"
#include "lang/parser.h"
#include "serve/json.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace spidey {

/// Thread-safe in-memory constraint-file store (the step-1 workers probe
/// and fill it concurrently).
class MemoryConstraintStore : public ConstraintStore {
public:
  std::optional<std::string> load(const std::string &Key) override;
  void store(const std::string &Key, const std::string &Text) override;

  size_t entries() const;
  size_t bytes() const;

private:
  mutable std::mutex M;
  std::unordered_map<std::string, std::string> Map;
  size_t TotalBytes = 0;
};

struct ServeOptions {
  SimplifyAlgorithm Simplify = SimplifyAlgorithm::EpsilonRemoval;
  AnalysisOptions Derive;
  /// Worker threads for step 1 (0 = hardware concurrency).
  unsigned Threads = 0;
  /// Optional on-disk constraint-file cache behind the in-memory store;
  /// lets a fresh daemon warm-start from a previous run.
  std::string CacheDir;
};

/// Counters for one analyze pass and, accumulated, for the session.
struct ServeMetrics {
  uint64_t Requests = 0;
  uint64_t Analyzes = 0; ///< passes that actually ran the analyzer
  uint64_t Edits = 0;
  uint64_t ComponentsRederived = 0;
  uint64_t ComponentsReused = 0;
  uint64_t CacheHits = 0;
  /// Misses with no usable entry (no entry, corrupt).
  uint64_t CacheMisses = 0;
  /// Entries present but rejected: stale hash, options mismatch, or a
  /// changed external set (dependent invalidation).
  uint64_t CacheInvalidations = 0;
  double DeriveMs = 0;
  double MergeMs = 0;
  double CloseMs = 0;
};

class ServeSession {
public:
  explicit ServeSession(ServeOptions Opts);
  ~ServeSession();

  /// Reads \p Paths from disk as the program under analysis. False (with
  /// \p Error set) if any file is unreadable.
  bool loadFiles(const std::vector<std::string> &Paths, std::string &Error);
  /// Sets the program directly (tests, benchmarks).
  void setFiles(std::vector<SourceFile> Files);

  /// Dispatches one request and returns the response object.
  json::Value handle(const json::Value &Request);
  /// Convenience: parse one request line, dispatch, dump the response.
  std::string handleLine(const std::string &Line);

  bool shutdownRequested() const { return Shutdown; }

  /// The combined system's text at current sources (analyzing if needed);
  /// empty on analysis failure. Byte-comparable against a cold run.
  std::string combinedText();

  const ServeMetrics &totals() const { return Totals; }
  /// The analyze/reuse counters of the most recent analyze pass.
  const ServeMetrics &lastRun() const { return LastRun; }

private:
  json::Value cmdAnalyze();
  json::Value cmdEdit(const json::Value &Request);
  json::Value cmdFlow(const json::Value &Request);
  json::Value cmdCheckSummary();
  json::Value cmdStats();

  /// Re-parses and re-analyzes if sources changed since the last pass.
  /// False (with \p Error set) on parse failure.
  bool ensureAnalyzed(std::string &Error);

  ServeOptions Opts;
  MemoryConstraintStore Store;
  std::vector<SourceFile> Files;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ComponentialAnalyzer> CA;
  std::unique_ptr<DebugReport> Checks; ///< lazy, invalidated by edits
  bool Dirty = true;
  bool Shutdown = false;
  ServeMetrics Totals;
  ServeMetrics LastRun;
};

} // namespace spidey

#endif // SPIDEY_SERVE_SERVE_H
