//===-- serve/registry.cpp - Multi-tenant session registry ----------------===//

#include "serve/registry.h"

using namespace spidey;

SessionRegistry::SessionRegistry(ServeOptions Base,
                                 std::vector<SourceFile> DefaultFiles,
                                 size_t MaxSessions)
    : Base(std::move(Base)), DefaultFiles(std::move(DefaultFiles)),
      MaxSessions(MaxSessions) {}

// The daemon joins every connection thread before the registry dies, so
// no ClientContext outlives us; asserting emptiness here would race a
// handle destroyed on another thread, so the map simply drops any
// sessions whose connections never drained.
SessionRegistry::~SessionRegistry() = default;

std::unique_ptr<ClientContext> SessionRegistry::connect(std::string &Error) {
  std::lock_guard<std::mutex> Lock(M);
  if (MaxSessions && Sessions.size() >= MaxSessions) {
    Error = "session limit reached (" + std::to_string(MaxSessions) + ")";
    return nullptr;
  }
  const uint64_t Id = NextId++;
  ServeOptions O = Base;
  O.SharedStore = &Store;
  O.SessionId = Id;
  auto S = std::make_unique<ServeSession>(std::move(O));
  if (!DefaultFiles.empty())
    S->setFiles(DefaultFiles);
  ServeSession &Ref = *S;
  Sessions.emplace(Id, std::move(S));
  ++Opened;
  return std::unique_ptr<ClientContext>(new ClientContext(*this, Id, Ref));
}

void SessionRegistry::disconnect(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(M);
  Sessions.erase(Id);
}

size_t SessionRegistry::active() const {
  std::lock_guard<std::mutex> Lock(M);
  return Sessions.size();
}

uint64_t SessionRegistry::opened() const {
  std::lock_guard<std::mutex> Lock(M);
  return Opened;
}
