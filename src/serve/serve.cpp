//===-- serve/serve.cpp - Incremental re-analysis daemon -------*- C++ -*-===//

#include "serve/serve.h"

#include "support/faultinject.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <fstream>
#include <sstream>

using namespace spidey;

//===----------------------------------------------------------------------===//
// MemoryConstraintStore
//===----------------------------------------------------------------------===//

std::optional<std::string>
MemoryConstraintStore::load(const std::string &Key) {
  return loadFor(Key, /*Session=*/0, /*CrossSession=*/nullptr);
}

std::optional<std::string>
MemoryConstraintStore::loadFor(const std::string &Key, uint64_t Session,
                               bool *CrossSession) {
  if (CrossSession)
    *CrossSession = false;
  if (faultAt("store.load"))
    return std::nullopt; // injected: the entry vanished
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end())
    return std::nullopt;
  if (It->second.Writer != Session) {
    ++CrossSessionHits;
    if (CrossSession)
      *CrossSession = true;
  }
  Recency.splice(Recency.begin(), Recency, It->second.Recency);
  return It->second.Text;
}

void MemoryConstraintStore::store(const std::string &Key,
                                  const std::string &Text) {
  storeFor(Key, Text, /*Session=*/0);
}

void MemoryConstraintStore::storeFor(const std::string &Key,
                                     const std::string &Text,
                                     uint64_t Session) {
  if (faultAt("store.store"))
    return; // injected: the write is dropped
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    TotalBytes -= It->second.Text.size();
    It->second.Text = Text;
    It->second.Writer = Session;
    Recency.splice(Recency.begin(), Recency, It->second.Recency);
  } else {
    Recency.push_front(Key);
    Map.emplace(Key, Entry{Text, Session, Recency.begin()});
  }
  TotalBytes += Text.size();
  if (MaxBytes)
    evictLocked();
}

void MemoryConstraintStore::evictLocked() {
  while (TotalBytes > MaxBytes && !Recency.empty()) {
    auto It = Map.find(Recency.back());
    TotalBytes -= It->second.Text.size();
    Map.erase(It);
    Recency.pop_back();
    ++Evictions;
  }
}

void MemoryConstraintStore::setMaxBytes(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  MaxBytes = Bytes;
  if (MaxBytes)
    evictLocked();
}

void MemoryConstraintStore::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
  Recency.clear();
  TotalBytes = 0;
}

size_t MemoryConstraintStore::entries() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

size_t MemoryConstraintStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return TotalBytes;
}

size_t MemoryConstraintStore::maxBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return MaxBytes;
}

uint64_t MemoryConstraintStore::evictions() const {
  std::lock_guard<std::mutex> Lock(M);
  return Evictions;
}

uint64_t MemoryConstraintStore::crossSessionHits() const {
  std::lock_guard<std::mutex> Lock(M);
  return CrossSessionHits;
}

//===----------------------------------------------------------------------===//
// ServeSession
//===----------------------------------------------------------------------===//

namespace {

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

json::Value errorResponse(std::string Message, std::string Code) {
  json::Value R = json::Value::object();
  R.set("ok", false);
  R.set("error", std::move(Message));
  R.set("code", std::move(Code));
  return R;
}

/// Non-negative integer member, with \p Default when absent. False (bad
/// field) when present but not an *integral* non-negative number that
/// fits uint64_t — a double >= 2^64 (e.g. a hostile
/// {"deadline_ms":1e300}) would make the conversion undefined behavior,
/// not a big limit, and a fractional {"deadline_ms":1.5} must be
/// rejected rather than silently truncated to a limit the client never
/// asked for.
bool uintField(const json::Value &Request, std::string_view Key,
               uint64_t Default, uint64_t &Out) {
  const json::Value *M = Request.find(Key);
  if (!M) {
    Out = Default;
    return true;
  }
  double N = M->isNumber() ? M->asNumber() : -1;
  if (!M->isNumber() || N < 0 ||
      N >= 18446744073709551616.0 /* 2^64 */ || N != std::floor(N))
    return false;
  Out = static_cast<uint64_t>(N);
  return true;
}

} // namespace

ServeSession::ServeSession(ServeOptions Opts)
    : Opts(std::move(Opts)),
      StoreView(this->Opts.SharedStore ? *this->Opts.SharedStore : OwnedStore,
                this->Opts.SessionId) {
  Token = std::make_unique<CancelToken>();
  // A session never *loosens* a shared store's byte cap at open: the
  // registry (or an earlier session's configure) owns that knob, and a
  // default-constructed options block carries MaxStoreBytes = 0.
  if (!this->Opts.SharedStore)
    OwnedStore.setMaxBytes(this->Opts.MaxStoreBytes);
  else if (this->Opts.MaxStoreBytes)
    this->Opts.SharedStore->setMaxBytes(this->Opts.MaxStoreBytes);
  if (!this->Opts.Faults.empty()) {
    std::string Error;
    // A bad spec is a configuration bug, not a serve-time fault; leave
    // the injector disarmed rather than dying. Callers that must fail
    // loudly (the spidey-serve CLI, matching the SPIDEY_FAULTS path)
    // validate the spec with configure() before building the session.
    FaultInjector::instance().configure(this->Opts.Faults, &Error);
  }
}

ServeSession::~ServeSession() = default;

bool ServeSession::loadFiles(const std::vector<std::string> &Paths,
                             std::string &Error) {
  std::vector<SourceFile> Loaded;
  for (const std::string &Path : Paths) {
    SourceFile F;
    F.Name = Path;
    if (!readWholeFile(Path, F.Text)) {
      Error = "cannot read " + Path;
      return false;
    }
    Loaded.push_back(std::move(F));
  }
  setFiles(std::move(Loaded));
  return true;
}

void ServeSession::setFiles(std::vector<SourceFile> NewFiles) {
  Files = std::move(NewFiles);
  Dirty = true;
}

void ServeSession::setLimits(uint64_t DeadlineMs, uint64_t MaxConstraints) {
  Opts.DeadlineMs = DeadlineMs;
  Opts.MaxConstraints = MaxConstraints;
}

bool ServeSession::ensureAnalyzed(std::string &Error) {
  if (!Dirty && CA)
    return true;
  if (Files.empty()) {
    Error = "no source files loaded";
    return false;
  }
  if (faultAt("store.wipe"))
    store().clear(); // injected daemon restart: resident store gone

  auto NewProg = std::make_unique<Program>();
  DiagnosticEngine Diags;
  if (!parseProgram(*NewProg, Diags, Files)) {
    Error = Diags.str();
    return false;
  }
  // The analyzer borrows the program and the token, so retire the old
  // analyzer before rearming either.
  CA.reset();
  Prog = std::move(NewProg);

  // Fresh per-request limits: a token cancelled by the previous pass must
  // not poison this one.
  Token = std::make_unique<CancelToken>();
  Token->setDeadlineMs(Opts.DeadlineMs);
  Token->setWorkBudget(Opts.MaxConstraints);

  ComponentialOptions CO;
  CO.Simplify = Opts.Simplify;
  CO.Derive = Opts.Derive;
  CO.Threads = Opts.Threads;
  CO.ParallelClose = Opts.ParallelClose;
  CO.CloseShards = Opts.CloseShards;
  CO.CacheDir = Opts.CacheDir;
  CO.MemStore = &StoreView;
  CO.MergeViaFiles = true;
  CO.Cancel = Token.get();
  const uint64_t HitsBefore = StoreView.hits();
  const uint64_t CrossBefore = StoreView.crossSessionHits();
  CA = std::make_unique<ComponentialAnalyzer>(*Prog, CO);
  CA->run();

  LastRun = ServeMetrics{};
  LastRun.StoreHits = StoreView.hits() - HitsBefore;
  LastRun.StoreCrossHits = StoreView.crossSessionHits() - CrossBefore;
  LastUnconverged.clear();
  const std::vector<ComponentRunStats> &CompStats = CA->componentStats();
  for (size_t I = 0; I < CompStats.size(); ++I) {
    const ComponentRunStats &CS = CompStats[I];
    if (CS.TimedOut) {
      LastUnconverged.push_back(Prog->Components[I].Name);
      continue;
    }
    if (CS.ReusedFile)
      ++LastRun.ComponentsReused;
    else
      ++LastRun.ComponentsRederived;
    switch (CS.Cache) {
    case CacheOutcome::Hit:
      ++LastRun.CacheHits;
      break;
    case CacheOutcome::MissNoEntry:
    case CacheOutcome::MissCorrupt:
      ++LastRun.CacheMisses;
      break;
    case CacheOutcome::MissStaleHash:
    case CacheOutcome::MissOptions:
    case CacheOutcome::MissExternals:
      ++LastRun.CacheInvalidations;
      break;
    case CacheOutcome::Disabled:
      break;
    }
  }
  const ComponentialRunInfo &Info = CA->runInfo();
  LastRun.DeriveMs = Info.DeriveMs;
  LastRun.MergeMs = Info.MergeMs;
  LastRun.CloseMs = Info.CloseMs;
  LastDegraded = Info.Cancelled;
  LastCloseConverged = Info.CloseConverged;

  ++Totals.Analyzes;
  Totals.ComponentsRederived += LastRun.ComponentsRederived;
  Totals.ComponentsReused += LastRun.ComponentsReused;
  Totals.CacheHits += LastRun.CacheHits;
  Totals.CacheMisses += LastRun.CacheMisses;
  Totals.CacheInvalidations += LastRun.CacheInvalidations;
  Totals.StoreHits += LastRun.StoreHits;
  Totals.StoreCrossHits += LastRun.StoreCrossHits;
  Totals.DeriveMs += LastRun.DeriveMs;
  Totals.MergeMs += LastRun.MergeMs;
  Totals.CloseMs += LastRun.CloseMs;
  if (LastDegraded)
    ++Totals.Degraded;

  // A degraded pass leaves the session dirty: the partial combined system
  // answers this request, and the next analyze starts over — once within
  // budget it produces the exact cold-run result. A run that lost the
  // file-merge byte-identity guarantee (a component's serialized text
  // failed to deserialize, so it merged through the renumbering path)
  // stays dirty for the same reason: its combined system is correct but
  // not byte-comparable, and the next healthy pass restores identity.
  Dirty = LastDegraded || Info.MergedOffText;

  // Rebind the query engine to the new generation. A dirty (degraded or
  // off-text) generation is volatile: queries answer over the partial
  // system but never read or write the cross-edit memo caches. Verdict
  // memoization is additionally gated off for polymorphic derivation,
  // where reconstruction order feeds a shared schema table and
  // per-component verdicts are not a pure function of the component.
  Queries.rebind(*Prog, *CA, Token.get(), /*Volatile=*/Dirty,
                 /*AllowVerdictCache=*/Opts.Derive.Poly == PolyMode::Mono,
                 CA->optionsFingerprint());
  return true;
}

std::string ServeSession::combinedText() {
  std::string Error;
  if (!ensureAnalyzed(Error))
    return {};
  return CA->combined().str();
}

json::Value ServeSession::cmdAnalyze() {
  std::string Error;
  bool Reanalyzed = Dirty || !CA;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error, "parse-error");

  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("reanalyzed", Reanalyzed);
  if (LastDegraded) {
    // Structured degradation: the partial per-component results below
    // still describe what converged, and "unconverged" names what did
    // not (an empty list means the final combined close was cut short).
    R.set("degraded", true);
    json::Value U = json::Value::array();
    for (const std::string &Name : LastUnconverged)
      U.push(Name);
    R.set("unconverged", std::move(U));
    R.set("close_converged", LastCloseConverged);
  }
  R.set("components", Prog->Components.size());
  R.set("rederived", LastRun.ComponentsRederived);
  R.set("reused", LastRun.ComponentsReused);
  R.set("cache_hits", LastRun.CacheHits);
  R.set("cache_misses", LastRun.CacheMisses);
  R.set("cache_invalidations", LastRun.CacheInvalidations);
  R.set("store_hits", LastRun.StoreHits);
  R.set("store_cross_hits", LastRun.StoreCrossHits);
  R.set("combined_constraints", CA->combined().size());
  R.set("derive_ms", LastRun.DeriveMs);
  R.set("merge_ms", LastRun.MergeMs);
  R.set("close_ms", LastRun.CloseMs);
  json::Value Per = json::Value::array();
  const std::vector<ComponentRunStats> &Stats = CA->componentStats();
  for (size_t I = 0; I < Stats.size(); ++I) {
    json::Value C = json::Value::object();
    C.set("name", Prog->Components[I].Name);
    C.set("cache", cacheOutcomeName(Stats[I].Cache));
    C.set("reused", Stats[I].ReusedFile);
    if (Stats[I].TimedOut)
      C.set("timed_out", true);
    C.set("file_bytes", Stats[I].FileBytes);
    Per.push(std::move(C));
  }
  R.set("per_component", std::move(Per));
  return R;
}

json::Value ServeSession::cmdEdit(const json::Value &Request) {
  const json::Value *FileV = Request.find("file");
  if (!FileV)
    return errorResponse("edit needs a \"file\"", "bad-field");
  if (!FileV->isString())
    return errorResponse("edit \"file\" must be a string", "bad-field");
  const std::string &File = FileV->asString();
  auto It = std::find_if(Files.begin(), Files.end(),
                         [&](const SourceFile &F) { return F.Name == File; });
  if (It == Files.end())
    return errorResponse("unknown file " + File, "unknown-file");

  const json::Value *Text = Request.find("text");
  if (Text && !Text->isString() && !Text->isNull())
    return errorResponse("edit \"text\" must be a string", "bad-field");
  std::string NewText;
  if (Text && Text->isString()) {
    NewText = Text->asString();
  } else if (!readWholeFile(File, NewText)) {
    return errorResponse("cannot re-read " + File, "unknown-file");
  }
  // A byte-identical edit is a no-op: the session stays clean, the next
  // analyze answers "reanalyzed":false, and the query engine keeps its
  // warm generation and memo caches instead of a volatile rebind.
  const bool Changed = NewText != It->Text;
  if (Changed) {
    It->Text = std::move(NewText);
    Dirty = true;
  }
  ++Totals.Edits;

  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("file", File);
  R.set("bytes", It->Text.size());
  R.set("changed", Changed);
  return R;
}

json::Value ServeSession::cmdOpen(const json::Value &Request) {
  const json::Value *FilesV = Request.find("files");
  if (!FilesV || !FilesV->isArray())
    return errorResponse("open needs a \"files\" array", "bad-field");
  std::vector<std::string> Paths;
  for (const json::Value &E : FilesV->items()) {
    if (!E.isString())
      return errorResponse("open \"files\" entries must be strings",
                           "bad-field");
    Paths.push_back(E.asString());
  }
  std::string Error;
  if (!loadFiles(Paths, Error))
    return errorResponse(Error, "unknown-file");
  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("session", Opts.SessionId);
  R.set("files", Paths.size());
  return R;
}

json::Value ServeSession::cmdFlow(const json::Value &Request) {
  const json::Value *NameV = Request.find("name");
  if (!NameV || !NameV->isString() || NameV->asString().empty())
    return errorResponse("flow needs a string \"name\"", "bad-field");
  const std::string &Name = NameV->asString();
  std::string Error;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error, "parse-error");

  // Demand-driven path (DESIGN.md §12): name resolution through the
  // per-generation Name -> VarId index, counts through the persistent
  // FlowIndex (or a memoized region summary on warm repeats) — no
  // whole-program FlowGraph construction per request. Fresh limits per
  // query: the reachability walk polls the token and degrades with
  // partial counts instead of stalling the session.
  Token->rearm(Opts.DeadlineMs, Opts.MaxConstraints);
  QueryEngine::FlowAnswer Ans = Queries.flow(Name);
  if (!Ans.Found)
    return errorResponse("no top-level definition named " + Name,
                         "unknown-name");

  json::Value R = json::Value::object();
  R.set("ok", true);
  if (LastDegraded || Ans.Degraded)
    R.set("degraded", true);
  R.set("name", Name);
  R.set("var", Ans.Var);
  json::Value KindsV = json::Value::array();
  for (const std::string &K : Ans.Kinds)
    KindsV.push(K);
  R.set("kinds", std::move(KindsV));
  R.set("parents", Ans.Parents);
  R.set("children", Ans.Children);
  R.set("ancestors", Ans.Ancestors);
  R.set("descendants", Ans.Descendants);
  if (Ans.FromSummary)
    R.set("memoized", true);
  return R;
}

json::Value ServeSession::cmdCheckSummary() {
  std::string Error;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error, "parse-error");
  // Step 3 per component through the incremental engine: components
  // whose verdict key (source hash + options fingerprint + external
  // region digests) is unchanged are served from memoized verdicts;
  // only invalidated components reconstruct. A fresh deadline and budget
  // cover the sweep; rearm() also clears any cancellation latched by the
  // analyze pass or an earlier sweep, so one slow sweep cannot degrade
  // every later summary. Overrunning yields a partial (degraded) summary
  // whose completed per-component verdicts are still cached.
  Token->rearm(Opts.DeadlineMs, Opts.MaxConstraints);
  QueryEngine::SummaryAnswer Ans = Queries.checkSummary();
  json::Value R = json::Value::object();
  R.set("ok", true);
  if (Ans.Partial) {
    ++Totals.Degraded;
    R.set("degraded", true);
    R.set("components_checked", Ans.Rechecked + Ans.Reused);
  } else if (LastDegraded) {
    R.set("degraded", true);
  }
  R.set("components_rechecked", Ans.Rechecked);
  R.set("components_reused", Ans.Reused);
  R.set("possible", Ans.Possible);
  R.set("unsafe", Ans.Unsafe);
  R.set("summary", Ans.Summary);
  return R;
}

json::Value ServeSession::cmdStats() {
  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("requests", Totals.Requests);
  R.set("analyzes", Totals.Analyzes);
  R.set("edits", Totals.Edits);
  R.set("components_rederived", Totals.ComponentsRederived);
  R.set("components_reused", Totals.ComponentsReused);
  R.set("cache_hits", Totals.CacheHits);
  R.set("cache_misses", Totals.CacheMisses);
  R.set("cache_invalidations", Totals.CacheInvalidations);
  R.set("errors", Totals.Errors);
  R.set("internal_errors", Totals.InternalErrors);
  R.set("degraded", Totals.Degraded);
  R.set("derive_ms", Totals.DeriveMs);
  R.set("merge_ms", Totals.MergeMs);
  R.set("close_ms", Totals.CloseMs);
  R.set("session", Opts.SessionId);
  R.set("store_shared", Opts.SharedStore != nullptr);
  R.set("store_entries", store().entries());
  R.set("store_bytes", store().bytes());
  R.set("store_max_bytes", store().maxBytes());
  R.set("store_evictions", store().evictions());
  R.set("store_hits", StoreView.hits());
  R.set("store_cross_session_hits", StoreView.crossSessionHits());
  R.set("store_cross_session_hits_total", store().crossSessionHits());
  R.set("deadline_ms", Opts.DeadlineMs);
  R.set("max_constraints", Opts.MaxConstraints);
  R.set("faults_injected", FaultInjector::instance().totalInjected());
  const QueryStats &QS = Queries.stats();
  R.set("flow_queries", QS.FlowQueries);
  R.set("flow_memo_hits", QS.FlowMemoHits);
  R.set("flow_index_builds", QS.IndexBuilds);
  R.set("name_index_builds", QS.NameIndexBuilds);
  R.set("region_sweeps", QS.RegionSweeps);
  R.set("query_components_rechecked", QS.ComponentsRechecked);
  R.set("query_verdicts_reused", QS.VerdictsReused);
  R.set("query_degraded", QS.DegradedQueries);
  R.set("dirty", Dirty);
  if (CA && !Dirty)
    R.set("combined_constraints", CA->combined().size());
  return R;
}

json::Value ServeSession::cmdConfigure(const json::Value &Request) {
  uint64_t DeadlineMs, MaxConstraints, MaxStoreBytes;
  if (!uintField(Request, "deadline_ms", Opts.DeadlineMs, DeadlineMs))
    return errorResponse("\"deadline_ms\" must be a non-negative number",
                         "bad-field");
  if (!uintField(Request, "max_constraints", Opts.MaxConstraints,
                 MaxConstraints))
    return errorResponse("\"max_constraints\" must be a non-negative number",
                         "bad-field");
  if (!uintField(Request, "max_store_bytes", Opts.MaxStoreBytes,
                 MaxStoreBytes))
    return errorResponse("\"max_store_bytes\" must be a non-negative number",
                         "bad-field");
  const json::Value *FaultsV = Request.find("faults");
  if (FaultsV && !FaultsV->isString())
    return errorResponse("\"faults\" must be a string spec", "bad-field");
  if (FaultsV) {
    std::string Error;
    if (!FaultInjector::instance().configure(FaultsV->asString(), &Error))
      return errorResponse("bad fault spec: " + Error, "bad-field");
  }
  Opts.DeadlineMs = DeadlineMs;
  Opts.MaxConstraints = MaxConstraints;
  Opts.MaxStoreBytes = static_cast<size_t>(MaxStoreBytes);
  store().setMaxBytes(Opts.MaxStoreBytes);

  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("deadline_ms", Opts.DeadlineMs);
  R.set("max_constraints", Opts.MaxConstraints);
  R.set("max_store_bytes", Opts.MaxStoreBytes);
  R.set("faults_enabled", FaultInjector::instance().enabled());
  return R;
}

json::Value ServeSession::dispatch(const json::Value &Request) {
  const json::Value *CmdV = Request.find("cmd");
  if (!CmdV)
    return errorResponse("request needs a \"cmd\"", "bad-request");
  if (!CmdV->isString())
    return errorResponse("\"cmd\" must be a string", "bad-cmd");
  const std::string &Cmd = CmdV->asString();
  if (Cmd == "analyze")
    return cmdAnalyze();
  if (Cmd == "open")
    return cmdOpen(Request);
  if (Cmd == "edit")
    return cmdEdit(Request);
  if (Cmd == "flow")
    return cmdFlow(Request);
  if (Cmd == "check-summary")
    return cmdCheckSummary();
  if (Cmd == "stats")
    return cmdStats();
  if (Cmd == "configure")
    return cmdConfigure(Request);
  if (Cmd == "shutdown") {
    Shutdown = true;
    json::Value R = json::Value::object();
    R.set("ok", true);
    R.set("bye", true);
    return R;
  }
  return errorResponse("unknown cmd " + Cmd, "unknown-cmd");
}

json::Value ServeSession::handle(const json::Value &Request) {
  ++Totals.Requests;
  json::Value Response;
  if (!Request.isObject()) {
    Response = errorResponse("request must be a JSON object", "bad-request");
  } else {
    // The exception barrier: whatever a handler throws, the daemon
    // answers and keeps serving. The session may be mid-analysis when an
    // exception unwinds, so conservatively mark it dirty — the next
    // analyze rebuilds from sources.
    // Dirty forces the next request through ensureAnalyzed, which rebinds
    // the query engine before any query runs — so half-built per-
    // generation query state left by the unwind is never observed.
    try {
      Response = dispatch(Request);
    } catch (const std::exception &E) {
      Dirty = true;
      ++Totals.InternalErrors;
      Response = errorResponse(std::string("internal error: ") + E.what(),
                               "internal");
    } catch (...) {
      Dirty = true;
      ++Totals.InternalErrors;
      Response = errorResponse("internal error", "internal");
    }
  }
  const json::Value *Ok = Response.find("ok");
  if (!Ok || !Ok->asBool(false))
    ++Totals.Errors;
  return Response;
}

std::string ServeSession::handleLine(const std::string &Line) {
  std::string Error;
  std::optional<json::Value> Request = json::Value::parse(Line, &Error);
  if (!Request) {
    ++Totals.Requests;
    ++Totals.Errors;
    return errorResponse("bad request: " + Error, "bad-json").dump();
  }
  return handle(*Request).dump();
}

std::string ServeSession::lineTooLongResponse(size_t Limit) {
  return errorResponse("request line exceeds " + std::to_string(Limit) +
                           " bytes",
                       "line-too-long")
      .dump();
}
