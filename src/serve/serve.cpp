//===-- serve/serve.cpp - Incremental re-analysis daemon -------*- C++ -*-===//

#include "serve/serve.h"

#include "constraints/const_kind.h"
#include "debugger/flow.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace spidey;

//===----------------------------------------------------------------------===//
// MemoryConstraintStore
//===----------------------------------------------------------------------===//

std::optional<std::string>
MemoryConstraintStore::load(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end())
    return std::nullopt;
  return It->second;
}

void MemoryConstraintStore::store(const std::string &Key,
                                  const std::string &Text) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    TotalBytes -= It->second.size();
    It->second = Text;
  } else {
    Map.emplace(Key, Text);
  }
  TotalBytes += Text.size();
}

size_t MemoryConstraintStore::entries() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

size_t MemoryConstraintStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return TotalBytes;
}

//===----------------------------------------------------------------------===//
// ServeSession
//===----------------------------------------------------------------------===//

namespace {

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

json::Value errorResponse(std::string Message) {
  json::Value R = json::Value::object();
  R.set("ok", false);
  R.set("error", std::move(Message));
  return R;
}

} // namespace

ServeSession::ServeSession(ServeOptions Opts) : Opts(std::move(Opts)) {}
ServeSession::~ServeSession() = default;

bool ServeSession::loadFiles(const std::vector<std::string> &Paths,
                             std::string &Error) {
  std::vector<SourceFile> Loaded;
  for (const std::string &Path : Paths) {
    SourceFile F;
    F.Name = Path;
    if (!readWholeFile(Path, F.Text)) {
      Error = "cannot read " + Path;
      return false;
    }
    Loaded.push_back(std::move(F));
  }
  setFiles(std::move(Loaded));
  return true;
}

void ServeSession::setFiles(std::vector<SourceFile> NewFiles) {
  Files = std::move(NewFiles);
  Dirty = true;
  Checks.reset();
}

bool ServeSession::ensureAnalyzed(std::string &Error) {
  if (!Dirty && CA)
    return true;
  if (Files.empty()) {
    Error = "no source files loaded";
    return false;
  }
  auto NewProg = std::make_unique<Program>();
  DiagnosticEngine Diags;
  if (!parseProgram(*NewProg, Diags, Files)) {
    Error = Diags.str();
    return false;
  }
  // The analyzer borrows the program, so retire the old pair together.
  CA.reset();
  Prog = std::move(NewProg);

  ComponentialOptions CO;
  CO.Simplify = Opts.Simplify;
  CO.Derive = Opts.Derive;
  CO.Threads = Opts.Threads;
  CO.CacheDir = Opts.CacheDir;
  CO.MemStore = &Store;
  CO.MergeViaFiles = true;
  CA = std::make_unique<ComponentialAnalyzer>(*Prog, CO);
  CA->run();

  LastRun = ServeMetrics{};
  for (const ComponentRunStats &CS : CA->componentStats()) {
    if (CS.ReusedFile)
      ++LastRun.ComponentsReused;
    else
      ++LastRun.ComponentsRederived;
    switch (CS.Cache) {
    case CacheOutcome::Hit:
      ++LastRun.CacheHits;
      break;
    case CacheOutcome::MissNoEntry:
    case CacheOutcome::MissCorrupt:
      ++LastRun.CacheMisses;
      break;
    case CacheOutcome::MissStaleHash:
    case CacheOutcome::MissOptions:
    case CacheOutcome::MissExternals:
      ++LastRun.CacheInvalidations;
      break;
    case CacheOutcome::Disabled:
      break;
    }
  }
  const ComponentialRunInfo &Info = CA->runInfo();
  LastRun.DeriveMs = Info.DeriveMs;
  LastRun.MergeMs = Info.MergeMs;
  LastRun.CloseMs = Info.CloseMs;

  ++Totals.Analyzes;
  Totals.ComponentsRederived += LastRun.ComponentsRederived;
  Totals.ComponentsReused += LastRun.ComponentsReused;
  Totals.CacheHits += LastRun.CacheHits;
  Totals.CacheMisses += LastRun.CacheMisses;
  Totals.CacheInvalidations += LastRun.CacheInvalidations;
  Totals.DeriveMs += LastRun.DeriveMs;
  Totals.MergeMs += LastRun.MergeMs;
  Totals.CloseMs += LastRun.CloseMs;

  Dirty = false;
  Checks.reset();
  return true;
}

std::string ServeSession::combinedText() {
  std::string Error;
  if (!ensureAnalyzed(Error))
    return {};
  return CA->combined().str();
}

json::Value ServeSession::cmdAnalyze() {
  std::string Error;
  bool Reanalyzed = Dirty || !CA;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error);

  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("reanalyzed", Reanalyzed);
  R.set("components", Prog->Components.size());
  R.set("rederived", LastRun.ComponentsRederived);
  R.set("reused", LastRun.ComponentsReused);
  R.set("cache_hits", LastRun.CacheHits);
  R.set("cache_misses", LastRun.CacheMisses);
  R.set("cache_invalidations", LastRun.CacheInvalidations);
  R.set("combined_constraints", CA->combined().size());
  R.set("derive_ms", LastRun.DeriveMs);
  R.set("merge_ms", LastRun.MergeMs);
  R.set("close_ms", LastRun.CloseMs);
  json::Value Per = json::Value::array();
  const std::vector<ComponentRunStats> &Stats = CA->componentStats();
  for (size_t I = 0; I < Stats.size(); ++I) {
    json::Value C = json::Value::object();
    C.set("name", Prog->Components[I].Name);
    C.set("cache", cacheOutcomeName(Stats[I].Cache));
    C.set("reused", Stats[I].ReusedFile);
    C.set("file_bytes", Stats[I].FileBytes);
    Per.push(std::move(C));
  }
  R.set("per_component", std::move(Per));
  return R;
}

json::Value ServeSession::cmdEdit(const json::Value &Request) {
  std::string File = Request.str("file");
  if (File.empty())
    return errorResponse("edit needs a \"file\"");
  auto It = std::find_if(Files.begin(), Files.end(),
                         [&](const SourceFile &F) { return F.Name == File; });
  if (It == Files.end())
    return errorResponse("unknown file " + File);

  const json::Value *Text = Request.find("text");
  if (Text && Text->isString()) {
    It->Text = Text->asString();
  } else if (!readWholeFile(File, It->Text)) {
    return errorResponse("cannot re-read " + File);
  }
  Dirty = true;
  Checks.reset();
  ++Totals.Edits;

  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("file", File);
  R.set("bytes", It->Text.size());
  return R;
}

json::Value ServeSession::cmdFlow(const json::Value &Request) {
  std::string Name = Request.str("name");
  if (Name.empty())
    return errorResponse("flow needs a \"name\"");
  std::string Error;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error);

  Symbol Sym = Prog->Syms.intern(Name);
  for (VarId V = 0; V < Prog->numVars(); ++V) {
    if (!Prog->var(V).TopLevel || Prog->var(V).Name != Sym)
      continue;
    SetVar A = CA->maps().varVar(V);
    const ConstraintSystem &S = CA->combined();
    std::vector<std::string> Kinds;
    for (Constant C : S.constantsOf(A))
      Kinds.push_back(constKindName(S.context().Constants.kind(C)));
    std::sort(Kinds.begin(), Kinds.end());
    Kinds.erase(std::unique(Kinds.begin(), Kinds.end()), Kinds.end());

    FlowGraph FG(S);
    json::Value R = json::Value::object();
    R.set("ok", true);
    R.set("name", Name);
    R.set("var", A);
    json::Value KindsV = json::Value::array();
    for (const std::string &K : Kinds)
      KindsV.push(K);
    R.set("kinds", std::move(KindsV));
    R.set("parents", FG.parents(A).size());
    R.set("children", FG.children(A).size());
    R.set("ancestors", FG.ancestors(A).size());
    R.set("descendants", FG.descendants(A).size());
    return R;
  }
  return errorResponse("no top-level definition named " + Name);
}

json::Value ServeSession::cmdCheckSummary() {
  std::string Error;
  if (!ensureAnalyzed(Error))
    return errorResponse(Error);
  if (!Checks) {
    // Step 3 per component: reconstruct full precision and keep each
    // component's own check verdicts.
    auto Report = std::make_unique<DebugReport>();
    for (uint32_t I = 0; I < Prog->Components.size(); ++I) {
      std::unique_ptr<ConstraintSystem> Full = CA->reconstruct(I);
      DebugReport Part = runChecks(*Prog, CA->maps(), *Full);
      for (CheckResult &CR : Part.Results)
        if (CR.Loc.File == I)
          Report->Results.push_back(std::move(CR));
    }
    Checks = std::move(Report);
  }
  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("possible", Checks->numPossible());
  R.set("unsafe", Checks->numUnsafe());
  R.set("summary", Checks->summary(*Prog));
  return R;
}

json::Value ServeSession::cmdStats() {
  json::Value R = json::Value::object();
  R.set("ok", true);
  R.set("requests", Totals.Requests);
  R.set("analyzes", Totals.Analyzes);
  R.set("edits", Totals.Edits);
  R.set("components_rederived", Totals.ComponentsRederived);
  R.set("components_reused", Totals.ComponentsReused);
  R.set("cache_hits", Totals.CacheHits);
  R.set("cache_misses", Totals.CacheMisses);
  R.set("cache_invalidations", Totals.CacheInvalidations);
  R.set("derive_ms", Totals.DeriveMs);
  R.set("merge_ms", Totals.MergeMs);
  R.set("close_ms", Totals.CloseMs);
  R.set("store_entries", Store.entries());
  R.set("store_bytes", Store.bytes());
  R.set("dirty", Dirty);
  if (CA && !Dirty)
    R.set("combined_constraints", CA->combined().size());
  return R;
}

json::Value ServeSession::handle(const json::Value &Request) {
  ++Totals.Requests;
  std::string Cmd = Request.str("cmd");
  if (Cmd == "analyze")
    return cmdAnalyze();
  if (Cmd == "edit")
    return cmdEdit(Request);
  if (Cmd == "flow")
    return cmdFlow(Request);
  if (Cmd == "check-summary")
    return cmdCheckSummary();
  if (Cmd == "stats")
    return cmdStats();
  if (Cmd == "shutdown") {
    Shutdown = true;
    json::Value R = json::Value::object();
    R.set("ok", true);
    R.set("bye", true);
    return R;
  }
  return errorResponse(Cmd.empty() ? "request needs a \"cmd\""
                                   : "unknown cmd " + Cmd);
}

std::string ServeSession::handleLine(const std::string &Line) {
  std::string Error;
  std::optional<json::Value> Request = json::Value::parse(Line, &Error);
  if (!Request) {
    ++Totals.Requests;
    return errorResponse("bad request: " + Error).dump();
  }
  return handle(*Request).dump();
}
